(* Benchmark harness.

   One Bechamel test per paper artefact (the analysis that regenerates
   each table/figure over the shared quick world), one per substrate
   hot path, the DESIGN.md ablation benches, and the notary_queries
   group that isolates the coverage-index query path against the
   pre-index chain-array scan.  The scaling group pairs the legacy
   division-based modpow against the Montgomery fixed-window modpow at
   each operand size, and the substrate group pairs cold vs cached
   chain validation around the signature-verification memo.  The
   hash_cores group pairs the unboxed streaming digest cores against
   the boxed pre-optimisation reference implementations (and the
   table-driven hex codec against the per-character one), and times
   the JSONL ingest reader end to end.  The substrate group also pairs
   chain validation with the Obs instrumentation enabled vs disabled,
   recording the observability overhead on the hottest instrumented
   path as a JSON ratio.  The serve section drives the trust-decision
   server end to end over a mixed request corpus — cold and warm
   sustained qps, plus per-class p50/p99 from the server's own
   latency histograms.  The cache_precompute group pairs the general
   modpow against the per-key exponent-schedule, fixed-base-comb and
   sparse-65537 fast paths and the RSA sign loop with the precompute
   caches on vs off; the serve-cache section measures warm qps with
   the decision cache off vs on and sweeps hit rate across capacities
   over a corpus whose key space exceeds the largest capacity; and the
   scale section times Notary corpus generation (certs/s) with the
   wide multiplication kernel and lean issuance off (PR 8's best
   path) vs on at paper scale.  The wide_kernel group sweeps the
   26-bit plane against the 28-bit packed plane (multiply, squaring,
   and the full windowed walk) across 384-2048-bit operands.  The ct
   section drives the RFC 6962 Merkle log at 200 k synthetic DER-sized
   leaves — append throughput through the compaction frontier, then
   inclusion/consistency proof generation and pure-verifier checking,
   all in ns per proof.  After
   timing, the
   harness prints every artefact itself so bench output doubles as a
   compact reproduction report, and writes the measurements to a JSON
   file (BENCH_10.json by default) so later PRs have a perf baseline to
   diff against.

   Flags:
     --quick      smoke mode for the @check gate: substrate,
                  notary_queries, serve and cache groups only, short
                  quota, no report
     --out FILE   where to write the JSON (default BENCH_10.json)
     --assert-floors  exit nonzero unless the scale pair, the MD5
                  unboxed ratio, the warm serve-cache ratio, the ct
                  append rate and the ct proof-verify latency all
                  clear their floors (runs the needed groups even in
                  --quick)
     --no-json    skip the JSON dump *)

open Bechamel
open Toolkit

module Pipeline = Tangled_core.Pipeline
module Report = Tangled_core.Report
module BP = Tangled_pki.Blueprint
module PD = Tangled_pki.Paper_data
module Rs = Tangled_store.Root_store
module C = Tangled_x509.Certificate
module Authority = Tangled_x509.Authority
module Chain = Tangled_validation.Chain
module Notary = Tangled_notary.Notary
module Rsa = Tangled_crypto.Rsa
module Dk = Tangled_hash.Digest_kind
module Prng = Tangled_util.Prng
module Ts = Tangled_util.Timestamp
module Obs = Tangled_obs.Obs
module J = Tangled_util.Json
module Hex = Tangled_util.Hex
module Ingest = Tangled_ingest.Ingest
module Export = Tangled_core.Export

let world = lazy (Lazy.force Pipeline.quick)

(* --- artefact benches: one per table and figure ---------------------- *)

let artefact_tests () =
  let w = Lazy.force world in
  List.map
    (fun name ->
      Test.make ~name (Staged.stage (fun () -> ignore (Report.render_one w name))))
    (Report.artefact_names @ Report.extension_names)

(* --- substrate micro-benches ------------------------------------------ *)

(* a small dedicated chain + anchoring store, also used by the paired
   obs-overhead measurement below *)
let bench_chain =
  lazy
    (let rng = Prng.create 177177 in
     let root =
       Authority.self_signed ~bits:384 ~digest:Dk.SHA1 rng
         (Tangled_x509.Dn.make "Obs Bench Root")
     in
     let inter =
       Authority.issue_intermediate ~bits:384 ~digest:Dk.SHA1 rng ~parent:root
         (Tangled_x509.Dn.make "Obs Bench Inter")
     in
     let leaf =
       Authority.issue_leaf ~bits:384 ~digest:Dk.SHA1 rng ~parent:inter
         ~dns_names:[ "obs-bench.example" ]
         (Tangled_x509.Dn.make "obs-bench.example")
     in
     ( [ leaf; inter.Authority.certificate ],
       Rs.of_certs "obs-bench" Rs.Aosp [ root.Authority.certificate ] ))

let substrate_tests () =
  let w = Lazy.force world in
  let u = w.Pipeline.universe in
  let rng = Prng.create 77 in
  let key = Rsa.generate ~mr_rounds:6 rng ~bits:384 in
  let root =
    Authority.self_signed ~bits:384 ~digest:Dk.SHA1 rng (Tangled_x509.Dn.make "Bench Root")
  in
  let inter =
    Authority.issue_intermediate ~bits:384 ~digest:Dk.SHA1 rng ~parent:root
      (Tangled_x509.Dn.make "Bench Inter")
  in
  let leaf =
    Authority.issue_leaf ~bits:384 ~digest:Dk.SHA1 rng ~parent:inter
      ~dns_names:[ "bench.example" ] (Tangled_x509.Dn.make "bench.example")
  in
  let chain = [ leaf; inter.Authority.certificate ] in
  let store = Rs.of_certs "bench" Rs.Aosp [ root.Authority.certificate ] in
  let der = C.encode leaf in
  let msg = String.make 512 'm' in
  let signature = Rsa.sign key ~digest:Dk.SHA1 msg in
  let device_store =
    w.Pipeline.population.Tangled_device.Population.handsets.(0)
      .Tangled_device.Population.store
  in
  let now = Ts.paper_epoch in
  [
    Test.make ~name:"sha256_512B"
      (Staged.stage (fun () -> ignore (Tangled_hash.Sha256.digest msg)));
    Test.make ~name:"sha1_512B"
      (Staged.stage (fun () -> ignore (Tangled_hash.Sha1.digest msg)));
    Test.make ~name:"md5_512B"
      (Staged.stage (fun () -> ignore (Tangled_hash.Md5.digest msg)));
    Test.make ~name:"rsa384_sign"
      (Staged.stage (fun () -> ignore (Rsa.sign key ~digest:Dk.SHA1 msg)));
    Test.make ~name:"rsa384_verify"
      (Staged.stage (fun () ->
           ignore (Rsa.verify key.Rsa.pub ~digest:Dk.SHA1 ~msg ~signature)));
    Test.make ~name:"x509_decode" (Staged.stage (fun () -> ignore (C.decode der)));
    Test.make ~name:"chain_validate"
      (Staged.stage (fun () -> ignore (Chain.validate ~now ~store chain)));
    (* the verification-memo pair: cold re-verifies every signature on
       the path, cached collapses them all to memo lookups *)
    Test.make ~name:"chain_validate_cold"
      (Staged.stage (fun () ->
           Chain.clear_verify_cache ();
           ignore (Chain.validate ~now ~store chain)));
    Test.make ~name:"chain_validate_cached"
      (Staged.stage (fun () -> ignore (Chain.validate ~now ~store chain)));
    (* the instrumentation-overhead pair: identical cached validations,
       differing only in whether Obs recording is live.  Both sides pay
       the same two Obs.set_enabled calls, and each run batches 32
       validations so the ~100ns of clock reads and atomic updates per
       validate is measured against ~400us of work, not against
       per-run scheduling jitter. *)
    Test.make ~name:"chain_validate_obs_on"
      (Staged.stage (fun () ->
           Obs.set_enabled true;
           for _ = 1 to 32 do
             ignore (Chain.validate ~now ~store chain)
           done;
           Obs.set_enabled true));
    Test.make ~name:"chain_validate_obs_off"
      (Staged.stage (fun () ->
           Obs.set_enabled false;
           for _ = 1 to 32 do
             ignore (Chain.validate ~now ~store chain)
           done;
           Obs.set_enabled true));
    Test.make ~name:"store_diff"
      (Staged.stage (fun () -> ignore (Rs.diff device_store (u.BP.aosp PD.V4_4))));
    Test.make ~name:"notary_validated_by_store"
      (Staged.stage (fun () ->
           ignore (Notary.validated_by_store w.Pipeline.notary (u.BP.aosp PD.V4_4))));
  ]

(* --- hash_cores: unboxed streaming cores vs the boxed reference --------- *)

(* The pre-optimisation per-character hex codec, kept verbatim as the
   before-side of the pair (the library version is table-driven). *)
let hex_digit n = "0123456789abcdef".[n]

let hex_encode_chars s =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set b (2 * i) (hex_digit (c lsr 4));
    Bytes.set b ((2 * i) + 1) (hex_digit (c land 0xf))
  done;
  Bytes.unsafe_to_string b

let hex_value_of_char c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "bad hex"

let hex_decode_chars h =
  let n = String.length h in
  let b = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    let hi = hex_value_of_char h.[2 * i] and lo = hex_value_of_char h.[(2 * i) + 1] in
    Bytes.set b i (Char.chr ((hi lsl 4) lor lo))
  done;
  Bytes.unsafe_to_string b

let hash_core_tests () =
  let w = Lazy.force world in
  let msg512 = String.make 512 'm' in
  let msg16k = String.make 16384 'm' in
  let hex1k = Hex.encode msg512 in
  let jsonl = Export.sessions_jsonl ~limit:50 w in
  [
    Test.make ~name:"sha256_ref_512B"
      (Staged.stage (fun () -> ignore (Tangled_hash.Reference.Sha256.digest msg512)));
    Test.make ~name:"sha1_ref_512B"
      (Staged.stage (fun () -> ignore (Tangled_hash.Reference.Sha1.digest msg512)));
    Test.make ~name:"md5_ref_512B"
      (Staged.stage (fun () -> ignore (Tangled_hash.Reference.Md5.digest msg512)));
    Test.make ~name:"sha256_ref_16384B"
      (Staged.stage (fun () -> ignore (Tangled_hash.Reference.Sha256.digest msg16k)));
    Test.make ~name:"hex_encode_512B"
      (Staged.stage (fun () -> ignore (Hex.encode msg512)));
    Test.make ~name:"hex_encode_chars_512B"
      (Staged.stage (fun () -> ignore (hex_encode_chars msg512)));
    Test.make ~name:"hex_decode_1024B"
      (Staged.stage (fun () -> ignore (Hex.decode hex1k)));
    Test.make ~name:"hex_decode_chars_1024B"
      (Staged.stage (fun () -> ignore (hex_decode_chars hex1k)));
    Test.make ~name:"ingest_sessions_jsonl_50"
      (Staged.stage (fun () -> ignore (Ingest.sessions_of_string jsonl)));
  ]

(* --- notary_queries: coverage index vs chain-array scan ------------------ *)

(* The pre-index implementation, kept as the reference the index is
   measured against: one pass over the corpus, reading anchor keys off
   the arena columns. *)
let scan_validated_by_store (n : Notary.t) store =
  let acc = ref 0 in
  for i = 0 to Notary.total n - 1 do
    match Notary.anchor_key n i with
    | Some key when (not (Notary.chain_expired n i)) && Rs.mem_key store key ->
        incr acc
    | _ -> ()
  done;
  !acc

let scan_per_root_counts (n : Notary.t) =
  let tbl = Hashtbl.create 512 in
  for i = 0 to Notary.total n - 1 do
    match Notary.anchor_key n i with
    | Some key when not (Notary.chain_expired n i) ->
        Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
    | _ -> ()
  done;
  tbl

let notary_query_tests () =
  let w = Lazy.force world in
  let n = w.Pipeline.notary in
  let store = w.Pipeline.universe.BP.aosp PD.V4_4 in
  let ids = Notary.store_ids n store in
  [
    Test.make ~name:"scan_validated_by_store"
      (Staged.stage (fun () -> ignore (scan_validated_by_store n store)));
    Test.make ~name:"index_validated_by_store"
      (Staged.stage (fun () -> ignore (Notary.validated_by_store n store)));
    Test.make ~name:"index_validated_by_ids"
      (Staged.stage (fun () -> ignore (Notary.validated_by_ids n ids)));
    Test.make ~name:"scan_per_root_counts"
      (Staged.stage (fun () -> ignore (scan_per_root_counts n)));
    Test.make ~name:"index_per_root_counts"
      (Staged.stage (fun () -> ignore (Notary.per_root_counts n)));
  ]

(* --- scaling benches: substrate cost vs input size ----------------------- *)

let scaling_tests () =
  let rng = Prng.create 177 in
  let keys =
    List.map (fun bits -> (bits, Rsa.generate ~mr_rounds:6 rng ~bits)) [ 384; 512; 768 ]
  in
  let msg = "scaling" in
  let sign_tests =
    List.map
      (fun (bits, key) ->
        Test.make ~name:(Printf.sprintf "rsa%d_sign" bits)
          (Staged.stage (fun () -> ignore (Rsa.sign key ~digest:Dk.SHA1 msg))))
      keys
  in
  let hash_tests =
    List.map
      (fun size ->
        let payload = String.make size 'h' in
        Test.make ~name:(Printf.sprintf "sha256_%dB" size)
          (Staged.stage (fun () -> ignore (Tangled_hash.Sha256.digest payload))))
      [ 64; 1024; 16384 ]
  in
  let modpow_tests =
    List.concat_map
      (fun bits ->
        let module B = Tangled_numeric.Bigint in
        let module Mont = Tangled_numeric.Montgomery in
        let m = Tangled_numeric.Prime.generate ~rounds:6 rng ~bits in
        let base = B.random_below rng m in
        let e = B.random_below rng m in
        (* context built once, as the RSA key caches do *)
        let ctx = Mont.create m in
        [
          Test.make ~name:(Printf.sprintf "modpow_%dbit" bits)
            (Staged.stage (fun () -> ignore (B.modpow base e m)));
          Test.make ~name:(Printf.sprintf "modpow_mont_%dbit" bits)
            (Staged.stage (fun () -> ignore (Mont.modpow ctx base e)));
        ])
      [ 256; 512; 1024 ]
  in
  sign_tests @ hash_tests @ modpow_tests

(* --- wide_kernel: 26-bit plane vs the 28-bit packed plane --------------- *)

let wide_kernel_widths = [ 384; 512; 768; 1024; 1536; 2048 ]

(* raw multiply/square on prepacked operands (the kernel the RSA hot
   path runs), and the full windowed walk, one pair per operand width *)
let wide_kernel_tests () =
  let module B = Tangled_numeric.Bigint in
  let module Mont = Tangled_numeric.Montgomery in
  let module W = Mont.Wide in
  let rng = Prng.create 4242 in
  List.concat_map
    (fun bits ->
      let m = Tangled_numeric.Prime.generate ~rounds:6 rng ~bits in
      let a = B.random_below rng m and b = B.random_below rng m in
      let e = B.random_below rng m in
      let ctx = Mont.create m in
      let sc = Mont.scratch ctx in
      let wt = W.create m in
      let wsc = W.scratch wt in
      let sched = Mont.schedule e in
      let pa = W.Internal.pack a and pb = W.Internal.pack b in
      let th = W.Internal.karatsuba_threshold in
      [
        Test.make ~name:(Printf.sprintf "bigint_mul_%dbit" bits)
          (Staged.stage (fun () -> ignore (B.mul a b)));
        Test.make ~name:(Printf.sprintf "wide_mul_%dbit" bits)
          (Staged.stage (fun () -> ignore (W.Internal.mul_limbs ~threshold:th pa pb)));
        Test.make ~name:(Printf.sprintf "wide_sqr_%dbit" bits)
          (Staged.stage (fun () -> ignore (W.Internal.sqr_limbs ~threshold:th pa)));
        Test.make ~name:(Printf.sprintf "powm26_%dbit" bits)
          (Staged.stage (fun () -> ignore (Mont.powm ctx sc sched a)));
        Test.make ~name:(Printf.sprintf "powm_wide_%dbit" bits)
          (Staged.stage (fun () -> ignore (W.powm wt wsc sched a)));
      ])
    wide_kernel_widths

(* --- ablation benches (DESIGN.md §5) ------------------------------------ *)

let ablation_tests () =
  let w = Lazy.force world in
  let u = w.Pipeline.universe in
  let now = Ts.paper_epoch in
  let certs44 = Rs.certs (u.BP.aosp PD.V4_4) in
  let some_chain =
    let c = Notary.chain w.Pipeline.notary 0 in
    c.Notary.leaf :: c.Notary.intermediates
  in
  let anchor = Notary.anchor_key w.Pipeline.notary 0 in
  let store = u.BP.aosp PD.V4_4 in
  (* identity definition: (subject, modulus) equivalence vs full-DER *)
  let dedup keyf certs =
    let tbl = Hashtbl.create 256 in
    List.iter (fun c -> Hashtbl.replace tbl (keyf c) ()) certs;
    Hashtbl.length tbl
  in
  let mixed = certs44 @ Rs.certs u.BP.mozilla in
  (* store lookup: hash-keyed map vs linear scan *)
  let target = List.nth certs44 (List.length certs44 - 1) in
  let linear_mem cert =
    List.exists (fun c -> C.equivalence_key c = C.equivalence_key cert) certs44
  in
  [
    Test.make ~name:"ablation_identity_equivalence"
      (Staged.stage (fun () -> ignore (dedup C.equivalence_key mixed)));
    Test.make ~name:"ablation_identity_bytes"
      (Staged.stage (fun () -> ignore (dedup C.byte_identity mixed)));
    Test.make ~name:"ablation_store_lookup_hash"
      (Staged.stage (fun () -> ignore (Rs.mem store target)));
    Test.make ~name:"ablation_store_lookup_linear"
      (Staged.stage (fun () -> ignore (linear_mem target)));
    Test.make ~name:"ablation_sig_check_full"
      (Staged.stage (fun () -> ignore (Chain.validate ~now ~store some_chain)));
    Test.make ~name:"ablation_sig_check_membership"
      (Staged.stage (fun () ->
           ignore (match anchor with Some k -> Rs.mem_key store k | None -> false)));
  ]

(* --- paired obs-overhead measurement -------------------------------------- *)

(* The instrumentation overhead on the cached chain-validate path is
   ~1%, below the run-to-run drift of two independently-estimated
   bechamel tests, so it gets a dedicated paired measurement: rounds
   alternate enabled/disabled batches back to back, which cancels any
   slow drift (GC state, allocator layout) that would otherwise swamp
   the effect.  Result in percent: (t_on - t_off) / t_off * 100. *)
let measure_obs_overhead ?(rounds = 600) ?(batch = 32) () =
  let chain, store = Lazy.force bench_chain in
  let now = Ts.paper_epoch in
  let run_batch () =
    for _ = 1 to batch do
      ignore (Chain.validate ~now ~store chain)
    done
  in
  (* warm the verify memo and the branch predictors on both sides *)
  Obs.set_enabled false;
  run_batch ();
  Obs.set_enabled true;
  run_batch ();
  (* median of the per-round on/off ratios: a timer interrupt landing
     in one side's batch skews that round only, and the median ignores
     such outlier rounds entirely *)
  let ratios = Array.make rounds 1.0 in
  for r = 0 to rounds - 1 do
    Obs.set_enabled true;
    let t0 = Unix.gettimeofday () in
    run_batch ();
    let on = Unix.gettimeofday () -. t0 in
    Obs.set_enabled false;
    let t1 = Unix.gettimeofday () in
    run_batch ();
    let off = Unix.gettimeofday () -. t1 in
    ratios.(r) <- (if off > 0.0 then on /. off else 1.0)
  done;
  Obs.set_enabled true;
  Array.sort compare ratios;
  let median =
    if rounds land 1 = 1 then ratios.(rounds / 2)
    else (ratios.((rounds / 2) - 1) +. ratios.(rounds / 2)) /. 2.0
  in
  100.0 *. (median -. 1.0)

let obs_overhead_pct : float option ref = ref None

(* --- serve throughput ------------------------------------------------- *)

(* Sustained qps and per-class latency of the trust-decision server,
   measured end to end through serve_burst over a mixed request corpus
   (the frame mix leans validate-heavy, the expensive class).  Cold is
   a fresh server with an empty verify memo; warm re-serves the same
   corpus with the memo hot.  Bursts stay within the admission queue so
   every request is answered — shedding would turn latency into drops.
   Per-class p50/p99 come from the server's own serve.latency.*
   histograms, reset before the warm phase so they hold warm
   observations only. *)

module Serve = Tangled_serve.Serve

let serve_results : (string * J.t) list ref = ref []

let serve_corpus n =
  let w = Lazy.force world in
  let u = w.Pipeline.universe in
  let rng = Prng.create 424243 in
  let chains =
    let mint (r : BP.root) =
      let leaf =
        Authority.issue_leaf ~bits:384 ~digest:Dk.SHA1 rng
          ~parent:r.BP.authority ~dns_names:[ "bench.example" ]
          (Tangled_x509.Dn.make "bench.example")
      in
      Hex.encode (C.encode leaf)
    in
    Array.map mint (Array.sub u.BP.roots 0 8)
  in
  let root_names =
    Array.map (fun (r : BP.root) -> r.BP.display_name)
      (Array.sub u.BP.roots 0 16)
  in
  let stores = [| "aosp44"; "aosp42"; "mozilla"; "ios7"; "handset:1" |] in
  let frame fields = J.to_string (J.Obj fields) in
  List.init n (fun i ->
      match Prng.int rng 100 with
      | k when k < 60 ->
          frame
            [
              ("id", J.Int i);
              ("op", J.String "validate");
              ("store", J.String (Prng.choose rng stores));
              ("chain", J.List [ J.String (Prng.choose rng chains) ]);
            ]
      | k when k < 80 ->
          frame
            [
              ("id", J.Int i);
              ("op", J.String "diff");
              ("store", J.String (Prng.choose rng stores));
              ("baseline", J.String "aosp44");
            ]
      | k when k < 90 ->
          frame
            [
              ("id", J.Int i);
              ("op", J.String "coverage");
              ("root", J.String (Prng.choose rng root_names));
            ]
      | k when k < 95 -> frame [ ("id", J.Int i); ("op", J.String "stores") ]
      | _ -> frame [ ("id", J.Int i); ("op", J.String "health") ])

let run_serve_bench ?(requests = 1024) ?(warm_rounds = 3) () =
  let w = Lazy.force world in
  let corpus = serve_corpus requests in
  let cap = Serve.default_config.Serve.queue_capacity in
  let rec chunks acc = function
    | [] -> List.rev acc
    | l ->
        let burst = List.filteri (fun i _ -> i < cap) l in
        let rest = List.filteri (fun i _ -> i >= cap) l in
        chunks (burst :: acc) rest
  in
  let bursts = chunks [] corpus in
  let pump server =
    List.iter (fun b -> ignore (Serve.serve_burst server b)) bursts
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  Printf.printf "--- serve %s\n%!" (String.make 54 '-');
  Obs.reset_all ();
  Chain.clear_verify_cache ();
  let server = Serve.create w in
  let cold_s = timed (fun () -> pump server) in
  Obs.reset_all ();
  let warm_s = ref 0.0 in
  for _ = 1 to warm_rounds do
    warm_s := !warm_s +. timed (fun () -> pump server)
  done;
  let warm_requests = requests * warm_rounds in
  let cold_qps = float_of_int requests /. cold_s in
  let warm_qps = float_of_int warm_requests /. !warm_s in
  let s = Serve.summary server in
  let answered_all =
    s.Serve.seen = requests * (warm_rounds + 1)
    && s.Serve.answered = s.Serve.seen
  in
  Printf.printf "  %-38s %8.0f req/s\n%!" "cold_qps" cold_qps;
  Printf.printf "  %-38s %8.0f req/s (%d rounds)\n%!" "warm_qps" warm_qps
    warm_rounds;
  let per_class =
    List.filter_map
      (fun cls ->
        let snap =
          Obs.histogram_snapshot (Obs.histogram ("serve.latency." ^ cls))
        in
        if snap.Obs.total = 0 then None
        else
          let p50 = Obs.quantile snap 0.5 *. 1e6 in
          let p99 = Obs.quantile snap 0.99 *. 1e6 in
          Printf.printf "  %-38s p50 %8.1f us   p99 %8.1f us   (%d reqs)\n%!"
            ("latency " ^ cls) p50 p99 snap.Obs.total;
          Some
            ( cls,
              J.Obj
                [
                  ("requests", J.Int snap.Obs.total);
                  ("p50_us", J.Float p50);
                  ("p99_us", J.Float p99);
                ] ))
      [ "validate"; "diff"; "coverage"; "stores"; "health" ]
  in
  Printf.printf "  %-38s %s\n%!" "all requests answered"
    (if answered_all then "yes" else "NO");
  serve_results :=
    [
      ("requests", J.Int requests);
      ("warm_rounds", J.Int warm_rounds);
      ("cold_qps", J.Float cold_qps);
      ("warm_qps", J.Float warm_qps);
      ("all_answered", J.Bool answered_all);
      ("warm_latency_us", J.Obj per_class);
    ]

(* --- the decision cache and the signing precompute --------------------- *)

(* Microbenches for the PR 8 fast paths: the per-key exponent schedule
   (allocation-free windowed powm), the sparse 65537 walk, the
   fixed-base comb against the general modpow it shortcuts, and the
   end-to-end RSA sign/verify pair with the per-key precompute caches
   on vs off.  384-bit operands — the Notary corpus default. *)
let precompute_tests () =
  let module B = Tangled_numeric.Bigint in
  let module Mont = Tangled_numeric.Montgomery in
  let rng = Prng.create 77517 in
  let key = Rsa.generate ~mr_rounds:6 rng ~bits:384 in
  let n = key.Rsa.pub.Rsa.n in
  let ctx = Mont.create n in
  let b = B.random_below rng n in
  let e = B.random_below rng n in
  let sched = Mont.schedule e in
  let sc = Mont.scratch ctx in
  let fb =
    Mont.Fixed_base.precompute ctx b ~bits:(max 1 (Mont.schedule_bits sched))
  in
  let sched_65537 = Mont.schedule (B.of_int 65537) in
  let msg = String.make 64 'm' in
  [
    Test.make ~name:"modpow_384bit_full_exp"
      (Staged.stage (fun () -> ignore (Mont.modpow ctx b e)));
    Test.make ~name:"powm_scheduled_384bit"
      (Staged.stage (fun () -> ignore (Mont.powm ctx sc sched b)));
    Test.make ~name:"fixed_base_powm_384bit"
      (Staged.stage (fun () -> ignore (Mont.Fixed_base.powm fb sched)));
    Test.make ~name:"powm_sparse_65537"
      (Staged.stage (fun () -> ignore (Mont.powm_sparse ctx sc sched_65537 b)));
    Test.make ~name:"rsa384_sign_precompute_on"
      (Staged.stage (fun () ->
           Rsa.set_precompute true;
           ignore (Rsa.sign key ~digest:Dk.SHA1 msg)));
    Test.make ~name:"rsa384_sign_precompute_off"
      (Staged.stage (fun () ->
           Rsa.set_precompute false;
           ignore (Rsa.sign key ~digest:Dk.SHA1 msg)));
  ]

(* --- serve decision cache: warm qps on/off + capacity sweep ------------ *)

let serve_cache_results : (string * J.t) list ref = ref []

(* a validate-only corpus whose key space (two-leaf chains crossed
   with six stores, ~14k combinations from 48 minted leaves) is wider
   than the largest capacity in the sweep, so the hit rate genuinely
   tracks capacity instead of saturating *)
let sweep_corpus n =
  let w = Lazy.force world in
  let u = w.Pipeline.universe in
  let rng = Prng.create 9090 in
  let leaves =
    Array.init 48 (fun i ->
        let r = u.BP.roots.(i mod Array.length u.BP.roots) in
        let leaf =
          Authority.issue_leaf ~bits:384 ~digest:Dk.SHA1 rng
            ~parent:r.BP.authority ~dns_names:[ "sweep.example" ]
            (Tangled_x509.Dn.make (Printf.sprintf "sweep%d.example" i))
        in
        Hex.encode (C.encode leaf))
  in
  let stores = [| "aosp41"; "aosp42"; "aosp43"; "aosp44"; "mozilla"; "ios7" |] in
  let frame fields = J.to_string (J.Obj fields) in
  List.init n (fun i ->
      frame
        [
          ("id", J.Int i);
          ("op", J.String "validate");
          ("store", J.String (Prng.choose rng stores));
          ( "chain",
            J.List
              [ J.String (Prng.choose rng leaves);
                J.String (Prng.choose rng leaves) ] );
        ])

let run_serve_cache_bench ?(requests = 1024) ?(warm_rounds = 2) () =
  let w = Lazy.force world in
  let module Cache = Tangled_cache.Cache in
  let qcap = Serve.default_config.Serve.queue_capacity in
  let chunks corpus =
    let rec go acc = function
      | [] -> List.rev acc
      | l ->
          let burst = List.filteri (fun i _ -> i < qcap) l in
          let rest = List.filteri (fun i _ -> i >= qcap) l in
          go (burst :: acc) rest
    in
    go [] corpus
  in
  let pump server bursts =
    List.iter (fun b -> ignore (Serve.serve_burst server b)) bursts
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  Printf.printf "--- serve decision cache %s\n%!" (String.make 35 '-');
  (* warm qps over the realistic mixed corpus, cache off vs on: the
     "before" side replays PR 6's cacheless request loop *)
  let mixed = chunks (serve_corpus requests) in
  let warm_qps capacity =
    Obs.reset_all ();
    Chain.clear_verify_cache ();
    let config = { Serve.default_config with Serve.cache_capacity = capacity } in
    let server = Serve.create ~config w in
    pump server mixed;
    (* cold round: verify memo + decision cache warm from here *)
    let s = ref 0.0 in
    for _ = 1 to warm_rounds do
      s := !s +. timed (fun () -> pump server mixed)
    done;
    float_of_int (requests * warm_rounds) /. !s
  in
  let qps_off = warm_qps 0 in
  let qps_on = warm_qps Serve.default_config.Serve.cache_capacity in
  Printf.printf "  %-38s %8.0f req/s\n%!" "warm_qps cache off (before)" qps_off;
  Printf.printf "  %-38s %8.0f req/s\n%!"
    (Printf.sprintf "warm_qps cache %d (after)"
       Serve.default_config.Serve.cache_capacity)
    qps_on;
  Printf.printf "  %-38s %8.2fx\n%!" "warm speedup" (qps_on /. qps_off);
  (* hit rate vs capacity over the wide-key-space corpus: three rounds
     each (one fill, two steady), counters reset per capacity *)
  (* 8x the mixed-corpus size: at the full run's 1024 requests the
     draw touches ~5.6k distinct keys out of the ~13.8k key space, so
     1k < 4k < 5.6k < 16k and the three capacities separate *)
  let wide = chunks (sweep_corpus (8 * requests)) in
  let sweep =
    List.map
      (fun capacity ->
        Obs.reset_all ();
        Chain.clear_verify_cache ();
        let config =
          { Serve.default_config with Serve.cache_capacity = capacity }
        in
        let server = Serve.create ~config w in
        for _ = 1 to 3 do
          pump server wide
        done;
        match Serve.cache_stats server with
        | Some cs ->
            let total = cs.Cache.hits + cs.Cache.misses in
            let rate =
              if total = 0 then 0.0
              else float_of_int cs.Cache.hits /. float_of_int total
            in
            Printf.printf "  %-38s %7.1f%% hit   (%d entries, %d evictions)\n%!"
              (Printf.sprintf "capacity %6d" capacity)
              (100.0 *. rate) cs.Cache.entries cs.Cache.evictions;
            ( string_of_int capacity,
              J.Obj
                [
                  ("hit_rate", J.Float rate);
                  ("hits", J.Int cs.Cache.hits);
                  ("misses", J.Int cs.Cache.misses);
                  ("evictions", J.Int cs.Cache.evictions);
                  ("entries", J.Int cs.Cache.entries);
                ] )
        | None -> (string_of_int capacity, J.Null))
      [ 1024; 4096; 16384 ]
  in
  serve_cache_results :=
    [
      ("requests", J.Int requests);
      ("warm_rounds", J.Int warm_rounds);
      ("warm_qps_cache_off", J.Float qps_off);
      ("warm_qps_cache_on", J.Float qps_on);
      ("warm_speedup", J.Float (qps_on /. qps_off));
      ("hit_rate_by_capacity", J.Obj sweep);
    ]

(* paired unboxed-vs-reference MD5 ratio for the regression floor:
   alternating same-process batches with a median over rounds, so the
   gate doesn't ride on two Bechamel estimates taken minutes apart in
   different GC regimes (the cross-group JSON ratio stays as-is) *)
let measure_md5_pair ?(rounds = 200) ?(batch = 64) () =
  let msg = String.make 512 'm' in
  let run f =
    for _ = 1 to batch do
      ignore (f msg)
    done
  in
  run Tangled_hash.Md5.digest;
  run Tangled_hash.Reference.Md5.digest;
  let ratios = Array.make rounds 1.0 in
  for r = 0 to rounds - 1 do
    let t0 = Unix.gettimeofday () in
    run Tangled_hash.Md5.digest;
    let unboxed = Unix.gettimeofday () -. t0 in
    let t1 = Unix.gettimeofday () in
    run Tangled_hash.Reference.Md5.digest;
    let boxed = Unix.gettimeofday () -. t1 in
    if unboxed > 0.0 then ratios.(r) <- boxed /. unboxed
  done;
  Array.sort compare ratios;
  ratios.(rounds / 2)

(* --- scale certs/s with the precompute off vs on ----------------------- *)

let scale_results : (string * J.t) list ref = ref []

(* the paper-scale gate's own workload — Notary corpus generation on
   the columnar arena — timed with the wide multiplication kernel and
   lean issuance disabled (PR 8's best code path, the "before") and
   enabled.  The per-key precompute stays on for both sides: it was
   PR 8's contribution and belongs to the baseline. *)
let run_scale_pair ?(leaves = 200_000) () =
  let w = Lazy.force world in
  let u = w.Pipeline.universe in
  let measure () =
    Chain.clear_verify_cache ();
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let n = Notary.generate ~leaves ~jobs:1 ~seed:774 u in
    let dt = Unix.gettimeofday () -. t0 in
    float_of_int (Notary.total n) /. dt
  in
  Printf.printf "--- scale certs/s at %d leaves %s\n%!" leaves
    (String.make 25 '-');
  Rsa.set_precompute true;
  Rsa.set_wide_kernel false;
  Authority.set_lean false;
  Notary.set_lean false;
  let before = measure () in
  Rsa.set_wide_kernel true;
  Authority.set_lean true;
  Notary.set_lean true;
  let after = measure () in
  Printf.printf "  %-38s %8.0f certs/s\n%!" "wide kernel + lean off (before)" before;
  Printf.printf "  %-38s %8.0f certs/s\n%!" "wide kernel + lean on (after)" after;
  Printf.printf "  %-38s %8.2fx\n%!" "speedup" (after /. before);
  scale_results :=
    [
      ("leaves", J.Int leaves);
      ("before_certs_s", J.Float before);
      ("after_certs_s", J.Float after);
      ("speedup", J.Float (after /. before));
    ]

let ct_results : (string * J.t) list ref = ref []

(* the CT log's hot paths at notary scale: synthetic ~600 B leaves (a
   DER-sized template with the leaf index stamped in the first bytes —
   real certificate issuance would dominate the measurement), appended
   one by one through the compaction frontier, then inclusion and
   consistency proofs generated against the full tree and re-checked
   through the pure verifier.  Everything is wall-clocked directly:
   each phase runs thousands of iterations, so Bechamel's per-run
   bookkeeping would only add noise. *)
let run_ct_bench ?(leaves = 200_000) () =
  let module Ct = Tangled_ct.Log in
  let module Pf = Tangled_ct.Proof in
  let template = Bytes.make 600 '\xa5' in
  let leaf i =
    Bytes.blit_string (Printf.sprintf "%012d" i) 0 template 0 12;
    Bytes.to_string template
  in
  Printf.printf "--- ct log at %d leaves %s\n%!" leaves (String.make 26 '-');
  Gc.compact ();
  let log = Ct.create ~name:"bench" () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to leaves - 1 do
    ignore (Ct.append log (leaf i))
  done;
  let appends_s = float_of_int leaves /. (Unix.gettimeofday () -. t0) in
  let root = Ct.head log in
  let rounds = 2000 in
  let idx k = (k * 7919 + 13) mod leaves in
  let ok = function Ok v -> v | Error e -> failwith ("ct bench: " ^ e) in
  let timed f =
    let t0 = Unix.gettimeofday () in
    for k = 0 to rounds - 1 do
      f k
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int rounds *. 1e9
  in
  let incl_gen_ns =
    timed (fun k -> ignore (ok (Ct.inclusion_proof log ~index:(idx k) ~tree_size:leaves)))
  in
  let incl_proofs =
    Array.init rounds (fun k ->
        ok (Ct.inclusion_proof log ~index:(idx k) ~tree_size:leaves))
  in
  let incl_verify_ns =
    timed (fun k ->
        if
          not
            (Pf.verify_inclusion ~leaf:(leaf (idx k)) ~index:(idx k)
               ~tree_size:leaves ~proof:incl_proofs.(k) ~root)
        then failwith "ct bench: inclusion proof rejected")
  in
  let first k = 1 + ((k * 104729) mod (leaves - 1)) in
  let cons_gen_ns =
    timed (fun k ->
        ignore (ok (Ct.consistency_proof log ~first:(first k) ~second:leaves)))
  in
  let cons_proofs =
    Array.init rounds (fun k ->
        ( first k,
          ok (Ct.head_at log (first k)),
          ok (Ct.consistency_proof log ~first:(first k) ~second:leaves) ))
  in
  let cons_verify_ns =
    timed (fun k ->
        let f, first_root, proof = cons_proofs.(k) in
        if
          not
            (Pf.verify_consistency ~first:f ~second:leaves ~first_root
               ~second_root:root ~proof)
        then failwith "ct bench: consistency proof rejected")
  in
  Printf.printf "  %-38s %8.0f leaves/s\n%!" "append (frontier)" appends_s;
  Printf.printf "  %-38s %8.0f ns\n%!" "inclusion proof gen" incl_gen_ns;
  Printf.printf "  %-38s %8.0f ns\n%!" "inclusion proof verify" incl_verify_ns;
  Printf.printf "  %-38s %8.0f ns\n%!" "consistency proof gen" cons_gen_ns;
  Printf.printf "  %-38s %8.0f ns\n%!" "consistency proof verify" cons_verify_ns;
  ct_results :=
    [
      ("leaves", J.Int leaves);
      ("appends_per_s", J.Float appends_s);
      ("inclusion_gen_ns", J.Float incl_gen_ns);
      ("inclusion_verify_ns", J.Float incl_verify_ns);
      ("consistency_gen_ns", J.Float cons_gen_ns);
      ("consistency_verify_ns", J.Float cons_verify_ns);
      ("head", J.String (Hex.encode root));
    ]

(* --- harness -------------------------------------------------------------- *)

(* every estimate lands here as (group, test, ns/run) for the JSON dump *)
let measurements : (string * string * float) list ref = ref []

let run_group ?(quota = 0.5) label tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false () in
  Printf.printf "--- %s %s\n%!" label
    (String.make (Stdlib.max 1 (60 - String.length label)) '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] ->
              measurements := (label, name, ns) :: !measurements;
              let pretty =
                if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
                else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
                else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
                else Printf.sprintf "%8.2f ns" ns
              in
              Printf.printf "  %-38s %s/run\n%!" name pretty
          | _ -> Printf.printf "  %-38s (no estimate)\n%!" name)
        results)
    tests

let find_ns group name =
  List.find_map
    (fun (g, n, ns) -> if g = group && n = name then Some ns else None)
    !measurements

let json_report () =
  let w = Lazy.force world in
  let groups =
    !measurements
    |> List.fold_left
         (fun acc (g, n, ns) ->
           let rows = Option.value ~default:[] (List.assoc_opt g acc) in
           (g, (n, J.Float ns) :: rows) :: List.remove_assoc g acc)
         []
    |> List.map (fun (g, rows) -> (g, J.Obj (List.rev rows)))
  in
  let timings =
    List.map (fun (s : Obs.span) -> (s.Obs.name, J.Float s.Obs.dur_s))
      w.Pipeline.timings
  in
  let ratio name num den =
    match (find_ns num.(0) num.(1), find_ns den.(0) den.(1)) with
    | Some a, Some b when b > 0.0 -> [ (name, J.Float (a /. b)) ]
    | _ -> []
  in
  let speedup =
    ratio "coverage_query_speedup"
      [| "notary_queries"; "scan_validated_by_store" |]
      [| "notary_queries"; "index_validated_by_ids" |]
    @ ratio "modpow_mont_speedup_1024"
        [| "substrate scaling"; "modpow_1024bit" |]
        [| "substrate scaling"; "modpow_mont_1024bit" |]
    @ ratio "chain_validate_cache_speedup"
        [| "substrates"; "chain_validate_cold" |]
        [| "substrates"; "chain_validate_cached" |]
    @ ratio "sha256_unboxed_speedup_512"
        [| "hash_cores"; "sha256_ref_512B" |]
        [| "substrates"; "sha256_512B" |]
    @ ratio "sha1_unboxed_speedup_512"
        [| "hash_cores"; "sha1_ref_512B" |]
        [| "substrates"; "sha1_512B" |]
    @ ratio "md5_unboxed_speedup_512"
        [| "hash_cores"; "md5_ref_512B" |]
        [| "substrates"; "md5_512B" |]
    @ ratio "sha256_unboxed_speedup_16384"
        [| "hash_cores"; "sha256_ref_16384B" |]
        [| "substrate scaling"; "sha256_16384B" |]
    @ ratio "hex_encode_speedup"
        [| "hash_cores"; "hex_encode_chars_512B" |]
        [| "hash_cores"; "hex_encode_512B" |]
    @ ratio "hex_decode_speedup"
        [| "hash_cores"; "hex_decode_chars_1024B" |]
        [| "hash_cores"; "hex_decode_1024B" |]
    @ ratio "powm_schedule_speedup_384"
        [| "cache_precompute"; "modpow_384bit_full_exp" |]
        [| "cache_precompute"; "powm_scheduled_384bit" |]
    @ ratio "fixed_base_speedup_384"
        [| "cache_precompute"; "modpow_384bit_full_exp" |]
        [| "cache_precompute"; "fixed_base_powm_384bit" |]
    @ ratio "sparse_65537_speedup_384"
        [| "cache_precompute"; "modpow_384bit_full_exp" |]
        [| "cache_precompute"; "powm_sparse_65537" |]
    @ ratio "rsa_sign_precompute_speedup_384"
        [| "cache_precompute"; "rsa384_sign_precompute_off" |]
        [| "cache_precompute"; "rsa384_sign_precompute_on" |]
    @ List.concat_map
        (fun bits ->
          ratio
            (Printf.sprintf "wide_mul_speedup_%d" bits)
            [| "wide_kernel"; Printf.sprintf "bigint_mul_%dbit" bits |]
            [| "wide_kernel"; Printf.sprintf "wide_mul_%dbit" bits |]
          @ ratio
              (Printf.sprintf "wide_powm_speedup_%d" bits)
              [| "wide_kernel"; Printf.sprintf "powm26_%dbit" bits |]
              [| "wide_kernel"; Printf.sprintf "powm_wide_%dbit" bits |])
        wide_kernel_widths
  in
  (* digest throughput at each scaling size, derived from the ns/run
     estimates: bytes hashed per second, reported in MB/s *)
  let throughput =
    List.filter_map
      (fun (group, name, bytes) ->
        match find_ns group name with
        | Some ns when ns > 0.0 ->
            Some (name, J.Float (float_of_int bytes /. (ns /. 1e9) /. 1e6))
        | _ -> None)
      [
        ("substrate scaling", "sha256_64B", 64);
        ("substrates", "sha256_512B", 512);
        ("substrate scaling", "sha256_1024B", 1024);
        ("substrate scaling", "sha256_16384B", 16384);
        ("substrates", "sha1_512B", 512);
        ("substrates", "md5_512B", 512);
      ]
  in
  let throughput =
    if throughput = [] then []
    else [ ("hash_throughput_mb_s", J.Obj throughput) ]
  in
  (* observability overhead on the hottest instrumented path, from the
     paired alternating measurement *)
  let obs_overhead =
    match !obs_overhead_pct with
    | Some pct -> [ ("obs_overhead_chain_validate_pct", J.Float pct) ]
    | None -> []
  in
  let serve =
    match !serve_results with [] -> [] | rows -> [ ("serve", J.Obj rows) ]
  in
  let serve_cache =
    match !serve_cache_results with
    | [] -> []
    | rows -> [ ("serve_cache", J.Obj rows) ]
  in
  let scale =
    match !scale_results with [] -> [] | rows -> [ ("scale", J.Obj rows) ]
  in
  let ct =
    match !ct_results with [] -> [] | rows -> [ ("ct", J.Obj rows) ]
  in
  let hits, misses = Chain.verify_cache_stats () in
  J.Obj
    ([
       ("pr", J.Int 10);
       ("world", J.String "quick");
       ("unit", J.String "ns_per_run");
       ("jobs", J.Int w.Pipeline.jobs);
       ("stage_timings_seconds", J.Obj timings);
       ( "verify_cache",
         J.Obj [ ("hits", J.Int hits); ("misses", J.Int misses) ] );
     ]
    @ speedup @ obs_overhead @ throughput @ serve @ serve_cache @ scale @ ct
    @ [ ("benches", J.Obj groups) ])

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let assert_floors = Array.exists (( = ) "--assert-floors") Sys.argv in
  let no_json = Array.exists (( = ) "--no-json") Sys.argv in
  let out =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then "BENCH_10.json"
      else if Sys.argv.(i) = "--out" then Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let t0 = Unix.gettimeofday () in
  Printf.printf "building the shared world (quick config)...\n%!";
  ignore (Lazy.force world);
  Printf.printf "world ready in %.1fs\n\n%!" (Unix.gettimeofday () -. t0);
  print_string (Pipeline.render_timings (Lazy.force world));
  print_newline ();
  let quota = if quick then 0.1 else 0.5 in
  (* the paper-scale pair runs first, on a freshly built world, so the
     certs/s ratio is not depressed by GC overhead from the resident
     heap the later groups accumulate (a constant per-cert cost on both
     sides shrinks the measured speedup) *)
  if not quick then run_scale_pair ();
  if not quick then
    run_group ~quota "paper artefacts (Tables 1-6, Figures 1-3) + extensions"
      (artefact_tests ());
  run_group ~quota "substrates" (substrate_tests ());
  obs_overhead_pct := Some (measure_obs_overhead ());
  run_group ~quota "notary_queries" (notary_query_tests ());
  if quick then run_serve_bench ~requests:256 ~warm_rounds:1 ()
  else run_serve_bench ();
  run_group ~quota "cache_precompute" (precompute_tests ());
  (* the sign on/off pair leaves the toggle wherever Bechamel's last
     iteration put it — restore the default before anything downstream *)
  Rsa.set_precompute true;
  if quick then run_serve_cache_bench ~requests:256 ~warm_rounds:1 ()
  else run_serve_cache_bench ();
  if not quick then begin
    run_group ~quota "hash_cores" (hash_core_tests ());
    run_group ~quota "substrate scaling" (scaling_tests ());
    run_group ~quota "wide_kernel" (wide_kernel_tests ());
    run_group ~quota "ablations" (ablation_tests ())
  end;
  (* floor asserts need a scale pair even in the quick smoke run; a
     20k-leaf pair keeps the gate fast (the md5 floor measures its own
     paired ratio at assert time) *)
  if quick && assert_floors then run_scale_pair ~leaves:20_000 ();
  (* the ct section is cheap enough (a few seconds at 200 k leaves) to
     run in both modes whenever its floors will be asserted, and always
     in the full run so BENCH_10.json records it at paper scale *)
  if (not quick) || assert_floors then run_ct_bench ();
  (match (find_ns "notary_queries" "scan_validated_by_store",
          find_ns "notary_queries" "index_validated_by_ids") with
  | Some scan, Some index when index > 0.0 ->
      Printf.printf "\ncoverage-query speedup (scan/index): %.1fx\n%!" (scan /. index)
  | _ -> ());
  List.iter
    (fun bits ->
      match
        ( find_ns "substrate scaling" (Printf.sprintf "modpow_%dbit" bits),
          find_ns "substrate scaling" (Printf.sprintf "modpow_mont_%dbit" bits) )
      with
      | Some legacy, Some mont when mont > 0.0 ->
          Printf.printf "modpow %d-bit speedup (legacy/montgomery): %.1fx\n%!" bits
            (legacy /. mont)
      | _ -> ())
    [ 256; 512; 1024 ];
  List.iter
    (fun (label, ref_pair, new_pair) ->
      match
        (find_ns (fst ref_pair) (snd ref_pair), find_ns (fst new_pair) (snd new_pair))
      with
      | Some before, Some after when after > 0.0 ->
          Printf.printf "%s speedup (boxed/unboxed): %.1fx\n%!" label (before /. after)
      | _ -> ())
    [
      ("sha256 512B", ("hash_cores", "sha256_ref_512B"), ("substrates", "sha256_512B"));
      ("sha1 512B", ("hash_cores", "sha1_ref_512B"), ("substrates", "sha1_512B"));
      ("md5 512B", ("hash_cores", "md5_ref_512B"), ("substrates", "md5_512B"));
      ( "sha256 16KiB",
        ("hash_cores", "sha256_ref_16384B"),
        ("substrate scaling", "sha256_16384B") );
    ];
  (match (find_ns "substrates" "chain_validate_cold",
          find_ns "substrates" "chain_validate_cached") with
  | Some cold, Some cached when cached > 0.0 ->
      Printf.printf "chain-validate verify-cache speedup (cold/cached): %.1fx\n%!"
        (cold /. cached)
  | _ -> ());
  List.iter
    (fun (label, before, after) ->
      match
        (find_ns "cache_precompute" before, find_ns "cache_precompute" after)
      with
      | Some b, Some a when a > 0.0 ->
          Printf.printf "%s speedup: %.1fx\n%!" label (b /. a)
      | _ -> ())
    [
      ("powm schedule 384-bit", "modpow_384bit_full_exp", "powm_scheduled_384bit");
      ("fixed-base comb 384-bit", "modpow_384bit_full_exp", "fixed_base_powm_384bit");
      ("sparse 65537 384-bit", "modpow_384bit_full_exp", "powm_sparse_65537");
      ("rsa sign precompute 384-bit", "rsa384_sign_precompute_off",
       "rsa384_sign_precompute_on");
    ];
  (match !obs_overhead_pct with
  | Some pct ->
      Printf.printf
        "obs instrumentation overhead (chain validate, paired): %.2f%%\n%!" pct
  | None -> ());
  (let hits, misses = Chain.verify_cache_stats () in
   Printf.printf "verify cache: %d hits / %d misses\n%!" hits misses);
  List.iter
    (fun bits ->
      match
        ( find_ns "wide_kernel" (Printf.sprintf "powm26_%dbit" bits),
          find_ns "wide_kernel" (Printf.sprintf "powm_wide_%dbit" bits) )
      with
      | Some p26, Some pw when pw > 0.0 ->
          Printf.printf "powm %d-bit wide-plane speedup (26-bit/wide): %.2fx\n%!"
            bits (p26 /. pw)
      | _ -> ())
    wide_kernel_widths;
  if not no_json then begin
    let contents = J.to_string ~pretty:true (json_report ()) ^ "\n" in
    Tangled_core.Export.write_text out contents;
    Printf.printf "wrote %s\n%!" out
  end;
  if assert_floors then begin
    (* regression floors for the @check gate: each optimisation this
       repo has shipped must still be a speedup, not a slowdown *)
    let failures = ref [] in
    let floor name v =
      match v with
      | None -> failures := (name ^ " (not measured)") :: !failures
      | Some x ->
          Printf.printf "floor %-28s %6.2fx (needs >= 1.0)\n%!" name x;
          if x < 1.0 then
            failures := Printf.sprintf "%s = %.3f" name x :: !failures
    in
    floor "scale_speedup"
      (match List.assoc_opt "speedup" !scale_results with
      | Some (J.Float x) -> Some x
      | _ -> None);
    (* the paired-median md5 ratio is ~±1% noisy at this grain and the
       two cores can measure dead equal on some hosts; a 2% margin
       floors it at "not slower beyond noise" instead of a coin flip *)
    floor "md5_unboxed_speedup_512" (Some (measure_md5_pair () /. 0.98));
    floor "warm_serve_cache_speedup"
      (match List.assoc_opt "warm_speedup" !serve_cache_results with
      | Some (J.Float x) -> Some x
      | _ -> None);
    (* CT floors: the frontier must sustain >= 20 k appends/s on
       600 B leaves (an order of magnitude under what the streaming
       SHA-256 core delivers, so only a real regression trips it) and
       the pure verifier must check an inclusion proof in under 1 ms *)
    floor "ct_appends_per_s"
      (match List.assoc_opt "appends_per_s" !ct_results with
      | Some (J.Float x) -> Some (x /. 20_000.)
      | _ -> None);
    floor "ct_inclusion_verify_1ms"
      (match List.assoc_opt "inclusion_verify_ns" !ct_results with
      | Some (J.Float x) when x > 0.0 -> Some (1e6 /. x)
      | _ -> None);
    match !failures with
    | [] -> Printf.printf "all bench floors hold\n%!"
    | fs ->
        prerr_endline ("bench floors violated: " ^ String.concat "; " fs);
        exit 1
  end;
  if not quick then begin
    (* the artefacts themselves, so bench output records the reproduction *)
    print_newline ();
    print_string (Report.run_all (Lazy.force world))
  end
