module C = Tangled_x509.Certificate
module Dn = Tangled_x509.Dn

type provenance =
  | Aosp
  | Manufacturer of string
  | Operator of string
  | User
  | App of string

let provenance_to_string = function
  | Aosp -> "AOSP"
  | Manufacturer m -> "manufacturer:" ^ m
  | Operator o -> "operator:" ^ o
  | User -> "user"
  | App a -> "app:" ^ a

type entry = { cert : C.t; provenance : provenance; enabled : bool }

type actor =
  | System_image
  | Settings_ui
  | Privileged_app of string
  | Unprivileged_app of string

let actor_to_string = function
  | System_image -> "system image"
  | Settings_ui -> "settings UI"
  | Privileged_app a -> "privileged app " ^ a
  | Unprivileged_app a -> "unprivileged app " ^ a

type error =
  | Permission_denied of actor * string
  | Not_found_in_store of string
  | Duplicate of string

let error_to_string = function
  | Permission_denied (actor, what) ->
      Printf.sprintf "permission denied: %s may not %s" (actor_to_string actor) what
  | Not_found_in_store subject -> Printf.sprintf "certificate not in store: %s" subject
  | Duplicate subject -> Printf.sprintf "certificate already in store: %s" subject

type journal_event = {
  actor : actor;
  action : [ `Add | `Remove | `Disable | `Enable ];
  subject : string;
}

module Smap = Map.Make (String)

type t = {
  name : string;
  by_key : entry Smap.t;
  order : string list;  (** insertion order of equivalence keys, reversed *)
  events : journal_event list;  (** newest first *)
}

let empty name = { name; by_key = Smap.empty; order = []; events = [] }
let name t = t.name

let key_of cert = C.equivalence_key cert

let raw_add t provenance cert =
  let key = key_of cert in
  if Smap.mem key t.by_key then t
  else
    {
      t with
      by_key = Smap.add key { cert; provenance; enabled = true } t.by_key;
      order = key :: t.order;
    }

let of_certs name provenance certs =
  List.fold_left (fun t c -> raw_add t provenance c) (empty name) certs

(* Android's access rules (§2): the factory image defines the store;
   afterwards the Settings UI can add user certificates and toggle any;
   only root-privileged code can do more — which is precisely the attack
   surface §6 documents. *)
let may actor action =
  match (actor, action) with
  | System_image, _ -> true
  | Privileged_app _, _ -> true
  | Settings_ui, (`Add | `Disable | `Enable) -> true
  | Settings_ui, `Remove -> false
  | Unprivileged_app _, _ -> false

let journalled t actor action subject =
  match actor with
  | System_image -> t
  | _ -> { t with events = { actor; action; subject } :: t.events }

let add t actor provenance cert =
  if not (may actor `Add) then Error (Permission_denied (actor, "add certificates"))
  else begin
    let key = key_of cert in
    if Smap.mem key t.by_key then Error (Duplicate (Dn.to_string cert.C.subject))
    else begin
      let provenance =
        (* the Settings UI can only create user entries, whatever is claimed *)
        match actor with Settings_ui -> User | _ -> provenance
      in
      let t =
        {
          t with
          by_key = Smap.add key { cert; provenance; enabled = true } t.by_key;
          order = key :: t.order;
        }
      in
      Ok (journalled t actor `Add (Dn.to_string cert.C.subject))
    end
  end

let update_entry t actor action cert f =
  let verb =
    match action with
    | `Remove -> "remove certificates"
    | `Disable -> "disable certificates"
    | `Enable -> "enable certificates"
    | `Add -> "add certificates"
  in
  if not (may actor action) then Error (Permission_denied (actor, verb))
  else begin
    let key = key_of cert in
    match Smap.find_opt key t.by_key with
    | None -> Error (Not_found_in_store (Dn.to_string cert.C.subject))
    | Some entry ->
        let t = f t key entry in
        Ok (journalled t actor action (Dn.to_string cert.C.subject))
  end

let remove t actor cert =
  update_entry t actor `Remove cert (fun t key _ ->
      {
        t with
        by_key = Smap.remove key t.by_key;
        order = List.filter (fun k -> k <> key) t.order;
      })

let disable t actor cert =
  update_entry t actor `Disable cert (fun t key entry ->
      { t with by_key = Smap.add key { entry with enabled = false } t.by_key })

let enable t actor cert =
  update_entry t actor `Enable cert (fun t key entry ->
      { t with by_key = Smap.add key { entry with enabled = true } t.by_key })

let merge a b =
  List.fold_left
    (fun acc key ->
      let entry = Smap.find key b.by_key in
      if Smap.mem key acc.by_key then acc
      else
        {
          acc with
          by_key = Smap.add key entry acc.by_key;
          order = key :: acc.order;
        })
    a (List.rev b.order)

let mem_key t key =
  match Smap.find_opt key t.by_key with
  | Some entry -> entry.enabled
  | None -> false

let id_set interner t =
  let module I = Tangled_engine.Interner in
  let module S = Tangled_engine.Id_set in
  let set = S.create (I.cardinal interner) in
  Smap.iter
    (fun key entry ->
      if entry.enabled then
        (* keys the universe never interned (e.g. user-imported PEM)
           can anchor nothing the coverage index knows about *)
        match I.find interner key with
        | Some id -> S.add set id
        | None -> ())
    t.by_key;
  set

let mem t cert = mem_key t (key_of cert)

let entries t =
  List.rev_map (fun key -> Smap.find key t.by_key) t.order

let certs t =
  entries t |> List.filter (fun e -> e.enabled) |> List.map (fun e -> e.cert)

let find_by_subject t dn =
  entries t
  |> List.filter (fun e -> e.enabled && Dn.equal e.cert.C.subject dn)

let cardinal t = Smap.fold (fun _ e acc -> if e.enabled then acc + 1 else acc) t.by_key 0

let provenance_counts t =
  let tbl = Hashtbl.create 7 in
  Smap.iter
    (fun _ e ->
      if e.enabled then
        Hashtbl.replace tbl e.provenance
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.provenance)))
    t.by_key;
  Hashtbl.fold (fun p n acc -> (p, n) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> Stdlib.compare b a)

let diff device baseline =
  let additions =
    certs device |> List.filter (fun c -> not (mem_key baseline (key_of c)))
  in
  let missing =
    certs baseline |> List.filter (fun c -> not (mem_key device (key_of c)))
  in
  (additions, missing)

let journal t = List.rev t.events

let to_pem t =
  certs t |> List.map Tangled_x509.Pem.encode_certificate |> String.concat ""
