(** The Android system root store model (§2 of the paper).

    A store is a set of trusted root certificates, each tagged with the
    provenance the analysis pipeline later attributes additions to, and
    with Android's enable/disable state.  Mutation goes through an
    {!actor}-checked API that enforces the platform's rules — and
    reproduces their central weakness: any actor with root privileges
    can do anything, silently. *)

type provenance =
  | Aosp          (** shipped in Google's official distribution *)
  | Manufacturer of string
  | Operator of string
  | User          (** added through system settings, e.g. for a VPN *)
  | App of string (** installed by a (root-privileged) application *)

val provenance_to_string : provenance -> string

type entry = {
  cert : Tangled_x509.Certificate.t;
  provenance : provenance;
  enabled : bool;
}

type actor =
  | System_image        (** the firmware build: unrestricted, pre-boot *)
  | Settings_ui         (** the device owner in Settings: may add [User]
                            certificates and disable/re-enable any *)
  | Privileged_app of string
      (** an app running with root permissions: unrestricted — the
          paper's §6 threat *)
  | Unprivileged_app of string  (** a normal app: read-only *)

type error =
  | Permission_denied of actor * string
  | Not_found_in_store of string
  | Duplicate of string

val error_to_string : error -> string

type t
(** Immutable; mutations return updated stores.  Identity of entries is
    the paper's (subject, RSA modulus) equivalence key. *)

val empty : string -> t
(** [empty name] is a store with the given display name. *)

val name : t -> string

val of_certs : string -> provenance -> Tangled_x509.Certificate.t list -> t
(** Bulk-load a firmware store; duplicates (by equivalence) collapse,
    first occurrence wins. *)

val add : t -> actor -> provenance -> Tangled_x509.Certificate.t -> (t, error) result
val remove : t -> actor -> Tangled_x509.Certificate.t -> (t, error) result
val disable : t -> actor -> Tangled_x509.Certificate.t -> (t, error) result
val enable : t -> actor -> Tangled_x509.Certificate.t -> (t, error) result

val merge : t -> t -> t
(** [merge a b] is [a] extended with [b]'s entries ([a] wins on
    conflicts); used to assemble firmware images (AOSP base + vendor +
    operator overlays). *)

val mem : t -> Tangled_x509.Certificate.t -> bool
(** Membership by equivalence key, enabled entries only. *)

val mem_key : t -> string -> bool
(** Membership by a precomputed {!Tangled_x509.Certificate.equivalence_key}. *)

val id_set : Tangled_engine.Interner.t -> t -> Tangled_engine.Id_set.t
(** The enabled membership projected onto interned root ids — the form
    every coverage-index query consumes.  Keys unknown to the interner
    (certificates the universe never minted, e.g. user imports) are
    dropped: they cannot anchor an indexed chain. *)

val find_by_subject : t -> Tangled_x509.Dn.t -> entry list
(** All enabled entries whose certificate subject matches — chain
    building's issuer lookup. *)

val entries : t -> entry list
(** All entries, disabled included, in insertion order. *)

val certs : t -> Tangled_x509.Certificate.t list
(** Enabled certificates in insertion order. *)

val cardinal : t -> int
(** Number of enabled entries. *)

val provenance_counts : t -> (provenance * int) list
(** Enabled-entry census by provenance (provenances collapsed by
    constructor argument equality). *)

val diff : t -> t -> Tangled_x509.Certificate.t list * Tangled_x509.Certificate.t list
(** [diff device baseline] is [(additions, missing)] by equivalence
    key — the Figure 1 measurement. *)

type journal_event = {
  actor : actor;
  action : [ `Add | `Remove | `Disable | `Enable ];
  subject : string;
}

val journal : t -> journal_event list
(** Audit log of every successful mutation since construction, oldest
    first.  System-image loads are not journalled: the paper's point is
    that post-factory mutations are what users never see. *)

val to_pem : t -> string
(** All enabled certificates as concatenated PEM blocks, mirroring
    /system/etc/security/cacerts. *)
