(* Deprecated shim over Tangled_obs.Obs.

   The collector API survives for external callers, but every call now
   delegates to the unified observability layer: [time] runs under
   [Obs.spanned] (so the span also lands in the global span tree, with
   error status when the thunk raises) and [render] reuses
   [Obs.render_span_table], so shim output and Obs output are the same
   bytes by construction. *)

module Obs = Tangled_obs.Obs

type span = { stage : string; seconds : float }

type t = { mutable recorded : span list (* newest first *) }

let create () = { recorded = [] }

let time t stage f =
  let result, s = Obs.spanned stage f in
  t.recorded <- { stage; seconds = s.Obs.dur_s } :: t.recorded;
  result

let spans t = List.rev t.recorded

let total spans = List.fold_left (fun acc s -> acc +. s.seconds) 0.0 spans

let render ?title spans =
  Obs.render_span_table ?title (List.map (fun s -> (s.stage, s.seconds)) spans)
