type span = { stage : string; seconds : float }

type t = { mutable recorded : span list (* newest first *) }

let create () = { recorded = [] }

let time t stage f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  t.recorded <- { stage; seconds = Unix.gettimeofday () -. t0 } :: t.recorded;
  result

let spans t = List.rev t.recorded

let total spans = List.fold_left (fun acc s -> acc +. s.seconds) 0.0 spans

let render ?(title = "Stage timings") spans =
  let sum = total spans in
  let b = Buffer.create 256 in
  Buffer.add_string b (title ^ "\n");
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "  %-12s %9.3fs  %5.1f%%\n" s.stage s.seconds
           (if sum > 0.0 then 100.0 *. s.seconds /. sum else 0.0)))
    spans;
  Buffer.add_string b (Printf.sprintf "  %-12s %9.3fs\n" "total" sum);
  Buffer.contents b
