(** Named atomic counters — hit/miss and similar event counts from hot
    paths, aggregated across worker domains and surfaced next to the
    stage timings by the CLI and the bench harness.

    Counters are process-global observability.  They deliberately stay
    out of {e report} artefacts: per-domain caches make their values
    depend on the worker count, which the study's byte-identical
    output contract forbids. *)

type t

val counter : string -> t
(** [counter name] is the process-wide counter registered under
    [name], created at zero on first request.  Thread-safe. *)

val incr : t -> unit
val add : t -> int -> unit
val get : t -> int
val name : t -> string

val reset_all : unit -> unit
(** Zero every registered counter (bench cold/warm sections). *)

val snapshot : unit -> (string * int) list
(** All counters, sorted by name. *)

val render : ?title:string -> unit -> string
(** A fixed-width table of {!snapshot}, [""] when nothing is
    registered. *)
