(** Deprecated: use {!Tangled_obs.Obs} instead.

    The old named-atomic-counter surface, kept as a thin shim:
    [counter name] is now literally [Obs.counter name] (the same
    atomic cell), so legacy and unified call sites aggregate into one
    registry and render identically.  Note [reset_all] now resets the
    whole observability state — histograms, events and spans included —
    so bench cold/warm sections cannot leak state between runs. *)

type t

val counter : string -> t
  [@@deprecated "use Tangled_obs.Obs.counter"]

val incr : t -> unit
  [@@deprecated "use Tangled_obs.Obs.incr"]

val add : t -> int -> unit
  [@@deprecated "use Tangled_obs.Obs.add"]

val get : t -> int
  [@@deprecated "use Tangled_obs.Obs.value"]

val name : t -> string
  [@@deprecated "use Tangled_obs.Obs.counter_name"]

val reset_all : unit -> unit
  [@@deprecated "use Tangled_obs.Obs.reset_all"]
(** Delegates to [Obs.reset_all]: clears counters {e and} histograms,
    gauges, spans and events. *)

val snapshot : unit -> (string * int) list
  [@@deprecated "use Tangled_obs.Obs.counters"]

val render : ?title:string -> unit -> string
  [@@deprecated "use Tangled_obs.Obs.render_counters"]
