type t = {
  ids : (string, int) Hashtbl.t;
  mutable keys : string array;  (* id -> key; grown geometrically *)
  mutable n : int;
}

let create ?(capacity = 1024) () =
  {
    ids = Hashtbl.create capacity;
    keys = Array.make (Stdlib.max 1 capacity) "";
    n = 0;
  }

let grow t =
  let keys = Array.make (2 * Array.length t.keys) "" in
  Array.blit t.keys 0 keys 0 t.n;
  t.keys <- keys

let intern t key =
  match Hashtbl.find_opt t.ids key with
  | Some id -> id
  | None ->
      let id = t.n in
      if id = Array.length t.keys then grow t;
      t.keys.(id) <- key;
      Hashtbl.add t.ids key id;
      t.n <- id + 1;
      id

let find t key = Hashtbl.find_opt t.ids key

let key t id =
  if id < 0 || id >= t.n then
    invalid_arg (Printf.sprintf "Interner.key: id %d not minted (have %d)" id t.n)
  else t.keys.(id)

let cardinal t = t.n
