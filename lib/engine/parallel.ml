let max_jobs = 8

let default_jobs () = Stdlib.min max_jobs (Domain.recommended_domain_count ())

let resolve jobs =
  if jobs <= 0 then default_jobs () else Stdlib.min jobs max_jobs

(* Below this many items per worker, domain spawn overhead dominates. *)
let min_slice = 32

let tabulate ~jobs n f =
  if n < 0 then invalid_arg "Parallel.tabulate: negative length";
  let jobs = Stdlib.max 1 (Stdlib.min jobs (n / min_slice)) in
  if jobs <= 1 then Array.init n f
  else begin
    (* contiguous slices: worker k owns [bounds k, bounds (k+1)) *)
    let bounds k = k * n / jobs in
    let slice k =
      let lo = bounds k and hi = bounds (k + 1) in
      Array.init (hi - lo) (fun i -> f (lo + i))
    in
    let workers =
      List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> slice (k + 1)))
    in
    let first = slice 0 in
    Array.concat (first :: List.map Domain.join workers)
  end

let map ~jobs f a = tabulate ~jobs (Array.length a) (fun i -> f a.(i))
