type t = {
  mutable counts : int array;
  mutable n_ids : int;
  mutable total : int;
  mutable unexpired : int;
}

let create ?(n_ids = 0) () =
  { counts = Array.make (Stdlib.max 1 n_ids) 0; n_ids; total = 0; unexpired = 0 }

let grow t need =
  let cap = Array.length t.counts in
  if need > cap then begin
    let cap' = ref cap in
    while need > !cap' do
      cap' := 2 * !cap'
    done;
    let counts = Array.make !cap' 0 in
    Array.blit t.counts 0 counts 0 t.n_ids;
    t.counts <- counts
  end

let append t ~anchor ~expired =
  t.total <- t.total + 1;
  if not expired then begin
    t.unexpired <- t.unexpired + 1;
    if anchor >= 0 then begin
      grow t (anchor + 1);
      if anchor >= t.n_ids then t.n_ids <- anchor + 1;
      t.counts.(anchor) <- t.counts.(anchor) + 1
    end
  end

(* Deliberately not a fold of [append]: the QCheck suite uses this
   one-shot pass as the independent rebuild-from-scratch oracle. *)
let build ~n_ids ~total ~anchor ~expired =
  let max_id = ref (n_ids - 1) in
  for i = 0 to total - 1 do
    let a = anchor i in
    if a > !max_id then max_id := a
  done;
  let n_ids = !max_id + 1 in
  let counts = Array.make (Stdlib.max 1 n_ids) 0 in
  let unexpired = ref 0 in
  for i = 0 to total - 1 do
    if not (expired i) then begin
      incr unexpired;
      let a = anchor i in
      if a >= 0 then counts.(a) <- counts.(a) + 1
    end
  done;
  { counts; n_ids; total; unexpired = !unexpired }

let count t id = if id >= 0 && id < t.n_ids then t.counts.(id) else 0

let validated_by t set =
  let acc = ref 0 in
  for id = 0 to t.n_ids - 1 do
    if t.counts.(id) > 0 && Id_set.mem set id then acc := !acc + t.counts.(id)
  done;
  !acc

let n_ids t = t.n_ids
let counts t = Array.sub t.counts 0 t.n_ids
let total t = t.total
let unexpired t = t.unexpired

let equal a b =
  a.total = b.total
  && a.unexpired = b.unexpired
  &&
  let hi = Stdlib.max a.n_ids b.n_ids in
  let ok = ref true in
  for id = 0 to hi - 1 do
    if count a id <> count b id then ok := false
  done;
  !ok
