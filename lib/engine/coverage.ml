type t = {
  n_ids : int;
  counts : int array;
  anchors : int array;
  expired : Bytes.t;
  total : int;
  unexpired : int;
}

let build ~n_ids ~total ~anchor ~expired =
  let counts = Array.make (Stdlib.max 1 n_ids) 0 in
  let anchors = Array.make (Stdlib.max 1 total) (-1) in
  let expired_bits = Bytes.make (Stdlib.max 1 ((total + 7) / 8)) '\000' in
  let unexpired = ref 0 in
  for i = 0 to total - 1 do
    let a = anchor i in
    anchors.(i) <- a;
    if expired i then begin
      let byte = Char.code (Bytes.get expired_bits (i / 8)) in
      Bytes.set expired_bits (i / 8) (Char.chr (byte lor (1 lsl (i mod 8))))
    end
    else begin
      incr unexpired;
      if a >= 0 && a < n_ids then counts.(a) <- counts.(a) + 1
    end
  done;
  { n_ids; counts; anchors; expired = expired_bits; total; unexpired = !unexpired }

let count t id = if id >= 0 && id < t.n_ids then t.counts.(id) else 0

let validated_by t set =
  let acc = ref 0 in
  for id = 0 to t.n_ids - 1 do
    if t.counts.(id) > 0 && Id_set.mem set id then acc := !acc + t.counts.(id)
  done;
  !acc

let anchor t i = t.anchors.(i)

let chain_expired t i =
  Char.code (Bytes.get t.expired (i / 8)) land (1 lsl (i mod 8)) <> 0

let total t = t.total
let unexpired t = t.unexpired
