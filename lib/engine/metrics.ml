(* Deprecated shim over Tangled_obs.Obs counters.

   [counter name] returns the Obs counter of the same name, so a count
   bumped through this legacy surface and one bumped through Obs are
   the same atomic cell; snapshot/render read the unified registry. *)

module Obs = Tangled_obs.Obs

type t = Obs.counter

let counter = Obs.counter
let incr = Obs.incr
let add = Obs.add
let get = Obs.value
let name = Obs.counter_name

let reset_all () = Obs.reset_all ()

let snapshot () = Obs.counters ()

let render ?(title = "Counters") () = Obs.render_counters ~title ()
