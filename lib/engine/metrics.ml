(* Named atomic counters.

   Cheap enough for hot paths (one Atomic.incr per event), aggregated
   across worker domains, and rendered alongside the stage timings.
   Counters are observability only: they never feed back into the
   study's outputs, so worker-count-dependent values (per-domain cache
   hit rates) are fine here where they would break determinism in a
   report. *)

type t = { name : string; value : int Atomic.t }

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let lock = Mutex.create ()

let counter name =
  Mutex.lock lock;
  let c =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { name; value = Atomic.make 0 } in
        Hashtbl.add registry name c;
        c
  in
  Mutex.unlock lock;
  c

let incr c = Atomic.incr c.value
let add c n = ignore (Atomic.fetch_and_add c.value n)
let get c = Atomic.get c.value
let name c = c.name

let reset_all () =
  Mutex.lock lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.value 0) registry;
  Mutex.unlock lock

let snapshot () =
  Mutex.lock lock;
  let rows = Hashtbl.fold (fun _ c acc -> (c.name, Atomic.get c.value) :: acc) registry [] in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows

let render ?(title = "Counters") () =
  match snapshot () with
  | [] -> ""
  | rows ->
      let b = Buffer.create 128 in
      Buffer.add_string b (title ^ "\n");
      List.iter
        (fun (name, v) -> Buffer.add_string b (Printf.sprintf "  %-32s %12d\n" name v))
        rows;
      Buffer.contents b
