(** Dense integer ids for root identities.

    The paper's certificate identity — the (subject, RSA modulus)
    equivalence key — is a string, and the seed implementation threaded
    those strings through every coverage join: string-keyed [Hashtbl]s
    in the blueprint, the stores, the Notary and the validator.  The
    interner mints one dense [int] id per distinct key, once, at
    blueprint build; every later join ([validated_by_store],
    [per_root_counts], minimization, scoping) then runs over [int
    array]s and bitsets instead of hashed strings.

    Ids are assigned in interning order starting at 0, so the table is
    exactly as deterministic as the sequence of [intern] calls.  The
    structure is mutable and {e not} thread-safe: all interning happens
    in the sequential phases of the pipeline (blueprint build, plan
    construction, indexing); the domain-parallel phases only read. *)

type t

val create : ?capacity:int -> unit -> t
(** An empty table.  [capacity] pre-sizes the internal structures
    (default 1024). *)

val intern : t -> string -> int
(** [intern t key] is the id of [key], minting the next dense id when
    the key is new. *)

val find : t -> string -> int option
(** [find t key] is [key]'s id, without minting.  Safe to call
    concurrently with other reads (but not with [intern]). *)

val key : t -> int -> string
(** [key t id] is the interned key for [id].
    @raise Invalid_argument when [id] was never minted. *)

val cardinal : t -> int
(** Number of ids minted so far; valid ids are [0 .. cardinal - 1]. *)
