(** The one-pass coverage index.

    The paper's headline joins — Table 3's per-store validation counts,
    Figure 3's per-root series, Table 4's zero-validation fractions and
    the §5.3 minimization loop — are all queries of the form "how many
    verified chains anchor inside this set of roots?".  The seed
    implementation answered each one by re-scanning the whole chain
    array.  This index is built once, right after Notary generation, by
    a single pass over the chains; every query is then a reduction over
    per-root-id counts ([O(ids)]) instead of a chain scan
    ([O(chains)]), with chains outnumbering ids by ~15× at default
    scale and ~1,400× at the paper's.

    The record is exposed read-only: the arrays are owned by the index
    and must not be mutated. *)

type t = private {
  n_ids : int;  (** interner cardinal at build time *)
  counts : int array;
      (** [counts.(id)] = unexpired chains whose verified anchor is
          [id] — the raw series behind Figure 3 *)
  anchors : int array;  (** per chain: anchor root id, or [-1] *)
  expired : Bytes.t;  (** per chain: expired bit *)
  total : int;  (** chain count *)
  unexpired : int;
}

val build :
  n_ids:int -> total:int -> anchor:(int -> int) -> expired:(int -> bool) -> t
(** [build ~n_ids ~total ~anchor ~expired] indexes chains
    [0 .. total - 1] in one pass; [anchor i] is chain [i]'s verified
    anchor id ([-1] when the chain does not verify). *)

val count : t -> int -> int
(** Unexpired validated chains anchored at this root id (0 for ids
    minted after the index was built — they cannot anchor any indexed
    chain). *)

val validated_by : t -> Id_set.t -> int
(** Unexpired chains whose anchor lies in the id set — the Table 3
    store query, as an array reduction. *)

val anchor : t -> int -> int
(** Chain [i]'s anchor id, or [-1]. *)

val chain_expired : t -> int -> bool

val total : t -> int
val unexpired : t -> int
