(** The incremental coverage index.

    The paper's headline joins — Table 3's per-store validation counts,
    Figure 3's per-root series, Table 4's zero-validation fractions and
    the §5.3 minimization loop — are all queries of the form "how many
    verified chains anchor inside this set of roots?".  The index keeps
    one unexpired-validated counter per interned root id; every query
    is a reduction over that array ([O(ids)]) instead of a chain scan
    ([O(chains)]), with chains outnumbering ids by ~15× at default
    scale and ~14,000× at the paper's 1.9 M.

    The index is {e incremental}: appending a chain updates the
    counters in O(1), so streaming world generation folds chains in as
    they are built and never rebuilds from scratch.  Per-chain state
    (anchor id, expired bit) is deliberately {e not} stored here — it
    lives in the certificate arena's columns, next to the rest of the
    per-chain row; the index holds per-root aggregates only. *)

type t

val create : ?n_ids:int -> unit -> t
(** An empty index.  [n_ids] pre-sizes the counter array (it grows on
    demand when later anchors carry larger ids). *)

val append : t -> anchor:int -> expired:bool -> unit
(** Fold one chain in: [anchor] is its verified anchor's interned id
    ([-1] when the chain does not verify).  Expired chains count
    toward {!total} only — the paper's store fractions are over
    unexpired chains. *)

val build :
  n_ids:int -> total:int -> anchor:(int -> int) -> expired:(int -> bool) -> t
(** One-shot construction over chains [0 .. total - 1] — a separate
    single-pass implementation kept as the rebuild-from-scratch oracle
    the QCheck suite holds {!append} to. *)

val count : t -> int -> int
(** Unexpired validated chains anchored at this root id (0 for ids
    never seen anchoring, or out of range). *)

val validated_by : t -> Id_set.t -> int
(** Unexpired chains whose anchor lies in the id set — the Table 3
    store query, as an array reduction. *)

val n_ids : t -> int
(** Upper bound of ids with a counter (grows as anchors appear). *)

val counts : t -> int array
(** Copy of the per-id counters [0 .. n_ids - 1] — for tests and
    digests; the live array is never exposed. *)

val total : t -> int
val unexpired : t -> int

val equal : t -> t -> bool
(** Same totals and same per-id counters (trailing zero counters are
    insignificant: an index that saw ids 0..9 equals one pre-sized for
    100 ids with zeros beyond). *)
