type t = { mutable bits : Bytes.t }

let create capacity =
  { bits = Bytes.make (Stdlib.max 1 ((capacity + 7) / 8)) '\000' }

let ensure t id =
  let need = (id / 8) + 1 in
  if need > Bytes.length t.bits then begin
    let bits = Bytes.make (Stdlib.max need (2 * Bytes.length t.bits)) '\000' in
    Bytes.blit t.bits 0 bits 0 (Bytes.length t.bits);
    t.bits <- bits
  end

let add t id =
  if id >= 0 then begin
    ensure t id;
    let byte = Char.code (Bytes.get t.bits (id / 8)) in
    Bytes.set t.bits (id / 8) (Char.chr (byte lor (1 lsl (id mod 8))))
  end

let mem t id =
  id >= 0
  && id / 8 < Bytes.length t.bits
  && Char.code (Bytes.get t.bits (id / 8)) land (1 lsl (id mod 8)) <> 0

let cardinal t =
  let n = ref 0 in
  Bytes.iter
    (fun c ->
      let byte = Char.code c in
      for bit = 0 to 7 do
        if byte land (1 lsl bit) <> 0 then incr n
      done)
    t.bits;
  !n

let iter f t =
  for id = 0 to (8 * Bytes.length t.bits) - 1 do
    if mem t id then f id
  done

let of_list ids =
  let t = create 64 in
  List.iter (add t) ids;
  t
