(** Mutable bitsets over interned ids.

    A store's membership, projected onto {!Interner} ids, becomes one
    of these: a few hundred bits instead of a string-keyed map, so the
    coverage joins are word-wide membership tests.  Out-of-range
    queries answer [false] and [add] grows the set, so a set built
    against an older interner snapshot keeps working after more ids are
    minted. *)

type t

val create : int -> t
(** [create capacity] is an empty set ready for ids in
    [0 .. capacity - 1] (it grows on demand beyond that). *)

val add : t -> int -> unit
(** Insert an id (ignores negative ids). *)

val mem : t -> int -> bool
(** Membership; [false] for negative or never-added ids. *)

val cardinal : t -> int
(** Number of distinct ids in the set. *)

val iter : (int -> unit) -> t -> unit
(** Apply to every member in increasing id order. *)

val of_list : int list -> t
