(** Domain-parallel bulk computation with deterministic results.

    OCaml 5 domains, no extra dependencies.  The contract mirrors
    [Array.init]: the result at index [i] is [f i], whatever the worker
    count — workers own contiguous slices and the slices are
    concatenated in order, so parallelism is invisible in the output.
    [f] must be pure with respect to shared state (the pipeline
    arranges this by drawing all randomness in a sequential planning
    pass first). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] capped at {!max_jobs} — the
    worker count used when the config asks for auto ([jobs = 0]). *)

val max_jobs : int
(** Upper cap on worker counts (8): beyond this the per-domain spawn
    cost outweighs chunk shrinkage for our workloads. *)

val resolve : int -> int
(** [resolve jobs] is the effective worker count: [jobs] clamped to
    [1 .. max_jobs], with [jobs <= 0] meaning {!default_jobs}. *)

val tabulate : jobs:int -> int -> (int -> 'a) -> 'a array
(** [tabulate ~jobs n f] is [Array.init n f] computed by up to [jobs]
    domains over contiguous index slices.  [jobs <= 1] (or tiny [n])
    runs inline without spawning. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f a] is [Array.map f a] via {!tabulate}. *)
