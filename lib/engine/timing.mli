(** Deprecated: use {!Tangled_obs.Obs} instead.

    The old flat stage-timing collector, kept as a thin shim so
    external callers get a compile-time nudge rather than a break.
    [time] now records through [Obs.spanned] — the span also appears
    in the unified span tree (with error status when the thunk
    raises), and [render] is [Obs.render_span_table], so the shim's
    output is byte-identical to the Obs rendering of the same data. *)

type span = { stage : string; seconds : float }

type t
(** A mutable collector; one per pipeline run. *)

val create : unit -> t
  [@@deprecated "use Tangled_obs.Obs.span / Obs.spanned"]

val time : t -> string -> (unit -> 'a) -> 'a
  [@@deprecated "use Tangled_obs.Obs.span / Obs.spanned"]
(** [time t stage f] runs [f] under [Obs.spanned], records the flat
    span under [stage], and returns [f]'s result.  Exceptions
    propagate; the unified layer records the failed span even though
    this legacy collector drops it. *)

val spans : t -> span list
  [@@deprecated "use Tangled_obs.Obs.spans"]
(** Recorded spans, oldest first. *)

val total : span list -> float
  [@@deprecated "use Tangled_obs.Obs.spans"]
(** Sum of the spans' seconds. *)

val render : ?title:string -> span list -> string
  [@@deprecated "use Tangled_obs.Obs.render_span_table"]
(** Delegates to [Obs.render_span_table]. *)
