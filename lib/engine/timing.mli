(** Stage-timing observability.

    Each pipeline stage (universe, population, netalyzr, notary, index)
    runs under {!time}, which records a wall-clock span.  The spans are
    surfaced by the [report]/[analyze] CLI sections and the bench
    harness, so every future perf PR has per-stage numbers to compare
    against.

    Spans use [Unix.gettimeofday]; on this codebase's run lengths
    (milliseconds to minutes) wall clock is the quantity of interest
    and clock steps are noise we accept rather than take a dependency
    for. *)

type span = { stage : string; seconds : float }

type t
(** A mutable collector; one per pipeline run. *)

val create : unit -> t

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t stage f] runs [f], records how long it took under [stage],
    and returns [f]'s result.  Exceptions propagate without recording
    a span. *)

val spans : t -> span list
(** Recorded spans, oldest first. *)

val total : span list -> float
(** Sum of the spans' seconds. *)

val render : ?title:string -> span list -> string
(** A small fixed-width table: one line per stage with seconds and the
    share of the total. *)
