type t = MD5 | SHA1 | SHA256

let all = [ MD5; SHA1; SHA256 ]

let name = function MD5 -> "md5" | SHA1 -> "sha1" | SHA256 -> "sha256"

let of_name = function
  | "md5" -> Some MD5
  | "sha1" -> Some SHA1
  | "sha256" -> Some SHA256
  | _ -> None

let size = function MD5 -> 16 | SHA1 -> 20 | SHA256 -> 32

let digest = function MD5 -> Md5.digest | SHA1 -> Sha1.digest | SHA256 -> Sha256.digest
let hex = function MD5 -> Md5.hex | SHA1 -> Sha1.hex | SHA256 -> Sha256.hex

type ctx = Md5_ctx of Md5.ctx | Sha1_ctx of Sha1.ctx | Sha256_ctx of Sha256.ctx

let init = function
  | MD5 -> Md5_ctx (Md5.init ())
  | SHA1 -> Sha1_ctx (Sha1.init ())
  | SHA256 -> Sha256_ctx (Sha256.init ())

let feed ctx s =
  match ctx with
  | Md5_ctx c -> Md5.feed c s
  | Sha1_ctx c -> Sha1.feed c s
  | Sha256_ctx c -> Sha256.feed c s

let feed_sub ctx s ~off ~len =
  match ctx with
  | Md5_ctx c -> Md5.feed_sub c s ~off ~len
  | Sha1_ctx c -> Sha1.feed_sub c s ~off ~len
  | Sha256_ctx c -> Sha256.feed_sub c s ~off ~len

let finalize = function
  | Md5_ctx c -> Md5.finalize c
  | Sha1_ctx c -> Sha1.finalize c
  | Sha256_ctx c -> Sha256.finalize c

let pp fmt t = Format.pp_print_string fmt (name t)
