(* RFC 1321 MD5 on unboxed native ints (little-endian message layout);
   same streaming-context design as {!Sha256}.  The sine-derived
   constant table is computed at load time from the spec's defining
   formula rather than transcribed.  [Reference.Md5] keeps the old
   boxed implementation as the oracle. *)

let mask32 = 0xFFFFFFFF

let k =
  Array.init 64 (fun i ->
      let v = Float.floor (abs_float (sin (float_of_int (i + 1))) *. 4294967296.0) in
      Int64.to_int (Int64.of_float v) land mask32)

let s =
  [| 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
     5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20;
     4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
     6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21 |]

type ctx = {
  h : int array;  (* a0 b0 c0 d0 *)
  m : int array;  (* 16-word block, reused *)
  buf : Bytes.t;
  mutable buflen : int;
  mutable total : int;
}

let init () =
  {
    h = [| 0x67452301; 0xefcdab89; 0x98badcfe; 0x10325476 |];
    m = Array.make 16 0;
    buf = Bytes.create 64;
    buflen = 0;
    total = 0;
  }

let[@inline] rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let compress ctx str off =
  let m = ctx.m and h = ctx.h in
  for i = 0 to 15 do
    let j = off + (4 * i) in
    Array.unsafe_set m i
      (Char.code (String.unsafe_get str j)
      lor (Char.code (String.unsafe_get str (j + 1)) lsl 8)
      lor (Char.code (String.unsafe_get str (j + 2)) lsl 16)
      lor (Char.code (String.unsafe_get str (j + 3)) lsl 24))
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  (* Four unrolled 16-round passes.  The fused single loop bound the
     round function and schedule index as [let f, g = ...], which boxes
     a tuple every round without flambda — 64 allocations per block. *)
  for i = 0 to 15 do
    let bv = !b and dv = !d in
    let f = (bv land !c) lor (lnot bv land mask32 land dv) in
    let f =
      (f + !a + Array.unsafe_get k i + Array.unsafe_get m i) land mask32
    in
    a := dv;
    d := !c;
    c := bv;
    b := (bv + rotl f (Array.unsafe_get s i)) land mask32
  done;
  for i = 16 to 31 do
    let bv = !b and dv = !d in
    let f = (dv land bv) lor (lnot dv land mask32 land !c) in
    let g = ((5 * i) + 1) mod 16 in
    let f =
      (f + !a + Array.unsafe_get k i + Array.unsafe_get m g) land mask32
    in
    a := dv;
    d := !c;
    c := bv;
    b := (bv + rotl f (Array.unsafe_get s i)) land mask32
  done;
  for i = 32 to 47 do
    let bv = !b and dv = !d in
    let f = bv lxor !c lxor dv in
    let g = ((3 * i) + 5) mod 16 in
    let f =
      (f + !a + Array.unsafe_get k i + Array.unsafe_get m g) land mask32
    in
    a := dv;
    d := !c;
    c := bv;
    b := (bv + rotl f (Array.unsafe_get s i)) land mask32
  done;
  for i = 48 to 63 do
    let bv = !b and dv = !d in
    let f = !c lxor (bv lor (lnot dv land mask32)) in
    let g = (7 * i) mod 16 in
    let f =
      (f + !a + Array.unsafe_get k i + Array.unsafe_get m g) land mask32
    in
    a := dv;
    d := !c;
    c := bv;
    b := (bv + rotl f (Array.unsafe_get s i)) land mask32
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32

let feed_sub ctx str ~off ~len =
  if off < 0 || len < 0 || off > String.length str - len then
    invalid_arg "Md5.feed_sub: range out of bounds";
  ctx.total <- ctx.total + len;
  let off = ref off and len = ref len in
  if ctx.buflen > 0 then begin
    let take = Stdlib.min (64 - ctx.buflen) !len in
    Bytes.blit_string str !off ctx.buf ctx.buflen take;
    ctx.buflen <- ctx.buflen + take;
    off := !off + take;
    len := !len - take;
    if ctx.buflen = 64 then begin
      compress ctx (Bytes.unsafe_to_string ctx.buf) 0;
      ctx.buflen <- 0
    end
  end;
  while !len >= 64 do
    compress ctx str !off;
    off := !off + 64;
    len := !len - 64
  done;
  if !len > 0 then begin
    Bytes.blit_string str !off ctx.buf 0 !len;
    ctx.buflen <- !len
  end

let feed ctx str = feed_sub ctx str ~off:0 ~len:(String.length str)

let finalize ctx =
  let bitlen = ctx.total * 8 in
  let rem = ctx.buflen in
  let scratch = Bytes.make (if rem < 56 then 64 else 128) '\x00' in
  Bytes.blit ctx.buf 0 scratch 0 rem;
  Bytes.set scratch rem '\x80';
  let n = Bytes.length scratch in
  (* MD5 appends the length little-endian, unlike the SHA family *)
  for i = 0 to 7 do
    Bytes.set scratch (n - 8 + i) (Char.unsafe_chr ((bitlen lsr (8 * i)) land 0xff))
  done;
  let str = Bytes.unsafe_to_string scratch in
  compress ctx str 0;
  if n = 128 then compress ctx str 64;
  ctx.buflen <- 0;
  let out = Bytes.create 16 in
  for i = 0 to 3 do
    let hi = ctx.h.(i) in
    Bytes.unsafe_set out (4 * i) (Char.unsafe_chr (hi land 0xff));
    Bytes.unsafe_set out ((4 * i) + 1) (Char.unsafe_chr ((hi lsr 8) land 0xff));
    Bytes.unsafe_set out ((4 * i) + 2) (Char.unsafe_chr ((hi lsr 16) land 0xff));
    Bytes.unsafe_set out ((4 * i) + 3) (Char.unsafe_chr ((hi lsr 24) land 0xff))
  done;
  Bytes.unsafe_to_string out

let digest msg =
  let ctx = init () in
  feed ctx msg;
  finalize ctx

let hex msg = Tangled_util.Hex.encode (digest msg)
