(** SHA-1 (FIPS 180-4) on unboxed native-int arithmetic.  Used for the
    legacy certificate fingerprints the paper reports (the bracketed
    32-bit subject hashes of Figure 2 are truncations of such digests).

    Same streaming-context contract as {!Sha256}: no call pads or
    copies the message beyond a sub-block tail. *)

type ctx
(** An in-progress hash.  Not shareable across domains. *)

val init : unit -> ctx

val feed : ctx -> string -> unit
(** Absorb a whole string. *)

val feed_sub : ctx -> string -> off:int -> len:int -> unit
(** Absorb [len] bytes of [s] starting at [off] without copying them.
    @raise Invalid_argument when the range is out of bounds. *)

val finalize : ctx -> string
(** The 20-byte digest of everything fed.  Consumes the context: reuse
    after [finalize] is undefined. *)

val digest : string -> string
(** [digest msg] is the 20-byte SHA-1 of [msg]. *)

val hex : string -> string
(** [hex msg] is the digest rendered in lowercase hexadecimal. *)
