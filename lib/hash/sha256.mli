(** SHA-256 (FIPS 180-4) on unboxed native-int arithmetic.  The default
    certificate-signature digest of the simulation.

    The streaming context hashes straight out of the caller's buffers:
    no call pads or copies the message beyond a sub-block tail. *)

type ctx
(** An in-progress hash.  Not shareable across domains. *)

val init : unit -> ctx

val feed : ctx -> string -> unit
(** Absorb a whole string. *)

val feed_sub : ctx -> string -> off:int -> len:int -> unit
(** Absorb [len] bytes of [s] starting at [off] without copying them.
    @raise Invalid_argument when the range is out of bounds. *)

val finalize : ctx -> string
(** The 32-byte digest of everything fed.  Consumes the context: reuse
    after [finalize] is undefined. *)

val digest : string -> string
(** [digest msg] is the 32-byte SHA-256 of [msg] (one-shot wrapper over
    the streaming context). *)

val hex : string -> string
(** [hex msg] is the digest rendered in lowercase hexadecimal. *)
