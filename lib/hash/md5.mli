(** MD5 (RFC 1321) on unboxed native-int arithmetic.  Present because
    pre-4.x Android root stores and legacy certificates still carry
    MD5-based identifiers; used only for fingerprint variety, never for
    signatures.

    Same streaming-context contract as {!Sha256}: no call pads or
    copies the message beyond a sub-block tail. *)

type ctx
(** An in-progress hash.  Not shareable across domains. *)

val init : unit -> ctx

val feed : ctx -> string -> unit
(** Absorb a whole string. *)

val feed_sub : ctx -> string -> off:int -> len:int -> unit
(** Absorb [len] bytes of [s] starting at [off] without copying them.
    @raise Invalid_argument when the range is out of bounds. *)

val finalize : ctx -> string
(** The 16-byte digest of everything fed.  Consumes the context: reuse
    after [finalize] is undefined. *)

val digest : string -> string
(** [digest msg] is the 16-byte MD5 of [msg]. *)

val hex : string -> string
(** [hex msg] is the digest rendered in lowercase hexadecimal. *)
