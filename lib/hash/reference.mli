(** Pre-optimisation digest implementations, retained as the test and
    selfcheck oracle for the unboxed streaming cores.  Never used on
    the hot path. *)

module Sha256 : sig
  val digest : string -> string
end

module Sha1 : sig
  val digest : string -> string
end

module Md5 : sig
  val digest : string -> string
end
