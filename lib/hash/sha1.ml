(* FIPS 180-4 SHA-1 on unboxed native ints; same streaming-context
   design as {!Sha256} (32-bit values in 63-bit ints, unsafe char
   loads, only a sub-block tail ever copied).  [Reference.Sha1] keeps
   the old boxed implementation as the oracle. *)

let mask32 = 0xFFFFFFFF

type ctx = {
  h : int array;  (* 5 state words *)
  w : int array;  (* 80-entry schedule, reused every block *)
  buf : Bytes.t;
  mutable buflen : int;
  mutable total : int;
}

let init () =
  {
    h = [| 0x67452301; 0xEFCDAB89; 0x98BADCFE; 0x10325476; 0xC3D2E1F0 |];
    w = Array.make 80 0;
    buf = Bytes.create 64;
    buflen = 0;
    total = 0;
  }

let[@inline] rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let compress ctx s off =
  let w = ctx.w and h = ctx.h in
  for t = 0 to 15 do
    let j = off + (4 * t) in
    Array.unsafe_set w t
      ((Char.code (String.unsafe_get s j) lsl 24)
      lor (Char.code (String.unsafe_get s (j + 1)) lsl 16)
      lor (Char.code (String.unsafe_get s (j + 2)) lsl 8)
      lor Char.code (String.unsafe_get s (j + 3)))
  done;
  for t = 16 to 79 do
    Array.unsafe_set w t
      (rotl
         (Array.unsafe_get w (t - 3)
         lxor Array.unsafe_get w (t - 8)
         lxor Array.unsafe_get w (t - 14)
         lxor Array.unsafe_get w (t - 16))
         1)
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) in
  for t = 0 to 79 do
    let bv = !b in
    let f, kk =
      if t < 20 then ((bv land !c) lor (lnot bv land mask32 land !d), 0x5A827999)
      else if t < 40 then (bv lxor !c lxor !d, 0x6ED9EBA1)
      else if t < 60 then ((bv land !c) lor (bv land !d) lor (!c land !d), 0x8F1BBCDC)
      else (bv lxor !c lxor !d, 0xCA62C1D6)
    in
    let temp = (rotl !a 5 + f + !e + kk + Array.unsafe_get w t) land mask32 in
    e := !d;
    d := !c;
    c := rotl bv 30;
    b := !a;
    a := temp
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32

let feed_sub ctx s ~off ~len =
  if off < 0 || len < 0 || off > String.length s - len then
    invalid_arg "Sha1.feed_sub: range out of bounds";
  ctx.total <- ctx.total + len;
  let off = ref off and len = ref len in
  if ctx.buflen > 0 then begin
    let take = Stdlib.min (64 - ctx.buflen) !len in
    Bytes.blit_string s !off ctx.buf ctx.buflen take;
    ctx.buflen <- ctx.buflen + take;
    off := !off + take;
    len := !len - take;
    if ctx.buflen = 64 then begin
      compress ctx (Bytes.unsafe_to_string ctx.buf) 0;
      ctx.buflen <- 0
    end
  end;
  while !len >= 64 do
    compress ctx s !off;
    off := !off + 64;
    len := !len - 64
  done;
  if !len > 0 then begin
    Bytes.blit_string s !off ctx.buf 0 !len;
    ctx.buflen <- !len
  end

let feed ctx s = feed_sub ctx s ~off:0 ~len:(String.length s)

let finalize ctx =
  let bitlen = ctx.total * 8 in
  let rem = ctx.buflen in
  let scratch = Bytes.make (if rem < 56 then 64 else 128) '\x00' in
  Bytes.blit ctx.buf 0 scratch 0 rem;
  Bytes.set scratch rem '\x80';
  let n = Bytes.length scratch in
  for i = 0 to 7 do
    Bytes.set scratch (n - 1 - i) (Char.unsafe_chr ((bitlen lsr (8 * i)) land 0xff))
  done;
  let s = Bytes.unsafe_to_string scratch in
  compress ctx s 0;
  if n = 128 then compress ctx s 64;
  ctx.buflen <- 0;
  let out = Bytes.create 20 in
  for i = 0 to 4 do
    let hi = ctx.h.(i) in
    Bytes.unsafe_set out (4 * i) (Char.unsafe_chr (hi lsr 24));
    Bytes.unsafe_set out ((4 * i) + 1) (Char.unsafe_chr ((hi lsr 16) land 0xff));
    Bytes.unsafe_set out ((4 * i) + 2) (Char.unsafe_chr ((hi lsr 8) land 0xff));
    Bytes.unsafe_set out ((4 * i) + 3) (Char.unsafe_chr (hi land 0xff))
  done;
  Bytes.unsafe_to_string out

let digest msg =
  let ctx = init () in
  feed ctx msg;
  finalize ctx

let hex msg = Tangled_util.Hex.encode (digest msg)
