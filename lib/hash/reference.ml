(* The pre-optimisation digest cores, kept verbatim as the oracle the
   unboxed streaming implementations are tested against (the same role
   [Bigint.modpow] plays for the Montgomery layer).  Boxed [Int32]
   arithmetic over a fully padded copy of the message: correct,
   allocation-heavy, and deliberately untouched. *)

module Sha256 = struct
  let k =
    [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl; 0x59f111f1l;
       0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l;
       0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l; 0xc19bf174l; 0xe49b69c1l; 0xefbe4786l;
       0x0fc19dc6l; 0x240ca1ccl; 0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal;
       0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
       0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl; 0x53380d13l;
       0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l; 0xa2bfe8a1l; 0xa81a664bl;
       0xc24b8b70l; 0xc76c51a3l; 0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l;
       0x19a4c116l; 0x1e376c08l; 0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al;
       0x5b9cca4fl; 0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
       0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

  let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
  let ( ^^ ) = Int32.logxor
  let ( &&& ) = Int32.logand
  let ( +% ) = Int32.add
  let lnot32 = Int32.lognot

  let pad msg =
    let len = String.length msg in
    let bitlen = Int64.of_int (len * 8) in
    let padlen =
      let r = (len + 1) mod 64 in
      if r <= 56 then 56 - r else 120 - r
    in
    let b = Buffer.create (len + padlen + 9) in
    Buffer.add_string b msg;
    Buffer.add_char b '\x80';
    Buffer.add_string b (String.make padlen '\x00');
    for i = 7 downto 0 do
      Buffer.add_char b
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bitlen (8 * i)) 0xFFL)))
    done;
    Buffer.contents b

  let word data off =
    let byte i = Int32.of_int (Char.code data.[off + i]) in
    Int32.logor
      (Int32.shift_left (byte 0) 24)
      (Int32.logor (Int32.shift_left (byte 1) 16)
         (Int32.logor (Int32.shift_left (byte 2) 8) (byte 3)))

  let digest msg =
    let data = pad msg in
    let h = [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
               0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |] in
    let w = Array.make 64 0l in
    let nblocks = String.length data / 64 in
    for block = 0 to nblocks - 1 do
      let off = block * 64 in
      for t = 0 to 15 do
        w.(t) <- word data (off + (4 * t))
      done;
      for t = 16 to 63 do
        let s0 = rotr w.(t - 15) 7 ^^ rotr w.(t - 15) 18 ^^ Int32.shift_right_logical w.(t - 15) 3 in
        let s1 = rotr w.(t - 2) 17 ^^ rotr w.(t - 2) 19 ^^ Int32.shift_right_logical w.(t - 2) 10 in
        w.(t) <- w.(t - 16) +% s0 +% w.(t - 7) +% s1
      done;
      let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
      let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
      for t = 0 to 63 do
        let s1 = rotr !e 6 ^^ rotr !e 11 ^^ rotr !e 25 in
        let ch = (!e &&& !f) ^^ (lnot32 !e &&& !g) in
        let t1 = !hh +% s1 +% ch +% k.(t) +% w.(t) in
        let s0 = rotr !a 2 ^^ rotr !a 13 ^^ rotr !a 22 in
        let maj = (!a &&& !b) ^^ (!a &&& !c) ^^ (!b &&& !c) in
        let t2 = s0 +% maj in
        hh := !g;
        g := !f;
        f := !e;
        e := !d +% t1;
        d := !c;
        c := !b;
        b := !a;
        a := t1 +% t2
      done;
      h.(0) <- h.(0) +% !a;
      h.(1) <- h.(1) +% !b;
      h.(2) <- h.(2) +% !c;
      h.(3) <- h.(3) +% !d;
      h.(4) <- h.(4) +% !e;
      h.(5) <- h.(5) +% !f;
      h.(6) <- h.(6) +% !g;
      h.(7) <- h.(7) +% !hh
    done;
    let out = Bytes.create 32 in
    Array.iteri
      (fun i hi ->
        for j = 0 to 3 do
          Bytes.set out ((4 * i) + j)
            (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical hi (8 * (3 - j))) 0xFFl)))
        done)
      h;
    Bytes.unsafe_to_string out
end

module Sha1 = struct
  let rotl x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))
  let ( ^^ ) = Int32.logxor
  let ( &&& ) = Int32.logand
  let ( ||| ) = Int32.logor
  let ( +% ) = Int32.add
  let lnot32 = Int32.lognot

  let pad = Sha256.pad

  let word = Sha256.word

  let digest msg =
    let data = pad msg in
    let h0 = ref 0x67452301l and h1 = ref 0xEFCDAB89l and h2 = ref 0x98BADCFEl in
    let h3 = ref 0x10325476l and h4 = ref 0xC3D2E1F0l in
    let w = Array.make 80 0l in
    let nblocks = String.length data / 64 in
    for block = 0 to nblocks - 1 do
      let off = block * 64 in
      for t = 0 to 15 do
        w.(t) <- word data (off + (4 * t))
      done;
      for t = 16 to 79 do
        w.(t) <- rotl (w.(t - 3) ^^ w.(t - 8) ^^ w.(t - 14) ^^ w.(t - 16)) 1
      done;
      let a = ref !h0 and b = ref !h1 and c = ref !h2 and d = ref !h3 and e = ref !h4 in
      for t = 0 to 79 do
        let f, kk =
          if t < 20 then ((!b &&& !c) ||| (lnot32 !b &&& !d), 0x5A827999l)
          else if t < 40 then (!b ^^ !c ^^ !d, 0x6ED9EBA1l)
          else if t < 60 then ((!b &&& !c) ||| (!b &&& !d) ||| (!c &&& !d), 0x8F1BBCDCl)
          else (!b ^^ !c ^^ !d, 0xCA62C1D6l)
        in
        let temp = rotl !a 5 +% f +% !e +% kk +% w.(t) in
        e := !d;
        d := !c;
        c := rotl !b 30;
        b := !a;
        a := temp
      done;
      h0 := !h0 +% !a;
      h1 := !h1 +% !b;
      h2 := !h2 +% !c;
      h3 := !h3 +% !d;
      h4 := !h4 +% !e
    done;
    let out = Bytes.create 20 in
    List.iteri
      (fun i hi ->
        for j = 0 to 3 do
          Bytes.set out ((4 * i) + j)
            (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical hi (8 * (3 - j))) 0xFFl)))
        done)
      [ !h0; !h1; !h2; !h3; !h4 ];
    Bytes.unsafe_to_string out
end

module Md5 = struct
  let k =
    Array.init 64 (fun i ->
        let v = Float.floor (abs_float (sin (float_of_int (i + 1))) *. 4294967296.0) in
        Int64.to_int32 (Int64.of_float v))

  let s =
    [| 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
       5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20;
       4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
       6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21 |]

  let rotl x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))
  let ( ^^ ) = Int32.logxor
  let ( &&& ) = Int32.logand
  let ( ||| ) = Int32.logor
  let ( +% ) = Int32.add
  let lnot32 = Int32.lognot

  let pad msg =
    let len = String.length msg in
    let bitlen = Int64.of_int (len * 8) in
    let padlen =
      let r = (len + 1) mod 64 in
      if r <= 56 then 56 - r else 120 - r
    in
    let b = Buffer.create (len + padlen + 9) in
    Buffer.add_string b msg;
    Buffer.add_char b '\x80';
    Buffer.add_string b (String.make padlen '\x00');
    (* MD5 appends the length little-endian, unlike the SHA family *)
    for i = 0 to 7 do
      Buffer.add_char b
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bitlen (8 * i)) 0xFFL)))
    done;
    Buffer.contents b

  let word_le data off =
    let byte i = Int32.of_int (Char.code data.[off + i]) in
    Int32.logor (byte 0)
      (Int32.logor (Int32.shift_left (byte 1) 8)
         (Int32.logor (Int32.shift_left (byte 2) 16) (Int32.shift_left (byte 3) 24)))

  let digest msg =
    let data = pad msg in
    let a0 = ref 0x67452301l and b0 = ref 0xefcdab89l in
    let c0 = ref 0x98badcfel and d0 = ref 0x10325476l in
    let m = Array.make 16 0l in
    let nblocks = String.length data / 64 in
    for block = 0 to nblocks - 1 do
      let off = block * 64 in
      for i = 0 to 15 do
        m.(i) <- word_le data (off + (4 * i))
      done;
      let a = ref !a0 and b = ref !b0 and c = ref !c0 and d = ref !d0 in
      for i = 0 to 63 do
        let f, g =
          if i < 16 then ((!b &&& !c) ||| (lnot32 !b &&& !d), i)
          else if i < 32 then ((!d &&& !b) ||| (lnot32 !d &&& !c), ((5 * i) + 1) mod 16)
          else if i < 48 then (!b ^^ !c ^^ !d, ((3 * i) + 5) mod 16)
          else (!c ^^ (!b ||| lnot32 !d), (7 * i) mod 16)
        in
        let f = f +% !a +% k.(i) +% m.(g) in
        a := !d;
        d := !c;
        c := !b;
        b := !b +% rotl f s.(i)
      done;
      a0 := !a0 +% !a;
      b0 := !b0 +% !b;
      c0 := !c0 +% !c;
      d0 := !d0 +% !d
    done;
    let out = Bytes.create 16 in
    List.iteri
      (fun i hi ->
        for j = 0 to 3 do
          Bytes.set out ((4 * i) + j)
            (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical hi (8 * j)) 0xFFl)))
        done)
      [ !a0; !b0; !c0; !d0 ];
    Bytes.unsafe_to_string out
end
