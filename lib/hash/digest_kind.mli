(** Uniform access to the available digest algorithms. *)

type t = MD5 | SHA1 | SHA256

val all : t list

val name : t -> string
(** ["md5"], ["sha1"], ["sha256"]. *)

val of_name : string -> t option

val size : t -> int
(** Output size in bytes. *)

val digest : t -> string -> string
val hex : t -> string -> string

type ctx
(** A streaming context for any of the three algorithms, dispatching to
    the matching unboxed core. *)

val init : t -> ctx

val feed : ctx -> string -> unit

val feed_sub : ctx -> string -> off:int -> len:int -> unit
(** Absorb [len] bytes of [s] starting at [off] without copying them.
    @raise Invalid_argument when the range is out of bounds. *)

val finalize : ctx -> string
(** The digest ([size] bytes) of everything fed.  Consumes the
    context. *)

val pp : Format.formatter -> t -> unit
