(* FIPS 180-4 SHA-256 on unboxed native ints.

   State and schedule words live in 63-bit [int]s masked to 32 bits, so
   the compression function is pure register arithmetic — no [Int32]
   boxing, no allocation per block.  The 64 rounds are fully unrolled
   with the sixteen schedule words held in registers (let-shadowed in
   place instead of a 64-entry array), message words are loaded eight
   bytes at a time through byte-swapped unboxed 64-bit reads, and the
   rotations use the doubled-word trick: for a 32-bit value [x],
   [r = x lor (x lsl 32)] makes every [r lsr k] (k <= 31) carry
   [rotr k x] in its low 32 bits, so a rotation is one shift instead of
   two-shifts-plus-mask.  High garbage bits flow through [+]/[lxor]
   freely (the low 32 bits of a sum depend only on the low 32 bits of
   its operands) and are cut by a single [land mask32] at each state
   assignment.  The incremental context API hashes straight out of the
   caller's buffer: full blocks are compressed in place and only a
   sub-block tail is ever copied (into the context's 64-byte carry
   buffer), so no call pads or copies the message.  [Reference.Sha256]
   keeps the old boxed implementation as the oracle. *)

let mask32 = 0xFFFFFFFF

external get64u : string -> int -> int64 = "%caml_string_get64u"
external bswap64 : int64 -> int64 = "%bswap_int64"

type ctx = {
  mutable h0 : int; mutable h1 : int; mutable h2 : int; mutable h3 : int;
  mutable h4 : int; mutable h5 : int; mutable h6 : int; mutable h7 : int;
  (* 8 state words, each < 2^32 *)
  buf : Bytes.t;  (* carry buffer for a partial trailing block *)
  mutable buflen : int;
  mutable total : int;  (* message bytes fed so far *)
}

let init () = {
  h0 = 0x6a09e667; h1 = 0xbb67ae85; h2 = 0x3c6ef372; h3 = 0xa54ff53a;
  h4 = 0x510e527f; h5 = 0x9b05688c; h6 = 0x1f83d9ab; h7 = 0x5be0cd19;
  buf = Bytes.create 64; buflen = 0; total = 0;
}

(* One compression round over the 64 bytes of [s] at [off].  Unrolled;
   generated once from the round recurrence and kept as source. *)
let compress ctx (s : string) (off : int) =
  let w0 = Int64.to_int (Int64.shift_right_logical (bswap64 (get64u s (off + 0))) 32) in
  let w1 = Int64.to_int (bswap64 (get64u s (off + 0))) land mask32 in
  let w2 = Int64.to_int (Int64.shift_right_logical (bswap64 (get64u s (off + 8))) 32) in
  let w3 = Int64.to_int (bswap64 (get64u s (off + 8))) land mask32 in
  let w4 = Int64.to_int (Int64.shift_right_logical (bswap64 (get64u s (off + 16))) 32) in
  let w5 = Int64.to_int (bswap64 (get64u s (off + 16))) land mask32 in
  let w6 = Int64.to_int (Int64.shift_right_logical (bswap64 (get64u s (off + 24))) 32) in
  let w7 = Int64.to_int (bswap64 (get64u s (off + 24))) land mask32 in
  let w8 = Int64.to_int (Int64.shift_right_logical (bswap64 (get64u s (off + 32))) 32) in
  let w9 = Int64.to_int (bswap64 (get64u s (off + 32))) land mask32 in
  let w10 = Int64.to_int (Int64.shift_right_logical (bswap64 (get64u s (off + 40))) 32) in
  let w11 = Int64.to_int (bswap64 (get64u s (off + 40))) land mask32 in
  let w12 = Int64.to_int (Int64.shift_right_logical (bswap64 (get64u s (off + 48))) 32) in
  let w13 = Int64.to_int (bswap64 (get64u s (off + 48))) land mask32 in
  let w14 = Int64.to_int (Int64.shift_right_logical (bswap64 (get64u s (off + 56))) 32) in
  let w15 = Int64.to_int (bswap64 (get64u s (off + 56))) land mask32 in
  let a = ctx.h0 and b = ctx.h1 and c = ctx.h2 and d = ctx.h3 in
  let e = ctx.h4 and f = ctx.h5 and g = ctx.h6 and h = ctx.h7 in
  let h = let re = e lor (e lsl 32) in
    h + 0x428a2f98 + w0 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (g lxor (e land (f lxor g))) in
  let d = (d + h) land mask32 in
  let h = let ra = a lor (a lsl 32) in
    (h + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((a land (b lor c)) lor (b land c))) land mask32 in
  let g = let re = d lor (d lsl 32) in
    g + 0x71374491 + w1 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (f lxor (d land (e lxor f))) in
  let c = (c + g) land mask32 in
  let g = let ra = h lor (h lsl 32) in
    (g + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((h land (a lor b)) lor (a land b))) land mask32 in
  let f = let re = c lor (c lsl 32) in
    f + 0xb5c0fbcf + w2 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (e lxor (c land (d lxor e))) in
  let b = (b + f) land mask32 in
  let f = let ra = g lor (g lsl 32) in
    (f + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((g land (h lor a)) lor (h land a))) land mask32 in
  let e = let re = b lor (b lsl 32) in
    e + 0xe9b5dba5 + w3 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (d lxor (b land (c lxor d))) in
  let a = (a + e) land mask32 in
  let e = let ra = f lor (f lsl 32) in
    (e + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((f land (g lor h)) lor (g land h))) land mask32 in
  let d = let re = a lor (a lsl 32) in
    d + 0x3956c25b + w4 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (c lxor (a land (b lxor c))) in
  let h = (h + d) land mask32 in
  let d = let ra = e lor (e lsl 32) in
    (d + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((e land (f lor g)) lor (f land g))) land mask32 in
  let c = let re = h lor (h lsl 32) in
    c + 0x59f111f1 + w5 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (b lxor (h land (a lxor b))) in
  let g = (g + c) land mask32 in
  let c = let ra = d lor (d lsl 32) in
    (c + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((d land (e lor f)) lor (e land f))) land mask32 in
  let b = let re = g lor (g lsl 32) in
    b + 0x923f82a4 + w6 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (a lxor (g land (h lxor a))) in
  let f = (f + b) land mask32 in
  let b = let ra = c lor (c lsl 32) in
    (b + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((c land (d lor e)) lor (d land e))) land mask32 in
  let a = let re = f lor (f lsl 32) in
    a + 0xab1c5ed5 + w7 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (h lxor (f land (g lxor h))) in
  let e = (e + a) land mask32 in
  let a = let ra = b lor (b lsl 32) in
    (a + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((b land (c lor d)) lor (c land d))) land mask32 in
  let h = let re = e lor (e lsl 32) in
    h + 0xd807aa98 + w8 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (g lxor (e land (f lxor g))) in
  let d = (d + h) land mask32 in
  let h = let ra = a lor (a lsl 32) in
    (h + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((a land (b lor c)) lor (b land c))) land mask32 in
  let g = let re = d lor (d lsl 32) in
    g + 0x12835b01 + w9 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (f lxor (d land (e lxor f))) in
  let c = (c + g) land mask32 in
  let g = let ra = h lor (h lsl 32) in
    (g + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((h land (a lor b)) lor (a land b))) land mask32 in
  let f = let re = c lor (c lsl 32) in
    f + 0x243185be + w10 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (e lxor (c land (d lxor e))) in
  let b = (b + f) land mask32 in
  let f = let ra = g lor (g lsl 32) in
    (f + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((g land (h lor a)) lor (h land a))) land mask32 in
  let e = let re = b lor (b lsl 32) in
    e + 0x550c7dc3 + w11 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (d lxor (b land (c lxor d))) in
  let a = (a + e) land mask32 in
  let e = let ra = f lor (f lsl 32) in
    (e + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((f land (g lor h)) lor (g land h))) land mask32 in
  let d = let re = a lor (a lsl 32) in
    d + 0x72be5d74 + w12 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (c lxor (a land (b lxor c))) in
  let h = (h + d) land mask32 in
  let d = let ra = e lor (e lsl 32) in
    (d + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((e land (f lor g)) lor (f land g))) land mask32 in
  let c = let re = h lor (h lsl 32) in
    c + 0x80deb1fe + w13 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (b lxor (h land (a lxor b))) in
  let g = (g + c) land mask32 in
  let c = let ra = d lor (d lsl 32) in
    (c + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((d land (e lor f)) lor (e land f))) land mask32 in
  let b = let re = g lor (g lsl 32) in
    b + 0x9bdc06a7 + w14 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (a lxor (g land (h lxor a))) in
  let f = (f + b) land mask32 in
  let b = let ra = c lor (c lsl 32) in
    (b + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((c land (d lor e)) lor (d land e))) land mask32 in
  let a = let re = f lor (f lsl 32) in
    a + 0xc19bf174 + w15 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (h lxor (f land (g lxor h))) in
  let e = (e + a) land mask32 in
  let a = let ra = b lor (b lsl 32) in
    (a + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((b land (c lor d)) lor (c land d))) land mask32 in
  let w0 = let r15 = w1 lor (w1 lsl 32) and r2 = w14 lor (w14 lsl 32) in
    (w0 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w1 lsr 3)) + w9
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w14 lsr 10))) land mask32 in
  let h = let re = e lor (e lsl 32) in
    h + 0xe49b69c1 + w0 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (g lxor (e land (f lxor g))) in
  let d = (d + h) land mask32 in
  let h = let ra = a lor (a lsl 32) in
    (h + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((a land (b lor c)) lor (b land c))) land mask32 in
  let w1 = let r15 = w2 lor (w2 lsl 32) and r2 = w15 lor (w15 lsl 32) in
    (w1 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w2 lsr 3)) + w10
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w15 lsr 10))) land mask32 in
  let g = let re = d lor (d lsl 32) in
    g + 0xefbe4786 + w1 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (f lxor (d land (e lxor f))) in
  let c = (c + g) land mask32 in
  let g = let ra = h lor (h lsl 32) in
    (g + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((h land (a lor b)) lor (a land b))) land mask32 in
  let w2 = let r15 = w3 lor (w3 lsl 32) and r2 = w0 lor (w0 lsl 32) in
    (w2 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w3 lsr 3)) + w11
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w0 lsr 10))) land mask32 in
  let f = let re = c lor (c lsl 32) in
    f + 0x0fc19dc6 + w2 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (e lxor (c land (d lxor e))) in
  let b = (b + f) land mask32 in
  let f = let ra = g lor (g lsl 32) in
    (f + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((g land (h lor a)) lor (h land a))) land mask32 in
  let w3 = let r15 = w4 lor (w4 lsl 32) and r2 = w1 lor (w1 lsl 32) in
    (w3 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w4 lsr 3)) + w12
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w1 lsr 10))) land mask32 in
  let e = let re = b lor (b lsl 32) in
    e + 0x240ca1cc + w3 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (d lxor (b land (c lxor d))) in
  let a = (a + e) land mask32 in
  let e = let ra = f lor (f lsl 32) in
    (e + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((f land (g lor h)) lor (g land h))) land mask32 in
  let w4 = let r15 = w5 lor (w5 lsl 32) and r2 = w2 lor (w2 lsl 32) in
    (w4 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w5 lsr 3)) + w13
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w2 lsr 10))) land mask32 in
  let d = let re = a lor (a lsl 32) in
    d + 0x2de92c6f + w4 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (c lxor (a land (b lxor c))) in
  let h = (h + d) land mask32 in
  let d = let ra = e lor (e lsl 32) in
    (d + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((e land (f lor g)) lor (f land g))) land mask32 in
  let w5 = let r15 = w6 lor (w6 lsl 32) and r2 = w3 lor (w3 lsl 32) in
    (w5 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w6 lsr 3)) + w14
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w3 lsr 10))) land mask32 in
  let c = let re = h lor (h lsl 32) in
    c + 0x4a7484aa + w5 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (b lxor (h land (a lxor b))) in
  let g = (g + c) land mask32 in
  let c = let ra = d lor (d lsl 32) in
    (c + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((d land (e lor f)) lor (e land f))) land mask32 in
  let w6 = let r15 = w7 lor (w7 lsl 32) and r2 = w4 lor (w4 lsl 32) in
    (w6 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w7 lsr 3)) + w15
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w4 lsr 10))) land mask32 in
  let b = let re = g lor (g lsl 32) in
    b + 0x5cb0a9dc + w6 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (a lxor (g land (h lxor a))) in
  let f = (f + b) land mask32 in
  let b = let ra = c lor (c lsl 32) in
    (b + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((c land (d lor e)) lor (d land e))) land mask32 in
  let w7 = let r15 = w8 lor (w8 lsl 32) and r2 = w5 lor (w5 lsl 32) in
    (w7 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w8 lsr 3)) + w0
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w5 lsr 10))) land mask32 in
  let a = let re = f lor (f lsl 32) in
    a + 0x76f988da + w7 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (h lxor (f land (g lxor h))) in
  let e = (e + a) land mask32 in
  let a = let ra = b lor (b lsl 32) in
    (a + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((b land (c lor d)) lor (c land d))) land mask32 in
  let w8 = let r15 = w9 lor (w9 lsl 32) and r2 = w6 lor (w6 lsl 32) in
    (w8 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w9 lsr 3)) + w1
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w6 lsr 10))) land mask32 in
  let h = let re = e lor (e lsl 32) in
    h + 0x983e5152 + w8 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (g lxor (e land (f lxor g))) in
  let d = (d + h) land mask32 in
  let h = let ra = a lor (a lsl 32) in
    (h + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((a land (b lor c)) lor (b land c))) land mask32 in
  let w9 = let r15 = w10 lor (w10 lsl 32) and r2 = w7 lor (w7 lsl 32) in
    (w9 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w10 lsr 3)) + w2
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w7 lsr 10))) land mask32 in
  let g = let re = d lor (d lsl 32) in
    g + 0xa831c66d + w9 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (f lxor (d land (e lxor f))) in
  let c = (c + g) land mask32 in
  let g = let ra = h lor (h lsl 32) in
    (g + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((h land (a lor b)) lor (a land b))) land mask32 in
  let w10 = let r15 = w11 lor (w11 lsl 32) and r2 = w8 lor (w8 lsl 32) in
    (w10 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w11 lsr 3)) + w3
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w8 lsr 10))) land mask32 in
  let f = let re = c lor (c lsl 32) in
    f + 0xb00327c8 + w10 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (e lxor (c land (d lxor e))) in
  let b = (b + f) land mask32 in
  let f = let ra = g lor (g lsl 32) in
    (f + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((g land (h lor a)) lor (h land a))) land mask32 in
  let w11 = let r15 = w12 lor (w12 lsl 32) and r2 = w9 lor (w9 lsl 32) in
    (w11 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w12 lsr 3)) + w4
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w9 lsr 10))) land mask32 in
  let e = let re = b lor (b lsl 32) in
    e + 0xbf597fc7 + w11 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (d lxor (b land (c lxor d))) in
  let a = (a + e) land mask32 in
  let e = let ra = f lor (f lsl 32) in
    (e + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((f land (g lor h)) lor (g land h))) land mask32 in
  let w12 = let r15 = w13 lor (w13 lsl 32) and r2 = w10 lor (w10 lsl 32) in
    (w12 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w13 lsr 3)) + w5
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w10 lsr 10))) land mask32 in
  let d = let re = a lor (a lsl 32) in
    d + 0xc6e00bf3 + w12 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (c lxor (a land (b lxor c))) in
  let h = (h + d) land mask32 in
  let d = let ra = e lor (e lsl 32) in
    (d + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((e land (f lor g)) lor (f land g))) land mask32 in
  let w13 = let r15 = w14 lor (w14 lsl 32) and r2 = w11 lor (w11 lsl 32) in
    (w13 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w14 lsr 3)) + w6
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w11 lsr 10))) land mask32 in
  let c = let re = h lor (h lsl 32) in
    c + 0xd5a79147 + w13 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (b lxor (h land (a lxor b))) in
  let g = (g + c) land mask32 in
  let c = let ra = d lor (d lsl 32) in
    (c + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((d land (e lor f)) lor (e land f))) land mask32 in
  let w14 = let r15 = w15 lor (w15 lsl 32) and r2 = w12 lor (w12 lsl 32) in
    (w14 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w15 lsr 3)) + w7
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w12 lsr 10))) land mask32 in
  let b = let re = g lor (g lsl 32) in
    b + 0x06ca6351 + w14 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (a lxor (g land (h lxor a))) in
  let f = (f + b) land mask32 in
  let b = let ra = c lor (c lsl 32) in
    (b + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((c land (d lor e)) lor (d land e))) land mask32 in
  let w15 = let r15 = w0 lor (w0 lsl 32) and r2 = w13 lor (w13 lsl 32) in
    (w15 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w0 lsr 3)) + w8
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w13 lsr 10))) land mask32 in
  let a = let re = f lor (f lsl 32) in
    a + 0x14292967 + w15 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (h lxor (f land (g lxor h))) in
  let e = (e + a) land mask32 in
  let a = let ra = b lor (b lsl 32) in
    (a + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((b land (c lor d)) lor (c land d))) land mask32 in
  let w0 = let r15 = w1 lor (w1 lsl 32) and r2 = w14 lor (w14 lsl 32) in
    (w0 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w1 lsr 3)) + w9
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w14 lsr 10))) land mask32 in
  let h = let re = e lor (e lsl 32) in
    h + 0x27b70a85 + w0 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (g lxor (e land (f lxor g))) in
  let d = (d + h) land mask32 in
  let h = let ra = a lor (a lsl 32) in
    (h + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((a land (b lor c)) lor (b land c))) land mask32 in
  let w1 = let r15 = w2 lor (w2 lsl 32) and r2 = w15 lor (w15 lsl 32) in
    (w1 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w2 lsr 3)) + w10
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w15 lsr 10))) land mask32 in
  let g = let re = d lor (d lsl 32) in
    g + 0x2e1b2138 + w1 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (f lxor (d land (e lxor f))) in
  let c = (c + g) land mask32 in
  let g = let ra = h lor (h lsl 32) in
    (g + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((h land (a lor b)) lor (a land b))) land mask32 in
  let w2 = let r15 = w3 lor (w3 lsl 32) and r2 = w0 lor (w0 lsl 32) in
    (w2 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w3 lsr 3)) + w11
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w0 lsr 10))) land mask32 in
  let f = let re = c lor (c lsl 32) in
    f + 0x4d2c6dfc + w2 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (e lxor (c land (d lxor e))) in
  let b = (b + f) land mask32 in
  let f = let ra = g lor (g lsl 32) in
    (f + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((g land (h lor a)) lor (h land a))) land mask32 in
  let w3 = let r15 = w4 lor (w4 lsl 32) and r2 = w1 lor (w1 lsl 32) in
    (w3 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w4 lsr 3)) + w12
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w1 lsr 10))) land mask32 in
  let e = let re = b lor (b lsl 32) in
    e + 0x53380d13 + w3 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (d lxor (b land (c lxor d))) in
  let a = (a + e) land mask32 in
  let e = let ra = f lor (f lsl 32) in
    (e + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((f land (g lor h)) lor (g land h))) land mask32 in
  let w4 = let r15 = w5 lor (w5 lsl 32) and r2 = w2 lor (w2 lsl 32) in
    (w4 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w5 lsr 3)) + w13
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w2 lsr 10))) land mask32 in
  let d = let re = a lor (a lsl 32) in
    d + 0x650a7354 + w4 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (c lxor (a land (b lxor c))) in
  let h = (h + d) land mask32 in
  let d = let ra = e lor (e lsl 32) in
    (d + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((e land (f lor g)) lor (f land g))) land mask32 in
  let w5 = let r15 = w6 lor (w6 lsl 32) and r2 = w3 lor (w3 lsl 32) in
    (w5 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w6 lsr 3)) + w14
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w3 lsr 10))) land mask32 in
  let c = let re = h lor (h lsl 32) in
    c + 0x766a0abb + w5 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (b lxor (h land (a lxor b))) in
  let g = (g + c) land mask32 in
  let c = let ra = d lor (d lsl 32) in
    (c + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((d land (e lor f)) lor (e land f))) land mask32 in
  let w6 = let r15 = w7 lor (w7 lsl 32) and r2 = w4 lor (w4 lsl 32) in
    (w6 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w7 lsr 3)) + w15
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w4 lsr 10))) land mask32 in
  let b = let re = g lor (g lsl 32) in
    b + 0x81c2c92e + w6 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (a lxor (g land (h lxor a))) in
  let f = (f + b) land mask32 in
  let b = let ra = c lor (c lsl 32) in
    (b + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((c land (d lor e)) lor (d land e))) land mask32 in
  let w7 = let r15 = w8 lor (w8 lsl 32) and r2 = w5 lor (w5 lsl 32) in
    (w7 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w8 lsr 3)) + w0
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w5 lsr 10))) land mask32 in
  let a = let re = f lor (f lsl 32) in
    a + 0x92722c85 + w7 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (h lxor (f land (g lxor h))) in
  let e = (e + a) land mask32 in
  let a = let ra = b lor (b lsl 32) in
    (a + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((b land (c lor d)) lor (c land d))) land mask32 in
  let w8 = let r15 = w9 lor (w9 lsl 32) and r2 = w6 lor (w6 lsl 32) in
    (w8 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w9 lsr 3)) + w1
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w6 lsr 10))) land mask32 in
  let h = let re = e lor (e lsl 32) in
    h + 0xa2bfe8a1 + w8 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (g lxor (e land (f lxor g))) in
  let d = (d + h) land mask32 in
  let h = let ra = a lor (a lsl 32) in
    (h + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((a land (b lor c)) lor (b land c))) land mask32 in
  let w9 = let r15 = w10 lor (w10 lsl 32) and r2 = w7 lor (w7 lsl 32) in
    (w9 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w10 lsr 3)) + w2
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w7 lsr 10))) land mask32 in
  let g = let re = d lor (d lsl 32) in
    g + 0xa81a664b + w9 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (f lxor (d land (e lxor f))) in
  let c = (c + g) land mask32 in
  let g = let ra = h lor (h lsl 32) in
    (g + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((h land (a lor b)) lor (a land b))) land mask32 in
  let w10 = let r15 = w11 lor (w11 lsl 32) and r2 = w8 lor (w8 lsl 32) in
    (w10 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w11 lsr 3)) + w3
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w8 lsr 10))) land mask32 in
  let f = let re = c lor (c lsl 32) in
    f + 0xc24b8b70 + w10 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (e lxor (c land (d lxor e))) in
  let b = (b + f) land mask32 in
  let f = let ra = g lor (g lsl 32) in
    (f + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((g land (h lor a)) lor (h land a))) land mask32 in
  let w11 = let r15 = w12 lor (w12 lsl 32) and r2 = w9 lor (w9 lsl 32) in
    (w11 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w12 lsr 3)) + w4
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w9 lsr 10))) land mask32 in
  let e = let re = b lor (b lsl 32) in
    e + 0xc76c51a3 + w11 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (d lxor (b land (c lxor d))) in
  let a = (a + e) land mask32 in
  let e = let ra = f lor (f lsl 32) in
    (e + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((f land (g lor h)) lor (g land h))) land mask32 in
  let w12 = let r15 = w13 lor (w13 lsl 32) and r2 = w10 lor (w10 lsl 32) in
    (w12 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w13 lsr 3)) + w5
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w10 lsr 10))) land mask32 in
  let d = let re = a lor (a lsl 32) in
    d + 0xd192e819 + w12 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (c lxor (a land (b lxor c))) in
  let h = (h + d) land mask32 in
  let d = let ra = e lor (e lsl 32) in
    (d + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((e land (f lor g)) lor (f land g))) land mask32 in
  let w13 = let r15 = w14 lor (w14 lsl 32) and r2 = w11 lor (w11 lsl 32) in
    (w13 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w14 lsr 3)) + w6
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w11 lsr 10))) land mask32 in
  let c = let re = h lor (h lsl 32) in
    c + 0xd6990624 + w13 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (b lxor (h land (a lxor b))) in
  let g = (g + c) land mask32 in
  let c = let ra = d lor (d lsl 32) in
    (c + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((d land (e lor f)) lor (e land f))) land mask32 in
  let w14 = let r15 = w15 lor (w15 lsl 32) and r2 = w12 lor (w12 lsl 32) in
    (w14 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w15 lsr 3)) + w7
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w12 lsr 10))) land mask32 in
  let b = let re = g lor (g lsl 32) in
    b + 0xf40e3585 + w14 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (a lxor (g land (h lxor a))) in
  let f = (f + b) land mask32 in
  let b = let ra = c lor (c lsl 32) in
    (b + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((c land (d lor e)) lor (d land e))) land mask32 in
  let w15 = let r15 = w0 lor (w0 lsl 32) and r2 = w13 lor (w13 lsl 32) in
    (w15 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w0 lsr 3)) + w8
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w13 lsr 10))) land mask32 in
  let a = let re = f lor (f lsl 32) in
    a + 0x106aa070 + w15 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (h lxor (f land (g lxor h))) in
  let e = (e + a) land mask32 in
  let a = let ra = b lor (b lsl 32) in
    (a + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((b land (c lor d)) lor (c land d))) land mask32 in
  let w0 = let r15 = w1 lor (w1 lsl 32) and r2 = w14 lor (w14 lsl 32) in
    (w0 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w1 lsr 3)) + w9
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w14 lsr 10))) land mask32 in
  let h = let re = e lor (e lsl 32) in
    h + 0x19a4c116 + w0 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (g lxor (e land (f lxor g))) in
  let d = (d + h) land mask32 in
  let h = let ra = a lor (a lsl 32) in
    (h + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((a land (b lor c)) lor (b land c))) land mask32 in
  let w1 = let r15 = w2 lor (w2 lsl 32) and r2 = w15 lor (w15 lsl 32) in
    (w1 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w2 lsr 3)) + w10
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w15 lsr 10))) land mask32 in
  let g = let re = d lor (d lsl 32) in
    g + 0x1e376c08 + w1 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (f lxor (d land (e lxor f))) in
  let c = (c + g) land mask32 in
  let g = let ra = h lor (h lsl 32) in
    (g + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((h land (a lor b)) lor (a land b))) land mask32 in
  let w2 = let r15 = w3 lor (w3 lsl 32) and r2 = w0 lor (w0 lsl 32) in
    (w2 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w3 lsr 3)) + w11
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w0 lsr 10))) land mask32 in
  let f = let re = c lor (c lsl 32) in
    f + 0x2748774c + w2 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (e lxor (c land (d lxor e))) in
  let b = (b + f) land mask32 in
  let f = let ra = g lor (g lsl 32) in
    (f + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((g land (h lor a)) lor (h land a))) land mask32 in
  let w3 = let r15 = w4 lor (w4 lsl 32) and r2 = w1 lor (w1 lsl 32) in
    (w3 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w4 lsr 3)) + w12
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w1 lsr 10))) land mask32 in
  let e = let re = b lor (b lsl 32) in
    e + 0x34b0bcb5 + w3 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (d lxor (b land (c lxor d))) in
  let a = (a + e) land mask32 in
  let e = let ra = f lor (f lsl 32) in
    (e + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((f land (g lor h)) lor (g land h))) land mask32 in
  let w4 = let r15 = w5 lor (w5 lsl 32) and r2 = w2 lor (w2 lsl 32) in
    (w4 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w5 lsr 3)) + w13
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w2 lsr 10))) land mask32 in
  let d = let re = a lor (a lsl 32) in
    d + 0x391c0cb3 + w4 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (c lxor (a land (b lxor c))) in
  let h = (h + d) land mask32 in
  let d = let ra = e lor (e lsl 32) in
    (d + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((e land (f lor g)) lor (f land g))) land mask32 in
  let w5 = let r15 = w6 lor (w6 lsl 32) and r2 = w3 lor (w3 lsl 32) in
    (w5 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w6 lsr 3)) + w14
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w3 lsr 10))) land mask32 in
  let c = let re = h lor (h lsl 32) in
    c + 0x4ed8aa4a + w5 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (b lxor (h land (a lxor b))) in
  let g = (g + c) land mask32 in
  let c = let ra = d lor (d lsl 32) in
    (c + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((d land (e lor f)) lor (e land f))) land mask32 in
  let w6 = let r15 = w7 lor (w7 lsl 32) and r2 = w4 lor (w4 lsl 32) in
    (w6 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w7 lsr 3)) + w15
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w4 lsr 10))) land mask32 in
  let b = let re = g lor (g lsl 32) in
    b + 0x5b9cca4f + w6 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (a lxor (g land (h lxor a))) in
  let f = (f + b) land mask32 in
  let b = let ra = c lor (c lsl 32) in
    (b + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((c land (d lor e)) lor (d land e))) land mask32 in
  let w7 = let r15 = w8 lor (w8 lsl 32) and r2 = w5 lor (w5 lsl 32) in
    (w7 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w8 lsr 3)) + w0
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w5 lsr 10))) land mask32 in
  let a = let re = f lor (f lsl 32) in
    a + 0x682e6ff3 + w7 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (h lxor (f land (g lxor h))) in
  let e = (e + a) land mask32 in
  let a = let ra = b lor (b lsl 32) in
    (a + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((b land (c lor d)) lor (c land d))) land mask32 in
  let w8 = let r15 = w9 lor (w9 lsl 32) and r2 = w6 lor (w6 lsl 32) in
    (w8 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w9 lsr 3)) + w1
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w6 lsr 10))) land mask32 in
  let h = let re = e lor (e lsl 32) in
    h + 0x748f82ee + w8 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (g lxor (e land (f lxor g))) in
  let d = (d + h) land mask32 in
  let h = let ra = a lor (a lsl 32) in
    (h + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((a land (b lor c)) lor (b land c))) land mask32 in
  let w9 = let r15 = w10 lor (w10 lsl 32) and r2 = w7 lor (w7 lsl 32) in
    (w9 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w10 lsr 3)) + w2
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w7 lsr 10))) land mask32 in
  let g = let re = d lor (d lsl 32) in
    g + 0x78a5636f + w9 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (f lxor (d land (e lxor f))) in
  let c = (c + g) land mask32 in
  let g = let ra = h lor (h lsl 32) in
    (g + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((h land (a lor b)) lor (a land b))) land mask32 in
  let w10 = let r15 = w11 lor (w11 lsl 32) and r2 = w8 lor (w8 lsl 32) in
    (w10 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w11 lsr 3)) + w3
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w8 lsr 10))) land mask32 in
  let f = let re = c lor (c lsl 32) in
    f + 0x84c87814 + w10 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (e lxor (c land (d lxor e))) in
  let b = (b + f) land mask32 in
  let f = let ra = g lor (g lsl 32) in
    (f + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((g land (h lor a)) lor (h land a))) land mask32 in
  let w11 = let r15 = w12 lor (w12 lsl 32) and r2 = w9 lor (w9 lsl 32) in
    (w11 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w12 lsr 3)) + w4
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w9 lsr 10))) land mask32 in
  let e = let re = b lor (b lsl 32) in
    e + 0x8cc70208 + w11 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (d lxor (b land (c lxor d))) in
  let a = (a + e) land mask32 in
  let e = let ra = f lor (f lsl 32) in
    (e + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((f land (g lor h)) lor (g land h))) land mask32 in
  let w12 = let r15 = w13 lor (w13 lsl 32) and r2 = w10 lor (w10 lsl 32) in
    (w12 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w13 lsr 3)) + w5
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w10 lsr 10))) land mask32 in
  let d = let re = a lor (a lsl 32) in
    d + 0x90befffa + w12 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (c lxor (a land (b lxor c))) in
  let h = (h + d) land mask32 in
  let d = let ra = e lor (e lsl 32) in
    (d + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((e land (f lor g)) lor (f land g))) land mask32 in
  let w13 = let r15 = w14 lor (w14 lsl 32) and r2 = w11 lor (w11 lsl 32) in
    (w13 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w14 lsr 3)) + w6
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w11 lsr 10))) land mask32 in
  let c = let re = h lor (h lsl 32) in
    c + 0xa4506ceb + w13 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (b lxor (h land (a lxor b))) in
  let g = (g + c) land mask32 in
  let c = let ra = d lor (d lsl 32) in
    (c + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((d land (e lor f)) lor (e land f))) land mask32 in
  let w14 = let r15 = w15 lor (w15 lsl 32) and r2 = w12 lor (w12 lsl 32) in
    (w14 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w15 lsr 3)) + w7
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w12 lsr 10))) land mask32 in
  let b = let re = g lor (g lsl 32) in
    b + 0xbef9a3f7 + w14 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (a lxor (g land (h lxor a))) in
  let f = (f + b) land mask32 in
  let b = let ra = c lor (c lsl 32) in
    (b + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((c land (d lor e)) lor (d land e))) land mask32 in
  let w15 = let r15 = w0 lor (w0 lsl 32) and r2 = w13 lor (w13 lsl 32) in
    (w15 + ((r15 lsr 7) lxor (r15 lsr 18) lxor (w0 lsr 3)) + w8
     + ((r2 lsr 17) lxor (r2 lsr 19) lxor (w13 lsr 10))) land mask32 in
  let a = let re = f lor (f lsl 32) in
    a + 0xc67178f2 + w15 + ((re lsr 6) lxor (re lsr 11) lxor (re lsr 25))
    + (h lxor (f land (g lxor h))) in
  let e = (e + a) land mask32 in
  let a = let ra = b lor (b lsl 32) in
    (a + ((ra lsr 2) lxor (ra lsr 13) lxor (ra lsr 22))
     + ((b land (c lor d)) lor (c land d))) land mask32 in
  ctx.h0 <- (ctx.h0 + a) land mask32;
  ctx.h1 <- (ctx.h1 + b) land mask32;
  ctx.h2 <- (ctx.h2 + c) land mask32;
  ctx.h3 <- (ctx.h3 + d) land mask32;
  ctx.h4 <- (ctx.h4 + e) land mask32;
  ctx.h5 <- (ctx.h5 + f) land mask32;
  ctx.h6 <- (ctx.h6 + g) land mask32;
  ctx.h7 <- (ctx.h7 + h) land mask32

let feed_sub ctx s ~off ~len =
  if off < 0 || len < 0 || off > String.length s - len then
    invalid_arg "Sha256.feed_sub: range out of bounds";
  ctx.total <- ctx.total + len;
  let off = ref off and len = ref len in
  if ctx.buflen > 0 then begin
    let take = Stdlib.min (64 - ctx.buflen) !len in
    Bytes.blit_string s !off ctx.buf ctx.buflen take;
    ctx.buflen <- ctx.buflen + take;
    off := !off + take;
    len := !len - take;
    if ctx.buflen = 64 then begin
      compress ctx (Bytes.unsafe_to_string ctx.buf) 0;
      ctx.buflen <- 0
    end
  end;
  while !len >= 64 do
    compress ctx s !off;
    off := !off + 64;
    len := !len - 64
  done;
  if !len > 0 then begin
    Bytes.blit_string s !off ctx.buf 0 !len;
    ctx.buflen <- !len
  end

let feed ctx s = feed_sub ctx s ~off:0 ~len:(String.length s)

let finalize ctx =
  let bitlen = ctx.total * 8 in
  let rem = ctx.buflen in
  (* pad into a scratch of one or two blocks; the message itself is
     never copied again *)
  let scratch = Bytes.make (if rem < 56 then 64 else 128) '\x00' in
  Bytes.blit ctx.buf 0 scratch 0 rem;
  Bytes.set scratch rem '\x80';
  let n = Bytes.length scratch in
  for i = 0 to 7 do
    Bytes.set scratch (n - 1 - i) (Char.unsafe_chr ((bitlen lsr (8 * i)) land 0xff))
  done;
  let s = Bytes.unsafe_to_string scratch in
  compress ctx s 0;
  if n = 128 then compress ctx s 64;
  ctx.buflen <- 0;
  let out = Bytes.create 32 in
  let put i v =
    Bytes.unsafe_set out i (Char.unsafe_chr (v lsr 24));
    Bytes.unsafe_set out (i + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.unsafe_set out (i + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set out (i + 3) (Char.unsafe_chr (v land 0xff))
  in
  put 0 ctx.h0; put 4 ctx.h1; put 8 ctx.h2; put 12 ctx.h3;
  put 16 ctx.h4; put 20 ctx.h5; put 24 ctx.h6; put 28 ctx.h7;
  Bytes.unsafe_to_string out

let digest msg =
  let ctx = init () in
  feed ctx msg;
  finalize ctx

let hex msg = Tangled_util.Hex.encode (digest msg)
