module J = Tangled_util.Json
module Ts = Tangled_util.Timestamp
module Hex = Tangled_util.Hex
module T = Tangled_util.Text_table
module C = Tangled_x509.Certificate
module Rs = Tangled_store.Root_store
module Chain = Tangled_validation.Chain
module BP = Tangled_pki.Blueprint
module PD = Tangled_pki.Paper_data
module Pop = Tangled_device.Population
module Notary = Tangled_notary.Notary
module Pipeline = Tangled_core.Pipeline
module Export = Tangled_core.Export
module Fault = Tangled_fault.Fault
module Ingest = Tangled_ingest.Ingest
module Obs = Tangled_obs.Obs
module Cache = Tangled_cache.Cache
module Ct_log = Tangled_ct.Log
module Ct_proof = Tangled_ct.Proof
module Fleet = Tangled_ct.Fleet

(* v2 = v1 + the ct-* read ops.  Every v1 frame is still decoded and
   answered exactly as before; see the README serve section for the
   negotiation rule. *)
let protocol_version = "tangled-serve/2"

(* --- observability ------------------------------------------------------ *)

let queue_gauge = Obs.gauge "serve.queue_depth"
let c_answered = Obs.counter "serve.answered"
let c_errors = Obs.counter "serve.typed_errors"
let c_timeouts = Obs.counter "serve.timeouts"
let c_shed = Obs.counter "serve.shed"
let c_refused = Obs.counter "serve.refused_draining"
let c_quarantined = Obs.counter "serve.quarantined"
let c_retries = Obs.counter "serve.retries"

(* one latency histogram per request class, registered up front so the
   trace always carries the full set *)
let classes =
  [ "validate"; "diff"; "coverage"; "stores"; "health"; "admin"; "malformed"; "ct" ]
let latency_of_class =
  let tbl = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace tbl c (Obs.histogram ("serve.latency." ^ c))) classes;
  fun cls -> Hashtbl.find tbl cls

(* --- configuration ------------------------------------------------------ *)

type config = {
  queue_capacity : int;
  batch : int;
  default_deadline_s : float;
  max_retries : int;
  backoff_s : float;
  max_frame_bytes : int;
  cache_capacity : int;
  ct_logs : int;
  clock : unit -> float;
  sleep : float -> unit;
  fault_hook : seq:int -> attempt:int -> Fault.kind option;
}

let default_config =
  {
    queue_capacity = 64;
    batch = 32;
    default_deadline_s = 0.25;
    max_retries = 3;
    backoff_s = 0.001;
    max_frame_bytes = 1 lsl 20;
    cache_capacity = 16384;
    ct_logs = 3;
    clock = Unix.gettimeofday;
    (* the loop is single-domain: blocking on a backoff would stall
       every queued request, so the default records the wait without
       taking it.  A multi-writer deployment would plug a real sleep. *)
    sleep = (fun _ -> ());
    fault_hook = (fun ~seq:_ ~attempt:_ -> None);
  }

(* --- control totals ----------------------------------------------------- *)

type summary = {
  seen : int;
  answered : int;
  typed_errors : int;
  timed_out : int;
  shed : int;
  refused : int;
  quarantined : int;
  retries : int;
  backoff_s_total : float;
  reloads_accepted : int;
  reloads_rejected : int;
  epoch : int;
  drained : bool;
}

let reconciled s =
  s.seen
  = s.answered + s.typed_errors + s.timed_out + s.shed + s.refused
    + s.quarantined

(* --- server state ------------------------------------------------------- *)

module Arena = Tangled_x509.Arena
module Interner = Tangled_engine.Interner

type snapshot = {
  epoch : int;
  store_sizes : (string * int) list;
  base : Arena.mark;  (** where this epoch's corpus starts in the arena *)
  count : int;  (** certificates in this epoch's corpus *)
}

type t = {
  config : config;
  world : Pipeline.t;
  corpus : Arena.t;
      (** reloaded store corpora as arena epochs: the live epoch is the
          window [snapshot.base, extent).  A reload appends
          speculatively past the extent and either commits by
          publishing the new window or vanishes via [Arena.truncate] —
          a rejected reload retains nothing, immediately, rather than
          waiting on the GC to collect a half-built boxed corpus. *)
  store_names : Interner.t;  (** store name -> corpus column id *)
  fleet : Fleet.t option;
      (** the CT log fleet (v2's ct-* ops), built once at [create] from
          the world's seed — [None] when [ct_logs] is 0.  Logs are
          append-only and no serve op mutates them, so every ct-* op is
          a pure read against a fixed structure. *)
  cache : J.t Cache.t option;
      (** request-level decision cache (lib/cache CLOCK), keyed by
          (op, canonical request parameters) and epoch-stamped with the
          snapshot epoch.  Only pure reads against the snapshot are
          cached — [validate], [diff] and [coverage] — and only their
          [ok] results; typed errors and timeouts always re-execute.
          The cache epoch rolls on {e accepted} reloads only: a
          rejected reload leaves the snapshot — and therefore every
          cached decision — untouched, so its entries and counters stay
          byte-identical.  [None] when [cache_capacity] is 0. *)
  mutable snapshot : snapshot;
  mutable draining : bool;
  mutable seq : int;  (* admitted-request ordinal, drives the fault hook *)
  mutable n_seen : int;
  mutable n_answered : int;
  mutable n_typed_errors : int;
  mutable n_timed_out : int;
  mutable n_shed : int;
  mutable n_refused : int;
  mutable n_retries : int;
  mutable backoff_total : float;
  mutable n_reloads_accepted : int;
  mutable n_reloads_rejected : int;
  mutable quarantine_rev : Ingest.quarantined list;
}

(* One arena row per ingested store certificate.  The record's payload
   is its SHA-256 fingerprint (store dumps carry no DER); columns hold
   the interned store name, the 32-bit hash id, the validity horizon
   and the fingerprint's leading 64 bits. *)
let append_corpus corpus store_names (r : Ingest.cert_view Ingest.ingest) =
  Array.iter
    (fun (v : Ingest.cert_view) ->
      let fp =
        match Hex.decode_opt v.Ingest.fingerprint with
        | Some raw -> raw
        | None -> v.Ingest.fingerprint
      in
      let key_fp =
        if String.length fp >= 8 then String.get_int64_be fp 0 else 0L
      in
      let hash_id =
        match int_of_string_opt ("0x" ^ v.Ingest.hash_id) with
        | Some h -> h
        | None -> -1
      in
      let (_ : int) =
        Arena.append corpus ~der:fp
          ~subject_id:(Interner.intern store_names v.Ingest.store)
          ~issuer_id:hash_id ~anchor_id:(-1) ~not_before:0
          ~not_after:v.Ingest.cert_not_after ~flags:0 ~key_fp
      in
      ())
    r.Ingest.records

let create ?(config = default_config) world =
  (* the epoch-1 snapshot is the world's own store dump, pushed through
     the same quarantining ingest path a reload would take *)
  let r = Ingest.stores_of_string (Export.stores_jsonl world) in
  let corpus = Arena.create () in
  let store_names = Interner.create () in
  let base = Arena.mark corpus in
  append_corpus corpus store_names r;
  {
    config;
    world;
    corpus;
    store_names;
    fleet =
      (if config.ct_logs > 0 then
         Some
           (Fleet.build ~n_logs:config.ct_logs
              ~seed:world.Pipeline.config.Pipeline.seed
              world.Pipeline.universe world.Pipeline.notary)
       else None);
    cache =
      (if config.cache_capacity > 0 then
         Some
           (Cache.create ~name:"serve.decisions"
              ~capacity:config.cache_capacity ())
       else None);
    snapshot =
      {
        epoch = 1;
        store_sizes = Ingest.store_sizes r;
        base;
        count = Array.length r.Ingest.records;
      };
    draining = false;
    seq = 0;
    n_seen = 0;
    n_answered = 0;
    n_typed_errors = 0;
    n_timed_out = 0;
    n_shed = 0;
    n_refused = 0;
    n_retries = 0;
    backoff_total = 0.0;
    n_reloads_accepted = 0;
    n_reloads_rejected = 0;
    quarantine_rev = [];
  }

let draining t = t.draining
let quarantine t = List.rev t.quarantine_rev
let ct_fleet t = t.fleet

let cache_stats t =
  Option.map
    (fun c ->
      (* sync first so the entry count is the live snapshot epoch's *)
      Cache.set_epoch c t.snapshot.epoch;
      Cache.stats c)
    t.cache

let summary t =
  {
    seen = t.n_seen;
    answered = t.n_answered;
    typed_errors = t.n_typed_errors;
    timed_out = t.n_timed_out;
    shed = t.n_shed;
    refused = t.n_refused;
    quarantined = List.length t.quarantine_rev;
    retries = t.n_retries;
    backoff_s_total = t.backoff_total;
    reloads_accepted = t.n_reloads_accepted;
    reloads_rejected = t.n_reloads_rejected;
    epoch = t.snapshot.epoch;
    drained = t.draining;
  }

(* --- frames ------------------------------------------------------------- *)

type op =
  | Validate of { store : string; chain_hex : string list }
  | Diff of { store : string; baseline : string }
  | Coverage of { root : string }
  | Stores
  | Health
  | Reload of { payload : string }
  | Drain
  | Ct_inclusion of { log : string; index : int; tree_size : int option }
  | Ct_consistency of { log : string; first : int; second : int }
  | Ct_visibility of { store : string }

let class_of_op = function
  | Validate _ -> "validate"
  | Diff _ -> "diff"
  | Coverage _ -> "coverage"
  | Stores -> "stores"
  | Health -> "health"
  | Reload _ | Drain -> "admin"
  | Ct_inclusion _ | Ct_consistency _ | Ct_visibility _ -> "ct"

type frame = { id : J.t; op : op; deadline_s : float option }

let ( let* ) = Result.bind

let str_field name json =
  match J.member name json with
  | Some (J.String s) -> Ok s
  | Some _ -> Error (Ingest.Type_mismatch name)
  | None -> Error (Ingest.Missing_field name)

let str_list_field name json =
  match J.member name json with
  | Some (J.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | J.String s :: rest -> go (s :: acc) rest
        | _ -> Error (Ingest.Type_mismatch name)
      in
      go [] items
  | Some _ -> Error (Ingest.Type_mismatch name)
  | None -> Error (Ingest.Missing_field name)

let int_field name json =
  match J.member name json with
  | Some (J.Int n) -> Ok n
  | Some _ -> Error (Ingest.Type_mismatch name)
  | None -> Error (Ingest.Missing_field name)

let opt_int_field name json =
  match J.member name json with
  | None -> Ok None
  | Some (J.Int n) -> Ok (Some n)
  | Some _ -> Error (Ingest.Type_mismatch name)

(* Total: any byte sequence is either a frame or a typed taxonomy
   reason — the serve analogue of the ingest record decoder, sharing
   its labels so malformed frames and malformed records read the same
   downstream. *)
let decode_frame ~max_frame_bytes line : (frame, Ingest.reason) result =
  if String.length line > max_frame_bytes then
    Error
      (Ingest.Bad_value
         (Printf.sprintf "frame of %d bytes exceeds the %d-byte bound"
            (String.length line) max_frame_bytes))
  else if Ingest.has_control_bytes line then
    Error (Ingest.Control_bytes "frame carries raw NUL/control bytes")
  else
    match J.parse line with
    | Error msg ->
        Error
          (if J.error_is_truncation msg then Ingest.Truncated_record
           else Ingest.Malformed_json msg)
    | Ok (J.Obj _ as json) ->
        let* id =
          match J.member "id" json with
          | Some ((J.Int _ | J.String _) as v) -> Ok v
          | Some _ -> Error (Ingest.Type_mismatch "id")
          | None -> Error (Ingest.Missing_field "id")
        in
        let* deadline_s =
          match J.member "deadline_ms" json with
          | None -> Ok None
          | Some (J.Int ms) when ms >= 0 -> Ok (Some (float_of_int ms /. 1000.0))
          | Some (J.Int _) -> Error (Ingest.Bad_value "deadline_ms is negative")
          | Some _ -> Error (Ingest.Type_mismatch "deadline_ms")
        in
        let* op_name = str_field "op" json in
        let* op =
          match op_name with
          | "validate" ->
              let* store = str_field "store" json in
              let* chain_hex = str_list_field "chain" json in
              Ok (Validate { store; chain_hex })
          | "diff" ->
              let* store = str_field "store" json in
              let* baseline =
                match J.member "baseline" json with
                | None -> Ok "aosp44"
                | Some (J.String s) -> Ok s
                | Some _ -> Error (Ingest.Type_mismatch "baseline")
              in
              Ok (Diff { store; baseline })
          | "coverage" ->
              let* root = str_field "root" json in
              Ok (Coverage { root })
          | "stores" -> Ok Stores
          | "health" -> Ok Health
          | "reload" ->
              let* payload = str_field "payload" json in
              Ok (Reload { payload })
          | "drain" -> Ok Drain
          | "ct-inclusion" ->
              let* log = str_field "log" json in
              let* index = int_field "index" json in
              let* tree_size = opt_int_field "tree_size" json in
              Ok (Ct_inclusion { log; index; tree_size })
          | "ct-consistency" ->
              let* log = str_field "log" json in
              let* first = int_field "first" json in
              let* second = int_field "second" json in
              Ok (Ct_consistency { log; first; second })
          | "ct-visibility" ->
              let* store = str_field "store" json in
              Ok (Ct_visibility { store })
          | other -> Error (Ingest.Bad_value ("unknown op " ^ other))
        in
        Ok { id; op; deadline_s }
    | Ok _ -> Error (Ingest.Bad_value "frame is not a JSON object")

(* --- responses ---------------------------------------------------------- *)

let respond t ~id ~status extra =
  J.to_string
    (J.Obj
       ([ ("id", id); ("status", J.String status);
          ("epoch", J.Int t.snapshot.epoch) ]
       @ extra))

let error_response t ~id ~label ~detail =
  respond t ~id ~status:"error"
    [ ("error", J.Obj [ ("label", J.String label); ("detail", J.String detail) ]) ]

(* --- op execution ------------------------------------------------------- *)

(* internal deadline signal: raised at work-unit checkpoints inside op
   execution, caught exactly one frame up in [handle_admitted] *)
exception Deadline_exceeded

let check_deadline t deadline =
  if t.config.clock () > deadline then raise Deadline_exceeded

let resolve_store t name : Rs.t option =
  let u = t.world.Pipeline.universe in
  match name with
  | "aosp41" -> Some (u.BP.aosp PD.V4_1)
  | "aosp42" -> Some (u.BP.aosp PD.V4_2)
  | "aosp43" -> Some (u.BP.aosp PD.V4_3)
  | "aosp44" -> Some (u.BP.aosp PD.V4_4)
  | "mozilla" -> Some u.BP.mozilla
  | "ios7" -> Some u.BP.ios7
  | s when String.length s > 8 && String.sub s 0 8 = "handset:" -> (
      match int_of_string_opt (String.sub s 8 (String.length s - 8)) with
      | Some i
        when i >= 0
             && i < Array.length t.world.Pipeline.population.Pop.handsets ->
          Some t.world.Pipeline.population.Pop.handsets.(i).Pop.store
      | _ -> None)
  | _ -> None

let max_chain_length = 16

let exec_validate t deadline store_name chain_hex : (J.t, string * string) result =
  match resolve_store t store_name with
  | None -> Error ("unknown-store", store_name)
  | Some store -> (
      if chain_hex = [] then Error ("bad-value", "empty chain")
      else if List.length chain_hex > max_chain_length then
        Error
          ( "bad-value",
            Printf.sprintf "chain longer than %d certificates" max_chain_length )
      else
        let rec decode acc i = function
          | [] -> Ok (List.rev acc)
          | h :: rest -> (
              check_deadline t deadline;
              match Hex.decode_opt h with
              | None -> Error ("bad-value", Printf.sprintf "chain[%d] is not hexadecimal" i)
              | Some der -> (
                  match C.decode der with
                  | Ok c -> decode (c :: acc) (i + 1) rest
                  | Error e ->
                      Error ("bad-value", Printf.sprintf "chain[%d]: %s" i e)))
        in
        match decode [] 0 chain_hex with
        | Error _ as e -> e
        | Ok certs ->
            check_deadline t deadline;
            let r = Chain.validate ~now:Ts.paper_epoch ~store certs in
            let verdict, anchor =
              match r.Chain.verdict with
              | Ok root ->
                  ("trusted", J.String (C.subject_hash32 root))
              | Error f -> (Chain.failure_to_string f, J.Null)
            in
            Ok
              (J.Obj
                 [
                   ("store", J.String store_name);
                   ("verdict", J.String verdict);
                   ("anchor", anchor);
                   ("path_len", J.Int (List.length r.Chain.path));
                 ]))

let id_list certs =
  J.List (List.filteri (fun i _ -> i < 16) certs
          |> List.map (fun c -> J.String (C.subject_hash32 c)))

let exec_diff t deadline store_name baseline_name : (J.t, string * string) result =
  match (resolve_store t store_name, resolve_store t baseline_name) with
  | None, _ -> Error ("unknown-store", store_name)
  | _, None -> Error ("unknown-store", baseline_name)
  | Some store, Some baseline ->
      check_deadline t deadline;
      let additions, missing = Rs.diff store baseline in
      Ok
        (J.Obj
           [
             ("store", J.String store_name);
             ("baseline", J.String baseline_name);
             ("store_size", J.Int (Rs.cardinal store));
             ("baseline_size", J.Int (Rs.cardinal baseline));
             ("additions", J.Int (List.length additions));
             ("missing", J.Int (List.length missing));
             ("added_ids", id_list additions);
             ("missing_ids", id_list missing);
           ])

let exec_coverage t deadline name : (J.t, string * string) result =
  let u = t.world.Pipeline.universe in
  let root =
    match BP.find_root_by_name u name with
    | Some r -> Some r
    | None -> (
        match Hashtbl.find_opt u.BP.extra_by_id name with
        | Some r -> Some r
        | None -> BP.find_root_by_key u name)
  in
  match root with
  | None -> Error ("unknown-root", name)
  | Some r ->
      check_deadline t deadline;
      let n = t.world.Pipeline.notary in
      let count = Notary.count_for_id n r.BP.id in
      let unexpired = Notary.unexpired n in
      Ok
        (J.Obj
           [
             ("root", J.String r.BP.display_name);
             ("validated", J.Int count);
             ( "share",
               J.Float (float_of_int count /. float_of_int (max 1 unexpired)) );
           ])

(* --- the ct-* ops (protocol v2) ----------------------------------------- *)

let hex_list hashes = J.List (List.map (fun h -> J.String (Hex.encode h)) hashes)

let find_ct_log t name =
  match t.fleet with
  | None -> Error ("unknown-log", "ct logs are disabled on this server")
  | Some fleet -> (
      match Fleet.find_log fleet name with
      | Some e -> Ok e
      | None ->
          Error
            ( "unknown-log",
              Printf.sprintf "no log named %s (fleet: ct0..ct%d)" name
                (Fleet.n_logs fleet - 1) ))

let exec_ct_inclusion t deadline log_name index tree_size :
    (J.t, string * string) result =
  let* e = find_ct_log t log_name in
  check_deadline t deadline;
  let log = e.Fleet.log in
  let n = match tree_size with Some n -> n | None -> Ct_log.size log in
  match (Ct_log.inclusion_proof log ~index ~tree_size:n, Ct_log.head_at log n) with
  | Error detail, _ | _, Error detail -> Error ("out-of-range", detail)
  | Ok proof, Ok root ->
      Ok
        (J.Obj
           [
             ("log", J.String log_name);
             ("index", J.Int index);
             ("tree_size", J.Int n);
             ("root", J.String (Hex.encode root));
             ("proof", hex_list proof);
           ])

let exec_ct_consistency t deadline log_name first second :
    (J.t, string * string) result =
  let* e = find_ct_log t log_name in
  check_deadline t deadline;
  let log = e.Fleet.log in
  match
    ( Ct_log.consistency_proof log ~first ~second,
      Ct_log.head_at log first,
      Ct_log.head_at log second )
  with
  | Error detail, _, _ | _, Error detail, _ | _, _, Error detail ->
      Error ("out-of-range", detail)
  | Ok proof, Ok first_root, Ok second_root ->
      Ok
        (J.Obj
           [
             ("log", J.String log_name);
             ("first", J.Int first);
             ("second", J.Int second);
             ("first_root", J.String (Hex.encode first_root));
             ("second_root", J.String (Hex.encode second_root));
             ("proof", hex_list proof);
           ])

let exec_ct_visibility t deadline store_name : (J.t, string * string) result =
  match t.fleet with
  | None -> Error ("unknown-log", "ct logs are disabled on this server")
  | Some fleet -> (
      match resolve_store t store_name with
      | None -> Error ("unknown-store", store_name)
      | Some store ->
          check_deadline t deadline;
          let r = Fleet.store_visibility fleet store_name store in
          Ok
            (J.Obj
               [
                 ("store", J.String store_name);
                 ("roots", J.Int r.Fleet.roots);
                 ("accepted", J.Int r.Fleet.accepted);
                 ("logged", J.Int r.Fleet.logged);
                 ("dark", J.Int r.Fleet.dark);
                 ( "dark_names",
                   J.List (List.map (fun n -> J.String n) r.Fleet.dark_names) );
               ]))

(* per-log tree size and head, embedded in [stores] and [health] *)
let ct_json t =
  match t.fleet with
  | None -> J.Obj [ ("enabled", J.Bool false) ]
  | Some fleet ->
      J.Obj
        [
          ("enabled", J.Bool true);
          ( "logs",
            J.List
              (Array.to_list
                 (Array.map
                    (fun (e : Fleet.entry) ->
                      J.Obj
                        [
                          ("log", J.String (Ct_log.name e.Fleet.log));
                          ("tree_size", J.Int (Ct_log.size e.Fleet.log));
                          ("head", J.String (Ct_log.head_hex e.Fleet.log));
                          ("accepted_roots", J.Int e.Fleet.accepted_roots);
                        ])
                    (Fleet.entries fleet))) );
        ]

(* decision-cache introspection, embedded in [stores] and [health]
   responses.  hits/misses/evictions are the process-global Obs
   counters behind the cache's name; entries/capacity/epoch are this
   server's instance. *)
let cache_json t =
  match t.cache with
  | None -> J.Obj [ ("enabled", J.Bool false) ]
  | Some c ->
      (* sync to the snapshot epoch first so the reported entry count
         is the live epoch's, even before the next cacheable op *)
      Cache.set_epoch c t.snapshot.epoch;
      let s = Cache.stats c in
      J.Obj
        [
          ("enabled", J.Bool true);
          ("hits", J.Int s.Cache.hits);
          ("misses", J.Int s.Cache.misses);
          ("evictions", J.Int s.Cache.evictions);
          ("entries", J.Int s.Cache.entries);
          ("capacity", J.Int s.Cache.capacity);
          ("epoch", J.Int s.Cache.epoch);
        ]

let exec_stores t : (J.t, string * string) result =
  let m = Arena.memory t.corpus in
  Ok
    (J.Obj
       [
         ("snapshot_epoch", J.Int t.snapshot.epoch);
         ( "sizes",
           J.Obj (List.map (fun (s, n) -> (s, J.Int n)) t.snapshot.store_sizes) );
         ("corpus_certs", J.Int t.snapshot.count);
         ( "corpus_bytes",
           J.Int (m.Arena.blob_bytes - t.snapshot.base.Arena.m_bytes) );
         ("cache", cache_json t);
         ("ct", ct_json t);
       ])

let exec_health t : (J.t, string * string) result =
  let s = summary t in
  Ok
    (J.Obj
       [
         ("protocol", J.String protocol_version);
         ("draining", J.Bool t.draining);
         ("queue_capacity", J.Int t.config.queue_capacity);
         ("seen", J.Int s.seen);
         ("answered", J.Int s.answered);
         ("typed_errors", J.Int s.typed_errors);
         ("timed_out", J.Int s.timed_out);
         ("shed", J.Int s.shed);
         ("quarantined", J.Int s.quarantined);
         ("retries", J.Int s.retries);
         ("cache", cache_json t);
         ("ct", ct_json t);
       ])

(* A reload goes through the same quarantining ingest path as any
   field data.  It is accepted only when it reconciles perfectly:
   nothing quarantined, nothing missing, control total honoured.
   Anything less is a poisoned update — the last good snapshot keeps
   answering and the attempt is recorded, never applied.

   The ingested corpus is appended to the epoch arena {e speculatively}:
   past the live epoch's extent, under a mark taken first.  Acceptance
   publishes the appended window as the new epoch; rejection truncates
   back to the mark, so a half-built corpus is reclaimed on the spot
   (off-heap, deterministic) instead of lingering until the GC notices.
   Readers of the live epoch are untouched either way — the committed
   prefix of an append-only arena is immutable. *)
let exec_reload t deadline payload : (J.t, string * string) result =
  check_deadline t deadline;
  let r = Ingest.stores_of_string payload in
  let st = r.Ingest.stats in
  let speculative = Arena.mark t.corpus in
  append_corpus t.corpus t.store_names r;
  let clean =
    st.Ingest.quarantined_total = 0
    && st.Ingest.missing = 0
    && (match st.Ingest.declared with
       | Some d -> d = st.Ingest.accepted
       | None -> false)
    && st.Ingest.accepted > 0
  in
  if clean then begin
    t.snapshot <-
      {
        epoch = t.snapshot.epoch + 1;
        store_sizes = Ingest.store_sizes r;
        base = speculative;
        count = Array.length r.Ingest.records;
      };
    t.n_reloads_accepted <- t.n_reloads_accepted + 1;
    Obs.event "serve.reload_accepted"
      ~fields:[ ("epoch", string_of_int t.snapshot.epoch) ];
    Ok
      (J.Obj
         [
           ("snapshot_epoch", J.Int t.snapshot.epoch);
           ("certificates", J.Int st.Ingest.accepted);
         ])
  end
  else begin
    Arena.truncate t.corpus speculative;
    t.n_reloads_rejected <- t.n_reloads_rejected + 1;
    Obs.event "serve.reload_rejected"
      ~fields:
        [
          ("quarantined", string_of_int st.Ingest.quarantined_total);
          ("missing", string_of_int st.Ingest.missing);
        ];
    Error
      ( "update-rejected",
        Printf.sprintf
          "snapshot update quarantined %d record(s), %d missing — serving \
           epoch %d unchanged"
          st.Ingest.quarantined_total st.Ingest.missing t.snapshot.epoch )
  end

let exec_uncached t deadline = function
  | Validate { store; chain_hex } -> exec_validate t deadline store chain_hex
  | Diff { store; baseline } -> exec_diff t deadline store baseline
  | Coverage { root } -> exec_coverage t deadline root
  | Stores -> exec_stores t
  | Health -> exec_health t
  | Reload { payload } -> exec_reload t deadline payload
  | Drain ->
      t.draining <- true;
      Obs.event "serve.draining";
      Ok (J.Obj [ ("draining", J.Bool true) ])
  | Ct_inclusion { log; index; tree_size } ->
      exec_ct_inclusion t deadline log index tree_size
  | Ct_consistency { log; first; second } ->
      exec_ct_consistency t deadline log first second
  | Ct_visibility { store } -> exec_ct_visibility t deadline store

(* Cacheable ops are the pure reads whose answer is a function of
   (snapshot, request parameters) alone: validate, diff, coverage.
   [stores]/[health] report live counters, [reload]/[drain] mutate —
   none of those may be replayed.  The key is a SHA-256 over the op
   tag and its NUL-delimited parameters: fixed 32 bytes resident per
   entry however long the chain hex runs. *)
let cache_key_of_op = function
  | Validate { store; chain_hex } ->
      Some (String.concat "\x00" ("validate" :: store :: chain_hex))
  | Diff { store; baseline } ->
      Some (String.concat "\x00" [ "diff"; store; baseline ])
  | Coverage { root } -> Some (String.concat "\x00" [ "coverage"; root ])
  (* the ct ops are pure reads against the append-only fleet; their
     keys still carry the snapshot epoch (via the cache's epoch stamp)
     like every other cached decision *)
  | Ct_inclusion { log; index; tree_size } ->
      Some
        (String.concat "\x00"
           [
             "ct-inclusion"; log; string_of_int index;
             (match tree_size with Some n -> string_of_int n | None -> "head");
           ])
  | Ct_consistency { log; first; second } ->
      Some
        (String.concat "\x00"
           [ "ct-consistency"; log; string_of_int first; string_of_int second ])
  | Ct_visibility { store } ->
      Some (String.concat "\x00" [ "ct-visibility"; store ])
  | Stores | Health | Reload _ | Drain -> None

let exec_op t deadline op =
  match (t.cache, cache_key_of_op op) with
  | None, _ | _, None -> exec_uncached t deadline op
  | Some cache, Some raw_key -> (
      (* the snapshot epoch only advances in [exec_reload]'s accepted
         branch, so stamping it here rolls the cache epoch on accepted
         reloads exactly — a rejected reload finds the same epoch and
         every cached decision still live *)
      Cache.set_epoch cache t.snapshot.epoch;
      let key = Tangled_hash.Sha256.digest raw_key in
      match Cache.find cache key with
      | Some result -> Ok result
      | None -> (
          match exec_uncached t deadline op with
          | Ok result as r ->
              Cache.add cache key result;
              r
          | Error _ as e -> e))

(* --- the admitted-request path ------------------------------------------ *)

(* The store/index access of request [seq] may be fault-injected by
   the chaos hook.  Transient faults retry with exponential backoff up
   to [max_retries]; a fault that outlives the retries is answered as
   a typed error, a permanent fault quarantines the poisoned request
   immediately. *)
type access = Proceed | Exhausted of Fault.kind | Poisoned of Fault.kind

let negotiate_faults t ~seq deadline =
  let rec go attempt =
    match t.config.fault_hook ~seq ~attempt with
    | None -> Proceed
    | Some kind -> (
        match Fault.classify kind with
        | Fault.Permanent -> Poisoned kind
        | Fault.Transient ->
            if attempt >= t.config.max_retries then Exhausted kind
            else begin
              let backoff =
                t.config.backoff_s *. float_of_int (1 lsl attempt)
              in
              t.n_retries <- t.n_retries + 1;
              t.backoff_total <- t.backoff_total +. backoff;
              Obs.incr c_retries;
              t.config.sleep backoff;
              check_deadline t deadline;
              go (attempt + 1)
            end)
  in
  go 0

let put_quarantine t ~frame_no reason snippet =
  Obs.incr c_quarantined;
  Obs.event "serve.quarantine"
    ~fields:
      [
        ("label", Ingest.reason_label reason);
        ("frame", string_of_int frame_no);
      ];
  t.quarantine_rev <-
    { Ingest.line = frame_no; reason; snippet } :: t.quarantine_rev

let snippet_of line =
  if String.length line <= 60 then line else String.sub line 0 60 ^ "..."

(* Decode and answer one admitted frame.  Total: every path ends in
   exactly one response and exactly one terminal-class counter. *)
let handle_admitted t ~frame_no line =
  let t0 = t.config.clock () in
  let finish cls response =
    Obs.observe (latency_of_class cls) (t.config.clock () -. t0);
    response
  in
  match decode_frame ~max_frame_bytes:t.config.max_frame_bytes line with
  | Error reason ->
      put_quarantine t ~frame_no reason (snippet_of line);
      finish "malformed"
        (error_response t ~id:J.Null ~label:(Ingest.reason_label reason)
           ~detail:(Ingest.reason_detail reason))
  | Ok frame -> (
      let cls = class_of_op frame.op in
      let deadline_s =
        Option.value ~default:t.config.default_deadline_s frame.deadline_s
      in
      let deadline = t0 +. deadline_s in
      let seq = t.seq in
      t.seq <- seq + 1;
      Obs.span ("serve." ^ cls) @@ fun () ->
      match
        (try
           match negotiate_faults t ~seq deadline with
           | Proceed -> `Done (exec_op t deadline frame.op)
           | Exhausted kind -> `Exhausted kind
           | Poisoned kind -> `Poisoned kind
         with Deadline_exceeded -> `Timeout)
      with
      | `Done (Ok result) ->
          t.n_answered <- t.n_answered + 1;
          Obs.incr c_answered;
          finish cls
            (respond t ~id:frame.id ~status:"ok" [ ("result", result) ])
      | `Done (Error (label, detail)) ->
          t.n_typed_errors <- t.n_typed_errors + 1;
          Obs.incr c_errors;
          finish cls (error_response t ~id:frame.id ~label ~detail)
      | `Exhausted kind ->
          t.n_typed_errors <- t.n_typed_errors + 1;
          Obs.incr c_errors;
          finish cls
            (error_response t ~id:frame.id ~label:"fault-transient"
               ~detail:
                 (Printf.sprintf
                    "transient %s fault persisted through %d retries"
                    (Fault.kind_to_string kind) t.config.max_retries))
      | `Poisoned kind ->
          put_quarantine t ~frame_no
            (Ingest.Bad_value
               ("poisoned request: permanent " ^ Fault.kind_to_string kind
              ^ " fault"))
            (snippet_of line);
          finish cls
            (error_response t ~id:frame.id ~label:"poisoned-request"
               ~detail:
                 (Printf.sprintf
                    "permanent %s fault on the store/index access — request \
                     quarantined"
                    (Fault.kind_to_string kind)))
      | `Timeout ->
          t.n_timed_out <- t.n_timed_out + 1;
          Obs.incr c_timeouts;
          finish cls
            (respond t ~id:frame.id ~status:"timeout"
               [
                 ("deadline_ms", J.Int (int_of_float (deadline_s *. 1000.0)));
               ]))

(* --- admission ---------------------------------------------------------- *)

let shed_response t =
  Obs.incr c_shed;
  Obs.event "serve.shed";
  t.n_shed <- t.n_shed + 1;
  respond t ~id:J.Null ~status:"overloaded"
    [ ("queue_capacity", J.Int t.config.queue_capacity) ]

let refused_response t =
  Obs.incr c_refused;
  t.n_refused <- t.n_refused + 1;
  respond t ~id:J.Null ~status:"draining" []

let serve_burst t lines =
  let n = List.length lines in
  t.n_seen <- t.n_seen + n;
  if t.draining then List.map (fun _ -> refused_response t) lines
  else begin
    (* admission: the queue takes the first [capacity] frames of the
       burst; the surplus is load-shed with an explicit typed response *)
    let admitted, overflow =
      if n <= t.config.queue_capacity then (lines, [])
      else begin
        let rec split i acc = function
          | rest when i = t.config.queue_capacity -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: rest -> split (i + 1) (x :: acc) rest
        in
        split 0 [] lines
      end
    in
    let depth = ref (List.length admitted) in
    Obs.set_gauge queue_gauge !depth;
    (* in-flight requests always complete, even when one of them is a
       drain: draining closes admission for *later* bursts only *)
    let answered =
      List.mapi
        (fun i line ->
          let r = handle_admitted t ~frame_no:(t.n_seen - n + i + 1) line in
          decr depth;
          Obs.set_gauge queue_gauge !depth;
          r)
        admitted
    in
    answered @ List.map (fun _ -> shed_response t) overflow
  end

(* --- the channel loop --------------------------------------------------- *)

let summary_json t =
  let s = summary t in
  J.Obj
    [
      ("id", J.Null);
      ("status", J.String "summary");
      ("protocol", J.String protocol_version);
      ( "summary",
        J.Obj
          [
            ("seen", J.Int s.seen);
            ("answered", J.Int s.answered);
            ("typed_errors", J.Int s.typed_errors);
            ("timed_out", J.Int s.timed_out);
            ("shed", J.Int s.shed);
            ("refused", J.Int s.refused);
            ("quarantined", J.Int s.quarantined);
            ("retries", J.Int s.retries);
            ("reloads_accepted", J.Int s.reloads_accepted);
            ("reloads_rejected", J.Int s.reloads_rejected);
            ("epoch", J.Int s.epoch);
            ("drained", J.Bool s.drained);
            ("reconciled", J.Bool (reconciled s));
          ] );
    ]

let serve_channel ?(summary_frame = true) t ic oc =
  let read_burst () =
    let rec go acc k =
      if k = 0 then List.rev acc
      else
        match In_channel.input_line ic with
        | None -> List.rev acc
        | Some line -> go (line :: acc) (k - 1)
    in
    go [] (max 1 t.config.batch)
  in
  let rec loop () =
    if not t.draining then begin
      match read_burst () with
      | [] -> t.draining <- true (* EOF: a clean drain *)
      | burst ->
          List.iter
            (fun r ->
              output_string oc r;
              output_char oc '\n')
            (serve_burst t burst);
          flush oc;
          loop ()
    end
  in
  loop ();
  if summary_frame then begin
    output_string oc (J.to_string (summary_json t));
    output_char oc '\n';
    flush oc
  end;
  summary t

(* --- rendering ---------------------------------------------------------- *)

let render_summary s =
  T.render_kv ~title:"Serve control totals"
    [
      ("frames seen", T.fmt_int s.seen);
      ("answered ok", T.fmt_int s.answered);
      ("typed errors", T.fmt_int s.typed_errors);
      ("timed out", T.fmt_int s.timed_out);
      ("shed (overloaded)", T.fmt_int s.shed);
      ("refused (draining)", T.fmt_int s.refused);
      ("quarantined", T.fmt_int s.quarantined);
      ("retries (transient faults)", T.fmt_int s.retries);
      ("reloads accepted / rejected",
       Printf.sprintf "%d / %d" s.reloads_accepted s.reloads_rejected);
      ("snapshot epoch", T.fmt_int s.epoch);
      ("drained cleanly", if s.drained then "yes" else "no");
      ("control totals reconcile", if reconciled s then "yes" else "NO");
    ]
