(** The trust-decision server: the paper's queries, online.

    The batch subcommands answer "does this chain validate against
    device store X", "how does a store diff against the AOSP baseline"
    and "how much traffic does root R anchor" once per run.  [Serve]
    turns them into a long-running request loop — the "millions of
    Android handsets phoning home" framing of the Netalyzr side — built
    robustness-first: no input, fault or overload condition may crash
    the loop or corrupt an answer.

    {b Protocol} ([tangled-serve/2]).  Requests arrive as JSONL frames
    (one JSON object per line) on stdin, a pipe or any byte stream;
    responses leave as JSONL in request order.  Every frame carries an
    [id] (echoed verbatim) and an [op]:

    - [validate]: ["store"] (an official store name or ["handset:N"]),
      ["chain"] (hex-DER certificates, leaf first) — the full
      path-building validation verdict;
    - [diff]: ["store"] vs ["baseline"] — additions/missing against an
      AOSP baseline (Figure 1 online);
    - [coverage]: ["root"] (display name, bracketed hash id or
      equivalence key) — unexpired validated-chain count and traffic
      share of that root (Figure 3 online);
    - [stores]: the current snapshot's store sizes (Table 1 online);
    - [health]: liveness, epoch, queue and control-total counters;
    - [reload]: ["payload"] (a store-dump JSONL document) — attempt a
      snapshot update through the quarantining ingest layer;
    - [drain]: stop admitting, finish in-flight work, then shut down;
    - [ct-inclusion] (v2): ["log"] (a fleet log name, ["ct0"]...),
      ["index"], optional ["tree_size"] (defaults to the log's current
      size) — an RFC 6962 inclusion proof, hex node hashes bottom-up,
      plus the root it verifies against;
    - [ct-consistency] (v2): ["log"], ["first"], ["second"] — a
      consistency proof between the two tree sizes, with both roots;
    - [ct-visibility] (v2): ["store"] (as in [validate]) — the
      CT-visible vs dark breakdown of that store's roots against the
      log fleet.

    {b Version negotiation.}  v2 is a strict superset of v1: every v1
    frame is decoded and answered byte-for-byte as before, so v1
    clients need not change.  A client probes with [health] — the
    [protocol] member names the server's version — or simply sends a
    ct-* op: a v1 server answers it with the typed [bad-value]
    "unknown op" error in-band, never a dropped connection.  The ct-*
    ops answer typed [unknown-log] / [out-of-range] errors for bad
    parameters, and their proofs are cached in the same epoch-keyed
    decision cache as every other pure read.

    {b Robustness machinery.}

    - {e Total decoding}: any byte sequence yields exactly one typed
      response.  Frames that violate the protocol schema are
      quarantined under the {e ingest} error taxonomy
      ({!Tangled_ingest.Ingest.reason} — [malformed-json],
      [control-bytes], [truncated-record], [missing-field],
      [type-mismatch], [bad-value]) and answered with a typed error.
    - {e Deadlines}: each request gets [deadline_ms] (or the config
      default); expensive ops check the clock at work-unit boundaries
      and answer a typed [timeout] response when it passes.
    - {e Admission control}: a burst larger than the bounded queue is
      load-shed explicitly — surplus frames get a typed [overloaded]
      response, never a silent drop.
    - {e Retry with backoff}: store/index access faults classified
      {!Tangled_fault.Fault.Transient} are retried with exponential
      backoff; {!Tangled_fault.Fault.Permanent} faults quarantine the
      poisoned request and answer a typed error immediately.
    - {e Graceful degradation}: reads answer from the last good
      snapshot; a poisoned [reload] is rejected (typed
      [update-rejected]) without touching it.  Snapshots are epochs of
      an append-only {!Tangled_x509.Arena}: a reload appends its corpus
      speculatively and either publishes the new window or truncates
      back to the mark, so a rejected reload retains nothing — the
      half-built corpus is reclaimed off-heap, immediately.
    - {e Graceful shutdown}: [drain] (or EOF) completes every admitted
      request before the loop exits; late frames get a typed
      [draining] response.

    Everything is deterministic on one domain: batched execution, no
    concurrency, a pluggable clock — the single-CPU container's
    jobs-independence and the golden report digest are untouched.

    {b Accounting.}  Every frame ends in exactly one terminal class —
    answered, typed-error, timeout, shed, refused-draining or
    quarantined — and {!reconciled} checks the control totals add up.
    Per-class latency histograms ([serve.latency.*]), the queue-depth
    gauge and shed/timeout/retry counters live in {!Tangled_obs.Obs},
    inside the versioned [tangled-obs/1] trace. *)

module Fault := Tangled_fault.Fault
module Ingest := Tangled_ingest.Ingest

val protocol_version : string
(** ["tangled-serve/2"]. *)

(** {1 Configuration} *)

type config = {
  queue_capacity : int;  (** admission-queue bound (default 64) *)
  batch : int;
      (** frames read per burst in {!serve_channel} (default 32) *)
  default_deadline_s : float;
      (** per-request deadline when the frame has no [deadline_ms]
          (default 0.25) *)
  max_retries : int;
      (** attempts beyond the first for transient faults (default 3) *)
  backoff_s : float;
      (** base backoff; attempt [n] backs off [backoff_s * 2^n]
          (default 1ms) *)
  max_frame_bytes : int;  (** frames longer than this are quarantined *)
  cache_capacity : int;
      (** capacity of the request-level decision cache (default 16384;
          0 disables caching).  [validate], [diff] and [coverage]
          answers are cached in a bounded lib/cache CLOCK keyed by
          (op, canonical parameters) under the snapshot epoch; the
          epoch — and with it every cached decision — rolls on
          {e accepted} reloads only, so a rejected reload leaves cache
          contents and counters byte-identical.  Only [ok] results are
          cached; errors and timeouts always re-execute.  Cache
          statistics ride the [stores] and [health] responses and the
          [serve.decisions] Obs counters (volatile trace member). *)
  ct_logs : int;
      (** logs in the CT fleet built at {!create} (default 3; 0
          disables the ct-* ops — they then answer [unknown-log]).
          [stores]/[health] report each log's tree size and head. *)
  clock : unit -> float;
      (** monotonic-enough seconds; tests inject a fake clock to force
          deadlines deterministically *)
  sleep : float -> unit;
      (** how backoff waits; the default records the wait without
          blocking the single-domain loop *)
  fault_hook : seq:int -> attempt:int -> Fault.kind option;
      (** fault injection aimed at the store/index access of request
          [seq] (0-based admission order), consulted once per attempt.
          [None] (the default) means the access succeeds — this is the
          chaos drill's hook, never a production code path. *)
}

val default_config : config

(** {1 Control totals} *)

type summary = {
  seen : int;  (** frames consumed from the stream *)
  answered : int;  (** status [ok] *)
  typed_errors : int;  (** status [error], frame well-formed *)
  timed_out : int;  (** status [timeout] *)
  shed : int;  (** status [overloaded] *)
  refused : int;  (** status [draining] *)
  quarantined : int;  (** malformed frames (typed error + quarantine record) *)
  retries : int;  (** transient-fault retry attempts *)
  backoff_s_total : float;  (** cumulative backoff the retries asked for *)
  reloads_accepted : int;
  reloads_rejected : int;
  epoch : int;  (** current snapshot epoch (starts at 1) *)
  drained : bool;  (** the loop shut down through drain/EOF *)
}

val reconciled : summary -> bool
(** [seen = answered + typed_errors + timed_out + shed + refused +
    quarantined] — no request unaccounted. *)

val render_summary : summary -> string

(** {1 The server} *)

type t

val create : ?config:config -> Tangled_core.Pipeline.t -> t
(** A server over this world: queries answer against the world's
    universe, population, Notary coverage index, and a snapshot seeded
    from the world's own store dump (epoch 1). *)

val summary : t -> summary
val draining : t -> bool

val quarantine : t -> Ingest.quarantined list
(** Quarantined frames in arrival order; [line] is the 1-based frame
    ordinal in the stream. *)

val ct_fleet : t -> Tangled_ct.Fleet.t option
(** The server's CT log fleet ([None] when [ct_logs] is 0) — tests
    re-verify served proofs against it through the pure
    {!Tangled_ct.Proof} API. *)

val cache_stats : t -> Tangled_cache.Cache.stats option
(** Decision-cache statistics ([None] when caching is disabled):
    process-global hit/miss/eviction counters plus this server's live
    entry count, capacity and epoch — the same numbers the [stores]
    and [health] responses embed. *)

val serve_burst : t -> string list -> string list
(** One admission round over a burst of frames: frames beyond
    [queue_capacity] are shed, admitted frames are answered in order
    (all of them, even when a [drain] lands mid-burst — in-flight work
    always completes).  Returns exactly one response line per input
    frame, in input order.  Never raises. *)

val serve_channel : ?summary_frame:bool -> t -> in_channel -> out_channel -> summary
(** The stdin/socket loop: read up to [batch] frames, answer them,
    flush, repeat until EOF or a processed [drain]; then emit a final
    summary frame ([summary_frame], default true) and return the
    totals.  EOF counts as a clean drain. *)
