module J = Tangled_util.Json
module Prng = Tangled_util.Prng
module Hex = Tangled_util.Hex
module Dn = Tangled_x509.Dn
module C = Tangled_x509.Certificate
module Authority = Tangled_x509.Authority
module Dk = Tangled_hash.Digest_kind
module BP = Tangled_pki.Blueprint
module PD = Tangled_pki.Paper_data
module Fault = Tangled_fault.Fault
module Pipeline = Tangled_core.Pipeline
module Export = Tangled_core.Export
module Obs = Tangled_obs.Obs

type outcome = {
  seed : int;
  rate : float;
  frames_built : int;
  frames_fed : int;
  stream_injections : int;
  responses : int;
  summary : Serve.summary;
  malformed_responses : int;
  checks : (string * bool) list;
  trace : string;
  ok : bool;
}

(* --- request corpus ----------------------------------------------------- *)

let frame fields = J.to_string (J.Obj fields)

let health_frame id = frame [ ("id", J.Int id); ("op", J.String "health") ]

(* a pool of leaf chains: half anchored by AOSP 4.4 members (trusted
   verdicts), half by roots outside the queried store (typed untrusted
   verdicts — still answered) *)
let chain_pool rng (u : BP.t) =
  let member, stranger =
    Array.fold_left
      (fun (m, s) (r : BP.root) ->
        if List.mem PD.V4_4 r.BP.in_aosp then (r :: m, s) else (m, r :: s))
      ([], []) u.BP.roots
  in
  let mint (r : BP.root) =
    let leaf =
      Authority.issue_leaf ~bits:384 ~digest:Dk.SHA1 rng
        ~parent:r.BP.authority
        ~dns_names:[ "drill.example" ]
        (Dn.make "drill.example")
    in
    Hex.encode (C.encode leaf)
  in
  let take n l = List.filteri (fun i _ -> i < n) l in
  Array.of_list (List.map mint (take 3 member @ take 3 stranger))

let build_corpus ~seed ~requests (w : Pipeline.t) =
  let u = w.Pipeline.universe in
  let rng = Prng.create ((seed * 7919) + 11) in
  let chains = chain_pool rng u in
  let stores = [| "aosp44"; "aosp43"; "aosp41"; "mozilla"; "ios7"; "handset:3" |] in
  let root_names =
    Array.map (fun (r : BP.root) -> r.BP.display_name)
      (Array.sub u.BP.roots 0 (min 24 (Array.length u.BP.roots)))
  in
  let validate ?deadline_ms id =
    let base =
      [
        ("id", J.Int id);
        ("op", J.String "validate");
        ("store", J.String (Prng.choose rng stores));
        ("chain", J.List [ J.String (Prng.choose rng chains) ]);
      ]
    in
    frame
      (match deadline_ms with
      | None -> base
      | Some ms -> base @ [ ("deadline_ms", J.Int ms) ])
  in
  let make id =
    match Prng.int rng 100 with
    | n when n < 45 -> validate id
    | n when n < 60 ->
        frame
          [
            ("id", J.Int id);
            ("op", J.String "diff");
            ("store", J.String (Prng.choose rng stores));
            ("baseline", J.String "aosp44");
          ]
    | n when n < 72 ->
        frame
          [
            ("id", J.Int id);
            ("op", J.String "coverage");
            ("root", J.String (Prng.choose rng root_names));
          ]
    | n when n < 78 -> frame [ ("id", J.Int id); ("op", J.String "stores") ]
    | n when n < 84 -> health_frame id
    | n when n < 89 -> validate ~deadline_ms:0 id (* deterministic timeout *)
    | n when n < 94 ->
        (* semantic error: a store nobody ships *)
        frame
          [
            ("id", J.Int id);
            ("op", J.String "diff");
            ("store", J.String "waterfox");
          ]
    | _ ->
        (* semantic error: chain bytes that are not hexadecimal *)
        frame
          [
            ("id", J.Int id);
            ("op", J.String "validate");
            ("store", J.String "aosp44");
            ("chain", J.List [ J.String "not-hex!" ]);
          ]
  in
  (* line 1 plays the manifest role for Fault.inject — never corrupted,
     and itself a servable frame *)
  health_frame 0 :: List.init requests (fun i -> make (i + 1))

(* --- store/index fault plan --------------------------------------------- *)

(* Per admitted request [seq], how the store/index access misbehaves:
   [None] (succeed), or a kind that persists for the first [persists]
   attempts.  Three seqs are pinned so every retry outcome provably
   fires regardless of the random mix: a transient fault that yields
   to retries, one that outlives the budget, and a permanent poison. *)
let fault_plan ~seed ~max_retries =
  let base = Prng.create ((seed * 104729) + 5) in
  let kinds = Array.of_list Fault.all_kinds in
  let tbl = Hashtbl.create 256 in
  let plan seq =
    match Hashtbl.find_opt tbl seq with
    | Some p -> p
    | None ->
        let p =
          match seq with
          | 5 -> Some (Fault.Truncate, 2) (* recovers on the 3rd attempt *)
          | 9 -> Some (Fault.Bit_flip, max_retries + 7) (* outlives budget *)
          | 13 -> Some (Fault.Missing_field, max_int) (* permanent poison *)
          | _ ->
              let r = Prng.split base (string_of_int seq) in
              if Prng.bernoulli r 0.05 then
                let kind = Prng.choose r kinds in
                let persists =
                  match Fault.classify kind with
                  | Fault.Permanent -> max_int
                  | Fault.Transient -> Prng.int_in r 1 (max_retries + 2)
                in
                Some (kind, persists)
              else None
        in
        Hashtbl.replace tbl seq p;
        p
  in
  let enabled = ref true in
  let hook ~seq ~attempt =
    if not !enabled then None
    else
      match plan seq with
      | Some (kind, persists) when attempt < persists -> Some kind
      | _ -> None
  in
  (hook, enabled)

(* --- the drill ---------------------------------------------------------- *)

let label_of_response json =
  match J.member "error" json with
  | Some e -> (
      match J.member "label" e with Some (J.String l) -> Some l | _ -> None)
  | None -> None

let run ?(seed = 12) ?(rate = 0.08) ?(requests = 600)
    ?(cache_capacity = Serve.default_config.Serve.cache_capacity)
    (w : Pipeline.t) =
  Obs.reset_all ();
  let corpus = build_corpus ~seed ~requests w in
  let frames_built = List.length corpus in
  (* chaos on the request stream: the eight operators, same as batch *)
  let corrupted, ledger =
    Fault.inject ~seed:(seed + 2) ~rate (String.concat "\n" corpus)
  in
  let stream_lines = String.split_on_char '\n' corrupted in
  let config =
    {
      Serve.default_config with
      Serve.max_frame_bytes = 1 lsl 23;
      (* a store dump travels inside one reload frame *)
      cache_capacity;
    }
  in
  let hook, chaos_enabled = fault_plan ~seed ~max_retries:config.Serve.max_retries in
  let config = { config with Serve.fault_hook = hook } in
  let server = Serve.create ~config w in
  let raised = ref 0 in
  let responses = ref [] in
  let fed = ref 0 in
  let feed burst =
    fed := !fed + List.length burst;
    match Serve.serve_burst server burst with
    | rs -> responses := List.rev_append rs !responses
    | exception e ->
        incr raised;
        Obs.event "drill.burst_raised" ~fields:[ ("exn", Printexc.to_string e) ]
  in
  (* phase 1: the corrupted stream, in channel-sized bursts *)
  let rec chunks = function
    | [] -> ()
    | lines ->
        let burst = List.filteri (fun i _ -> i < config.Serve.batch) lines in
        let rest =
          List.filteri (fun i _ -> i >= config.Serve.batch) lines
        in
        feed burst;
        chunks rest
  in
  chunks stream_lines;
  (* phase 2: a deliberate overload — one burst far beyond the queue *)
  let overload = config.Serve.queue_capacity + 40 in
  feed (List.init overload (fun i -> health_frame (10_000 + i)));
  (* phase 3: snapshot updates with the chaos hook quiesced, so the
     reload outcomes are decided by payload quality alone *)
  chaos_enabled := false;
  let stores_doc = Export.stores_jsonl w in
  let poisoned_doc =
    (* the upload dies 40 bytes early: the final record is truncated *)
    String.sub stores_doc 0 (String.length stores_doc - 40)
  in
  let reload id payload =
    frame [ ("id", J.Int id); ("op", J.String "reload"); ("payload", J.String payload) ]
  in
  feed [ reload 20_001 stores_doc; reload 20_002 poisoned_doc ];
  (* phase 4: drain mid-burst — the frame after it is in-flight and
     must still be answered — then a late burst that gets refused *)
  feed [ frame [ ("id", J.Int 20_003); ("op", J.String "drain") ]; health_frame 20_004 ];
  feed [ health_frame 20_005; health_frame 20_006; health_frame 20_007 ];
  (* audit *)
  let responses = List.rev !responses in
  let s = Serve.summary server in
  let statuses = Hashtbl.create 8 in
  let labels = Hashtbl.create 8 in
  let malformed = ref 0 in
  let in_flight_after_drain = ref false in
  List.iter
    (fun line ->
      match J.parse line with
      | Ok (J.Obj _ as json) -> (
          (match label_of_response json with
          | Some l ->
              Hashtbl.replace labels l (1 + Option.value ~default:0 (Hashtbl.find_opt labels l))
          | None -> ());
          (match (J.member "id" json, J.member "status" json) with
          | Some (J.Int 20_004), Some (J.String "ok") ->
              in_flight_after_drain := true
          | _ -> ());
          match J.member "status" json with
          | Some (J.String st)
            when List.mem st
                   [ "ok"; "error"; "timeout"; "overloaded"; "draining"; "summary" ] ->
              Hashtbl.replace statuses st
                (1 + Option.value ~default:0 (Hashtbl.find_opt statuses st))
          | _ -> incr malformed)
      | _ -> incr malformed)
    responses;
  let has_label l = Hashtbl.find_opt labels l <> None in
  let trace = Obs.trace_jsonl () in
  let checks =
    [
      ("no burst raised", !raised = 0);
      ("one response per frame fed", List.length responses = !fed);
      ("control totals reconcile", Serve.reconciled s);
      ("every response well-formed with a known status", !malformed = 0);
      ("overload burst shed the surplus", s.Serve.shed = 40);
      ("deadline-zero frames timed out", s.Serve.timed_out > 0);
      ("stream faults were quarantined", s.Serve.quarantined > 0);
      ("transient access faults retried", s.Serve.retries > 0);
      ("a transient fault outlived the retry budget", has_label "fault-transient");
      ("a permanent fault poisoned its request", has_label "poisoned-request");
      ( "clean reload advanced the epoch",
        s.Serve.reloads_accepted = 1 && s.Serve.epoch = 2 );
      ( "poisoned reload rejected, old snapshot kept",
        s.Serve.reloads_rejected = 1 && has_label "update-rejected" );
      ("in-flight frame answered after drain", !in_flight_after_drain);
      ("post-drain frames refused", s.Serve.refused = 3);
      ("server drained cleanly", s.Serve.drained);
      ("obs trace validates", Obs.validate_trace trace = Ok ());
    ]
    (* the bounded-cache contract, when caching is on: the request mix
       draws from pools far smaller than the capacity, so the working
       set must fit — entries within capacity AND zero evictions (the
       "evictions over capacity" control total) — while the repeated
       draws must actually hit *)
    @ (if cache_capacity > 0 then
         match Serve.cache_stats server with
         | Some cs ->
             let module Cache = Tangled_cache.Cache in
             [
               ( "decision cache within capacity",
                 cs.Cache.entries <= cs.Cache.capacity );
               ("zero evictions over capacity", cs.Cache.evictions = 0);
               ("decision cache produced hits", cs.Cache.hits > 0);
             ]
         | None -> [ ("decision cache present", false) ]
       else [])
  in
  {
    seed;
    rate;
    frames_built;
    frames_fed = !fed;
    stream_injections = List.length ledger;
    responses = List.length responses;
    summary = s;
    malformed_responses = !malformed;
    checks;
    trace;
    ok = List.for_all snd checks;
  }

let render (o : outcome) =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "=== Serve chaos drill: %d frames built, stream fault rate %.3f, seed %d ===\n\n"
       o.frames_built o.rate o.seed);
  Buffer.add_string b
    (Printf.sprintf
       "stream injections: %d   frames fed: %d   responses: %d\n\n"
       o.stream_injections o.frames_fed o.responses);
  Buffer.add_string b (Serve.render_summary o.summary);
  Buffer.add_char b '\n';
  List.iter
    (fun (name, passed) ->
      Buffer.add_string b
        (Printf.sprintf "  [%s] %s\n" (if passed then "pass" else "FAIL") name))
    o.checks;
  Buffer.add_string b
    (Printf.sprintf "\nVerdict: %s\n"
       (if o.ok then
          "OK — zero crashes, zero unaccounted requests, every degradation \
           path exercised"
        else "FAILED"));
  Buffer.contents b
