(** The serve chaos drill: fault injection aimed at a live server.

    The batch chaos harness ({!Tangled_core.Chaos}) damages a dataset
    and audits the ingest quarantine.  This drill points the same
    eight fault operators at the {e request stream} of a running
    {!Serve} loop and, through the config's [fault_hook], at the
    store/index accesses mid-serve — then checks the server's
    robustness contract end to end:

    - zero crashes: every burst returns, the loop drains cleanly;
    - zero unaccounted requests: each frame the server saw ended in
      exactly one terminal class and the control totals reconcile;
    - every response line is well-formed [tangled-serve/1] with a
      known status;
    - each degradation path actually fired: frames were shed under the
      deliberate overload burst, deadline-zero frames timed out,
      stream faults were quarantined, transient access faults
      retried, a permanent access fault poisoned its request, the
      poisoned reload was rejected while the clean one advanced the
      epoch, and post-drain frames were refused;
    - the exported [tangled-obs/1] trace validates structurally.

    Deterministic in [seed] on a single domain. *)

type outcome = {
  seed : int;
  rate : float;
  frames_built : int;  (** well-formed frames before stream corruption *)
  frames_fed : int;  (** lines actually fed (drops remove, duplicates add) *)
  stream_injections : int;  (** ledger length of the stream corruption *)
  responses : int;
  summary : Serve.summary;
  malformed_responses : int;
      (** responses that failed to parse or carried an unknown status
          — must be 0 *)
  checks : (string * bool) list;  (** named contract checks, in order *)
  trace : string;  (** the [tangled-obs/1] trace exported after the run *)
  ok : bool;  (** every check passed *)
}

val run :
  ?seed:int ->
  ?rate:float ->
  ?requests:int ->
  ?cache_capacity:int ->
  Tangled_core.Pipeline.t ->
  outcome
(** [run w] builds a request corpus over the world [w] (validates with
    freshly issued chains, diffs, coverage lookups, health probes,
    deadline-zero frames, semantic errors, both reloads, a drain),
    corrupts the stream with {!Tangled_fault.Fault.inject} at [rate]
    (default 0.08), serves it in bursts — one deliberately over
    capacity — under a seeded store/index fault plan, and audits the
    contract.  [requests] (default 600) scales the corpus.

    [cache_capacity] (default 16384) sizes the server's decision cache;
    when positive the audit also checks the bounded-cache contract:
    entries within capacity, {e zero} evictions over capacity (the
    drill's working set fits by construction), and a nonzero hit
    count.  Never raises. *)

val render : outcome -> string
