(** X.509 v3 certificates: in-memory model, DER round-trip,
    fingerprints, and the identity relations the paper's methodology
    defines (§4.1–4.2). *)

module B := Tangled_numeric.Bigint

type key_usage =
  | Digital_signature
  | Key_cert_sign
  | Crl_sign
  | Key_encipherment

type ext_key_usage =
  | Server_auth
  | Client_auth
  | Code_signing
  | Email_protection
  | Time_stamping

type extensions = {
  basic_constraints : (bool * int option) option;
      (** [(is_ca, path_len_constraint)]; [None] when absent. *)
  key_usage : key_usage list option;
  ext_key_usage : ext_key_usage list option;
  subject_key_id : string option;
  authority_key_id : string option;
  subject_alt_names : string list;
}

val no_extensions : extensions

type t = {
  version : int;  (** 3 for v3, encoded as 2. *)
  serial : B.t;
  signature_alg : Tangled_hash.Digest_kind.t;
  issuer : Dn.t;
  not_before : Tangled_util.Timestamp.t;
  not_after : Tangled_util.Timestamp.t;
  subject : Dn.t;
  public_key : Tangled_crypto.Rsa.public;
  extensions : extensions;
  tbs_der : string;  (** DER of the TBSCertificate actually signed. *)
  signature : string;
  raw : string;  (** Full DER of the certificate. *)
}

val build_tbs :
  version:int ->
  serial:B.t ->
  signature_alg:Tangled_hash.Digest_kind.t ->
  issuer:Dn.t ->
  not_before:Tangled_util.Timestamp.t ->
  not_after:Tangled_util.Timestamp.t ->
  subject:Dn.t ->
  public_key:Tangled_crypto.Rsa.public ->
  extensions:extensions ->
  string
(** DER of the TBSCertificate, the byte string an issuer signs. *)

val assemble :
  tbs_der:string ->
  signature_alg:Tangled_hash.Digest_kind.t ->
  signature:string ->
  (t, string) result
(** Wrap a signed TBS into a full certificate (re-parsing the TBS so
    the model and the bytes cannot diverge). *)

val assemble_trusted :
  version:int ->
  serial:B.t ->
  signature_alg:Tangled_hash.Digest_kind.t ->
  issuer:Dn.t ->
  not_before:Tangled_util.Timestamp.t ->
  not_after:Tangled_util.Timestamp.t ->
  subject:Dn.t ->
  public_key:Tangled_crypto.Rsa.public ->
  extensions:extensions ->
  tbs_der:string ->
  signature:string ->
  t
(** Like {!assemble} but trusting the caller's fields instead of
    re-parsing the TBS it just encoded — for issuers on the bulk path
    whose [tbs_der] came from {!build_tbs} over these exact fields.
    [decode (assemble_trusted ...).raw] is structurally equal (the
    lean-vs-full arena identity test pins this); hand-rolled TBS bytes
    must go through {!assemble}. *)

val decode : string -> (t, string) result
(** Parse a DER certificate. *)

val encode : t -> string
(** The certificate's bytes ([raw]). *)

val fingerprint : ?alg:Tangled_hash.Digest_kind.t -> t -> string
(** Digest of [raw]; SHA-256 by default. *)

val subject_hash32 : t -> string
(** First 32 bits of the SHA-1 of the encoded subject, rendered as 8
    hex digits — the bracketed ids the paper prints in Figure 2. *)

val equivalence_key : t -> string
(** The paper's certificate identity: subject string together with the
    RSA key modulus.  Two byte-distinct certificates with equal keys
    can validate the same children (§4.2). *)

val byte_identity : t -> string
(** SHA-256 of the full DER — the strict alternative identity, kept for
    the identity-definition ablation. *)

val is_ca : t -> bool
(** True when basicConstraints marks a CA, or (legacy v1 roots) when
    the certificate is self-issued and has no extensions at all. *)

val is_self_signed : t -> bool
(** Subject equals issuer and the signature verifies under the
    certificate's own key. *)

val verify_signature : t -> issuer_key:Tangled_crypto.Rsa.public -> bool

val valid_at : t -> Tangled_util.Timestamp.t -> bool

val allows_server_auth : t -> bool
(** EKU absent or containing serverAuth. *)

val pp : Format.formatter -> t -> unit
(** One-line human summary. *)

val pp_details : Format.formatter -> t -> unit
(** Multi-line openssl-text-style dump. *)
