module Ts = Tangled_util.Timestamp

type bigbytes =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type bigints = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* column slots per certificate, in row-major rows: the whole row of a
   certificate lands on one or two cache lines *)
let width = 9

let col_off = 0
let col_len = 1
let col_subject = 2
let col_issuer = 3
let col_anchor = 4
let col_not_before = 5
let col_not_after = 6
let col_flags = 7
let col_key_fp = 8

let flag_expired = 1
let flag_via_intermediate = 2

type t = {
  mutable blob : bigbytes;
  mutable blob_len : int;
  mutable cols : bigints;
  mutable n : int;
}

type mark = { m_count : int; m_bytes : int }

type memory = {
  blob_bytes : int;
  column_bytes : int;
  blob_capacity : int;
  column_capacity : int;
}

let alloc_blob n = Bigarray.(Array1.create char c_layout (Stdlib.max 1 n))
let alloc_cols n = Bigarray.(Array1.create int64 c_layout (Stdlib.max width n))

let create ?(blob_capacity = 1 lsl 20) ?(capacity = 4096) () =
  {
    blob = alloc_blob blob_capacity;
    blob_len = 0;
    cols = alloc_cols (capacity * width);
    n = 0;
  }

let length t = t.n

let grow_blob t need =
  let cap = Bigarray.Array1.dim t.blob in
  if need > cap then begin
    let cap' = ref (Stdlib.max cap 1) in
    while need > !cap' do
      cap' := 2 * !cap'
    done;
    let blob = alloc_blob !cap' in
    Bigarray.Array1.blit
      (Bigarray.Array1.sub t.blob 0 t.blob_len)
      (Bigarray.Array1.sub blob 0 t.blob_len);
    t.blob <- blob
  end

let grow_cols t need =
  let cap = Bigarray.Array1.dim t.cols in
  if need > cap then begin
    let cap' = ref (Stdlib.max cap width) in
    while need > !cap' do
      cap' := 2 * !cap'
    done;
    let cols = alloc_cols !cap' in
    let used = t.n * width in
    Bigarray.Array1.blit
      (Bigarray.Array1.sub t.cols 0 used)
      (Bigarray.Array1.sub cols 0 used);
    t.cols <- cols
  end

let check t h =
  if h < 0 || h >= t.n then
    invalid_arg (Printf.sprintf "Arena: handle %d out of range (have %d)" h t.n)

let get t h slot = Int64.to_int (Bigarray.Array1.unsafe_get t.cols ((h * width) + slot))

let append t ~der ~subject_id ~issuer_id ~anchor_id ~not_before ~not_after
    ~flags ~key_fp =
  let len = String.length der in
  grow_blob t (t.blob_len + len);
  grow_cols t ((t.n + 1) * width);
  let off = t.blob_len in
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set t.blob (off + i) (String.unsafe_get der i)
  done;
  t.blob_len <- off + len;
  let base = t.n * width in
  let set slot v = Bigarray.Array1.unsafe_set t.cols (base + slot) (Int64.of_int v) in
  set col_off off;
  set col_len len;
  set col_subject subject_id;
  set col_issuer issuer_id;
  set col_anchor anchor_id;
  set col_not_before not_before;
  set col_not_after not_after;
  set col_flags flags;
  Bigarray.Array1.unsafe_set t.cols (base + col_key_fp) key_fp;
  let h = t.n in
  t.n <- h + 1;
  h

let der_offset t h = check t h; get t h col_off
let der_length t h = check t h; get t h col_len
let subject_id t h = check t h; get t h col_subject
let issuer_id t h = check t h; get t h col_issuer
let anchor_id t h = check t h; get t h col_anchor
let not_before t h = check t h; get t h col_not_before
let not_after t h = check t h; get t h col_not_after
let flags t h = check t h; get t h col_flags
let key_fp t h = check t h; Bigarray.Array1.unsafe_get t.cols ((h * width) + col_key_fp)

let expired t h = flags t h land flag_expired <> 0
let via_intermediate t h = flags t h land flag_via_intermediate <> 0

let valid_at t h now =
  check t h;
  get t h col_not_before <= now && now <= get t h col_not_after

let blit_to_bytes t h buf dst =
  check t h;
  let off = get t h col_off and len = get t h col_len in
  if dst < 0 || dst + len > Bytes.length buf then
    invalid_arg "Arena.blit_to_bytes: destination too small";
  for i = 0 to len - 1 do
    Bytes.unsafe_set buf (dst + i) (Bigarray.Array1.unsafe_get t.blob (off + i))
  done

let der t h =
  check t h;
  let len = get t h col_len in
  let buf = Bytes.create len in
  blit_to_bytes t h buf 0;
  Bytes.unsafe_to_string buf

let decode t h = Certificate.decode (der t h)

let mark t = { m_count = t.n; m_bytes = t.blob_len }

let truncate t m =
  if m.m_count > t.n || m.m_bytes > t.blob_len then
    invalid_arg "Arena.truncate: mark beyond current extent";
  t.n <- m.m_count;
  t.blob_len <- m.m_bytes

let memory t =
  {
    blob_bytes = t.blob_len;
    column_bytes = t.n * width * 8;
    blob_capacity = Bigarray.Array1.dim t.blob;
    column_capacity = Bigarray.Array1.dim t.cols * 8;
  }

let bytes_per_cert t =
  if t.n = 0 then 0.0
  else float_of_int (t.blob_len + (t.n * width * 8)) /. float_of_int t.n

(* Streamed over fixed chunks: the digest never materialises the blob
   as one string, so fingerprinting a gigabyte arena allocates 64 KiB. *)
let digest t =
  let module H = Tangled_hash.Sha256 in
  let ctx = H.init () in
  let chunk = Bytes.create 65536 in
  let feed_blob lo len =
    let i = ref lo in
    let stop = lo + len in
    while !i < stop do
      let n = Stdlib.min (Bytes.length chunk) (stop - !i) in
      for k = 0 to n - 1 do
        Bytes.unsafe_set chunk k (Bigarray.Array1.unsafe_get t.blob (!i + k))
      done;
      H.feed_sub ctx (Bytes.unsafe_to_string chunk) ~off:0 ~len:n;
      i := !i + n
    done
  in
  feed_blob 0 t.blob_len;
  let row = Bytes.create (width * 8) in
  for h = 0 to t.n - 1 do
    for slot = 0 to width - 1 do
      Bytes.set_int64_be row (slot * 8)
        (Bigarray.Array1.unsafe_get t.cols ((h * width) + slot))
    done;
    H.feed_sub ctx (Bytes.unsafe_to_string row) ~off:0 ~len:(width * 8)
  done;
  H.finalize ctx
