(** Certificate issuance: a keyed authority that signs subordinate
    certificates, used by the PKI generator, the MITM proxy (which
    mints rogue authorities on the fly) and the tests. *)

type t = {
  certificate : Certificate.t;
  key : Tangled_crypto.Rsa.private_key;
}

val self_signed :
  ?bits:int ->
  ?serial:Tangled_numeric.Bigint.t ->
  ?digest:Tangled_hash.Digest_kind.t ->
  ?path_len:int ->
  ?not_before:Tangled_util.Timestamp.t ->
  ?not_after:Tangled_util.Timestamp.t ->
  ?version:int ->
  Tangled_util.Prng.t ->
  Dn.t ->
  t
(** [self_signed rng dn] generates a key and a self-signed CA
    certificate.  Defaults: 512-bit key, SHA-256, serial 1, validity
    2000-01-01 to 2030-01-01, v3 with CA basicConstraints and
    keyCertSign usage.  [~version:1] issues a legacy v1 root with no
    extensions, as several of the paper's older roots are. *)

val issue_intermediate :
  ?bits:int ->
  ?serial:Tangled_numeric.Bigint.t ->
  ?digest:Tangled_hash.Digest_kind.t ->
  ?path_len:int ->
  ?not_before:Tangled_util.Timestamp.t ->
  ?not_after:Tangled_util.Timestamp.t ->
  ?key:Tangled_crypto.Rsa.private_key ->
  Tangled_util.Prng.t ->
  parent:t ->
  Dn.t ->
  t
(** A subordinate CA signed by [parent].  [key] supplies the subject
    keypair instead of generating one — bulk generators reuse a small
    key pool, since the analysis never depends on subject-key
    uniqueness of non-root certificates. *)

val issue_leaf :
  ?bits:int ->
  ?serial:Tangled_numeric.Bigint.t ->
  ?digest:Tangled_hash.Digest_kind.t ->
  ?ekus:Certificate.ext_key_usage list ->
  ?not_before:Tangled_util.Timestamp.t ->
  ?not_after:Tangled_util.Timestamp.t ->
  ?key:Tangled_crypto.Rsa.private_key ->
  Tangled_util.Prng.t ->
  parent:t ->
  dns_names:string list ->
  Dn.t ->
  Certificate.t
(** An end-entity certificate signed by [parent].  The private key of a
    leaf is not retained — the simulation never needs it. *)

val renew :
  ?serial:Tangled_numeric.Bigint.t ->
  ?not_before:Tangled_util.Timestamp.t ->
  ?not_after:Tangled_util.Timestamp.t ->
  t ->
  t
(** [renew t] re-issues [t]'s self-signed certificate with the same key
    and subject but a new validity window and serial.  The result is
    byte-distinct yet {e equivalent} in the paper's (subject, modulus)
    sense — it validates the same children (§4.2). *)

val reissue_as :
  ?serial:Tangled_numeric.Bigint.t ->
  ?bits:int ->
  Tangled_util.Prng.t ->
  parent:t ->
  Certificate.t ->
  Certificate.t
(** [reissue_as ~parent cert] mints a certificate with [cert]'s subject,
    validity and DNS names but [parent]'s signature and a fresh key —
    exactly what an intercepting HTTPS proxy does on the fly (§7). *)

val set_lean : bool -> unit
(** Toggle lean leaf issuance (on by default): {!issue_leaf} builds the
    certificate record from the fields it just encoded instead of
    re-decoding its own DER.  Certificates are byte-identical either
    way; the toggle exists for the bench's before/after pairs. *)

val lean_enabled : unit -> bool
