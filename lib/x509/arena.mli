(** Columnar, off-heap certificate arena.

    The paper-scale worlds (the ICSI Notary held ~1.9 M unique
    certificates) cannot afford one boxed OCaml record per
    certificate: 1.9 M [Certificate.t] values cost gigabytes of
    pointer-rich heap and crush every GC slice.  This arena stores a
    certificate population as {e flat memory} instead:

    - one append-only [Bigarray] byte blob holding the raw DER bytes
      of every certificate, back to back;
    - a fixed-width column bank (one [int64] row per certificate)
      carrying the byte offset/length of its DER slice, interned
      subject/issuer/anchor ids, the validity window, a flags word and
      a 64-bit key fingerprint.

    A certificate is then just an [int] handle.  Hot-path queries read
    columns only; the full [Certificate.t] view is re-decoded from the
    DER slice on demand (the zero-copy cursor decoder makes this
    cheap), and is dropped as soon as the caller is done with it.
    Both backing stores live outside the OCaml heap, so a 1.9 M-cert
    arena contributes two custom blocks to the GC, not 1.9 M records.

    {2 Epochs}

    The arena is append-only and single-writer.  {!mark} captures the
    current extent; a reader holding a mark sees a stable prefix
    whatever is appended afterwards (snapshot isolation for free), and
    {!truncate} rolls the arena back to a mark — the mechanism behind
    cheap snapshot epochs: speculative appends (a reload being
    validated) either commit by publishing the new mark or vanish by
    truncating to the old one, without copying the committed prefix
    either way. *)

type t

type mark = { m_count : int; m_bytes : int }
(** An arena extent: [m_count] certificates, [m_bytes] blob bytes. *)

type memory = {
  blob_bytes : int;  (** DER bytes appended (committed extent) *)
  column_bytes : int;  (** column rows in use, in bytes *)
  blob_capacity : int;  (** bytes reserved for the blob *)
  column_capacity : int;  (** bytes reserved for the columns *)
}

(** Flag-word conventions shared by the arena's users.  The flags
    column is otherwise caller-defined; bits above the low two are
    free (the Notary packs its issuer index there). *)

val flag_expired : int
val flag_via_intermediate : int

val create : ?blob_capacity:int -> ?capacity:int -> unit -> t
(** [create ()] makes an empty arena.  [blob_capacity] (bytes) and
    [capacity] (certificates) pre-size the backing stores; both grow
    geometrically on demand. *)

val append :
  t ->
  der:string ->
  subject_id:int ->
  issuer_id:int ->
  anchor_id:int ->
  not_before:Tangled_util.Timestamp.t ->
  not_after:Tangled_util.Timestamp.t ->
  flags:int ->
  key_fp:int64 ->
  int
(** Append one certificate; returns its handle (dense, starting at 0).
    [der] is copied into the blob; the ids are caller-interned
    ([-1] = absent). *)

val length : t -> int
(** Number of certificates appended (and not truncated away). *)

(** {2 Column reads} — O(1), no heap traffic beyond the result. *)

val der_offset : t -> int -> int
val der_length : t -> int -> int
val subject_id : t -> int -> int
val issuer_id : t -> int -> int
val anchor_id : t -> int -> int
val not_before : t -> int -> Tangled_util.Timestamp.t
val not_after : t -> int -> Tangled_util.Timestamp.t
val flags : t -> int -> int
val key_fp : t -> int -> int64

val expired : t -> int -> bool
(** [flags] bit {!flag_expired}. *)

val via_intermediate : t -> int -> bool
(** [flags] bit {!flag_via_intermediate}. *)

val valid_at : t -> int -> Tangled_util.Timestamp.t -> bool
(** Validity-window check straight off the columns — no decode. *)

(** {2 Byte and view reads} *)

val der : t -> int -> string
(** Copy of the certificate's raw DER bytes. *)

val decode : t -> int -> (Certificate.t, string) result
(** Materialise the full certificate view from the DER slice.  The
    result is a fresh value the caller should drop when done — the
    arena never caches it. *)

val blit_to_bytes : t -> int -> Bytes.t -> int -> unit
(** [blit_to_bytes t h buf off] copies handle [h]'s DER bytes into
    [buf] at [off] (which must have room for [der_length t h]). *)

(** {2 Epochs and accounting} *)

val mark : t -> mark
val truncate : t -> mark -> unit
(** Roll back to a previous extent.  Raises [Invalid_argument] if the
    mark lies beyond the current extent (marks never go stale in the
    other direction: the committed prefix is immutable). *)

val memory : t -> memory

val bytes_per_cert : t -> float
(** Committed (blob + column) bytes divided by {!length}; [0.] when
    empty. *)

val digest : t -> string
(** SHA-256 over the committed extent — blob bytes then column rows —
    a byte-identity fingerprint for determinism tests (raw 32-byte
    digest). *)
