module B = Tangled_numeric.Bigint
module Dk = Tangled_hash.Digest_kind
module Rsa = Tangled_crypto.Rsa
module Ts = Tangled_util.Timestamp
module C = Certificate

type t = { certificate : C.t; key : Rsa.private_key }

let default_not_before = Ts.of_date 2000 1 1
let default_not_after = Ts.of_date 2030 1 1

(* memoised on the key record: the Notary's CA pool hashes the same
   modulus for every one of its hundreds of thousands of leaves *)
let key_id pub = Rsa.modulus_sha1 pub

(* [lean] issuance trusts the fields the issuer just encoded instead
   of re-decoding its own DER output; byte-identical certificates
   either way (the lean-vs-full arena identity test pins it).  The
   toggle exists for the bench's before/after pairs. *)
let lean_on = Atomic.make true
let set_lean b = Atomic.set lean_on b
let lean_enabled () = Atomic.get lean_on

let sign_tbs ~key ~digest tbs_der = Rsa.sign key ~digest tbs_der

let assemble_exn ~tbs_der ~signature_alg ~signature =
  match C.assemble ~tbs_der ~signature_alg ~signature with
  | Ok cert -> cert
  | Error msg -> invalid_arg ("Authority: internal assembly failure: " ^ msg)

let self_signed ?(bits = 512) ?(serial = B.one) ?(digest = Dk.SHA256) ?path_len
    ?(not_before = default_not_before) ?(not_after = default_not_after)
    ?(version = 3) rng dn =
  let key = Rsa.generate rng ~bits in
  let extensions =
    if version = 1 then C.no_extensions
    else
      {
        C.no_extensions with
        basic_constraints = Some (true, path_len);
        key_usage = Some [ C.Key_cert_sign; C.Crl_sign ];
        subject_key_id = Some (key_id key.pub);
      }
  in
  let tbs_der =
    C.build_tbs ~version ~serial ~signature_alg:digest ~issuer:dn ~not_before
      ~not_after ~subject:dn ~public_key:key.pub ~extensions
  in
  let signature = sign_tbs ~key ~digest tbs_der in
  { certificate = assemble_exn ~tbs_der ~signature_alg:digest ~signature; key }

let issue_intermediate ?(bits = 512) ?(serial = B.two) ?(digest = Dk.SHA256)
    ?path_len ?(not_before = default_not_before) ?(not_after = default_not_after)
    ?key rng ~parent dn =
  let key = match key with Some k -> k | None -> Rsa.generate rng ~bits in
  let extensions =
    {
      C.no_extensions with
      basic_constraints = Some (true, path_len);
      key_usage = Some [ C.Key_cert_sign; C.Crl_sign ];
      subject_key_id = Some (key_id key.pub);
      authority_key_id = Some (key_id parent.key.pub);
    }
  in
  let tbs_der =
    C.build_tbs ~version:3 ~serial ~signature_alg:digest
      ~issuer:parent.certificate.C.subject ~not_before ~not_after ~subject:dn
      ~public_key:key.pub ~extensions
  in
  let signature = sign_tbs ~key:parent.key ~digest tbs_der in
  { certificate = assemble_exn ~tbs_der ~signature_alg:digest ~signature; key }

let issue_leaf ?(bits = 512) ?(serial = B.of_int 3) ?(digest = Dk.SHA256)
    ?(ekus = [ C.Server_auth ]) ?(not_before = default_not_before)
    ?(not_after = default_not_after) ?key rng ~parent ~dns_names dn =
  let key = match key with Some k -> k | None -> Rsa.generate rng ~bits in
  let extensions =
    {
      C.basic_constraints = Some (false, None);
      key_usage = Some [ C.Digital_signature; C.Key_encipherment ];
      ext_key_usage = Some ekus;
      subject_key_id = Some (key_id key.pub);
      authority_key_id = Some (key_id parent.key.pub);
      subject_alt_names = dns_names;
    }
  in
  let tbs_der =
    C.build_tbs ~version:3 ~serial ~signature_alg:digest
      ~issuer:parent.certificate.C.subject ~not_before ~not_after ~subject:dn
      ~public_key:key.pub ~extensions
  in
  let signature = sign_tbs ~key:parent.key ~digest tbs_der in
  if lean_enabled () then
    C.assemble_trusted ~version:3 ~serial ~signature_alg:digest
      ~issuer:parent.certificate.C.subject ~not_before ~not_after ~subject:dn
      ~public_key:key.pub ~extensions ~tbs_der ~signature
  else
    (assemble_exn ~tbs_der ~signature_alg:digest ~signature).C.raw |> fun raw ->
    (match C.decode raw with Ok c -> c | Error m -> invalid_arg m)

let renew ?(serial = B.of_int 7) ?(not_before = default_not_before)
    ?(not_after = default_not_after) t =
  let cert = t.certificate in
  let tbs_der =
    C.build_tbs ~version:cert.C.version ~serial ~signature_alg:cert.C.signature_alg
      ~issuer:cert.C.subject ~not_before ~not_after ~subject:cert.C.subject
      ~public_key:t.key.pub ~extensions:cert.C.extensions
  in
  let digest = cert.C.signature_alg in
  let signature = sign_tbs ~key:t.key ~digest tbs_der in
  { certificate = assemble_exn ~tbs_der ~signature_alg:digest ~signature; key = t.key }

let reissue_as ?(serial = B.of_int 4096) ?(bits = 512) rng ~parent (orig : C.t) =
  let key = Rsa.generate rng ~bits in
  let extensions =
    {
      orig.C.extensions with
      subject_key_id = Some (key_id key.pub);
      authority_key_id = Some (key_id parent.key.pub);
    }
  in
  let tbs_der =
    C.build_tbs ~version:3 ~serial ~signature_alg:parent.certificate.C.signature_alg
      ~issuer:parent.certificate.C.subject ~not_before:orig.C.not_before
      ~not_after:orig.C.not_after ~subject:orig.C.subject ~public_key:key.pub
      ~extensions
  in
  let digest = parent.certificate.C.signature_alg in
  let signature = sign_tbs ~key:parent.key ~digest tbs_der in
  assemble_exn ~tbs_der ~signature_alg:digest ~signature
