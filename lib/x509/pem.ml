let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let base64_encode s =
  let n = String.length s in
  let out = Buffer.create (((n + 2) / 3) * 4) in
  let byte i = Char.code s.[i] in
  let emit v = Buffer.add_char out alphabet.[v land 0x3f] in
  let i = ref 0 in
  while !i + 2 < n do
    let v = (byte !i lsl 16) lor (byte (!i + 1) lsl 8) lor byte (!i + 2) in
    emit (v lsr 18);
    emit (v lsr 12);
    emit (v lsr 6);
    emit v;
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
      let v = byte !i lsl 16 in
      emit (v lsr 18);
      emit (v lsr 12);
      Buffer.add_string out "=="
  | 2 ->
      let v = (byte !i lsl 16) lor (byte (!i + 1) lsl 8) in
      emit (v lsr 18);
      emit (v lsr 12);
      emit (v lsr 6);
      Buffer.add_char out '='
  | _ -> ());
  Buffer.contents out

let decode_char c =
  match c with
  | 'A' .. 'Z' -> Some (Char.code c - 65)
  | 'a' .. 'z' -> Some (Char.code c - 97 + 26)
  | '0' .. '9' -> Some (Char.code c - 48 + 52)
  | '+' -> Some 62
  | '/' -> Some 63
  | _ -> None

let base64_decode s =
  (* tolerate whitespace; '=' only as trailing padding *)
  let cleaned = Buffer.create (String.length s) in
  let error = ref None in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' -> ()
      | _ -> Buffer.add_char cleaned c)
    s;
  let s = Buffer.contents cleaned in
  let n = String.length s in
  let body_len =
    if n >= 1 && s.[n - 1] = '=' then if n >= 2 && s.[n - 2] = '=' then n - 2 else n - 1
    else n
  in
  if n mod 4 <> 0 && n > 0 then Error "base64: length not a multiple of 4"
  else begin
    let out = Buffer.create (body_len * 3 / 4) in
    let acc = ref 0 and nbits = ref 0 in
    (* [Exit] never escapes: it is purely local control flow breaking
       out of the scan on the first bad character, converted to an
       [Error] two lines below — malformed base64 can never raise out
       of this function. *)
    (try
       for i = 0 to body_len - 1 do
         match decode_char s.[i] with
         | Some v ->
             acc := (!acc lsl 6) lor v;
             nbits := !nbits + 6;
             if !nbits >= 8 then begin
               nbits := !nbits - 8;
               Buffer.add_char out (Char.chr ((!acc lsr !nbits) land 0xff))
             end
         | None ->
             error := Some (Printf.sprintf "base64: invalid character %C" s.[i]);
             raise Exit
       done
     with Exit -> ());
    match !error with Some e -> Error e | None -> Ok (Buffer.contents out)
  end

let encode ~label der =
  let b64 = base64_encode der in
  let buf = Buffer.create (String.length b64 + 64) in
  Buffer.add_string buf ("-----BEGIN " ^ label ^ "-----\n");
  String.iteri
    (fun i c ->
      Buffer.add_char buf c;
      if (i + 1) mod 64 = 0 then Buffer.add_char buf '\n')
    b64;
  if String.length b64 mod 64 <> 0 then Buffer.add_char buf '\n';
  Buffer.add_string buf ("-----END " ^ label ^ "-----\n");
  Buffer.contents buf

let find_sub hay ~start needle =
  let hn = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > hn then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go start

let decode_one pem start =
  match find_sub pem ~start "-----BEGIN " with
  | None -> Error "no PEM block found"
  | Some b -> (
      match find_sub pem ~start:b "-----" with
      | None -> Error "malformed PEM header"
      | Some _ -> (
          let label_start = b + String.length "-----BEGIN " in
          match find_sub pem ~start:label_start "-----" with
          | None -> Error "malformed PEM header"
          | Some label_end -> (
              let label = String.sub pem label_start (label_end - label_start) in
              let body_start = label_end + 5 in
              let footer = "-----END " ^ label ^ "-----" in
              match find_sub pem ~start:body_start footer with
              | None -> Error "missing PEM footer"
              | Some f -> (
                  let body = String.sub pem body_start (f - body_start) in
                  match base64_decode body with
                  | Ok der -> Ok (label, der, f + String.length footer)
                  | Error e -> Error e))))

let decode pem =
  match decode_one pem 0 with
  | Ok (label, der, _) -> Ok (label, der)
  | Error e -> Error e

let decode_all pem =
  let rec go start acc =
    match decode_one pem start with
    | Ok (label, der, next) -> go next ((label, der) :: acc)
    | Error _ when acc <> [] -> Ok (List.rev acc)
    | Error e -> Error e
  in
  go 0 []

let encode_certificate cert = encode ~label:"CERTIFICATE" (Certificate.encode cert)

let decode_certificate pem =
  match decode pem with
  | Error e -> Error e
  | Ok ("CERTIFICATE", der) -> Certificate.decode der
  | Ok (label, _) -> Error (Printf.sprintf "expected CERTIFICATE block, found %s" label)
