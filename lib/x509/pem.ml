let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let base64_encode s =
  let n = String.length s in
  (* output size is exact: every 3-byte group (final partial included)
     becomes 4 characters *)
  let out = Bytes.create (((n + 2) / 3) * 4) in
  let byte i = Char.code (String.unsafe_get s i) in
  let pos = ref 0 in
  let emit v =
    Bytes.unsafe_set out !pos (String.unsafe_get alphabet (v land 0x3f));
    incr pos
  in
  let i = ref 0 in
  while !i + 2 < n do
    let v = (byte !i lsl 16) lor (byte (!i + 1) lsl 8) lor byte (!i + 2) in
    emit (v lsr 18);
    emit (v lsr 12);
    emit (v lsr 6);
    emit v;
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
      let v = byte !i lsl 16 in
      emit (v lsr 18);
      emit (v lsr 12);
      Bytes.unsafe_set out !pos '=';
      Bytes.unsafe_set out (!pos + 1) '='
  | 2 ->
      let v = (byte !i lsl 16) lor (byte (!i + 1) lsl 8) in
      emit (v lsr 18);
      emit (v lsr 12);
      emit (v lsr 6);
      Bytes.unsafe_set out !pos '='
  | _ -> ());
  Bytes.unsafe_to_string out

let decode_char c =
  match c with
  | 'A' .. 'Z' -> Some (Char.code c - 65)
  | 'a' .. 'z' -> Some (Char.code c - 97 + 26)
  | '0' .. '9' -> Some (Char.code c - 48 + 52)
  | '+' -> Some 62
  | '/' -> Some 63
  | _ -> None

let[@inline] is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let base64_decode s =
  (* tolerate whitespace; '=' only as trailing padding.  No cleaned
     copy of the input is built: a counting scan sizes the output
     exactly, then the decode scan walks the raw string once. *)
  let len = String.length s in
  let n = ref 0 in
  for i = 0 to len - 1 do
    if not (is_ws (String.unsafe_get s i)) then incr n
  done;
  let n = !n in
  if n mod 4 <> 0 && n > 0 then Error "base64: length not a multiple of 4"
  else begin
    (* trailing padding: the last one or two non-whitespace characters *)
    let rec last i = if i < 0 then -1 else if is_ws s.[i] then last (i - 1) else i in
    let pad =
      let i = last (len - 1) in
      if i >= 0 && s.[i] = '=' then
        let j = last (i - 1) in
        if j >= 0 && s.[j] = '=' then 2 else 1
      else 0
    in
    let body_len = n - pad in
    let out = Bytes.create (body_len * 3 / 4) in
    let pos = ref 0 and acc = ref 0 and nbits = ref 0 in
    let error = ref None in
    (* [Exit] never escapes: it is purely local control flow breaking
       out of the scan on the first bad character, converted to an
       [Error] two lines below — malformed base64 can never raise out
       of this function. *)
    (try
       let seen = ref 0 in
       for i = 0 to len - 1 do
         let c = String.unsafe_get s i in
         if not (is_ws c) then begin
           (if !seen < body_len then
              match decode_char c with
              | Some v ->
                  acc := (!acc lsl 6) lor v;
                  nbits := !nbits + 6;
                  if !nbits >= 8 then begin
                    nbits := !nbits - 8;
                    Bytes.unsafe_set out !pos (Char.unsafe_chr ((!acc lsr !nbits) land 0xff));
                    incr pos
                  end
              | None ->
                  error := Some (Printf.sprintf "base64: invalid character %C" c);
                  raise Exit);
           incr seen
         end
       done
     with Exit -> ());
    match !error with Some e -> Error e | None -> Ok (Bytes.unsafe_to_string out)
  end

let encode ~label der =
  let b64 = base64_encode der in
  let buf = Buffer.create (String.length b64 + 64) in
  Buffer.add_string buf ("-----BEGIN " ^ label ^ "-----\n");
  String.iteri
    (fun i c ->
      Buffer.add_char buf c;
      if (i + 1) mod 64 = 0 then Buffer.add_char buf '\n')
    b64;
  if String.length b64 mod 64 <> 0 then Buffer.add_char buf '\n';
  Buffer.add_string buf ("-----END " ^ label ^ "-----\n");
  Buffer.contents buf

let find_sub hay ~start needle =
  let hn = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > hn then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go start

let decode_one pem start =
  match find_sub pem ~start "-----BEGIN " with
  | None -> Error "no PEM block found"
  | Some b -> (
      match find_sub pem ~start:b "-----" with
      | None -> Error "malformed PEM header"
      | Some _ -> (
          let label_start = b + String.length "-----BEGIN " in
          match find_sub pem ~start:label_start "-----" with
          | None -> Error "malformed PEM header"
          | Some label_end -> (
              let label = String.sub pem label_start (label_end - label_start) in
              let body_start = label_end + 5 in
              let footer = "-----END " ^ label ^ "-----" in
              match find_sub pem ~start:body_start footer with
              | None -> Error "missing PEM footer"
              | Some f -> (
                  let body = String.sub pem body_start (f - body_start) in
                  match base64_decode body with
                  | Ok der -> Ok (label, der, f + String.length footer)
                  | Error e -> Error e))))

let decode pem =
  match decode_one pem 0 with
  | Ok (label, der, _) -> Ok (label, der)
  | Error e -> Error e

let decode_all pem =
  let rec go start acc =
    match decode_one pem start with
    | Ok (label, der, next) -> go next ((label, der) :: acc)
    | Error _ when acc <> [] -> Ok (List.rev acc)
    | Error e -> Error e
  in
  go 0 []

let encode_certificate cert = encode ~label:"CERTIFICATE" (Certificate.encode cert)

let decode_certificate pem =
  match decode pem with
  | Error e -> Error e
  | Ok ("CERTIFICATE", der) -> Certificate.decode der
  | Ok (label, _) -> Error (Printf.sprintf "expected CERTIFICATE block, found %s" label)
