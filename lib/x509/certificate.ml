module B = Tangled_numeric.Bigint
module Der = Tangled_asn1.Der
module Oid = Tangled_asn1.Oid
module Dk = Tangled_hash.Digest_kind
module Rsa = Tangled_crypto.Rsa
module Ts = Tangled_util.Timestamp

type key_usage =
  | Digital_signature
  | Key_cert_sign
  | Crl_sign
  | Key_encipherment

type ext_key_usage =
  | Server_auth
  | Client_auth
  | Code_signing
  | Email_protection
  | Time_stamping

type extensions = {
  basic_constraints : (bool * int option) option;
  key_usage : key_usage list option;
  ext_key_usage : ext_key_usage list option;
  subject_key_id : string option;
  authority_key_id : string option;
  subject_alt_names : string list;
}

let no_extensions =
  {
    basic_constraints = None;
    key_usage = None;
    ext_key_usage = None;
    subject_key_id = None;
    authority_key_id = None;
    subject_alt_names = [];
  }

type t = {
  version : int;
  serial : B.t;
  signature_alg : Dk.t;
  issuer : Dn.t;
  not_before : Ts.t;
  not_after : Ts.t;
  subject : Dn.t;
  public_key : Rsa.public;
  extensions : extensions;
  tbs_der : string;
  signature : string;
  raw : string;
}

(* --- algorithm identifiers ---------------------------------------- *)

let sig_alg_oid = function
  | Dk.MD5 -> Oid.md5_with_rsa
  | Dk.SHA1 -> Oid.sha1_with_rsa
  | Dk.SHA256 -> Oid.sha256_with_rsa

let sig_alg_of_oid oid =
  if Oid.equal oid Oid.md5_with_rsa then Some Dk.MD5
  else if Oid.equal oid Oid.sha1_with_rsa then Some Dk.SHA1
  else if Oid.equal oid Oid.sha256_with_rsa then Some Dk.SHA256
  else None

let alg_identifier oid = Der.Sequence [ Der.Oid oid; Der.Null ]

(* --- SubjectPublicKeyInfo ------------------------------------------ *)

let spki_der (pub : Rsa.public) =
  let rsa_key =
    Der.encode (Der.Sequence [ Der.Integer pub.n; Der.Integer pub.e ])
  in
  Der.Sequence [ alg_identifier Oid.rsa_encryption; Der.Bit_string (0, rsa_key) ]

let spki_of_der v =
  match v with
  | Der.Sequence [ Der.Sequence [ Der.Oid alg; Der.Null ]; Der.Bit_string (0, key) ]
    when Oid.equal alg Oid.rsa_encryption -> (
      match Der.decode key with
      | Ok (Der.Sequence [ Der.Integer n; Der.Integer e ]) -> Some (Rsa.make_public ~n ~e)
      | _ -> None)
  | _ -> None

(* --- extensions ----------------------------------------------------- *)

let key_usage_bits kus =
  (* bit 0 = digitalSignature ... bit 2 = keyEncipherment, bit 5 =
     keyCertSign, bit 6 = cRLSign, per RFC 5280 *)
  let bit_of = function
    | Digital_signature -> 0
    | Key_encipherment -> 2
    | Key_cert_sign -> 5
    | Crl_sign -> 6
  in
  let bits = List.fold_left (fun acc ku -> acc lor (1 lsl bit_of ku)) 0 kus in
  (* encode as a BIT STRING with msb-first bit order over one byte *)
  let byte = ref 0 in
  for i = 0 to 7 do
    if bits land (1 lsl i) <> 0 then byte := !byte lor (0x80 lsr i)
  done;
  (* trailing unused bits: find lowest set position *)
  let rec unused i = if i < 0 then 7 else if !byte land (1 lsl i) <> 0 then i else unused (i - 1) in
  let u = if !byte = 0 then 0 else unused 7 in
  ignore u;
  Der.Bit_string (0, String.make 1 (Char.chr !byte))

let key_usage_of_bitstring (unused, payload) =
  ignore unused;
  if String.length payload = 0 then Some []
  else begin
    let byte = Char.code payload.[0] in
    let has i = byte land (0x80 lsr i) <> 0 in
    let l = [] in
    let l = if has 0 then Digital_signature :: l else l in
    let l = if has 2 then Key_encipherment :: l else l in
    let l = if has 5 then Key_cert_sign :: l else l in
    let l = if has 6 then Crl_sign :: l else l in
    Some (List.rev l)
  end

let eku_oid = function
  | Server_auth -> Oid.kp_server_auth
  | Client_auth -> Oid.kp_client_auth
  | Code_signing -> Oid.kp_code_signing
  | Email_protection -> Oid.kp_email_protection
  | Time_stamping -> Oid.kp_time_stamping

let eku_of_oid oid =
  if Oid.equal oid Oid.kp_server_auth then Some Server_auth
  else if Oid.equal oid Oid.kp_client_auth then Some Client_auth
  else if Oid.equal oid Oid.kp_code_signing then Some Code_signing
  else if Oid.equal oid Oid.kp_email_protection then Some Email_protection
  else if Oid.equal oid Oid.kp_time_stamping then Some Time_stamping
  else None

let extension ?(critical = false) oid inner =
  let body = [ Der.Oid oid ] in
  let body = if critical then body @ [ Der.Boolean true ] else body in
  Der.Sequence (body @ [ Der.Octet_string (Der.encode inner) ])

let extensions_der exts =
  let items = ref [] in
  let push v = items := v :: !items in
  (match exts.basic_constraints with
  | Some (is_ca, plen) ->
      let inner =
        Der.Sequence
          ((if is_ca then [ Der.Boolean true ] else [])
          @ match plen with Some n -> [ Der.Integer (B.of_int n) ] | None -> [])
      in
      push (extension ~critical:true Oid.ext_basic_constraints inner)
  | None -> ());
  (match exts.key_usage with
  | Some kus -> push (extension ~critical:true Oid.ext_key_usage (key_usage_bits kus))
  | None -> ());
  (match exts.ext_key_usage with
  | Some ekus ->
      let inner = Der.Sequence (List.map (fun e -> Der.Oid (eku_oid e)) ekus) in
      push (extension Oid.ext_ext_key_usage inner)
  | None -> ());
  (match exts.subject_key_id with
  | Some skid -> push (extension Oid.ext_subject_key_id (Der.Octet_string skid))
  | None -> ());
  (match exts.authority_key_id with
  | Some akid ->
      (* AuthorityKeyIdentifier ::= SEQUENCE { keyIdentifier [0] IMPLICIT OCTET STRING } *)
      push (extension Oid.ext_authority_key_id (Der.Sequence [ Der.Context_primitive (0, akid) ]))
  | None -> ());
  (match exts.subject_alt_names with
  | [] -> ()
  | names ->
      (* GeneralNames with dNSName [2] IMPLICIT IA5String *)
      let inner = Der.Sequence (List.map (fun n -> Der.Context_primitive (2, n)) names) in
      push (extension Oid.ext_subject_alt_name inner));
  List.rev !items

let parse_extension acc ext =
  match Der.as_sequence ext with
  | None -> None
  | Some fields -> (
      let oid, value =
        match fields with
        | [ Der.Oid oid; Der.Octet_string v ] -> (Some oid, Some v)
        | [ Der.Oid oid; Der.Boolean _; Der.Octet_string v ] -> (Some oid, Some v)
        | _ -> (None, None)
      in
      match (oid, value) with
      | Some oid, Some v -> (
          match Der.decode v with
          | Error _ -> None
          | Ok inner ->
              if Oid.equal oid Oid.ext_basic_constraints then
                match inner with
                | Der.Sequence [] -> Some { acc with basic_constraints = Some (false, None) }
                | Der.Sequence [ Der.Boolean ca ] ->
                    Some { acc with basic_constraints = Some (ca, None) }
                | Der.Sequence [ Der.Boolean ca; Der.Integer n ] ->
                    Some { acc with basic_constraints = Some (ca, B.to_int_opt n) }
                | _ -> None
              else if Oid.equal oid Oid.ext_key_usage then
                match inner with
                | Der.Bit_string (u, p) ->
                    Option.map (fun kus -> { acc with key_usage = Some kus })
                      (key_usage_of_bitstring (u, p))
                | _ -> None
              else if Oid.equal oid Oid.ext_ext_key_usage then
                match inner with
                | Der.Sequence oids ->
                    let ekus = List.filter_map (fun o -> Option.bind (Der.as_oid o) eku_of_oid) oids in
                    Some { acc with ext_key_usage = Some ekus }
                | _ -> None
              else if Oid.equal oid Oid.ext_subject_key_id then
                match inner with
                | Der.Octet_string skid -> Some { acc with subject_key_id = Some skid }
                | _ -> None
              else if Oid.equal oid Oid.ext_authority_key_id then
                match inner with
                | Der.Sequence (Der.Context_primitive (0, akid) :: _) ->
                    Some { acc with authority_key_id = Some akid }
                | Der.Sequence _ -> Some acc
                | _ -> None
              else if Oid.equal oid Oid.ext_subject_alt_name then
                match inner with
                | Der.Sequence names ->
                    let dns =
                      List.filter_map
                        (function Der.Context_primitive (2, n) -> Some n | _ -> None)
                        names
                    in
                    Some { acc with subject_alt_names = dns }
                | _ -> None
              else (* unknown extension: tolerated, ignored *) Some acc)
      | _ -> None)

(* --- TBSCertificate ------------------------------------------------- *)

let validity_time ts =
  (* X.509: UTCTime through 2049, GeneralizedTime after *)
  let y, _, _, _, _, _ = Ts.to_civil ts in
  if y >= 1950 && y <= 2049 then Der.Utc_time ts else Der.Generalized_time ts

let build_tbs ~version ~serial ~signature_alg ~issuer ~not_before ~not_after
    ~subject ~public_key ~extensions =
  if version <> 1 && version <> 3 then invalid_arg "Certificate.build_tbs: version must be 1 or 3";
  let core =
    [
      Der.Integer serial;
      alg_identifier (sig_alg_oid signature_alg);
      Dn.to_der issuer;
      Der.Sequence [ validity_time not_before; validity_time not_after ];
      Dn.to_der subject;
      spki_der public_key;
    ]
  in
  let version_field =
    if version = 3 then [ Der.Context (0, Der.Integer (B.of_int 2)) ] else []
  in
  let ext_field =
    match extensions_der extensions with
    | [] -> []
    | items -> [ Der.Context (3, Der.Sequence items) ]
  in
  Der.encode (Der.Sequence (version_field @ core @ ext_field))

let parse_tbs tbs =
  let ( let* ) o f = Option.bind o f in
  let* fields = Der.as_sequence tbs in
  let version, fields =
    match fields with
    | Der.Context (0, Der.Integer v) :: rest ->
        ((match B.to_int_opt v with Some 2 -> 3 | _ -> -1), rest)
    | rest -> (1, rest)
  in
  if version < 0 then None
  else
    match fields with
    | Der.Integer serial
      :: Der.Sequence [ Der.Oid alg; Der.Null ]
      :: issuer_der
      :: Der.Sequence [ nb; na ]
      :: subject_der
      :: spki
      :: rest ->
        let* signature_alg = sig_alg_of_oid alg in
        let* issuer = Dn.of_der issuer_der in
        let* subject = Dn.of_der subject_der in
        let* not_before = Der.as_time nb in
        let* not_after = Der.as_time na in
        let* public_key = spki_of_der spki in
        let* extensions =
          match rest with
          | [] -> Some no_extensions
          | [ Der.Context (3, Der.Sequence items) ] ->
              List.fold_left
                (fun acc ext -> Option.bind acc (fun a -> parse_extension a ext))
                (Some no_extensions) items
          | _ -> None
        in
        Some (version, serial, signature_alg, issuer, not_before, not_after, subject,
              public_key, extensions)
    | _ -> None

(* --- assembling and decoding ---------------------------------------- *)

(* outer Certificate: tbs ++ alg ++ signature, spliced as raw DER *)
let splice_raw ~tbs_der ~signature_alg ~signature =
  let alg_der = Der.encode (alg_identifier (sig_alg_oid signature_alg)) in
  let sig_der = Der.encode (Der.Bit_string (0, signature)) in
  let content = tbs_der ^ alg_der ^ sig_der in
  let buf = Buffer.create (String.length content + 8) in
  Buffer.add_char buf '\x30';
  let len = String.length content in
  if len < 0x80 then Buffer.add_char buf (Char.chr len)
  else begin
    let rec bytes n acc = if n = 0 then acc else bytes (n lsr 8) ((n land 0xff) :: acc) in
    let bs = bytes len [] in
    Buffer.add_char buf (Char.chr (0x80 lor List.length bs));
    List.iter (fun b -> Buffer.add_char buf (Char.chr b)) bs
  end;
  Buffer.add_string buf content;
  Buffer.contents buf

let assemble ~tbs_der ~signature_alg ~signature =
  match Der.decode tbs_der with
  | Error e -> Error ("invalid TBS DER: " ^ Der.error_to_string e)
  | Ok tbs -> (
      match parse_tbs tbs with
      | None -> Error "unsupported TBSCertificate shape"
      | Some (version, serial, alg, issuer, not_before, not_after, subject, public_key, extensions) ->
          if alg <> signature_alg then Error "signature algorithm mismatch with TBS"
          else begin
            let raw = splice_raw ~tbs_der ~signature_alg ~signature in
            Ok
              {
                version;
                serial;
                signature_alg;
                issuer;
                not_before;
                not_after;
                subject;
                public_key;
                extensions;
                tbs_der;
                signature;
                raw;
              }
          end)

(* The issuer already holds every field it just encoded into the TBS,
   so re-parsing its own output is pure overhead on the bulk-issuance
   path.  This constructor trusts the caller's fields and only splices
   the outer SEQUENCE; [decode] of the resulting [raw] yields a
   structurally equal record (the lean-vs-full arena identity test
   pins this). *)
let assemble_trusted ~version ~serial ~signature_alg ~issuer ~not_before
    ~not_after ~subject ~public_key ~extensions ~tbs_der ~signature =
  {
    version;
    serial;
    signature_alg;
    issuer;
    not_before;
    not_after;
    subject;
    public_key;
    extensions;
    tbs_der;
    signature;
    raw = splice_raw ~tbs_der ~signature_alg ~signature;
  }

let decode raw =
  match Der.decode raw with
  | Error e -> Error (Der.error_to_string e)
  | Ok
      (Der.Sequence [ tbs; Der.Sequence [ Der.Oid alg; Der.Null ]; Der.Bit_string (0, signature) ]) -> (
      match sig_alg_of_oid alg with
      | None -> Error "unknown signature algorithm"
      | Some signature_alg -> (
          match parse_tbs tbs with
          | None -> Error "unsupported TBSCertificate shape"
          | Some (version, serial, inner_alg, issuer, not_before, not_after, subject,
                  public_key, extensions) ->
              if inner_alg <> signature_alg then Error "signature algorithm mismatch with TBS"
              else begin
                (* No re-encode canonicality check: [Der.decode] only
                   accepts input it would re-encode byte-identically
                   (minimal length forms, minimal INTEGER and OID
                   encodings, exact child spans, no trailing garbage),
                   so acceptance already implies the input is canonical.
                   The roundtrip property tests in test_asn1 pin this. *)
                (* the TBS bytes the signature covers are a slice of [raw] *)
                match Der.child_spans raw with
                | Ok ((tbs_off, tbs_len) :: _) ->
                    Ok
                      {
                        version;
                        serial;
                        signature_alg;
                        issuer;
                        not_before;
                        not_after;
                        subject;
                        public_key;
                        extensions;
                        tbs_der = String.sub raw tbs_off tbs_len;
                        signature;
                        raw;
                      }
                | Ok [] | Error _ -> Error "unsupported certificate shape"
              end))
  | Ok _ -> Error "unsupported certificate shape"

let encode t = t.raw

(* --- identities ------------------------------------------------------ *)

let fingerprint ?(alg = Dk.SHA256) t = Dk.digest alg t.raw

let subject_hash32 t =
  let der = Der.encode (Dn.to_der t.subject) in
  Tangled_util.Hex.encode (String.sub (Tangled_hash.Sha1.digest der) 0 4)

let equivalence_key t =
  Dn.to_string t.subject ^ "|" ^ Tangled_util.Hex.encode (Rsa.modulus_bytes t.public_key)

let byte_identity t = Tangled_hash.Sha256.digest t.raw

(* --- predicates ------------------------------------------------------ *)

let is_ca t =
  match t.extensions.basic_constraints with
  | Some (ca, _) -> ca
  | None ->
      (* v1 legacy roots carry no extensions; treat self-issued ones as CAs *)
      t.version = 1 && Dn.equal t.subject t.issuer

let verify_signature t ~issuer_key =
  Rsa.verify issuer_key ~digest:t.signature_alg ~msg:t.tbs_der ~signature:t.signature

let is_self_signed t =
  Dn.equal t.subject t.issuer && verify_signature t ~issuer_key:t.public_key

let valid_at t now = Ts.compare t.not_before now <= 0 && Ts.compare now t.not_after <= 0

let allows_server_auth t =
  match t.extensions.ext_key_usage with
  | None -> true
  | Some ekus -> List.mem Server_auth ekus

(* --- printing --------------------------------------------------------- *)

let pp fmt t =
  Format.fprintf fmt "%s (serial %s, %s)" (Dn.to_string t.subject) (B.to_string t.serial)
    (subject_hash32 t)

let pp_details fmt t =
  Format.fprintf fmt "Certificate:@.";
  Format.fprintf fmt "  Version: %d@." t.version;
  Format.fprintf fmt "  Serial: %s@." (B.to_string t.serial);
  Format.fprintf fmt "  Signature Algorithm: %sWithRSAEncryption@." (Dk.name t.signature_alg);
  Format.fprintf fmt "  Issuer: %s@." (Dn.to_string t.issuer);
  Format.fprintf fmt "  Validity: %s .. %s@." (Ts.to_utc_string t.not_before)
    (Ts.to_utc_string t.not_after);
  Format.fprintf fmt "  Subject: %s@." (Dn.to_string t.subject);
  Format.fprintf fmt "  Public Key: RSA %d bits@." (B.bit_length t.public_key.n);
  (match t.extensions.basic_constraints with
  | Some (ca, plen) ->
      Format.fprintf fmt "  Basic Constraints: CA=%b%s@." ca
        (match plen with Some n -> Printf.sprintf ", pathlen=%d" n | None -> "")
  | None -> ());
  Format.fprintf fmt "  Fingerprint (sha256): %s@."
    (Tangled_util.Hex.encode_colon (fingerprint t))
