(** Construction of the synthetic certificate world.

    One call builds every root authority (store members, Figure 2
    device extras, private/unknown CAs, the Table 5 rooted-device CAs
    and the Reality Mine interception root), assembles the official
    AOSP 4.1–4.4, Mozilla and iOS 7 stores with the paper's sizes and
    overlap structure, and attaches to every root the share of Notary
    traffic it validates (Table 3/4 derivation, DESIGN.md §4). *)

module PD := Paper_data

type root = {
  id : int;
      (** dense {!Tangled_engine.Interner} id of the root's equivalence
          key, minted at build — the index every coverage join runs on *)
  authority : Tangled_x509.Authority.t;
  display_name : string;
  in_aosp : PD.android_version list;
      (** the AOSP releases whose store contains it (empty: none) *)
  in_mozilla : bool;
  in_ios : bool;
  traffic_weight : float;
      (** share of unexpired Notary leaves this root validates; 0 for
          roots absent from live traffic *)
  extra : PD.extra_cert option;
      (** the Figure 2 record when this is a device-store extra *)
  mozilla_variant : Tangled_x509.Certificate.t option;
      (** for the shared roots Mozilla ships as a re-issued (equivalent
          but byte-distinct) certificate *)
}

type t = {
  seed : int;
  key_bits : int;
  roots : root array;          (** every public root, store-member or extra *)
  private_cas : (Tangled_x509.Authority.t * float) array;
      (** CAs seen in traffic but trusted by no store, with weights *)
  rooted_authorities : (string * Tangled_x509.Authority.t) array;
      (** the Table 5 CAs, by name *)
  interceptor : Tangled_x509.Authority.t;  (** the Reality Mine root *)
  aosp : PD.android_version -> Tangled_store.Root_store.t;
  mozilla : Tangled_store.Root_store.t;
  ios7 : Tangled_store.Root_store.t;
  extra_by_id : (string, root) Hashtbl.t;
      (** Figure 2 extras indexed by their bracketed hash id *)
  interner : Tangled_engine.Interner.t;
      (** the universe's identity table: every root, private CA,
          rooted-device CA and the interceptor, interned at build.
          Shared mutable state — later sequential phases may mint more
          ids (e.g. for user-added device certificates); the
          domain-parallel phases only read. *)
  root_of_id : root option array;
      (** public root per interned id ([None] for ids that are private
          CAs or other non-store identities) — the id-indexed
          replacement for the Notary's string-keyed root table *)
}

val build : ?key_bits:int -> seed:int -> unit -> t
(** Deterministic in [seed].  [key_bits] defaults to 512. *)

val default : t Lazy.t
(** A process-wide universe with seed 1, shared by tests and examples
    so the ~400 keypairs are generated once. *)

val find_root_by_name : t -> string -> root option
(** Lookup by display name (first match). *)

val find_root_by_key : t -> string -> root option
(** Lookup by equivalence key, through the interner and the id-indexed
    table — [O(1)]. *)

val store_of_category : t -> string -> Tangled_x509.Certificate.t list
(** The certificate population of a Table 4 category, by its paper row
    label.  @raise Invalid_argument on an unknown label. *)

val category_labels : string list
(** The Table 4 row labels accepted by {!store_of_category}. *)
