module PD = Paper_data
module Prng = Tangled_util.Prng
module Ts = Tangled_util.Timestamp
module Dn = Tangled_x509.Dn
module Authority = Tangled_x509.Authority
module C = Tangled_x509.Certificate
module Rs = Tangled_store.Root_store
module B = Tangled_numeric.Bigint
module Interner = Tangled_engine.Interner

type root = {
  id : int;
  authority : Authority.t;
  display_name : string;
  in_aosp : PD.android_version list;
  in_mozilla : bool;
  in_ios : bool;
  traffic_weight : float;
  extra : PD.extra_cert option;
  mozilla_variant : C.t option;
}

type t = {
  seed : int;
  key_bits : int;
  roots : root array;
  private_cas : (Authority.t * float) array;
  rooted_authorities : (string * Authority.t) array;
  interceptor : Authority.t;
  aosp : PD.android_version -> Rs.t;
  mozilla : Rs.t;
  ios7 : Rs.t;
  extra_by_id : (string, root) Hashtbl.t;
  interner : Interner.t;
  root_of_id : root option array;
}

(* Composition constants derived in DESIGN.md §4 from Tables 1/3/4.
   Counts of traffic-active roots per sub-population: *)
let shared_41_active = 105 (* of 124; 19 validate nothing *)
let only_41_active = 3 (* of 15; the DoD-style government roots *)
let ios_exclusive_active = 15 (* of 69 *)
let ios_shared_zeros = 5 (* inactive shared roots iOS also carries *)
let ios_only_members = 10 (* AOSP-only roots iOS carries *)
let mozilla_reissued = 13 (* shared roots Mozilla ships re-issued: 130-117 *)
let n_private_cas = 40
let firmaprofesional = "Autoridad de Certificacion Firmaprofesional CIF A62634068"

let zipf_shares n s total =
  let raw = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let sum = Array.fold_left ( +. ) 0.0 raw in
  Array.map (fun w -> w /. sum *. total) raw

(* A name supply: curated well-known names first, then synthetic. *)
let name_supply rng =
  let next = ref 0 in
  fun () ->
    let i = !next in
    incr next;
    if i < Array.length Ca_names.well_known then Ca_names.well_known.(i)
    else Ca_names.synthetic rng (i - Array.length Ca_names.well_known)

let dn_of_name (cn, o, c) = Dn.make ?o ?c cn

let all_versions = PD.android_versions

let versions_from v =
  let rec drop = function
    | [] -> []
    | x :: rest -> if x = v then x :: rest else drop rest
  in
  drop all_versions

let build ?(key_bits = 384) ~seed () =
  let master = Prng.create seed in
  let rng_keys = Prng.split master "blueprint-keys" in
  let rng_names = Prng.split master "blueprint-names" in
  let fresh_name = name_supply rng_names in
  let serial = ref 100 in
  (* 2014-era roots were overwhelmingly sha1WithRSA — which also lets
     the default 384-bit simulation keys hold the PKCS#1 padding. *)
  let digest = Tangled_hash.Digest_kind.SHA1 in
  let mk_authority ?version ?not_before ?not_after dn =
    incr serial;
    Authority.self_signed ~bits:key_bits ~serial:(B.of_int !serial) ~digest ?version
      ?not_before ?not_after rng_keys dn
  in
  (* --- store-member roots ------------------------------------------- *)
  let make_population ~count ~actives ~shares ~in_aosp ~in_mozilla ~in_ios_fn () =
    (* [in_ios_fn i active] decides iOS membership per element *)
    Array.init count (fun i ->
        let name = fresh_name () in
        let display_name = match name with cn, _, _ -> cn in
        let active = i < actives in
        let weight = if active then shares.(i) else 0.0 in
        let authority =
          if display_name = firmaprofesional then
            (* the expired AOSP root the paper singles out (§2) *)
            mk_authority
              ~not_before:(Ts.of_date 2001 10 24)
              ~not_after:(Ts.of_date 2013 10 24)
              (dn_of_name name)
          else mk_authority (dn_of_name name)
        in
        {
          id = -1;  (* minted once the full root array is assembled *)
          authority;
          display_name;
          in_aosp;
          in_mozilla;
          in_ios = in_ios_fn i active;
          traffic_weight = weight;
          extra = None;
          mozilla_variant = None;
        })
  in
  (* shared (AOSP ∩ Mozilla) populations per version of first appearance *)
  let shared_41 =
    make_population ~count:(fst (PD.aosp_version_delta PD.V4_1))
      ~actives:shared_41_active
      ~shares:(zipf_shares shared_41_active 1.0 PD.traffic_core)
      ~in_aosp:all_versions ~in_mozilla:true
      ~in_ios_fn:(fun i active -> active || i < shared_41_active + ios_shared_zeros)
      ()
  in
  (* move the expired Firmaprofesional root into the zero-weight set:
     swap its activity with the last active slot if it landed active *)
  let shared_41 =
    match
      Array.to_seq shared_41
      |> Seq.zip (Seq.ints 0)
      |> Seq.find (fun (_, r) -> r.display_name = firmaprofesional)
    with
    | Some (i, r) when r.traffic_weight > 0.0 ->
        (* hand its weight to the first zero-weight root and its iOS
           slot to the next root outside the iOS window, keeping both
           the active count and the iOS membership count intact *)
        let j = shared_41_active in
        let k = shared_41_active + ios_shared_zeros in
        let copy = Array.copy shared_41 in
        copy.(i) <- { r with traffic_weight = 0.0; in_ios = false };
        copy.(j) <- { copy.(j) with traffic_weight = r.traffic_weight };
        copy.(k) <- { copy.(k) with in_ios = true };
        copy
    | _ -> shared_41
  in
  let shared_42 =
    make_population ~count:(fst (PD.aosp_version_delta PD.V4_2)) ~actives:0
      ~shares:[||]
      ~in_aosp:(versions_from PD.V4_2) ~in_mozilla:true
      ~in_ios_fn:(fun _ _ -> false) ()
  in
  let n43 = fst (PD.aosp_version_delta PD.V4_3) in
  let shared_43 =
    make_population ~count:n43 ~actives:n43
      ~shares:(Array.make n43 (PD.traffic_aosp43_added /. float_of_int n43))
      ~in_aosp:(versions_from PD.V4_3) ~in_mozilla:true
      ~in_ios_fn:(fun _ _ -> true) ()
  in
  let shared_44 =
    make_population ~count:(fst (PD.aosp_version_delta PD.V4_4)) ~actives:1
      ~shares:[| PD.traffic_aosp44_added |]
      ~in_aosp:[ PD.V4_4 ] ~in_mozilla:true
      ~in_ios_fn:(fun _ _ -> true) ()
  in
  (* AOSP-only populations (government and specialty roots; iOS carries
     ten of them, the DoD pattern) *)
  let only_41 =
    make_population ~count:(snd (PD.aosp_version_delta PD.V4_1))
      ~actives:only_41_active
      ~shares:(zipf_shares only_41_active 1.0 PD.traffic_aosp_only)
      ~in_aosp:all_versions ~in_mozilla:false
      ~in_ios_fn:(fun i active -> active || i < ios_only_members) ()
  in
  let only_43 =
    make_population ~count:(snd (PD.aosp_version_delta PD.V4_3)) ~actives:0
      ~shares:[||] ~in_aosp:(versions_from PD.V4_3) ~in_mozilla:false
      ~in_ios_fn:(fun _ _ -> false) ()
  in
  let only_44 =
    make_population ~count:(snd (PD.aosp_version_delta PD.V4_4)) ~actives:0
      ~shares:[||] ~in_aosp:[ PD.V4_4 ] ~in_mozilla:false
      ~in_ios_fn:(fun _ _ -> false) ()
  in
  let mozilla_excl =
    make_population ~count:PD.mozilla_exclusive ~actives:0 ~shares:[||]
      ~in_aosp:[] ~in_mozilla:true ~in_ios_fn:(fun _ _ -> false) ()
  in
  (* --- Figure 2 extras ------------------------------------------------ *)
  (* iOS-exclusive actives and active iOS-only extras share the
     iOS-exclusive traffic bucket. *)
  let ios_only_extra_actives =
    Array.to_list PD.extras
    |> List.filter (fun (x : PD.extra_cert) -> x.xc_class = PD.Ios_only && x.xc_active)
    |> List.length
  in
  let ios_bucket =
    zipf_shares (ios_exclusive_active + ios_only_extra_actives) 1.0 PD.traffic_ios_exclusive
  in
  let ios_excl =
    make_population ~count:PD.ios_exclusive ~actives:ios_exclusive_active
      ~shares:(Array.sub ios_bucket 0 ios_exclusive_active)
      ~in_aosp:[] ~in_mozilla:false ~in_ios_fn:(fun _ _ -> true) ()
  in
  let moz_extra_shares =
    let n =
      Array.to_list PD.extras
      |> List.filter (fun (x : PD.extra_cert) ->
             x.xc_class = PD.Mozilla_and_ios && x.xc_active)
      |> List.length
    in
    zipf_shares n 1.0 PD.traffic_mozilla_extras
  in
  let android_extra_shares =
    let n =
      Array.to_list PD.extras
      |> List.filter (fun (x : PD.extra_cert) ->
             x.xc_class = PD.Android_only && x.xc_active)
      |> List.length
    in
    zipf_shares n 1.0 PD.traffic_android_device_only
  in
  let moz_rank = ref 0 and ios_rank = ref ios_exclusive_active and android_rank = ref 0 in
  let extra_roots =
    Array.map
      (fun (x : PD.extra_cert) ->
        let weight =
          if not x.xc_active then 0.0
          else begin
            match x.xc_class with
            | PD.Mozilla_and_ios ->
                let w = moz_extra_shares.(!moz_rank) in
                incr moz_rank;
                w
            | PD.Ios_only ->
                let w = ios_bucket.(!ios_rank) in
                incr ios_rank;
                w
            | PD.Android_only ->
                let w = android_extra_shares.(!android_rank) in
                incr android_rank;
                w
            | PD.Unrecorded -> 0.0
          end
        in
        let dn =
          (* the DoD root's full DN is quoted in the paper's footnote *)
          if x.xc_id = "b530fe64" then
            [ Dn.C "US"; Dn.O "U.S. Government"; Dn.OU "DoD"; Dn.OU "PKI";
              Dn.CN "DoD CLASS 3 Root CA" ]
          else Dn.make ~o:x.xc_name x.xc_name
        in
        {
          id = -1;
          authority = mk_authority dn;
          display_name = x.xc_name;
          in_aosp = [];
          in_mozilla = (x.xc_class = PD.Mozilla_and_ios);
          in_ios = (match x.xc_class with PD.Mozilla_and_ios | PD.Ios_only -> true | _ -> false);
          traffic_weight = weight;
          extra = Some x;
          mozilla_variant = None;
        })
      PD.extras
  in
  let roots =
    Array.concat
      [ shared_41; shared_42; shared_43; shared_44; only_41; only_43; only_44;
        mozilla_excl; ios_excl; extra_roots ]
  in
  (* Mozilla re-issues some shared roots (equivalent, byte-distinct):
     130 shared, 117 byte-identical across stores (§2). *)
  let roots =
    Array.mapi
      (fun i r ->
        if i < mozilla_reissued && r.in_mozilla && r.in_aosp <> [] then
          let renewed =
            Authority.renew
              ~serial:(B.of_int (10_000 + i))
              ~not_before:(Ts.of_date 2006 1 1)
              ~not_after:(Ts.of_date 2036 1 1)
              r.authority
          in
          { r with mozilla_variant = Some renewed.Authority.certificate }
        else r)
      roots
  in
  (* --- identity interning --------------------------------------------- *)
  (* mint dense ids in root-array order; Mozilla re-issues share their
     base root's (subject, modulus) key so no extra ids appear *)
  let interner = Interner.create ~capacity:1024 () in
  let roots =
    Array.map
      (fun r ->
        { r with id = Interner.intern interner (C.equivalence_key r.authority.Authority.certificate) })
      roots
  in
  (* --- traffic-only private CAs -------------------------------------- *)
  let assigned = Array.fold_left (fun acc r -> acc +. r.traffic_weight) 0.0 roots in
  let private_mass = Stdlib.max 0.0 (1.0 -. assigned) in
  let private_shares = zipf_shares n_private_cas 1.0 private_mass in
  let rng_priv = Prng.split master "blueprint-private" in
  let private_cas =
    Array.init n_private_cas (fun i ->
        let cn = Ca_names.private_ca rng_priv i in
        (mk_authority (Dn.make cn), private_shares.(i)))
  in
  (* --- rooted-device CAs and the interception root -------------------- *)
  let rooted_authorities =
    PD.rooted_cas
    |> List.map (fun (name, _) -> (name, mk_authority ~version:1 (Dn.make name)))
    |> Array.of_list
  in
  let interceptor =
    mk_authority (Dn.make ~o:PD.interceptor_name (PD.interceptor_name ^ " Root CA"))
  in
  (* every identity that can anchor a chain or appear in a device store
     gets an id: private CAs, rooted-device CAs, the interceptor *)
  let intern_authority (a : Authority.t) =
    ignore (Interner.intern interner (C.equivalence_key a.Authority.certificate))
  in
  Array.iter (fun (a, _) -> intern_authority a) private_cas;
  Array.iter (fun (_, a) -> intern_authority a) rooted_authorities;
  intern_authority interceptor;
  (* --- official stores ------------------------------------------------ *)
  let aosp_store v =
    let members =
      Array.to_list roots
      |> List.filter (fun r -> List.mem v r.in_aosp)
      |> List.map (fun r -> r.authority.Authority.certificate)
    in
    Rs.of_certs ("AOSP " ^ PD.version_to_string v) Rs.Aosp members
  in
  let aosp_41 = aosp_store PD.V4_1 in
  let aosp_42 = aosp_store PD.V4_2 in
  let aosp_43 = aosp_store PD.V4_3 in
  let aosp_44 = aosp_store PD.V4_4 in
  let aosp = function
    | PD.V4_1 -> aosp_41
    | PD.V4_2 -> aosp_42
    | PD.V4_3 -> aosp_43
    | PD.V4_4 -> aosp_44
  in
  let mozilla =
    Array.to_list roots
    |> List.filter (fun r -> r.in_mozilla)
    |> List.map (fun r ->
           match r.mozilla_variant with
           | Some v -> v
           | None -> r.authority.Authority.certificate)
    |> Rs.of_certs "Mozilla" Rs.Aosp
  in
  let ios7 =
    Array.to_list roots
    |> List.filter (fun r -> r.in_ios)
    |> List.map (fun r -> r.authority.Authority.certificate)
    |> Rs.of_certs "iOS 7" Rs.Aosp
  in
  let extra_by_id = Hashtbl.create 128 in
  Array.iter
    (fun r ->
      match r.extra with
      | Some x -> Hashtbl.replace extra_by_id x.PD.xc_id r
      | None -> ())
    roots;
  let root_of_id = Array.make (Interner.cardinal interner) None in
  Array.iter (fun r -> root_of_id.(r.id) <- Some r) roots;
  {
    seed;
    key_bits;
    roots;
    private_cas;
    rooted_authorities;
    interceptor;
    aosp;
    mozilla;
    ios7;
    extra_by_id;
    interner;
    root_of_id;
  }

let default = lazy (build ~seed:1 ())

let find_root_by_name t name =
  Array.to_seq t.roots |> Seq.find (fun r -> r.display_name = name)

let find_root_by_key t key =
  match Interner.find t.interner key with
  | Some id when id < Array.length t.root_of_id -> t.root_of_id.(id)
  | _ -> None

let category_labels = List.map (fun (l, _, _) -> l) PD.table4_rows

let store_of_category t label =
  let certs pred =
    Array.to_list t.roots |> List.filter pred
    |> List.map (fun r -> r.authority.Authority.certificate)
  in
  match label with
  | "Non AOSP and Non Mozilla root certs" ->
      certs (fun r -> r.extra <> None && not r.in_mozilla)
  | "Non AOSP root certs found on Mozilla's" ->
      certs (fun r -> r.extra <> None && r.in_mozilla)
  | "AOSP 4.4 and Mozilla root certs" ->
      certs (fun r -> List.mem PD.V4_4 r.in_aosp && r.in_mozilla)
  | "AOSP 4.1 certs" -> certs (fun r -> List.mem PD.V4_1 r.in_aosp)
  | "AOSP 4.4 certs" -> certs (fun r -> List.mem PD.V4_4 r.in_aosp)
  | "Aggregated Android root certs" ->
      certs (fun r -> List.mem PD.V4_4 r.in_aosp || r.extra <> None)
  | "Mozilla root store certs" -> certs (fun r -> r.in_mozilla)
  | "iOS 7 root store certs" -> certs (fun r -> r.in_ios)
  | other -> invalid_arg ("Blueprint.store_of_category: unknown label " ^ other)
