(** Machine-readable dataset exports: the Netalyzr session log and the
    Notary certificate database, in the shapes a downstream analysis
    (outside this library) would consume. *)

val sessions_json : ?limit:int -> Pipeline.t -> Tangled_util.Json.t
(** The Netalyzr dataset as a JSON document: collection metadata plus
    one record per session (identity tuple, store summary, probe
    results).  [limit] truncates to the first N sessions. *)

val notary_json : ?limit:int -> Pipeline.t -> Tangled_util.Json.t
(** The Notary database: per-chain records (leaf subject, issuer,
    validity, anchor) plus the aggregate per-store counts. *)

val stores_json : Pipeline.t -> Tangled_util.Json.t
(** The official stores: per store, the list of certificate subjects
    with their hash ids and fingerprints. *)

(** {1 JSONL}

    The record-oriented form the ingestion layer prefers: line 1 is a
    manifest object carrying the metadata and an
    [exported_sessions] / [exported_chains] / [total_certificates]
    control total, then one record per line.  Per-record framing means
    one damaged record quarantines one record, never the document. *)

val official_stores : Pipeline.t -> Tangled_store.Root_store.t list
(** Every official store the study compares, in Table 1 order. *)

val sessions_jsonl : ?limit:int -> Pipeline.t -> string
val notary_jsonl : ?limit:int -> Pipeline.t -> string
val stores_jsonl : Pipeline.t -> string

val write_file : string -> Tangled_util.Json.t -> unit
val write_text : string -> string -> unit
