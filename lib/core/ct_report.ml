(* The CT-visibility extension section: build the log fleet over the
   world's corpus and answer the question the paper cannot — which
   device-store roots are visible in at least one public log, and which
   are dark everywhere (cf. "Characterizing the Root Landscape of
   Certificate Transparency Logs"). *)

module Fleet = Tangled_ct.Fleet
module Log = Tangled_ct.Log
module T = Tangled_util.Text_table

type t = { fleet : Fleet.t; rows : Fleet.store_row list }

let compute (world : Pipeline.t) =
  let fleet =
    Fleet.build ~seed:world.config.seed world.universe world.notary
  in
  { fleet; rows = Fleet.official_visibility fleet }

let fleet t = t.fleet

let render t =
  let b = Buffer.create 4096 in
  let log_rows =
    Array.to_list
      (Array.map
         (fun (e : Fleet.entry) ->
           [
             Log.name e.Fleet.log;
             T.fmt_int e.Fleet.accepted_roots;
             T.fmt_int (Log.size e.Fleet.log);
             String.sub (Log.head_hex e.Fleet.log) 0 16;
           ])
         (Fleet.entries t.fleet))
  in
  Buffer.add_string b
    (T.render ~title:"CT log fleet (RFC 6962 over the Notary corpus)"
       ~aligns:[ T.Left; T.Right; T.Right; T.Left ]
       ~header:[ "log"; "accepted roots"; "tree size"; "head (prefix)" ]
       log_rows);
  Buffer.add_char b '\n';
  let vis_rows =
    List.map
      (fun (r : Fleet.store_row) ->
        [
          r.Fleet.store_name;
          T.fmt_int r.Fleet.roots;
          T.fmt_int r.Fleet.accepted;
          T.fmt_int r.Fleet.logged;
          T.fmt_int r.Fleet.dark;
          (if r.Fleet.roots = 0 then "-"
           else T.fmt_pct (float_of_int r.Fleet.logged /. float_of_int r.Fleet.roots));
        ])
      t.rows
  in
  Buffer.add_string b
    (T.render ~title:"CT visibility of device-store roots"
       ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right; T.Right ]
       ~header:[ "store"; "roots"; "accepted"; "logged"; "dark"; "visible" ]
       vis_rows);
  Buffer.add_char b '\n';
  let dark_examples =
    List.concat_map
      (fun (r : Fleet.store_row) ->
        match r.Fleet.dark_names with
        | [] -> []
        | names ->
          [ (r.Fleet.store_name, String.concat ", " names) ])
      t.rows
  in
  (match dark_examples with
  | [] -> Buffer.add_string b "No dark roots: every store root is logged.\n"
  | kv ->
    Buffer.add_string b
      (T.render_kv ~title:"Dark roots (first few per store)" kv));
  Buffer.contents b

let csv t =
  ( [ "store"; "roots"; "accepted"; "logged"; "dark"; "visible_fraction" ],
    List.map
      (fun (r : Fleet.store_row) ->
        [
          r.Fleet.store_name;
          string_of_int r.Fleet.roots;
          string_of_int r.Fleet.accepted;
          string_of_int r.Fleet.logged;
          string_of_int r.Fleet.dark;
          (if r.Fleet.roots = 0 then "0"
           else
             Printf.sprintf "%.4f"
               (float_of_int r.Fleet.logged /. float_of_int r.Fleet.roots));
        ])
      t.rows )
