(* The ingest-stats report section: close the export→import loop on
   clean data and show the reconciliation the ingestion layer performs
   (control totals, quarantine taxonomy) for each dataset. *)

module Ingest = Tangled_ingest.Ingest

type row = {
  dataset : string;
  declared : int option;
  seen : int;
  accepted : int;
  quarantined : int;
  replays : int;
  missing : int;
}

type t = { rows : row list; rendered : string }

let row_of dataset (stats : Ingest.stats) =
  {
    dataset;
    declared = stats.Ingest.declared;
    seen = stats.Ingest.seen;
    accepted = stats.Ingest.accepted;
    quarantined = stats.Ingest.quarantined_total;
    replays = stats.Ingest.replays;
    missing = stats.Ingest.missing;
  }

let compute world =
  let sessions = Ingest.sessions_of_string (Export.sessions_jsonl world) in
  let notary = Ingest.notary_of_string (Export.notary_jsonl world) in
  let stores = Ingest.stores_of_string (Export.stores_jsonl world) in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Ingest.render_stats ~title:"Ingest: session log (clean round trip)"
       sessions);
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Ingest.render_stats ~title:"Ingest: Notary DB (clean round trip)" notary);
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Ingest.render_stats ~title:"Ingest: store dumps (clean round trip)" stores);
  {
    rows =
      [
        row_of "sessions" sessions.Ingest.stats;
        row_of "notary" notary.Ingest.stats;
        row_of "stores" stores.Ingest.stats;
      ];
    rendered = Buffer.contents b;
  }

let render t = t.rendered

let csv t =
  ( [ "dataset"; "declared"; "seen"; "accepted"; "quarantined"; "replays"; "missing" ],
    List.map
      (fun r ->
        [
          r.dataset;
          (match r.declared with Some n -> string_of_int n | None -> "");
          string_of_int r.seen;
          string_of_int r.accepted;
          string_of_int r.quarantined;
          string_of_int r.replays;
          string_of_int r.missing;
        ])
      t.rows )
