module BP = Tangled_pki.Blueprint
module Pop = Tangled_device.Population
module Net = Tangled_netalyzr.Netalyzr
module Notary = Tangled_notary.Notary
module PD = Tangled_pki.Paper_data
module Obs = Tangled_obs.Obs
module Parallel = Tangled_engine.Parallel

type config = {
  seed : int;
  sessions : int;
  notary_leaves : int;
  expired_fraction : float;
  key_bits : int;
  probe_sample : float;
  jobs : int;
}

let default_config =
  {
    seed = 1;
    sessions = PD.total_sessions;
    notary_leaves = 10_000;
    expired_fraction = 0.10;
    key_bits = 384;
    probe_sample = 0.05;
    jobs = 0;
  }

let quick_config =
  { default_config with sessions = 2_000; notary_leaves = 2_000 }

type t = {
  config : config;
  jobs : int;
  universe : BP.t;
  population : Pop.t;
  dataset : Net.dataset;
  notary : Notary.t;
  timings : Obs.span list;
}

let run ?(config = default_config) ?universe () =
  let jobs = Parallel.resolve config.jobs in
  let stage_spans = ref [] in
  let stage name f =
    let v, s = Obs.spanned name f in
    stage_spans := s :: !stage_spans;
    v
  in
  let universe, population, dataset, notary =
    (* one root span per run; the four stages nest under it in the
       global span tree *)
    Obs.span "pipeline" (fun () ->
        let universe =
          stage "universe" (fun () ->
              match universe with
              | Some u -> u
              | None -> BP.build ~key_bits:config.key_bits ~seed:config.seed ())
        in
        let population =
          stage "population" (fun () ->
              Pop.generate ~target_sessions:config.sessions ~seed:(config.seed + 1)
                universe)
        in
        let dataset =
          stage "netalyzr" (fun () ->
              Net.collect ~probe_sample:config.probe_sample ~seed:(config.seed + 2)
                population)
        in
        let notary =
          (* generation streams into the arena and folds the coverage
             index incrementally — there is no separate index stage *)
          stage "notary" (fun () ->
              Notary.generate ~leaves:config.notary_leaves
                ~expired_fraction:config.expired_fraction ~jobs
                ~seed:(config.seed + 3) universe)
        in
        (universe, population, dataset, notary))
  in
  { config; jobs; universe; population; dataset; notary;
    timings = List.rev !stage_spans }

let quick =
  lazy (run ~config:quick_config ~universe:(Lazy.force BP.default) ())

let render_timings t =
  Obs.render_span_table
    ~title:(Printf.sprintf "Stage timings (jobs=%d)" t.jobs)
    (List.map (fun (s : Obs.span) -> (s.Obs.name, s.Obs.dur_s)) t.timings)
