(** The CT-visibility extension analysis: which device-store roots are
    visible in at least one log of the synthetic CT fleet, and which
    are dark everywhere.  The fleet is rebuilt deterministically from
    the world's seed, so the section is byte-identical at any
    [--jobs]. *)

type t

val compute : Pipeline.t -> t
(** Build the log fleet ({!Tangled_ct.Fleet.build}, 3 logs) over the
    world's Notary corpus and tabulate per-store visibility. *)

val fleet : t -> Tangled_ct.Fleet.t
(** The underlying fleet — the CLI reuses it for proof emission. *)

val render : t -> string
(** Per-log fleet table + per-store visibility table + dark-root
    examples. *)

val csv : t -> string list * string list list
(** Header and rows of the per-store visibility table. *)
