module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Rs = Tangled_store.Root_store
module C = Tangled_x509.Certificate
module Dn = Tangled_x509.Dn
module Net = Tangled_netalyzr.Netalyzr
module Notary = Tangled_notary.Notary
module Handshake = Tangled_tls.Handshake
module J = Tangled_util.Json
module Ts = Tangled_util.Timestamp
module Hex = Tangled_util.Hex

let take limit l =
  match limit with
  | None -> l
  | Some n -> List.filteri (fun i _ -> i < n) l

let probe_json (o : Handshake.outcome) =
  J.Obj
    [
      ("host", J.String o.Handshake.host);
      ("port", J.Int o.Handshake.port);
      ( "verdict",
        J.String
          (match o.Handshake.verdict with
          | Ok anchor -> "trusted:" ^ Dn.to_string anchor.C.subject
          | Error f -> "untrusted:" ^ Tangled_validation.Chain.failure_to_string f) );
      ("intercepted", J.Bool o.Handshake.intercepted);
      ("chain_length", J.Int (List.length o.Handshake.presented));
    ]

(* Deterministic per-session upload time, spread over the paper's
   collection window (Nov 2012 – Apr 2014) by a fixed multiplicative
   hash so exports never perturb the simulation's PRNG streams. *)
let session_timestamp (s : Net.session) =
  let window_start = Ts.of_date 2012 11 1 in
  let span = Ts.paper_epoch - window_start in
  window_start + (s.Net.session_id * 104_729 mod span)

let session_json (s : Net.session) =
  J.Obj
    [
      ("session_id", J.Int s.Net.session_id);
      ("timestamp", J.String (Ts.to_utc_string (session_timestamp s)));
      ("handset_id", J.Int s.Net.handset_id);
      ("network", J.String s.Net.identity.Net.network);
      ("public_ip", J.String s.Net.identity.Net.public_ip);
      ("model", J.String s.Net.identity.Net.model);
      ("os_version", J.String (PD.version_to_string s.Net.identity.Net.os_version));
      ("manufacturer", J.String s.Net.manufacturer);
      ("operator", J.String s.Net.operator);
      ("rooted", J.Bool s.Net.rooted);
      ("store_size", J.Int (List.length s.Net.store_keys));
      ("aosp_present", J.Int s.Net.aosp_present);
      ("additional", J.Int s.Net.additional);
      ("missing", J.Int s.Net.missing);
      ("additional_ids", J.List (List.map (fun id -> J.String id) s.Net.additional_ids));
      ("app_added", J.List (List.map (fun n -> J.String n) s.Net.app_added));
      ("probes", J.List (List.map probe_json s.Net.probes));
    ]

let exported_count limit full = match limit with Some n -> min n full | None -> full

let sessions_meta ?limit (w : Pipeline.t) =
  let d = w.Pipeline.dataset in
  [
    ("kind", J.String "sessions");
    ("tool", J.String "netalyzr-for-android (synthetic)");
    ("seed", J.Int w.Pipeline.config.Pipeline.seed);
    ("collected_at", J.String (Ts.to_utc_string Ts.paper_epoch));
    ("total_sessions", J.Int (Net.total_sessions d));
    (* the manifest's control total: how many records this document
       claims to carry — ingestion reconciles against it *)
    ("exported_sessions", J.Int (exported_count limit (Net.total_sessions d)));
    ("estimated_handsets", J.Int (Net.estimated_handsets d));
    ("unique_roots", J.Int (Net.unique_root_keys d));
  ]

let sessions_json ?limit (w : Pipeline.t) =
  let d = w.Pipeline.dataset in
  J.Obj
    (sessions_meta ?limit w
    @ [
        ( "sessions",
          J.List (take limit (Array.to_list d.Net.sessions) |> List.map session_json)
        );
      ])

let chain_json (c : Notary.chain) =
  J.Obj
    [
      ("subject", J.String (Dn.to_string c.Notary.leaf.C.subject));
      ("issuer", J.String (Dn.to_string c.Notary.leaf.C.issuer));
      ("not_before", J.String (Ts.to_utc_string c.Notary.leaf.C.not_before));
      ("not_after", J.String (Ts.to_utc_string c.Notary.leaf.C.not_after));
      ("expired", J.Bool c.Notary.expired);
      ("via_intermediate", J.Bool (c.Notary.intermediates <> []));
      ( "anchor",
        match c.Notary.anchor with
        | Some k -> J.String (Hex.encode (String.sub (Tangled_hash.Sha256.digest k) 0 8))
        | None -> J.Null );
    ]

let notary_meta ?limit (w : Pipeline.t) =
  let n = w.Pipeline.notary in
  let u = w.Pipeline.universe in
  let store_counts =
    List.map
      (fun v ->
        ( "aosp_" ^ PD.version_to_string v,
          J.Int (Notary.validated_by_store n (u.BP.aosp v)) ))
      PD.android_versions
    @ [
        ("mozilla", J.Int (Notary.validated_by_store n u.BP.mozilla));
        ("ios7", J.Int (Notary.validated_by_store n u.BP.ios7));
      ]
  in
  [
    ("kind", J.String "notary");
    ("source", J.String "icsi-certificate-notary (synthetic)");
    ("unexpired", J.Int (Notary.unexpired n));
    ("total", J.Int (Notary.total n));
    ("exported_chains", J.Int (exported_count limit (Notary.total n)));
    ("scale_vs_paper", J.Float n.Notary.scale);
    ("validated_by_store", J.Obj store_counts);
  ]

(* chains are materialised from the arena one handle at a time and
   dropped as soon as they are rendered — never the whole corpus *)
let exported_chain_records ?limit n =
  List.init (exported_count limit (Notary.total n)) (fun i ->
      chain_json (Notary.chain n i))

let notary_json ?limit (w : Pipeline.t) =
  let n = w.Pipeline.notary in
  J.Obj
    (notary_meta ?limit w @ [ ("chains", J.List (exported_chain_records ?limit n)) ])

let cert_json cert =
  J.Obj
    [
      ("subject", J.String (Dn.to_string cert.C.subject));
      ("hash_id", J.String (C.subject_hash32 cert));
      ("fingerprint_sha256", J.String (Hex.encode (C.fingerprint cert)));
      ("not_after", J.String (Ts.to_utc_string cert.C.not_after));
    ]

let official_stores (w : Pipeline.t) =
  let u = w.Pipeline.universe in
  List.map (fun v -> u.BP.aosp v) PD.android_versions @ [ u.BP.mozilla; u.BP.ios7 ]

let stores_meta (w : Pipeline.t) =
  let stores = official_stores w in
  [
    ("kind", J.String "stores");
    ( "total_certificates",
      J.Int (List.fold_left (fun acc s -> acc + Rs.cardinal s) 0 stores) );
    ("sizes", J.Obj (List.map (fun s -> (Rs.name s, J.Int (Rs.cardinal s))) stores));
  ]

let stores_json (w : Pipeline.t) =
  let store_json store =
    J.Obj
      [
        ("name", J.String (Rs.name store));
        ("size", J.Int (Rs.cardinal store));
        ("certificates", J.List (List.map cert_json (Rs.certs store)));
      ]
  in
  J.Obj (stores_meta w @ [ ("stores", J.List (List.map store_json (official_stores w))) ])

(* --- JSONL: one manifest line, then one record per line ---------------- *)

let jsonl header records =
  let b = Buffer.create 65_536 in
  Buffer.add_string b (J.to_string (J.Obj header));
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      Buffer.add_string b (J.to_string r);
      Buffer.add_char b '\n')
    records;
  Buffer.contents b

let sessions_jsonl ?limit (w : Pipeline.t) =
  let d = w.Pipeline.dataset in
  jsonl (sessions_meta ?limit w)
    (take limit (Array.to_list d.Net.sessions) |> List.map session_json)

let notary_jsonl ?limit (w : Pipeline.t) =
  let n = w.Pipeline.notary in
  jsonl (notary_meta ?limit w) (exported_chain_records ?limit n)

let stores_jsonl (w : Pipeline.t) =
  let cert_record store cert =
    match cert_json cert with
    | J.Obj fields -> J.Obj (("store", J.String (Rs.name store)) :: fields)
    | other -> other
  in
  jsonl (stores_meta w)
    (List.concat_map
       (fun s -> List.map (cert_record s) (Rs.certs s))
       (official_stores w))

let write_file path json =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string ~pretty:true json);
      output_char oc '\n')

let write_text path text =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)
