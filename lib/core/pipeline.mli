(** End-to-end assembly of the study: build the PKI universe, simulate
    the device population, run the Netalyzr collection and the Notary
    observation — everything the per-table analyses consume.

    Each stage is timed; the spans are kept on the result so [report]
    and the bench harness can surface where the wall-clock goes. *)

type config = {
  seed : int;
  sessions : int;      (** Netalyzr session target (paper: 15,970) *)
  notary_leaves : int; (** unexpired Notary leaves (paper: ~1 M) *)
  expired_fraction : float;
  key_bits : int;
  probe_sample : float;
  jobs : int;
      (** worker domains for the Notary build phase; [<= 0] means
          auto ([Domain.recommended_domain_count], capped).  Artefacts
          are byte-identical at any value. *)
}

val default_config : config
(** seed 1, 15,970 sessions, 10,000 leaves, 10% expired, 384-bit keys,
    5% probe sample, auto jobs. *)

val quick_config : config
(** A small world for tests and examples: 2,000 sessions, 2,000
    leaves. *)

type t = {
  config : config;
  jobs : int;  (** the resolved worker count actually used *)
  universe : Tangled_pki.Blueprint.t;
  population : Tangled_device.Population.t;
  dataset : Tangled_netalyzr.Netalyzr.dataset;
  notary : Tangled_notary.Notary.t;
  timings : Tangled_obs.Obs.span list;
      (** per-stage wall-clock spans (children of this run's
          ["pipeline"] root span), pipeline order: universe,
          population, netalyzr, notary, index *)
}

val run : ?config:config -> ?universe:Tangled_pki.Blueprint.t -> unit -> t
(** Fully deterministic in the config (independent of [jobs]).  Pass
    [universe] to reuse an already-built PKI (it embeds its own seed
    and key size; the config's [key_bits] is then ignored, and the
    "universe" span records only the reuse). *)

val quick : t Lazy.t
(** A process-wide world built from {!quick_config} over
    {!Tangled_pki.Blueprint.default}, shared by tests, examples and
    benches. *)

val render_timings : t -> string
(** The stage-timing table for this run — what [report]/[analyze]
    print under their "timings" section. *)
