(** The full study in one call: every table and figure rendered, and
    (optionally) each artefact's data dumped as CSV. *)

val run_all : ?csv_dir:string -> ?extensions:bool -> Pipeline.t -> string
(** Render Tables 1–6, Figures 1–3 and (unless [extensions:false]) the
    extension analyses into one report.  With [csv_dir] each artefact
    also writes [table1.csv] … [pinning.csv] there (the directory must
    exist). *)

val artefact_names : string list
(** ["table1"; ...; "figure3"] — the paper's own artefacts. *)

val extension_names : string list
(** ["minimization"; "scoping"; "pinning"; "ingest"; "ct"] — the
    extension analyses; also accepted by {!render_one}/{!csv_one}. *)

val render_one : Pipeline.t -> string -> string
(** Render a single artefact by id.
    @raise Invalid_argument on an unknown id. *)

val csv_one : Pipeline.t -> string -> string list * string list list
(** CSV header and rows for a single artefact by id.
    @raise Invalid_argument on an unknown id. *)
