let artefact_names =
  [ "table1"; "table2"; "table3"; "table4"; "table5"; "table6";
    "figure1"; "figure2"; "figure3" ]

(* The extension analyses beyond the paper's own artefacts: §5.3 store
   minimization, the §8 scoped-trust counterfactual, the §7 pinning
   counterfactual, the export→ingest reconciliation stats, and the CT
   visibility study. *)
let extension_names = [ "minimization"; "scoping"; "pinning"; "ingest"; "ct" ]

let render_one world = function
  | "table1" -> Table1.render (Table1.compute world)
  | "table2" -> Table2.render (Table2.compute world)
  | "table3" -> Table3.render (Table3.compute world)
  | "table4" -> Table4.render (Table4.compute world)
  | "table5" -> Table5.render (Table5.compute world)
  | "table6" -> Table6.render (Table6.compute world)
  | "figure1" -> Figure1.render (Figure1.compute world)
  | "figure2" -> Figure2.render (Figure2.compute world)
  | "figure3" -> Figure3.render (Figure3.compute world)
  | "minimization" -> Minimization.render (Minimization.compute world)
  | "scoping" -> Scoping.render (Scoping.compute world)
  | "pinning" -> Pinning_study.render (Pinning_study.compute world)
  | "ingest" -> Ingest_report.render (Ingest_report.compute world)
  | "ct" -> Ct_report.render (Ct_report.compute world)
  | other -> invalid_arg ("Report.render_one: unknown artefact " ^ other)

let csv_one world = function
  | "table1" -> Table1.csv (Table1.compute world)
  | "table2" -> Table2.csv (Table2.compute world)
  | "table3" -> Table3.csv (Table3.compute world)
  | "table4" -> Table4.csv (Table4.compute world)
  | "table5" -> Table5.csv (Table5.compute world)
  | "table6" -> Table6.csv (Table6.compute world)
  | "figure1" -> Figure1.csv (Figure1.compute world)
  | "figure2" -> Figure2.csv (Figure2.compute world)
  | "figure3" -> Figure3.csv (Figure3.compute world)
  | "minimization" -> Minimization.csv (Minimization.compute world)
  | "scoping" -> Scoping.csv (Scoping.compute world)
  | "pinning" -> Pinning_study.csv (Pinning_study.compute world)
  | "ingest" -> Ingest_report.csv (Ingest_report.compute world)
  | "ct" -> Ct_report.csv (Ct_report.compute world)
  | other -> invalid_arg ("Report.csv_one: unknown artefact " ^ other)

let run_all ?csv_dir ?(extensions = true) world =
  let b = Buffer.create 16_384 in
  let emit name =
    Buffer.add_string b (render_one world name);
    Buffer.add_string b "\n\n";
    match csv_dir with
    | Some dir ->
        let header, rows = csv_one world name in
        Tangled_util.Csv.write_file (Filename.concat dir (name ^ ".csv")) ~header rows
    | None -> ()
  in
  Buffer.add_string b
    "=== A Tangled Mass: reproduction report ===================================\n\n";
  List.iter emit artefact_names;
  if extensions then begin
    Buffer.add_string b
      "=== Extension analyses ====================================================\n\n";
    List.iter emit extension_names
  end;
  Buffer.contents b
