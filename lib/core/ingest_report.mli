(** The ingest-stats report section: export the world's datasets, run
    them back through the ingestion layer, and show the reconciliation
    (control totals, quarantine taxonomy) per dataset.  On clean data
    every record is accepted and the loop closes exactly. *)

type row = {
  dataset : string;
  declared : int option;  (** manifest-declared record count, if any *)
  seen : int;
  accepted : int;
  quarantined : int;
  replays : int;
  missing : int;  (** declared minus seen, when a manifest was present *)
}

type t = { rows : row list; rendered : string }

val compute : Pipeline.t -> t
(** Round-trip the session log, Notary DB and store dumps through
    {!Tangled_ingest.Ingest}. *)

val render : t -> string

val csv : t -> string list * string list list
