module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Rs = Tangled_store.Root_store
module C = Tangled_x509.Certificate
module Notary = Tangled_notary.Notary
module T = Tangled_util.Text_table

type row = {
  store : string;
  total : int;
  removable : int;
  coverage_before : float;
  coverage_after : float;
}

let minimized_store (w : Pipeline.t) store =
  let notary = w.Pipeline.notary in
  let interner = notary.Notary.interner in
  List.fold_left
    (fun acc cert ->
      let validates =
        match Tangled_engine.Interner.find interner (C.equivalence_key cert) with
        | Some id -> Notary.count_for_id notary id > 0
        | None -> false
      in
      if validates then acc
      else
        match Rs.disable acc Rs.Settings_ui cert with
        | Ok acc -> acc
        | Error _ -> acc)
    store (Rs.certs store)

let compute (w : Pipeline.t) =
  let u = w.Pipeline.universe in
  let notary = w.Pipeline.notary in
  let unexpired = float_of_int (Stdlib.max 1 (Notary.unexpired notary)) in
  let stores =
    List.map (fun v -> ("AOSP " ^ PD.version_to_string v, u.BP.aosp v)) PD.android_versions
    @ [ ("Mozilla", u.BP.mozilla); ("iOS 7", u.BP.ios7) ]
  in
  List.map
    (fun (name, store) ->
      let minimized = minimized_store w store in
      (* one coverage reduction per id set; the pre-index path scanned
         the full chain array once for each *)
      let before = Notary.validated_by_ids notary (Notary.store_ids notary store) in
      let after =
        Notary.validated_by_ids notary (Notary.store_ids notary minimized)
      in
      {
        store = name;
        total = Rs.cardinal store;
        removable = Rs.cardinal store - Rs.cardinal minimized;
        coverage_before = float_of_int before /. unexpired;
        coverage_after = float_of_int after /. unexpired;
      })
    stores

let render rows =
  T.render
    ~title:
      "Store minimization (§5.3): disabling every root that validates nothing"
    ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right ]
    ~header:[ "Store"; "Roots"; "Removable"; "Coverage before"; "Coverage after" ]
    (List.map
       (fun r ->
         [
           r.store;
           string_of_int r.total;
           Printf.sprintf "%d (%s)" r.removable
             (T.fmt_pct (float_of_int r.removable /. float_of_int (Stdlib.max 1 r.total)));
           T.fmt_pct r.coverage_before;
           T.fmt_pct r.coverage_after;
         ])
       rows)
  ^ "\nCoverage is unchanged by construction of the removable set: the attack\n"
  ^ "surface shrinks for free, the paper's §5.3 observation.\n"

let csv rows =
  ( [ "store"; "total"; "removable"; "coverage_before"; "coverage_after" ],
    List.map
      (fun r ->
        [
          r.store;
          string_of_int r.total;
          string_of_int r.removable;
          Printf.sprintf "%.6f" r.coverage_before;
          Printf.sprintf "%.6f" r.coverage_after;
        ])
      rows )
