module Fault = Tangled_fault.Fault
module Ingest = Tangled_ingest.Ingest
module Rs = Tangled_store.Root_store
module T = Tangled_util.Text_table

type accounting_row = {
  dataset : string;
  injection : Fault.injection;
  observed : string;
  accounted : bool;
}

type tolerance_row = {
  metric : string;
  clean : float;
  chaotic : float;
  rel_delta : float;
  gating : bool;
}

type outcome = {
  seed : int;
  rate : float;
  tolerance : float;
  sessions : Ingest.session_view Ingest.ingest;
  notary : Ingest.chain_view Ingest.ingest;
  stores : Ingest.cert_view Ingest.ingest;
  accounting : accounting_row list;
  tolerances : tolerance_row list;
  table1_exact : bool;
  accounted_all : bool;
  within_tolerance : bool;
  ok : bool;
}

(* Which quarantine labels may legitimately result from each fault
   kind.  A structural-prefix bit flip either breaks the syntax or
   renames the leading required field; a truncation always ends the
   record mid-value. *)
let observed_matches (inj : Fault.injection) (reason : Ingest.reason) =
  match (inj.Fault.kind, reason) with
  | Fault.Truncate, Ingest.Truncated_record -> true
  | Fault.Duplicate, Ingest.Duplicate_record _ -> true
  | Fault.Identity_conflict, Ingest.Conflicting_record _ -> true
  | Fault.Clock_skew, Ingest.Clock_skew _ -> true
  | Fault.Missing_field, Ingest.Missing_field f -> inj.Fault.field = Some f
  | Fault.Type_confusion, Ingest.Type_mismatch f -> inj.Fault.field = Some f
  | ( Fault.Bit_flip,
      ( Ingest.Malformed_json _ | Ingest.Control_bytes _ | Ingest.Missing_field _
      | Ingest.Type_mismatch _ | Ingest.Truncated_record | Ingest.Bad_value _ ) )
    ->
      (* a structural-prefix flip can also land on a control byte
         (e.g. '{' -> DEL), which the pre-parse binary-junk check now
         catches first *)
      true
  | _ -> false

let account dataset (ledger : Fault.injection list) (result : 'a Ingest.ingest) =
  let by_line = Hashtbl.create 64 in
  List.iter
    (fun (q : Ingest.quarantined) -> Hashtbl.replace by_line q.Ingest.line q)
    result.Ingest.quarantine;
  let drops =
    List.length (List.filter (fun i -> i.Fault.kind = Fault.Drop) ledger)
  in
  let drops_reconciled = result.Ingest.stats.Ingest.missing = drops in
  List.map
    (fun (inj : Fault.injection) ->
      match inj.Fault.out_line with
      | None ->
          {
            dataset;
            injection = inj;
            observed =
              Printf.sprintf "reconciled: %d missing vs %d dropped"
                result.Ingest.stats.Ingest.missing drops;
            accounted = drops_reconciled;
          }
      | Some line -> (
          match Hashtbl.find_opt by_line line with
          | None ->
              { dataset; injection = inj; observed = "not quarantined"; accounted = false }
          | Some q ->
              {
                dataset;
                injection = inj;
                observed = Ingest.reason_label q.Ingest.reason;
                accounted = observed_matches inj q.Ingest.reason;
              }))
    ledger

let rel_delta clean chaotic =
  if clean = 0.0 then Float.abs chaotic
  else Float.abs (chaotic -. clean) /. Float.abs clean

let share_metrics label ranked_clean ranked_chaotic n_clean n_chaotic top =
  let chaotic_count name =
    match List.assoc_opt name ranked_chaotic with Some c -> c | None -> 0
  in
  List.filteri (fun i _ -> i < top) ranked_clean
  |> List.map (fun (name, count) ->
         let clean = float_of_int count /. float_of_int (max 1 n_clean) in
         let chaotic =
           float_of_int (chaotic_count name) /. float_of_int (max 1 n_chaotic)
         in
         {
           metric = Printf.sprintf "%s share: %s" label name;
           clean;
           chaotic;
           rel_delta = rel_delta clean chaotic;
           gating = true;
         })

let fraction_metric ?(gating = true) metric clean chaotic =
  { metric; clean; chaotic; rel_delta = rel_delta clean chaotic; gating }

let run ?(seed = 12) ?(rate = 0.05) ?(tolerance = 0.01) (w : Pipeline.t) =
  (* export the pristine world *)
  let sessions_doc = Export.sessions_jsonl w in
  let notary_doc = Export.notary_jsonl w in
  let stores_doc = Export.stores_jsonl w in
  (* damage the field data; the store dump is reference data *)
  let sessions_bad, sessions_ledger =
    Fault.inject ~seed ~rate sessions_doc
  in
  let notary_bad, notary_ledger =
    Fault.inject ~seed:(seed + 1) ~rate notary_doc
  in
  (* re-ingest everything *)
  let sessions = Ingest.sessions_of_string sessions_bad in
  let notary = Ingest.notary_of_string notary_bad in
  let stores = Ingest.stores_of_string stores_doc in
  let clean_sessions = Ingest.sessions_of_string sessions_doc in
  let clean_notary = Ingest.notary_of_string notary_doc in
  (* fault accounting *)
  let accounting =
    account "sessions" sessions_ledger sessions
    @ account "notary" notary_ledger notary
  in
  let accounted_all = List.for_all (fun r -> r.accounted) accounting in
  (* headline tolerance *)
  let tolerances =
    [
      fraction_metric "extended-store fraction"
        (Ingest.extended_fraction clean_sessions)
        (Ingest.extended_fraction sessions);
      (* The rooted and Notary fractions are diagnostics: their support
         is small enough at quick scale that ~1% sampling drift from
         record-destroying faults is expected, so they inform but do
         not gate the verdict. *)
      fraction_metric ~gating:false "rooted fraction"
        (Ingest.rooted_fraction clean_sessions)
        (Ingest.rooted_fraction sessions);
      fraction_metric ~gating:false "notary unexpired fraction"
        (float_of_int (Ingest.unexpired clean_notary)
        /. float_of_int (max 1 (Ingest.total_chains clean_notary)))
        (float_of_int (Ingest.unexpired notary)
        /. float_of_int (max 1 (Ingest.total_chains notary)));
      fraction_metric ~gating:false "notary validated fraction"
        (Ingest.validated_fraction clean_notary)
        (Ingest.validated_fraction notary);
      fraction_metric ~gating:false "notary via-intermediate fraction"
        (Ingest.via_intermediate_fraction clean_notary)
        (Ingest.via_intermediate_fraction notary);
    ]
    @ share_metrics "device"
        (Ingest.sessions_by_model clean_sessions)
        (Ingest.sessions_by_model sessions)
        (Ingest.total_sessions clean_sessions)
        (Ingest.total_sessions sessions) 5
    @ share_metrics "manufacturer"
        (Ingest.sessions_by_manufacturer clean_sessions)
        (Ingest.sessions_by_manufacturer sessions)
        (Ingest.total_sessions clean_sessions)
        (Ingest.total_sessions sessions) 5
  in
  let within_tolerance =
    List.for_all
      (fun t -> (not t.gating) || t.rel_delta <= tolerance +. 1e-9)
      tolerances
  in
  (* Table 1 from cleanly-ingested reference data must survive exactly *)
  let expected_sizes =
    List.map (fun s -> (Rs.name s, Rs.cardinal s)) (Export.official_stores w)
  in
  let table1_exact =
    let got = Ingest.store_sizes stores in
    List.length got = List.length expected_sizes
    && List.for_all
         (fun (name, size) -> List.assoc_opt name got = Some size)
         expected_sizes
  in
  {
    seed;
    rate;
    tolerance;
    sessions;
    notary;
    stores;
    accounting;
    tolerances;
    table1_exact;
    accounted_all;
    within_tolerance;
    ok = accounted_all && within_tolerance && table1_exact;
  }

let render (o : outcome) =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    (Printf.sprintf
       "=== Chaos run: fault rate %.3f, seed %d, tolerance %.1f%% ===\n\n" o.rate
       o.seed (100.0 *. o.tolerance));
  Buffer.add_string b (Ingest.render_stats ~title:"Session-log ingest" o.sessions);
  Buffer.add_char b '\n';
  Buffer.add_string b (Ingest.render_stats ~title:"Notary-DB ingest" o.notary);
  Buffer.add_char b '\n';
  Buffer.add_string b (Ingest.render_stats ~title:"Store-dump ingest" o.stores);
  Buffer.add_char b '\n';
  (* injections by kind *)
  let kinds = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let k = Fault.kind_to_string r.injection.Fault.kind in
      let hit, ok = Option.value ~default:(0, 0) (Hashtbl.find_opt kinds k) in
      Hashtbl.replace kinds k (hit + 1, ok + if r.accounted then 1 else 0))
    o.accounting;
  let rows =
    Hashtbl.fold (fun k (n, ok) acc -> (k, n, ok) :: acc) kinds []
    |> List.sort (fun (_, a, _) (_, b, _) -> Stdlib.compare b a)
    |> List.map (fun (k, n, ok) -> [ k; string_of_int n; string_of_int ok ])
  in
  if rows <> [] then begin
    Buffer.add_string b
      (T.render ~title:"Fault accounting" ~aligns:[ T.Left; T.Right; T.Right ]
         ~header:[ "fault kind"; "injected"; "accounted" ]
         rows);
    Buffer.add_char b '\n'
  end;
  List.iter
    (fun r ->
      if not r.accounted then
        Buffer.add_string b
          (Printf.sprintf "  UNACCOUNTED: %s record %d (%s): %s, observed %s\n"
             r.dataset r.injection.Fault.record
             (Fault.kind_to_string r.injection.Fault.kind)
             r.injection.Fault.note r.observed))
    o.accounting;
  Buffer.add_string b
    (T.render ~title:"Headline tolerance (damaged vs clean)"
       ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Left ]
       ~header:[ "metric"; "clean"; "damaged"; "rel delta"; "gates" ]
       (List.map
          (fun t ->
            [ t.metric; Printf.sprintf "%.4f" t.clean;
              Printf.sprintf "%.4f" t.chaotic;
              Printf.sprintf "%.2f%%" (100.0 *. t.rel_delta);
              (if t.gating then "yes" else "info") ])
          o.tolerances));
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Printf.sprintf "Table 1 store sizes from ingested reference data: %s\n"
       (if o.table1_exact then "exact match" else "MISMATCH"));
  Buffer.add_string b
    (Printf.sprintf "Verdict: %s\n"
       (if o.ok then "OK — every fault accounted, headline numbers stable"
        else "FAILED"));
  Buffer.contents b
