(** End-to-end chaos harness: export the world, damage the exports
    with {!Tangled_fault.Fault}, re-ingest with
    {!Tangled_ingest.Ingest}, then audit the result two ways —

    {ul
    {- {e accounting}: every injected fault must be individually
       visible in the ingestion output (the right quarantine taxonomy
       label at the right line, or a reconciled missing record for
       drops);}
    {- {e tolerance}: the headline analysis numbers recomputed from
       the damaged-then-ingested data must stay within a relative
       tolerance of the clean run (Table 1 store sizes, Table 2
       device/manufacturer shares, the extended-store fraction and the
       Notary fractions).}}

    Faults are injected into the field data (session log and Notary
    DB); the store dump is reference data shipped with the instrument
    and is ingested clean, so Table 1 must survive exactly. *)

type accounting_row = {
  dataset : string;  (** "sessions" | "notary" *)
  injection : Tangled_fault.Fault.injection;
  observed : string;  (** what ingestion reported for this fault *)
  accounted : bool;
}

type tolerance_row = {
  metric : string;
  clean : float;
  chaotic : float;
  rel_delta : float;
  gating : bool;
      (** Gating rows (Table 2 shares, extended-store fraction) must
          stay within tolerance for the run to pass; the rest are
          informational diagnostics whose support at quick scale is too
          small for a 1% relative bound to be statistically meaningful. *)
}

type outcome = {
  seed : int;
  rate : float;
  tolerance : float;
  sessions : Tangled_ingest.Ingest.session_view Tangled_ingest.Ingest.ingest;
  notary : Tangled_ingest.Ingest.chain_view Tangled_ingest.Ingest.ingest;
  stores : Tangled_ingest.Ingest.cert_view Tangled_ingest.Ingest.ingest;
  accounting : accounting_row list;
  tolerances : tolerance_row list;
  table1_exact : bool;  (** ingested store sizes equal Table 1 exactly *)
  accounted_all : bool;
  within_tolerance : bool;
  ok : bool;
}

val run : ?seed:int -> ?rate:float -> ?tolerance:float -> Pipeline.t -> outcome
(** Defaults: seed 12, rate 0.05, tolerance 0.01 (1% relative).
    Deterministic in [seed]; never raises.  The tolerance bound is
    sampling-noise-limited: record-destroying faults subsample the
    session log, so gating shares need a few hundred sessions of
    support each — 20,000 sessions comfortably clears 1%. *)

val render : outcome -> string
