(* Fixed-capacity CLOCK cache over flat arrays.

   Layout: four parallel arrays (key, value, slot epoch, reference
   bit) plus a key→slot index.  The clock hand walks the ring on
   insertion; a live slot with its reference bit set gets a second
   chance (bit cleared, hand moves on), a live slot without one is
   evicted, and a slot whose epoch is stale is free — reusing it is
   reclamation, not eviction.  Nothing here allocates per entry
   beyond the value itself, so capacity bounds resident memory for
   the life of the process.

   Epoch invalidation drops the whole index in one call and leaves
   the arrays to be overwritten lazily; the per-slot epoch is what
   lets the hand tell "dead since the bump" from "live right now". *)

module Obs = Tangled_obs.Obs

type 'v t = {
  name : string;
  cap : int;
  keys : string array;
  values : 'v option array;
  slot_epoch : int array; (* = cur_epoch iff the slot is live *)
  refbit : Bytes.t;
  index : (string, int) Hashtbl.t;
  mutable hand : int;
  mutable cur_epoch : int;
  hits : Obs.counter;
  misses : Obs.counter;
  evictions : Obs.counter;
}

(* min_int never equals a caller epoch, so freshly created or cleared
   slots read as free regardless of set_epoch history *)
let free_epoch = min_int

let create ~name ~capacity () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    name;
    cap = capacity;
    keys = Array.make capacity "";
    values = Array.make capacity None;
    slot_epoch = Array.make capacity free_epoch;
    refbit = Bytes.make capacity '\000';
    index = Hashtbl.create (min capacity 1024);
    hand = 0;
    cur_epoch = 0;
    hits = Obs.counter (Printf.sprintf "cache.%s.hits" name);
    misses = Obs.counter (Printf.sprintf "cache.%s.misses" name);
    evictions = Obs.counter (Printf.sprintf "cache.%s.evictions" name);
  }

let capacity t = t.cap
let length t = Hashtbl.length t.index
let epoch t = t.cur_epoch

let bump_epoch t =
  t.cur_epoch <- t.cur_epoch + 1;
  Hashtbl.reset t.index

let set_epoch t e =
  if e <> t.cur_epoch then begin
    t.cur_epoch <- e;
    Hashtbl.reset t.index
  end

let clear t =
  Hashtbl.reset t.index;
  Array.fill t.slot_epoch 0 t.cap free_epoch;
  t.hand <- 0

let find t key =
  match Hashtbl.find_opt t.index key with
  | Some slot ->
      Obs.incr t.hits;
      Bytes.unsafe_set t.refbit slot '\001';
      t.values.(slot)
  | None ->
      Obs.incr t.misses;
      None

(* advance the hand to a usable slot: free slots are taken silently,
   referenced live slots get their second chance, unreferenced live
   slots are evicted (and counted) *)
let take_slot t =
  let rec go () =
    let i = t.hand in
    t.hand <- (if i + 1 = t.cap then 0 else i + 1);
    if t.slot_epoch.(i) <> t.cur_epoch then i
    else if Bytes.unsafe_get t.refbit i = '\001' then begin
      Bytes.unsafe_set t.refbit i '\000';
      go ()
    end
    else begin
      Hashtbl.remove t.index t.keys.(i);
      Obs.incr t.evictions;
      i
    end
  in
  go ()

let add t key v =
  match Hashtbl.find_opt t.index key with
  | Some slot ->
      t.values.(slot) <- Some v;
      Bytes.unsafe_set t.refbit slot '\001'
  | None ->
      let slot = take_slot t in
      t.keys.(slot) <- key;
      t.values.(slot) <- Some v;
      t.slot_epoch.(slot) <- t.cur_epoch;
      Bytes.unsafe_set t.refbit slot '\001';
      Hashtbl.replace t.index key slot

let find_or_add t key compute =
  match find t key with
  | Some v -> v
  | None ->
      let v = compute () in
      add t key v;
      v

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
  epoch : int;
}

let stats (t : _ t) =
  {
    hits = Obs.value t.hits;
    misses = Obs.value t.misses;
    evictions = Obs.value t.evictions;
    entries = Hashtbl.length t.index;
    capacity = t.cap;
    epoch = t.cur_epoch;
  }
