(** Sized, evicting decision caches with epoch invalidation.

    A cache is a fixed-capacity CLOCK ring: entries live in flat
    arrays, eviction walks a clock hand over second-chance reference
    bits, and no per-entry list cells are ever allocated — the steady
    state is allocation-free apart from the values themselves.  This
    is the bounded replacement for the unbounded per-domain memo
    tables the hot paths grew up with: memory is provably capped at
    [capacity] entries no matter how long a serve session or scale
    run lives.

    {b Epochs.} [bump_epoch] logically invalidates every current
    entry in O(1): the key index is dropped and slots are reclaimed
    lazily as the hand reuses them.  Stale slots are not evictions —
    the eviction counter only counts live entries displaced by
    capacity pressure, so "evictions over capacity" is a meaningful
    invariant (it must be zero when the working set fits).

    {b Determinism.} A cache stores decisions, not state: a lookup
    may only ever return a value some earlier [add] stored for the
    same key in the same epoch.  Callers keep report paths
    byte-identical by keying entries on every input that feeds the
    computation (the QCheck suite enforces cached-vs-uncached
    equivalence for the chain-validation and serve users).

    {b Concurrency.} Instances are single-domain (no internal locks);
    parallel users hold one instance per domain, e.g. under
    [Domain.DLS].  The hit/miss/eviction counters are process-global
    {!Tangled_obs.Obs} atomics shared by every instance with the same
    [name], so fleet-wide rates aggregate for free — and they surface
    under the trace's ["volatile"] member, keeping the stable obs
    view byte-identical at any [--jobs]. *)

type 'v t

val create : name:string -> capacity:int -> unit -> 'v t
(** [create ~name ~capacity ()] is an empty cache holding at most
    [capacity] entries.  [name] keys the shared obs counters
    ([cache.<name>.hits] / [.misses] / [.evictions]).
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'v t -> int

val length : 'v t -> int
(** Live entries in the current epoch — always [<= capacity]. *)

val epoch : 'v t -> int
(** The current epoch, starting at 0. *)

val bump_epoch : 'v t -> unit
(** Invalidate every current entry; slots are reclaimed lazily. *)

val set_epoch : 'v t -> int -> unit
(** [set_epoch t e] jumps to epoch [e]; a no-op when [e] equals the
    current epoch, otherwise equivalent to invalidation.  Used to
    sync a per-domain instance with a process-global epoch. *)

val find : 'v t -> string -> 'v option
(** [find t key] is the cached value, counting a hit or miss and
    marking the entry recently-used on hit. *)

val add : 'v t -> string -> 'v -> unit
(** [add t key v] installs or overwrites [key]'s entry in the current
    epoch, evicting via CLOCK second-chance when full. *)

val find_or_add : 'v t -> string -> (unit -> 'v) -> 'v
(** [find_or_add t key compute] is [find] falling back to [compute]
    (whose result is installed).  [compute] runs on miss only. *)

val clear : 'v t -> unit
(** Drop all entries and reset the hand; epoch is unchanged and no
    evictions are counted. *)

type stats = {
  hits : int;       (** process-global across same-named instances *)
  misses : int;     (** process-global across same-named instances *)
  evictions : int;  (** process-global across same-named instances *)
  entries : int;    (** this instance, current epoch *)
  capacity : int;
  epoch : int;
}

val stats : 'v t -> stats
