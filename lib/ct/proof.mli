(** Pure RFC 6962 proof verification.

    Everything here is a function of its arguments alone — verifiers
    hold no log handle and share no state with {!Log}.  The algorithms
    are the iterative checks of RFC 9162 §2.1.3.2 / §2.1.4.2,
    implemented independently of the tree construction in {!Log} so the
    two sides cross-check each other. *)

val empty_root : string
(** Head of the empty tree: SHA-256 of the empty string. *)

val leaf_hash : string -> string
(** Domain-separated leaf hash: SHA-256 (0x00 || data). *)

val verify_inclusion :
  leaf:string ->
  index:int ->
  tree_size:int ->
  proof:string list ->
  root:string ->
  bool
(** [verify_inclusion ~leaf ~index ~tree_size ~proof ~root] checks that
    the raw leaf bytes sit at [index] in the tree of [tree_size] leaves
    whose head is [root], given the bottom-up audit [proof]. *)

val verify_consistency :
  first:int ->
  second:int ->
  first_root:string ->
  second_root:string ->
  proof:string list ->
  bool
(** Checks that the tree of size [first] with head [first_root] is a
    prefix of the tree of size [second] with head [second_root]. *)
