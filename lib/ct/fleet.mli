(** A fleet of CT logs with per-log accepted-root policies, fed from
    the Notary's arena corpus.

    Each log admits a seeded Bernoulli subset of the universe's public
    roots (admission fractions spread across the fleet, so early logs
    are choosier than late ones — mirroring the divergence measured in
    {e Characterizing the Root Landscape of Certificate Transparency
    Logs}).  The submission pass streams every arena chain once, in
    handle order, into each log whose policy accepts its verified
    anchor; the pass is sequential over the jobs-invariant arena, so
    log heads are byte-identical at any [--jobs]. *)

type entry = {
  log : Log.t;
  policy : Tangled_engine.Id_set.t;
      (** interned root ids this log accepts submissions under *)
  accepted_roots : int;  (** [Id_set.cardinal policy] at build *)
  mutable submitted : int;
      (** chains appended to this log by the submission pass *)
}

type t

val build :
  ?n_logs:int ->
  ?min_admit:float ->
  ?max_admit:float ->
  seed:int ->
  Tangled_pki.Blueprint.t ->
  Tangled_notary.Notary.t ->
  t
(** Build [n_logs] (default 3) logs with admission fractions spread
    linearly over [[min_admit, max_admit]] (defaults 0.55–0.90), then
    run the submission pass over the whole corpus.  Deterministic in
    [seed]; independent of how the notary was parallelised. *)

val entries : t -> entry array
val n_logs : t -> int

val find_log : t -> string -> entry option
(** Lookup by log name (["ct0"], ["ct1"], ...). *)

val leaf_der : t -> entry -> int -> string option
(** [leaf_der t e i] is the raw DER bytes of leaf [i] of [e.log] — the
    submission the log hashed — or [None] out of range.  Lets callers
    re-verify inclusion proofs from first principles. *)

val logged_root_ids : t -> Tangled_engine.Id_set.t
(** Roots with at least one submitted certificate in at least one log —
    the "CT-visible" set. *)

type store_row = {
  store_name : string;
  roots : int;          (** enabled roots in the store *)
  accepted : int;       (** of those, accepted by >= 1 log policy *)
  logged : int;         (** of those, with >= 1 logged certificate *)
  dark : int;           (** roots - logged: invisible in every log *)
  dark_names : string list;
      (** display names of the dark roots (sorted), capped at 8 *)
}

val store_visibility : t -> string -> Tangled_store.Root_store.t -> store_row
(** Visibility of one store's enabled membership against the fleet. *)

val official_visibility : t -> store_row list
(** {!store_visibility} over the official stores, fixed order:
    AOSP 4.1–4.4, Mozilla, iOS 7. *)
