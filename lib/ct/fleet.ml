module Prng = Tangled_util.Prng
module Id_set = Tangled_engine.Id_set
module Blueprint = Tangled_pki.Blueprint
module PD = Tangled_pki.Paper_data
module Root_store = Tangled_store.Root_store
module Notary = Tangled_notary.Notary
module Arena = Tangled_x509.Arena

type handles = { mutable a : int array; mutable n : int }

let handles_create () = { a = Array.make 64 0; n = 0 }

let handles_push h v =
  if h.n = Array.length h.a then begin
    let a' = Array.make (2 * h.n) 0 in
    Array.blit h.a 0 a' 0 h.n;
    h.a <- a'
  end;
  h.a.(h.n) <- v;
  h.n <- h.n + 1

type entry = {
  log : Log.t;
  policy : Id_set.t;
  accepted_roots : int;
  mutable submitted : int;
}

type t = {
  universe : Blueprint.t;
  notary : Notary.t;
  fleet : entry array;
  handle_maps : handles array;  (** per entry: leaf index -> arena handle *)
  logged : Id_set.t;
}

let entries t = t.fleet
let n_logs t = Array.length t.fleet

let build ?(n_logs = 3) ?(min_admit = 0.55) ?(max_admit = 0.90) ~seed
    (universe : Blueprint.t) notary =
  if n_logs < 1 then invalid_arg "Fleet.build: n_logs must be >= 1";
  let base = Prng.create seed in
  let n_roots = Array.length universe.Blueprint.roots in
  let fleet =
    Array.init n_logs (fun j ->
        let frac =
          if n_logs = 1 then max_admit
          else
            min_admit
            +. (max_admit -. min_admit)
               *. float_of_int j
               /. float_of_int (n_logs - 1)
        in
        let rng = Prng.split base (Printf.sprintf "ct-log-%d" j) in
        let policy = Id_set.create n_roots in
        Array.iter
          (fun (r : Blueprint.root) ->
            if Prng.bernoulli rng frac then Id_set.add policy r.Blueprint.id)
          universe.Blueprint.roots;
        {
          log = Log.create ~name:(Printf.sprintf "ct%d" j) ();
          policy;
          accepted_roots = Id_set.cardinal policy;
          submitted = 0;
        })
  in
  let handle_maps = Array.init n_logs (fun _ -> handles_create ()) in
  let logged = Id_set.create n_roots in
  let arena = Notary.arena notary in
  (* Submission pass: handle order over the jobs-invariant arena, so
     every log's head is independent of how the corpus was built. *)
  let total = Notary.total notary in
  for h = 0 to total - 1 do
    let anchor = Notary.anchor_id notary h in
    if anchor >= 0 then begin
      let der = lazy (Arena.der arena h) in
      Array.iteri
        (fun j e ->
          if Id_set.mem e.policy anchor then begin
            let (_ : int) = Log.append e.log (Lazy.force der) in
            handles_push handle_maps.(j) h;
            e.submitted <- e.submitted + 1;
            Id_set.add logged anchor
          end)
        fleet
    end
  done;
  { universe; notary; fleet; handle_maps; logged }

let find_log t name =
  let found = ref None in
  Array.iter
    (fun e -> if !found = None && String.equal (Log.name e.log) name then found := Some e)
    t.fleet;
  !found

let leaf_der t e i =
  let j = ref (-1) in
  Array.iteri (fun k e' -> if e' == e then j := k) t.fleet;
  if !j < 0 then None
  else begin
    let hm = t.handle_maps.(!j) in
    if i < 0 || i >= hm.n then None
    else Some (Arena.der (Notary.arena t.notary) hm.a.(i))
  end

let logged_root_ids t = t.logged

type store_row = {
  store_name : string;
  roots : int;
  accepted : int;
  logged : int;
  dark : int;
  dark_names : string list;
}

let store_visibility t name store =
  let ids = Root_store.id_set t.universe.Blueprint.interner store in
  let roots = Id_set.cardinal ids in
  let accepted = ref 0 and logged = ref 0 in
  let dark = ref [] in
  Id_set.iter
    (fun id ->
      let in_any =
        Array.exists (fun e -> Id_set.mem e.policy id) t.fleet
      in
      if in_any then incr accepted;
      if Id_set.mem t.logged id then incr logged
      else begin
        let display =
          match
            if id < Array.length t.universe.Blueprint.root_of_id then
              t.universe.Blueprint.root_of_id.(id)
            else None
          with
          | Some r -> r.Blueprint.display_name
          | None -> Printf.sprintf "id:%d" id
        in
        dark := display :: !dark
      end)
    ids;
  let dark_names =
    let all = List.sort String.compare !dark in
    List.filteri (fun i _ -> i < 8) all
  in
  {
    store_name = name;
    roots;
    accepted = !accepted;
    logged = !logged;
    dark = roots - !logged;
    dark_names;
  }

let official_visibility t =
  let u = t.universe in
  List.map
    (fun (name, store) -> store_visibility t name store)
    ([
       ("AOSP 4.1", u.Blueprint.aosp PD.V4_1);
       ("AOSP 4.2", u.Blueprint.aosp PD.V4_2);
       ("AOSP 4.3", u.Blueprint.aosp PD.V4_3);
       ("AOSP 4.4", u.Blueprint.aosp PD.V4_4);
       ("Mozilla", u.Blueprint.mozilla);
       ("iOS 7", u.Blueprint.ios7);
     ])
