module Sha256 = Tangled_hash.Sha256

let empty_root = Sha256.digest ""

let leaf_hash data =
  let ctx = Sha256.init () in
  Sha256.feed ctx "\x00";
  Sha256.feed ctx data;
  Sha256.finalize ctx

let node_hash l r =
  let ctx = Sha256.init () in
  Sha256.feed ctx "\x01";
  Sha256.feed ctx l;
  Sha256.feed ctx r;
  Sha256.finalize ctx

(* RFC 9162 §2.1.3.2. *)
let verify_inclusion ~leaf ~index ~tree_size ~proof ~root =
  if index < 0 || tree_size < 1 || index >= tree_size then false
  else begin
    let fn = ref index and sn = ref (tree_size - 1) in
    let r = ref (leaf_hash leaf) in
    let ok = ref true in
    List.iter
      (fun p ->
        if !ok then begin
          if !sn = 0 then ok := false
          else begin
            if !fn land 1 = 1 || !fn = !sn then begin
              r := node_hash p !r;
              if !fn land 1 = 0 then
                while not (!fn land 1 = 1 || !fn = 0) do
                  fn := !fn lsr 1;
                  sn := !sn lsr 1
                done
            end
            else r := node_hash !r p;
            fn := !fn lsr 1;
            sn := !sn lsr 1
          end
        end)
      proof;
    !ok && !sn = 0 && String.equal !r root
  end

(* RFC 9162 §2.1.4.2. *)
let verify_consistency ~first ~second ~first_root ~second_root ~proof =
  if first < 1 || first > second then false
  else if first = second then
    proof = [] && String.equal first_root second_root
  else begin
    (* When [first] is an exact power of two, the first tree's head is
       itself the first component of the path. *)
    let proof =
      if first land (first - 1) = 0 then first_root :: proof else proof
    in
    match proof with
    | [] -> false
    | c0 :: rest ->
      let fn = ref (first - 1) and sn = ref (second - 1) in
      while !fn land 1 = 1 do
        fn := !fn lsr 1;
        sn := !sn lsr 1
      done;
      let fr = ref c0 and sr = ref c0 in
      let ok = ref true in
      List.iter
        (fun c ->
          if !ok then begin
            if !sn = 0 then ok := false
            else begin
              if !fn land 1 = 1 || !fn = !sn then begin
                fr := node_hash c !fr;
                sr := node_hash c !sr;
                if !fn land 1 = 0 then
                  while not (!fn land 1 = 1 || !fn = 0) do
                    fn := !fn lsr 1;
                    sn := !sn lsr 1
                  done
              end
              else sr := node_hash !sr c;
              fn := !fn lsr 1;
              sn := !sn lsr 1
            end
          end)
        rest;
      !ok && !sn = 0
      && String.equal !fr first_root
      && String.equal !sr second_root
  end
