(** Append-only RFC 6962 Merkle tree log.

    The log keeps a {e compaction frontier}: one dynamic array of node
    hashes per tree level, holding every complete subtree root built so
    far.  Appending a leaf touches O(log n) amortized nodes — no full
    rebuilds — and inclusion/consistency proofs are assembled from the
    stored nodes without rehashing leaves.

    Leaf and interior hashes are domain-separated per RFC 6962
    ([0x00] / [0x01] prefixes); those hash functions are deliberately
    {e not} exported — verifiers live in {!Proof} and share no state
    with any log. *)

type t

val create : ?name:string -> unit -> t
(** Fresh empty log. [name] defaults to ["ct"]. *)

val name : t -> string

val size : t -> int
(** Number of leaves appended so far. *)

val append : t -> string -> int
(** [append t data] appends one leaf entry (raw bytes) and returns its
    leaf index.  O(log n) amortized. *)

val head : t -> string
(** Merkle tree head (32 raw bytes) over the current size.  The empty
    tree hashes to SHA-256 of the empty string, per RFC 6962. *)

val head_hex : t -> string

val head_at : t -> int -> (string, string) result
(** [head_at t n] is the tree head as it was when the log held exactly
    [n] leaves ([0 <= n <= size t]). *)

val inclusion_proof :
  t -> index:int -> tree_size:int -> (string list, string) result
(** Audit path for leaf [index] in the tree of the first [tree_size]
    leaves, bottom-up, each element 32 raw bytes.  Errors if
    [tree_size] exceeds the log size or [index >= tree_size]. *)

val consistency_proof :
  t -> first:int -> second:int -> (string list, string) result
(** Proof that the tree of size [first] is a prefix of the tree of size
    [second] ([1 <= first <= second <= size t]).  [first = second]
    yields the empty proof. *)
