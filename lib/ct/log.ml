module Sha256 = Tangled_hash.Sha256

(* One dynamic array of 32-byte node hashes per tree level.  Level 0
   holds leaf hashes; level [i+1] holds the hash of every complete pair
   at level [i], so [levels.(i+1).n = levels.(i).n / 2] always. *)
type dyn = { mutable a : string array; mutable n : int }

type t = {
  log_name : string;
  mutable levels : dyn array;
  mutable size : int;
}

let dyn_create () = { a = Array.make 16 ""; n = 0 }

let dyn_push d h =
  if d.n = Array.length d.a then begin
    let a' = Array.make (2 * d.n) "" in
    Array.blit d.a 0 a' 0 d.n;
    d.a <- a'
  end;
  d.a.(d.n) <- h;
  d.n <- d.n + 1

let create ?(name = "ct") () =
  { log_name = name; levels = [| dyn_create () |]; size = 0 }

let name t = t.log_name
let size t = t.size

let leaf_hash data =
  let ctx = Sha256.init () in
  Sha256.feed ctx "\x00";
  Sha256.feed ctx data;
  Sha256.finalize ctx

let node_hash l r =
  let ctx = Sha256.init () in
  Sha256.feed ctx "\x01";
  Sha256.feed ctx l;
  Sha256.feed ctx r;
  Sha256.finalize ctx

let ensure_level t i =
  if i >= Array.length t.levels then begin
    let lv = Array.make (i + 1) (dyn_create ()) in
    Array.blit t.levels 0 lv 0 (Array.length t.levels);
    for j = Array.length t.levels to i do
      lv.(j) <- dyn_create ()
    done;
    t.levels <- lv
  end

(* After pushing at level [i], bubble: whenever a level's population
   turns even its two newest nodes form a fresh complete pair. *)
let rec bubble t i =
  let d = t.levels.(i) in
  if d.n land 1 = 0 && d.n > 0 then begin
    let h = node_hash d.a.(d.n - 2) d.a.(d.n - 1) in
    ensure_level t (i + 1);
    dyn_push t.levels.(i + 1) h;
    bubble t (i + 1)
  end

let append t data =
  let idx = t.size in
  dyn_push t.levels.(0) (leaf_hash data);
  bubble t 0;
  t.size <- idx + 1;
  idx

let empty_root = Sha256.digest ""

let rec log2_floor n = if n <= 1 then 0 else 1 + log2_floor (n lsr 1)

(* Largest power of two strictly less than n (n >= 2). *)
let split_point n =
  let k = ref 1 in
  while !k * 2 < n do
    k := !k * 2
  done;
  !k

(* Root of the subtree over leaves [lo, lo+n).  When the range is a
   complete aligned subtree the node is sitting in the frontier;
   otherwise split at the largest power of two per RFC 6962 MTH. *)
let rec range_root t lo n =
  if n = 1 then t.levels.(0).a.(lo)
  else if n land (n - 1) = 0 && lo land (n - 1) = 0 then begin
    let j = log2_floor n in
    t.levels.(j).a.(lo asr j)
  end
  else begin
    let k = split_point n in
    node_hash (range_root t lo k) (range_root t (lo + k) (n - k))
  end

let head_at t n =
  if n < 0 || n > t.size then
    Error (Printf.sprintf "tree size %d out of range (log holds %d)" n t.size)
  else if n = 0 then Ok empty_root
  else Ok (range_root t 0 n)

let head t = if t.size = 0 then empty_root else range_root t 0 t.size
let head_hex t = Tangled_util.Hex.encode (head t)

(* RFC 6962 PATH(m, D[lo:hi]): audit path bottom-up. *)
let rec path t lo hi leaf =
  let n = hi - lo in
  if n <= 1 then []
  else begin
    let k = split_point n in
    if leaf < lo + k then path t lo (lo + k) leaf @ [ range_root t (lo + k) (n - k) ]
    else path t (lo + k) hi leaf @ [ range_root t lo k ]
  end

let inclusion_proof t ~index ~tree_size =
  if tree_size < 1 || tree_size > t.size then
    Error
      (Printf.sprintf "tree size %d out of range (log holds %d)" tree_size
         t.size)
  else if index < 0 || index >= tree_size then
    Error
      (Printf.sprintf "leaf index %d out of range for tree size %d" index
         tree_size)
  else Ok (path t 0 tree_size index)

(* RFC 6962 SUBPROOF(m, D[off:off+n], b). *)
let rec subproof t ~off m n b =
  if m = n then if b then [] else [ range_root t off m ]
  else begin
    let k = split_point n in
    if m <= k then subproof t ~off m k b @ [ range_root t (off + k) (n - k) ]
    else
      subproof t ~off:(off + k) (m - k) (n - k) false @ [ range_root t off k ]
  end

let consistency_proof t ~first ~second =
  if first < 1 || first > second then
    Error (Printf.sprintf "invalid size pair %d..%d" first second)
  else if second > t.size then
    Error
      (Printf.sprintf "tree size %d out of range (log holds %d)" second t.size)
  else if first = second then Ok []
  else Ok (subproof t ~off:0 first second true)
