type t = int array

let validate arcs =
  match arcs with
  | a :: b :: _ ->
      if a < 0 || a > 2 then invalid_arg "Oid: first arc must be 0, 1 or 2";
      if a < 2 && b >= 40 then invalid_arg "Oid: second arc must be below 40";
      if List.exists (fun x -> x < 0) arcs then invalid_arg "Oid: negative arc"
  | _ -> invalid_arg "Oid: need at least two arcs"

let of_arcs arcs =
  validate arcs;
  Array.of_list arcs

let of_string s =
  let parts = String.split_on_char '.' s in
  let arcs =
    List.map
      (fun p ->
        match int_of_string_opt p with
        | Some v -> v
        | None -> invalid_arg (Printf.sprintf "Oid.of_string: bad arc %S" p))
      parts
  in
  of_arcs arcs

let to_string t = String.concat "." (List.map string_of_int (Array.to_list t))
let arcs t = Array.to_list t
let equal a b = a = b
let compare = Stdlib.compare
let pp fmt t = Format.pp_print_string fmt (to_string t)

let encode_base128 buf v =
  (* big-endian base-128, high bit set on all but the last septet *)
  let rec septets v acc = if v = 0 then acc else septets (v lsr 7) ((v land 0x7f) :: acc) in
  let parts = match septets v [] with [] -> [ 0 ] | l -> l in
  let n = List.length parts in
  List.iteri
    (fun i p ->
      let byte = if i = n - 1 then p else p lor 0x80 in
      Buffer.add_char buf (Char.chr byte))
    parts

let to_der_content t =
  let buf = Buffer.create 12 in
  encode_base128 buf ((t.(0) * 40) + t.(1));
  for i = 2 to Array.length t - 1 do
    encode_base128 buf t.(i)
  done;
  Buffer.contents buf

let of_der_content s =
  let n = String.length s in
  if n = 0 then None
  else begin
    let rec read i acc arcs =
      if i >= n then if acc = 0 then Some (List.rev arcs) else None
      else begin
        let b = Char.code s.[i] in
        (* DER base-128 is minimal: a leading zero septet (0x80) is not a
           valid start of an arc, and an arc that overflows [int] could
           not round-trip — reject both so that every accepted content
           string is exactly what [to_der_content] reproduces. *)
        if acc = 0 && b = 0x80 then None
        else if acc > max_int lsr 7 then None
        else begin
          let acc = (acc lsl 7) lor (b land 0x7f) in
          if b land 0x80 <> 0 then read (i + 1) acc arcs
          else read (i + 1) 0 (acc :: arcs)
        end
      end
    in
    match read 0 0 [] with
    | None | Some [] -> None
    | Some (first :: rest) ->
        let a, b = if first < 40 then (0, first) else if first < 80 then (1, first - 40) else (2, first - 80) in
        (try Some (of_arcs (a :: b :: rest)) with Invalid_argument _ -> None)
  end

let rsa_encryption = of_string "1.2.840.113549.1.1.1"
let md5_with_rsa = of_string "1.2.840.113549.1.1.4"
let sha1_with_rsa = of_string "1.2.840.113549.1.1.5"
let sha256_with_rsa = of_string "1.2.840.113549.1.1.11"

let at_common_name = of_string "2.5.4.3"
let at_country = of_string "2.5.4.6"
let at_organization = of_string "2.5.4.10"
let at_organizational_unit = of_string "2.5.4.11"
let at_locality = of_string "2.5.4.7"
let at_state = of_string "2.5.4.8"
let at_email = of_string "1.2.840.113549.1.9.1"

let ext_subject_key_id = of_string "2.5.29.14"
let ext_authority_key_id = of_string "2.5.29.35"
let ext_key_usage = of_string "2.5.29.15"
let ext_basic_constraints = of_string "2.5.29.19"
let ext_ext_key_usage = of_string "2.5.29.37"
let ext_subject_alt_name = of_string "2.5.29.17"

let kp_server_auth = of_string "1.3.6.1.5.5.7.3.1"
let kp_client_auth = of_string "1.3.6.1.5.5.7.3.2"
let kp_code_signing = of_string "1.3.6.1.5.5.7.3.3"
let kp_email_protection = of_string "1.3.6.1.5.5.7.3.4"
let kp_time_stamping = of_string "1.3.6.1.5.5.7.3.8"
