module B = Tangled_numeric.Bigint
module Ts = Tangled_util.Timestamp

type t =
  | Boolean of bool
  | Integer of B.t
  | Bit_string of int * string
  | Octet_string of string
  | Null
  | Oid of Oid.t
  | Utf8_string of string
  | Printable_string of string
  | Ia5_string of string
  | Utc_time of Ts.t
  | Generalized_time of Ts.t
  | Sequence of t list
  | Set of t list
  | Context of int * t
  | Context_primitive of int * string

(* --- encoding ------------------------------------------------------ *)

let encode_length buf n =
  if n < 0x80 then Buffer.add_char buf (Char.chr n)
  else begin
    let rec bytes n acc = if n = 0 then acc else bytes (n lsr 8) ((n land 0xff) :: acc) in
    let bs = bytes n [] in
    Buffer.add_char buf (Char.chr (0x80 lor List.length bs));
    List.iter (fun b -> Buffer.add_char buf (Char.chr b)) bs
  end

let tlv buf tag content =
  Buffer.add_char buf (Char.chr tag);
  encode_length buf (String.length content);
  Buffer.add_string buf content

(* Two's-complement big-endian integer content. *)
let integer_content v =
  if B.is_zero v then "\x00"
  else if B.sign v > 0 then begin
    let m = B.to_bytes_be v in
    (* prepend 0x00 when the top bit is set, to keep the value positive *)
    if Char.code m.[0] land 0x80 <> 0 then "\x00" ^ m else m
  end
  else begin
    (* smallest n with -2^(8n-1) <= v; |v| = 2^k packs one byte tighter *)
    let nbytes =
      let m = B.abs v in
      let bl = B.bit_length m in
      let is_pow2 = B.equal m (B.shift_left B.one (bl - 1)) in
      if is_pow2 then Stdlib.max 1 ((bl + 7) / 8) else Stdlib.max 1 ((bl + 8) / 8)
    in
    let modulus = B.shift_left B.one (nbytes * 8) in
    let twos = B.add modulus v in
    let m = B.to_bytes_be twos in
    if String.length m < nbytes then String.make (nbytes - String.length m) '\x00' ^ m
    else m
  end

let rec encode_into buf v =
  match v with
  | Boolean b -> tlv buf 0x01 (if b then "\xff" else "\x00")
  | Integer i -> tlv buf 0x02 (integer_content i)
  | Bit_string (unused, s) ->
      if unused < 0 || unused > 7 then invalid_arg "Der.encode: unused bits out of range";
      tlv buf 0x03 (String.make 1 (Char.chr unused) ^ s)
  | Octet_string s -> tlv buf 0x04 s
  | Null -> tlv buf 0x05 ""
  | Oid oid -> tlv buf 0x06 (Oid.to_der_content oid)
  | Utf8_string s -> tlv buf 0x0c s
  | Printable_string s -> tlv buf 0x13 s
  | Ia5_string s -> tlv buf 0x16 s
  | Utc_time ts -> tlv buf 0x17 (Ts.to_asn1_utctime ts)
  | Generalized_time ts -> tlv buf 0x18 (Ts.to_asn1_generalized ts)
  | Sequence items -> tlv buf 0x30 (encode_list items)
  | Set items -> tlv buf 0x31 (encode_list items)
  | Context (n, inner) ->
      if n < 0 || n > 30 then invalid_arg "Der.encode: context tag out of range";
      tlv buf (0xa0 lor n) (encode_one inner)
  | Context_primitive (n, content) ->
      if n < 0 || n > 30 then invalid_arg "Der.encode: context tag out of range";
      tlv buf (0x80 lor n) content

and encode_list items =
  let buf = Buffer.create 64 in
  List.iter (encode_into buf) items;
  Buffer.contents buf

and encode_one v =
  let buf = Buffer.create 64 in
  encode_into buf v;
  Buffer.contents buf

let encode = encode_one

(* --- decoding ------------------------------------------------------ *)

type error =
  | Truncated
  | Trailing_garbage
  | Bad_tag of int
  | Bad_length
  | Bad_value of string

let error_to_string = function
  | Truncated -> "truncated input"
  | Trailing_garbage -> "trailing garbage after value"
  | Bad_tag t -> Printf.sprintf "unsupported tag 0x%02x" t
  | Bad_length -> "malformed or non-minimal length"
  | Bad_value msg -> Printf.sprintf "malformed value: %s" msg

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* The decoder is a cursor over the raw buffer: every recursion level
   works on [(s, off, limit)] views and only escaping leaves (bit-string
   payloads, octet strings, character strings, integer magnitudes)
   materialise substrings.  Constructed values never copy their body. *)

let read_length s off limit =
  if off >= limit then Error Truncated
  else begin
    let b = Char.code (String.unsafe_get s off) in
    if b < 0x80 then Ok (b, off + 1)
    else if b = 0x80 then Error Bad_length (* indefinite: not DER *)
    else begin
      let nbytes = b land 0x7f in
      if nbytes > 4 then Error Bad_length (* overlong: > 2^32-1 content *)
      else if off + 1 + nbytes > limit then Error Truncated
      else begin
        let v = ref 0 in
        for i = 0 to nbytes - 1 do
          v := (!v lsl 8) lor Char.code (String.unsafe_get s (off + 1 + i))
        done;
        (* DER: length must use the minimal form *)
        if !v < 0x80 || (nbytes > 1 && !v < 1 lsl (8 * (nbytes - 1))) then Error Bad_length
        else Ok (!v, off + 1 + nbytes)
      end
    end
  end

let decode_integer s off len =
  if len = 0 then Error (Bad_value "empty INTEGER")
  else if
    (* DER: first nine bits may not be all zero or all one *)
    len > 1
    && ((Char.code s.[off] = 0x00 && Char.code s.[off + 1] land 0x80 = 0)
        || (Char.code s.[off] = 0xff && Char.code s.[off + 1] land 0x80 <> 0))
  then Error (Bad_value "non-minimal INTEGER")
  else begin
    let v = B.of_bytes_be (String.sub s off len) in
    if Char.code s.[off] land 0x80 = 0 then Ok v
    else Ok (B.sub v (B.shift_left B.one (8 * len)))
  end

let is_printable_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | ' ' | '\'' | '(' | ')' | '+' | ',' | '-' | '.' | '/' | ':' | '=' | '?' -> true
  | _ -> false

let range_for_all f s off len =
  let ok = ref true in
  for i = off to off + len - 1 do
    if not (f (String.unsafe_get s i)) then ok := false
  done;
  !ok

let rec decode_range s off limit =
  if off >= limit then Error Truncated
  else begin
    let tag = Char.code (String.unsafe_get s off) in
    let* len, body_off = read_length s (off + 1) limit in
    if body_off + len > limit then Error Truncated
    else begin
      let stop = body_off + len in
      let finish v = Ok (v, stop) in
      match tag with
      | 0x01 ->
          if len <> 1 then Error (Bad_value "BOOLEAN length")
          else begin
            (* DER: true must be 0xff *)
            match Char.code s.[body_off] with
            | 0x00 -> finish (Boolean false)
            | 0xff -> finish (Boolean true)
            | _ -> Error (Bad_value "BOOLEAN content")
          end
      | 0x02 ->
          let* v = decode_integer s body_off len in
          finish (Integer v)
      | 0x03 ->
          if len = 0 then Error (Bad_value "empty BIT STRING")
          else begin
            let unused = Char.code s.[body_off] in
            if unused > 7 then Error (Bad_value "BIT STRING unused bits")
            else finish (Bit_string (unused, String.sub s (body_off + 1) (len - 1)))
          end
      | 0x04 -> finish (Octet_string (String.sub s body_off len))
      | 0x05 -> if len <> 0 then Error (Bad_value "NULL length") else finish Null
      | 0x06 -> (
          match Oid.of_der_content (String.sub s body_off len) with
          | Some oid -> finish (Oid oid)
          | None -> Error (Bad_value "OBJECT IDENTIFIER"))
      | 0x0c -> finish (Utf8_string (String.sub s body_off len))
      | 0x13 ->
          if range_for_all is_printable_char s body_off len then
            finish (Printable_string (String.sub s body_off len))
          else Error (Bad_value "PrintableString alphabet")
      | 0x16 ->
          if range_for_all (fun c -> Char.code c < 0x80) s body_off len then
            finish (Ia5_string (String.sub s body_off len))
          else Error (Bad_value "IA5String alphabet")
      | 0x17 -> (
          match Ts.of_asn1_utctime (String.sub s body_off len) with
          | Some ts -> finish (Utc_time ts)
          | None -> Error (Bad_value "UTCTime"))
      | 0x18 -> (
          match Ts.of_asn1_generalized (String.sub s body_off len) with
          | Some ts -> finish (Generalized_time ts)
          | None -> Error (Bad_value "GeneralizedTime"))
      | 0x30 ->
          let* items = decode_items s body_off stop in
          finish (Sequence items)
      | 0x31 ->
          let* items = decode_items s body_off stop in
          finish (Set items)
      | _ when tag land 0xe0 = 0xa0 ->
          (* constructed context-specific: treat as explicit *)
          let* inner, inner_stop = decode_range s body_off stop in
          if inner_stop <> stop then Error Trailing_garbage
          else finish (Context (tag land 0x1f, inner))
      | _ when tag land 0xc0 = 0x80 ->
          finish (Context_primitive (tag land 0x1f, String.sub s body_off len))
      | _ -> Error (Bad_tag tag)
    end
  end

and decode_items s off limit =
  let rec go off acc =
    if off = limit then Ok (List.rev acc)
    else
      let* v, off' = decode_range s off limit in
      go off' (v :: acc)
  in
  go off []

let decode_prefix s off = decode_range s off (String.length s)

let decode s =
  let* v, stop = decode_range s 0 (String.length s) in
  if stop <> String.length s then Error Trailing_garbage else Ok v

(* Spans of the immediate children of a constructed value that fills
   the whole buffer: each span is [(off, len)] of a child's complete
   TLV.  Children are skipped over, not decoded — callers pair this
   with a full [decode] when they need both the tree and raw slices
   (e.g. the TBSCertificate bytes a signature covers). *)
let child_spans s =
  let n = String.length s in
  if n = 0 then Error Truncated
  else begin
    let tag = Char.code s.[0] in
    if tag land 0x20 = 0 then Error (Bad_value "not a constructed value")
    else
      let* len, body_off = read_length s 1 n in
      if body_off + len > n then Error Truncated
      else if body_off + len <> n then Error Trailing_garbage
      else begin
        let rec go off acc =
          if off = n then Ok (List.rev acc)
          else if off >= n then Error Truncated
          else
            let* child_len, child_body = read_length s (off + 1) n in
            let stop = child_body + child_len in
            if stop > n then Error Truncated else go stop ((off, stop - off) :: acc)
        in
        go body_off []
      end
  end

(* --- accessors ----------------------------------------------------- *)

let as_sequence = function Sequence l -> Some l | _ -> None
let as_set = function Set l -> Some l | _ -> None
let as_integer = function Integer i -> Some i | _ -> None
let as_oid = function Oid o -> Some o | _ -> None
let as_octet_string = function Octet_string s -> Some s | _ -> None
let as_bit_string = function Bit_string (u, s) -> Some (u, s) | _ -> None

let as_string = function
  | Utf8_string s | Printable_string s | Ia5_string s -> Some s
  | _ -> None

let as_time = function
  | Utc_time ts | Generalized_time ts -> Some ts
  | _ -> None

let as_boolean = function Boolean b -> Some b | _ -> None
let is_printable s = String.for_all is_printable_char s

let rec pp fmt v =
  match v with
  | Boolean b -> Format.fprintf fmt "BOOLEAN %b" b
  | Integer i -> Format.fprintf fmt "INTEGER %a" B.pp i
  | Bit_string (u, s) ->
      Format.fprintf fmt "BIT STRING (%d bytes, %d unused bits)" (String.length s) u
  | Octet_string s -> Format.fprintf fmt "OCTET STRING (%d bytes)" (String.length s)
  | Null -> Format.pp_print_string fmt "NULL"
  | Oid o -> Format.fprintf fmt "OID %a" Oid.pp o
  | Utf8_string s -> Format.fprintf fmt "UTF8String %S" s
  | Printable_string s -> Format.fprintf fmt "PrintableString %S" s
  | Ia5_string s -> Format.fprintf fmt "IA5String %S" s
  | Utc_time ts -> Format.fprintf fmt "UTCTime %a" Ts.pp ts
  | Generalized_time ts -> Format.fprintf fmt "GeneralizedTime %a" Ts.pp ts
  | Sequence items -> pp_items fmt "SEQUENCE" items
  | Set items -> pp_items fmt "SET" items
  | Context (n, inner) -> Format.fprintf fmt "@[<v 2>[%d] EXPLICIT@ %a@]" n pp inner
  | Context_primitive (n, s) -> Format.fprintf fmt "[%d] IMPLICIT (%d bytes)" n (String.length s)

and pp_items fmt label items =
  Format.fprintf fmt "@[<v 2>%s {" label;
  List.iter (fun item -> Format.fprintf fmt "@ %a" pp item) items;
  Format.fprintf fmt "@]@ }"
