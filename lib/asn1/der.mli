(** DER (Distinguished Encoding Rules) serialisation of a practical
    subset of ASN.1 — everything X.509 v3 certificates need.

    The reader is strict: indefinite lengths, non-minimal lengths and
    trailing garbage are rejected, as DER demands. *)

type t =
  | Boolean of bool
  | Integer of Tangled_numeric.Bigint.t
  | Bit_string of int * string
      (** [(unused_bits, payload)]; [unused_bits] in 0–7. *)
  | Octet_string of string
  | Null
  | Oid of Oid.t
  | Utf8_string of string
  | Printable_string of string
  | Ia5_string of string
  | Utc_time of Tangled_util.Timestamp.t
  | Generalized_time of Tangled_util.Timestamp.t
  | Sequence of t list
  | Set of t list
  | Context of int * t
      (** Explicitly-tagged context-specific constructed value
          [\[n\] EXPLICIT inner]. *)
  | Context_primitive of int * string
      (** Implicitly-tagged context-specific primitive value
          [\[n\] IMPLICIT] with raw content octets. *)

val encode : t -> string
(** DER serialisation. *)

type error =
  | Truncated
  | Trailing_garbage
  | Bad_tag of int
  | Bad_length
  | Bad_value of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val decode : string -> (t, error) result
(** Parse exactly one DER value spanning the whole input. *)

val decode_prefix : string -> int -> (t * int, error) result
(** [decode_prefix s off] parses one value starting at [off] and
    returns it with the offset one past its end.  The decoder is a
    cursor over [s]: constructed values never copy their body, only
    escaping leaves materialise substrings. *)

val child_spans : string -> ((int * int) list, error) result
(** [child_spans s] gives [(off, len)] of each immediate child TLV of
    the constructed value spanning the whole of [s], without decoding
    the children.  Pairs with {!decode} when a caller needs raw slices
    of specific fields (e.g. the TBSCertificate bytes a signature
    covers). *)

(** Convenience accessors used by the X.509 layer; each returns [None]
    on a shape mismatch. *)

val as_sequence : t -> t list option
val as_set : t -> t list option
val as_integer : t -> Tangled_numeric.Bigint.t option
val as_oid : t -> Oid.t option
val as_octet_string : t -> string option
val as_bit_string : t -> (int * string) option
val as_string : t -> string option
(** Any of the character-string types. *)

val as_time : t -> Tangled_util.Timestamp.t option
(** UTCTime or GeneralizedTime. *)

val as_boolean : t -> bool option

val is_printable : string -> bool
(** Whether a string fits the PrintableString alphabet, guiding the
    choice between [Printable_string] and [Utf8_string]. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering, indented. *)
