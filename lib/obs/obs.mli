(** Unified observability: one instrumentation API for the whole
    pipeline.

    [Obs] replaced the engine's earlier [Timing] (flat wall-clock
    spans) and [Metrics] (process-global counters) pair — both since
    deleted — with a single subsystem:

    - {b hierarchical spans} — {!span} nests via a domain-local stack,
      records wall-clock duration and a success/error status, and
      never loses a span when the instrumented computation raises;
    - {b a typed instrument registry} — {!counter}s, {!gauge}s and
      fixed-bucket {!histogram}s, aggregated with atomics so hot paths
      in worker domains pay one atomic op per event;
    - {b a bounded structured event log} — {!event} keeps the last
      {!event_capacity} discrete occurrences (quarantined records,
      cache clears, injected faults) with string fields;
    - {b a deterministic JSONL trace exporter} — {!trace_jsonl} writes
      a versioned schema in which nondeterministic measurements
      (timestamps, durations, worker-count-dependent counts) live
      exclusively under each line's ["volatile"] member, so
      {!stable_view} of a trace is byte-identical at any [--jobs].

    Everything here is observability only: no value ever feeds back
    into the study's outputs, so report artefacts stay byte-identical
    whether instrumentation is on, off, or torn down mid-run.  All
    entry points are thread-safe. *)

(** {1 Master switch} *)

val enabled : unit -> bool
(** Whether recording is active (default [true]). *)

val set_enabled : bool -> unit
(** Disable to make every recording call a cheap no-op branch — the
    before-side of the bench overhead pair. *)

(** {1 Spans} *)

type status = Done | Failed of string

type span = {
  id : int;       (** creation order, process-wide, 1-based *)
  parent : int;   (** id of the enclosing span, 0 at the root *)
  name : string;
  depth : int;    (** 0 for root spans *)
  start_s : float;(** [Unix.gettimeofday] at entry *)
  dur_s : float;
  status : status;
}

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] as a child of the current domain's
    innermost open span, recording a completed span either way: status
    {!Done} on return, {!Failed} carrying the exception text when [f]
    raises (the exception is re-raised with its backtrace).  The old
    [Timing.time] silently dropped raising spans; this is the fix. *)

val spanned : string -> (unit -> 'a) -> 'a * span
(** Like {!span} but also returns the completed span record
    (collectors use this).  When recording is disabled the span is
    synthesized with [id = 0] and not retained. *)

val spans : unit -> span list
(** Completed spans in creation (id) order. *)

val render_spans : ?title:string -> unit -> string
(** The span tree: one line per span, indented by depth, with duration
    and status; [""] when no spans were recorded. *)

val render_span_table : ?title:string -> (string * float) list -> string
(** The flat stage-timing table (name, seconds, share-of-total) the
    old [Timing.render] printed; kept as a shared renderer so the
    deprecated shim and the pipeline produce identical bytes. *)

(** {1 Counters and gauges} *)

type counter

val counter : string -> counter
(** The process-wide counter registered under this name, created at
    zero on first request. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

val render_counters : ?title:string -> unit -> string

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

val gauges : unit -> (string * int) list
(** All gauges, sorted by name. *)

(** {1 Histograms} *)

type histogram

val latency_buckets : float array
(** Default upper bounds for latency-in-seconds histograms: 1µs to
    10s, roughly ×3 per bucket. *)

val histogram : ?buckets:float array -> string -> histogram
(** The process-wide histogram registered under this name.  [buckets]
    (default {!latency_buckets}) are strictly increasing upper bounds;
    an implicit overflow bucket catches everything above the last
    edge.  [buckets] is only consulted on first registration. *)

val observe : histogram -> float -> unit
(** Record one observation: one atomic increment on the owning bucket
    plus an atomic update of the running sum. *)

val time_histogram : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and {!observe} its wall-clock duration in seconds
    (also when it raises, before re-raising). *)

type histogram_snapshot = {
  h_name : string;
  edges : float array;  (** upper bounds; an overflow bucket follows *)
  counts : int array;   (** length [Array.length edges + 1] *)
  total : int;
  sum : float;
}

val histogram_snapshot : histogram -> histogram_snapshot

val histograms : unit -> histogram_snapshot list
(** All histograms, sorted by name. *)

val quantile : histogram_snapshot -> float -> float
(** [quantile s q] estimates the [q]-quantile ([0 <= q <= 1]) by
    linear interpolation inside the bucket holding that rank; the
    overflow bucket reports its lower edge.  [nan] when empty. *)

val render_histograms : ?title:string -> unit -> string
(** One line per non-empty histogram: count, mean, p50/p90/p99. *)

(** {1 Events} *)

type event_record = {
  seq : int;  (** process-wide emission order, 1-based *)
  e_name : string;
  fields : (string * string) list;
}

val event_capacity : int
(** How many most-recent events the bounded log retains (1024). *)

val event : ?fields:(string * string) list -> string -> unit

val events : unit -> event_record list
(** Retained events, oldest first. *)

val render_events : ?title:string -> ?limit:int -> unit -> string
(** The newest [limit] (default 12) events, oldest first. *)

(** {1 Lifecycle} *)

val reset_all : unit -> unit
(** Zero every counter and gauge, clear every histogram's buckets and
    sum, and drop all recorded spans and events.  Instruments stay
    registered under their names.  Bench cold/warm sections call this
    between phases so no state leaks across a measurement boundary. *)

(** {1 Trace export} *)

val schema_version : string
(** The trace schema identifier, currently ["tangled-obs/1"]. *)

val trace_jsonl : ?jobs:int -> unit -> string
(** The whole recorded state as JSONL: a header line, then spans (id
    order), counters, gauges and histograms (each name-sorted), then
    events (seq order).  Every line is an object whose deterministic
    fields sit at the top level and whose nondeterministic fields —
    ids, timestamps, durations, counts that depend on the worker
    split — sit under the ["volatile"] member, so {!stable_view} is
    byte-identical at any [--jobs].  [jobs] records the worker count
    in the header (volatile). *)

val stable_view : string -> (string, string) result
(** The trace with every line's ["volatile"] member removed — the
    bytes that must not depend on worker count or wall clock.
    [Error] describes the first malformed line. *)

val validate_trace : string -> (unit, string) result
(** Structural schema check: a header line announcing
    {!schema_version} first, every subsequent line a known record kind
    with its required fields of the right types, histogram count
    arrays matching their edges.  [Error] pinpoints the first
    violation. *)

val render : ?title:string -> unit -> string
(** The CLI's "obs" section: span tree, histogram quantiles, counter
    table and the newest events, in that order; sections with nothing
    recorded are omitted. *)
