(* One instrumentation subsystem for the whole pipeline.

   Aggregation is lock-free on the hot paths: counters and histogram
   buckets are atomics, so a worker domain pays one Atomic.incr (plus
   one CAS loop for the histogram's running sum) per event.  The
   registries, the completed-span list and the bounded event log are
   behind one mutex each — those are touched at registration and
   reporting frequency, not per event.

   Nothing recorded here may feed back into the study's outputs:
   report artefacts must stay byte-identical at any worker count and
   with instrumentation on or off.  The trace exporter enforces the
   same split syntactically — every nondeterministic value is confined
   to the "volatile" member of its JSONL line. *)

module J = Tangled_util.Json

let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let now () = Unix.gettimeofday ()

(* --- spans -------------------------------------------------------------- *)

type status = Done | Failed of string

type span = {
  id : int;
  parent : int;
  name : string;
  depth : int;
  start_s : float;
  dur_s : float;
  status : status;
}

let span_lock = Mutex.create ()

(* completed spans in completion order, bounded like the event log so
   a long-lived process (bench loops re-running instrumented stages)
   cannot grow without limit; the newest spans win *)
let span_capacity = 8192
let completed : span Queue.t = Queue.create ()
let next_span_id = Atomic.make 1

(* innermost open span per domain: (id, depth) stack *)
let span_stack : (int * int) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let record_span s =
  Mutex.lock span_lock;
  Queue.push s completed;
  if Queue.length completed > span_capacity then ignore (Queue.pop completed);
  Mutex.unlock span_lock

let spanned name f =
  if not (enabled ()) then begin
    let t0 = now () in
    let v = f () in
    let dur = now () -. t0 in
    (v, { id = 0; parent = 0; name; depth = 0; start_s = t0; dur_s = dur; status = Done })
  end
  else begin
    let stack = Domain.DLS.get span_stack in
    let parent, depth =
      match !stack with [] -> (0, 0) | (p, d) :: _ -> (p, d + 1)
    in
    let id = Atomic.fetch_and_add next_span_id 1 in
    stack := (id, depth) :: !stack;
    let t0 = now () in
    let finish status =
      let s = { id; parent; name; depth; start_s = t0; dur_s = now () -. t0; status } in
      (match !stack with (i, _) :: rest when i = id -> stack := rest | _ -> ());
      record_span s;
      s
    in
    match f () with
    | v -> (v, finish Done)
    | exception exn ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (finish (Failed (Printexc.to_string exn)));
        Printexc.raise_with_backtrace exn bt
  end

let span name f = fst (spanned name f)

let spans () =
  Mutex.lock span_lock;
  let l = List.of_seq (Queue.to_seq completed) in
  Mutex.unlock span_lock;
  List.sort (fun a b -> Stdlib.compare a.id b.id) l

let status_label = function Done -> "done" | Failed m -> "failed: " ^ m

let render_spans ?(title = "Spans") () =
  match spans () with
  | [] -> ""
  | roots ->
      let b = Buffer.create 512 in
      Buffer.add_string b (title ^ "\n");
      List.iter
        (fun s ->
          Buffer.add_string b
            (Printf.sprintf "  %s%-*s %9.3fs  %s\n"
               (String.make (2 * s.depth) ' ')
               (Stdlib.max 1 (24 - (2 * s.depth)))
               s.name s.dur_s (status_label s.status)))
        roots;
      Buffer.contents b

(* the flat (name, seconds, share) table the legacy Timing.render
   printed; the deprecated shim and the pipeline both call this so
   their bytes agree by construction *)
let render_span_table ?(title = "Stage timings") rows =
  let sum = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 rows in
  let b = Buffer.create 256 in
  Buffer.add_string b (title ^ "\n");
  List.iter
    (fun (stage, seconds) ->
      Buffer.add_string b
        (Printf.sprintf "  %-12s %9.3fs  %5.1f%%\n" stage seconds
           (if sum > 0.0 then 100.0 *. seconds /. sum else 0.0)))
    rows;
  Buffer.add_string b (Printf.sprintf "  %-12s %9.3fs\n" "total" sum);
  Buffer.contents b

(* --- counters and gauges ------------------------------------------------ *)

type counter = { c_name : string; c_value : int Atomic.t }

let counter_lock = Mutex.create ()
let counter_registry : (string, counter) Hashtbl.t = Hashtbl.create 16

let counter name =
  Mutex.lock counter_lock;
  let c =
    match Hashtbl.find_opt counter_registry name with
    | Some c -> c
    | None ->
        let c = { c_name = name; c_value = Atomic.make 0 } in
        Hashtbl.add counter_registry name c;
        c
  in
  Mutex.unlock counter_lock;
  c

let incr c = if enabled () then Atomic.incr c.c_value
let add c n = if enabled () then ignore (Atomic.fetch_and_add c.c_value n)
let value c = Atomic.get c.c_value
let counter_name c = c.c_name

let counters () =
  Mutex.lock counter_lock;
  let rows =
    Hashtbl.fold (fun _ c acc -> (c.c_name, Atomic.get c.c_value) :: acc)
      counter_registry []
  in
  Mutex.unlock counter_lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows

let render_named_ints title rows =
  match rows with
  | [] -> ""
  | rows ->
      let b = Buffer.create 128 in
      Buffer.add_string b (title ^ "\n");
      List.iter
        (fun (name, v) -> Buffer.add_string b (Printf.sprintf "  %-32s %12d\n" name v))
        rows;
      Buffer.contents b

let render_counters ?(title = "Counters") () = render_named_ints title (counters ())

type gauge = { g_name : string; g_value : int Atomic.t }

let gauge_lock = Mutex.create ()
let gauge_registry : (string, gauge) Hashtbl.t = Hashtbl.create 8

let gauge name =
  Mutex.lock gauge_lock;
  let g =
    match Hashtbl.find_opt gauge_registry name with
    | Some g -> g
    | None ->
        let g = { g_name = name; g_value = Atomic.make 0 } in
        Hashtbl.add gauge_registry name g;
        g
  in
  Mutex.unlock gauge_lock;
  g

let set_gauge g v = if enabled () then Atomic.set g.g_value v
let gauge_value g = Atomic.get g.g_value

let gauges () =
  Mutex.lock gauge_lock;
  let rows =
    Hashtbl.fold (fun _ g acc -> (g.g_name, Atomic.get g.g_value) :: acc)
      gauge_registry []
  in
  Mutex.unlock gauge_lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows

(* --- histograms --------------------------------------------------------- *)

type histogram = {
  h_name_ : string;
  h_edges : float array;          (* strictly increasing upper bounds *)
  h_counts : int Atomic.t array;  (* edges + 1 (overflow) *)
  h_sum : float Atomic.t;
}

let latency_buckets =
  [| 1e-6; 3e-6; 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0; 3.0; 10.0 |]

let histogram_lock = Mutex.create ()
let histogram_registry : (string, histogram) Hashtbl.t = Hashtbl.create 8

let histogram ?(buckets = latency_buckets) name =
  Mutex.lock histogram_lock;
  let h =
    match Hashtbl.find_opt histogram_registry name with
    | Some h -> h
    | None ->
        Array.iteri
          (fun i e ->
            if i > 0 && e <= buckets.(i - 1) then
              invalid_arg ("Obs.histogram: edges not increasing for " ^ name))
          buckets;
        let h =
          {
            h_name_ = name;
            h_edges = Array.copy buckets;
            h_counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
            h_sum = Atomic.make 0.0;
          }
        in
        Hashtbl.add histogram_registry name h;
        h
  in
  Mutex.unlock histogram_lock;
  h

let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

(* binary search for the first edge >= v; the overflow bucket is
   Array.length edges *)
let bucket_of edges v =
  let n = Array.length edges in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v <= edges.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe h v =
  if enabled () then begin
    Atomic.incr h.h_counts.(bucket_of h.h_edges v);
    atomic_add_float h.h_sum v
  end

let time_histogram h f =
  if not (enabled ()) then f ()
  else begin
    let t0 = now () in
    match f () with
    | v ->
        observe h (now () -. t0);
        v
    | exception exn ->
        let bt = Printexc.get_raw_backtrace () in
        observe h (now () -. t0);
        Printexc.raise_with_backtrace exn bt
  end

type histogram_snapshot = {
  h_name : string;
  edges : float array;
  counts : int array;
  total : int;
  sum : float;
}

let histogram_snapshot h =
  let counts = Array.map Atomic.get h.h_counts in
  {
    h_name = h.h_name_;
    edges = Array.copy h.h_edges;
    counts;
    total = Array.fold_left ( + ) 0 counts;
    sum = Atomic.get h.h_sum;
  }

let histograms () =
  Mutex.lock histogram_lock;
  let hs = Hashtbl.fold (fun _ h acc -> h :: acc) histogram_registry [] in
  Mutex.unlock histogram_lock;
  List.map histogram_snapshot hs
  |> List.sort (fun a b -> String.compare a.h_name b.h_name)

let quantile s q =
  if s.total = 0 then Float.nan
  else begin
    let target = q *. float_of_int s.total in
    let n_edges = Array.length s.edges in
    let rec go i cum =
      if i > n_edges then s.edges.(n_edges - 1)
      else begin
        let c = s.counts.(i) in
        let cum' = cum +. float_of_int c in
        if cum' >= target && c > 0 then
          if i = n_edges then s.edges.(n_edges - 1) (* overflow: lower edge *)
          else begin
            let lo = if i = 0 then 0.0 else s.edges.(i - 1) in
            let hi = s.edges.(i) in
            lo +. ((hi -. lo) *. ((target -. cum) /. float_of_int c))
          end
        else go (i + 1) cum'
      end
    in
    go 0 0.0
  end

let render_histograms ?(title = "Histograms (p50/p90/p99)") () =
  let rows = List.filter (fun s -> s.total > 0) (histograms ()) in
  match rows with
  | [] -> ""
  | rows ->
      let b = Buffer.create 256 in
      Buffer.add_string b (title ^ "\n");
      List.iter
        (fun s ->
          Buffer.add_string b
            (Printf.sprintf "  %-32s n=%-8d mean=%-11.4g p50=%-11.4g p90=%-11.4g p99=%.4g\n"
               s.h_name s.total
               (s.sum /. float_of_int s.total)
               (quantile s 0.50) (quantile s 0.90) (quantile s 0.99)))
        rows;
      Buffer.contents b

(* --- bounded event log -------------------------------------------------- *)

type event_record = { seq : int; e_name : string; fields : (string * string) list }

let event_capacity = 1024
let event_lock = Mutex.create ()
let event_log : event_record Queue.t = Queue.create ()
let next_seq = Atomic.make 1

let event ?(fields = []) name =
  if enabled () then begin
    let seq = Atomic.fetch_and_add next_seq 1 in
    Mutex.lock event_lock;
    Queue.push { seq; e_name = name; fields } event_log;
    if Queue.length event_log > event_capacity then ignore (Queue.pop event_log);
    Mutex.unlock event_lock
  end

let events () =
  Mutex.lock event_lock;
  let l = List.of_seq (Queue.to_seq event_log) in
  Mutex.unlock event_lock;
  l

let render_events ?(title = "Events (newest)") ?(limit = 12) () =
  match events () with
  | [] -> ""
  | all ->
      let keep = Stdlib.max 0 (List.length all - limit) in
      let shown = List.filteri (fun i _ -> i >= keep) all in
      let b = Buffer.create 256 in
      Buffer.add_string b (Printf.sprintf "%s — %d retained\n" title (List.length all));
      List.iter
        (fun e ->
          Buffer.add_string b (Printf.sprintf "  %-28s" e.e_name);
          List.iter
            (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=%s" k v))
            e.fields;
          Buffer.add_char b '\n')
        shown;
      Buffer.contents b

(* --- lifecycle ---------------------------------------------------------- *)

let reset_all () =
  Mutex.lock span_lock;
  Queue.clear completed;
  Mutex.unlock span_lock;
  Atomic.set next_span_id 1;
  Mutex.lock event_lock;
  Queue.clear event_log;
  Mutex.unlock event_lock;
  Atomic.set next_seq 1;
  Mutex.lock counter_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counter_registry;
  Mutex.unlock counter_lock;
  Mutex.lock gauge_lock;
  Hashtbl.iter (fun _ g -> Atomic.set g.g_value 0) gauge_registry;
  Mutex.unlock gauge_lock;
  Mutex.lock histogram_lock;
  Hashtbl.iter
    (fun _ h ->
      Array.iter (fun a -> Atomic.set a 0) h.h_counts;
      Atomic.set h.h_sum 0.0)
    histogram_registry;
  Mutex.unlock histogram_lock

(* --- trace export ------------------------------------------------------- *)

let schema_version = "tangled-obs/1"

(* Every line: deterministic fields at the top level, nondeterministic
   measurements under "volatile".  stable_view strips the latter, and
   the determinism suite asserts the remainder is byte-identical at
   --jobs 1 vs 4. *)
let trace_jsonl ?jobs () =
  let b = Buffer.create 4096 in
  let line fields volatile =
    Buffer.add_string b
      (J.to_string (J.Obj (fields @ [ ("volatile", J.Obj volatile) ])));
    Buffer.add_char b '\n'
  in
  line
    [ ("schema", J.String schema_version); ("kind", J.String "header") ]
    (match jobs with Some j -> [ ("jobs", J.Int j) ] | None -> []);
  List.iter
    (fun s ->
      line
        [
          ("kind", J.String "span");
          ("name", J.String s.name);
          ("depth", J.Int s.depth);
          ("status", J.String (status_label s.status));
        ]
        [
          ("id", J.Int s.id);
          ("parent", J.Int s.parent);
          ("start_s", J.Float s.start_s);
          ("dur_s", J.Float s.dur_s);
        ])
    (spans ());
  List.iter
    (fun (name, v) ->
      line
        [ ("kind", J.String "counter"); ("name", J.String name) ]
        [ ("value", J.Int v) ])
    (counters ());
  List.iter
    (fun (name, v) ->
      line
        [ ("kind", J.String "gauge"); ("name", J.String name) ]
        [ ("value", J.Int v) ])
    (gauges ());
  List.iter
    (fun s ->
      line
        [
          ("kind", J.String "histogram");
          ("name", J.String s.h_name);
          ("edges", J.List (Array.to_list (Array.map (fun e -> J.Float e) s.edges)));
        ]
        [
          ("counts", J.List (Array.to_list (Array.map (fun c -> J.Int c) s.counts)));
          ("total", J.Int s.total);
          ("sum", J.Float s.sum);
        ])
    (histograms ());
  List.iter
    (fun e ->
      line
        [
          ("kind", J.String "event");
          ("name", J.String e.e_name);
          ("fields", J.Obj (List.map (fun (k, v) -> (k, J.String v)) e.fields));
        ]
        [ ("seq", J.Int e.seq) ])
    (events ());
  Buffer.contents b

let fold_lines f trace =
  let rec go lineno acc = function
    | [] -> Ok acc
    | "" :: rest -> go (lineno + 1) acc rest
    | l :: rest -> (
        match J.parse l with
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        | Ok json -> (
            match f lineno acc json with
            | Error _ as e -> e
            | Ok acc -> go (lineno + 1) acc rest))
  in
  go 1 [] (String.split_on_char '\n' trace)

let stable_view trace =
  let strip _lineno acc = function
    | J.Obj fields -> Ok (J.Obj (List.remove_assoc "volatile" fields) :: acc)
    | _ -> Ok acc
  in
  match fold_lines strip trace with
  | Error _ as e -> e
  | Ok objs ->
      Ok (String.concat "" (List.rev_map (fun j -> J.to_string j ^ "\n") objs))

let validate_trace trace =
  let fail lineno fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt in
  let is_num = function J.Int _ | J.Float _ -> true | _ -> false in
  let check lineno seen_header json =
    match json with
    | J.Obj _ -> (
        let str name = match J.member name json with Some (J.String s) -> Some s | _ -> None in
        let volatile =
          match J.member "volatile" json with Some (J.Obj v) -> Some v | _ -> None
        in
        match volatile with
        | None -> fail lineno "missing volatile object"
        | Some vol -> (
            let vint name =
              match List.assoc_opt name vol with Some (J.Int _) -> true | _ -> false
            in
            let vnum name =
              match List.assoc_opt name vol with Some v -> is_num v | None -> false
            in
            match (seen_header, str "kind") with
            | [], Some "header" ->
                if str "schema" = Some schema_version then Ok [ () ]
                else fail lineno "header schema is not %s" schema_version
            | [], _ -> fail lineno "first line is not a %s header" schema_version
            | _ :: _, Some "header" -> fail lineno "duplicate header"
            | seen, Some "span" ->
                if str "name" = None then fail lineno "span without name"
                else if (match J.member "depth" json with Some (J.Int _) -> false | _ -> true)
                then fail lineno "span without integer depth"
                else if str "status" = None then fail lineno "span without status"
                else if not (vint "id" && vint "parent" && vnum "start_s" && vnum "dur_s")
                then fail lineno "span volatile fields incomplete"
                else Ok seen
            | seen, Some ("counter" | "gauge") ->
                if str "name" = None then fail lineno "instrument without name"
                else if not (vint "value") then fail lineno "instrument without volatile value"
                else Ok seen
            | seen, Some "histogram" -> (
                let edges =
                  match J.member "edges" json with
                  | Some (J.List es) when List.for_all is_num es -> Some (List.length es)
                  | _ -> None
                in
                let counts =
                  match List.assoc_opt "counts" vol with
                  | Some (J.List cs)
                    when List.for_all (function J.Int _ -> true | _ -> false) cs ->
                      Some (List.length cs)
                  | _ -> None
                in
                match (str "name", edges, counts) with
                | None, _, _ -> fail lineno "histogram without name"
                | _, None, _ -> fail lineno "histogram without numeric edges"
                | _, _, None -> fail lineno "histogram without volatile integer counts"
                | Some _, Some ne, Some nc ->
                    if nc <> ne + 1 then
                      fail lineno "histogram counts length %d != edges+1 (%d)" nc (ne + 1)
                    else if not (vint "total" && vnum "sum") then
                      fail lineno "histogram volatile total/sum incomplete"
                    else Ok seen)
            | seen, Some "event" -> (
                match (str "name", J.member "fields" json) with
                | None, _ -> fail lineno "event without name"
                | _, Some (J.Obj fs)
                  when List.for_all (fun (_, v) -> match v with J.String _ -> true | _ -> false) fs
                  ->
                    if vint "seq" then Ok seen else fail lineno "event without volatile seq"
                | _, _ -> fail lineno "event fields must be a string object")
            | _, Some other -> fail lineno "unknown record kind %S" other
            | _, None -> fail lineno "record without kind"))
    | _ -> fail lineno "line is not a JSON object"
  in
  match fold_lines check trace with
  | Error _ as e -> e
  | Ok [] -> Error "empty trace (no header)"
  | Ok _ -> Ok ()

(* --- the CLI's obs section ---------------------------------------------- *)

let render ?(title = "Observability (process-wide, volatile)") () =
  let sections =
    List.filter
      (fun s -> s <> "")
      [
        render_spans ~title:"Span tree" ();
        render_histograms ();
        render_counters ();
        render_named_ints "Gauges" (gauges ());
        render_events ();
      ]
  in
  match sections with
  | [] -> ""
  | sections ->
      title ^ "\n" ^ String.concat "" (List.map (fun s -> s) sections)
