(** The passive certificate observatory (§4.2).

    The real ICSI Notary watches TLS handshakes on eight networks and
    stores ~1.9 M unique certificates (~1 M unexpired).  This simulator
    issues a scaled-down leaf population from the universe's active
    roots, with per-root volumes proportional to the traffic weights
    the blueprint derived from Table 3, then {e measures} everything
    the paper measures — cryptographically verifying every chain once
    and aggregating per-root and per-store validation counts.

    Generation is split into two phases: a sequential {e planning} pass
    that performs every PRNG draw in the same order the original
    single-pass generator did, and a pure {e build} pass (RSA issuance
    and chain verification) that fans out across domains.  Seeded
    output is therefore byte-identical at any [jobs] count.

    After generation the chains are folded once into a
    {!Tangled_engine.Coverage} index keyed by the universe's interned
    root ids; every aggregate query below is an array reduction over
    that index rather than a scan of the chain array. *)

type chain = {
  leaf : Tangled_x509.Certificate.t;
  intermediates : Tangled_x509.Certificate.t list;
  expired : bool;  (** outside its validity window at the paper epoch *)
  anchor : string option;
      (** equivalence key of the verified issuing root; [None] when the
          signature chain does not verify *)
}

type raw = {
  r_universe : Tangled_pki.Blueprint.t;
  r_chains : chain array;
  r_scale : float;
}
(** Generated chains before indexing — what {!generate_raw} produces
    and {!index} consumes; split out so the pipeline can time the two
    stages separately. *)

type t = {
  universe : Tangled_pki.Blueprint.t;
  chains : chain array;
  scale : float;  (** leaves here per paper leaf (~1 M) *)
  interner : Tangled_engine.Interner.t;
      (** the universe's root-identity table (shared, not a copy) *)
  coverage : Tangled_engine.Coverage.t;
      (** per-root validated counts + per-chain anchor ids *)
}

val generate_raw :
  ?leaves:int ->
  ?expired_fraction:float ->
  ?jobs:int ->
  seed:int ->
  Tangled_pki.Blueprint.t ->
  raw
(** Generation without the index; see {!generate}. *)

val index : raw -> t
(** One pass over the chains: resolve each verified anchor to its
    interned id and build the {!Tangled_engine.Coverage} index. *)

val generate :
  ?leaves:int ->
  ?expired_fraction:float ->
  ?jobs:int ->
  seed:int ->
  Tangled_pki.Blueprint.t ->
  t
(** [generate ~seed universe] issues [leaves] (default 10,000) unexpired
    chains plus an [expired_fraction] (default 0.10; the paper's
    population is 47% expired — the default trades that for speed and
    the fraction only affects totals, never the analysis shape).
    Per-root leaf counts use largest-remainder apportionment of the
    traffic weights so every active root validates at least one
    certificate.  About half the chains go through an intermediate CA.
    [jobs] (default 1) bounds the worker domains used for the build
    phase.  Deterministic in [seed], independent of [jobs]. *)

val unexpired : t -> int
val total : t -> int

val store_ids : t -> Tangled_store.Root_store.t -> Tangled_engine.Id_set.t
(** The store's enabled membership as interned root ids — compute once,
    query {!validated_by_ids} many times (the minimization loop's
    pattern). *)

val validated_by_ids : t -> Tangled_engine.Id_set.t -> int
(** Unexpired chains anchored by any id in the set: a single reduction
    over the per-root count array. *)

val validated_by_store : t -> Tangled_store.Root_store.t -> int
(** Unexpired chains whose verified anchor is an enabled member of the
    store — Table 3's per-store count.  Equivalent to
    [validated_by_ids t (store_ids t store)]. *)

val count_for_id : t -> int -> int
(** Unexpired validated-chain count for one interned root id (0 for
    ids the Notary never saw anchor, or out of range). *)

val per_root_counts : t -> (string, int) Hashtbl.t
(** Unexpired validated-chain count per root equivalence key — the raw
    series behind Figure 3.  Materialised from the index for callers
    that want string keys; id-based callers should use
    {!count_for_id}. *)

val counts_for_certs : t -> Tangled_x509.Certificate.t list -> float array
(** Per-certificate validation counts for a root population (0 for
    roots the Notary never saw validate), ready for an ECDF. *)

val has_record : t -> Tangled_x509.Certificate.t -> bool
(** Whether the Notary knows this certificate: it anchored or appeared
    in observed traffic, or belongs to one of the official stores it
    mirrors — the Figure 2 classification primitive. *)

val classify :
  t -> Tangled_x509.Certificate.t -> Tangled_pki.Paper_data.notary_class
(** The Figure 2 legend class of a device-store extra, computed from
    the Notary's perspective (store membership + traffic records). *)

val crosscheck : t -> Tangled_store.Root_store.t -> sample:int -> seed:int -> bool
(** Validate [sample] random chains with the full path-building
    validator and compare with the index's anchor-id membership
    shortcut; [true] when they agree everywhere.  Used by the test
    suite to justify the fast counting path. *)
