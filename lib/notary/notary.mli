(** The passive certificate observatory (§4.2).

    The real ICSI Notary watches TLS handshakes on eight networks and
    stores ~1.9 M unique certificates (~1 M unexpired).  This simulator
    issues a scaled-down leaf population from the universe's active
    roots, with per-root volumes proportional to the traffic weights
    the blueprint derived from Table 3, then {e measures} everything
    the paper measures — cryptographically verifying every chain once
    and aggregating per-root and per-store validation counts.

    {2 Streaming generation over a columnar arena}

    The corpus is held in a {!Tangled_x509.Arena}: raw leaf DER in one
    off-heap blob plus fixed-width columns (issuer index, verified
    anchor id, validity window, flags, key fingerprint).  A chain is
    an [int] handle; the boxed {!chain} view is re-materialised on
    demand by {!chain} and dropped by the caller.  Generation streams:
    a sequential {e planning} pass performs every PRNG draw in the same
    order the original single-pass generator did, then fixed-size
    batches of chains are built in parallel (pure RSA issuance + chain
    verification), appended to the arena, folded into the incremental
    {!Tangled_engine.Coverage} index, and dropped.  Peak boxed memory
    is one batch whatever the corpus size, and seeded output is
    byte-identical at any [jobs] count — including the arena digest.

    Every aggregate query below is an array reduction over the
    coverage index rather than a scan of the corpus. *)

type chain = {
  leaf : Tangled_x509.Certificate.t;
  intermediates : Tangled_x509.Certificate.t list;
  expired : bool;  (** outside its validity window at the paper epoch *)
  anchor : string option;
      (** equivalence key of the verified issuing root; [None] when the
          signature chain does not verify *)
}
(** Materialised view of one chain handle — decode on demand, drop when
    done; nothing retains these. *)

type t = {
  universe : Tangled_pki.Blueprint.t;
  arena : Tangled_x509.Arena.t;
      (** the corpus: one row + DER slice per chain, handle = chain
          index *)
  inter_certs : Tangled_x509.Certificate.t array;
      (** per-issuer shared intermediate, indexed by the arena's
          [issuer_id] column *)
  scale : float;  (** leaves here per paper leaf (~1 M) *)
  interner : Tangled_engine.Interner.t;
      (** the universe's root-identity table (shared, not a copy) *)
  coverage : Tangled_engine.Coverage.t;
      (** incremental per-root validated counts, folded during
          generation *)
}

val generate :
  ?leaves:int ->
  ?expired_fraction:float ->
  ?jobs:int ->
  seed:int ->
  Tangled_pki.Blueprint.t ->
  t
(** [generate ~seed universe] issues [leaves] (default 10,000) unexpired
    chains plus an [expired_fraction] (default 0.10; the paper's
    population is 47% expired — the default trades that for speed and
    the fraction only affects totals, never the analysis shape).
    Per-root leaf counts use largest-remainder apportionment of the
    traffic weights so every active root validates at least one
    certificate.  About half the chains go through an intermediate CA.
    [jobs] (default 1) bounds the worker domains used for the build
    phase.  Deterministic in [seed], independent of [jobs]. *)

val unexpired : t -> int
val total : t -> int

val arena : t -> Tangled_x509.Arena.t
(** The backing arena (also reachable through the record) — digest,
    memory accounting, column reads. *)

(** {2 Per-chain reads} — O(1) column lookups; no DER decode. *)

val anchor_id : t -> int -> int
(** Chain [i]'s verified anchor as an interned root id, or [-1]. *)

val anchor_key : t -> int -> string option
(** Chain [i]'s verified anchor equivalence key. *)

val chain_expired : t -> int -> bool
val via_intermediate : t -> int -> bool

val chain : t -> int -> chain
(** Materialise chain [i] from its DER slice and columns.  Costs one
    certificate decode; callers iterate handles and drop the view. *)

(** {2 Aggregate queries} *)

val store_ids : t -> Tangled_store.Root_store.t -> Tangled_engine.Id_set.t
(** The store's enabled membership as interned root ids — compute once,
    query {!validated_by_ids} many times (the minimization loop's
    pattern). *)

val validated_by_ids : t -> Tangled_engine.Id_set.t -> int
(** Unexpired chains anchored by any id in the set: a single reduction
    over the per-root count array. *)

val validated_by_store : t -> Tangled_store.Root_store.t -> int
(** Unexpired chains whose verified anchor is an enabled member of the
    store — Table 3's per-store count.  Equivalent to
    [validated_by_ids t (store_ids t store)]. *)

val count_for_id : t -> int -> int
(** Unexpired validated-chain count for one interned root id (0 for
    ids the Notary never saw anchor, or out of range). *)

val per_root_counts : t -> (string, int) Hashtbl.t
(** Unexpired validated-chain count per root equivalence key — the raw
    series behind Figure 3.  Materialised from the index for callers
    that want string keys; id-based callers should use
    {!count_for_id}. *)

val counts_for_certs : t -> Tangled_x509.Certificate.t list -> float array
(** Per-certificate validation counts for a root population (0 for
    roots the Notary never saw validate), ready for an ECDF. *)

val has_record : t -> Tangled_x509.Certificate.t -> bool
(** Whether the Notary knows this certificate: it anchored or appeared
    in observed traffic, or belongs to one of the official stores it
    mirrors — the Figure 2 classification primitive. *)

val classify :
  t -> Tangled_x509.Certificate.t -> Tangled_pki.Paper_data.notary_class
(** The Figure 2 legend class of a device-store extra, computed from
    the Notary's perspective (store membership + traffic records). *)

val crosscheck : t -> Tangled_store.Root_store.t -> sample:int -> seed:int -> bool
(** Validate [sample] random chains with the full path-building
    validator and compare with the arena's anchor-id membership
    shortcut; [true] when they agree everywhere.  Used by the test
    suite to justify the fast counting path. *)

val set_lean : bool -> unit
(** Toggle lean generation (on by default): cryptographically verify a
    deterministic 1-in-64 sample of the chains it just signed instead
    of every one (an audited chain that fails aborts generation), and
    skip the redundant re-decode of freshly issued leaves.  The arena
    is byte-identical either way and at any [jobs]; the toggle exists
    for the bench's before/after pairs. *)

val lean_enabled : unit -> bool
