module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Prng = Tangled_util.Prng
module Ts = Tangled_util.Timestamp
module C = Tangled_x509.Certificate
module Dn = Tangled_x509.Dn
module Authority = Tangled_x509.Authority
module Rsa = Tangled_crypto.Rsa
module Rs = Tangled_store.Root_store
module Chain = Tangled_validation.Chain
module Interner = Tangled_engine.Interner
module Id_set = Tangled_engine.Id_set
module Coverage = Tangled_engine.Coverage
module Parallel = Tangled_engine.Parallel
module Obs = Tangled_obs.Obs

(* build-phase instrumentation: spans are opened from the coordinating
   domain only (never inside Parallel workers), so the span tree is
   identical at any --jobs *)
let chains_gauge = Obs.gauge "notary.chains"

type chain = {
  leaf : C.t;
  intermediates : C.t list;
  expired : bool;
  anchor : string option;
}

type raw = { r_universe : BP.t; r_chains : chain array; r_scale : float }

type t = {
  universe : BP.t;
  chains : chain array;
  scale : float;
  interner : Interner.t;
  coverage : Coverage.t;
}

let key_pool_size = 32

(* Largest-remainder apportionment of [total] items over [weights]. *)
let apportion weights total =
  let n = Array.length weights in
  let sum = Array.fold_left ( +. ) 0.0 weights in
  if sum <= 0.0 || n = 0 then Array.make n 0
  else begin
    let ideal = Array.map (fun w -> w /. sum *. float_of_int total) weights in
    let counts = Array.map (fun x -> int_of_float (floor x)) ideal in
    (* every positive-weight issuer gets at least one leaf: "active"
       roots must validate something, per the Table 4 derivation *)
    Array.iteri (fun i w -> if w > 0.0 && counts.(i) = 0 then counts.(i) <- 1) weights;
    let assigned = Array.fold_left ( + ) 0 counts in
    let remainder = total - assigned in
    if remainder > 0 then begin
      let order =
        Array.init n (fun i -> i)
        |> Array.to_list
        |> List.sort (fun a b ->
               Stdlib.compare
                 (ideal.(b) -. floor ideal.(b))
                 (ideal.(a) -. floor ideal.(a)))
        |> Array.of_list
      in
      for k = 0 to remainder - 1 do
        let i = order.(k mod n) in
        counts.(i) <- counts.(i) + 1
      done
    end;
    counts
  end

let verify_chain ~now ~issuer_root chain_certs leaf =
  (* one full cryptographic walk per chain; store counting afterwards is
     pure anchor-set membership.  Verifications go through the
     domain-local memo: each issuer signs every leaf over the same
     intermediate, so all but the first walk per (issuer, intermediate)
     pair hit the cache. *)
  let rec walk cert rest =
    match rest with
    | [] ->
        let root = issuer_root in
        if Chain.verify_cert ~issuer:root cert then Some (C.equivalence_key root)
        else None
    | inter :: tail ->
        if Chain.verify_cert ~issuer:inter cert then walk inter tail else None
  in
  ignore now;
  walk leaf chain_certs

(* Everything random about one chain, drawn in the sequential planning
   pass.  Construction from a plan is pure, so the expensive build
   (RSA-sign the leaf, verify the chain) parallelises across domains
   without perturbing the PRNG stream: any worker count produces the
   same bytes the old single-pass generator did. *)
type plan = {
  p_issuer : int;
  p_via_intermediate : bool;
  p_serial : int;
  p_leaf_no : int;
  p_expired : bool;
}

let generate_raw ?(leaves = 10_000) ?(expired_fraction = 0.10) ?(jobs = 1) ~seed
    universe =
  let master = Prng.create seed in
  let rng_keys = Prng.split master "notary-keys" in
  let rng_issue = Prng.split master "notary-issue" in
  let now = Ts.paper_epoch in
  let digest = Tangled_hash.Digest_kind.SHA1 in
  let bits = universe.BP.key_bits in
  (* reusable subject-key pools (see Authority.issue_leaf docs) *)
  let leaf_keys, inter_keys =
    Obs.span "notary.keys" (fun () ->
        ( Array.init key_pool_size (fun _ -> Rsa.generate ~mr_rounds:6 rng_keys ~bits),
          Array.init key_pool_size (fun _ -> Rsa.generate ~mr_rounds:6 rng_keys ~bits) ))
  in
  (* issuers: every traffic-active public root and private CA *)
  let public_issuers =
    Array.to_list universe.BP.roots
    |> List.filter (fun (r : BP.root) -> r.BP.traffic_weight > 0.0)
    |> List.map (fun r -> (r.BP.authority, r.BP.traffic_weight))
  in
  let issuers = Array.of_list (public_issuers @ Array.to_list universe.BP.private_cas) in
  let weights = Array.map snd issuers in
  let counts = apportion weights leaves in
  (* one intermediate per issuer, shared by ~half its leaves.  The
     issuing key comes from the pool, so construction draws nothing:
     safe to build across domains.  [null_rng] satisfies the issuance
     signatures; with every key supplied it is never advanced. *)
  let null_rng () = Prng.create 0 in
  let intermediates =
    Obs.span "notary.intermediates" @@ fun () ->
    Parallel.tabulate ~jobs (Array.length issuers) (fun i ->
        let authority, _ = issuers.(i) in
        let key = inter_keys.(i mod key_pool_size) in
        let parent_cn =
          Option.value ~default:"CA"
            (Dn.common_name authority.Authority.certificate.C.subject)
        in
        Authority.issue_intermediate ~bits ~digest ~key
          ~serial:(Tangled_numeric.Bigint.of_int (50_000 + i))
          (null_rng ()) ~parent:authority
          (Dn.make ~o:parent_cn (parent_cn ^ " Issuing CA")))
  in
  (* sequential planning pass: replicates the seed generator's draw
     order exactly (one bool per chain; one issuer pick per expired
     chain) *)
  Obs.span "notary.plan_and_build" @@ fun () ->
  let plans = ref [] in
  let serial = ref 1_000_000 in
  let leaf_no = ref 0 in
  let plan_one ~expired issuer_i =
    let via_intermediate = Prng.bool rng_issue in
    incr serial;
    incr leaf_no;
    plans :=
      {
        p_issuer = issuer_i;
        p_via_intermediate = via_intermediate;
        p_serial = !serial;
        p_leaf_no = !leaf_no;
        p_expired = expired;
      }
      :: !plans
  in
  Array.iteri
    (fun i n ->
      for _ = 1 to n do
        plan_one ~expired:false i
      done)
    counts;
  let n_expired = int_of_float (float_of_int leaves *. expired_fraction) in
  for _ = 1 to n_expired do
    plan_one ~expired:true (Prng.int rng_issue (Array.length issuers))
  done;
  let plans = Array.of_list (List.rev !plans) in
  (* parallel build + verify: pure per plan *)
  let build (p : plan) =
    let authority, _ = issuers.(p.p_issuer) in
    let parent = if p.p_via_intermediate then intermediates.(p.p_issuer) else authority in
    let domain = Printf.sprintf "www.site%06d.example" p.p_leaf_no in
    let not_before, not_after =
      if p.p_expired then (Ts.of_date 2010 1 1, Ts.add_days Ts.notary_start (-30))
      else (Ts.of_date 2012 6 1, Ts.add_years now 2)
    in
    let leaf =
      Authority.issue_leaf ~bits ~digest
        ~key:leaf_keys.(p.p_leaf_no mod key_pool_size)
        ~serial:(Tangled_numeric.Bigint.of_int p.p_serial)
        ~not_before ~not_after (null_rng ()) ~parent ~dns_names:[ domain ]
        (Dn.make domain)
    in
    let inters = if p.p_via_intermediate then [ parent.Authority.certificate ] else [] in
    let anchor =
      verify_chain ~now ~issuer_root:authority.Authority.certificate inters leaf
    in
    { leaf; intermediates = inters; expired = p.p_expired; anchor }
  in
  let chains = Parallel.tabulate ~jobs (Array.length plans) (fun i -> build plans.(i)) in
  Obs.set_gauge chains_gauge (Array.length chains);
  {
    r_universe = universe;
    r_chains = chains;
    r_scale = float_of_int leaves /. float_of_int PD.notary_unexpired_certs;
  }

let index raw =
  let universe = raw.r_universe in
  let interner = universe.BP.interner in
  let chains = raw.r_chains in
  (* anchors are issuer identities interned at blueprint build; intern
     defensively so an unexpected anchor still gets counted *)
  let anchor_ids =
    Array.map
      (fun c ->
        match c.anchor with Some key -> Interner.intern interner key | None -> -1)
      chains
  in
  let coverage =
    Coverage.build
      ~n_ids:(Interner.cardinal interner)
      ~total:(Array.length chains)
      ~anchor:(fun i -> anchor_ids.(i))
      ~expired:(fun i -> chains.(i).expired)
  in
  { universe; chains; scale = raw.r_scale; interner; coverage }

let generate ?leaves ?expired_fraction ?jobs ~seed universe =
  index (generate_raw ?leaves ?expired_fraction ?jobs ~seed universe)

let unexpired t = Coverage.unexpired t.coverage

let total t = Array.length t.chains

let store_ids t store = Rs.id_set t.interner store

let validated_by_ids t set = Coverage.validated_by t.coverage set

let validated_by_store t store = validated_by_ids t (store_ids t store)

let count_for_id t id = Coverage.count t.coverage id

let per_root_counts t =
  let tbl = Hashtbl.create 512 in
  for id = 0 to Interner.cardinal t.interner - 1 do
    let c = Coverage.count t.coverage id in
    if c > 0 then Hashtbl.replace tbl (Interner.key t.interner id) c
  done;
  tbl

let counts_for_certs t certs =
  certs
  |> List.map (fun cert ->
         match Interner.find t.interner (C.equivalence_key cert) with
         | Some id -> float_of_int (Coverage.count t.coverage id)
         | None -> 0.0)
  |> Array.of_list

let has_record t cert =
  let key = C.equivalence_key cert in
  (* mirrored official stores *)
  Rs.mem_key t.universe.BP.mozilla key
  || Rs.mem_key t.universe.BP.ios7 key
  || List.exists
       (fun v -> Rs.mem_key (t.universe.BP.aosp v) key)
       PD.android_versions
  ||
  (* or seen anchoring live traffic *)
  match BP.find_root_by_key t.universe key with
  | Some r -> r.BP.traffic_weight > 0.0
  | None -> false

let classify t cert =
  let key = C.equivalence_key cert in
  let in_mozilla = Rs.mem_key t.universe.BP.mozilla key in
  let in_ios = Rs.mem_key t.universe.BP.ios7 key in
  if in_mozilla && in_ios then PD.Mozilla_and_ios
  else if in_ios then PD.Ios_only
  else if has_record t cert then PD.Android_only
  else PD.Unrecorded

let crosscheck t store ~sample ~seed =
  let rng = Prng.create seed in
  let now = Ts.paper_epoch in
  let ids = store_ids t store in
  let ok = ref true in
  for _ = 1 to sample do
    let i = Prng.int rng (Array.length t.chains) in
    let c = t.chains.(i) in
    (* the production path: anchor-id membership against the index *)
    let fast =
      (not (Coverage.chain_expired t.coverage i))
      && Id_set.mem ids (Coverage.anchor t.coverage i)
    in
    let slow =
      (not c.expired)
      && Chain.anchor_id ~interner:t.interner ~now ~store
           (c.leaf :: c.intermediates)
         <> None
    in
    if fast <> slow then ok := false
  done;
  !ok
