module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Prng = Tangled_util.Prng
module Ts = Tangled_util.Timestamp
module C = Tangled_x509.Certificate
module Dn = Tangled_x509.Dn
module Authority = Tangled_x509.Authority
module Arena = Tangled_x509.Arena
module Rsa = Tangled_crypto.Rsa
module Rs = Tangled_store.Root_store
module Chain = Tangled_validation.Chain
module Interner = Tangled_engine.Interner
module Id_set = Tangled_engine.Id_set
module Coverage = Tangled_engine.Coverage
module Parallel = Tangled_engine.Parallel
module Obs = Tangled_obs.Obs

(* build-phase instrumentation: spans are opened from the coordinating
   domain only (never inside Parallel workers), so the span tree is
   identical at any --jobs *)
let chains_gauge = Obs.gauge "notary.chains"

type chain = {
  leaf : C.t;
  intermediates : C.t list;
  expired : bool;
  anchor : string option;
}

type t = {
  universe : BP.t;
  arena : Arena.t;
  inter_certs : C.t array;
  scale : float;
  interner : Interner.t;
  coverage : Coverage.t;
}

let key_pool_size = 32

(* Lean generation verifies a deterministic 1-in-[audit_interval]
   sample of chains instead of every one.  A generated chain's
   signatures were produced one stack frame up, so full verification
   is a self-check, not new information; the sample keeps the check
   honest (an audited chain that fails to verify aborts generation)
   while removing the dominant non-signing cost.  Sampling is by chain
   index, so the arena is byte-identical at any [jobs] and to a
   non-lean run.  [set_lean false] restores the verify-everything
   path for the bench's before/after pairs. *)
let lean_on = Atomic.make true
let set_lean b = Atomic.set lean_on b
let lean_enabled () = Atomic.get lean_on
let audit_interval = 64

(* chains built (boxed) per streaming batch before they are appended to
   the arena and dropped; peak boxed memory is O(batch), not O(total) *)
let batch_size = 4096

(* Largest-remainder apportionment of [total] items over [weights]. *)
let apportion weights total =
  let n = Array.length weights in
  let sum = Array.fold_left ( +. ) 0.0 weights in
  if sum <= 0.0 || n = 0 then Array.make n 0
  else begin
    let ideal = Array.map (fun w -> w /. sum *. float_of_int total) weights in
    let counts = Array.map (fun x -> int_of_float (floor x)) ideal in
    (* every positive-weight issuer gets at least one leaf: "active"
       roots must validate something, per the Table 4 derivation *)
    Array.iteri (fun i w -> if w > 0.0 && counts.(i) = 0 then counts.(i) <- 1) weights;
    let assigned = Array.fold_left ( + ) 0 counts in
    let remainder = total - assigned in
    if remainder > 0 then begin
      let order =
        Array.init n (fun i -> i)
        |> Array.to_list
        |> List.sort (fun a b ->
               Stdlib.compare
                 (ideal.(b) -. floor ideal.(b))
                 (ideal.(a) -. floor ideal.(a)))
        |> Array.of_list
      in
      for k = 0 to remainder - 1 do
        let i = order.(k mod n) in
        counts.(i) <- counts.(i) + 1
      done
    end;
    counts
  end

let verify_chain ~now ~issuer_root chain_certs leaf =
  (* one full cryptographic walk per chain; store counting afterwards is
     pure anchor-set membership.  Verifications go through the
     domain-local memo: each issuer signs every leaf over the same
     intermediate, so all but the first walk per (issuer, intermediate)
     pair hit the cache. *)
  let rec walk cert rest =
    match rest with
    | [] ->
        let root = issuer_root in
        if Chain.verify_cert ~issuer:root cert then Some (C.equivalence_key root)
        else None
    | inter :: tail ->
        if Chain.verify_cert ~issuer:inter cert then walk inter tail else None
  in
  ignore now;
  walk leaf chain_certs

let generate ?(leaves = 10_000) ?(expired_fraction = 0.10) ?(jobs = 1) ~seed
    universe =
  let master = Prng.create seed in
  let rng_keys = Prng.split master "notary-keys" in
  let rng_issue = Prng.split master "notary-issue" in
  let now = Ts.paper_epoch in
  let digest = Tangled_hash.Digest_kind.SHA1 in
  let bits = universe.BP.key_bits in
  (* reusable subject-key pools (see Authority.issue_leaf docs) *)
  let leaf_keys, inter_keys =
    Obs.span "notary.keys" (fun () ->
        ( Array.init key_pool_size (fun _ -> Rsa.generate ~mr_rounds:6 rng_keys ~bits),
          Array.init key_pool_size (fun _ -> Rsa.generate ~mr_rounds:6 rng_keys ~bits) ))
  in
  (* issuers: every traffic-active public root and private CA *)
  let public_issuers =
    Array.to_list universe.BP.roots
    |> List.filter (fun (r : BP.root) -> r.BP.traffic_weight > 0.0)
    |> List.map (fun r -> (r.BP.authority, r.BP.traffic_weight))
  in
  let issuers = Array.of_list (public_issuers @ Array.to_list universe.BP.private_cas) in
  (* anchor identities, interned per issuer rather than per chain *)
  let anchor_keys =
    Array.map
      (fun (a, _) -> C.equivalence_key a.Authority.certificate)
      issuers
  in
  let weights = Array.map snd issuers in
  let counts = apportion weights leaves in
  (* one intermediate per issuer, shared by ~half its leaves.  The
     issuing key comes from the pool, so construction draws nothing:
     safe to build across domains.  [null_rng] satisfies the issuance
     signatures; with every key supplied it is never advanced. *)
  let null_rng () = Prng.create 0 in
  let intermediates =
    Obs.span "notary.intermediates" @@ fun () ->
    Parallel.tabulate ~jobs (Array.length issuers) (fun i ->
        let authority, _ = issuers.(i) in
        let key = inter_keys.(i mod key_pool_size) in
        let parent_cn =
          Option.value ~default:"CA"
            (Dn.common_name authority.Authority.certificate.C.subject)
        in
        Authority.issue_intermediate ~bits ~digest ~key
          ~serial:(Tangled_numeric.Bigint.of_int (50_000 + i))
          (null_rng ()) ~parent:authority
          (Dn.make ~o:parent_cn (parent_cn ^ " Issuing CA")))
  in
  Obs.span "notary.plan_and_build" @@ fun () ->
  (* sequential planning pass into flat arrays: replicates the seed
     generator's draw order exactly (one bool per chain, with the
     issuer pick of an expired chain drawn before its bool), so seeded
     output is byte-identical to the pre-streaming generator *)
  let assigned = Array.fold_left ( + ) 0 counts in
  let n_expired = int_of_float (float_of_int leaves *. expired_fraction) in
  let total = assigned + n_expired in
  let p_issuer = Array.make (Stdlib.max 1 total) 0 in
  let p_via = Bytes.make (Stdlib.max 1 total) '\000' in
  let next = ref 0 in
  let plan_one issuer_i =
    let via_intermediate = Prng.bool rng_issue in
    p_issuer.(!next) <- issuer_i;
    if via_intermediate then Bytes.set p_via !next '\001';
    incr next
  in
  Array.iteri
    (fun i n ->
      for _ = 1 to n do
        plan_one i
      done)
    counts;
  for _ = 1 to n_expired do
    plan_one (Prng.int rng_issue (Array.length issuers))
  done;
  (* streaming build: construct a batch of boxed chains in parallel
     (pure per plan), fold each into the arena + incremental coverage
     index sequentially, drop the batch.  Peak boxed memory is one
     batch whatever the corpus size; the appended corpus lives off-heap. *)
  let interner = universe.BP.interner in
  let arena =
    Arena.create
      ~blob_capacity:(Stdlib.max (1 lsl 20) (total * 512))
      ~capacity:(Stdlib.max 1 total) ()
  in
  let coverage = Coverage.create ~n_ids:(Interner.cardinal interner) () in
  let build j =
    let issuer_i = p_issuer.(j) in
    let authority, _ = issuers.(issuer_i) in
    let via = Bytes.get p_via j <> '\000' in
    let expired = j >= assigned in
    let parent = if via then intermediates.(issuer_i) else authority in
    let leaf_no = j + 1 in
    let domain = Printf.sprintf "www.site%06d.example" leaf_no in
    let not_before, not_after =
      if expired then (Ts.of_date 2010 1 1, Ts.add_days Ts.notary_start (-30))
      else (Ts.of_date 2012 6 1, Ts.add_years now 2)
    in
    let leaf =
      Authority.issue_leaf ~bits ~digest
        ~key:leaf_keys.(leaf_no mod key_pool_size)
        ~serial:(Tangled_numeric.Bigint.of_int (1_000_000 + leaf_no))
        ~not_before ~not_after (null_rng ()) ~parent ~dns_names:[ domain ]
        (Dn.make domain)
    in
    let inters = if via then [ parent.Authority.certificate ] else [] in
    let anchor =
      if lean_enabled () && j mod audit_interval <> 0 then
        (* unaudited lean chain: anchor identity without the redundant
           self-verification (the per-issuer key is precomputed) *)
        Some anchor_keys.(issuer_i)
      else begin
        let r =
          verify_chain ~now ~issuer_root:authority.Authority.certificate inters
            leaf
        in
        if lean_enabled () && r = None then
          failwith
            (Printf.sprintf "Notary: sampled chain audit failed at index %d" j);
        r
      end
    in
    (leaf, anchor)
  in
  let lo = ref 0 in
  while !lo < total do
    let nb = Stdlib.min batch_size (total - !lo) in
    let base = !lo in
    let batch = Parallel.tabulate ~jobs nb (fun i -> build (base + i)) in
    (* sequential fold: anchor interning and index updates happen in
       chain order, independent of the worker count above *)
    Array.iteri
      (fun i (leaf, anchor) ->
        let j = base + i in
        let expired = j >= assigned in
        let anchor_id =
          match anchor with
          | Some key -> Interner.intern interner key
          | None -> -1
        in
        let flags =
          (if expired then Arena.flag_expired else 0)
          lor
          if Bytes.get p_via j <> '\000' then Arena.flag_via_intermediate else 0
        in
        let key_fp = String.get_int64_be (C.fingerprint leaf) 0 in
        let (_ : int) =
          Arena.append arena ~der:leaf.C.raw ~subject_id:(-1)
            ~issuer_id:p_issuer.(j) ~anchor_id ~not_before:leaf.C.not_before
            ~not_after:leaf.C.not_after ~flags ~key_fp
        in
        Coverage.append coverage ~anchor:anchor_id ~expired)
      batch;
    lo := base + nb
  done;
  Obs.set_gauge chains_gauge total;
  {
    universe;
    arena;
    inter_certs = Array.map (fun a -> a.Authority.certificate) intermediates;
    scale = float_of_int leaves /. float_of_int PD.notary_unexpired_certs;
    interner;
    coverage;
  }

let arena t = t.arena

let total t = Arena.length t.arena

let unexpired t = Coverage.unexpired t.coverage

let anchor_id t i = Arena.anchor_id t.arena i

let anchor_key t i =
  let a = Arena.anchor_id t.arena i in
  if a >= 0 then Some (Interner.key t.interner a) else None

let chain_expired t i = Arena.expired t.arena i

let via_intermediate t i = Arena.via_intermediate t.arena i

let chain t i =
  let leaf =
    match Arena.decode t.arena i with
    | Ok c -> c
    | Error e -> invalid_arg (Printf.sprintf "Notary.chain %d: %s" i e)
  in
  let intermediates =
    if Arena.via_intermediate t.arena i then
      [ t.inter_certs.(Arena.issuer_id t.arena i) ]
    else []
  in
  {
    leaf;
    intermediates;
    expired = Arena.expired t.arena i;
    anchor = anchor_key t i;
  }

let store_ids t store = Rs.id_set t.interner store

let validated_by_ids t set = Coverage.validated_by t.coverage set

let validated_by_store t store = validated_by_ids t (store_ids t store)

let count_for_id t id = Coverage.count t.coverage id

let per_root_counts t =
  let tbl = Hashtbl.create 512 in
  for id = 0 to Interner.cardinal t.interner - 1 do
    let c = Coverage.count t.coverage id in
    if c > 0 then Hashtbl.replace tbl (Interner.key t.interner id) c
  done;
  tbl

let counts_for_certs t certs =
  certs
  |> List.map (fun cert ->
         match Interner.find t.interner (C.equivalence_key cert) with
         | Some id -> float_of_int (Coverage.count t.coverage id)
         | None -> 0.0)
  |> Array.of_list

let has_record t cert =
  let key = C.equivalence_key cert in
  (* mirrored official stores *)
  Rs.mem_key t.universe.BP.mozilla key
  || Rs.mem_key t.universe.BP.ios7 key
  || List.exists
       (fun v -> Rs.mem_key (t.universe.BP.aosp v) key)
       PD.android_versions
  ||
  (* or seen anchoring live traffic *)
  match BP.find_root_by_key t.universe key with
  | Some r -> r.BP.traffic_weight > 0.0
  | None -> false

let classify t cert =
  let key = C.equivalence_key cert in
  let in_mozilla = Rs.mem_key t.universe.BP.mozilla key in
  let in_ios = Rs.mem_key t.universe.BP.ios7 key in
  if in_mozilla && in_ios then PD.Mozilla_and_ios
  else if in_ios then PD.Ios_only
  else if has_record t cert then PD.Android_only
  else PD.Unrecorded

let crosscheck t store ~sample ~seed =
  let rng = Prng.create seed in
  let now = Ts.paper_epoch in
  let ids = store_ids t store in
  let ok = ref true in
  for _ = 1 to sample do
    let i = Prng.int rng (total t) in
    let c = chain t i in
    (* the production path: anchor-id membership against the columns *)
    let fast =
      (not (Arena.expired t.arena i)) && Id_set.mem ids (Arena.anchor_id t.arena i)
    in
    let slow =
      (not c.expired)
      && Chain.anchor_id ~interner:t.interner ~now ~store
           (c.leaf :: c.intermediates)
         <> None
    in
    if fast <> slow then ok := false
  done;
  !ok
