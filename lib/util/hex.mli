(** Hexadecimal encoding and decoding of byte strings.  Table-driven in
    both directions: one output allocation, no per-byte closures. *)

val encode : string -> string
(** [encode s] is the lowercase hexadecimal rendering of [s], two
    characters per input byte. *)

val decode : string -> string
(** [decode h] is the byte string whose hexadecimal rendering is [h].
    Accepts upper- and lowercase digits.
    @raise Invalid_argument if [h] has odd length or a non-hex character. *)

val decode_opt : string -> string option
(** Non-raising {!decode}: [None] on odd length or a non-hex character.
    For validating untrusted input (e.g. ingest record fields). *)

val encode_colon : string -> string
(** [encode_colon s] is like {!encode} but with [":"] between bytes, the
    conventional rendering of certificate fingerprints. *)
