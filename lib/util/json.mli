(** Minimal JSON (RFC 8259 subset) for machine-readable dataset
    exports and their re-ingestion. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialise; [pretty] (default false) adds two-space indentation. *)

val escape_string : string -> string
(** The quoted, escaped form of a string literal. *)

val parse : string -> (t, string) result
(** Total recursive-descent parser: never raises, whatever the input.
    Integral numbers in native range become [Int]; everything else
    numeric becomes [Float].  Nesting beyond 256 levels, trailing
    garbage and unescaped control characters are errors. *)

val error_is_truncation : string -> bool
(** Whether a {!parse} error message denotes input that ended
    mid-value — the signature of a partial (truncated) upload, as
    opposed to structural malformation. *)

val member : string -> t -> t option
(** [member key json] is the field [key] of an [Obj], else [None]. *)
