type t = int

let epoch = 0

let is_leap y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap y then 29 else 28
  | _ -> invalid_arg "Timestamp: invalid month"

(* Howard Hinnant's days_from_civil: days since 1970-01-01. *)
let days_from_civil y m d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  let y = if m <= 2 then y + 1 else y in
  (y, m, d)

let of_date ?(hour = 0) ?(minute = 0) ?(second = 0) y m d =
  if m < 1 || m > 12 then invalid_arg "Timestamp.of_date: invalid month";
  if d < 1 || d > days_in_month y m then invalid_arg "Timestamp.of_date: invalid day";
  if hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0 || second > 60 then
    invalid_arg "Timestamp.of_date: invalid time";
  (days_from_civil y m d * 86400) + (hour * 3600) + (minute * 60) + second

let to_civil t =
  let days = if t >= 0 then t / 86400 else (t - 86399) / 86400 in
  let secs = t - (days * 86400) in
  let y, m, d = civil_from_days days in
  (y, m, d, secs / 3600, secs / 60 mod 60, secs mod 60)

let add_days t n = t + (n * 86400)

let add_years t n =
  let y, m, d, hh, mm, ss = to_civil t in
  let y' = y + n in
  let d' = Stdlib.min d (days_in_month y' m) in
  of_date ~hour:hh ~minute:mm ~second:ss y' m d'

let paper_epoch = of_date 2014 4 1
let notary_start = of_date 2012 2 1

let compare = Stdlib.compare

let to_utc_string t =
  let y, m, d, hh, mm, ss = to_civil t in
  Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02d UTC" y m d hh mm ss

let to_asn1_utctime t =
  let y, m, d, hh, mm, ss = to_civil t in
  if y < 1950 || y > 2049 then invalid_arg "Timestamp.to_asn1_utctime: out of UTCTime range";
  Printf.sprintf "%02d%02d%02d%02d%02d%02dZ" (y mod 100) m d hh mm ss

let to_asn1_generalized t =
  let y, m, d, hh, mm, ss = to_civil t in
  Printf.sprintf "%04d%02d%02d%02d%02d%02dZ" y m d hh mm ss

let parse_digits s off n =
  let acc = ref 0 in
  let ok = ref true in
  for i = off to off + n - 1 do
    match s.[i] with
    | '0' .. '9' -> acc := (!acc * 10) + (Char.code s.[i] - Char.code '0')
    | _ -> ok := false
  done;
  if !ok then Some !acc else None

let of_asn1_utctime s =
  if String.length s <> 13 || s.[12] <> 'Z' then None
  else
    match
      ( parse_digits s 0 2, parse_digits s 2 2, parse_digits s 4 2,
        parse_digits s 6 2, parse_digits s 8 2, parse_digits s 10 2 )
    with
    | Some yy, Some m, Some d, Some hh, Some mm, Some ss ->
        let y = if yy >= 50 then 1900 + yy else 2000 + yy in
        (try Some (of_date ~hour:hh ~minute:mm ~second:ss y m d)
         with Invalid_argument _ -> None)
    | _ -> None

let of_asn1_generalized s =
  if String.length s <> 15 || s.[14] <> 'Z' then None
  else
    match
      ( parse_digits s 0 4, parse_digits s 4 2, parse_digits s 6 2,
        parse_digits s 8 2, parse_digits s 10 2, parse_digits s 12 2 )
    with
    | Some y, Some m, Some d, Some hh, Some mm, Some ss ->
        (try Some (of_date ~hour:hh ~minute:mm ~second:ss y m d)
         with Invalid_argument _ -> None)
    | _ -> None

let of_utc_string s =
  (* inverse of [to_utc_string]: "YYYY-MM-DD HH:MM:SS UTC" *)
  if String.length s <> 23 || String.sub s 19 4 <> " UTC" then None
  else if s.[4] <> '-' || s.[7] <> '-' || s.[10] <> ' ' || s.[13] <> ':' || s.[16] <> ':'
  then None
  else
    match
      ( parse_digits s 0 4, parse_digits s 5 2, parse_digits s 8 2,
        parse_digits s 11 2, parse_digits s 14 2, parse_digits s 17 2 )
    with
    | Some y, Some m, Some d, Some hh, Some mm, Some ss ->
        (try Some (of_date ~hour:hh ~minute:mm ~second:ss y m d)
         with Invalid_argument _ -> None)
    | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_utc_string t)
