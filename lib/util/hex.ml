(* Table-driven: [enc_table] holds the two hex characters of every byte
   value, [dec_table] maps every character to its nibble value or -1, so
   both directions run as straight-line unsafe table lookups with a
   single output allocation. *)

let enc_table =
  String.init 512 (fun i ->
      let b = i / 2 in
      "0123456789abcdef".[if i land 1 = 0 then b lsr 4 else b land 0xf])

let dec_table =
  let t = Array.make 256 (-1) in
  for c = Char.code '0' to Char.code '9' do
    t.(c) <- c - Char.code '0'
  done;
  for c = Char.code 'a' to Char.code 'f' do
    t.(c) <- c - Char.code 'a' + 10
  done;
  for c = Char.code 'A' to Char.code 'F' do
    t.(c) <- c - Char.code 'A' + 10
  done;
  t

let encode s =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let j = 2 * Char.code (String.unsafe_get s i) in
    Bytes.unsafe_set b (2 * i) (String.unsafe_get enc_table j);
    Bytes.unsafe_set b ((2 * i) + 1) (String.unsafe_get enc_table (j + 1))
  done;
  Bytes.unsafe_to_string b

let decode_opt h =
  let n = String.length h in
  if n mod 2 <> 0 then None
  else begin
    let b = Bytes.create (n / 2) in
    let bad = ref false in
    for i = 0 to (n / 2) - 1 do
      let hi = Array.unsafe_get dec_table (Char.code (String.unsafe_get h (2 * i))) in
      let lo = Array.unsafe_get dec_table (Char.code (String.unsafe_get h ((2 * i) + 1))) in
      if hi lor lo < 0 then bad := true
      else Bytes.unsafe_set b i (Char.unsafe_chr ((hi lsl 4) lor lo))
    done;
    if !bad then None else Some (Bytes.unsafe_to_string b)
  end

let decode h =
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  match decode_opt h with
  | Some s -> s
  | None ->
      let c =
        let bad = ref ' ' in
        (try
           String.iter
             (fun ch ->
               if dec_table.(Char.code ch) < 0 then begin
                 bad := ch;
                 raise Exit
               end)
             h
         with Exit -> ());
        !bad
      in
      invalid_arg (Printf.sprintf "Hex.decode: invalid character %C" c)

let encode_colon s =
  let n = String.length s in
  if n = 0 then ""
  else begin
    let b = Bytes.make ((3 * n) - 1) ':' in
    for i = 0 to n - 1 do
      let j = 2 * Char.code (String.unsafe_get s i) in
      Bytes.unsafe_set b (3 * i) (String.unsafe_get enc_table j);
      Bytes.unsafe_set b ((3 * i) + 1) (String.unsafe_get enc_table (j + 1))
    done;
    Bytes.unsafe_to_string b
  end
