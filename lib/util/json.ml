type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

(* --- parsing ----------------------------------------------------------- *)

(* Recursive-descent RFC 8259 parser.  Total: every input yields [Ok]
   or [Error], never an exception — the ingestion layer feeds it
   attacker-shaped bytes.  Errors distinguish "ran off the end of the
   input" (the signature of a truncated upload) from structural
   malformation, so callers can classify quarantined records. *)

exception Parse_error of string

let truncated_msg = "unexpected end of input"

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error msg) in
  let eof () = error truncated_msg in
  let peek () = if !pos >= n then eof () else s.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () <> c then error (Printf.sprintf "expected %C at offset %d" c !pos)
    else advance ()
  in
  let literal word value =
    let l = String.length word in
    if !pos + l > n then eof ()
    else if String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error (Printf.sprintf "invalid literal at offset %d" !pos)
  in
  let hex4 () =
    if !pos + 4 > n then eof ();
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - 48
        | 'a' .. 'f' as c -> Char.code c - 87
        | 'A' .. 'F' as c -> Char.code c - 55
        | _ -> error (Printf.sprintf "invalid \\u escape at offset %d" !pos)
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 b cp =
    (* encode a code point; unpaired surrogates pass through as-is so
       parsing stays total on hostile input *)
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance (); Buffer.contents b
      | '\\' -> (
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'; advance ()
          | '\\' -> Buffer.add_char b '\\'; advance ()
          | '/' -> Buffer.add_char b '/'; advance ()
          | 'b' -> Buffer.add_char b '\b'; advance ()
          | 'f' -> Buffer.add_char b '\012'; advance ()
          | 'n' -> Buffer.add_char b '\n'; advance ()
          | 'r' -> Buffer.add_char b '\r'; advance ()
          | 't' -> Buffer.add_char b '\t'; advance ()
          | 'u' ->
              advance ();
              let cp = hex4 () in
              let cp =
                (* surrogate pair *)
                if cp >= 0xd800 && cp <= 0xdbff && !pos + 6 <= n
                   && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xdc00 && lo <= 0xdfff then
                    0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                  else begin
                    add_utf8 b cp;
                    lo
                  end
                end
                else cp
              in
              add_utf8 b cp
          | c -> error (Printf.sprintf "invalid escape %C at offset %d" c !pos));
          go ())
      | c when Char.code c < 0x20 ->
          error (Printf.sprintf "unescaped control character at offset %d" !pos)
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if !pos < n && s.[!pos] = '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then
        if !pos >= n then eof ()
        else error (Printf.sprintf "invalid number at offset %d" start)
    in
    digits ();
    let is_float = ref false in
    if !pos < n && s.[!pos] = '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
      is_float := true;
      advance ();
      if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then advance ();
      digits ()
    end;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error (Printf.sprintf "invalid number at offset %d" start)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* integral but beyond native int range *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> error (Printf.sprintf "invalid number at offset %d" start))
  in
  (* nesting is depth-limited so hostile [[[[... input cannot blow the
     stack: totality beats fidelity past 256 levels *)
  let max_depth = 256 in
  let rec parse_value depth =
    if depth > max_depth then error "nesting too deep";
    skip_ws ();
    match peek () with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' -> String (parse_string ())
    | '-' | '0' .. '9' -> parse_number ()
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec items_loop () =
            items := parse_value (depth + 1) :: !items;
            skip_ws ();
            match peek () with
            | ',' -> advance (); items_loop ()
            | ']' -> advance ()
            | c -> error (Printf.sprintf "expected ',' or ']', found %C at offset %d" c !pos)
          in
          items_loop ();
          List (List.rev !items)
        end
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            fields := (key, parse_value (depth + 1)) :: !fields;
            skip_ws ();
            match peek () with
            | ',' -> advance (); fields_loop ()
            | '}' -> advance ()
            | c -> error (Printf.sprintf "expected ',' or '}', found %C at offset %d" c !pos)
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | c -> error (Printf.sprintf "unexpected character %C at offset %d" c !pos)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos < n then error (Printf.sprintf "trailing garbage at offset %d" !pos);
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let error_is_truncation msg = msg = truncated_msg

(* --- accessors --------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_string ?(pretty = false) t =
  let b = Buffer.create 1024 in
  let rec emit indent t =
    let pad n = if pretty then Buffer.add_string b (String.make (2 * n) ' ') in
    let newline () = if pretty then Buffer.add_char b '\n' in
    match t with
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Int v -> Buffer.add_string b (string_of_int v)
    | Float v -> Buffer.add_string b (float_literal v)
    | String s -> Buffer.add_string b (escape_string s)
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_char b '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char b ',';
              newline ()
            end;
            pad (indent + 1);
            emit (indent + 1) item)
          items;
        newline ();
        pad indent;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_char b '{';
        newline ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char b ',';
              newline ()
            end;
            pad (indent + 1);
            Buffer.add_string b (escape_string k);
            Buffer.add_string b (if pretty then ": " else ":");
            emit (indent + 1) v)
          fields;
        newline ();
        pad indent;
        Buffer.add_char b '}'
  in
  emit 0 t;
  Buffer.contents b
