(** Calendar time for certificate validity windows.

    The simulation never reads the ambient clock; every component takes
    explicit timestamps.  A timestamp is a count of seconds since the
    Unix epoch (UTC, proleptic Gregorian), stored as an [int]. *)

type t = int

val epoch : t

val of_date : ?hour:int -> ?minute:int -> ?second:int -> int -> int -> int -> t
(** [of_date y m d] is midnight UTC on that civil date.
    @raise Invalid_argument on an invalid date or time component. *)

val to_civil : t -> int * int * int * int * int * int
(** [(year, month, day, hour, minute, second)] in UTC. *)

val add_days : t -> int -> t
val add_years : t -> int -> t
(** Calendar-aware: Feb 29 clamps to Feb 28 on non-leap targets. *)

val paper_epoch : t
(** 2014-04-01, the end of the paper's Netalyzr collection window; the
    default "now" of the whole simulation. *)

val notary_start : t
(** 2012-02-01, when the ICSI Notary data collection started. *)

val compare : t -> t -> int

val to_utc_string : t -> string
(** ["YYYY-MM-DD HH:MM:SS UTC"]. *)

val of_utc_string : string -> t option
(** Inverse of {!to_utc_string}; [None] on any malformation.  Never
    raises — ingestion feeds it untrusted field data. *)

val to_asn1_utctime : t -> string
(** ["YYMMDDHHMMSSZ"] — the X.509 UTCTime body used for dates in
    1950–2049.
    @raise Invalid_argument outside that window. *)

val to_asn1_generalized : t -> string
(** ["YYYYMMDDHHMMSSZ"] — GeneralizedTime body. *)

val of_asn1_utctime : string -> t option
val of_asn1_generalized : string -> t option

val pp : Format.formatter -> t -> unit
