(** RSA key generation and PKCS#1 v1.5 signatures.

    The simulation signs every certificate for real: chains only verify
    when the issuer's private key actually produced the signature.  Key
    sizes are configurable; the default used across the project is
    512 bits — small enough that a pure-OCaml bignum signs tens of
    thousands of leaves per second, and irrelevant to the paper's
    analysis, which never attacks the keys. *)

type public = {
  n : Tangled_numeric.Bigint.t;  (** modulus *)
  e : Tangled_numeric.Bigint.t;  (** public exponent *)
  mutable mont_n : Tangled_numeric.Montgomery.t option;
      (** lazily-built Montgomery context for [n]; build with
          {!make_public} and leave this field to the library *)
  mutable n_sha1 : string option;
      (** memoised SHA-1 of the modulus bytes ({!modulus_sha1}) *)
}

type private_key = {
  pub : public;
  d : Tangled_numeric.Bigint.t;  (** private exponent *)
  p : Tangled_numeric.Bigint.t;
  q : Tangled_numeric.Bigint.t;
  dp : Tangled_numeric.Bigint.t;   (** d mod (p-1), for CRT signing *)
  dq : Tangled_numeric.Bigint.t;   (** d mod (q-1) *)
  qinv : Tangled_numeric.Bigint.t; (** q^-1 mod p *)
  mutable mont_p : Tangled_numeric.Montgomery.t option;
  mutable mont_q : Tangled_numeric.Montgomery.t option;
}

type keypair = private_key

val make_public : n:Tangled_numeric.Bigint.t -> e:Tangled_numeric.Bigint.t -> public
(** A public key with an empty Montgomery cache; the context is built
    on the first verification against the key and reused after. *)

val generate : ?mr_rounds:int -> Tangled_util.Prng.t -> bits:int -> keypair
(** [generate rng ~bits] makes a fresh keypair with a [bits]-bit
    modulus and public exponent 65537.  [mr_rounds] tunes the
    Miller–Rabin confidence of the prime search (default 20); bulk
    generators trade it down.
    @raise Invalid_argument when [bits < 64]. *)

val key_size_bytes : public -> int
(** Modulus size in bytes, the signature length. *)

val modulus_bytes : public -> string
(** Big-endian modulus — the paper's "RSA key modulus" identity
    component (§4.1). *)

val modulus_sha1 : public -> string
(** SHA-1 of {!modulus_bytes}, memoised on the key: the X.509 key
    identifier hashes the same modulus for every certificate a CA
    signs, and a CA pool signs hundreds of thousands. *)

val sign : private_key -> digest:Tangled_hash.Digest_kind.t -> string -> string
(** [sign key ~digest msg] is the PKCS#1 v1.5 signature over [msg]:
    EMSA-PKCS1-v1_5 encoding of DigestInfo(digest, H(msg)) followed by
    the private-key operation.
    @raise Invalid_argument when the key is too small for the digest. *)

val verify : public -> digest:Tangled_hash.Digest_kind.t -> msg:string -> signature:string -> bool
(** Full encode-then-compare verification; returns [false] on any
    malformation rather than raising. *)

val set_precompute : bool -> unit
(** Toggle the per-key operation precompute (on by default): bounded
    per-domain lib/cache caches of exponent window schedules and
    Montgomery scratch, keyed by modulus bytes, that make repeated
    sign/verify against hot CA keys allocation-free and dispatch
    65537 to a table-free sparse walk.  Signatures and verdicts are
    byte-identical either way — the toggle exists for the bench's
    before/after pairs. *)

val precompute_enabled : unit -> bool

val set_wide_kernel : bool -> unit
(** Toggle the wide-limb (28-bit) Montgomery plane for sign/verify (on
    by default; only reachable while the precompute is also on).  Off
    pins both operations to the original 26-bit plane.  Byte-identical
    results either way — the QCheck suite pins sign and verify across
    all four toggle combinations; the switch exists for the bench's
    before/after pairs. *)

val wide_enabled : unit -> bool

val encrypt_raw : public -> string -> string
(** Textbook RSA of a byte string interpreted big-endian; used by the
    tests to cross-check [d] against [e], never by the pipeline. *)

val decrypt_raw : private_key -> string -> string
