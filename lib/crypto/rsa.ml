module B = Tangled_numeric.Bigint
module Mont = Tangled_numeric.Montgomery
module Prime = Tangled_numeric.Prime
module Prng = Tangled_util.Prng
module Dk = Tangled_hash.Digest_kind
module Cache = Tangled_cache.Cache

type public = {
  n : B.t;
  e : B.t;
  mutable mont_n : Mont.t option;
  mutable n_sha1 : string option;
}

type private_key = {
  pub : public;
  d : B.t;
  p : B.t;
  q : B.t;
  dp : B.t;
  dq : B.t;
  qinv : B.t;
  mutable mont_p : Mont.t option;
  mutable mont_q : Mont.t option;
}

type keypair = private_key

let make_public ~n ~e = { n; e; mont_n = None; n_sha1 = None }

(* SHA-1 of the raw modulus bytes, memoised on the key: X.509 key
   identifiers hash the same modulus for every certificate a CA signs.
   Benign race: both domains compute the identical digest. *)
let modulus_sha1 pub =
  match pub.n_sha1 with
  | Some h -> h
  | None ->
      let h = Dk.digest Dk.SHA1 (B.to_bytes_be pub.n) in
      pub.n_sha1 <- Some h;
      h

(* Montgomery contexts are built on first use and memoised in the key
   record, so setup is paid once per CA rather than once per
   operation.  Keys parsed from hostile DER can carry an even or
   degenerate modulus; those fall back to the division-based modpow,
   which tolerates anything.  Filling the cache from two domains at
   once is a benign race: both compute the identical context and one
   write wins. *)
let mont_ctx m get set =
  match get () with
  | Some _ as c -> c
  | None ->
      if B.is_odd m && B.compare m B.one > 0 then begin
        let c = Mont.create m in
        set (Some c);
        Some c
      end
      else None

let mont_n pub = mont_ctx pub.n (fun () -> pub.mont_n) (fun c -> pub.mont_n <- c)
let mont_p key = mont_ctx key.p (fun () -> key.mont_p) (fun c -> key.mont_p <- c)
let mont_q key = mont_ctx key.q (fun () -> key.mont_q) (fun c -> key.mont_q <- c)

(* --- per-key operation precompute ------------------------------------

   A handful of CA keys sign (and a pool of public keys verifies)
   millions of times each, so everything reusable about an
   exponentiation against one key is hoisted into an op context: the
   exponent's window schedule, and the preallocated Montgomery
   scratch that makes the steady-state sign/verify allocation-free.
   Contexts live in bounded per-domain caches from lib/cache keyed by
   the key's modulus bytes — scratch buffers are mutable, so they
   must never be shared across domains, and the capacity bound means
   a run over an unbounded key population cannot grow the heap.

   [set_precompute false] routes every operation through the plain
   Mont.modpow path instead; results are byte-identical either way
   (the QCheck suite pins this), so the toggle exists purely for the
   bench's before/after pairs and cache ablations. *)

let precompute_on = Atomic.make true
let set_precompute b = Atomic.set precompute_on b
let precompute_enabled () = Atomic.get precompute_on

(* The wide-limb (28-bit) Montgomery plane doubles as a second
   before/after axis: [set_wide_kernel false] pins sign/verify to the
   26-bit plane that shipped first.  Signatures are byte-identical
   either way — the toggle exists for the bench pairs and for
   bisecting, not because results differ. *)
let wide_on = Atomic.make true
let set_wide_kernel b = Atomic.set wide_on b
let wide_enabled () = Atomic.get wide_on

(* Everything the allocation-free CRT sign path needs on the wide
   plane: per-prime contexts and scratches, q and qinv·R mod p packed
   once, and the two half-exponentiation result buffers. *)
type wide_sign = {
  ws_p : Mont.Wide.t;
  ws_scr_p : Mont.Wide.wscratch;
  ws_q : Mont.Wide.t;
  ws_scr_q : Mont.Wide.wscratch;
  ws_qinv_m : int array;
  ws_qlimbs : int array;
  ws_m1 : int array;
  ws_m2 : int array;
}

type sign_ctx = {
  sg_p : Mont.t;
  sg_dp : Mont.schedule;
  sg_scr_p : Mont.scratch;
  sg_q : Mont.t;
  sg_dq : Mont.schedule;
  sg_scr_q : Mont.scratch;
  sg_wide : wide_sign option;
}

type verify_ctx = {
  vf_n : Mont.t;
  vf_e : Mont.schedule;
  vf_scr : Mont.scratch;
  vf_wide : (Mont.Wide.t * Mont.Wide.wscratch) option;
  vf_nbytes : string;
  vf_m : int array;
}

let sign_ctxs : sign_ctx Cache.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Cache.create ~name:"rsa.sign_ctx" ~capacity:64 ())

let verify_ctxs : verify_ctx Cache.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Cache.create ~name:"rsa.verify_ctx" ~capacity:256 ())

(* The wide CRT path needs [q < 2p] (equal prime bit lengths) for the
   one-subtraction reduction in the recombination, and the EMSA block
   must fit the 2k-limb division-free base load of each half. *)
let wide_sign_ctx key =
  if B.bit_length key.p <> B.bit_length key.q then None
  else begin
    let em_bits = ((B.bit_length (B.mul key.p key.q) + 7) / 8) * 8 in
    let ws_p = Mont.Wide.create key.p in
    let ws_q = Mont.Wide.create key.q in
    let fits t = em_bits <= 2 * Mont.Wide.k t * 28 in
    if not (fits ws_p && fits ws_q) then None
    else begin
      let ws_scr_p = Mont.Wide.scratch ws_p in
      Some
        {
          ws_p;
          ws_scr_p;
          ws_q;
          ws_scr_q = Mont.Wide.scratch ws_q;
          ws_qinv_m =
            Mont.Wide.to_mont_limbs ws_p ws_scr_p
              (Mont.Wide.limbs_of_bigint ws_p key.qinv);
          ws_qlimbs = Mont.Wide.limbs_of_bigint ws_q key.q;
          ws_m1 = Array.make (Mont.Wide.k ws_p) 0;
          ws_m2 = Array.make (Mont.Wide.k ws_q) 0;
        }
    end
  end

let sign_ctx key =
  match (mont_p key, mont_q key) with
  | Some sg_p, Some sg_q ->
      let cache = Domain.DLS.get sign_ctxs in
      Some
        (Cache.find_or_add cache (B.to_bytes_be key.pub.n) (fun () ->
             {
               sg_p;
               sg_dp = Mont.schedule key.dp;
               sg_scr_p = Mont.scratch sg_p;
               sg_q;
               sg_dq = Mont.schedule key.dq;
               sg_scr_q = Mont.scratch sg_q;
               sg_wide = wide_sign_ctx key;
             }))
  | _ -> None

let verify_ctx pub =
  match mont_n pub with
  | Some vf_n when B.sign pub.e >= 0 ->
      let cache = Domain.DLS.get verify_ctxs in
      Some
        (Cache.find_or_add cache (B.to_bytes_be pub.n) (fun () ->
             let vf_e = Mont.schedule pub.e in
             let wt = Mont.Wide.create pub.n in
             let nbytes = B.to_bytes_be pub.n in
             let vf_wide =
               if
                 Mont.schedule_bits vf_e > 0
                 && String.length nbytes * 8 <= 2 * Mont.Wide.k wt * 28
               then Some (wt, Mont.Wide.scratch wt)
               else None
             in
             {
               vf_n;
               vf_e;
               vf_scr = Mont.scratch vf_n;
               vf_wide;
               vf_nbytes = nbytes;
               vf_m = Array.make (Mont.Wide.k wt) 0;
             }))
  | _ -> None

let public_op pub x =
  match (if precompute_enabled () then verify_ctx pub else None) with
  | Some vc -> Mont.powm_auto vc.vf_n vc.vf_scr vc.vf_e x
  | None -> (
      match mont_n pub with
      | Some ctx -> Mont.modpow ctx x pub.e
      | None -> B.modpow x pub.e pub.n)

let f4 = B.of_int 65537

let generate ?(mr_rounds = 20) rng ~bits =
  if bits < 64 then invalid_arg "Rsa.generate: modulus below 64 bits";
  let pbits = (bits + 1) / 2 in
  let qbits = bits - pbits in
  let rec attempt () =
    let p = Prime.generate ~rounds:mr_rounds rng ~bits:pbits in
    let q = Prime.generate ~rounds:mr_rounds rng ~bits:qbits in
    if B.equal p q then attempt ()
    else begin
      let n = B.mul p q in
      if B.bit_length n <> bits then attempt ()
      else begin
        let phi = B.mul (B.sub p B.one) (B.sub q B.one) in
        let e = f4 in
        match B.mod_inverse e phi with
        | Some d ->
            let dp = B.erem d (B.sub p B.one) in
            let dq = B.erem d (B.sub q B.one) in
            (* p and q are distinct primes, so the inverse exists *)
            let qinv = Option.get (B.mod_inverse q p) in
            {
              pub = make_public ~n ~e;
              d;
              p;
              q;
              dp;
              dq;
              qinv;
              mont_p = None;
              mont_q = None;
            }
        | None -> attempt ()
      end
    end
  in
  attempt ()

let key_size_bytes pub = (B.bit_length pub.n + 7) / 8

let modulus_bytes pub = B.to_bytes_be pub.n

(* DigestInfo prefixes from RFC 8017 §9.2: the DER encoding of
   AlgorithmIdentifier + NULL params + OCTET STRING header for each
   supported hash, to which the raw digest is appended.  Decoded once
   at load time, not per operation. *)
let md5_prefix = Tangled_util.Hex.decode "3020300c06082a864886f70d020505000410"
let sha1_prefix = Tangled_util.Hex.decode "3021300906052b0e03021a05000414"
let sha256_prefix = Tangled_util.Hex.decode "3031300d060960864801650304020105000420"

let digest_info_prefix = function
  | Dk.MD5 -> md5_prefix
  | Dk.SHA1 -> sha1_prefix
  | Dk.SHA256 -> sha256_prefix

let emsa_pkcs1_v1_5 ~digest msg em_len =
  let h = Dk.digest digest msg in
  let prefix = digest_info_prefix digest in
  let t_len = String.length prefix + String.length h in
  if em_len < t_len + 11 then
    invalid_arg "Rsa: intended encoded message length too short";
  (* 0x00 0x01 PS 0x00 T, PS = 0xff padding of length >= 8; built in
     one allocation with the padding as the fill byte *)
  let em = Bytes.make em_len '\xff' in
  Bytes.set em 0 '\x00';
  Bytes.set em 1 '\x01';
  let t_off = em_len - t_len in
  Bytes.set em (t_off - 1) '\x00';
  Bytes.blit_string prefix 0 em t_off (String.length prefix);
  Bytes.blit_string h 0 em (t_off + String.length prefix) (String.length h);
  Bytes.unsafe_to_string em

let left_pad len s =
  let n = String.length s in
  if n >= len then s
  else begin
    let b = Bytes.make len '\x00' in
    Bytes.blit_string s 0 b (len - n) n;
    Bytes.unsafe_to_string b
  end

(* CRT private-key operation (RFC 8017 §5.1.2): two half-size
   exponentiations instead of one full-size one, ~4x faster — each
   through the cached per-prime Montgomery context. *)
let private_op key m =
  match (if precompute_enabled () then sign_ctx key else None) with
  | Some sg ->
      let m1 = Mont.powm_auto sg.sg_p sg.sg_scr_p sg.sg_dp m in
      let m2 = Mont.powm_auto sg.sg_q sg.sg_scr_q sg.sg_dq m in
      let h = B.erem (B.mul key.qinv (B.sub m1 m2)) key.p in
      B.add m2 (B.mul h key.q)
  | None ->
      let half ctx_of dx px =
        match ctx_of key with
        | Some ctx -> Mont.modpow ctx m dx
        | None -> B.modpow m dx px
      in
      let m1 = half mont_p key.dp key.p in
      let m2 = half mont_q key.dq key.q in
      let h = B.erem (B.mul key.qinv (B.sub m1 m2)) key.p in
      B.add m2 (B.mul h key.q)

let sign key ~digest msg =
  let k = key_size_bytes key.pub in
  let em = emsa_pkcs1_v1_5 ~digest msg k in
  match
    if precompute_enabled () && wide_enabled () then sign_ctx key else None
  with
  | Some { sg_dp; sg_dq; sg_wide = Some w; _ } ->
      (* both CRT halves and the recombination stay on the wide plane:
         bytes in, bytes out, the signature buffer is the only
         allocation *)
      Mont.Wide.load_base_bytes w.ws_p w.ws_scr_p em;
      Mont.Wide.powm_auto_loaded w.ws_p w.ws_scr_p sg_dp ~dst:w.ws_m1;
      Mont.Wide.load_base_bytes w.ws_q w.ws_scr_q em;
      Mont.Wide.powm_auto_loaded w.ws_q w.ws_scr_q sg_dq ~dst:w.ws_m2;
      let out = Bytes.create k in
      Mont.Wide.crt_combine ~pctx:w.ws_p ~psc:w.ws_scr_p ~qinv_m:w.ws_qinv_m
        ~qlimbs:w.ws_qlimbs ~m1:w.ws_m1 ~m2:w.ws_m2 ~out;
      Bytes.unsafe_to_string out
  | _ ->
      let m = B.of_bytes_be em in
      let s = private_op key m in
      left_pad k (B.to_bytes_be s)

let verify pub ~digest ~msg ~signature =
  let k = key_size_bytes pub in
  if String.length signature <> k then false
  else begin
    match
      if precompute_enabled () && wide_enabled () then verify_ctx pub else None
    with
    | Some ({ vf_wide = Some (wt, wsc); _ } as vc) ->
        (* equal-length big-endian strings compare like the integers
           they encode, so the s < n range check needs no Bigint *)
        if String.compare signature vc.vf_nbytes >= 0 then false
        else begin
          Mont.Wide.load_base_bytes wt wsc signature;
          Mont.Wide.powm_auto_loaded wt wsc vc.vf_e ~dst:vc.vf_m;
          let em' = Bytes.create k in
          Mont.Wide.write_bytes_be vc.vf_m (Array.length vc.vf_m) em';
          match emsa_pkcs1_v1_5 ~digest msg k with
          | em -> String.equal em (Bytes.unsafe_to_string em')
          | exception Invalid_argument _ -> false
        end
    | _ ->
        let s = B.of_bytes_be signature in
        if B.compare s pub.n >= 0 then false
        else begin
          let m = public_op pub s in
          let em' = left_pad k (B.to_bytes_be m) in
          match emsa_pkcs1_v1_5 ~digest msg k with
          | em -> String.equal em em'
          | exception Invalid_argument _ -> false
        end
  end

let encrypt_raw pub data =
  let m = B.of_bytes_be data in
  if B.compare m pub.n >= 0 then invalid_arg "Rsa.encrypt_raw: message too large";
  B.to_bytes_be (public_op pub m)

let decrypt_raw key data =
  let c = B.of_bytes_be data in
  if B.compare c key.pub.n >= 0 then invalid_arg "Rsa.decrypt_raw: ciphertext too large";
  B.to_bytes_be (private_op key c)
