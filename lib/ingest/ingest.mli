(** Gracefully-degrading ingestion of the exported datasets — the
    inverse of {!Tangled_core.Export}.

    Field data arrives damaged: truncated uploads, replayed sessions,
    broken device clocks, bit rot.  This layer parses the session log,
    the Notary DB and the store dumps {e record by record}, validates
    each record against its schema, classifies every failure into a
    typed taxonomy, quarantines bad records with reasons, deduplicates
    replays, reconciles what arrived against the manifest's control
    totals — and {e never raises}, whatever the input.

    Accepted records are reconstructed into view types mirroring
    [Tangled_netalyzr.Netalyzr.session] / [Tangled_notary.Notary.chain]
    summaries, with the aggregate API the analyses consume. *)

(** {1 Error taxonomy} *)

type reason =
  | Malformed_json of string  (** the record is not JSON at all *)
  | Control_bytes of string
      (** the raw record line carries NUL or other control bytes — the
          signature of binary junk spliced into the stream (a corrupted
          upload, a framing error, a hostile client).  Detected on the
          raw bytes {e before} any parse is attempted, so binary junk
          can never reach the JSON layer, let alone raise out of it.
          Tab and CR are exempt (legitimate JSON whitespace / CRLF
          line endings). *)
  | Truncated_record  (** the record text stops mid-value (partial upload) *)
  | Missing_field of string  (** a required field is absent *)
  | Type_mismatch of string  (** a field carries the wrong JSON type *)
  | Clock_skew of string
      (** a timestamp outside the plausible collection window *)
  | Duplicate_record of string  (** exact replay of an already-seen record *)
  | Conflicting_record of string
      (** same record identity, different content — both cannot be true *)
  | Bad_value of string  (** well-typed but semantically invalid *)

val reason_label : reason -> string
(** Stable taxonomy slug ("malformed-json", "control-bytes",
    "truncated-record", "missing-field", "type-mismatch", "clock-skew",
    "duplicate-record", "conflicting-record", "bad-value"). *)

val has_control_bytes : string -> bool
(** Whether the string contains a raw control byte (anything below
    0x20 except tab and CR, or DEL) — the {!Control_bytes} detection
    predicate, exposed so other framing layers (the serve loop's frame
    decoder) classify identically. *)

val reason_detail : reason -> string

val reason_of_der_error : Tangled_asn1.Der.error -> reason
(** How DER decode failures of record payloads map into the taxonomy:
    [Truncated] is a {!Truncated_record} (a cut-off upload), everything
    else a {!Bad_value}. *)

type quarantined = {
  line : int;  (** 1-based input line (the manifest is line 1) *)
  reason : reason;
  snippet : string;  (** first bytes of the offending record *)
}

(** {1 Results} *)

type stats = {
  declared : int option;  (** the manifest's control total, if present *)
  seen : int;  (** record lines/items encountered *)
  accepted : int;
  quarantined_total : int;
  replays : int;
      (** quarantined surplus copies (duplicates + conflicts) — these
          do not count against [declared] *)
  missing : int;
      (** declared records that never arrived in any recognisable
          form (dropped uploads) *)
  by_label : (string * int) list;  (** taxonomy label -> count, desc *)
  input_sha256 : string;
      (** lowercase hex SHA-256 of the raw input bytes, absorbed while
          the line scanner walks the buffer — a control total for what
          was actually ingested.  Deliberately not part of
          {!render_stats} (report output is byte-stable across PRs). *)
}

type 'a ingest = {
  header : (string * Tangled_util.Json.t) list;  (** manifest fields *)
  records : 'a array;  (** accepted records, input order *)
  quarantine : quarantined list;
  stats : stats;
}

(** {1 Record views} *)

type probe_view = {
  host : string;
  port : int;
  verdict : string;
  intercepted : bool;
  chain_length : int;
}

type session_view = {
  session_id : int;
  handset_id : int;
  network : string;
  public_ip : string;
  model : string;
  os_version : string;
  manufacturer : string;
  operator : string;
  rooted : bool;
  timestamp : Tangled_util.Timestamp.t;
  store_size : int;
  aosp_present : int;
  additional : int;
  missing_baseline : int;
  additional_ids : string list;
  app_added : string list;
  probes : probe_view list;
}

type chain_view = {
  subject : string;
  issuer : string;
  not_before : Tangled_util.Timestamp.t;
  not_after : Tangled_util.Timestamp.t;
  expired : bool;
  via_intermediate : bool;
  anchor : string option;
}

type cert_view = {
  store : string;
  cert_subject : string;
  hash_id : string;
  fingerprint : string;
  cert_not_after : Tangled_util.Timestamp.t;
}

(** {1 Ingestion}

    Each entry point accepts either the JSONL form (manifest line then
    one record per line) or the single-document JSON form written by
    [Export.write_file].  Total: any byte string yields a result. *)

val sessions_of_string : string -> session_view ingest
val notary_of_string : string -> chain_view ingest
val stores_of_string : string -> cert_view ingest

(** {1 Aggregates over ingested data}

    The [Netalyzr] / [Notary] aggregate API, recomputed from accepted
    records so every headline number can be re-derived downstream. *)

val total_sessions : session_view ingest -> int
val extended_fraction : session_view ingest -> float
val rooted_fraction : session_view ingest -> float
val estimated_handsets : session_view ingest -> int
val intercepted_sessions : session_view ingest -> int

val sessions_by_model : session_view ingest -> (string * int) list
(** ["Manufacturer Model" -> sessions], descending — Table 2's left half. *)

val sessions_by_manufacturer : session_view ingest -> (string * int) list

val unexpired : chain_view ingest -> int
val total_chains : chain_view ingest -> int
val validated_fraction : chain_view ingest -> float
(** Share of unexpired chains with a verified anchor. *)

val via_intermediate_fraction : chain_view ingest -> float

val per_anchor_counts : chain_view ingest -> (string * int) list
(** Unexpired validated-chain count per anchor id, descending — the
    ingested analogue of [Notary.per_root_counts]. *)

val store_sizes : cert_view ingest -> (string * int) list
(** [store name -> certificates], in first-seen order — Table 1 from
    ingested data. *)

(** {1 Reporting} *)

val render_stats : title:string -> 'a ingest -> string
(** The ingest-stats report section: control-total reconciliation and
    the quarantine broken down by taxonomy label. *)
