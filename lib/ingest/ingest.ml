module J = Tangled_util.Json
module Ts = Tangled_util.Timestamp
module T = Tangled_util.Text_table
module Der = Tangled_asn1.Der
module H = Tangled_hash.Sha256
module Obs = Tangled_obs.Obs

(* per-record ingest instrumentation: latency distribution plus
   accept/quarantine counters; every quarantined record also lands in
   the bounded event log with its taxonomy label.  Observability only —
   the ingest stats the report renders never read these. *)
let record_latency = Obs.histogram "ingest.record_seconds"
let accepted_counter = Obs.counter "ingest.accepted"
let quarantined_counter = Obs.counter "ingest.quarantined"

(* --- taxonomy ---------------------------------------------------------- *)

type reason =
  | Malformed_json of string
  | Control_bytes of string
  | Truncated_record
  | Missing_field of string
  | Type_mismatch of string
  | Clock_skew of string
  | Duplicate_record of string
  | Conflicting_record of string
  | Bad_value of string

let reason_label = function
  | Malformed_json _ -> "malformed-json"
  | Control_bytes _ -> "control-bytes"
  | Truncated_record -> "truncated-record"
  | Missing_field _ -> "missing-field"
  | Type_mismatch _ -> "type-mismatch"
  | Clock_skew _ -> "clock-skew"
  | Duplicate_record _ -> "duplicate-record"
  | Conflicting_record _ -> "conflicting-record"
  | Bad_value _ -> "bad-value"

let reason_detail = function
  | Malformed_json m -> m
  | Control_bytes d -> d
  | Truncated_record -> "record text ends mid-value"
  | Missing_field f -> "required field " ^ f ^ " absent"
  | Type_mismatch f -> "field " ^ f ^ " has the wrong type"
  | Clock_skew d -> d
  | Duplicate_record k -> "replay of record " ^ k
  | Conflicting_record k -> "conflicting content for record " ^ k
  | Bad_value d -> d

type quarantined = { line : int; reason : reason; snippet : string }

type stats = {
  declared : int option;
  seen : int;
  accepted : int;
  quarantined_total : int;
  replays : int;
  missing : int;
  by_label : (string * int) list;
  input_sha256 : string;
}

type 'a ingest = {
  header : (string * J.t) list;
  records : 'a array;
  quarantine : quarantined list;
  stats : stats;
}

(* --- schema field helpers ---------------------------------------------- *)

let ( let* ) = Result.bind

let str name json =
  match J.member name json with
  | Some (J.String s) -> Ok s
  | Some _ -> Error (Type_mismatch name)
  | None -> Error (Missing_field name)

let int name json =
  match J.member name json with
  | Some (J.Int n) -> Ok n
  | Some _ -> Error (Type_mismatch name)
  | None -> Error (Missing_field name)

let nonneg name json =
  let* n = int name json in
  if n < 0 then Error (Bad_value (name ^ " is negative")) else Ok n

let bool name json =
  match J.member name json with
  | Some (J.Bool b) -> Ok b
  | Some _ -> Error (Type_mismatch name)
  | None -> Error (Missing_field name)

let str_list name json =
  match J.member name json with
  | Some (J.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | J.String s :: rest -> go (s :: acc) rest
        | _ -> Error (Type_mismatch name)
      in
      go [] items
  | Some _ -> Error (Type_mismatch name)
  | None -> Error (Missing_field name)

let timestamp name json =
  let* s = str name json in
  match Ts.of_utc_string s with
  | Some t -> Ok t
  | None -> Error (Bad_value (Printf.sprintf "unparseable timestamp %s %S" name s))

let in_window name t lo hi =
  if Ts.compare t lo < 0 || Ts.compare t hi > 0 then
    Error
      (Clock_skew
         (Printf.sprintf "%s %s outside plausible window [%s, %s]" name
            (Ts.to_utc_string t) (Ts.to_utc_string lo) (Ts.to_utc_string hi)))
  else Ok t

(* --- record views ------------------------------------------------------ *)

type probe_view = {
  host : string;
  port : int;
  verdict : string;
  intercepted : bool;
  chain_length : int;
}

type session_view = {
  session_id : int;
  handset_id : int;
  network : string;
  public_ip : string;
  model : string;
  os_version : string;
  manufacturer : string;
  operator : string;
  rooted : bool;
  timestamp : Ts.t;
  store_size : int;
  aosp_present : int;
  additional : int;
  missing_baseline : int;
  additional_ids : string list;
  app_added : string list;
  probes : probe_view list;
}

type chain_view = {
  subject : string;
  issuer : string;
  not_before : Ts.t;
  not_after : Ts.t;
  expired : bool;
  via_intermediate : bool;
  anchor : string option;
}

type cert_view = {
  store : string;
  cert_subject : string;
  hash_id : string;
  fingerprint : string;
  cert_not_after : Ts.t;
}

(* The Netalyzr collection ran Nov 2012 – Apr 2014; anything outside a
   generous bracket of that window is a broken device clock. *)
let session_window_lo = Ts.of_date 2012 1 1
let session_window_hi = Ts.of_date 2014 12 31

(* Leaves observed by the Notary must have been issued by the end of
   collection and expire within the X.509 UTCTime horizon. *)
let issue_window_lo = Ts.of_date 2000 1 1
let issue_window_hi = Ts.of_date 2014 12 31
let utctime_horizon = Ts.of_date 2049 12 31

let probe_of_json json =
  let* host = str "host" json in
  let* port = nonneg "port" json in
  let* verdict = str "verdict" json in
  let* intercepted = bool "intercepted" json in
  let* chain_length = nonneg "chain_length" json in
  Ok { host; port; verdict; intercepted; chain_length }

let probes_of_json name json =
  match J.member name json with
  | Some (J.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
            let* p = probe_of_json item in
            go (p :: acc) rest
      in
      go [] items
  | Some _ -> Error (Type_mismatch name)
  | None -> Error (Missing_field name)

let session_of_json json =
  let* session_id = nonneg "session_id" json in
  let* handset_id = nonneg "handset_id" json in
  let* network = str "network" json in
  let* public_ip = str "public_ip" json in
  let* model = str "model" json in
  let* os_version = str "os_version" json in
  let* manufacturer = str "manufacturer" json in
  let* operator = str "operator" json in
  let* rooted = bool "rooted" json in
  let* ts = timestamp "timestamp" json in
  let* timestamp = in_window "timestamp" ts session_window_lo session_window_hi in
  let* store_size = nonneg "store_size" json in
  let* aosp_present = nonneg "aosp_present" json in
  let* additional = nonneg "additional" json in
  let* missing_baseline = nonneg "missing" json in
  let* additional_ids = str_list "additional_ids" json in
  let* app_added = str_list "app_added" json in
  let* probes = probes_of_json "probes" json in
  Ok
    {
      session_id; handset_id; network; public_ip; model; os_version;
      manufacturer; operator; rooted; timestamp; store_size; aosp_present;
      additional; missing_baseline; additional_ids; app_added; probes;
    }

let chain_of_json json =
  let* subject = str "subject" json in
  let* issuer = str "issuer" json in
  let* nb = timestamp "not_before" json in
  let* not_before = in_window "not_before" nb issue_window_lo issue_window_hi in
  let* na = timestamp "not_after" json in
  let* not_after = in_window "not_after" na not_before utctime_horizon in
  let* expired = bool "expired" json in
  let* via_intermediate = bool "via_intermediate" json in
  let* anchor =
    match J.member "anchor" json with
    | Some J.Null -> Ok None
    | Some (J.String s) -> Ok (Some s)
    | Some _ -> Error (Type_mismatch "anchor")
    | None -> Error (Missing_field "anchor")
  in
  Ok { subject; issuer; not_before; not_after; expired; via_intermediate; anchor }

(* DER decode failures from record payloads land in the quarantine
   taxonomy instead of raising: a cut-off upload is a truncation, any
   other malformation is a bad value. *)
let reason_of_der_error = function
  | Der.Truncated -> Truncated_record
  | e -> Bad_value ("der: " ^ Der.error_to_string e)

let cert_of_json json =
  let* store = str "store" json in
  let* cert_subject = str "subject" json in
  let* hash_id = str "hash_id" json in
  let* fingerprint = str "fingerprint_sha256" json in
  let* na = timestamp "not_after" json in
  let* cert_not_after =
    in_window "not_after" na (Ts.of_date 1950 1 1) utctime_horizon
  in
  (* optional raw certificate bytes: when present they must be hex
     over well-formed DER *)
  let* () =
    match J.member "der" json with
    | None -> Ok ()
    | Some (J.String h) -> (
        match Tangled_util.Hex.decode_opt h with
        | None -> Error (Bad_value "der is not hexadecimal")
        | Some raw -> (
            match Der.decode raw with
            | Ok _ -> Ok ()
            | Error e -> Error (reason_of_der_error e)))
    | Some _ -> Error (Type_mismatch "der")
  in
  Ok { store; cert_subject; hash_id; fingerprint; cert_not_after }

(* --- generic record-by-record engine ----------------------------------- *)

type 'a schema = {
  list_field : string;  (** record list in the single-document form *)
  declared_field : string;  (** manifest control total *)
  of_json : J.t -> ('a, reason) result;
  identity : 'a -> string;
  same : 'a -> 'a -> bool;
}

let snippet_of line =
  if String.length line <= 60 then line else String.sub line 0 60 ^ "..."

(* Raw control bytes (except tab and the CR of a CRLF ending) never
   appear in a well-formed record line; their presence is binary junk
   and is classified before any parse is attempted. *)
let has_control_bytes s =
  let n = String.length s in
  let rec go i =
    i < n
    &&
    let c = s.[i] in
    (c < ' ' && c <> '\t' && c <> '\r') || c = '\x7f' || go (i + 1)
  in
  go 0

let control_bytes_msg = "record line carries raw NUL/control bytes"

(* Header heuristic for the JSONL form: the first line is a manifest
   iff it parses to an object that looks like one (carries the control
   total or a "kind" tag) rather than like a record. *)
let looks_like_header schema fields =
  List.mem_assoc "kind" fields || List.mem_assoc schema.declared_field fields

(* Normalise both accepted input forms to (manifest, numbered records,
   input digest).  Line numbers are 1-based with the manifest at line
   1, so quarantine entries point at real lines of a JSONL file.  The
   digest is SHA-256 over the raw input, a control total for the bytes
   that were actually ingested; in the JSONL branch it is absorbed
   chunk by chunk as the line scanner walks the buffer. *)
let split_input schema input =
  match J.parse input with
  | Ok (J.Obj fields) -> (
      let digest = H.hex input in
      match List.assoc_opt schema.list_field fields with
      | Some (J.List records) ->
          ( List.remove_assoc schema.list_field fields,
            List.mapi (fun i r -> (i + 2, Ok r)) records,
            digest )
      | _ -> ([], [ (1, Ok (J.Obj fields)) ], digest))
  | Ok other -> ([], [ (1, Ok other) ], H.hex input)
  | Error _ ->
      (* index-based line scan: one substring per non-empty line, no
         intermediate list of raw lines *)
      let ctx = H.init () in
      let n = String.length input in
      let lines = ref [] in
      let i = ref 0 in
      while !i < n do
        let j =
          match String.index_from_opt input !i '\n' with Some j -> j | None -> n
        in
        H.feed_sub ctx input ~off:!i ~len:(Stdlib.min (j + 1) n - !i);
        if j > !i then lines := String.sub input !i (j - !i) :: !lines;
        i := j + 1
      done;
      let digest = Tangled_util.Hex.encode (H.finalize ctx) in
      let lines = List.rev !lines in
      let parse_line offset i line =
        ( i + offset,
          if has_control_bytes line then Error (control_bytes_msg, line)
          else match J.parse line with Ok j -> Ok j | Error e -> Error (e, line) )
      in
      (match lines with
      | [] -> ([], [], digest)
      | first :: rest -> (
          match J.parse first with
          | Ok (J.Obj fields) when looks_like_header schema fields ->
              (fields, List.mapi (parse_line 2) rest, digest)
          | _ -> ([], List.mapi (parse_line 1) lines, digest)))

let run schema input =
  Obs.span "ingest.run" @@ fun () ->
  let header, numbered, input_sha256 = split_input schema input in
  let seen_keys : (string, 'a) Hashtbl.t = Hashtbl.create 1024 in
  let accepted = ref [] in
  let quarantine = ref [] in
  let n_seen = ref 0 in
  let n_accepted = ref 0 in
  let n_replays = ref 0 in
  let put line reason snippet =
    Obs.incr quarantined_counter;
    Obs.event "ingest.quarantine"
      ~fields:[ ("label", reason_label reason); ("line", string_of_int line) ];
    quarantine := { line; reason; snippet } :: !quarantine
  in
  List.iter
    (fun (line, parsed) ->
      incr n_seen;
      Obs.time_histogram record_latency @@ fun () ->
      match parsed with
      | Error (msg, text) ->
          let reason =
            if has_control_bytes text then Control_bytes control_bytes_msg
            else if J.error_is_truncation msg then Truncated_record
            else Malformed_json msg
          in
          put line reason (snippet_of text)
      | Ok json -> (
          let snippet = snippet_of (J.to_string json) in
          match json with
          | J.Obj _ -> (
              match schema.of_json json with
              | Error reason -> put line reason snippet
              | Ok v -> (
                  let key = schema.identity v in
                  match Hashtbl.find_opt seen_keys key with
                  | None ->
                      Hashtbl.add seen_keys key v;
                      accepted := v :: !accepted;
                      Obs.incr accepted_counter;
                      incr n_accepted
                  | Some prior when schema.same prior v ->
                      incr n_replays;
                      put line (Duplicate_record key) snippet
                  | Some _ ->
                      incr n_replays;
                      put line (Conflicting_record key) snippet))
          | _ -> put line (Bad_value "record is not a JSON object") snippet))
    numbered;
  let declared =
    match List.assoc_opt schema.declared_field header with
    | Some (J.Int n) when n >= 0 -> Some n
    | _ -> None
  in
  let quarantine = List.rev !quarantine in
  let by_label =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun q ->
        let l = reason_label q.reason in
        Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
      quarantine;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> Stdlib.compare b a)
  in
  let missing =
    match declared with
    | None -> 0
    | Some d ->
        (* every non-replay quarantine entry still accounts for one
           declared record that arrived (in some damaged form) *)
        Stdlib.max 0 (d - !n_accepted - (List.length quarantine - !n_replays))
  in
  {
    header;
    records = Array.of_list (List.rev !accepted);
    quarantine;
    stats =
      {
        declared;
        seen = !n_seen;
        accepted = !n_accepted;
        quarantined_total = List.length quarantine;
        replays = !n_replays;
        missing;
        by_label;
        input_sha256;
      };
  }

(* --- the three dataset schemas ----------------------------------------- *)

let session_schema =
  {
    list_field = "sessions";
    declared_field = "exported_sessions";
    of_json = session_of_json;
    identity = (fun s -> string_of_int s.session_id);
    same = (fun a b -> a = b);
  }

let chain_schema =
  {
    list_field = "chains";
    declared_field = "exported_chains";
    of_json = chain_of_json;
    identity = (fun c -> c.subject);
    same = (fun a b -> a = b);
  }

let cert_schema =
  {
    list_field = "certificates";
    declared_field = "total_certificates";
    of_json = cert_of_json;
    identity = (fun c -> c.store ^ "/" ^ c.fingerprint);
    same = (fun a b -> a = b);
  }

let sessions_of_string input = run session_schema input
let notary_of_string input = run chain_schema input

(* The single-document store export nests certificates per store;
   flatten it to the per-certificate records the engine expects. *)
let flatten_stores_doc input =
  match J.parse input with
  | Ok (J.Obj fields) -> (
      match List.assoc_opt "stores" fields with
      | Some (J.List stores) ->
          let flat =
            List.concat_map
              (fun store ->
                match (J.member "name" store, J.member "certificates" store) with
                | Some (J.String name), Some (J.List certs) ->
                    List.map
                      (function
                        | J.Obj cf -> J.Obj (("store", J.String name) :: cf)
                        | other -> other)
                      certs
                | _ -> [ store ])
              stores
          in
          let header = List.remove_assoc "stores" fields in
          Some
            (J.to_string (J.Obj (("certificates", J.List flat) :: header)))
      | _ -> None)
  | _ -> None

let stores_of_string input =
  match flatten_stores_doc input with
  | Some flat ->
      (* the control-total digest covers the caller's bytes, not the
         flattened intermediate form *)
      let r = run cert_schema flat in
      { r with stats = { r.stats with input_sha256 = H.hex input } }
  | None -> run cert_schema input

(* --- aggregates -------------------------------------------------------- *)

let fraction pred t =
  Tangled_util.Stats.fraction pred t.records

let total_sessions (t : session_view ingest) = Array.length t.records
let extended_fraction t = fraction (fun s -> s.additional > 0) t
let rooted_fraction t = fraction (fun s -> s.rooted) t

let estimated_handsets (t : session_view ingest) =
  let set = Hashtbl.create 1024 in
  Array.iter
    (fun s -> Hashtbl.replace set (s.network, s.public_ip, s.model, s.os_version) ())
    t.records;
  Hashtbl.length set

let intercepted_sessions (t : session_view ingest) =
  Array.to_list t.records
  |> List.filter (fun s -> List.exists (fun p -> p.intercepted) s.probes)
  |> List.length

let counted_desc keys =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun k -> Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    keys;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, a) (kb, b) ->
         if a <> b then Stdlib.compare b a else Stdlib.compare ka kb)

let sessions_by_model (t : session_view ingest) =
  counted_desc
    (Array.to_list t.records |> List.map (fun s -> s.manufacturer ^ " " ^ s.model))

let sessions_by_manufacturer (t : session_view ingest) =
  counted_desc (Array.to_list t.records |> List.map (fun s -> s.manufacturer))

let unexpired (t : chain_view ingest) =
  Array.to_list t.records |> List.filter (fun c -> not c.expired) |> List.length

let total_chains (t : chain_view ingest) = Array.length t.records

let validated_fraction (t : chain_view ingest) =
  let unexp = Array.to_list t.records |> List.filter (fun c -> not c.expired) in
  match unexp with
  | [] -> 0.0
  | _ ->
      float_of_int (List.length (List.filter (fun c -> c.anchor <> None) unexp))
      /. float_of_int (List.length unexp)

let via_intermediate_fraction t = fraction (fun c -> c.via_intermediate) t

let per_anchor_counts (t : chain_view ingest) =
  counted_desc
    (Array.to_list t.records
    |> List.filter_map (fun c ->
           if c.expired then None else c.anchor))

let store_sizes (t : cert_view ingest) =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun c ->
      if not (Hashtbl.mem tbl c.store) then order := c.store :: !order;
      Hashtbl.replace tbl c.store
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c.store)))
    t.records;
  List.rev_map (fun s -> (s, Hashtbl.find tbl s)) !order

(* --- reporting --------------------------------------------------------- *)

let render_stats ~title t =
  let s = t.stats in
  let kv =
    [
      ("records declared", match s.declared with Some d -> T.fmt_int d | None -> "-");
      ("records seen", T.fmt_int s.seen);
      ("accepted", T.fmt_int s.accepted);
      ("quarantined", T.fmt_int s.quarantined_total);
      ("  of which replays", T.fmt_int s.replays);
      ("missing (never arrived)", T.fmt_int s.missing);
    ]
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b (T.render_kv ~title kv);
  if s.by_label <> [] then begin
    Buffer.add_char b '\n';
    Buffer.add_string b
      (T.render ~title:"Quarantine taxonomy" ~aligns:[ T.Left; T.Right ]
         ~header:[ "reason"; "records" ]
         (List.map (fun (l, n) -> [ l; string_of_int n ]) s.by_label))
  end;
  Buffer.contents b
