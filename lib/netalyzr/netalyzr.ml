module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Prng = Tangled_util.Prng
module Ts = Tangled_util.Timestamp
module C = Tangled_x509.Certificate
module Rs = Tangled_store.Root_store
module Pop = Tangled_device.Population
module Handshake = Tangled_tls.Handshake
module Endpoint = Tangled_tls.Endpoint
module Proxy = Tangled_tls.Proxy
module Obs = Tangled_obs.Obs

let probes_run = Obs.counter "netalyzr.probes_run"
let sessions_counter = Obs.counter "netalyzr.sessions"

type identity_tuple = {
  network : string;
  public_ip : string;
  model : string;
  os_version : PD.android_version;
}

type session = {
  session_id : int;
  handset_id : int;
  identity : identity_tuple;
  manufacturer : string;
  operator : string;
  rooted : bool;
  store_keys : string list;
  aosp_present : int;
  additional : int;
  missing : int;
  additional_ids : string list;
  app_added : string list;
  probes : Handshake.outcome list;
}

type dataset = {
  sessions : session array;
  population : Pop.t;
  world : Endpoint.world;
  proxy : Proxy.t;
}

let identity_of rng (h : Pop.handset) =
  {
    network = Printf.sprintf "%s-%s" h.Pop.operator (if Prng.bool rng then "cell" else "wifi");
    public_ip =
      Printf.sprintf "%d.%d.%d.%d" (Prng.int_in rng 1 223) (Prng.int rng 256)
        (Prng.int rng 256) (Prng.int_in rng 1 254);
    model = h.Pop.model;
    os_version = h.Pop.os_version;
  }

let measure_store (universe : BP.t) (h : Pop.handset) =
  let baseline = universe.BP.aosp h.Pop.os_version in
  let additions, missing = Rs.diff h.Pop.store baseline in
  let store_keys = Rs.certs h.Pop.store |> List.map C.equivalence_key in
  let aosp_present = Rs.cardinal baseline - List.length missing in
  let additional_ids =
    (* interned-id lookup; the old path folded over every extra per
       addition *)
    additions
    |> List.filter_map (fun c ->
           match BP.find_root_by_key universe (C.equivalence_key c) with
           | Some r ->
               Option.map (fun (x : PD.extra_cert) -> x.PD.xc_id) r.BP.extra
           | None -> None)
  in
  let app_added =
    Rs.entries h.Pop.store
    |> List.filter_map (fun (e : Rs.entry) ->
           match e.Rs.provenance with
           | Rs.App _ -> Some (Tangled_x509.Dn.to_string e.Rs.cert.C.subject)
           | _ -> None)
  in
  (store_keys, aosp_present, List.length additions, List.length missing, additional_ids,
   app_added)

let collect ?(probe_sample = 0.05) ~seed population =
  let universe = population.Pop.universe in
  let master = Prng.create seed in
  let rng_id = Prng.split master "netalyzr-identity" in
  let rng_probe = Prng.split master "netalyzr-probe" in
  let world, proxy =
    Obs.span "netalyzr.endpoints" (fun () ->
        ( Endpoint.build_world ~seed universe,
          Proxy.create ~seed ~interceptor:universe.BP.interceptor universe ))
  in
  let now = Ts.paper_epoch in
  let sessions = ref [] in
  let session_id = ref 0 in
  (* per-handset store measurement is identical across its sessions, so
     compute once; probes run on a sample of sessions *)
  Obs.span "netalyzr.sessions" @@ fun () ->
  Array.iter
    (fun (h : Pop.handset) ->
      let store_keys, aosp_present, additional, missing, additional_ids, app_added =
        measure_store universe h
      in
      let identity = identity_of rng_id h in
      let probed = ref false in
      for _ = 1 to h.Pop.sessions do
        incr session_id;
        let run_probe =
          if h.Pop.proxied then true
          else if (not !probed) && Prng.bernoulli rng_probe probe_sample then begin
            probed := true;
            true
          end
          else false
        in
        let probes =
          if not run_probe then []
          else begin
            Obs.incr probes_run;
            let transport =
              if h.Pop.proxied then Handshake.Proxied (world, proxy)
              else Handshake.Direct world
            in
            Handshake.probe_all transport ~store:h.Pop.store ~now
          end
        in
        Obs.incr sessions_counter;
        sessions :=
          {
            session_id = !session_id;
            handset_id = h.Pop.id;
            identity;
            manufacturer = h.Pop.manufacturer;
            operator = h.Pop.operator;
            rooted = h.Pop.rooted;
            store_keys;
            aosp_present;
            additional;
            missing;
            additional_ids;
            app_added;
            probes;
          }
          :: !sessions
      done)
    population.Pop.handsets;
  { sessions = Array.of_list (List.rev !sessions); population; world; proxy }

let total_sessions d = Array.length d.sessions

let extended_fraction d =
  Tangled_util.Stats.fraction (fun s -> s.additional > 0) d.sessions

let rooted_fraction d = Tangled_util.Stats.fraction (fun s -> s.rooted) d.sessions

let unique_root_keys d =
  let set = Hashtbl.create 1024 in
  Array.iter
    (fun s -> List.iter (fun k -> Hashtbl.replace set k ()) s.store_keys)
    d.sessions;
  Hashtbl.length set

let estimated_handsets d =
  let set = Hashtbl.create 1024 in
  Array.iter
    (fun s ->
      Hashtbl.replace set
        (s.identity.network, s.identity.public_ip, s.identity.model, s.identity.os_version)
        ())
    d.sessions;
  Hashtbl.length set

let intercepted_sessions d =
  Array.to_list d.sessions
  |> List.filter (fun s ->
         List.exists (fun (o : Handshake.outcome) -> o.Handshake.intercepted) s.probes)
