(* Sign-magnitude bignums on 26-bit limbs (little-endian int arrays).
   26-bit limbs keep every intermediate product below 2^52, safely inside
   OCaml's 63-bit native ints, including Algorithm D's two-limb
   estimates. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = { neg : bool; mag : int array }
(* Invariant: mag has no leading (high-index) zero limbs; zero is
   { neg = false; mag = [||] }. *)

let zero = { neg = false; mag = [||] }

let norm_mag mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length mag then mag else Array.sub mag 0 !n

let make neg mag =
  let mag = norm_mag mag in
  if Array.length mag = 0 then zero else { neg; mag }

let is_zero t = Array.length t.mag = 0
let sign t = if is_zero t then 0 else if t.neg then -1 else 1
let is_odd t = Array.length t.mag > 0 && t.mag.(0) land 1 = 1

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare a b =
  match (sign a, sign b) with
  | 0, 0 -> 0
  | sa, sb when sa <> sb -> Stdlib.compare sa sb
  | 1, _ -> cmp_mag a.mag b.mag
  | _ -> cmp_mag b.mag a.mag

let equal a b = compare a b = 0

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let n = Stdlib.max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(n) <- !carry;
  r

(* requires a >= b *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let rec of_int n =
  if n = 0 then zero
  else if n = min_int then
    (* abs min_int overflows; decompose as 2 * (min_int / 2) *)
    let half = of_int (min_int / 2) in
    make true (add_mag half.mag half.mag)
  else begin
    let neg = n < 0 in
    let v = abs n in
    (* size the magnitude, then fill it in place — no cons cells, no
       Array.of_list copy *)
    let nl = ref 0 and t = ref v in
    while !t <> 0 do
      incr nl;
      t := !t lsr limb_bits
    done;
    let mag = Array.make !nl 0 in
    let t = ref v in
    for i = 0 to !nl - 1 do
      Array.unsafe_set mag i (!t land limb_mask);
      t := !t lsr limb_bits
    done;
    { neg; mag }
  end

let one = of_int 1
let two = of_int 2
let neg t = if is_zero t then zero else { t with neg = not t.neg }
let abs t = if t.neg then { t with neg = false } else t

let add a b =
  match (sign a, sign b) with
  | 0, _ -> b
  | _, 0 -> a
  | sa, sb when sa = sb -> make a.neg (add_mag a.mag b.mag)
  | _ ->
      let c = cmp_mag a.mag b.mag in
      if c = 0 then zero
      else if c > 0 then make a.neg (sub_mag a.mag b.mag)
      else make b.neg (sub_mag b.mag a.mag)

let sub a b = add a (neg b)

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let v = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      (* propagate carry; r.(i + lb) is untouched by inner loop for this i *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = r.(!k) + !carry in
        r.(!k) <- v land limb_mask;
        carry := v lsr limb_bits;
        incr k
      done
    done;
    r
  end

let mul a b =
  if is_zero a || is_zero b then zero
  else make (a.neg <> b.neg) (mul_mag a.mag b.mag)

let nbits_of_limb v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bit_length t =
  let n = Array.length t.mag in
  if n = 0 then 0 else ((n - 1) * limb_bits) + nbits_of_limb t.mag.(n - 1)

let testbit t i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length t.mag && (t.mag.(limb) lsr off) land 1 = 1

let shl_mag a k =
  if Array.length a = 0 then [||]
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- r.(i + limbs + 1) lor (v lsr limb_bits)
    done;
    r
  end

let shr_mag a k =
  let limbs = k / limb_bits and bits = k mod limb_bits in
  let la = Array.length a in
  if limbs >= la then [||]
  else begin
    let n = la - limbs in
    let r = Array.make n 0 in
    for i = 0 to n - 1 do
      let lo = a.(i + limbs) lsr bits in
      let hi =
        if bits = 0 || i + limbs + 1 >= la then 0
        else (a.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask
      in
      r.(i) <- lo lor hi
    done;
    r
  end

(* The remaining [invalid_arg] sites in this module (shifts, pow,
   modpow, mod_inverse, to_bytes_be, random_bits, random_below) guard
   preconditions
   whose arguments are computed by our own arithmetic and key-size
   logic, never parsed from untrusted bytes; violating one is a bug in
   the caller, so a noisy exception is the right contract there. *)
let shift_left t k =
  if k < 0 then invalid_arg "Bigint.shift_left: negative shift";
  if is_zero t || k = 0 then t else make t.neg (shl_mag t.mag k)

let shift_right t k =
  if k < 0 then invalid_arg "Bigint.shift_right: negative shift";
  if is_zero t || k = 0 then t else make t.neg (shr_mag t.mag k)

(* Short division by a single limb. *)
let divmod_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* Knuth TAOCP vol.2 Algorithm D.  u / v with v at least two limbs. *)
let divmod_knuth u v =
  let n = Array.length v in
  let m = Array.length u - n in
  assert (m >= 0 && n >= 2);
  let shift = limb_bits - nbits_of_limb v.(n - 1) in
  let vn = norm_mag (shl_mag v shift) in
  let un = shl_mag u shift in
  (* un needs exactly m + n + 1 limbs *)
  let un =
    if Array.length un >= m + n + 1 then Array.sub un 0 (m + n + 1)
    else begin
      let r = Array.make (m + n + 1) 0 in
      Array.blit un 0 r 0 (Array.length un);
      r
    end
  in
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    let top = (un.(j + n) lsl limb_bits) lor un.(j + n - 1) in
    let qhat = ref (top / vn.(n - 1)) in
    let rhat = ref (top mod vn.(n - 1)) in
    let adjust () =
      !qhat >= base
      || (!qhat * vn.(n - 2)) > ((!rhat lsl limb_bits) lor un.(j + n - 2))
    in
    while !rhat < base && adjust () do
      decr qhat;
      rhat := !rhat + vn.(n - 1)
    done;
    (* multiply and subtract *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * vn.(i)) + !carry in
      carry := p lsr limb_bits;
      let d = un.(i + j) - (p land limb_mask) - !borrow in
      if d < 0 then begin
        un.(i + j) <- d + base;
        borrow := 1
      end
      else begin
        un.(i + j) <- d;
        borrow := 0
      end
    done;
    let d = un.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add back *)
      un.(j + n) <- d + base;
      decr qhat;
      let carry2 = ref 0 in
      for i = 0 to n - 1 do
        let s = un.(i + j) + vn.(i) + !carry2 in
        un.(i + j) <- s land limb_mask;
        carry2 := s lsr limb_bits
      done;
      un.(j + n) <- (un.(j + n) + !carry2) land limb_mask
    end
    else un.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = shr_mag (Array.sub un 0 n) shift in
  (q, r)

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if cmp_mag a.mag b.mag < 0 then (zero, a)
  else begin
    let qmag, rmag =
      if Array.length b.mag = 1 then begin
        let q, r = divmod_small a.mag b.mag.(0) in
        (q, if r = 0 then [||] else [| r |])
      end
      else divmod_knuth a.mag b.mag
    in
    (make (a.neg <> b.neg) qmag, make a.neg rmag)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let erem a b =
  let r = rem a b in
  if r.neg then add r (abs b) else r

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let modpow b e m =
  if sign e < 0 then invalid_arg "Bigint.modpow: negative exponent";
  if sign m <= 0 then invalid_arg "Bigint.modpow: modulus must be positive";
  if equal m one then zero
  else begin
    let b = erem b m in
    let result = ref one in
    let acc = ref b in
    let nbits = bit_length e in
    for i = 0 to nbits - 1 do
      if testbit e i then result := rem (mul !result !acc) m;
      if i < nbits - 1 then acc := rem (mul !acc !acc) m
    done;
    !result
  end

let rec gcd_aux a b = if is_zero b then a else gcd_aux b (rem a b)
let gcd a b = gcd_aux (abs a) (abs b)

let extended_gcd a b =
  (* iterative extended Euclid on signed values *)
  let rec go old_r r old_s s old_t t =
    if is_zero r then (old_r, old_s, old_t)
    else begin
      let q = div old_r r in
      go r (sub old_r (mul q r)) s (sub old_s (mul q s)) t (sub old_t (mul q t))
    end
  in
  let g, x, y = go a b one zero zero one in
  if sign g < 0 then (neg g, neg x, neg y) else (g, x, y)

let mod_inverse a m =
  if sign m <= 0 then invalid_arg "Bigint.mod_inverse: modulus must be positive";
  let g, x, _ = extended_gcd (erem a m) m in
  if not (equal g one) then None else Some (erem x m)

(* Direct limb packing: each input byte lands at bit offset 8*i from
   the little end, touching at most two limbs.  The old per-byte
   [shift_left]+[add] fold re-copied the accumulator per byte, an
   O(n²) construction that showed up in every DER decode. *)
let of_bytes_be s =
  let nbytes = String.length s in
  if nbytes = 0 then zero
  else begin
    let nlimbs = ((nbytes * 8) + limb_bits - 1) / limb_bits in
    let mag = Array.make nlimbs 0 in
    for idx = 0 to nbytes - 1 do
      let b = Char.code (String.unsafe_get s (nbytes - 1 - idx)) in
      let bit = idx * 8 in
      let limb = bit / limb_bits and off = bit mod limb_bits in
      mag.(limb) <- mag.(limb) lor ((b lsl off) land limb_mask);
      if off > limb_bits - 8 then
        mag.(limb + 1) <- mag.(limb + 1) lor (b lsr (limb_bits - off))
    done;
    make false mag
  end

let to_int_opt t =
  let n = Array.length t.mag in
  if n = 0 then Some 0
  else if bit_length t <= 62 then begin
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl limb_bits) lor t.mag.(i)
    done;
    Some (if t.neg then - !v else !v)
  end
  else None

(* Inverse of [of_bytes_be]'s packing: read each output byte straight
   out of the limb array instead of the previous
   divide-by-256-per-byte loop (a full short division each step). *)
let to_bytes_be t =
  if t.neg then invalid_arg "Bigint.to_bytes_be: negative value";
  if is_zero t then ""
  else begin
    let nbytes = (bit_length t + 7) / 8 in
    let b = Bytes.create nbytes in
    let mag = t.mag in
    let nlimbs = Array.length mag in
    for idx = 0 to nbytes - 1 do
      let bit = idx * 8 in
      let limb = bit / limb_bits and off = bit mod limb_bits in
      let v = mag.(limb) lsr off in
      let v =
        if off > limb_bits - 8 && limb + 1 < nlimbs then
          v lor (mag.(limb + 1) lsl (limb_bits - off))
        else v
      in
      Bytes.unsafe_set b (nbytes - 1 - idx) (Char.unsafe_chr (v land 0xff))
    done;
    Bytes.unsafe_to_string b
  end

(* Text parsing is the one place this module meets untrusted input
   (operator-supplied key material, config files), so of_hex and
   of_string return [result] rather than raising. *)
let of_hex h =
  let h, neg = if String.length h > 0 && h.[0] = '-' then (String.sub h 1 (String.length h - 1), true) else (h, false) in
  if String.length h = 0 then Error "Bigint.of_hex: empty"
  else begin
    let acc = ref zero in
    let bad = ref None in
    String.iter
      (fun c ->
        match c with
        | '0' .. '9' -> acc := add (shift_left !acc 4) (of_int (Char.code c - Char.code '0'))
        | 'a' .. 'f' -> acc := add (shift_left !acc 4) (of_int (Char.code c - Char.code 'a' + 10))
        | 'A' .. 'F' -> acc := add (shift_left !acc 4) (of_int (Char.code c - Char.code 'A' + 10))
        | c -> if !bad = None then bad := Some c)
      h;
    match !bad with
    | Some c -> Error (Printf.sprintf "Bigint.of_hex: invalid character %C" c)
    | None -> Ok (if neg && not (is_zero !acc) then { !acc with neg = true } else !acc)
  end

let to_hex t =
  if is_zero t then "0"
  else begin
    let b = Buffer.create 32 in
    if t.neg then Buffer.add_char b '-';
    let bytes = to_bytes_be (abs t) in
    let hex = Tangled_util.Hex.encode bytes in
    (* strip a single leading zero nibble if present *)
    let hex = if String.length hex > 1 && hex.[0] = '0' then String.sub hex 1 (String.length hex - 1) else hex in
    Buffer.add_string b hex;
    Buffer.contents b
  end

let of_string s =
  let n = String.length s in
  if n = 0 then Error "Bigint.of_string: empty"
  else begin
    let neg = s.[0] = '-' in
    let start = if neg || s.[0] = '+' then 1 else 0 in
    if start >= n then Error "Bigint.of_string: no digits"
    else begin
      let acc = ref zero in
      let ten = of_int 10 in
      let bad = ref None in
      for i = start to n - 1 do
        match s.[i] with
        | '0' .. '9' ->
            acc := add (mul !acc ten) (of_int (Char.code s.[i] - Char.code '0'))
        | c -> if !bad = None then bad := Some c
      done;
      match !bad with
      | Some c -> Error (Printf.sprintf "Bigint.of_string: invalid character %C" c)
      | None ->
          Ok (if neg && not (is_zero !acc) then { !acc with neg = true } else !acc)
    end
  end

let to_string t =
  if is_zero t then "0"
  else begin
    let b = Buffer.create 32 in
    let rec digits v acc =
      if is_zero v then acc
      else begin
        let q, r = divmod v (of_int 10) in
        let d = Option.get (to_int_opt r) in
        digits q (Char.chr (Char.code '0' + d) :: acc)
      end
    in
    if t.neg then Buffer.add_char b '-';
    List.iter (Buffer.add_char b) (digits (abs t) []);
    Buffer.contents b
  end

let random_bits rng n =
  if n < 0 then invalid_arg "Bigint.random_bits: negative bit count";
  let nbytes = (n + 7) / 8 in
  let s = Tangled_util.Prng.bytes rng nbytes in
  let v = of_bytes_be s in
  let excess = (nbytes * 8) - n in
  shift_right v excess

let random_below rng bound =
  if sign bound <= 0 then invalid_arg "Bigint.random_below: bound must be positive";
  let n = bit_length bound in
  let rec go () =
    let v = random_bits rng n in
    if compare v bound < 0 then v else go ()
  in
  go ()

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Internal = struct
  let limb_bits = limb_bits
  let mag t = Array.copy t.mag
  let of_mag m = make false (Array.copy m)
end
