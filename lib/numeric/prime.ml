module Prng = Tangled_util.Prng

let small_primes =
  (* sieve of Eratosthenes below 1000, computed once at load time *)
  let bound = 1000 in
  let composite = Array.make (bound + 1) false in
  let primes = ref [] in
  for i = 2 to bound do
    if not composite.(i) then begin
      primes := i :: !primes;
      let j = ref (i * i) in
      while !j <= bound do
        composite.(!j) <- true;
        j := !j + i
      done
    end
  done;
  Array.of_list (List.rev !primes)

let divisible_by_small_prime n =
  Array.exists
    (fun p ->
      let bp = Bigint.of_int p in
      Bigint.is_zero (Bigint.rem n bp) && not (Bigint.equal n bp))
    small_primes

let miller_rabin_witness ctx n d s a =
  (* returns true when [a] witnesses compositeness of [n]; [ctx] is the
     Montgomery context for [n], shared across all rounds *)
  let n1 = Bigint.sub n Bigint.one in
  let x = Montgomery.modpow ctx a d in
  if Bigint.equal x Bigint.one || Bigint.equal x n1 then false
  else begin
    let rec squarings i x =
      if i >= s - 1 then true
      else begin
        let x = Bigint.rem (Bigint.mul x x) n in
        if Bigint.equal x n1 then false else squarings (i + 1) x
      end
    in
    squarings 0 x
  end

let is_probably_prime ?(rounds = 20) rng n =
  if Bigint.sign n <= 0 then false
  else
    match Bigint.to_int_opt n with
    | Some v when v <= small_primes.(Array.length small_primes - 1) ->
        Array.exists (fun p -> p = v) small_primes
    | _ ->
        if not (Bigint.is_odd n) then false
        else if divisible_by_small_prime n then false
        else begin
          (* n - 1 = d * 2^s with d odd *)
          let n1 = Bigint.sub n Bigint.one in
          let rec split d s =
            if Bigint.is_odd d then (d, s) else split (Bigint.shift_right d 1) (s + 1)
          in
          let d, s = split n1 0 in
          let n3 = Bigint.sub n (Bigint.of_int 3) in
          (* n is odd and above the small-prime bound here, so the
             context precondition holds; the setup cost amortises over
             [rounds] exponentiations against the same candidate *)
          let ctx = Montgomery.create n in
          let rec rounds_loop i =
            if i >= rounds then true
            else begin
              (* a uniform in [2, n-2] *)
              let a = Bigint.add (Bigint.random_below rng n3) Bigint.two in
              if miller_rabin_witness ctx n d s a then false else rounds_loop (i + 1)
            end
          in
          rounds_loop 0
        end

let generate ?(rounds = 20) rng ~bits =
  if bits < 2 then invalid_arg "Prime.generate: need at least 2 bits";
  let top = Bigint.shift_left Bigint.one (bits - 1) in
  let rec attempt () =
    let r = Bigint.random_bits rng (bits - 1) in
    let candidate = Bigint.add top r in
    let candidate =
      if Bigint.is_odd candidate then candidate else Bigint.add candidate Bigint.one
    in
    (* incremental search keeps the draw count low *)
    let rec search c tries =
      if tries = 0 || Bigint.bit_length c <> bits then attempt ()
      else if is_probably_prime ~rounds rng c then c
      else search (Bigint.add c Bigint.two) (tries - 1)
    in
    search candidate 400
  in
  attempt ()
