(** Arbitrary-precision signed integers.

    A from-scratch bignum sufficient for the RSA substrate: values are
    immutable, represented in sign-magnitude form with 26-bit limbs.
    Division uses Knuth's Algorithm D, so 512–2048-bit modular
    exponentiation is fast enough for the simulation's certificate
    volumes. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
val to_int_opt : t -> int option
(** [to_int_opt t] is [Some n] when [t] fits native [int]. *)

val of_string : string -> (t, string) result
(** Decimal parsing, with optional leading ['-'] or ['+'].  Total:
    malformed input is an [Error] with a diagnostic, never an
    exception — text is where untrusted input enters this module. *)

val to_string : t -> string
(** Decimal rendering. *)

val of_hex : string -> (t, string) result
(** Hexadecimal parsing (no [0x] prefix), same contract as
    {!of_string}. *)

val to_hex : t -> string
(** Lowercase hexadecimal rendering of the magnitude, ["-"]-prefixed
    when negative. *)

val of_bytes_be : string -> t
(** Big-endian unsigned interpretation of a byte string; [""] is 0. *)

val to_bytes_be : t -> string
(** Minimal big-endian unsigned encoding of the magnitude; 0 is [""].
    @raise Invalid_argument on negative values. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_odd : t -> bool

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is the truncated-toward-zero quotient and remainder,
    [a = q*b + r] with [|r| < |b|] and [r] carrying [a]'s sign.
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val erem : t -> t -> t
(** Euclidean remainder, always in [\[0, |b|)]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit_length : t -> int
(** Number of significant bits of the magnitude; 0 for 0. *)

val testbit : t -> int -> bool
(** [testbit t i] is bit [i] (little-endian) of the magnitude. *)

val pow : t -> int -> t
(** Small non-negative integer exponentiation.
    @raise Invalid_argument on negative exponents. *)

val modpow : t -> t -> t -> t
(** [modpow base exp m] is [base ^ exp mod m] for non-negative [exp]
    and positive [m].
    @raise Invalid_argument on negative [exp] or non-positive [m]. *)

val gcd : t -> t -> t
(** Greatest common divisor of the magnitudes. *)

val extended_gcd : t -> t -> t * t * t
(** [extended_gcd a b] is [(g, x, y)] with [a*x + b*y = g = gcd a b]. *)

val mod_inverse : t -> t -> t option
(** [mod_inverse a m] is the inverse of [a] modulo [m] in [\[0, m)],
    or [None] when [gcd a m <> 1]. *)

val random_bits : Tangled_util.Prng.t -> int -> t
(** Uniform value with at most [n] bits. *)

val random_below : Tangled_util.Prng.t -> t -> t
(** Uniform value in [\[0, bound)] by rejection sampling.
    @raise Invalid_argument unless [bound > 0]. *)

val pp : Format.formatter -> t -> unit

(** Escape hatch for sibling modules (the Montgomery layer) that
    operate on the raw limb representation.  Not for general use: the
    limb layout is an implementation detail of this library. *)
module Internal : sig
  val limb_bits : int
  (** Bits per limb (26). *)

  val mag : t -> int array
  (** A copy of the magnitude, little-endian limbs, no leading zeros. *)

  val of_mag : int array -> t
  (** The non-negative value with the given little-endian limbs;
      leading zeros are tolerated and stripped. *)
end
