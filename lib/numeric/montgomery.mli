(** Montgomery-form modular arithmetic for odd moduli.

    A context precomputes everything exponentiation needs for one
    modulus — the limb-wise inverse [-m⁻¹ mod 2^26] and [R² mod m] —
    so repeated operations against the same modulus (every signature a
    CA issues or verifies) pay the setup once.  {!modpow} then runs
    fixed-window (4-bit) square-and-multiply where each modular product
    is a single division-free CIOS pass instead of a schoolbook multiply
    followed by a Knuth division.

    {!Bigint.modpow} remains the reference oracle; the test suite
    cross-checks the two on random inputs, and results are bit-exact. *)

type t
(** A reusable context for one odd modulus [> 1]. *)

val create : Bigint.t -> t
(** [create m] precomputes a context for modulus [m].
    @raise Invalid_argument unless [m] is odd, positive and [> 1]. *)

val modulus : t -> Bigint.t

val modpow : t -> Bigint.t -> Bigint.t -> Bigint.t
(** [modpow t b e] is [b^e mod (modulus t)] for non-negative [e];
    [b] may be negative or exceed the modulus (it is reduced first).
    Agrees exactly with [Bigint.modpow b e (modulus t)].
    @raise Invalid_argument on negative [e]. *)
