(** Montgomery-form modular arithmetic for odd moduli.

    A context precomputes everything exponentiation needs for one
    modulus — the limb-wise inverse [-m⁻¹ mod 2^26] and [R² mod m] —
    so repeated operations against the same modulus (every signature a
    CA issues or verifies) pay the setup once.  {!modpow} then runs
    fixed-window (4-bit) square-and-multiply where each modular product
    is a single division-free CIOS pass instead of a schoolbook multiply
    followed by a Knuth division.

    {!Bigint.modpow} remains the reference oracle; the test suite
    cross-checks the two on random inputs, and results are bit-exact.

    On top of {!modpow} sits a precompute layer for hot keys.  A
    {!schedule} hoists an exponent's window digits (and popcount) out
    of the loop, a {!scratch} preallocates every buffer so repeated
    exponentiations allocate nothing, {!powm_auto} picks a sparse
    square-and-multiply walk for low-weight exponents like 65537, and
    384-bit CRT halves (k = 8 limbs, the Notary corpus default)
    dispatch to fully unrolled straight-line kernels.  {!Fixed_base}
    precomputes per-window digit tables of one repeated base, turning
    exponentiation into ~bits/4 multiplies with no squarings.  All of
    these return exactly what {!modpow} returns. *)

type t
(** A reusable context for one odd modulus [> 1]. *)

val create : Bigint.t -> t
(** [create m] precomputes a context for modulus [m].
    @raise Invalid_argument unless [m] is odd, positive and [> 1]. *)

val modulus : t -> Bigint.t

val modpow : t -> Bigint.t -> Bigint.t -> Bigint.t
(** [modpow t b e] is [b^e mod (modulus t)] for non-negative [e];
    [b] may be negative or exceed the modulus (it is reduced first).
    Agrees exactly with [Bigint.modpow b e (modulus t)].
    @raise Invalid_argument on negative [e]. *)

(** {1 Precomputed-exponent fast path} *)

type schedule
(** A fixed exponent's window digits, bit length and popcount,
    computed once and reused across every exponentiation with that
    exponent (a CA key's CRT halves sign millions of times). *)

val schedule : Bigint.t -> schedule
(** @raise Invalid_argument on a negative exponent. *)

val schedule_bits : schedule -> int

type scratch
(** Preallocated working set (ping-pong accumulators, window table,
    conversion buffers) for one context width.  Single-domain: share
    a scratch between concurrent users and results are garbage. *)

val scratch : t -> scratch

val powm : t -> scratch -> schedule -> Bigint.t -> Bigint.t
(** [powm t sc sched b] = [modpow t b e] for the [e] behind [sched],
    allocating only the result.
    @raise Invalid_argument if [sc] was built for another width. *)

val powm_sparse : t -> scratch -> schedule -> Bigint.t -> Bigint.t
(** Table-free square-and-multiply — cheaper than {!powm} for short
    or low-weight exponents (65537: 16 squarings + 1 multiply instead
    of a 14-multiply table build). Same result. *)

val powm_auto : t -> scratch -> schedule -> Bigint.t -> Bigint.t
(** {!powm_sparse} when the exponent's popcount makes it cheaper,
    {!powm} otherwise. *)

(** {1 Fixed-base comb} *)

module Fixed_base : sig
  type fb
  (** Per-window digit tables [b^(d·16^w)] for one fixed base: an
      exponentiation against the table is a product of one entry per
      nonzero window digit — no squarings at all.  Building the table
      costs ~[bits] squarings plus 14 multiplies per window, so it
      pays for itself after a handful of calls with the same base. *)

  val precompute : t -> Bigint.t -> bits:int -> fb
  (** [precompute t b ~bits] tables [b] for exponents up to [bits]
      wide.  @raise Invalid_argument if [bits < 1]. *)

  val bits : fb -> int

  val powm : fb -> schedule -> Bigint.t
  (** [powm fb sched] = [modpow t b e] for the tabled base [b] and
      the exponent behind [sched].
      @raise Invalid_argument if the exponent is wider than [bits fb]. *)
end

(** {1 Wide-limb kernel plane} *)

module Wide : sig
  (** A second, internal limb plane for the multiplication-bound hot
      paths: magnitudes repacked from the public 26-bit representation
      into 28-bit limbs (products < 2^56 leave 7 headroom bits, so
      column accumulation stays single-word up to 31 limbs / 868 bits),
      with schoolbook product-scanning below {!Internal.karatsuba_threshold}
      limbs and subtractive Karatsuba above it, followed by a
      word-by-word REDC pass that is valid at any width.

      Everything here returns exactly what the 26-bit plane returns;
      the test suite cross-checks both against {!Bigint.modpow}. *)

  type t
  (** Context for one odd modulus [> 1] on the 28-bit plane. *)

  val create : Bigint.t -> t
  (** @raise Invalid_argument unless the modulus is odd and [> 1]. *)

  val modulus : t -> Bigint.t

  val k : t -> int
  (** Limb count of the context's plane. *)

  type wscratch
  (** Preallocated working set (ping-pong accumulators, window table,
      double-width product buffer, Karatsuba arena).  Single-domain. *)

  val scratch : t -> wscratch

  val powm : t -> wscratch -> schedule -> Bigint.t -> Bigint.t
  (** Fixed-window walk; equals the 26-bit {!powm} bit for bit.
      @raise Invalid_argument if the scratch is for another width. *)

  val powm_sparse : t -> wscratch -> schedule -> Bigint.t -> Bigint.t
  val powm_auto : t -> wscratch -> schedule -> Bigint.t -> Bigint.t

  (** {2 Allocation-free RSA-CRT plumbing}

      The signing path works on bare limb arrays so a per-key context
      can sign into a caller-owned buffer with zero allocation. *)

  val limbs_of_bigint : t -> Bigint.t -> int array
  (** Pack a non-negative value fitting the plane to the context's [k]
      28-bit limbs (allocates; meant for per-key precomputes).
      @raise Invalid_argument out of range. *)

  val load_base_bytes : t -> wscratch -> string -> unit
  (** Pack a big-endian byte string (at most [2k] limbs wide — the
      384-bit EMSA block against a 192-bit CRT prime) and convert to
      Montgomery form without division, leaving the loaded base in the
      scratch for the [_loaded] walks.
      @raise Invalid_argument on a wider value. *)

  val powm_loaded : t -> wscratch -> schedule -> dst:int array -> unit
  (** Windowed walk over the base left by {!load_base_bytes}; writes
      the plain (out-of-Montgomery-form) [k]-limb result to [dst]. *)

  val powm_sparse_loaded : t -> wscratch -> schedule -> dst:int array -> unit
  val powm_auto_loaded : t -> wscratch -> schedule -> dst:int array -> unit

  val write_bytes_be : int array -> int -> bytes -> unit
  (** [write_bytes_be limbs nlimbs out] serialises the value in the
      first [nlimbs] limbs big-endian, exactly filling [out]
      (zero-padded on the left; the value must fit). *)

  val to_mont_limbs : t -> wscratch -> int array -> int array
  (** Montgomery form of a packed [k]-limb value (allocates the
      result; meant for once-per-key precomputes like [qinv·R mod p]). *)

  val crt_combine :
    pctx:t ->
    psc:wscratch ->
    qinv_m:int array ->
    qlimbs:int array ->
    m1:int array ->
    m2:int array ->
    out:bytes ->
    unit
  (** Garner recombination [m2 + q·(qinv·(m1 − m2) mod p)] entirely on
      the 28-bit plane, writing the signature big-endian into [out]
      (whose length fixes the output width).  Requires [p] and [q] of
      equal bit length (so [q < 2p]) with [m1 < p], [m2 < q]. *)

  (** {2 Test hooks} *)

  module Internal : sig
    val karatsuba_threshold : int
    val integrated_max_k : int

    val pack : Bigint.t -> int array
    (** 28-bit limbs of a non-negative value, little-endian. *)

    val unpack : int array -> Bigint.t

    val mul_limbs : threshold:int -> int array -> int array -> int array
    (** Full product with an explicit schoolbook/Karatsuba cutover;
        operands may have different lengths.  The cross-oracle for the
        QCheck [karatsuba = schoolbook] property. *)

    val sqr_limbs : threshold:int -> int array -> int array
  end
end
