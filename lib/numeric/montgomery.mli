(** Montgomery-form modular arithmetic for odd moduli.

    A context precomputes everything exponentiation needs for one
    modulus — the limb-wise inverse [-m⁻¹ mod 2^26] and [R² mod m] —
    so repeated operations against the same modulus (every signature a
    CA issues or verifies) pay the setup once.  {!modpow} then runs
    fixed-window (4-bit) square-and-multiply where each modular product
    is a single division-free CIOS pass instead of a schoolbook multiply
    followed by a Knuth division.

    {!Bigint.modpow} remains the reference oracle; the test suite
    cross-checks the two on random inputs, and results are bit-exact.

    On top of {!modpow} sits a precompute layer for hot keys.  A
    {!schedule} hoists an exponent's window digits (and popcount) out
    of the loop, a {!scratch} preallocates every buffer so repeated
    exponentiations allocate nothing, {!powm_auto} picks a sparse
    square-and-multiply walk for low-weight exponents like 65537, and
    384-bit CRT halves (k = 8 limbs, the Notary corpus default)
    dispatch to fully unrolled straight-line kernels.  {!Fixed_base}
    precomputes per-window digit tables of one repeated base, turning
    exponentiation into ~bits/4 multiplies with no squarings.  All of
    these return exactly what {!modpow} returns. *)

type t
(** A reusable context for one odd modulus [> 1]. *)

val create : Bigint.t -> t
(** [create m] precomputes a context for modulus [m].
    @raise Invalid_argument unless [m] is odd, positive and [> 1]. *)

val modulus : t -> Bigint.t

val modpow : t -> Bigint.t -> Bigint.t -> Bigint.t
(** [modpow t b e] is [b^e mod (modulus t)] for non-negative [e];
    [b] may be negative or exceed the modulus (it is reduced first).
    Agrees exactly with [Bigint.modpow b e (modulus t)].
    @raise Invalid_argument on negative [e]. *)

(** {1 Precomputed-exponent fast path} *)

type schedule
(** A fixed exponent's window digits, bit length and popcount,
    computed once and reused across every exponentiation with that
    exponent (a CA key's CRT halves sign millions of times). *)

val schedule : Bigint.t -> schedule
(** @raise Invalid_argument on a negative exponent. *)

val schedule_bits : schedule -> int

type scratch
(** Preallocated working set (ping-pong accumulators, window table,
    conversion buffers) for one context width.  Single-domain: share
    a scratch between concurrent users and results are garbage. *)

val scratch : t -> scratch

val powm : t -> scratch -> schedule -> Bigint.t -> Bigint.t
(** [powm t sc sched b] = [modpow t b e] for the [e] behind [sched],
    allocating only the result.
    @raise Invalid_argument if [sc] was built for another width. *)

val powm_sparse : t -> scratch -> schedule -> Bigint.t -> Bigint.t
(** Table-free square-and-multiply — cheaper than {!powm} for short
    or low-weight exponents (65537: 16 squarings + 1 multiply instead
    of a 14-multiply table build). Same result. *)

val powm_auto : t -> scratch -> schedule -> Bigint.t -> Bigint.t
(** {!powm_sparse} when the exponent's popcount makes it cheaper,
    {!powm} otherwise. *)

(** {1 Fixed-base comb} *)

module Fixed_base : sig
  type fb
  (** Per-window digit tables [b^(d·16^w)] for one fixed base: an
      exponentiation against the table is a product of one entry per
      nonzero window digit — no squarings at all.  Building the table
      costs ~[bits] squarings plus 14 multiplies per window, so it
      pays for itself after a handful of calls with the same base. *)

  val precompute : t -> Bigint.t -> bits:int -> fb
  (** [precompute t b ~bits] tables [b] for exponents up to [bits]
      wide.  @raise Invalid_argument if [bits < 1]. *)

  val bits : fb -> int

  val powm : fb -> schedule -> Bigint.t
  (** [powm fb sched] = [modpow t b e] for the tabled base [b] and
      the exponent behind [sched].
      @raise Invalid_argument if the exponent is wider than [bits fb]. *)
end
