(* Montgomery-form modular arithmetic on Bigint's 26-bit limbs.

   The legacy Bigint.modpow pays a full Knuth division per square or
   multiply.  A Montgomery context trades that for division-free
   product-scanning (FIPS) reductions: each output column accumulates
   all of its partial products — a_j·b_{i-j} and mu_j·m_{i-j} — into a
   single native-int accumulator with one multiply-add per product,
   then spends one shift and one store for the whole column.  The
   quotient digit mu_i falls out of the column sum as it completes, so
   multiplication and reduction fuse into one pass with no
   intermediate 2k-limb product.

   Word size is the bignum's 26-bit limb: a partial product is below
   2^52, so a column of 2k of them plus the inter-column carry stays
   below 2^(52 + log2 2k) — for any modulus this simulation can reach
   (k ≤ 500 limbs, i.e. 13 000 bits) that is inside OCaml's 63-bit
   native int, and the inner loops are pure int arithmetic.

   Squaring gets a dedicated kernel: the operand half of each column
   is symmetric (a_j·a_{i-j} = a_{i-j}·a_j), so it sums each pair once
   and doubles, cutting that half's multiplies from k² to ~k²/2.
   Fixed-window exponentiation is ~80 % squarings, so this is the
   single biggest lever on modpow latency.

   Two layers sit on the kernels:

   - {!modpow}: the original allocating fixed-window walk, kept
     bit-for-bit and cost-for-cost as the reference ("before") path —
     the QCheck suite cross-checks it against Bigint.modpow, and the
     bench before/after pairs measure the precompute layers against
     it.
   - {!powm} and friends: the precompute path.  A {!schedule} hoists
     the exponent's window digits out of the loop (computed once per
     key, cached by lib/cache users), a {!scratch} preallocates every
     buffer an exponentiation needs so the steady state allocates
     nothing, and 384-bit CRT halves (k = 8, the Notary default)
     dispatch to fully unrolled straight-line kernels whose operands
     live in registers.  {!powm_sparse} skips the window table
     entirely for low-weight exponents (e = 65537 pays 16 squarings
     and one multiply instead of a 14-multiply table build), and
     {!Fixed_base} stores per-window digit tables of a repeated base
     so exponentiation degenerates to ~bits/4 multiplies with no
     squarings at all. *)

module B = Bigint

(* exponent-width distribution of every Montgomery exponentiation —
   one observation per modpow, negligible next to the k²-limb kernels
   it precedes *)
let modpow_bits =
  Tangled_obs.Obs.histogram
    ~buckets:[| 64.0; 128.0; 256.0; 384.0; 512.0; 768.0; 1024.0; 2048.0; 4096.0 |]
    "montgomery.modpow_bits"

let limb_bits = B.Internal.limb_bits
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = {
  modulus : B.t;  (* for boundary reductions of operands *)
  mm : int array; (* modulus magnitude, exactly k limbs *)
  k : int;
  m0' : int;      (* -modulus^{-1} mod 2^limb_bits *)
  r2 : int array; (* R² mod m — carries values into Montgomery form *)
  one_m : int array; (* R mod m — Montgomery form of 1 *)
}

(* Both kernels leave a k-limb result plus a high unit such that
   r + high·2^(26k) < 2m; one conditional subtraction reduces fully
   (any final borrow cancels against the high unit). *)
let reduce_final ~mm ~k r high =
  let ge =
    high <> 0
    ||
    let rec go j =
      if j < 0 then true
      else if Array.unsafe_get r j <> Array.unsafe_get mm j then
        Array.unsafe_get r j > Array.unsafe_get mm j
      else go (j - 1)
    in
    go (k - 1)
  in
  if ge then begin
    let borrow = ref 0 in
    for j = 0 to k - 1 do
      let d = r.(j) - mm.(j) - !borrow in
      if d < 0 then begin
        r.(j) <- d + base;
        borrow := 1
      end
      else begin
        r.(j) <- d;
        borrow := 0
      end
    done
  end

(* dst := a·b·R^{-1} mod m by finely-integrated product scanning; both
   inputs k limbs, result k limbs, fully reduced below m.  [mu] is a
   k-limb scratch row; [dst] must not alias [mu] (aliasing a or b is
   harmless — dst.(j) is only written once columns past j stop reading
   a.(j)/b.(j), but callers keep them distinct anyway). *)
let mont_mul_into ~mm ~k ~m0' ~mu ~dst a b =
  let acc = ref 0 in
  (* low columns 0..k-1: the column sum fixes mu_i, which zeroes it *)
  for i = 0 to k - 1 do
    let s = ref !acc in
    for j = 0 to i do
      s := !s + (Array.unsafe_get a j * Array.unsafe_get b (i - j))
    done;
    for j = 0 to i - 1 do
      s := !s + (Array.unsafe_get mu j * Array.unsafe_get mm (i - j))
    done;
    let mi = !s * m0' land limb_mask in
    Array.unsafe_set mu i mi;
    acc := (!s + (mi * Array.unsafe_get mm 0)) lsr limb_bits
  done;
  (* high columns k..2k-1 land directly in the shifted result *)
  for i = k to (2 * k) - 1 do
    let s = ref !acc in
    for j = i - k + 1 to k - 1 do
      s :=
        !s
        + (Array.unsafe_get a j * Array.unsafe_get b (i - j))
        + (Array.unsafe_get mu j * Array.unsafe_get mm (i - j))
    done;
    Array.unsafe_set dst (i - k) (!s land limb_mask);
    acc := !s lsr limb_bits
  done;
  reduce_final ~mm ~k dst !acc

(* dst := a²·R^{-1} mod m — as mont_mul with b = a, but each symmetric
   pair a_j·a_{i-j} (j < i-j) is computed once and doubled; the
   diagonal a_{i/2}² joins even columns undoubled.  The mu·m half has
   no symmetry and stays a full scan. *)
let mont_sqr_into ~mm ~k ~m0' ~mu ~dst a =
  let acc = ref 0 in
  for i = 0 to k - 1 do
    (* (i-1) asr 1 is -1 at i=0, keeping the pair loop empty there *)
    let half = (i - 1) asr 1 in
    let p = ref 0 in
    for j = 0 to half do
      p := !p + (Array.unsafe_get a j * Array.unsafe_get a (i - j))
    done;
    let s = ref (!acc + (!p lsl 1)) in
    if i land 1 = 0 then begin
      let d = Array.unsafe_get a (i asr 1) in
      s := !s + (d * d)
    end;
    for j = 0 to i - 1 do
      s := !s + (Array.unsafe_get mu j * Array.unsafe_get mm (i - j))
    done;
    let mi = !s * m0' land limb_mask in
    Array.unsafe_set mu i mi;
    acc := (!s + (mi * Array.unsafe_get mm 0)) lsr limb_bits
  done;
  for i = k to (2 * k) - 1 do
    let lo = i - k + 1 in
    let half = (i - 1) asr 1 in
    let p = ref 0 in
    for j = lo to half do
      p := !p + (Array.unsafe_get a j * Array.unsafe_get a (i - j))
    done;
    let s = ref (!acc + (!p lsl 1)) in
    if i land 1 = 0 && i asr 1 >= lo then begin
      let d = Array.unsafe_get a (i asr 1) in
      s := !s + (d * d)
    end;
    for j = lo to k - 1 do
      s := !s + (Array.unsafe_get mu j * Array.unsafe_get mm (i - j))
    done;
    Array.unsafe_set dst (i - k) (!s land limb_mask);
    acc := !s lsr limb_bits
  done;
  reduce_final ~mm ~k dst !acc

(* allocating wrappers — the shape the original modpow (and create)
   was written against; kept as the reference-path primitives *)
let mont_mul ~mm ~k ~m0' a b =
  let mu = Array.make k 0 in
  let r = Array.make k 0 in
  mont_mul_into ~mm ~k ~m0' ~mu ~dst:r a b;
  r

let mont_sqr ~mm ~k ~m0' a =
  let mu = Array.make k 0 in
  let r = Array.make k 0 in
  mont_sqr_into ~mm ~k ~m0' ~mu ~dst:r a;
  r

(* --- fully unrolled kernels for k = 8 (384-bit CRT halves) ----------

   A 384-bit RSA key — the Notary corpus default — signs through two
   192-bit moduli of exactly eight 26-bit limbs.  At that width the
   generic loops spend as much on indexing and carried refs as on the
   multiplies, so the two kernels below are written out straight-line
   with every operand in a named local: the compiler keeps them in
   registers and the madd chain is pure int arithmetic.  Measured on
   the scale path this takes a CRT half from ~50 µs to ~29 µs. *)

let mont_mul8 ~mm ~m0' ~dst a b =
  let a0 = Array.unsafe_get a 0 and a1 = Array.unsafe_get a 1
  and a2 = Array.unsafe_get a 2 and a3 = Array.unsafe_get a 3
  and a4 = Array.unsafe_get a 4 and a5 = Array.unsafe_get a 5
  and a6 = Array.unsafe_get a 6 and a7 = Array.unsafe_get a 7 in
  let b0 = Array.unsafe_get b 0 and b1 = Array.unsafe_get b 1
  and b2 = Array.unsafe_get b 2 and b3 = Array.unsafe_get b 3
  and b4 = Array.unsafe_get b 4 and b5 = Array.unsafe_get b 5
  and b6 = Array.unsafe_get b 6 and b7 = Array.unsafe_get b 7 in
  let n0 = Array.unsafe_get mm 0 and n1 = Array.unsafe_get mm 1
  and n2 = Array.unsafe_get mm 2 and n3 = Array.unsafe_get mm 3
  and n4 = Array.unsafe_get mm 4 and n5 = Array.unsafe_get mm 5
  and n6 = Array.unsafe_get mm 6 and n7 = Array.unsafe_get mm 7 in
  let s = a0*b0 in
  let u0 = s * m0' land limb_mask in
  let acc = (s + u0*n0) lsr limb_bits in
  let s = acc + a0*b1 + a1*b0 + u0*n1 in
  let u1 = s * m0' land limb_mask in
  let acc = (s + u1*n0) lsr limb_bits in
  let s = acc + a0*b2 + a1*b1 + a2*b0 + u0*n2 + u1*n1 in
  let u2 = s * m0' land limb_mask in
  let acc = (s + u2*n0) lsr limb_bits in
  let s = acc + a0*b3 + a1*b2 + a2*b1 + a3*b0 + u0*n3 + u1*n2 + u2*n1 in
  let u3 = s * m0' land limb_mask in
  let acc = (s + u3*n0) lsr limb_bits in
  let s = acc + a0*b4 + a1*b3 + a2*b2 + a3*b1 + a4*b0
          + u0*n4 + u1*n3 + u2*n2 + u3*n1 in
  let u4 = s * m0' land limb_mask in
  let acc = (s + u4*n0) lsr limb_bits in
  let s = acc + a0*b5 + a1*b4 + a2*b3 + a3*b2 + a4*b1 + a5*b0
          + u0*n5 + u1*n4 + u2*n3 + u3*n2 + u4*n1 in
  let u5 = s * m0' land limb_mask in
  let acc = (s + u5*n0) lsr limb_bits in
  let s = acc + a0*b6 + a1*b5 + a2*b4 + a3*b3 + a4*b2 + a5*b1 + a6*b0
          + u0*n6 + u1*n5 + u2*n4 + u3*n3 + u4*n2 + u5*n1 in
  let u6 = s * m0' land limb_mask in
  let acc = (s + u6*n0) lsr limb_bits in
  let s = acc + a0*b7 + a1*b6 + a2*b5 + a3*b4 + a4*b3 + a5*b2 + a6*b1 + a7*b0
          + u0*n7 + u1*n6 + u2*n5 + u3*n4 + u4*n3 + u5*n2 + u6*n1 in
  let u7 = s * m0' land limb_mask in
  let acc = (s + u7*n0) lsr limb_bits in
  let s = acc + a1*b7 + a2*b6 + a3*b5 + a4*b4 + a5*b3 + a6*b2 + a7*b1
          + u1*n7 + u2*n6 + u3*n5 + u4*n4 + u5*n3 + u6*n2 + u7*n1 in
  Array.unsafe_set dst 0 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + a2*b7 + a3*b6 + a4*b5 + a5*b4 + a6*b3 + a7*b2
          + u2*n7 + u3*n6 + u4*n5 + u5*n4 + u6*n3 + u7*n2 in
  Array.unsafe_set dst 1 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + a3*b7 + a4*b6 + a5*b5 + a6*b4 + a7*b3
          + u3*n7 + u4*n6 + u5*n5 + u6*n4 + u7*n3 in
  Array.unsafe_set dst 2 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + a4*b7 + a5*b6 + a6*b5 + a7*b4 + u4*n7 + u5*n6 + u6*n5 + u7*n4 in
  Array.unsafe_set dst 3 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + a5*b7 + a6*b6 + a7*b5 + u5*n7 + u6*n6 + u7*n5 in
  Array.unsafe_set dst 4 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + a6*b7 + a7*b6 + u6*n7 + u7*n6 in
  Array.unsafe_set dst 5 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + a7*b7 + u7*n7 in
  Array.unsafe_set dst 6 (s land limb_mask);
  let acc = s lsr limb_bits in
  Array.unsafe_set dst 7 (acc land limb_mask);
  reduce_final ~mm ~k:8 dst (acc lsr limb_bits)

let mont_sqr8 ~mm ~m0' ~dst a =
  let a0 = Array.unsafe_get a 0 and a1 = Array.unsafe_get a 1
  and a2 = Array.unsafe_get a 2 and a3 = Array.unsafe_get a 3
  and a4 = Array.unsafe_get a 4 and a5 = Array.unsafe_get a 5
  and a6 = Array.unsafe_get a 6 and a7 = Array.unsafe_get a 7 in
  let n0 = Array.unsafe_get mm 0 and n1 = Array.unsafe_get mm 1
  and n2 = Array.unsafe_get mm 2 and n3 = Array.unsafe_get mm 3
  and n4 = Array.unsafe_get mm 4 and n5 = Array.unsafe_get mm 5
  and n6 = Array.unsafe_get mm 6 and n7 = Array.unsafe_get mm 7 in
  let s = a0*a0 in
  let u0 = s * m0' land limb_mask in
  let acc = (s + u0*n0) lsr limb_bits in
  let s = acc + ((a0*a1) lsl 1) + u0*n1 in
  let u1 = s * m0' land limb_mask in
  let acc = (s + u1*n0) lsr limb_bits in
  let s = acc + ((a0*a2) lsl 1) + a1*a1 + u0*n2 + u1*n1 in
  let u2 = s * m0' land limb_mask in
  let acc = (s + u2*n0) lsr limb_bits in
  let s = acc + ((a0*a3 + a1*a2) lsl 1) + u0*n3 + u1*n2 + u2*n1 in
  let u3 = s * m0' land limb_mask in
  let acc = (s + u3*n0) lsr limb_bits in
  let s = acc + ((a0*a4 + a1*a3) lsl 1) + a2*a2 + u0*n4 + u1*n3 + u2*n2 + u3*n1 in
  let u4 = s * m0' land limb_mask in
  let acc = (s + u4*n0) lsr limb_bits in
  let s = acc + ((a0*a5 + a1*a4 + a2*a3) lsl 1)
          + u0*n5 + u1*n4 + u2*n3 + u3*n2 + u4*n1 in
  let u5 = s * m0' land limb_mask in
  let acc = (s + u5*n0) lsr limb_bits in
  let s = acc + ((a0*a6 + a1*a5 + a2*a4) lsl 1) + a3*a3
          + u0*n6 + u1*n5 + u2*n4 + u3*n3 + u4*n2 + u5*n1 in
  let u6 = s * m0' land limb_mask in
  let acc = (s + u6*n0) lsr limb_bits in
  let s = acc + ((a0*a7 + a1*a6 + a2*a5 + a3*a4) lsl 1)
          + u0*n7 + u1*n6 + u2*n5 + u3*n4 + u4*n3 + u5*n2 + u6*n1 in
  let u7 = s * m0' land limb_mask in
  let acc = (s + u7*n0) lsr limb_bits in
  let s = acc + ((a1*a7 + a2*a6 + a3*a5) lsl 1) + a4*a4
          + u1*n7 + u2*n6 + u3*n5 + u4*n4 + u5*n3 + u6*n2 + u7*n1 in
  Array.unsafe_set dst 0 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + ((a2*a7 + a3*a6 + a4*a5) lsl 1)
          + u2*n7 + u3*n6 + u4*n5 + u5*n4 + u6*n3 + u7*n2 in
  Array.unsafe_set dst 1 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + ((a3*a7 + a4*a6) lsl 1) + a5*a5
          + u3*n7 + u4*n6 + u5*n5 + u6*n4 + u7*n3 in
  Array.unsafe_set dst 2 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + ((a4*a7 + a5*a6) lsl 1) + u4*n7 + u5*n6 + u6*n5 + u7*n4 in
  Array.unsafe_set dst 3 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + ((a5*a7) lsl 1) + a6*a6 + u5*n7 + u6*n6 + u7*n5 in
  Array.unsafe_set dst 4 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + ((a6*a7) lsl 1) + u6*n7 + u7*n6 in
  Array.unsafe_set dst 5 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + a7*a7 + u7*n7 in
  Array.unsafe_set dst 6 (s land limb_mask);
  let acc = s lsr limb_bits in
  Array.unsafe_set dst 7 (acc land limb_mask);
  reduce_final ~mm ~k:8 dst (acc lsr limb_bits)

let pad k a =
  let r = Array.make k 0 in
  Array.blit a 0 r 0 (Array.length a);
  r

let create m =
  if B.sign m <= 0 then invalid_arg "Montgomery.create: modulus must be positive";
  if B.compare m B.one <= 0 then invalid_arg "Montgomery.create: modulus must exceed 1";
  if not (B.is_odd m) then invalid_arg "Montgomery.create: modulus must be odd";
  let mm = B.Internal.mag m in
  let k = Array.length mm in
  (* limb-wise inverse of m mod 2^26 by Hensel lifting: each iteration
     doubles the number of correct low bits, so five from x=1 cover 26 *)
  let inv = ref 1 in
  for _ = 1 to 5 do
    inv := !inv * (2 - (mm.(0) * !inv)) land limb_mask
  done;
  let m0' = (base - !inv) land limb_mask in
  let r2 =
    pad k (B.Internal.mag (B.erem (B.shift_left B.one (2 * k * limb_bits)) m))
  in
  let one_v = pad k [| 1 |] in
  let one_m = mont_mul ~mm ~k ~m0' r2 one_v in
  { modulus = m; mm; k; m0'; r2; one_m }

let modulus t = t.modulus

let to_mont t x = mont_mul ~mm:t.mm ~k:t.k ~m0':t.m0' x t.r2

let from_mont t x = mont_mul ~mm:t.mm ~k:t.k ~m0':t.m0' x (pad t.k [| 1 |])

let window_bits = 4
let table_size = 1 lsl window_bits

let modpow t b e =
  if B.sign e < 0 then invalid_arg "Montgomery.modpow: negative exponent";
  Tangled_obs.Obs.observe modpow_bits (float_of_int (B.bit_length e));
  if B.is_zero e then B.one (* modulus > 1, so 1 is already reduced *)
  else begin
    let mul = mont_mul ~mm:t.mm ~k:t.k ~m0':t.m0' in
    let sqr = mont_sqr ~mm:t.mm ~k:t.k ~m0':t.m0' in
    let bm = to_mont t (pad t.k (B.Internal.mag (B.erem b t.modulus))) in
    (* fixed-window table: g^0 .. g^15 in Montgomery form *)
    let table = Array.make table_size t.one_m in
    table.(1) <- bm;
    for i = 2 to table_size - 1 do
      table.(i) <- mul table.(i - 1) bm
    done;
    let emag = B.Internal.mag e in
    let elimbs = Array.length emag in
    let digit w =
      let bit = w * window_bits in
      let limb = bit / limb_bits and off = bit mod limb_bits in
      let v = emag.(limb) lsr off in
      let v =
        if off > limb_bits - window_bits && limb + 1 < elimbs then
          v lor (emag.(limb + 1) lsl (limb_bits - off))
        else v
      in
      v land (table_size - 1)
    in
    let nwin = (B.bit_length e + window_bits - 1) / window_bits in
    (* the top window holds the exponent's top bit, so it is nonzero *)
    let acc = ref table.(digit (nwin - 1)) in
    for w = nwin - 2 downto 0 do
      for _ = 1 to window_bits do
        acc := sqr !acc
      done;
      let d = digit w in
      if d <> 0 then acc := mul !acc table.(d)
    done;
    B.Internal.of_mag (from_mont t !acc)
  end

(* --- precomputed exponent schedules ---------------------------------- *)

type schedule = {
  digits : int array; (* 4-bit window digits, most significant first *)
  s_bits : int;
  weight : int;       (* exponent popcount — picks the sparse path *)
  exponent : B.t;     (* kept for the sparse walk's testbit scan *)
}

let schedule e =
  if B.sign e < 0 then invalid_arg "Montgomery.schedule: negative exponent";
  let bits = B.bit_length e in
  let emag = B.Internal.mag e in
  let elimbs = Array.length emag in
  let digit w =
    let bit = w * window_bits in
    let limb = bit / limb_bits and off = bit mod limb_bits in
    let v = emag.(limb) lsr off in
    let v =
      if off > limb_bits - window_bits && limb + 1 < elimbs then
        v lor (emag.(limb + 1) lsl (limb_bits - off))
      else v
    in
    v land (table_size - 1)
  in
  let nwin = (bits + window_bits - 1) / window_bits in
  let weight = ref 0 in
  for i = 0 to bits - 1 do
    if B.testbit e i then incr weight
  done;
  {
    digits = Array.init nwin (fun i -> digit (nwin - 1 - i));
    s_bits = bits;
    weight = !weight;
    exponent = e;
  }

let schedule_bits s = s.s_bits

(* --- reusable per-width scratch -------------------------------------- *)

type scratch = {
  sk : int array;            (* width tag: mu row doubles as the check *)
  t0 : int array;
  t1 : int array;
  bm : int array;            (* the base in Montgomery form *)
  table : int array array;   (* 16 × k window table *)
  one_v : int array;         (* padded 1, for the final from_mont *)
}

let scratch t =
  let k = t.k in
  {
    sk = Array.make k 0;
    t0 = Array.make k 0;
    t1 = Array.make k 0;
    bm = Array.make k 0;
    table = Array.init table_size (fun _ -> Array.make k 0);
    one_v = pad k [| 1 |];
  }

let check_width t sc =
  if Array.length sc.sk <> t.k then
    invalid_arg "Montgomery: scratch width does not match context"

(* the two kernel shapes behind one pair of closures: k = 8 takes the
   straight-line unrolled code path, everything else the generic loops *)
let kernels t sc =
  if t.k = 8 then
    ( (fun ~dst a b -> mont_mul8 ~mm:t.mm ~m0':t.m0' ~dst a b),
      fun ~dst a -> mont_sqr8 ~mm:t.mm ~m0':t.m0' ~dst a )
  else
    ( (fun ~dst a b -> mont_mul_into ~mm:t.mm ~k:t.k ~m0':t.m0' ~mu:sc.sk ~dst a b),
      fun ~dst a -> mont_sqr_into ~mm:t.mm ~k:t.k ~m0':t.m0' ~mu:sc.sk ~dst a )

let load_base t sc (mul : dst:int array -> int array -> int array -> unit) b =
  let reduced = B.erem b t.modulus in
  let mag = B.Internal.mag reduced in
  let len = Array.length mag in
  Array.blit mag 0 sc.t0 0 len;
  Array.fill sc.t0 len (t.k - len) 0;
  mul ~dst:sc.bm sc.t0 t.r2

let powm t sc sched b =
  check_width t sc;
  Tangled_obs.Obs.observe modpow_bits (float_of_int sched.s_bits);
  if sched.s_bits = 0 then B.one
  else begin
    let mul, sqr = kernels t sc in
    load_base t sc mul b;
    Array.blit t.one_m 0 sc.table.(0) 0 t.k;
    Array.blit sc.bm 0 sc.table.(1) 0 t.k;
    for i = 2 to table_size - 1 do
      mul ~dst:sc.table.(i) sc.table.(i - 1) sc.bm
    done;
    let digits = sched.digits in
    Array.blit sc.table.(digits.(0)) 0 sc.t0 0 t.k;
    let cur = ref sc.t0 and other = ref sc.t1 in
    let swap () = let x = !cur in cur := !other; other := x in
    for w = 1 to Array.length digits - 1 do
      for _ = 1 to window_bits do
        sqr ~dst:!other !cur;
        swap ()
      done;
      let d = digits.(w) in
      if d <> 0 then begin
        mul ~dst:!other !cur sc.table.(d);
        swap ()
      end
    done;
    mul ~dst:!other !cur sc.one_v;
    B.Internal.of_mag (Array.copy !other)
  end

(* plain left-to-right square-and-multiply: (bits-1) squarings and
   (weight-1) multiplies, no table.  For e = 65537 that is 16 + 1
   kernel calls against the windowed path's 16 + 14 + 4 — the table
   build dominates short or low-weight exponents. *)
let powm_sparse t sc sched b =
  check_width t sc;
  Tangled_obs.Obs.observe modpow_bits (float_of_int sched.s_bits);
  if sched.s_bits = 0 then B.one
  else begin
    let mul, sqr = kernels t sc in
    load_base t sc mul b;
    let e = sched.exponent in
    Array.blit sc.bm 0 sc.t0 0 t.k;
    let cur = ref sc.t0 and other = ref sc.t1 in
    let swap () = let x = !cur in cur := !other; other := x in
    for i = sched.s_bits - 2 downto 0 do
      sqr ~dst:!other !cur;
      swap ();
      if B.testbit e i then begin
        mul ~dst:!other !cur sc.bm;
        swap ()
      end
    done;
    mul ~dst:!other !cur sc.one_v;
    B.Internal.of_mag (Array.copy !other)
  end

(* a sparse walk beats the windowed one when the multiplies it saves
   (the 14-entry table build plus ~bits/4 window multiplies, against
   weight-1 of its own) outweigh nothing — both do bits-ish squarings *)
let sparse_profitable sched =
  sched.weight - 1 < (table_size - 2) + (sched.s_bits / window_bits)

let powm_auto t sc sched b =
  if sparse_profitable sched then powm_sparse t sc sched b
  else powm t sc sched b

(* --- fixed-base comb -------------------------------------------------- *)

module Fixed_base = struct
  (* For a base that repeats across many exponentiations, precompute
     tabs.(w).(d) = b^(d·16^w) in Montgomery form for every window
     position w and digit d.  An exponentiation is then a product of
     one table entry per nonzero window digit — ~bits/4 multiplies
     and no squarings at all (the squarings were hoisted into the
     table).  The table costs ~bits squarings plus 14·nwin multiplies
     to build, so it pays for itself after a handful of calls. *)

  type fb = {
    ctx : t;
    tabs : int array array array; (* nwin × 16 × k *)
    fb_bits : int;
  }

  let precompute ctx b ~bits =
    if bits < 1 then invalid_arg "Fixed_base.precompute: bits must be >= 1";
    let { mm; k; m0'; _ } = ctx in
    let mul = mont_mul ~mm ~k ~m0' in
    let bm = mul (pad k (B.Internal.mag (B.erem b ctx.modulus))) ctx.r2 in
    let nwin = (bits + window_bits - 1) / window_bits in
    let tabs = Array.init nwin (fun _ -> Array.make table_size ctx.one_m) in
    let cur = ref bm in
    for w = 0 to nwin - 1 do
      tabs.(w).(1) <- !cur;
      for d = 2 to table_size - 1 do
        tabs.(w).(d) <- mul tabs.(w).(d - 1) !cur
      done;
      (* b^(16^(w+1)) = (b^(8·16^w))² *)
      cur := mul tabs.(w).(8) tabs.(w).(8)
    done;
    { ctx; tabs; fb_bits = bits }

  let bits fb = fb.fb_bits

  let powm fb sched =
    let t = fb.ctx in
    if sched.s_bits > fb.fb_bits then
      invalid_arg "Fixed_base.powm: exponent wider than the precomputed table";
    Tangled_obs.Obs.observe modpow_bits (float_of_int sched.s_bits);
    if sched.s_bits = 0 then B.one
    else begin
      let mu = Array.make t.k 0 in
      let t0 = Array.make t.k 0 in
      let t1 = Array.make t.k 0 in
      let mul ~dst a b = mont_mul_into ~mm:t.mm ~k:t.k ~m0':t.m0' ~mu ~dst a b in
      let digits = sched.digits in
      let nd = Array.length digits in
      Array.blit t.one_m 0 t0 0 t.k;
      let cur = ref t0 and other = ref t1 in
      for w = 0 to nd - 1 do
        (* digits are most-significant-first; window w of the comb is
           the exponent's w-th least-significant digit *)
        let d = digits.(nd - 1 - w) in
        if d <> 0 then begin
          mul ~dst:!other !cur fb.tabs.(w).(d);
          let x = !cur in cur := !other; other := x
        end
      done;
      mul ~dst:!other !cur (pad t.k [| 1 |]);
      B.Internal.of_mag (Array.copy !other)
    end
end
