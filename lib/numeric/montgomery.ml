(* Montgomery-form modular arithmetic on Bigint's 26-bit limbs.

   The legacy Bigint.modpow pays a full Knuth division per square or
   multiply.  A Montgomery context trades that for division-free
   product-scanning (FIPS) reductions: each output column accumulates
   all of its partial products — a_j·b_{i-j} and mu_j·m_{i-j} — into a
   single native-int accumulator with one multiply-add per product,
   then spends one shift and one store for the whole column.  The
   quotient digit mu_i falls out of the column sum as it completes, so
   multiplication and reduction fuse into one pass with no
   intermediate 2k-limb product.

   Word size is the bignum's 26-bit limb: a partial product is below
   2^52, so a column of 2k of them plus the inter-column carry stays
   below 2^(52 + log2 2k) — for any modulus this simulation can reach
   (k ≤ 500 limbs, i.e. 13 000 bits) that is inside OCaml's 63-bit
   native int, and the inner loops are pure int arithmetic.

   Squaring gets a dedicated kernel: the operand half of each column
   is symmetric (a_j·a_{i-j} = a_{i-j}·a_j), so it sums each pair once
   and doubles, cutting that half's multiplies from k² to ~k²/2.
   Fixed-window exponentiation is ~80 % squarings, so this is the
   single biggest lever on modpow latency. *)

module B = Bigint

(* exponent-width distribution of every Montgomery exponentiation —
   one observation per modpow, negligible next to the k²-limb kernels
   it precedes *)
let modpow_bits =
  Tangled_obs.Obs.histogram
    ~buckets:[| 64.0; 128.0; 256.0; 384.0; 512.0; 768.0; 1024.0; 2048.0; 4096.0 |]
    "montgomery.modpow_bits"

let limb_bits = B.Internal.limb_bits
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = {
  modulus : B.t;  (* for boundary reductions of operands *)
  mm : int array; (* modulus magnitude, exactly k limbs *)
  k : int;
  m0' : int;      (* -modulus^{-1} mod 2^limb_bits *)
  r2 : int array; (* R² mod m — carries values into Montgomery form *)
  one_m : int array; (* R mod m — Montgomery form of 1 *)
}

(* Both kernels leave a k-limb result plus a high unit such that
   r + high·2^(26k) < 2m; one conditional subtraction reduces fully
   (any final borrow cancels against the high unit). *)
let reduce_final ~mm ~k r high =
  let ge =
    high <> 0
    ||
    let rec go j =
      if j < 0 then true
      else if Array.unsafe_get r j <> Array.unsafe_get mm j then
        Array.unsafe_get r j > Array.unsafe_get mm j
      else go (j - 1)
    in
    go (k - 1)
  in
  if ge then begin
    let borrow = ref 0 in
    for j = 0 to k - 1 do
      let d = r.(j) - mm.(j) - !borrow in
      if d < 0 then begin
        r.(j) <- d + base;
        borrow := 1
      end
      else begin
        r.(j) <- d;
        borrow := 0
      end
    done
  end;
  r

(* r := a·b·R^{-1} mod m by finely-integrated product scanning; both
   inputs k limbs, result k limbs, fully reduced below m. *)
let mont_mul ~mm ~k ~m0' a b =
  let mu = Array.make k 0 in
  let r = Array.make k 0 in
  let acc = ref 0 in
  (* low columns 0..k-1: the column sum fixes mu_i, which zeroes it *)
  for i = 0 to k - 1 do
    let s = ref !acc in
    for j = 0 to i do
      s := !s + (Array.unsafe_get a j * Array.unsafe_get b (i - j))
    done;
    for j = 0 to i - 1 do
      s := !s + (Array.unsafe_get mu j * Array.unsafe_get mm (i - j))
    done;
    let mi = !s * m0' land limb_mask in
    Array.unsafe_set mu i mi;
    acc := (!s + (mi * Array.unsafe_get mm 0)) lsr limb_bits
  done;
  (* high columns k..2k-1 land directly in the shifted result *)
  for i = k to (2 * k) - 1 do
    let s = ref !acc in
    for j = i - k + 1 to k - 1 do
      s :=
        !s
        + (Array.unsafe_get a j * Array.unsafe_get b (i - j))
        + (Array.unsafe_get mu j * Array.unsafe_get mm (i - j))
    done;
    Array.unsafe_set r (i - k) (!s land limb_mask);
    acc := !s lsr limb_bits
  done;
  reduce_final ~mm ~k r !acc

(* r := a²·R^{-1} mod m — as mont_mul with b = a, but each symmetric
   pair a_j·a_{i-j} (j < i-j) is computed once and doubled; the
   diagonal a_{i/2}² joins even columns undoubled.  The mu·m half has
   no symmetry and stays a full scan. *)
let mont_sqr ~mm ~k ~m0' a =
  let mu = Array.make k 0 in
  let r = Array.make k 0 in
  let acc = ref 0 in
  for i = 0 to k - 1 do
    (* (i-1) asr 1 is -1 at i=0, keeping the pair loop empty there *)
    let half = (i - 1) asr 1 in
    let p = ref 0 in
    for j = 0 to half do
      p := !p + (Array.unsafe_get a j * Array.unsafe_get a (i - j))
    done;
    let s = ref (!acc + (!p lsl 1)) in
    if i land 1 = 0 then begin
      let d = Array.unsafe_get a (i asr 1) in
      s := !s + (d * d)
    end;
    for j = 0 to i - 1 do
      s := !s + (Array.unsafe_get mu j * Array.unsafe_get mm (i - j))
    done;
    let mi = !s * m0' land limb_mask in
    Array.unsafe_set mu i mi;
    acc := (!s + (mi * Array.unsafe_get mm 0)) lsr limb_bits
  done;
  for i = k to (2 * k) - 1 do
    let lo = i - k + 1 in
    let half = (i - 1) asr 1 in
    let p = ref 0 in
    for j = lo to half do
      p := !p + (Array.unsafe_get a j * Array.unsafe_get a (i - j))
    done;
    let s = ref (!acc + (!p lsl 1)) in
    if i land 1 = 0 && i asr 1 >= lo then begin
      let d = Array.unsafe_get a (i asr 1) in
      s := !s + (d * d)
    end;
    for j = lo to k - 1 do
      s := !s + (Array.unsafe_get mu j * Array.unsafe_get mm (i - j))
    done;
    Array.unsafe_set r (i - k) (!s land limb_mask);
    acc := !s lsr limb_bits
  done;
  reduce_final ~mm ~k r !acc

let pad k a =
  let r = Array.make k 0 in
  Array.blit a 0 r 0 (Array.length a);
  r

let create m =
  if B.sign m <= 0 then invalid_arg "Montgomery.create: modulus must be positive";
  if B.compare m B.one <= 0 then invalid_arg "Montgomery.create: modulus must exceed 1";
  if not (B.is_odd m) then invalid_arg "Montgomery.create: modulus must be odd";
  let mm = B.Internal.mag m in
  let k = Array.length mm in
  (* limb-wise inverse of m mod 2^26 by Hensel lifting: each iteration
     doubles the number of correct low bits, so five from x=1 cover 26 *)
  let inv = ref 1 in
  for _ = 1 to 5 do
    inv := !inv * (2 - (mm.(0) * !inv)) land limb_mask
  done;
  let m0' = (base - !inv) land limb_mask in
  let r2 =
    pad k (B.Internal.mag (B.erem (B.shift_left B.one (2 * k * limb_bits)) m))
  in
  let one_v = pad k [| 1 |] in
  let one_m = mont_mul ~mm ~k ~m0' r2 one_v in
  { modulus = m; mm; k; m0'; r2; one_m }

let modulus t = t.modulus

let to_mont t x = mont_mul ~mm:t.mm ~k:t.k ~m0':t.m0' x t.r2

let from_mont t x = mont_mul ~mm:t.mm ~k:t.k ~m0':t.m0' x (pad t.k [| 1 |])

let window_bits = 4
let table_size = 1 lsl window_bits

let modpow t b e =
  if B.sign e < 0 then invalid_arg "Montgomery.modpow: negative exponent";
  Tangled_obs.Obs.observe modpow_bits (float_of_int (B.bit_length e));
  if B.is_zero e then B.one (* modulus > 1, so 1 is already reduced *)
  else begin
    let mul = mont_mul ~mm:t.mm ~k:t.k ~m0':t.m0' in
    let sqr = mont_sqr ~mm:t.mm ~k:t.k ~m0':t.m0' in
    let bm = to_mont t (pad t.k (B.Internal.mag (B.erem b t.modulus))) in
    (* fixed-window table: g^0 .. g^15 in Montgomery form *)
    let table = Array.make table_size t.one_m in
    table.(1) <- bm;
    for i = 2 to table_size - 1 do
      table.(i) <- mul table.(i - 1) bm
    done;
    let emag = B.Internal.mag e in
    let elimbs = Array.length emag in
    let digit w =
      let bit = w * window_bits in
      let limb = bit / limb_bits and off = bit mod limb_bits in
      let v = emag.(limb) lsr off in
      let v =
        if off > limb_bits - window_bits && limb + 1 < elimbs then
          v lor (emag.(limb + 1) lsl (limb_bits - off))
        else v
      in
      v land (table_size - 1)
    in
    let nwin = (B.bit_length e + window_bits - 1) / window_bits in
    (* the top window holds the exponent's top bit, so it is nonzero *)
    let acc = ref table.(digit (nwin - 1)) in
    for w = nwin - 2 downto 0 do
      for _ = 1 to window_bits do
        acc := sqr !acc
      done;
      let d = digit w in
      if d <> 0 then acc := mul !acc table.(d)
    done;
    B.Internal.of_mag (from_mont t !acc)
  end
