(* Montgomery-form modular arithmetic on Bigint's 26-bit limbs.

   The legacy Bigint.modpow pays a full Knuth division per square or
   multiply.  A Montgomery context trades that for division-free
   product-scanning (FIPS) reductions: each output column accumulates
   all of its partial products — a_j·b_{i-j} and mu_j·m_{i-j} — into a
   single native-int accumulator with one multiply-add per product,
   then spends one shift and one store for the whole column.  The
   quotient digit mu_i falls out of the column sum as it completes, so
   multiplication and reduction fuse into one pass with no
   intermediate 2k-limb product.

   Word size is the bignum's 26-bit limb: a partial product is below
   2^52, so a column of 2k of them plus the inter-column carry stays
   below 2^(52 + log2 2k) — for any modulus this simulation can reach
   (k ≤ 500 limbs, i.e. 13 000 bits) that is inside OCaml's 63-bit
   native int, and the inner loops are pure int arithmetic.

   Squaring gets a dedicated kernel: the operand half of each column
   is symmetric (a_j·a_{i-j} = a_{i-j}·a_j), so it sums each pair once
   and doubles, cutting that half's multiplies from k² to ~k²/2.
   Fixed-window exponentiation is ~80 % squarings, so this is the
   single biggest lever on modpow latency.

   Two layers sit on the kernels:

   - {!modpow}: the original allocating fixed-window walk, kept
     bit-for-bit and cost-for-cost as the reference ("before") path —
     the QCheck suite cross-checks it against Bigint.modpow, and the
     bench before/after pairs measure the precompute layers against
     it.
   - {!powm} and friends: the precompute path.  A {!schedule} hoists
     the exponent's window digits out of the loop (computed once per
     key, cached by lib/cache users), a {!scratch} preallocates every
     buffer an exponentiation needs so the steady state allocates
     nothing, and 384-bit CRT halves (k = 8, the Notary default)
     dispatch to fully unrolled straight-line kernels whose operands
     live in registers.  {!powm_sparse} skips the window table
     entirely for low-weight exponents (e = 65537 pays 16 squarings
     and one multiply instead of a 14-multiply table build), and
     {!Fixed_base} stores per-window digit tables of a repeated base
     so exponentiation degenerates to ~bits/4 multiplies with no
     squarings at all. *)

module B = Bigint

(* exponent-width distribution of every Montgomery exponentiation —
   one observation per modpow, negligible next to the k²-limb kernels
   it precedes *)
let modpow_bits =
  Tangled_obs.Obs.histogram
    ~buckets:[| 64.0; 128.0; 256.0; 384.0; 512.0; 768.0; 1024.0; 2048.0; 4096.0 |]
    "montgomery.modpow_bits"

let limb_bits = B.Internal.limb_bits
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = {
  modulus : B.t;  (* for boundary reductions of operands *)
  mm : int array; (* modulus magnitude, exactly k limbs *)
  k : int;
  m0' : int;      (* -modulus^{-1} mod 2^limb_bits *)
  r2 : int array; (* R² mod m — carries values into Montgomery form *)
  one_m : int array; (* R mod m — Montgomery form of 1 *)
}

(* r[0..j] >= n[0..j] limb-wise?  Top-level (not a local closure): the
   native compiler has no flambda here, and a closure inside a kernel
   allocates on every single modular product. *)
let rec ge_from r n j =
  if j < 0 then true
  else begin
    let rj = Array.unsafe_get r j and nj = Array.unsafe_get n j in
    if rj <> nj then rj > nj else ge_from r n (j - 1)
  end

(* Both kernels leave a k-limb result plus a high unit such that
   r + high·2^(26k) < 2m; one conditional subtraction reduces fully
   (any final borrow cancels against the high unit). *)
let reduce_final ~mm ~k r high =
  let ge = high <> 0 || ge_from r mm (k - 1) in
  if ge then begin
    let borrow = ref 0 in
    for j = 0 to k - 1 do
      let d = r.(j) - mm.(j) - !borrow in
      if d < 0 then begin
        r.(j) <- d + base;
        borrow := 1
      end
      else begin
        r.(j) <- d;
        borrow := 0
      end
    done
  end

(* dst := a·b·R^{-1} mod m by finely-integrated product scanning; both
   inputs k limbs, result k limbs, fully reduced below m.  [mu] is a
   k-limb scratch row; [dst] must not alias [mu] (aliasing a or b is
   harmless — dst.(j) is only written once columns past j stop reading
   a.(j)/b.(j), but callers keep them distinct anyway). *)
let mont_mul_into ~mm ~k ~m0' ~mu ~dst a b =
  let acc = ref 0 in
  (* low columns 0..k-1: the column sum fixes mu_i, which zeroes it *)
  for i = 0 to k - 1 do
    let s = ref !acc in
    for j = 0 to i do
      s := !s + (Array.unsafe_get a j * Array.unsafe_get b (i - j))
    done;
    for j = 0 to i - 1 do
      s := !s + (Array.unsafe_get mu j * Array.unsafe_get mm (i - j))
    done;
    let mi = !s * m0' land limb_mask in
    Array.unsafe_set mu i mi;
    acc := (!s + (mi * Array.unsafe_get mm 0)) lsr limb_bits
  done;
  (* high columns k..2k-1 land directly in the shifted result *)
  for i = k to (2 * k) - 1 do
    let s = ref !acc in
    for j = i - k + 1 to k - 1 do
      s :=
        !s
        + (Array.unsafe_get a j * Array.unsafe_get b (i - j))
        + (Array.unsafe_get mu j * Array.unsafe_get mm (i - j))
    done;
    Array.unsafe_set dst (i - k) (!s land limb_mask);
    acc := !s lsr limb_bits
  done;
  reduce_final ~mm ~k dst !acc

(* dst := a²·R^{-1} mod m — as mont_mul with b = a, but each symmetric
   pair a_j·a_{i-j} (j < i-j) is computed once and doubled; the
   diagonal a_{i/2}² joins even columns undoubled.  The mu·m half has
   no symmetry and stays a full scan. *)
let mont_sqr_into ~mm ~k ~m0' ~mu ~dst a =
  let acc = ref 0 in
  for i = 0 to k - 1 do
    (* (i-1) asr 1 is -1 at i=0, keeping the pair loop empty there *)
    let half = (i - 1) asr 1 in
    let p = ref 0 in
    for j = 0 to half do
      p := !p + (Array.unsafe_get a j * Array.unsafe_get a (i - j))
    done;
    let s = ref (!acc + (!p lsl 1)) in
    if i land 1 = 0 then begin
      let d = Array.unsafe_get a (i asr 1) in
      s := !s + (d * d)
    end;
    for j = 0 to i - 1 do
      s := !s + (Array.unsafe_get mu j * Array.unsafe_get mm (i - j))
    done;
    let mi = !s * m0' land limb_mask in
    Array.unsafe_set mu i mi;
    acc := (!s + (mi * Array.unsafe_get mm 0)) lsr limb_bits
  done;
  for i = k to (2 * k) - 1 do
    let lo = i - k + 1 in
    let half = (i - 1) asr 1 in
    let p = ref 0 in
    for j = lo to half do
      p := !p + (Array.unsafe_get a j * Array.unsafe_get a (i - j))
    done;
    let s = ref (!acc + (!p lsl 1)) in
    if i land 1 = 0 && i asr 1 >= lo then begin
      let d = Array.unsafe_get a (i asr 1) in
      s := !s + (d * d)
    end;
    for j = lo to k - 1 do
      s := !s + (Array.unsafe_get mu j * Array.unsafe_get mm (i - j))
    done;
    Array.unsafe_set dst (i - k) (!s land limb_mask);
    acc := !s lsr limb_bits
  done;
  reduce_final ~mm ~k dst !acc

(* allocating wrappers — the shape the original modpow (and create)
   was written against; kept as the reference-path primitives *)
let mont_mul ~mm ~k ~m0' a b =
  let mu = Array.make k 0 in
  let r = Array.make k 0 in
  mont_mul_into ~mm ~k ~m0' ~mu ~dst:r a b;
  r

let mont_sqr ~mm ~k ~m0' a =
  let mu = Array.make k 0 in
  let r = Array.make k 0 in
  mont_sqr_into ~mm ~k ~m0' ~mu ~dst:r a;
  r

(* --- fully unrolled kernels for k = 8 (384-bit CRT halves) ----------

   A 384-bit RSA key — the Notary corpus default — signs through two
   192-bit moduli of exactly eight 26-bit limbs.  At that width the
   generic loops spend as much on indexing and carried refs as on the
   multiplies, so the two kernels below are written out straight-line
   with every operand in a named local: the compiler keeps them in
   registers and the madd chain is pure int arithmetic.  Measured on
   the scale path this takes a CRT half from ~50 µs to ~29 µs. *)

let mont_mul8 ~mm ~m0' ~dst a b =
  let a0 = Array.unsafe_get a 0 and a1 = Array.unsafe_get a 1
  and a2 = Array.unsafe_get a 2 and a3 = Array.unsafe_get a 3
  and a4 = Array.unsafe_get a 4 and a5 = Array.unsafe_get a 5
  and a6 = Array.unsafe_get a 6 and a7 = Array.unsafe_get a 7 in
  let b0 = Array.unsafe_get b 0 and b1 = Array.unsafe_get b 1
  and b2 = Array.unsafe_get b 2 and b3 = Array.unsafe_get b 3
  and b4 = Array.unsafe_get b 4 and b5 = Array.unsafe_get b 5
  and b6 = Array.unsafe_get b 6 and b7 = Array.unsafe_get b 7 in
  let n0 = Array.unsafe_get mm 0 and n1 = Array.unsafe_get mm 1
  and n2 = Array.unsafe_get mm 2 and n3 = Array.unsafe_get mm 3
  and n4 = Array.unsafe_get mm 4 and n5 = Array.unsafe_get mm 5
  and n6 = Array.unsafe_get mm 6 and n7 = Array.unsafe_get mm 7 in
  let s = a0*b0 in
  let u0 = s * m0' land limb_mask in
  let acc = (s + u0*n0) lsr limb_bits in
  let s = acc + a0*b1 + a1*b0 + u0*n1 in
  let u1 = s * m0' land limb_mask in
  let acc = (s + u1*n0) lsr limb_bits in
  let s = acc + a0*b2 + a1*b1 + a2*b0 + u0*n2 + u1*n1 in
  let u2 = s * m0' land limb_mask in
  let acc = (s + u2*n0) lsr limb_bits in
  let s = acc + a0*b3 + a1*b2 + a2*b1 + a3*b0 + u0*n3 + u1*n2 + u2*n1 in
  let u3 = s * m0' land limb_mask in
  let acc = (s + u3*n0) lsr limb_bits in
  let s = acc + a0*b4 + a1*b3 + a2*b2 + a3*b1 + a4*b0
          + u0*n4 + u1*n3 + u2*n2 + u3*n1 in
  let u4 = s * m0' land limb_mask in
  let acc = (s + u4*n0) lsr limb_bits in
  let s = acc + a0*b5 + a1*b4 + a2*b3 + a3*b2 + a4*b1 + a5*b0
          + u0*n5 + u1*n4 + u2*n3 + u3*n2 + u4*n1 in
  let u5 = s * m0' land limb_mask in
  let acc = (s + u5*n0) lsr limb_bits in
  let s = acc + a0*b6 + a1*b5 + a2*b4 + a3*b3 + a4*b2 + a5*b1 + a6*b0
          + u0*n6 + u1*n5 + u2*n4 + u3*n3 + u4*n2 + u5*n1 in
  let u6 = s * m0' land limb_mask in
  let acc = (s + u6*n0) lsr limb_bits in
  let s = acc + a0*b7 + a1*b6 + a2*b5 + a3*b4 + a4*b3 + a5*b2 + a6*b1 + a7*b0
          + u0*n7 + u1*n6 + u2*n5 + u3*n4 + u4*n3 + u5*n2 + u6*n1 in
  let u7 = s * m0' land limb_mask in
  let acc = (s + u7*n0) lsr limb_bits in
  let s = acc + a1*b7 + a2*b6 + a3*b5 + a4*b4 + a5*b3 + a6*b2 + a7*b1
          + u1*n7 + u2*n6 + u3*n5 + u4*n4 + u5*n3 + u6*n2 + u7*n1 in
  Array.unsafe_set dst 0 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + a2*b7 + a3*b6 + a4*b5 + a5*b4 + a6*b3 + a7*b2
          + u2*n7 + u3*n6 + u4*n5 + u5*n4 + u6*n3 + u7*n2 in
  Array.unsafe_set dst 1 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + a3*b7 + a4*b6 + a5*b5 + a6*b4 + a7*b3
          + u3*n7 + u4*n6 + u5*n5 + u6*n4 + u7*n3 in
  Array.unsafe_set dst 2 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + a4*b7 + a5*b6 + a6*b5 + a7*b4 + u4*n7 + u5*n6 + u6*n5 + u7*n4 in
  Array.unsafe_set dst 3 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + a5*b7 + a6*b6 + a7*b5 + u5*n7 + u6*n6 + u7*n5 in
  Array.unsafe_set dst 4 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + a6*b7 + a7*b6 + u6*n7 + u7*n6 in
  Array.unsafe_set dst 5 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + a7*b7 + u7*n7 in
  Array.unsafe_set dst 6 (s land limb_mask);
  let acc = s lsr limb_bits in
  Array.unsafe_set dst 7 (acc land limb_mask);
  reduce_final ~mm ~k:8 dst (acc lsr limb_bits)

let mont_sqr8 ~mm ~m0' ~dst a =
  let a0 = Array.unsafe_get a 0 and a1 = Array.unsafe_get a 1
  and a2 = Array.unsafe_get a 2 and a3 = Array.unsafe_get a 3
  and a4 = Array.unsafe_get a 4 and a5 = Array.unsafe_get a 5
  and a6 = Array.unsafe_get a 6 and a7 = Array.unsafe_get a 7 in
  let n0 = Array.unsafe_get mm 0 and n1 = Array.unsafe_get mm 1
  and n2 = Array.unsafe_get mm 2 and n3 = Array.unsafe_get mm 3
  and n4 = Array.unsafe_get mm 4 and n5 = Array.unsafe_get mm 5
  and n6 = Array.unsafe_get mm 6 and n7 = Array.unsafe_get mm 7 in
  let s = a0*a0 in
  let u0 = s * m0' land limb_mask in
  let acc = (s + u0*n0) lsr limb_bits in
  let s = acc + ((a0*a1) lsl 1) + u0*n1 in
  let u1 = s * m0' land limb_mask in
  let acc = (s + u1*n0) lsr limb_bits in
  let s = acc + ((a0*a2) lsl 1) + a1*a1 + u0*n2 + u1*n1 in
  let u2 = s * m0' land limb_mask in
  let acc = (s + u2*n0) lsr limb_bits in
  let s = acc + ((a0*a3 + a1*a2) lsl 1) + u0*n3 + u1*n2 + u2*n1 in
  let u3 = s * m0' land limb_mask in
  let acc = (s + u3*n0) lsr limb_bits in
  let s = acc + ((a0*a4 + a1*a3) lsl 1) + a2*a2 + u0*n4 + u1*n3 + u2*n2 + u3*n1 in
  let u4 = s * m0' land limb_mask in
  let acc = (s + u4*n0) lsr limb_bits in
  let s = acc + ((a0*a5 + a1*a4 + a2*a3) lsl 1)
          + u0*n5 + u1*n4 + u2*n3 + u3*n2 + u4*n1 in
  let u5 = s * m0' land limb_mask in
  let acc = (s + u5*n0) lsr limb_bits in
  let s = acc + ((a0*a6 + a1*a5 + a2*a4) lsl 1) + a3*a3
          + u0*n6 + u1*n5 + u2*n4 + u3*n3 + u4*n2 + u5*n1 in
  let u6 = s * m0' land limb_mask in
  let acc = (s + u6*n0) lsr limb_bits in
  let s = acc + ((a0*a7 + a1*a6 + a2*a5 + a3*a4) lsl 1)
          + u0*n7 + u1*n6 + u2*n5 + u3*n4 + u4*n3 + u5*n2 + u6*n1 in
  let u7 = s * m0' land limb_mask in
  let acc = (s + u7*n0) lsr limb_bits in
  let s = acc + ((a1*a7 + a2*a6 + a3*a5) lsl 1) + a4*a4
          + u1*n7 + u2*n6 + u3*n5 + u4*n4 + u5*n3 + u6*n2 + u7*n1 in
  Array.unsafe_set dst 0 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + ((a2*a7 + a3*a6 + a4*a5) lsl 1)
          + u2*n7 + u3*n6 + u4*n5 + u5*n4 + u6*n3 + u7*n2 in
  Array.unsafe_set dst 1 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + ((a3*a7 + a4*a6) lsl 1) + a5*a5
          + u3*n7 + u4*n6 + u5*n5 + u6*n4 + u7*n3 in
  Array.unsafe_set dst 2 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + ((a4*a7 + a5*a6) lsl 1) + u4*n7 + u5*n6 + u6*n5 + u7*n4 in
  Array.unsafe_set dst 3 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + ((a5*a7) lsl 1) + a6*a6 + u5*n7 + u6*n6 + u7*n5 in
  Array.unsafe_set dst 4 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + ((a6*a7) lsl 1) + u6*n7 + u7*n6 in
  Array.unsafe_set dst 5 (s land limb_mask);
  let acc = s lsr limb_bits in
  let s = acc + a7*a7 + u7*n7 in
  Array.unsafe_set dst 6 (s land limb_mask);
  let acc = s lsr limb_bits in
  Array.unsafe_set dst 7 (acc land limb_mask);
  reduce_final ~mm ~k:8 dst (acc lsr limb_bits)

let pad k a =
  let r = Array.make k 0 in
  Array.blit a 0 r 0 (Array.length a);
  r

let create m =
  if B.sign m <= 0 then invalid_arg "Montgomery.create: modulus must be positive";
  if B.compare m B.one <= 0 then invalid_arg "Montgomery.create: modulus must exceed 1";
  if not (B.is_odd m) then invalid_arg "Montgomery.create: modulus must be odd";
  let mm = B.Internal.mag m in
  let k = Array.length mm in
  (* limb-wise inverse of m mod 2^26 by Hensel lifting: each iteration
     doubles the number of correct low bits, so five from x=1 cover 26 *)
  let inv = ref 1 in
  for _ = 1 to 5 do
    inv := !inv * (2 - (mm.(0) * !inv)) land limb_mask
  done;
  let m0' = (base - !inv) land limb_mask in
  let r2 =
    pad k (B.Internal.mag (B.erem (B.shift_left B.one (2 * k * limb_bits)) m))
  in
  let one_v = pad k [| 1 |] in
  let one_m = mont_mul ~mm ~k ~m0' r2 one_v in
  { modulus = m; mm; k; m0'; r2; one_m }

let modulus t = t.modulus

let to_mont t x = mont_mul ~mm:t.mm ~k:t.k ~m0':t.m0' x t.r2

let from_mont t x = mont_mul ~mm:t.mm ~k:t.k ~m0':t.m0' x (pad t.k [| 1 |])

let window_bits = 4
let table_size = 1 lsl window_bits

let modpow t b e =
  if B.sign e < 0 then invalid_arg "Montgomery.modpow: negative exponent";
  Tangled_obs.Obs.observe modpow_bits (float_of_int (B.bit_length e));
  if B.is_zero e then B.one (* modulus > 1, so 1 is already reduced *)
  else begin
    let mul = mont_mul ~mm:t.mm ~k:t.k ~m0':t.m0' in
    let sqr = mont_sqr ~mm:t.mm ~k:t.k ~m0':t.m0' in
    let bm = to_mont t (pad t.k (B.Internal.mag (B.erem b t.modulus))) in
    (* fixed-window table: g^0 .. g^15 in Montgomery form *)
    let table = Array.make table_size t.one_m in
    table.(1) <- bm;
    for i = 2 to table_size - 1 do
      table.(i) <- mul table.(i - 1) bm
    done;
    let emag = B.Internal.mag e in
    let elimbs = Array.length emag in
    let digit w =
      let bit = w * window_bits in
      let limb = bit / limb_bits and off = bit mod limb_bits in
      let v = emag.(limb) lsr off in
      let v =
        if off > limb_bits - window_bits && limb + 1 < elimbs then
          v lor (emag.(limb + 1) lsl (limb_bits - off))
        else v
      in
      v land (table_size - 1)
    in
    let nwin = (B.bit_length e + window_bits - 1) / window_bits in
    (* the top window holds the exponent's top bit, so it is nonzero *)
    let acc = ref table.(digit (nwin - 1)) in
    for w = nwin - 2 downto 0 do
      for _ = 1 to window_bits do
        acc := sqr !acc
      done;
      let d = digit w in
      if d <> 0 then acc := mul !acc table.(d)
    done;
    B.Internal.of_mag (from_mont t !acc)
  end

(* --- precomputed exponent schedules ---------------------------------- *)

type schedule = {
  digits : int array; (* 4-bit window digits, most significant first *)
  s_bits : int;
  weight : int;       (* exponent popcount — picks the sparse path *)
  exponent : B.t;     (* kept for the sparse walk's testbit scan *)
}

let schedule e =
  if B.sign e < 0 then invalid_arg "Montgomery.schedule: negative exponent";
  let bits = B.bit_length e in
  let emag = B.Internal.mag e in
  let elimbs = Array.length emag in
  let digit w =
    let bit = w * window_bits in
    let limb = bit / limb_bits and off = bit mod limb_bits in
    let v = emag.(limb) lsr off in
    let v =
      if off > limb_bits - window_bits && limb + 1 < elimbs then
        v lor (emag.(limb + 1) lsl (limb_bits - off))
      else v
    in
    v land (table_size - 1)
  in
  let nwin = (bits + window_bits - 1) / window_bits in
  let weight = ref 0 in
  for i = 0 to bits - 1 do
    if B.testbit e i then incr weight
  done;
  {
    digits = Array.init nwin (fun i -> digit (nwin - 1 - i));
    s_bits = bits;
    weight = !weight;
    exponent = e;
  }

let schedule_bits s = s.s_bits

(* --- reusable per-width scratch -------------------------------------- *)

type scratch = {
  sk : int array;            (* width tag: mu row doubles as the check *)
  t0 : int array;
  t1 : int array;
  bm : int array;            (* the base in Montgomery form *)
  table : int array array;   (* 16 × k window table *)
  one_v : int array;         (* padded 1, for the final from_mont *)
}

let scratch t =
  let k = t.k in
  {
    sk = Array.make k 0;
    t0 = Array.make k 0;
    t1 = Array.make k 0;
    bm = Array.make k 0;
    table = Array.init table_size (fun _ -> Array.make k 0);
    one_v = pad k [| 1 |];
  }

let check_width t sc =
  if Array.length sc.sk <> t.k then
    invalid_arg "Montgomery: scratch width does not match context"

(* the two kernel shapes behind one pair of closures: k = 8 takes the
   straight-line unrolled code path, everything else the generic loops *)
let kernels t sc =
  if t.k = 8 then
    ( (fun ~dst a b -> mont_mul8 ~mm:t.mm ~m0':t.m0' ~dst a b),
      fun ~dst a -> mont_sqr8 ~mm:t.mm ~m0':t.m0' ~dst a )
  else
    ( (fun ~dst a b -> mont_mul_into ~mm:t.mm ~k:t.k ~m0':t.m0' ~mu:sc.sk ~dst a b),
      fun ~dst a -> mont_sqr_into ~mm:t.mm ~k:t.k ~m0':t.m0' ~mu:sc.sk ~dst a )

let load_base t sc (mul : dst:int array -> int array -> int array -> unit) b =
  let reduced = B.erem b t.modulus in
  let mag = B.Internal.mag reduced in
  let len = Array.length mag in
  Array.blit mag 0 sc.t0 0 len;
  Array.fill sc.t0 len (t.k - len) 0;
  mul ~dst:sc.bm sc.t0 t.r2

let powm t sc sched b =
  check_width t sc;
  Tangled_obs.Obs.observe modpow_bits (float_of_int sched.s_bits);
  if sched.s_bits = 0 then B.one
  else begin
    let mul, sqr = kernels t sc in
    load_base t sc mul b;
    Array.blit t.one_m 0 sc.table.(0) 0 t.k;
    Array.blit sc.bm 0 sc.table.(1) 0 t.k;
    for i = 2 to table_size - 1 do
      mul ~dst:sc.table.(i) sc.table.(i - 1) sc.bm
    done;
    let digits = sched.digits in
    Array.blit sc.table.(digits.(0)) 0 sc.t0 0 t.k;
    let cur = ref sc.t0 and other = ref sc.t1 in
    for w = 1 to Array.length digits - 1 do
      for _ = 1 to window_bits do
        sqr ~dst:!other !cur;
        (let x = !cur in cur := !other; other := x)
      done;
      let d = digits.(w) in
      if d <> 0 then begin
        mul ~dst:!other !cur sc.table.(d);
        (let x = !cur in cur := !other; other := x)
      end
    done;
    mul ~dst:!other !cur sc.one_v;
    B.Internal.of_mag (Array.copy !other)
  end

(* plain left-to-right square-and-multiply: (bits-1) squarings and
   (weight-1) multiplies, no table.  For e = 65537 that is 16 + 1
   kernel calls against the windowed path's 16 + 14 + 4 — the table
   build dominates short or low-weight exponents. *)
let powm_sparse t sc sched b =
  check_width t sc;
  Tangled_obs.Obs.observe modpow_bits (float_of_int sched.s_bits);
  if sched.s_bits = 0 then B.one
  else begin
    let mul, sqr = kernels t sc in
    load_base t sc mul b;
    let e = sched.exponent in
    Array.blit sc.bm 0 sc.t0 0 t.k;
    let cur = ref sc.t0 and other = ref sc.t1 in
    for i = sched.s_bits - 2 downto 0 do
      sqr ~dst:!other !cur;
      (let x = !cur in cur := !other; other := x);
      if B.testbit e i then begin
        mul ~dst:!other !cur sc.bm;
        (let x = !cur in cur := !other; other := x)
      end
    done;
    mul ~dst:!other !cur sc.one_v;
    B.Internal.of_mag (Array.copy !other)
  end

(* a sparse walk beats the windowed one when the multiplies it saves
   (the 14-entry table build plus ~bits/4 window multiplies, against
   weight-1 of its own) outweigh nothing — both do bits-ish squarings *)
let sparse_profitable sched =
  sched.weight - 1 < (table_size - 2) + (sched.s_bits / window_bits)

let powm_auto t sc sched b =
  if sparse_profitable sched then powm_sparse t sc sched b
  else powm t sc sched b

(* --- fixed-base comb -------------------------------------------------- *)

module Fixed_base = struct
  (* For a base that repeats across many exponentiations, precompute
     tabs.(w).(d) = b^(d·16^w) in Montgomery form for every window
     position w and digit d.  An exponentiation is then a product of
     one table entry per nonzero window digit — ~bits/4 multiplies
     and no squarings at all (the squarings were hoisted into the
     table).  The table costs ~bits squarings plus 14·nwin multiplies
     to build, so it pays for itself after a handful of calls. *)

  type fb = {
    ctx : t;
    tabs : int array array array; (* nwin × 16 × k *)
    fb_bits : int;
  }

  let precompute ctx b ~bits =
    if bits < 1 then invalid_arg "Fixed_base.precompute: bits must be >= 1";
    let { mm; k; m0'; _ } = ctx in
    let mul = mont_mul ~mm ~k ~m0' in
    let bm = mul (pad k (B.Internal.mag (B.erem b ctx.modulus))) ctx.r2 in
    let nwin = (bits + window_bits - 1) / window_bits in
    let tabs = Array.init nwin (fun _ -> Array.make table_size ctx.one_m) in
    let cur = ref bm in
    for w = 0 to nwin - 1 do
      tabs.(w).(1) <- !cur;
      for d = 2 to table_size - 1 do
        tabs.(w).(d) <- mul tabs.(w).(d - 1) !cur
      done;
      (* b^(16^(w+1)) = (b^(8·16^w))² *)
      cur := mul tabs.(w).(8) tabs.(w).(8)
    done;
    { ctx; tabs; fb_bits = bits }

  let bits fb = fb.fb_bits

  let powm fb sched =
    let t = fb.ctx in
    if sched.s_bits > fb.fb_bits then
      invalid_arg "Fixed_base.powm: exponent wider than the precomputed table";
    Tangled_obs.Obs.observe modpow_bits (float_of_int sched.s_bits);
    if sched.s_bits = 0 then B.one
    else begin
      let mu = Array.make t.k 0 in
      let t0 = Array.make t.k 0 in
      let t1 = Array.make t.k 0 in
      let mul ~dst a b = mont_mul_into ~mm:t.mm ~k:t.k ~m0':t.m0' ~mu ~dst a b in
      let digits = sched.digits in
      let nd = Array.length digits in
      Array.blit t.one_m 0 t0 0 t.k;
      let cur = ref t0 and other = ref t1 in
      for w = 0 to nd - 1 do
        (* digits are most-significant-first; window w of the comb is
           the exponent's w-th least-significant digit *)
        let d = digits.(nd - 1 - w) in
        if d <> 0 then begin
          mul ~dst:!other !cur fb.tabs.(w).(d);
          let x = !cur in cur := !other; other := x
        end
      done;
      mul ~dst:!other !cur (pad t.k [| 1 |]);
      B.Internal.of_mag (Array.copy !other)
    end
end

(* --- the wide plane: 28-bit packed kernels --------------------------------

   The 26-bit plane above inherits its limb width from Bigint, whose
   schoolbook division needs two spare bits.  Montgomery arithmetic
   never divides, so its kernels can run on wider limbs: at 28 bits a
   partial product stays below 2^56, leaving seven headroom bits —
   enough for the same cheap one-multiply-one-add column accumulation
   as long as a column sums at most 63 products (integrated
   product-scanning: 2k <= 63, i.e. moduli up to 868 bits; plain
   schoolbook products: min(ka,kb) <= 63 limbs).  A 192-bit RSA-CRT
   half is then 7 limbs instead of 8, cutting the multiplies per
   kernel call from 2*8^2+8 = 136 to 2*7^2+7 = 105 and the squaring
   kernel to ~84.

   (A 31-bit packing was prototyped first: products reach 62 bits, so
   every column needs split lo/hi accumulators — five ALU ops per
   product instead of two.  Measured on this box the k = 7 31-bit
   kernel ran ~35 % slower than the existing 26-bit k = 8 one; the
   28-bit layout keeps the 2-op column structure and wins.  See
   DESIGN.md section 8.)

   Above the integrated bound the full product is computed separately
   and reduced with a word-by-word REDC pass (whose per-step sums are
   k-independent).  The product itself goes through subtractive
   Karatsuba above {!Wide.karatsuba_threshold} limbs: the subtractive
   variant multiplies |a_lo - a_hi| terms, which stay 28-bit, so the
   base case never sees grown limbs and the 63-product column bound
   holds at every recursion level.  Squaring keeps its own Karatsuba:
   2*a_lo*a_hi = a_lo^2 + a_hi^2 - (a_lo - a_hi)^2, so all three
   recursive calls are squarings and the doubling trick survives down
   the tree.

   Everything runs in a preallocated {!Wide.scratch}: the hot RSA-CRT
   sign path does not allocate between the message bytes going in and
   the signature bytes coming out. *)

module Wide = struct
  let wbits = 28
  let wbase = 1 lsl wbits
  let wmask = wbase - 1

  (* integrated product scanning sums up to 2k products of < 2^56 in
     one accumulator; 2k <= 63 keeps that under the 62-bit native
     positive range *)
  let integrated_max_k = 31

  (* schoolbook <-> Karatsuba crossover, in limbs.  The threshold
     sweep on the 1-CPU reference box (DESIGN.md section 8) put the
     measured crossover at or above the 63-limb column-accumulator
     bound, so flat product-scanning runs wherever it is legal and
     Karatsuba recursion happens only when overflow forces it; the
     value must never exceed 63 or base-case columns overflow *)
  let karatsuba_threshold = 63

  type wt = {
    w_modulus : B.t;
    wn : int array;    (* modulus, k 28-bit limbs *)
    wk : int;
    wn0' : int;        (* -modulus^{-1} mod 2^28 *)
    wr2 : int array;   (* R^2 mod m *)
    wr3 : int array;   (* R^3 mod m — one-multiply Montgomery entry
                          for 2k-limb operands reduced via REDC *)
    w_one : int array; (* R mod m, Montgomery form of 1 *)
  }

  type t = wt

  let modulus t = t.w_modulus
  let k t = t.wk

  (* --- packing ------------------------------------------------------- *)

  (* repack a 26-bit magnitude into [k] 28-bit limbs *)
  let pack_mag ~k mag =
    let r = Array.make k 0 in
    let b26 = B.Internal.limb_bits in
    Array.iteri
      (fun i v ->
        let bit = i * b26 in
        let limb = bit / wbits and off = bit mod wbits in
        if limb < k then begin
          r.(limb) <- r.(limb) lor ((v lsl off) land wmask);
          if off > wbits - b26 && limb + 1 < k then
            r.(limb + 1) <- r.(limb + 1) lor (v lsr (wbits - off))
        end)
      mag;
    r

  let limbs_of_bigint t x =
    if B.sign x < 0 || B.bit_length x > t.wk * wbits then
      invalid_arg "Montgomery.Wide.limbs_of_bigint: value out of range";
    pack_mag ~k:t.wk (B.Internal.mag x)

  let bigint_of_limbs limbs =
    let r = ref B.zero in
    for i = Array.length limbs - 1 downto 0 do
      r := B.add (B.shift_left !r wbits) (B.of_int limbs.(i))
    done;
    !r

  (* big-endian bytes -> 28-bit limbs, low limb first; [dst] is
     overwritten completely *)
  let pack_bytes_be s dst =
    Array.fill dst 0 (Array.length dst) 0;
    let nl = Array.length dst in
    let len = String.length s in
    for idx = 0 to len - 1 do
      let v = Char.code (String.unsafe_get s idx) in
      let bit = (len - 1 - idx) * 8 in
      let limb = bit / wbits and off = bit mod wbits in
      if limb < nl then begin
        dst.(limb) <- dst.(limb) lor ((v lsl off) land wmask);
        if off > wbits - 8 && limb + 1 < nl then
          dst.(limb + 1) <- dst.(limb + 1) lor (v lsr (wbits - off))
      end
    done

  (* 28-bit limbs -> big-endian bytes filling [dst] exactly; limb
     content above 8*len bits must be zero (the caller guarantees the
     value fits) *)
  let write_bytes_be limbs nlimbs dst =
    let len = Bytes.length dst in
    for idx = 0 to len - 1 do
      let bit = (len - 1 - idx) * 8 in
      let limb = bit / wbits and off = bit mod wbits in
      let v =
        if limb >= nlimbs then 0
        else begin
          let v = Array.unsafe_get limbs limb lsr off in
          if off > wbits - 8 && limb + 1 < nlimbs then
            v lor (Array.unsafe_get limbs (limb + 1) lsl (wbits - off))
          else v
        end
      in
      Bytes.unsafe_set dst idx (Char.unsafe_chr (v land 0xff))
    done

  (* --- full-product kernels (offset-addressed, allocation-free) ------ *)

  (* dst[doff .. doff+ka+kb-1] = a[aoff..+ka-1] * b[boff..+kb-1],
     product scanning; requires min(ka,kb) <= 63 *)
  let mul_sb ~dst ~doff a aoff ka b boff kb =
    let prev = ref 0 in
    for i = 0 to ka + kb - 2 do
      let s = ref !prev in
      let jmin = if i - kb + 1 > 0 then i - kb + 1 else 0 in
      let jmax = if i < ka - 1 then i else ka - 1 in
      for j = jmin to jmax do
        s :=
          !s
          + (Array.unsafe_get a (aoff + j)
             * Array.unsafe_get b (boff + i - j))
      done;
      Array.unsafe_set dst (doff + i) (!s land wmask);
      prev := !s lsr wbits
    done;
    Array.unsafe_set dst (doff + ka + kb - 1) !prev

  (* dst[doff .. doff+2n-1] = a[aoff..+n-1]^2: symmetric pairs computed
     once and doubled, diagonal terms undoubled; requires n <= 62 *)
  let sqr_sb ~dst ~doff a aoff n =
    let prev = ref 0 in
    for i = 0 to 2 * n - 2 do
      let lo = if i - n + 1 > 0 then i - n + 1 else 0 in
      let half = (i - 1) asr 1 in
      let p = ref 0 in
      for j = lo to half do
        p :=
          !p
          + (Array.unsafe_get a (aoff + j)
             * Array.unsafe_get a (aoff + i - j))
      done;
      let s = ref (!prev + (!p lsl 1)) in
      if i land 1 = 0 && i asr 1 >= lo && i asr 1 <= n - 1 then begin
        let d = Array.unsafe_get a (aoff + (i asr 1)) in
        s := !s + (d * d)
      end;
      Array.unsafe_set dst (doff + i) (!s land wmask);
      prev := !s lsr wbits
    done;
    Array.unsafe_set dst (doff + 2 * n - 1) !prev

  (* |x[xoff..+xl-1] - y[yoff..+yl-1]| into dst[doff..+max-1]; returns
     -1, 0 or 1 for the sign of x - y.  xl >= yl. *)
  let abs_diff ~dst ~doff x xoff xl y yoff yl =
    (* compare, treating y as zero-extended to xl *)
    let cmp =
      let rec go j =
        if j < 0 then 0
        else begin
          let xv = Array.unsafe_get x (xoff + j) in
          let yv = if j < yl then Array.unsafe_get y (yoff + j) else 0 in
          if xv <> yv then (if xv > yv then 1 else -1) else go (j - 1)
        end
      in
      go (xl - 1)
    in
    if cmp = 0 then begin
      Array.fill dst doff xl 0;
      0
    end
    else begin
      let hi, hioff, lo, looff, lolen =
        if cmp > 0 then (x, xoff, y, yoff, yl) else (y, yoff, x, xoff, xl)
      in
      (* when cmp < 0, y is the larger and has yl <= xl limbs; either
         way the result fits xl limbs *)
      let hilen = if cmp > 0 then xl else yl in
      let borrow = ref 0 in
      for j = 0 to xl - 1 do
        let hv = if j < hilen then Array.unsafe_get hi (hioff + j) else 0 in
        let lv = if j < lolen then Array.unsafe_get lo (looff + j) else 0 in
        let d = hv - lv - !borrow in
        if d < 0 then begin
          Array.unsafe_set dst (doff + j) (d + wbase);
          borrow := 1
        end
        else begin
          Array.unsafe_set dst (doff + j) d;
          borrow := 0
        end
      done;
      cmp
    end

  (* dst[doff..] += src[soff..+len-1], carry propagated until absorbed *)
  let add_into ~dst ~doff src soff len =
    let c = ref 0 in
    for j = 0 to len - 1 do
      let s = Array.unsafe_get dst (doff + j) + Array.unsafe_get src (soff + j) + !c in
      Array.unsafe_set dst (doff + j) (s land wmask);
      c := s lsr wbits
    done;
    let idx = ref (doff + len) in
    while !c <> 0 do
      let s = Array.unsafe_get dst !idx + !c in
      Array.unsafe_set dst !idx (s land wmask);
      c := s lsr wbits;
      incr idx
    done

  (* dst[doff..] -= src[soff..+len-1], borrow propagated until absorbed;
     the caller guarantees the running value stays non-negative *)
  let sub_into ~dst ~doff src soff len =
    let b = ref 0 in
    for j = 0 to len - 1 do
      let d = Array.unsafe_get dst (doff + j) - Array.unsafe_get src (soff + j) - !b in
      if d < 0 then begin
        Array.unsafe_set dst (doff + j) (d + wbase);
        b := 1
      end
      else begin
        Array.unsafe_set dst (doff + j) d;
        b := 0
      end
    done;
    let idx = ref (doff + len) in
    while !b <> 0 do
      let d = Array.unsafe_get dst !idx - 1 in
      if d < 0 then Array.unsafe_set dst !idx (d + wbase)
      else begin
        Array.unsafe_set dst !idx d;
        b := 0
      end;
      incr idx
    done

  (* subtractive Karatsuba: dst[doff..+2n-1] = a[aoff..+n] * b[boff..+n].
     scr is a scratch arena; each level uses 6*hn+1 cells from soff.
     [th] is the schoolbook cutover (inclusive: n <= th -> schoolbook). *)
  let rec mul_kar ~th ~scr ~soff ~dst ~doff a aoff b boff n =
    if n <= th then mul_sb ~dst ~doff a aoff n b boff n
    else begin
      let m = n asr 1 in
      let hn = n - m in
      (* da = |a_lo - a_hi| (hn limbs), db likewise; a_hi has hn >= m *)
      let sa = abs_diff ~dst:scr ~doff:soff a (aoff + m) hn a aoff m in
      let sb = abs_diff ~dst:scr ~doff:(soff + hn) b (boff + m) hn b boff m in
      (* P0 and P2 land in dst back to back *)
      mul_kar ~th ~scr ~soff:(soff + 6 * hn + 2) ~dst ~doff a aoff b boff m;
      mul_kar ~th ~scr ~soff:(soff + 6 * hn + 2) ~dst ~doff:(doff + 2 * m)
        a (aoff + m) b (boff + m) hn;
      (* M = da * db *)
      mul_kar ~th ~scr ~soff:(soff + 6 * hn + 2) ~dst:scr ~doff:(soff + 2 * hn)
        scr soff scr (soff + hn) hn;
      (* T = P0 + P2 (2hn+1 limbs, P0 zero-extended) *)
      let toff = soff + 4 * hn in
      let c = ref 0 in
      for j = 0 to 2 * hn - 1 do
        let p0v = if j < 2 * m then Array.unsafe_get dst (doff + j) else 0 in
        let s = p0v + Array.unsafe_get dst (doff + 2 * m + j) + !c in
        Array.unsafe_set scr (toff + j) (s land wmask);
        c := s lsr wbits
      done;
      Array.unsafe_set scr (toff + 2 * hn) !c;
      (* middle = T -+ sa*sb*M at offset m; (a_hi-a_lo)(b_hi-b_lo) has
         sign sa*sb and equals P0 + P2 - (a_lo*b_hi + a_hi*b_lo), so M
         is subtracted when the signs agree and added otherwise *)
      add_into ~dst ~doff:(doff + m) scr toff (2 * hn + 1);
      if sa * sb > 0 then sub_into ~dst ~doff:(doff + m) scr (soff + 2 * hn) (2 * hn)
      else if sa * sb < 0 then
        add_into ~dst ~doff:(doff + m) scr (soff + 2 * hn) (2 * hn)
    end

  (* Karatsuba squaring: 2*a_lo*a_hi = a_lo^2 + a_hi^2 - (a_lo-a_hi)^2,
     so the middle correction is always subtracted *)
  let rec sqr_kar ~th ~scr ~soff ~dst ~doff a aoff n =
    if n <= th then sqr_sb ~dst ~doff a aoff n
    else begin
      let m = n asr 1 in
      let hn = n - m in
      let (_ : int) = abs_diff ~dst:scr ~doff:soff a (aoff + m) hn a aoff m in
      sqr_kar ~th ~scr ~soff:(soff + 6 * hn + 2) ~dst ~doff a aoff m;
      sqr_kar ~th ~scr ~soff:(soff + 6 * hn + 2) ~dst ~doff:(doff + 2 * m)
        a (aoff + m) hn;
      sqr_kar ~th ~scr ~soff:(soff + 6 * hn + 2) ~dst:scr ~doff:(soff + 2 * hn)
        scr soff hn;
      let toff = soff + 4 * hn in
      let c = ref 0 in
      for j = 0 to 2 * hn - 1 do
        let p0v = if j < 2 * m then Array.unsafe_get dst (doff + j) else 0 in
        let s = p0v + Array.unsafe_get dst (doff + 2 * m + j) + !c in
        Array.unsafe_set scr (toff + j) (s land wmask);
        c := s lsr wbits
      done;
      Array.unsafe_set scr (toff + 2 * hn) !c;
      add_into ~dst ~doff:(doff + m) scr toff (2 * hn + 1);
      sub_into ~dst ~doff:(doff + m) scr (soff + 2 * hn) (2 * hn)
    end

  (* karatsuba scratch need: S(n) = 6*ceil(n/2)+2 + S(ceil(n/2)) — a
     geometric series under 8n + a logarithmic tail *)
  let kar_scratch_size k = (8 * k) + 64

  (* --- word-by-word REDC ---------------------------------------------

     Reduces the 2k-limb value in [t] (destroyed) to t * R^{-1} mod m,
     k limbs in [dst], fully reduced.  Row sums are t_i + u*n_j + c
     < 2^57 regardless of k, so this is the reduction for widths the
     integrated kernels cannot reach. *)
  let redc ~n ~k ~n0' ~dst t =
    for i = 0 to k - 1 do
      let u = Array.unsafe_get t i * n0' land wmask in
      let c = ref 0 in
      for j = 0 to k - 1 do
        let x = Array.unsafe_get t (i + j) + (u * Array.unsafe_get n j) + !c in
        Array.unsafe_set t (i + j) (x land wmask);
        c := x lsr wbits
      done;
      let idx = ref (i + k) in
      while !c <> 0 do
        let x = Array.unsafe_get t !idx + !c in
        Array.unsafe_set t !idx (x land wmask);
        c := x lsr wbits;
        incr idx
      done
    done;
    Array.blit t k dst 0 k;
    if ge_from dst n (k - 1) then begin
      let borrow = ref 0 in
      for j = 0 to k - 1 do
        let d = dst.(j) - n.(j) - !borrow in
        if d < 0 then begin
          dst.(j) <- d + wbase;
          borrow := 1
        end
        else begin
          dst.(j) <- d;
          borrow := 0
        end
      done
    end

  let w_reduce_final ~n ~k dst high =
    if high <> 0 || ge_from dst n (k - 1) then begin
      let borrow = ref 0 in
      for j = 0 to k - 1 do
        let d = dst.(j) - n.(j) - !borrow in
        if d < 0 then begin
          dst.(j) <- d + wbase;
          borrow := 1
        end
        else begin
          dst.(j) <- d;
          borrow := 0
        end
      done
    end

  (* --- integrated product-scanning kernels (k <= 31) ----------------- *)

  let w_mont_mul_into ~n ~k ~n0' ~mu ~dst a b =
    let acc = ref 0 in
    for i = 0 to k - 1 do
      let s = ref !acc in
      for j = 0 to i do
        s := !s + (Array.unsafe_get a j * Array.unsafe_get b (i - j))
      done;
      for j = 0 to i - 1 do
        s := !s + (Array.unsafe_get mu j * Array.unsafe_get n (i - j))
      done;
      let mi = !s * n0' land wmask in
      Array.unsafe_set mu i mi;
      acc := (!s + (mi * Array.unsafe_get n 0)) lsr wbits
    done;
    for i = k to (2 * k) - 1 do
      let s = ref !acc in
      for j = i - k + 1 to k - 1 do
        s :=
          !s
          + (Array.unsafe_get a j * Array.unsafe_get b (i - j))
          + (Array.unsafe_get mu j * Array.unsafe_get n (i - j))
      done;
      Array.unsafe_set dst (i - k) (!s land wmask);
      acc := !s lsr wbits
    done;
    w_reduce_final ~n ~k dst !acc

  let w_mont_sqr_into ~n ~k ~n0' ~mu ~dst a =
    let acc = ref 0 in
    for i = 0 to k - 1 do
      let half = (i - 1) asr 1 in
      let p = ref 0 in
      for j = 0 to half do
        p := !p + (Array.unsafe_get a j * Array.unsafe_get a (i - j))
      done;
      let s = ref (!acc + (!p lsl 1)) in
      if i land 1 = 0 then begin
        let d = Array.unsafe_get a (i asr 1) in
        s := !s + (d * d)
      end;
      for j = 0 to i - 1 do
        s := !s + (Array.unsafe_get mu j * Array.unsafe_get n (i - j))
      done;
      let mi = !s * n0' land wmask in
      Array.unsafe_set mu i mi;
      acc := (!s + (mi * Array.unsafe_get n 0)) lsr wbits
    done;
    for i = k to (2 * k) - 1 do
      let lo = i - k + 1 in
      let half = (i - 1) asr 1 in
      let p = ref 0 in
      for j = lo to half do
        p := !p + (Array.unsafe_get a j * Array.unsafe_get a (i - j))
      done;
      let s = ref (!acc + (!p lsl 1)) in
      if i land 1 = 0 && i asr 1 >= lo then begin
        let d = Array.unsafe_get a (i asr 1) in
        s := !s + (d * d)
      end;
      for j = lo to k - 1 do
        s := !s + (Array.unsafe_get mu j * Array.unsafe_get n (i - j))
      done;
      Array.unsafe_set dst (i - k) (!s land wmask);
      acc := !s lsr wbits
    done;
    w_reduce_final ~n ~k dst !acc

  (* --- fully unrolled k = 7 kernels (384-bit CRT halves) --------------

     The same straight-line treatment the 26-bit plane gives k = 8,
     one limb narrower: every operand in a named local, 105 multiplies
     per call instead of 136, and the squaring's doubled pairs are a
     single shift. *)

  let w_mont_mul7 ~n ~n0' ~dst a b =
    let a0 = Array.unsafe_get a 0 and a1 = Array.unsafe_get a 1
    and a2 = Array.unsafe_get a 2 and a3 = Array.unsafe_get a 3
    and a4 = Array.unsafe_get a 4 and a5 = Array.unsafe_get a 5
    and a6 = Array.unsafe_get a 6 in
    let b0 = Array.unsafe_get b 0 and b1 = Array.unsafe_get b 1
    and b2 = Array.unsafe_get b 2 and b3 = Array.unsafe_get b 3
    and b4 = Array.unsafe_get b 4 and b5 = Array.unsafe_get b 5
    and b6 = Array.unsafe_get b 6 in
    let n0 = Array.unsafe_get n 0 and n1 = Array.unsafe_get n 1
    and n2 = Array.unsafe_get n 2 and n3 = Array.unsafe_get n 3
    and n4 = Array.unsafe_get n 4 and n5 = Array.unsafe_get n 5
    and n6 = Array.unsafe_get n 6 in
    let s = a0*b0 in
    let u0 = s * n0' land wmask in
    let acc = (s + u0*n0) lsr wbits in
    let s = acc + a0*b1 + a1*b0 + u0*n1 in
    let u1 = s * n0' land wmask in
    let acc = (s + u1*n0) lsr wbits in
    let s = acc + a0*b2 + a1*b1 + a2*b0 + u0*n2 + u1*n1 in
    let u2 = s * n0' land wmask in
    let acc = (s + u2*n0) lsr wbits in
    let s = acc + a0*b3 + a1*b2 + a2*b1 + a3*b0 + u0*n3 + u1*n2 + u2*n1 in
    let u3 = s * n0' land wmask in
    let acc = (s + u3*n0) lsr wbits in
    let s = acc + a0*b4 + a1*b3 + a2*b2 + a3*b1 + a4*b0
            + u0*n4 + u1*n3 + u2*n2 + u3*n1 in
    let u4 = s * n0' land wmask in
    let acc = (s + u4*n0) lsr wbits in
    let s = acc + a0*b5 + a1*b4 + a2*b3 + a3*b2 + a4*b1 + a5*b0
            + u0*n5 + u1*n4 + u2*n3 + u3*n2 + u4*n1 in
    let u5 = s * n0' land wmask in
    let acc = (s + u5*n0) lsr wbits in
    let s = acc + a0*b6 + a1*b5 + a2*b4 + a3*b3 + a4*b2 + a5*b1 + a6*b0
            + u0*n6 + u1*n5 + u2*n4 + u3*n3 + u4*n2 + u5*n1 in
    let u6 = s * n0' land wmask in
    let acc = (s + u6*n0) lsr wbits in
    let s = acc + a1*b6 + a2*b5 + a3*b4 + a4*b3 + a5*b2 + a6*b1
            + u1*n6 + u2*n5 + u3*n4 + u4*n3 + u5*n2 + u6*n1 in
    Array.unsafe_set dst 0 (s land wmask);
    let acc = s lsr wbits in
    let s = acc + a2*b6 + a3*b5 + a4*b4 + a5*b3 + a6*b2
            + u2*n6 + u3*n5 + u4*n4 + u5*n3 + u6*n2 in
    Array.unsafe_set dst 1 (s land wmask);
    let acc = s lsr wbits in
    let s = acc + a3*b6 + a4*b5 + a5*b4 + a6*b3 + u3*n6 + u4*n5 + u5*n4 + u6*n3 in
    Array.unsafe_set dst 2 (s land wmask);
    let acc = s lsr wbits in
    let s = acc + a4*b6 + a5*b5 + a6*b4 + u4*n6 + u5*n5 + u6*n4 in
    Array.unsafe_set dst 3 (s land wmask);
    let acc = s lsr wbits in
    let s = acc + a5*b6 + a6*b5 + u5*n6 + u6*n5 in
    Array.unsafe_set dst 4 (s land wmask);
    let acc = s lsr wbits in
    let s = acc + a6*b6 + u6*n6 in
    Array.unsafe_set dst 5 (s land wmask);
    let acc = s lsr wbits in
    Array.unsafe_set dst 6 (acc land wmask);
    w_reduce_final ~n ~k:7 dst (acc lsr wbits)

  let w_mont_sqr7 ~n ~n0' ~dst a =
    let a0 = Array.unsafe_get a 0 and a1 = Array.unsafe_get a 1
    and a2 = Array.unsafe_get a 2 and a3 = Array.unsafe_get a 3
    and a4 = Array.unsafe_get a 4 and a5 = Array.unsafe_get a 5
    and a6 = Array.unsafe_get a 6 in
    let n0 = Array.unsafe_get n 0 and n1 = Array.unsafe_get n 1
    and n2 = Array.unsafe_get n 2 and n3 = Array.unsafe_get n 3
    and n4 = Array.unsafe_get n 4 and n5 = Array.unsafe_get n 5
    and n6 = Array.unsafe_get n 6 in
    let s = a0*a0 in
    let u0 = s * n0' land wmask in
    let acc = (s + u0*n0) lsr wbits in
    let s = acc + ((a0*a1) lsl 1) + u0*n1 in
    let u1 = s * n0' land wmask in
    let acc = (s + u1*n0) lsr wbits in
    let s = acc + ((a0*a2) lsl 1) + a1*a1 + u0*n2 + u1*n1 in
    let u2 = s * n0' land wmask in
    let acc = (s + u2*n0) lsr wbits in
    let s = acc + ((a0*a3 + a1*a2) lsl 1) + u0*n3 + u1*n2 + u2*n1 in
    let u3 = s * n0' land wmask in
    let acc = (s + u3*n0) lsr wbits in
    let s = acc + ((a0*a4 + a1*a3) lsl 1) + a2*a2 + u0*n4 + u1*n3 + u2*n2 + u3*n1 in
    let u4 = s * n0' land wmask in
    let acc = (s + u4*n0) lsr wbits in
    let s = acc + ((a0*a5 + a1*a4 + a2*a3) lsl 1)
            + u0*n5 + u1*n4 + u2*n3 + u3*n2 + u4*n1 in
    let u5 = s * n0' land wmask in
    let acc = (s + u5*n0) lsr wbits in
    let s = acc + ((a0*a6 + a1*a5 + a2*a4) lsl 1) + a3*a3
            + u0*n6 + u1*n5 + u2*n4 + u3*n3 + u4*n2 + u5*n1 in
    let u6 = s * n0' land wmask in
    let acc = (s + u6*n0) lsr wbits in
    let s = acc + ((a1*a6 + a2*a5 + a3*a4) lsl 1)
            + u1*n6 + u2*n5 + u3*n4 + u4*n3 + u5*n2 + u6*n1 in
    Array.unsafe_set dst 0 (s land wmask);
    let acc = s lsr wbits in
    let s = acc + ((a2*a6 + a3*a5) lsl 1) + a4*a4
            + u2*n6 + u3*n5 + u4*n4 + u5*n3 + u6*n2 in
    Array.unsafe_set dst 1 (s land wmask);
    let acc = s lsr wbits in
    let s = acc + ((a3*a6 + a4*a5) lsl 1) + u3*n6 + u4*n5 + u5*n4 + u6*n3 in
    Array.unsafe_set dst 2 (s land wmask);
    let acc = s lsr wbits in
    let s = acc + ((a4*a6) lsl 1) + a5*a5 + u4*n6 + u5*n5 + u6*n4 in
    Array.unsafe_set dst 3 (s land wmask);
    let acc = s lsr wbits in
    let s = acc + ((a5*a6) lsl 1) + u5*n6 + u6*n5 in
    Array.unsafe_set dst 4 (s land wmask);
    let acc = s lsr wbits in
    let s = acc + a6*a6 + u6*n6 in
    Array.unsafe_set dst 5 (s land wmask);
    let acc = s lsr wbits in
    Array.unsafe_set dst 6 (acc land wmask);
    w_reduce_final ~n ~k:7 dst (acc lsr wbits)

  (* --- context and scratch ------------------------------------------- *)

  let create m =
    if B.sign m <= 0 || B.compare m B.one <= 0 then
      invalid_arg "Montgomery.Wide.create: modulus must exceed 1";
    if not (B.is_odd m) then
      invalid_arg "Montgomery.Wide.create: modulus must be odd";
    let bits = B.bit_length m in
    let k = (bits + wbits - 1) / wbits in
    let wn = pack_mag ~k (B.Internal.mag m) in
    (* Hensel lifting doubles correct low bits per step; five
       iterations from x = 1 give 32 >= 28 *)
    let inv = ref 1 in
    for _ = 1 to 5 do
      inv := !inv * (2 - (wn.(0) * !inv)) land wmask
    done;
    let wn0' = (wbase - !inv) land wmask in
    let pow_r e = B.erem (B.shift_left B.one (e * k * wbits)) m in
    {
      w_modulus = m;
      wn;
      wk = k;
      wn0';
      wr2 = pack_mag ~k (B.Internal.mag (pow_r 2));
      wr3 = pack_mag ~k (B.Internal.mag (pow_r 3));
      w_one = pack_mag ~k (B.Internal.mag (pow_r 1));
    }

  type wscratch = {
    wsk : int array;           (* k — width tag and the mu row *)
    wt0 : int array;
    wt1 : int array;
    wbm : int array;           (* base, Montgomery form *)
    wtable : int array array;  (* 16 x k window table *)
    wprod : int array;         (* 2k + 1 — full products and REDC input *)
    wkar : int array;          (* Karatsuba arena *)
  }

  let scratch t =
    let k = t.wk in
    {
      wsk = Array.make k 0;
      wt0 = Array.make k 0;
      wt1 = Array.make k 0;
      wbm = Array.make k 0;
      wtable = Array.init table_size (fun _ -> Array.make k 0);
      wprod = Array.make ((2 * k) + 1) 0;
      wkar = Array.make (kar_scratch_size k) 0;
    }

  let w_check_width t sc =
    if Array.length sc.wsk <> t.wk then
      invalid_arg "Montgomery.Wide: scratch width does not match context"

  (* --- kernel dispatch ------------------------------------------------

     Direct top-level calls with a width test that branch-predicts
     perfectly: k = 7 (the Notary CRT half) runs the straight-line
     kernels, anything else inside the column bound runs the
     integrated loops, and wider moduli take full product (Karatsuba
     above the threshold) plus word-by-word REDC. *)

  let w_mul t sc ~dst a b =
    let k = t.wk in
    if k = 7 then w_mont_mul7 ~n:t.wn ~n0':t.wn0' ~dst a b
    else if k <= integrated_max_k then
      w_mont_mul_into ~n:t.wn ~k ~n0':t.wn0' ~mu:sc.wsk ~dst a b
    else begin
      if k <= karatsuba_threshold then mul_sb ~dst:sc.wprod ~doff:0 a 0 k b 0 k
      else
        mul_kar ~th:karatsuba_threshold ~scr:sc.wkar ~soff:0 ~dst:sc.wprod
          ~doff:0 a 0 b 0 k;
      redc ~n:t.wn ~k ~n0':t.wn0' ~dst sc.wprod
    end

  let w_sqr t sc ~dst a =
    let k = t.wk in
    if k = 7 then w_mont_sqr7 ~n:t.wn ~n0':t.wn0' ~dst a
    else if k <= integrated_max_k then
      w_mont_sqr_into ~n:t.wn ~k ~n0':t.wn0' ~mu:sc.wsk ~dst a
    else begin
      if k <= karatsuba_threshold then sqr_sb ~dst:sc.wprod ~doff:0 a 0 k
      else
        sqr_kar ~th:karatsuba_threshold ~scr:sc.wkar ~soff:0 ~dst:sc.wprod
          ~doff:0 a 0 k;
      redc ~n:t.wn ~k ~n0':t.wn0' ~dst sc.wprod
    end

  (* --- base loading ----------------------------------------------------

     Montgomery entry without division: a k-limb value x (any value
     below R, reduced or not) enters as mont_mul(x, R^2) = x*R mod m.
     A 2k-limb value — the 384-bit EMSA block against a 192-bit CRT
     modulus — first drops to x*R^{-1} mod m by one REDC pass (valid
     whenever x < R*m), then one multiply by R^3 restores x*R mod m.
     Only values wider than 2k limbs fall back to Bigint division. *)

  let load_base_limbs t sc =
    let k = t.wk in
    let wide = ref false in
    for i = k to (2 * k) - 1 do
      if Array.unsafe_get sc.wprod i <> 0 then wide := true
    done;
    if not !wide then begin
      Array.blit sc.wprod 0 sc.wt0 0 k;
      w_mul t sc ~dst:sc.wbm sc.wt0 t.wr2
    end
    else begin
      redc ~n:t.wn ~k ~n0':t.wn0' ~dst:sc.wt0 sc.wprod;
      w_mul t sc ~dst:sc.wbm sc.wt0 t.wr3
    end

  (* load big-endian bytes as the exponentiation base; the value must
     fit 2k limbs (wider inputs go through {!load_base}) *)
  let load_base_bytes t sc s =
    if String.length s * 8 > 2 * t.wk * wbits then
      invalid_arg "Montgomery.Wide.load_base_bytes: value wider than 2k limbs";
    pack_bytes_be s sc.wprod;
    sc.wprod.(2 * t.wk) <- 0;
    load_base_limbs t sc

  let load_base t sc b =
    let k = t.wk in
    let b =
      if B.sign b < 0 || B.bit_length b > 2 * k * wbits then B.erem b t.w_modulus
      else b
    in
    let mag = B.Internal.mag b in
    let packed = pack_mag ~k:(2 * k) mag in
    Array.blit packed 0 sc.wprod 0 (2 * k);
    sc.wprod.(2 * k) <- 0;
    load_base_limbs t sc

  (* --- exponentiation walks -------------------------------------------

     Identical structure to the 26-bit {!powm}/{!powm_sparse}, over the
     dispatched wide kernels; [_loaded] variants assume the base is
     already in [sc.wbm] and leave the plain (de-Montgomeryfied)
     result in [dst], so the RSA-CRT path never touches Bigint. *)

  let powm_loaded t sc sched ~dst =
    w_check_width t sc;
    let k = t.wk in
    Array.blit t.w_one 0 sc.wtable.(0) 0 k;
    Array.blit sc.wbm 0 sc.wtable.(1) 0 k;
    for i = 2 to table_size - 1 do
      w_mul t sc ~dst:sc.wtable.(i) sc.wtable.(i - 1) sc.wbm
    done;
    let digits = sched.digits in
    Array.blit sc.wtable.(digits.(0)) 0 sc.wt0 0 k;
    let cur = ref sc.wt0 and other = ref sc.wt1 in
    for w = 1 to Array.length digits - 1 do
      for _ = 1 to window_bits do
        w_sqr t sc ~dst:!other !cur;
        (let x = !cur in cur := !other; other := x)
      done;
      let d = digits.(w) in
      if d <> 0 then begin
        w_mul t sc ~dst:!other !cur sc.wtable.(d);
        (let x = !cur in cur := !other; other := x)
      end
    done;
    (* out of Montgomery form: REDC of the bare value, as one multiply
       by 1 without the table *)
    Array.fill sc.wprod 0 ((2 * k) + 1) 0;
    Array.blit !cur 0 sc.wprod 0 k;
    redc ~n:t.wn ~k ~n0':t.wn0' ~dst sc.wprod

  let powm_sparse_loaded t sc sched ~dst =
    w_check_width t sc;
    let k = t.wk in
    let e = sched.exponent in
    Array.blit sc.wbm 0 sc.wt0 0 k;
    let cur = ref sc.wt0 and other = ref sc.wt1 in
    for i = sched.s_bits - 2 downto 0 do
      w_sqr t sc ~dst:!other !cur;
      (let x = !cur in cur := !other; other := x);
      if B.testbit e i then begin
        w_mul t sc ~dst:!other !cur sc.wbm;
        (let x = !cur in cur := !other; other := x)
      end
    done;
    Array.fill sc.wprod 0 ((2 * k) + 1) 0;
    Array.blit !cur 0 sc.wprod 0 k;
    redc ~n:t.wn ~k ~n0':t.wn0' ~dst sc.wprod

  let powm_auto_loaded t sc sched ~dst =
    if sparse_profitable sched then powm_sparse_loaded t sc sched ~dst
    else powm_loaded t sc sched ~dst

  let run_powm walk t sc sched b =
    w_check_width t sc;
    Tangled_obs.Obs.observe modpow_bits (float_of_int sched.s_bits);
    if sched.s_bits = 0 then B.one
    else begin
      load_base t sc b;
      walk t sc sched ~dst:sc.wt0;
      bigint_of_limbs sc.wt0
    end

  let powm t sc sched b = run_powm powm_loaded t sc sched b
  let powm_sparse t sc sched b = run_powm powm_sparse_loaded t sc sched b
  let powm_auto t sc sched b = run_powm powm_auto_loaded t sc sched b

  (* --- in-plane CRT recombination -------------------------------------

     sig = m2 + q * (qinv * (m1 - m2) mod p), with qinv held in
     Montgomery form so the modular multiply is one kernel call, and
     the final q-multiply a plain 2k-limb schoolbook product.  Assumes
     p and q have the same limb count and q < 2p (both hold for RSA
     primes of equal bit length), so m2 mod p is at most one
     subtraction away.  Writes the signature big-endian into [out]
     and never allocates. *)

  let crt_combine ~pctx ~psc ~qinv_m ~qlimbs ~m1 ~m2 ~out =
    let k = pctx.wk in
    let n = pctx.wn in
    (* wt0 := m2 mod p (m2 < q < 2p) *)
    if ge_from m2 n (k - 1) then begin
      let borrow = ref 0 in
      for j = 0 to k - 1 do
        let d = m2.(j) - n.(j) - !borrow in
        if d < 0 then begin
          psc.wt0.(j) <- d + wbase;
          borrow := 1
        end
        else begin
          psc.wt0.(j) <- d;
          borrow := 0
        end
      done
    end
    else Array.blit m2 0 psc.wt0 0 k;
    (* wt1 := (m1 - wt0) mod p *)
    let borrow = ref 0 in
    for j = 0 to k - 1 do
      let d = m1.(j) - psc.wt0.(j) - !borrow in
      if d < 0 then begin
        psc.wt1.(j) <- d + wbase;
        borrow := 1
      end
      else begin
        psc.wt1.(j) <- d;
        borrow := 0
      end
    done;
    if !borrow <> 0 then begin
      let c = ref 0 in
      for j = 0 to k - 1 do
        let s = psc.wt1.(j) + n.(j) + !c in
        psc.wt1.(j) <- s land wmask;
        c := s lsr wbits
      done
    end;
    (* wt0 := qinv * (m1 - m2) mod p — Montgomery-form qinv against the
       plain difference gives the plain product *)
    w_mul pctx psc ~dst:psc.wt0 qinv_m psc.wt1;
    (* wprod := h * q + m2 *)
    mul_sb ~dst:psc.wprod ~doff:0 psc.wt0 0 k qlimbs 0 k;
    let c = ref 0 in
    for j = 0 to k - 1 do
      let s = Array.unsafe_get psc.wprod j + Array.unsafe_get m2 j + !c in
      Array.unsafe_set psc.wprod j (s land wmask);
      c := s lsr wbits
    done;
    let idx = ref k in
    while !c <> 0 do
      let s = psc.wprod.(!idx) + !c in
      psc.wprod.(!idx) <- s land wmask;
      c := s lsr wbits;
      incr idx
    done;
    write_bytes_be psc.wprod (2 * k) out

  (* Montgomery form of a packed value, via the scratch table row 15
     (free at call time); used to precompute qinv_m once per key *)
  let to_mont_limbs t sc x =
    let r = Array.make t.wk 0 in
    w_mul t sc ~dst:r x t.wr2;
    r

  (* --- test hooks ------------------------------------------------------ *)

  module Internal = struct
    let karatsuba_threshold = karatsuba_threshold
    let integrated_max_k = integrated_max_k

    let pack x =
      let bits = Stdlib.max 1 (B.bit_length x) in
      let k = (bits + wbits - 1) / wbits in
      pack_mag ~k (B.Internal.mag x)

    let unpack = bigint_of_limbs

    (* full product with an explicit schoolbook cutover, for the
       QCheck karatsuba == schoolbook cross-oracle; asymmetric
       operands are zero-extended to the longer length *)
    let mul_limbs ~threshold a b =
      let ka = Array.length a and kb = Array.length b in
      let n = Stdlib.max ka kb in
      if threshold < 1 then invalid_arg "Wide.Internal.mul_limbs: threshold < 1";
      let dst = Array.make (2 * n) 0 in
      if n <= threshold then
        if ka >= kb then mul_sb ~dst ~doff:0 a 0 ka b 0 kb
        else mul_sb ~dst ~doff:0 b 0 kb a 0 ka
      else begin
        let pad x kx =
          if kx = n then x
          else begin
            let r = Array.make n 0 in
            Array.blit x 0 r 0 kx;
            r
          end
        in
        let scr = Array.make (kar_scratch_size n) 0 in
        mul_kar ~th:threshold ~scr ~soff:0 ~dst ~doff:0 (pad a ka) 0 (pad b kb) 0 n
      end;
      dst

    let sqr_limbs ~threshold a =
      let n = Array.length a in
      if threshold < 1 then invalid_arg "Wide.Internal.sqr_limbs: threshold < 1";
      let dst = Array.make (2 * n) 0 in
      if n <= threshold then sqr_sb ~dst ~doff:0 a 0 n
      else begin
        let scr = Array.make (kar_scratch_size n) 0 in
        sqr_kar ~th:threshold ~scr ~soff:0 ~dst ~doff:0 a 0 n
      end;
      dst
  end
end
