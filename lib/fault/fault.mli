(** Deterministic fault injection over serialized datasets.

    The measurement pipeline's field data — Netalyzr session uploads
    and Notary chain records — arrives truncated, duplicated,
    clock-skewed and malformed in the real world.  This module turns a
    pristine JSONL export (one manifest line followed by one record
    per line, see {!Tangled_core.Export}) into a realistically damaged
    one, deterministically from a seed, and returns a ledger tagging
    every injected fault so the ingestion layer's quarantine can be
    audited fault-by-fault. *)

type kind =
  | Bit_flip
      (** one bit of the serialized record flipped in transit.  The
          flip lands in the record's structural prefix so corruption is
          always {e detectable} (broken syntax or a renamed required
          field); silent payload-content flips are a data-integrity
          threat model, not a robustness one, and are out of scope. *)
  | Truncate  (** the upload stopped mid-record: a strict prefix survives *)
  | Drop  (** the record never arrived *)
  | Duplicate  (** a replayed upload: the record arrives twice *)
  | Missing_field  (** a required field is absent from the record *)
  | Type_confusion  (** a field carries a value of the wrong JSON type *)
  | Clock_skew
      (** the record's timestamp is far outside the plausible
          collection window (a device with a broken clock) *)
  | Identity_conflict
      (** a replayed session id carrying a {e different} identity
          tuple — two uploads that cannot both be true *)

val all_kinds : kind list
val kind_to_string : kind -> string

(** {1 Severity}

    Whether a fault of this kind is worth retrying.  The serving
    layer's retry/backoff policy keys on this split: a {e transient}
    fault is transport-induced — the pristine source still exists, so
    re-reading (re-requesting the upload, re-opening the store
    snapshot) can plausibly succeed.  A {e permanent} fault is poison
    at the source — the bytes that arrive on retry are the same bad
    bytes, so the only correct move is to quarantine and answer with a
    typed error. *)

type severity =
  | Transient
      (** retryable: {!Bit_flip}, {!Truncate}, {!Drop}, {!Duplicate} —
          corruption or loss in transit; the sender's copy is intact *)
  | Permanent
      (** poison: {!Missing_field}, {!Type_confusion}, {!Clock_skew},
          {!Identity_conflict} — the record was already wrong when it
          was produced; retrying re-reads the same wrong record *)

val classify : kind -> severity
val severity_to_string : severity -> string

type injection = {
  seq : int;  (** injection ordinal, 0-based *)
  kind : kind;
  record : int;  (** 0-based index of the victim in the clean record stream *)
  key : string option;
      (** the record's identity (session id / subject) when parseable *)
  field : string option;  (** field targeted by field-level faults *)
  out_line : int option;
      (** 1-based line of the faulty record in the corrupted document
          (the manifest is line 1); [None] for {!Drop} *)
  note : string;  (** human-readable description of what was done *)
}

val inject :
  seed:int -> rate:float -> ?kinds:kind list -> string -> string * injection list
(** [inject ~seed ~rate doc] corrupts the JSONL document [doc]: each
    record independently suffers one fault with probability [rate],
    the kind drawn uniformly from [kinds] (default {!all_kinds})
    filtered to those applicable to the record.  The manifest line is
    never touched.  Deterministic in [seed]; [rate = 0] is the
    identity.  Returns the corrupted document and the ledger in
    record order. *)
