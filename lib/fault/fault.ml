module J = Tangled_util.Json
module Prng = Tangled_util.Prng

type kind =
  | Bit_flip
  | Truncate
  | Drop
  | Duplicate
  | Missing_field
  | Type_confusion
  | Clock_skew
  | Identity_conflict

let all_kinds =
  [ Bit_flip; Truncate; Drop; Duplicate; Missing_field; Type_confusion;
    Clock_skew; Identity_conflict ]

let kind_to_string = function
  | Bit_flip -> "bit-flip"
  | Truncate -> "truncate"
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Missing_field -> "missing-field"
  | Type_confusion -> "type-confusion"
  | Clock_skew -> "clock-skew"
  | Identity_conflict -> "identity-conflict"

type severity = Transient | Permanent

(* Transport-induced damage (the sender's copy survives, a retry can
   see clean bytes) vs source-side poison (a retry re-reads the same
   wrong record). *)
let classify = function
  | Bit_flip | Truncate | Drop | Duplicate -> Transient
  | Missing_field | Type_confusion | Clock_skew | Identity_conflict -> Permanent

let severity_to_string = function
  | Transient -> "transient"
  | Permanent -> "permanent"

type injection = {
  seq : int;
  kind : kind;
  record : int;
  key : string option;
  field : string option;
  out_line : int option;
  note : string;
}

let timestamp_fields = [ "timestamp"; "not_before"; "not_after" ]

let record_key json =
  match J.member "session_id" json with
  | Some (J.Int n) -> Some (string_of_int n)
  | _ -> (
      match J.member "subject" json with Some (J.String s) -> Some s | _ -> None)

(* A wrong-typed replacement that no schema coercion can accept. *)
let confuse = function
  | J.Int _ -> J.String "forty-two"
  | J.Float _ -> J.Bool false
  | J.String _ -> J.Int 42
  | J.Bool _ -> J.String "yes"
  | J.List _ -> J.Int 0
  | J.Obj _ -> J.Int 0
  | J.Null -> J.Int 0

(* Flip one bit of one of the first 8 bytes, avoiding flips that
   produce a record separator (which would split the line in two and
   make the fault unaccountable). *)
let bit_flip rng line =
  let n = String.length line in
  let pos = Prng.int rng (min 8 n) in
  let orig = Char.code line.[pos] in
  let rec pick_bit tries bit =
    let flipped = orig lxor (1 lsl bit) in
    if tries = 0 then None
    else if flipped <> Char.code '\n' && flipped <> Char.code '\r' then Some flipped
    else pick_bit (tries - 1) ((bit + 1) mod 8)
  in
  match pick_bit 8 (Prng.int rng 8) with
  | None -> (line, "no safe bit")
  | Some flipped ->
      let b = Bytes.of_string line in
      Bytes.set b pos (Char.chr flipped);
      ( Bytes.to_string b,
        Printf.sprintf "byte %d: %#04x -> %#04x" pos orig flipped )

let skewed_timestamp rng =
  if Prng.bool rng then "2098-01-17 03:22:41 UTC" else "1969-12-31 23:59:59 UTC"

let set_field obj field value =
  match obj with
  | J.Obj fields ->
      J.Obj (List.map (fun (k, v) -> if k = field then (k, value) else (k, v)) fields)
  | other -> other

let applicable json line_len = function
  | Bit_flip -> line_len > 0
  | Truncate -> line_len >= 2
  | Drop | Duplicate -> true
  | Missing_field | Type_confusion -> (
      match json with Some (J.Obj (_ :: _)) -> true | _ -> false)
  | Clock_skew -> (
      match json with
      | Some (J.Obj fields) ->
          List.exists (fun f -> List.mem_assoc f fields) timestamp_fields
      | _ -> false)
  | Identity_conflict -> (
      match json with
      | Some (J.Obj fields) ->
          List.mem_assoc "session_id" fields && List.mem_assoc "public_ip" fields
      | _ -> false)

let inject ~seed ~rate ?(kinds = all_kinds) doc =
  let rng = Prng.create seed in
  let lines = String.split_on_char '\n' doc |> List.filter (fun l -> l <> "") in
  let header, records =
    match lines with [] -> ("", []) | h :: rest -> (h, rest)
  in
  let out = Buffer.create (String.length doc) in
  let out_line = ref 1 in
  let emit line =
    Buffer.add_string out line;
    Buffer.add_char out '\n';
    incr out_line
  in
  emit header;
  let ledger = ref [] in
  let seq = ref 0 in
  List.iteri
    (fun i line ->
      if not (Prng.bernoulli rng rate) then emit line
      else begin
        let json = match J.parse line with Ok j -> Some j | Error _ -> None in
        let usable =
          List.filter (applicable json (String.length line)) kinds
        in
        match usable with
        | [] -> emit line
        | _ ->
            let kind = Prng.choose rng (Array.of_list usable) in
            let key = Option.bind json record_key in
            let record seq_kind field out_l note =
              Tangled_obs.Obs.event "fault.injected"
                ~fields:
                  [
                    ("kind", kind_to_string seq_kind);
                    ("record", string_of_int i);
                  ];
              ledger :=
                { seq = !seq; kind = seq_kind; record = i; key; field;
                  out_line = out_l; note }
                :: !ledger;
              incr seq
            in
            (match (kind, json) with
            | Bit_flip, _ ->
                let at = !out_line in
                let corrupted, note = bit_flip rng line in
                emit corrupted;
                record Bit_flip None (Some at) note
            | Truncate, _ ->
                let at = !out_line in
                let cut = 1 + Prng.int rng (String.length line - 1) in
                emit (String.sub line 0 cut);
                record Truncate None (Some at)
                  (Printf.sprintf "cut at byte %d of %d" cut (String.length line))
            | Drop, _ -> record Drop None None "record never uploaded"
            | Duplicate, _ ->
                emit line;
                let at = !out_line in
                emit line;
                record Duplicate None (Some at) "replayed verbatim"
            | Missing_field, Some (J.Obj fields) ->
                let field, _ = Prng.choose rng (Array.of_list fields) in
                let stripped =
                  J.Obj (List.filter (fun (k, _) -> k <> field) fields)
                in
                let at = !out_line in
                emit (J.to_string stripped);
                record Missing_field (Some field) (Some at) ("removed " ^ field)
            | Type_confusion, Some (J.Obj fields) ->
                let field, v = Prng.choose rng (Array.of_list fields) in
                let at = !out_line in
                emit (J.to_string (set_field (J.Obj fields) field (confuse v)));
                record Type_confusion (Some field) (Some at)
                  ("retyped " ^ field)
            | Clock_skew, Some (J.Obj fields) ->
                let candidates =
                  List.filter (fun f -> List.mem_assoc f fields) timestamp_fields
                in
                let field = Prng.choose rng (Array.of_list candidates) in
                let skewed = skewed_timestamp rng in
                let at = !out_line in
                emit
                  (J.to_string (set_field (J.Obj fields) field (J.String skewed)));
                record Clock_skew (Some field) (Some at)
                  (Printf.sprintf "%s := %s" field skewed)
            | Identity_conflict, Some (J.Obj fields) ->
                emit line;
                let conflicting =
                  set_field (J.Obj fields) "public_ip"
                    (J.String (Printf.sprintf "203.0.113.%d" (Prng.int_in rng 1 254)))
                in
                let at = !out_line in
                emit (J.to_string conflicting);
                record Identity_conflict (Some "public_ip") (Some at)
                  "replayed with conflicting identity"
            | (Missing_field | Type_confusion | Clock_skew | Identity_conflict), _ ->
                (* applicability filter guarantees Obj; keep total anyway *)
                emit line)
      end)
    records;
  (Buffer.contents out, List.rev !ledger)
