module C = Tangled_x509.Certificate
module Dn = Tangled_x509.Dn
module Rs = Tangled_store.Root_store
module Ts = Tangled_util.Timestamp
module Rsa = Tangled_crypto.Rsa
module B = Tangled_numeric.Bigint
module Obs = Tangled_obs.Obs

(* --- signature-verification decision cache ---------------------------- *)

(* The Notary re-validates the same CA-signed intermediates thousands
   of times across chains, and every Netalyzr probe re-walks the same
   few server chains per handset.  An RSA verification is pure in
   (issuer key, TBS bytes, signature), so its verdict is cached.

   The cache key is (issuer equivalence key, issuer public exponent,
   SHA-256 of the TBS, signature bytes): the equivalence key carries
   the issuer's subject DN and modulus — the issuer-key fingerprint —
   the exponent completes the verifying key, and the TBS digest is the
   certificate fingerprint, covering both the signed bytes and the
   signature algorithm (which is encoded inside the TBS).  The store
   epoch is the third key component: {!clear_verify_cache} bumps a
   process-global epoch that every per-domain cache syncs to before
   lookup, so invalidation is O(1) and reaches workers lazily.

   PR 3's memo was an unbounded Hashtbl — a long-lived serve session
   or a 1.9 M-cert scale run grew it without limit.  It is now a
   bounded CLOCK cache from lib/cache: at most [capacity] verdicts
   per domain, evicting second-chance, so resident memory is provably
   capped for the life of the process.

   Caches are domain-local, so parallel Notary workers never contend
   or race; the hit/miss/eviction counters are process-global atomics
   surfaced through Obs (under the trace's volatile member) next to
   the span tree, and every real (cache-missing) verification lands
   its wall-clock in a latency histogram. *)

module Cache = Tangled_cache.Cache

let verify_latency = Obs.histogram "chain.verify_seconds"

(* per-chain validation latency, the instrument the obs report section
   quotes p50/p90/p99 from.  Sampled 1-in-8: a cached validate is
   ~12us and the two clock reads plus bucket update cost ~100ns, so
   sampling keeps the hot-path overhead near a single atomic tick
   while the quantiles stay statistically representative.  The
   hit/miss counters above are never sampled — they stay exact. *)
let validate_latency = Obs.histogram "chain.validate_seconds"
let validate_sample_every = 8
let validate_tick = Atomic.make 0

(* process-global knobs: the store epoch (bumped on invalidation and
   synced lazily into each per-domain cache), the capacity every new
   per-domain instance is born with, and the enable flag the QCheck
   cached-vs-uncached oracle and the bench ablations flip *)
let store_epoch = Atomic.make 0
let cache_enabled = Atomic.make true
let cache_capacity = Atomic.make 8192

let set_verify_cache_enabled b = Atomic.set cache_enabled b

let set_verify_cache_capacity n =
  if n < 1 then invalid_arg "Chain.set_verify_cache_capacity: capacity must be >= 1";
  Atomic.set cache_capacity n

let cache_slot : bool Cache.t ref Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      ref
        (Cache.create ~name:"chain.decisions"
           ~capacity:(Atomic.get cache_capacity) ()))

(* this domain's decision cache, rebuilt if the configured capacity
   changed and re-synced to the current store epoch — a stale epoch
   logically empties it in O(1) *)
let decision_cache () =
  let slot = Domain.DLS.get cache_slot in
  if Cache.capacity !slot <> Atomic.get cache_capacity then
    slot :=
      Cache.create ~name:"chain.decisions" ~capacity:(Atomic.get cache_capacity) ();
  Cache.set_epoch !slot (Atomic.get store_epoch);
  !slot

let verify_cert ~issuer cert =
  let verify () =
    Obs.time_histogram verify_latency (fun () ->
        C.verify_signature cert ~issuer_key:issuer.C.public_key)
  in
  if not (Atomic.get cache_enabled) then verify ()
  else begin
    let key =
      (* one streaming SHA-256 over the components gives a fixed
         32-byte key instead of concatenating them (the old key also
         digested the TBS separately, so this is one hash pass rather
         than hash + concat) *)
      let ctx = Tangled_hash.Sha256.init () in
      let feed_delim s =
        Tangled_hash.Sha256.feed ctx s;
        Tangled_hash.Sha256.feed ctx "\x00"
      in
      feed_delim (C.equivalence_key issuer);
      feed_delim (B.to_bytes_be issuer.C.public_key.Rsa.e);
      feed_delim cert.C.tbs_der;
      Tangled_hash.Sha256.feed ctx cert.C.signature;
      Tangled_hash.Sha256.finalize ctx
    in
    let cache = decision_cache () in
    match Cache.find cache key with
    | Some verdict -> verdict
    | None ->
        let verdict = verify () in
        Cache.add cache key verdict;
        verdict
  end

let verify_cache_stats () =
  let s = Cache.stats (decision_cache ()) in
  (s.Cache.hits, s.Cache.misses)

let verify_cache_info () = Cache.stats (decision_cache ())

let clear_verify_cache () =
  Obs.event "chain.verify_cache_cleared";
  Atomic.incr store_epoch

type failure =
  | No_trusted_root
  | Bad_signature of Dn.t
  | Expired of Dn.t
  | Not_yet_valid of Dn.t
  | Not_a_ca of Dn.t
  | Path_len_exceeded of Dn.t
  | Wrong_key_usage of Dn.t
  | Chain_too_long

let failure_to_string = function
  | No_trusted_root -> "no trusted root anchors the chain"
  | Bad_signature dn -> "bad signature on " ^ Dn.to_string dn
  | Expired dn -> "certificate expired: " ^ Dn.to_string dn
  | Not_yet_valid dn -> "certificate not yet valid: " ^ Dn.to_string dn
  | Not_a_ca dn -> "issuer is not a CA: " ^ Dn.to_string dn
  | Path_len_exceeded dn -> "pathLenConstraint exceeded at " ^ Dn.to_string dn
  | Wrong_key_usage dn -> "leaf does not allow TLS server auth: " ^ Dn.to_string dn
  | Chain_too_long -> "chain exceeds maximum depth"

type result = {
  verdict : (C.t, failure) Stdlib.result;
  path : C.t list;
}

let time_failure now cert =
  if Ts.compare now cert.C.not_before < 0 then Some (Not_yet_valid cert.C.subject)
  else if Ts.compare cert.C.not_after now < 0 then Some (Expired cert.C.subject)
  else None

(* Depth-first path search.  At each step the current certificate's
   issuer DN selects candidates, first among store roots (terminating)
   then among the presented pool (extending).  The first fully-valid
   path wins; failures are remembered so the most informative one is
   reported when nothing works. *)
let validate_body ~max_depth ~check_server_auth ~now ~store chain =
  match chain with
  | [] -> invalid_arg "Chain.validate: empty chain"
  | leaf :: rest ->
      let best_failure = ref None in
      let note f = if !best_failure = None then best_failure := Some f in
      let pool = rest in
      let rec extend cert path depth children =
        (* [children] counts non-self-issued certs below [cert], the
           quantity pathLenConstraint bounds *)
        if depth > max_depth then begin
          note Chain_too_long;
          None
        end
        else begin
          (* try to terminate at a trusted root *)
          let store_candidates = Rs.find_by_subject store cert.C.issuer in
          let terminated =
            List.find_map
              (fun (entry : Rs.entry) ->
                let root = entry.Rs.cert in
                match time_failure now root with
                | Some f ->
                    note f;
                    None
                | None ->
                    if verify_cert ~issuer:root cert then Some root
                    else begin
                      note (Bad_signature cert.C.subject);
                      None
                    end)
              store_candidates
          in
          match terminated with
          | Some root -> Some (root, List.rev path)
          | None ->
              (* extend through a presented intermediate *)
              let candidates =
                List.filter
                  (fun c ->
                    Dn.equal c.C.subject cert.C.issuer
                    && not (List.exists (fun p -> C.byte_identity p = C.byte_identity c) path))
                  pool
              in
              List.find_map
                (fun inter ->
                  match time_failure now inter with
                  | Some f ->
                      note f;
                      None
                  | None ->
                      if not (C.is_ca inter) then begin
                        note (Not_a_ca inter.C.subject);
                        None
                      end
                      else begin
                        let plen_ok =
                          match inter.C.extensions.C.basic_constraints with
                          | Some (true, Some limit) -> children <= limit
                          | _ -> true
                        in
                        if not plen_ok then begin
                          note (Path_len_exceeded inter.C.subject);
                          None
                        end
                        else if verify_cert ~issuer:inter cert then begin
                          let self_issued = Dn.equal inter.C.subject inter.C.issuer in
                          extend inter (inter :: path) (depth + 1)
                            (if self_issued then children else children + 1)
                        end
                        else begin
                          note (Bad_signature cert.C.subject);
                          None
                        end
                      end)
                candidates
        end
      in
      let leaf_check =
        match time_failure now leaf with
        | Some f -> Some f
        | None ->
            if check_server_auth && not (C.allows_server_auth leaf) then
              Some (Wrong_key_usage leaf.C.subject)
            else None
      in
      (match leaf_check with
      | Some f -> { verdict = Error f; path = [ leaf ] }
      | None -> (
          match extend leaf [ leaf ] 0 0 with
          | Some (root, path) -> { verdict = Ok root; path }
          | None ->
              let f = Option.value ~default:No_trusted_root !best_failure in
              { verdict = Error f; path = [ leaf ] }))

let validate ?(max_depth = 8) ?(check_server_auth = true) ~now ~store chain =
  if Obs.enabled () && Atomic.fetch_and_add validate_tick 1 mod validate_sample_every = 0
  then
    Obs.time_histogram validate_latency (fun () ->
        validate_body ~max_depth ~check_server_auth ~now ~store chain)
  else validate_body ~max_depth ~check_server_auth ~now ~store chain

let validate_ok ?max_depth ?check_server_auth ~now ~store chain =
  match (validate ?max_depth ?check_server_auth ~now ~store chain).verdict with
  | Ok _ -> true
  | Error _ -> false

let anchor_key ~now ~store chain =
  match (validate ~now ~store chain).verdict with
  | Ok root -> Some (C.equivalence_key root)
  | Error _ -> None

let anchor_id ~interner ~now ~store chain =
  match (validate ~now ~store chain).verdict with
  | Ok root -> Tangled_engine.Interner.find interner (C.equivalence_key root)
  | Error _ -> None
