(** X.509 chain building and verification against a root store — the
    client-side half of both Netalyzr's trust-chain probes and the
    Notary's per-store validation counts. *)

val verify_cert :
  issuer:Tangled_x509.Certificate.t -> Tangled_x509.Certificate.t -> bool
(** [verify_cert ~issuer cert] is [Certificate.verify_signature cert
    ~issuer_key:issuer.public_key] behind a domain-local bounded
    decision cache (lib/cache CLOCK, default capacity 8192) keyed by
    (store epoch, issuer-key fingerprint, certificate fingerprint) —
    concretely a SHA-256 over the issuer equivalence key, issuer
    exponent, TBS bytes and signature, epoch-checked on lookup.  The
    Notary and Netalyzr re-verify the same CA-signed intermediates
    thousands of times; the cache collapses each distinct (issuer,
    certificate) pair to one RSA operation per domain while keeping
    resident memory capped at the configured capacity. *)

val verify_cache_stats : unit -> int * int
(** Process-wide [(hits, misses)] of the decision cache, summed over
    all domains. *)

val verify_cache_info : unit -> Tangled_cache.Cache.stats
(** Full cache statistics: process-wide hit/miss/eviction counters
    plus the calling domain's live-entry count, capacity and epoch. *)

val clear_verify_cache : unit -> unit
(** Bump the process-global store epoch: every domain's cached
    verdicts become logically dead and are reclaimed lazily (bench
    cold-path runs, store mutations). *)

val set_verify_cache_enabled : bool -> unit
(** Bypass the decision cache entirely when [false] (every call
    verifies); decisions are byte-identical either way — the QCheck
    cached-vs-uncached oracle pins this.  Default [true]. *)

val set_verify_cache_capacity : int -> unit
(** Capacity for per-domain caches (existing instances are rebuilt on
    next use).  @raise Invalid_argument when [< 1].  Default 8192. *)

type failure =
  | No_trusted_root
      (** no enabled store entry terminates any candidate path *)
  | Bad_signature of Tangled_x509.Dn.t
      (** the certificate with this subject fails verification *)
  | Expired of Tangled_x509.Dn.t
  | Not_yet_valid of Tangled_x509.Dn.t
  | Not_a_ca of Tangled_x509.Dn.t
      (** an intermediate without CA basicConstraints *)
  | Path_len_exceeded of Tangled_x509.Dn.t
  | Wrong_key_usage of Tangled_x509.Dn.t
      (** leaf refused for serverAuth by its EKU *)
  | Chain_too_long

val failure_to_string : failure -> string

type result = {
  verdict : (Tangled_x509.Certificate.t, failure) Stdlib.result;
      (** on success, the trusted root that anchors the chain *)
  path : Tangled_x509.Certificate.t list;
      (** leaf-first path considered (root excluded) *)
}

val validate :
  ?max_depth:int ->
  ?check_server_auth:bool ->
  now:Tangled_util.Timestamp.t ->
  store:Tangled_store.Root_store.t ->
  Tangled_x509.Certificate.t list ->
  result
(** [validate ~now ~store chain] takes the server-presented chain
    (leaf first, any order and junk tolerated after the leaf) and
    attempts to build a path from the leaf to a store-trusted root:

    - candidate issuers are found by subject/issuer DN chaining among
      the presented certificates and the store;
    - every signature on the path is verified cryptographically;
    - validity windows are checked at [now];
    - intermediates must be CAs and honour pathLenConstraint;
    - with [check_server_auth] (default true) the leaf must allow TLS
      server authentication.

    [max_depth] bounds the path length (default 8).
    @raise Invalid_argument on an empty chain. *)

val validate_ok :
  ?max_depth:int ->
  ?check_server_auth:bool ->
  now:Tangled_util.Timestamp.t ->
  store:Tangled_store.Root_store.t ->
  Tangled_x509.Certificate.t list ->
  bool
(** [validate_ok] is [validate] collapsed to a boolean. *)

val anchor_key :
  now:Tangled_util.Timestamp.t ->
  store:Tangled_store.Root_store.t ->
  Tangled_x509.Certificate.t list ->
  string option
(** On success, the equivalence key of the anchoring root — what the
    Notary aggregates per-root validation counts by. *)

val anchor_id :
  interner:Tangled_engine.Interner.t ->
  now:Tangled_util.Timestamp.t ->
  store:Tangled_store.Root_store.t ->
  Tangled_x509.Certificate.t list ->
  int option
(** {!anchor_key} projected onto the universe's interned root ids —
    the form the coverage index consumes.  [None] when the chain does
    not validate or the anchoring root was never interned. *)
