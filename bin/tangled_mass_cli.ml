(* tangled-mass — command-line front end for the reproduction.

   Subcommands:
     tables    render one or all of the paper's tables
     figures   render one of the paper's figures
     report    run the full study and print every artefact
     stores    inspect the synthetic official root stores
     intercept run the §7 interception case study
*)

open Cmdliner

module Pipeline = Tangled_core.Pipeline
module Report = Tangled_core.Report
module Obs = Tangled_obs.Obs

let setup_logs style_renderer level =
  Fmt_tty.setup_std_outputs ?style_renderer ();
  Logs.set_level level;
  Logs.set_reporter (Logs_fmt.reporter ())

let logs_term =
  Term.(const setup_logs $ Fmt_cli.style_renderer () $ Logs_cli.level ())

let seed_arg =
  let doc = "Seed for the deterministic world generation." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let sessions_arg =
  let doc = "Number of Netalyzr sessions to simulate (paper: 15970)." in
  Arg.(value & opt int Pipeline.default_config.Pipeline.sessions
       & info [ "sessions" ] ~docv:"N" ~doc)

let leaves_arg =
  let doc =
    "Number of unexpired Notary leaf certificates (paper scale ~1000000; \
     the default trades absolute counts for runtime — fractions are \
     scale-invariant)."
  in
  Arg.(value & opt int Pipeline.default_config.Pipeline.notary_leaves
       & info [ "leaves" ] ~docv:"N" ~doc)

let key_bits_arg =
  let doc = "RSA modulus size for every generated key." in
  Arg.(value & opt int 384 & info [ "key-bits" ] ~docv:"BITS" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the Notary build phase; 0 (the default) picks \
     automatically from the machine's core count.  Output is byte-identical \
     at any value."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let csv_dir_arg =
  let doc = "Also dump each artefact's data as CSV into this directory." in
  Arg.(value & opt (some string) None & info [ "csv-dir" ] ~docv:"DIR" ~doc)

(* Flags the measurement subcommands (report, analyze, chaos, ingest)
   accept uniformly, so instrumentation is driven the same way
   everywhere.  `ingest` takes --seed/--jobs for interface uniformity
   even though replaying a recorded dataset uses neither. *)
type common = { seed : int; jobs : int; trace_out : string option }

let trace_out_arg =
  let doc =
    "Write the run's observability trace (spans, counters, histograms, \
     events) as JSONL to $(docv).  Nondeterministic measurements live \
     under each line's 'volatile' member, so the rest of the trace is \
     byte-identical at any $(b,--jobs)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let common_term =
  let make seed jobs trace_out = { seed; jobs; trace_out } in
  Term.(const make $ seed_arg $ jobs_arg $ trace_out_arg)

let write_trace ~jobs common =
  match common.trace_out with
  | None -> ()
  | Some path ->
      let trace = Obs.trace_jsonl ~jobs () in
      (match Obs.validate_trace trace with
      | Ok () -> ()
      | Error e -> Logs.err (fun m -> m "trace failed self-validation: %s" e));
      Tangled_core.Export.write_text path trace;
      Logs.app (fun m -> m "wrote trace %s" path)

let config_of seed sessions leaves key_bits jobs =
  {
    Pipeline.default_config with
    Pipeline.seed;
    sessions;
    notary_leaves = leaves;
    key_bits;
    jobs;
  }

let build_world ?(jobs = 0) seed sessions leaves key_bits =
  Logs.app (fun m -> m "building world (seed %d, %d sessions, %d leaves, %d-bit keys)..."
               seed sessions leaves key_bits);
  let t0 = Unix.gettimeofday () in
  let world = Pipeline.run ~config:(config_of seed sessions leaves key_bits jobs) () in
  Logs.app (fun m -> m "world ready in %.1fs (jobs %d)"
               (Unix.gettimeofday () -. t0) world.Pipeline.jobs);
  world

(* --- tables / figures ------------------------------------------------ *)

let render_artefacts world names csv_dir =
  List.iter
    (fun name ->
      print_endline (Report.render_one world name);
      print_newline ();
      match csv_dir with
      | Some dir ->
          let header, rows = Report.csv_one world name in
          Tangled_util.Csv.write_file (Filename.concat dir (name ^ ".csv")) ~header rows
      | None -> ())
    names

let tables_cmd =
  let which =
    let doc = "Table number to render (1-6); defaults to all." in
    Arg.(value & opt (some int) None & info [ "t"; "table" ] ~docv:"N" ~doc)
  in
  let run () seed sessions leaves key_bits which csv_dir =
    let world = build_world seed sessions leaves key_bits in
    let names =
      match which with
      | Some n when n >= 1 && n <= 6 -> [ Printf.sprintf "table%d" n ]
      | Some n -> invalid_arg (Printf.sprintf "no table %d in the paper" n)
      | None -> [ "table1"; "table2"; "table3"; "table4"; "table5"; "table6" ]
    in
    render_artefacts world names csv_dir
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Regenerate the paper's tables")
    Term.(const run $ logs_term $ seed_arg $ sessions_arg $ leaves_arg
          $ key_bits_arg $ which $ csv_dir_arg)

let figures_cmd =
  let which =
    let doc = "Figure number to render (1-3); defaults to all." in
    Arg.(value & opt (some int) None & info [ "f"; "figure" ] ~docv:"N" ~doc)
  in
  let run () seed sessions leaves key_bits which csv_dir =
    let world = build_world seed sessions leaves key_bits in
    let names =
      match which with
      | Some n when n >= 1 && n <= 3 -> [ Printf.sprintf "figure%d" n ]
      | Some n -> invalid_arg (Printf.sprintf "no figure %d in the paper" n)
      | None -> [ "figure1"; "figure2"; "figure3" ]
    in
    render_artefacts world names csv_dir
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate the paper's figures")
    Term.(const run $ logs_term $ seed_arg $ sessions_arg $ leaves_arg
          $ key_bits_arg $ which $ csv_dir_arg)

let report_cmd =
  let run () common sessions leaves key_bits csv_dir =
    let world = build_world ~jobs:common.jobs common.seed sessions leaves key_bits in
    print_string (Report.run_all ?csv_dir world);
    print_newline ();
    print_string (Obs.render ());
    write_trace ~jobs:world.Pipeline.jobs common
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Run the whole study: every table and figure")
    Term.(const run $ logs_term $ common_term $ sessions_arg $ leaves_arg
          $ key_bits_arg $ csv_dir_arg)

(* --- stores ----------------------------------------------------------- *)

let stores_cmd =
  let store_arg =
    let doc = "Which store to show: aosp41, aosp42, aosp43, aosp44, mozilla, ios7." in
    Arg.(value & opt string "aosp44" & info [ "store" ] ~docv:"NAME" ~doc)
  in
  let pem_arg =
    let doc = "Dump the store as concatenated PEM on stdout." in
    Arg.(value & flag & info [ "pem" ] ~doc)
  in
  let cacerts_arg =
    let doc =
      "Write the store as an Android cacerts directory (one <hash>.N PEM file \
       per root, like /system/etc/security/cacerts)."
    in
    Arg.(value & opt (some string) None & info [ "cacerts-dir" ] ~docv:"DIR" ~doc)
  in
  let run () seed key_bits store pem cacerts_dir =
    let module BP = Tangled_pki.Blueprint in
    let module PD = Tangled_pki.Paper_data in
    let module Rs = Tangled_store.Root_store in
    let universe = BP.build ~key_bits ~seed () in
    let target =
      match store with
      | "aosp41" -> universe.BP.aosp PD.V4_1
      | "aosp42" -> universe.BP.aosp PD.V4_2
      | "aosp43" -> universe.BP.aosp PD.V4_3
      | "aosp44" -> universe.BP.aosp PD.V4_4
      | "mozilla" -> universe.BP.mozilla
      | "ios7" -> universe.BP.ios7
      | other -> invalid_arg ("unknown store " ^ other)
    in
    match cacerts_dir with
    | Some dir -> (
        match Tangled_store.Cacerts_dir.write target dir with
        | Ok n -> Printf.printf "wrote %d certificates to %s\n" n dir
        | Error m ->
            prerr_endline ("stores: " ^ m);
            exit 1)
    | None ->
        if pem then print_string (Rs.to_pem target)
        else begin
          Printf.printf "%s: %d certificates\n" (Rs.name target) (Rs.cardinal target);
          List.iter
            (fun c ->
              Printf.printf "  %s  %s\n"
                (Tangled_x509.Certificate.subject_hash32 c)
                (Tangled_x509.Dn.to_string c.Tangled_x509.Certificate.subject))
            (Rs.certs target)
        end
  in
  Cmd.v
    (Cmd.info "stores" ~doc:"Inspect the synthetic official root stores")
    Term.(const run $ logs_term $ seed_arg $ key_bits_arg $ store_arg $ pem_arg
          $ cacerts_arg)

(* --- analyze (extension analyses) -------------------------------------- *)

let analyze_cmd =
  let which =
    let doc =
      "Which analysis to run: minimization (§5.3), scoping (§8), pinning (§7), \
       ingest (export→import reconciliation); defaults to all."
    in
    Arg.(value & opt (some string) None & info [ "a"; "analysis" ] ~docv:"NAME" ~doc)
  in
  let run () common sessions leaves key_bits which csv_dir =
    let world = build_world ~jobs:common.jobs common.seed sessions leaves key_bits in
    let names =
      match which with
      | Some n when List.mem n Report.extension_names -> [ n ]
      | Some n ->
          invalid_arg
            (Printf.sprintf "unknown analysis %S (expected: %s)" n
               (String.concat ", " Report.extension_names))
      | None -> Report.extension_names
    in
    render_artefacts world names csv_dir;
    print_string (Obs.render ());
    write_trace ~jobs:world.Pipeline.jobs common
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the extension analyses (store minimization, trust scoping, pinning)")
    Term.(const run $ logs_term $ common_term $ sessions_arg $ leaves_arg
          $ key_bits_arg $ which $ csv_dir_arg)

(* --- export ------------------------------------------------------------- *)

let export_cmd =
  let what_arg =
    let doc = "What to export: sessions, notary, or stores." in
    Arg.(value & opt string "sessions" & info [ "what" ] ~docv:"KIND" ~doc)
  in
  let out_arg =
    let doc = "Output file (defaults to <kind>.json in the working directory)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let limit_arg =
    let doc = "Truncate record lists to the first N entries." in
    Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N" ~doc)
  in
  let format_arg =
    let doc =
      "Output format: $(b,json) (one pretty document) or $(b,jsonl) (manifest \
       line followed by one record per line — the form the ingestion layer \
       prefers)."
    in
    Arg.(value
         & opt (enum [ ("json", "json"); ("jsonl", "jsonl") ]) "json"
         & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let run () seed sessions leaves key_bits what out limit format =
    let world = build_world seed sessions leaves key_bits in
    let module Export = Tangled_core.Export in
    let ext, contents =
      match (what, format) with
      | "sessions", "json" ->
          (".json", Tangled_util.Json.to_string ~pretty:true
                      (Export.sessions_json ?limit world) ^ "\n")
      | "notary", "json" ->
          (".json", Tangled_util.Json.to_string ~pretty:true
                      (Export.notary_json ?limit world) ^ "\n")
      | "stores", "json" ->
          (".json", Tangled_util.Json.to_string ~pretty:true
                      (Export.stores_json world) ^ "\n")
      | "sessions", "jsonl" -> (".jsonl", Export.sessions_jsonl ?limit world)
      | "notary", "jsonl" -> (".jsonl", Export.notary_jsonl ?limit world)
      | "stores", "jsonl" -> (".jsonl", Export.stores_jsonl world)
      | _, ("json" | "jsonl") -> invalid_arg ("unknown export kind " ^ what)
      | _ -> invalid_arg ("unknown export format " ^ format)
    in
    let path = Option.value ~default:(what ^ ext) out in
    Export.write_text path contents;
    Logs.app (fun m -> m "wrote %s" path)
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export the datasets as JSON (session log, notary DB, stores)")
    Term.(const run $ logs_term $ seed_arg $ sessions_arg $ leaves_arg
          $ key_bits_arg $ what_arg $ out_arg $ limit_arg $ format_arg)

(* --- ingest ------------------------------------------------------------- *)

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let ingest_cmd =
  let module Ingest = Tangled_ingest.Ingest in
  let module J = Tangled_util.Json in
  let module T = Tangled_util.Text_table in
  let file_arg =
    let doc = "Dataset to ingest: a .json document or .jsonl record stream." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let kind_arg =
    let doc = "Record schema: sessions, notary, stores, or auto (detect)." in
    Arg.(value & opt string "auto" & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let detect_kind input =
    (* the manifest's "kind" tag, wherever the manifest lives *)
    let header_kind json =
      match J.member "kind" json with Some (J.String k) -> Some k | _ -> None
    in
    let from_doc json =
      match header_kind json with
      | Some k -> Some k
      | None ->
          if J.member "sessions" json <> None then Some "sessions"
          else if J.member "chains" json <> None then Some "notary"
          else if J.member "stores" json <> None then Some "stores"
          else None
    in
    match J.parse input with
    | Ok json -> from_doc json
    | Error _ -> (
        match String.index_opt input '\n' with
        | None -> None
        | Some i -> (
            match J.parse (String.sub input 0 i) with
            | Ok json -> from_doc json
            | Error _ -> None))
  in
  let run () common file kind =
    let input = read_whole_file file in
    let kind =
      match kind with
      | "auto" -> (
          match detect_kind input with
          | Some k -> k
          | None ->
              Logs.warn (fun m ->
                  m "cannot detect dataset kind; assuming sessions");
              "sessions")
      | k -> k
    in
    (* CLI-only: the input digest stays out of render_stats so report
       artefacts remain byte-stable *)
    let print_digest (stats : Ingest.stats) =
      Printf.printf "input sha256: %s\n" stats.Ingest.input_sha256
    in
    (match kind with
    | "sessions" ->
        let r = Ingest.sessions_of_string input in
        print_endline (Ingest.render_stats ~title:("Session-log ingest: " ^ file) r);
        print_digest r.Ingest.stats;
        print_endline
          (T.render_kv ~title:"Recomputed headline aggregates"
             [
               ("sessions", T.fmt_int (Ingest.total_sessions r));
               ("estimated handsets", T.fmt_int (Ingest.estimated_handsets r));
               ("extended-store fraction", T.fmt_pct (Ingest.extended_fraction r));
               ("rooted fraction", T.fmt_pct (Ingest.rooted_fraction r));
               ("intercepted sessions", T.fmt_int (Ingest.intercepted_sessions r));
             ])
    | "notary" ->
        let r = Ingest.notary_of_string input in
        print_endline (Ingest.render_stats ~title:("Notary-DB ingest: " ^ file) r);
        print_digest r.Ingest.stats;
        print_endline
          (T.render_kv ~title:"Recomputed headline aggregates"
             [
               ("chains", T.fmt_int (Ingest.total_chains r));
               ("unexpired", T.fmt_int (Ingest.unexpired r));
               ("validated fraction", T.fmt_pct (Ingest.validated_fraction r));
               ( "via-intermediate fraction",
                 T.fmt_pct (Ingest.via_intermediate_fraction r) );
             ])
    | "stores" ->
        let r = Ingest.stores_of_string input in
        print_endline (Ingest.render_stats ~title:("Store-dump ingest: " ^ file) r);
        print_digest r.Ingest.stats;
        print_endline
          (T.render ~title:"Store sizes (Table 1 from ingested data)"
             ~aligns:[ T.Left; T.Right ]
             ~header:[ "store"; "certificates" ]
             (List.map
                (fun (s, n) -> [ s; string_of_int n ])
                (Ingest.store_sizes r)))
    | other -> invalid_arg ("unknown ingest kind " ^ other));
    write_trace ~jobs:common.jobs common
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:
         "Re-ingest an exported dataset record-by-record: validate, \
          quarantine, dedup, reconcile against the manifest")
    Term.(const run $ logs_term $ common_term $ file_arg $ kind_arg)

(* --- chaos --------------------------------------------------------------- *)

let chaos_cmd =
  let rate_arg =
    let doc = "Per-record fault probability." in
    Arg.(value & opt float 0.05 & info [ "rate" ] ~docv:"P" ~doc)
  in
  let fault_seed_arg =
    let doc = "Seed of the fault-injection PRNG (independent of the world seed)." in
    Arg.(value & opt int 12 & info [ "fault-seed" ] ~docv:"SEED" ~doc)
  in
  let tolerance_arg =
    let doc = "Maximum relative drift allowed in the headline numbers." in
    Arg.(value & opt float 0.01 & info [ "tolerance" ] ~docv:"T" ~doc)
  in
  let run () common sessions leaves key_bits rate fault_seed tolerance =
    let world = build_world ~jobs:common.jobs common.seed sessions leaves key_bits in
    let outcome =
      Tangled_core.Chaos.run ~seed:fault_seed ~rate ~tolerance world
    in
    print_string (Tangled_core.Chaos.render outcome);
    write_trace ~jobs:world.Pipeline.jobs common;
    if not outcome.Tangled_core.Chaos.ok then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Export the world, inject seeded faults, re-ingest, and audit that \
          every fault is quarantined and the headline numbers survive")
    Term.(const run $ logs_term $ common_term $ sessions_arg $ leaves_arg
          $ key_bits_arg $ rate_arg $ fault_seed_arg $ tolerance_arg)

(* --- serve ------------------------------------------------------------- *)

let serve_cmd =
  let module Serve = Tangled_serve.Serve in
  let drill_arg =
    let doc =
      "Instead of serving stdin, run the serve chaos drill: a generated \
       request corpus is fault-injected, served in bursts (one deliberately \
       over capacity) under a seeded store/index fault plan, and the \
       robustness contract is audited — zero crashes, zero unaccounted \
       requests."
    in
    Arg.(value & flag & info [ "drill" ] ~doc)
  in
  let requests_arg =
    let doc = "Size of the drill's request corpus." in
    Arg.(value & opt int 600 & info [ "requests" ] ~docv:"N" ~doc)
  in
  let rate_arg =
    let doc = "Per-frame fault probability for the drill's request stream." in
    Arg.(value & opt float 0.08 & info [ "rate" ] ~docv:"P" ~doc)
  in
  let fault_seed_arg =
    let doc = "Seed of the drill's fault-injection PRNGs." in
    Arg.(value & opt int 12 & info [ "fault-seed" ] ~docv:"SEED" ~doc)
  in
  let queue_arg =
    let doc = "Admission-queue capacity; a larger burst is load-shed." in
    Arg.(value & opt int Serve.default_config.Serve.queue_capacity
         & info [ "queue-capacity" ] ~docv:"N" ~doc)
  in
  let batch_arg =
    let doc = "Frames read per burst from the input stream." in
    Arg.(value & opt int Serve.default_config.Serve.batch
         & info [ "batch" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc = "Default per-request deadline in milliseconds." in
    Arg.(value & opt int 250 & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let cache_arg =
    let doc =
      "Request-level decision-cache capacity (0 disables caching); \
       validate/diff/coverage answers are cached per snapshot epoch."
    in
    Arg.(value & opt int Serve.default_config.Serve.cache_capacity
         & info [ "cache-capacity" ] ~docv:"N" ~doc)
  in
  let run () common sessions leaves key_bits drill requests rate fault_seed
      queue_capacity batch deadline_ms cache_capacity =
    (* stdout is the protocol channel in serve mode: human chatter
       (world build progress, the closing summary table) goes to stderr
       so piped clients read pure JSONL *)
    if not drill then
      Logs.set_reporter (Logs_fmt.reporter ~app:Format.err_formatter ());
    let world = build_world ~jobs:common.jobs common.seed sessions leaves key_bits in
    if drill then begin
      let outcome =
        Tangled_serve.Drill.run ~seed:fault_seed ~rate ~requests
          ~cache_capacity world
      in
      print_string (Tangled_serve.Drill.render outcome);
      write_trace ~jobs:world.Pipeline.jobs common;
      if not outcome.Tangled_serve.Drill.ok then exit 1
    end
    else begin
      let config =
        {
          Serve.default_config with
          Serve.queue_capacity;
          batch;
          default_deadline_s = float_of_int deadline_ms /. 1000.0;
          cache_capacity;
        }
      in
      let server = Serve.create ~config world in
      Logs.app (fun m ->
          m "serving %s on stdin (queue %d, batch %d, deadline %dms)"
            Serve.protocol_version queue_capacity batch deadline_ms);
      let summary = Serve.serve_channel server stdin stdout in
      Logs.app (fun m -> m "%s" (Serve.render_summary summary));
      write_trace ~jobs:world.Pipeline.jobs common;
      if not (Serve.reconciled summary) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Answer the paper's queries online: a fault-tolerant JSONL request \
          loop over stdin with admission control, deadlines, retry/backoff \
          and graceful degradation ($(b,--drill) audits it under chaos)")
    Term.(const run $ logs_term $ common_term $ sessions_arg $ leaves_arg
          $ key_bits_arg $ drill_arg $ requests_arg $ rate_arg
          $ fault_seed_arg $ queue_arg $ batch_arg $ deadline_arg
          $ cache_arg)

(* --- sensitivity ---------------------------------------------------------- *)

let sensitivity_cmd =
  let runs_arg =
    let doc = "Number of additional seeds to re-run (beyond the base seed)." in
    Arg.(value & opt int 3 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let run () seed sessions leaves key_bits runs =
    let world = build_world seed sessions leaves key_bits in
    let seeds = List.init runs (fun i -> seed + 1000 + i) in
    Logs.app (fun m -> m "re-running %d extra worlds..." runs);
    print_endline
      (Tangled_core.Sensitivity.render (Tangled_core.Sensitivity.compute ~seeds world))
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Re-run the pipeline across seeds and report headline-statistic spread")
    Term.(const run $ logs_term $ seed_arg $ sessions_arg $ leaves_arg
          $ key_bits_arg $ runs_arg)

(* --- audit -------------------------------------------------------------- *)

let audit_cmd =
  let pem_file =
    let doc =
      "Device root store to audit: either a PEM file (concatenated CERTIFICATE \
       blocks) or an Android cacerts directory (<hash>.N files)."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"STORE" ~doc)
  in
  let baseline_arg =
    let doc = "AOSP baseline to diff against: aosp41, aosp42, aosp43, aosp44." in
    Arg.(value & opt string "aosp44" & info [ "baseline" ] ~docv:"NAME" ~doc)
  in
  let run () seed key_bits pem_file baseline =
    let module BP = Tangled_pki.Blueprint in
    let module PD = Tangled_pki.Paper_data in
    let module Rs = Tangled_store.Root_store in
    let module C = Tangled_x509.Certificate in
    let module Pem = Tangled_x509.Pem in
    let universe = BP.build ~key_bits ~seed () in
    let baseline_store =
      match baseline with
      | "aosp41" -> universe.BP.aosp PD.V4_1
      | "aosp42" -> universe.BP.aosp PD.V4_2
      | "aosp43" -> universe.BP.aosp PD.V4_3
      | "aosp44" -> universe.BP.aosp PD.V4_4
      | other -> invalid_arg ("unknown baseline " ^ other)
    in
    let load_store () =
      if Sys.is_directory pem_file then
        Tangled_store.Cacerts_dir.read ~name:"audited" pem_file
      else begin
        let contents =
          let ic = open_in_bin pem_file in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        match Pem.decode_all contents with
        | Error _ as e -> e
        | Ok blocks ->
            let certs =
              List.filter_map
                (fun (label, der) ->
                  if label <> "CERTIFICATE" then None
                  else match C.decode der with Ok c -> Some c | Error _ -> None)
                blocks
            in
            Ok (Rs.of_certs "audited" Rs.User certs)
      end
    in
    match load_store () with
    | Error m -> prerr_endline ("audit: " ^ m); exit 1
    | Ok device ->
        let additions, missing = Rs.diff device baseline_store in
        Printf.printf "store: %d certificates (%s baseline: %d)\n" (Rs.cardinal device)
          (Rs.name baseline_store) (Rs.cardinal baseline_store);
        Printf.printf "additions beyond baseline: %d\n" (List.length additions);
        List.iter
          (fun c ->
            Printf.printf "  + %s  %s\n" (C.subject_hash32 c)
              (Tangled_x509.Dn.to_string c.C.subject))
          additions;
        Printf.printf "baseline certificates missing: %d\n" (List.length missing);
        List.iter
          (fun c ->
            Printf.printf "  - %s  %s\n" (C.subject_hash32 c)
              (Tangled_x509.Dn.to_string c.C.subject))
          missing
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Diff a PEM root-store dump against an AOSP baseline (the Netalyzr measurement, offline)")
    Term.(const run $ logs_term $ seed_arg $ key_bits_arg $ pem_file $ baseline_arg)

(* --- selfcheck --------------------------------------------------------- *)

(* The regression gate behind `dune build @check`: (1) cross-check the
   Montgomery exponentiation against the legacy division-based modpow
   on deterministic random inputs, (2) check the unboxed streaming hash
   cores against published vectors, padding-boundary lengths and the
   retained boxed reference implementations, (3) rebuild the quick
   world at --jobs 1 and compare the SHA-256 of the full rendered
   report against the golden digest committed in test/ — any drift in
   the study's bytes fails the build — and (4) export the quick run's
   observability trace and validate it against the versioned JSONL
   schema. *)

let selfcheck_cmd =
  let module B = Tangled_numeric.Bigint in
  let module Mont = Tangled_numeric.Montgomery in
  let module Prng = Tangled_util.Prng in
  let golden_arg =
    let doc = "File holding the expected report digest (hex SHA-256)." in
    Arg.(required & opt (some string) None & info [ "golden" ] ~docv:"FILE" ~doc)
  in
  let update_arg =
    let doc = "Rewrite the golden file with the current digest instead of comparing." in
    Arg.(value & flag & info [ "update" ] ~doc)
  in
  let mont_crosscheck () =
    let rng = Prng.create 271828 in
    let trials = 150 in
    let failures = ref 0 in
    for i = 1 to trials do
      let bits = [| 64; 128; 256; 384; 512; 1024 |].(i mod 6) in
      let m =
        (* random odd modulus > 1 of roughly [bits] bits *)
        let v = B.random_bits rng bits in
        let v = if B.is_odd v then v else B.add v B.one in
        if B.compare v B.one <= 0 then B.of_int 3 else v
      in
      let base = B.random_bits rng (bits + 13) (* deliberately >= m sometimes *) in
      let e = B.random_bits rng bits in
      let want = B.modpow base e m in
      let got = Mont.modpow (Mont.create m) base e in
      if not (B.equal want got) then begin
        incr failures;
        Printf.eprintf "selfcheck: montgomery mismatch at trial %d (%d bits)\n" i bits
      end
    done;
    Printf.printf "montgomery-vs-oracle: %d/%d trials ok\n%!" (trials - !failures) trials;
    !failures = 0
  in
  let wide_kernel_check () =
    (* the 28-bit wide multiplication kernel is a pure speedup: RSA
       signatures must be byte-identical with it on or off, at the
       simulation's key size and above *)
    let module Rsa = Tangled_crypto.Rsa in
    let module Dk = Tangled_hash.Digest_kind in
    let rng = Prng.create 161803 in
    let failures = ref 0 in
    Fun.protect
      ~finally:(fun () -> Rsa.set_wide_kernel true)
      (fun () ->
        List.iter
          (fun bits ->
            let key = Rsa.generate ~mr_rounds:6 rng ~bits in
            let digest = if bits < 512 then Dk.SHA1 else Dk.SHA256 in
            let msg = Printf.sprintf "wide kernel selfcheck %d" bits in
            Rsa.set_wide_kernel true;
            let s_on = Rsa.sign key ~digest msg in
            Rsa.set_wide_kernel false;
            let s_off = Rsa.sign key ~digest msg in
            if not (String.equal s_on s_off) then begin
              incr failures;
              Printf.eprintf
                "selfcheck: wide-kernel signature differs at %d bits\n" bits
            end;
            Rsa.set_wide_kernel true;
            if not (Rsa.verify key.Rsa.pub ~digest ~msg ~signature:s_off) then begin
              incr failures;
              Printf.eprintf
                "selfcheck: wide-kernel verify failed at %d bits\n" bits
            end)
          [ 384; 512; 768 ]);
    Printf.printf "wide-kernel-vs-oracle: %s\n%!"
      (if !failures = 0 then "ok" else string_of_int !failures ^ " failures");
    !failures = 0
  in
  let hash_vectors_check () =
    let module H = Tangled_hash in
    let failures = ref 0 in
    let check what got want =
      if not (String.equal got want) then begin
        incr failures;
        Printf.eprintf "selfcheck: hash mismatch for %s\n  want %s\n  got  %s\n" what want got
      end
    in
    (* published vectors plus the padding-boundary lengths 55/56/64/119 *)
    let a n = String.make n 'a' in
    List.iter
      (fun (name, msg, md5, sha1, sha256) ->
        check ("md5 " ^ name) (H.Md5.hex msg) md5;
        check ("sha1 " ^ name) (H.Sha1.hex msg) sha1;
        check ("sha256 " ^ name) (H.Sha256.hex msg) sha256)
      [
        ( "empty", "",
          "d41d8cd98f00b204e9800998ecf8427e",
          "da39a3ee5e6b4b0d3255bfef95601890afd80709",
          "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" );
        ( "abc", "abc",
          "900150983cd24fb0d6963f7d28e17f72",
          "a9993e364706816aba3e25717850c26c9cd0d89d",
          "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" );
        ( "a*55", a 55,
          "ef1772b6dff9a122358552954ad0df65",
          "c1c8bbdc22796e28c0e15163d20899b65621d65a",
          "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318" );
        ( "a*56", a 56,
          "3b0c8ac703f828b04c6c197006d17218",
          "c2db330f6083854c99d4b5bfb6e8f29f201be699",
          "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a" );
        ( "a*64", a 64,
          "014842d480b571495a4a0363793f7367",
          "0098ba824b5c16427bd7a1122a5a442a25ec644d",
          "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb" );
        ( "a*119", a 119,
          "8a7bd0732ed6a28ce75f6dabc90e1613",
          "ee971065aaa017e0632a8ca6c77bb3bf8b1dfc56",
          "31eba51c313a5c08226adf18d4a359cfdfd8d2e816b13f4af952f7ea6584dcfb" );
      ];
    (* streaming at random split points vs one-shot vs the boxed oracle *)
    let rng = Prng.create 602214 in
    for trial = 1 to 60 do
      let msg = Prng.bytes rng (Prng.int rng 300) in
      let split_feed init feed_sub finalize =
        let ctx = init () in
        let off = ref 0 in
        while !off < String.length msg do
          let len = Prng.int_in rng 1 (String.length msg - !off) in
          feed_sub ctx msg ~off:!off ~len;
          off := !off + len
        done;
        finalize ctx
      in
      let agree name oneshot reference streamed =
        if not (String.equal (oneshot msg) (reference msg) && String.equal (oneshot msg) streamed)
        then begin
          incr failures;
          Printf.eprintf "selfcheck: %s disagreement at trial %d (len %d)\n" name trial
            (String.length msg)
        end
      in
      agree "md5" H.Md5.digest H.Reference.Md5.digest
        (split_feed H.Md5.init H.Md5.feed_sub H.Md5.finalize);
      agree "sha1" H.Sha1.digest H.Reference.Sha1.digest
        (split_feed H.Sha1.init H.Sha1.feed_sub H.Sha1.finalize);
      agree "sha256" H.Sha256.digest H.Reference.Sha256.digest
        (split_feed H.Sha256.init H.Sha256.feed_sub H.Sha256.finalize)
    done;
    Printf.printf "hash-vectors-and-oracle: %s\n%!"
      (if !failures = 0 then "ok" else string_of_int !failures ^ " failures");
    !failures = 0
  in
  let run () golden update =
    let ok_mont = mont_crosscheck () in
    let ok_wide = wide_kernel_check () in
    let ok_hash = hash_vectors_check () in
    let world =
      Pipeline.run
        ~config:{ Pipeline.quick_config with Pipeline.jobs = 1 }
        ~universe:(Lazy.force Tangled_pki.Blueprint.default) ()
    in
    let digest =
      Tangled_util.Hex.encode (Tangled_hash.Sha256.digest (Report.run_all world))
    in
    let ok_trace =
      let trace = Obs.trace_jsonl ~jobs:world.Pipeline.jobs () in
      match (Obs.validate_trace trace, Obs.stable_view trace) with
      | Ok (), Ok _ ->
          let lines =
            List.length
              (List.filter (fun l -> l <> "")
                 (String.split_on_char '\n' trace))
          in
          Printf.printf "obs trace (%s): %d lines, schema ok\n%!"
            Obs.schema_version lines;
          true
      | Error e, _ | _, Error e ->
          Printf.eprintf "selfcheck: obs trace invalid: %s\n%!" e;
          false
    in
    if update then begin
      Tangled_core.Export.write_text golden (digest ^ "\n");
      Printf.printf "wrote %s (%s)\n%!" golden digest;
      if not (ok_mont && ok_wide && ok_hash && ok_trace) then exit 1
    end
    else begin
      let expected = String.trim (In_channel.with_open_text golden In_channel.input_all) in
      let ok_digest = String.equal expected digest in
      if ok_digest then Printf.printf "report digest (jobs 1): %s — matches golden\n%!" digest
      else
        Printf.eprintf
          "selfcheck: report digest drifted\n  golden:  %s\n  current: %s\n%!"
          expected digest;
      if not (ok_mont && ok_wide && ok_hash && ok_digest && ok_trace) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "selfcheck"
       ~doc:
         "Montgomery/hash-core cross-checks, golden report-digest gate, and \
          obs trace schema validation")
    Term.(const run $ logs_term $ golden_arg $ update_arg)

(* --- scale -------------------------------------------------------------- *)

(* The paper-scale gate: build the Notary corpus at increasing leaf
   counts on the columnar arena and check the properties the refactor
   promises — flat boxed memory (peak OCaml heap bounded whatever the
   corpus size), bytes/cert within a fixed ratio of raw DER, and
   scale-invariant analysis fractions (Table 3 store fractions, Table 4
   zero-validation fractions) byte-identical at every scale.  Optionally
   re-builds the largest scale with a different worker count and
   compares arena digests, pinning jobs-independence off-heap. *)

let scale_cmd =
  let module BP = Tangled_pki.Blueprint in
  let module PD = Tangled_pki.Paper_data in
  let module Notary = Tangled_notary.Notary in
  let module Arena = Tangled_x509.Arena in
  let module J = Tangled_util.Json in
  let leaves_all_arg =
    let doc = "Unexpired-leaf count to measure; repeatable, ascending runs." in
    Arg.(value & opt_all int [ 20_000; 200_000 ] & info [ "leaves" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc = "Write the measurements as JSON to this file." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let check_jobs_arg =
    let doc =
      "Rebuild the largest scale with 4 worker domains and require its arena \
       digest to be byte-identical to the single-domain build."
    in
    Arg.(value & flag & info [ "check-jobs" ] ~doc)
  in
  let max_heap_arg =
    let doc =
      "Fail unless the OCaml heap's high-water mark stays under this many MB \
       at every scale (0 disables the assertion; the arena is off-heap and \
       accounted separately)."
    in
    Arg.(value & opt int 0 & info [ "max-heap-mb" ] ~docv:"MB" ~doc)
  in
  let max_ratio_arg =
    let doc =
      "Fail if committed arena bytes per certificate exceed this multiple of \
       the mean raw DER size."
    in
    Arg.(value & opt float 2.0 & info [ "max-der-ratio" ] ~docv:"R" ~doc)
  in
  let fraction_dp_arg =
    let doc =
      "Per-store validated fractions must agree across scales within \
       10^-N (apportionment remainders shift them by O(1/leaves)); \
       zero-validation fractions must agree exactly, byte for byte."
    in
    Arg.(value & opt int 2 & info [ "fraction-dp" ] ~docv:"N" ~doc)
  in
  let run () seed key_bits leaves_list out check_jobs max_heap_mb max_ratio
      fraction_dp =
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
    Logs.app (fun m -> m "building universe (seed %d, %d-bit keys)..." seed key_bits);
    let universe = BP.build ~key_bits ~seed () in
    let store_names =
      List.map (fun v -> ("aosp_" ^ PD.version_to_string v, `Aosp v))
        PD.android_versions
      @ [ ("mozilla", `Mozilla); ("ios7", `Ios) ]
    in
    let store_of = function
      | `Aosp v -> universe.BP.aosp v
      | `Mozilla -> universe.BP.mozilla
      | `Ios -> universe.BP.ios7
    in
    let word_mb = float_of_int (Sys.word_size / 8) /. 1e6 in
    let measure leaves jobs =
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      let n = Notary.generate ~leaves ~jobs ~seed:(seed + 3) universe in
      let dt = Unix.gettimeofday () -. t0 in
      let a = Notary.arena n in
      let mem = Arena.memory a in
      let total = Notary.total n in
      let unexpired = float_of_int (Notary.unexpired n) in
      let avg_der = float_of_int mem.Arena.blob_bytes /. float_of_int total in
      let top_heap_mb =
        float_of_int (Gc.quick_stat ()).Gc.top_heap_words *. word_mb
      in
      let validated =
        List.map
          (fun (name, which) ->
            ( name,
              float_of_int (Notary.validated_by_store n (store_of which))
              /. unexpired ))
          store_names
      in
      let zero =
        List.map
          (fun (label, _, _) ->
            let counts =
              Notary.counts_for_certs n (BP.store_of_category universe label)
            in
            (label, Tangled_util.Stats.fraction (fun c -> c = 0.0) counts))
          PD.table4_rows
      in
      Logs.app (fun m ->
          m
            "leaves %d (jobs %d): %d chains in %.1fs (%.0f certs/s), arena \
             %.1f MB, %.0f bytes/cert (%.2fx DER), heap high-water %.0f MB"
            leaves jobs total dt
            (float_of_int total /. dt)
            (float_of_int (mem.Arena.blob_bytes + mem.Arena.column_bytes) /. 1e6)
            (Arena.bytes_per_cert a)
            (Arena.bytes_per_cert a /. avg_der)
            top_heap_mb);
      if Arena.bytes_per_cert a > max_ratio *. avg_der then
        fail "leaves %d: %.0f bytes/cert exceeds %.1fx mean DER (%.0f B)" leaves
          (Arena.bytes_per_cert a) max_ratio avg_der;
      if max_heap_mb > 0 && top_heap_mb > float_of_int max_heap_mb then
        fail "leaves %d: heap high-water %.0f MB exceeds the %d MB budget"
          leaves top_heap_mb max_heap_mb;
      let digest = Tangled_util.Hex.encode (Arena.digest a) in
      ( digest,
        J.Obj
          [
            ("leaves", J.Int leaves);
            ("jobs", J.Int jobs);
            ("total_chains", J.Int total);
            ("build_s", J.Float dt);
            ("certs_per_s", J.Float (float_of_int total /. dt));
            ("arena_blob_bytes", J.Int mem.Arena.blob_bytes);
            ("arena_column_bytes", J.Int mem.Arena.column_bytes);
            ("bytes_per_cert", J.Float (Arena.bytes_per_cert a));
            ("mean_der_bytes", J.Float avg_der);
            ("der_ratio", J.Float (Arena.bytes_per_cert a /. avg_der));
            ("top_heap_mb", J.Float top_heap_mb);
            ("arena_sha256", J.String digest);
            ( "validated_fraction",
              J.Obj (List.map (fun (k, v) -> (k, J.Float v)) validated) );
            ( "zero_fraction",
              J.Obj (List.map (fun (k, v) -> (k, J.Float v)) zero) );
          ],
        validated,
        zero )
    in
    let leaves_list = List.sort_uniq compare leaves_list in
    let runs = List.map (fun l -> (l, measure l 1)) leaves_list in
    (* scale invariance: validated fractions converge within 10^-dp,
       zero fractions are byte-identical floats at every scale *)
    let tol = 10. ** float_of_int (-fraction_dp) in
    (match runs with
    | (l0, (_, _, v0, z0)) :: rest ->
        List.iter
          (fun (l, (_, _, v, z)) ->
            List.iter2
              (fun (name, f0) (_, f) ->
                if Float.abs (f -. f0) > tol then
                  fail
                    "validated fraction for %s drifts with scale: %.6f at %d \
                     vs %.6f at %d (tolerance %.0e)"
                    name f0 l0 f l tol)
              v0 v;
            List.iter2
              (fun (label, f0) (_, f) ->
                if f0 <> f then
                  fail
                    "zero fraction for %s drifts with scale: %.4f at %d vs \
                     %.4f at %d"
                    label f0 l0 f l)
              z0 z)
          rest
    | [] -> ());
    (* jobs-independence off-heap: the 4-domain rebuild of the largest
       scale must reproduce the arena byte for byte *)
    let jobs_entry =
      if not check_jobs then []
      else
        match List.rev runs with
        | (l, (d1, _, _, _)) :: _ ->
            let d4, _, _, _ = measure l 4 in
            if d1 <> d4 then
              fail "arena digest differs between jobs 1 and jobs 4 at %d leaves" l;
            [
              ( "jobs_identity",
                J.Obj
                  [
                    ("leaves", J.Int l);
                    ("arena_digest_identical", J.Bool (d1 = d4));
                  ] );
            ]
        | [] -> []
    in
    let doc =
      J.Obj
        ([
           ("bench", J.String "scale");
           ("seed", J.Int seed);
           ("key_bits", J.Int key_bits);
           ("fraction_dp", J.Int fraction_dp);
           ("scales", J.List (List.map (fun (_, (_, j, _, _)) -> j) runs));
           ("fractions_scale_invariant", J.Bool (!failures = []));
         ]
        @ jobs_entry)
    in
    (match out with
    | Some path ->
        Tangled_core.Export.write_text path (J.to_string doc ^ "\n");
        Logs.app (fun m -> m "wrote %s" path)
    | None -> print_endline (J.to_string doc));
    match !failures with
    | [] -> ()
    | ms ->
        List.iter (fun m -> Printf.eprintf "scale: %s\n%!" m) (List.rev ms);
        exit 1
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Build the Notary corpus at increasing scales on the off-heap arena \
          and assert flat peak memory, bounded bytes/cert, scale-invariant \
          fractions, and (optionally) jobs-independent arena bytes")
    Term.(const run $ logs_term $ seed_arg $ key_bits_arg $ leaves_all_arg
          $ out_arg $ check_jobs_arg $ max_heap_arg $ max_ratio_arg
          $ fraction_dp_arg)

(* --- ct ---------------------------------------------------------------- *)

let ct_cmd =
  let module Fleet = Tangled_ct.Fleet in
  let module Ct_log = Tangled_ct.Log in
  let module Proof = Tangled_ct.Proof in
  let module T = Tangled_util.Text_table in
  let module J = Tangled_util.Json in
  let n_logs_arg =
    let doc = "Number of logs in the fleet." in
    Arg.(value & opt int 3 & info [ "logs" ] ~docv:"N" ~doc)
  in
  let prove_arg =
    let doc =
      "Emit an inclusion proof for leaf INDEX of LOG (e.g. ct0:17) and verify \
       it through the pure proof API."
    in
    Arg.(value & opt (some string) None
         & info [ "prove" ] ~docv:"LOG:INDEX" ~doc)
  in
  let consistency_arg =
    let doc =
      "Emit a consistency proof between tree sizes FIRST and SECOND of LOG \
       (e.g. ct0:100:2000) and verify it."
    in
    Arg.(value & opt (some string) None
         & info [ "consistency" ] ~docv:"LOG:FIRST:SECOND" ~doc)
  in
  let smoke_arg =
    let doc =
      "Smoke-check the subsystem: verify one inclusion and one consistency \
       proof per log through the pure verifier, then rebuild the world with 4 \
       worker domains and require byte-identical log heads.  Exits 1 on any \
       failure."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let out_arg =
    let doc = "Write the fleet summary (heads, visibility rows) as JSON." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let split_ref spec =
    match String.split_on_char ':' spec with
    | [ log; a ] -> (log, int_of_string_opt a, None)
    | [ log; a; b ] -> (log, int_of_string_opt a, int_of_string_opt b)
    | _ -> (spec, None, None)
  in
  let entry_exn fleet name =
    match Fleet.find_log fleet name with
    | Some e -> e
    | None ->
        Printf.eprintf "ct: no log named %s\n%!" name;
        exit 1
  in
  let proof_json name kind extra proof =
    J.Obj
      ([ ("log", J.String name); ("kind", J.String kind) ]
      @ extra
      @ [
          ( "proof",
            J.List
              (List.map
                 (fun h -> J.String (Tangled_util.Hex.encode h))
                 proof) );
        ])
  in
  let build_fleet ~jobs ~n_logs seed sessions leaves key_bits =
    let world = build_world ~jobs seed sessions leaves key_bits in
    (world, Fleet.build ~n_logs ~seed world.Pipeline.universe
              world.Pipeline.notary)
  in
  let run () common sessions leaves key_bits n_logs prove consistency smoke out =
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
    let world, fleet =
      build_fleet ~jobs:common.jobs ~n_logs common.seed sessions leaves key_bits
    in
    (* fleet + visibility tables (the report's "ct" section, online) *)
    let log_rows =
      Array.to_list
        (Array.map
           (fun (e : Fleet.entry) ->
             [
               Ct_log.name e.Fleet.log;
               T.fmt_int e.Fleet.accepted_roots;
               T.fmt_int (Ct_log.size e.Fleet.log);
               String.sub (Ct_log.head_hex e.Fleet.log) 0 16;
             ])
           (Fleet.entries fleet))
    in
    print_endline
      (T.render ~title:"CT log fleet"
         ~aligns:[ T.Left; T.Right; T.Right; T.Left ]
         ~header:[ "log"; "accepted roots"; "tree size"; "head (prefix)" ]
         log_rows);
    let vis = Fleet.official_visibility fleet in
    print_endline
      (T.render ~title:"CT visibility of device-store roots"
         ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right ]
         ~header:[ "store"; "roots"; "accepted"; "logged"; "dark" ]
         (List.map
            (fun (r : Fleet.store_row) ->
              [
                r.Fleet.store_name;
                T.fmt_int r.Fleet.roots;
                T.fmt_int r.Fleet.accepted;
                T.fmt_int r.Fleet.logged;
                T.fmt_int r.Fleet.dark;
              ])
            vis));
    (* --prove LOG:INDEX *)
    (match prove with
    | None -> ()
    | Some spec -> (
        match split_ref spec with
        | log_name, Some index, None -> (
            let e = entry_exn fleet log_name in
            let n = Ct_log.size e.Fleet.log in
            match Ct_log.inclusion_proof e.Fleet.log ~index ~tree_size:n with
            | Error err ->
                Printf.eprintf "ct: %s\n%!" err;
                exit 1
            | Ok proof ->
                let ok =
                  match Fleet.leaf_der fleet e index with
                  | Some leaf ->
                      Proof.verify_inclusion ~leaf ~index ~tree_size:n ~proof
                        ~root:(Ct_log.head e.Fleet.log)
                  | None -> false
                in
                print_endline
                  (J.to_string
                     (proof_json log_name "inclusion"
                        [
                          ("index", J.Int index);
                          ("tree_size", J.Int n);
                          ("root", J.String (Ct_log.head_hex e.Fleet.log));
                          ("verified", J.Bool ok);
                        ]
                        proof));
                if not ok then fail "--prove %s: proof did not verify" spec)
        | _ ->
            Printf.eprintf "ct: --prove wants LOG:INDEX, got %s\n%!" spec;
            exit 1));
    (* --consistency LOG:FIRST:SECOND *)
    (match consistency with
    | None -> ()
    | Some spec -> (
        match split_ref spec with
        | log_name, Some first, Some second -> (
            let e = entry_exn fleet log_name in
            match
              ( Ct_log.consistency_proof e.Fleet.log ~first ~second,
                Ct_log.head_at e.Fleet.log first,
                Ct_log.head_at e.Fleet.log second )
            with
            | Ok proof, Ok r1, Ok r2 ->
                let ok =
                  Proof.verify_consistency ~first ~second ~first_root:r1
                    ~second_root:r2 ~proof
                in
                print_endline
                  (J.to_string
                     (proof_json log_name "consistency"
                        [
                          ("first", J.Int first);
                          ("second", J.Int second);
                          ("first_root", J.String (Tangled_util.Hex.encode r1));
                          ("second_root", J.String (Tangled_util.Hex.encode r2));
                          ("verified", J.Bool ok);
                        ]
                        proof));
                if not ok then fail "--consistency %s: proof did not verify" spec
            | Error err, _, _ | _, Error err, _ | _, _, Error err ->
                Printf.eprintf "ct: %s\n%!" err;
                exit 1)
        | _ ->
            Printf.eprintf
              "ct: --consistency wants LOG:FIRST:SECOND, got %s\n%!" spec;
            exit 1));
    (* --smoke: proof round-trips per log + jobs-1-vs-4 head identity *)
    if smoke then begin
      Array.iter
        (fun (e : Fleet.entry) ->
          let name = Ct_log.name e.Fleet.log in
          let n = Ct_log.size e.Fleet.log in
          if n = 0 then fail "%s: empty log" name
          else begin
            let i = n / 2 in
            (match
               ( Ct_log.inclusion_proof e.Fleet.log ~index:i ~tree_size:n,
                 Fleet.leaf_der fleet e i )
             with
            | Ok proof, Some leaf ->
                if
                  not
                    (Proof.verify_inclusion ~leaf ~index:i ~tree_size:n ~proof
                       ~root:(Ct_log.head e.Fleet.log))
                then fail "%s: inclusion proof for leaf %d did not verify" name i
            | Error err, _ -> fail "%s: %s" name err
            | _, None -> fail "%s: leaf %d unreadable" name i);
            let m = max 1 (n / 2) in
            match
              ( Ct_log.consistency_proof e.Fleet.log ~first:m ~second:n,
                Ct_log.head_at e.Fleet.log m )
            with
            | Ok proof, Ok r1 ->
                if
                  not
                    (Proof.verify_consistency ~first:m ~second:n ~first_root:r1
                       ~second_root:(Ct_log.head e.Fleet.log) ~proof)
                then fail "%s: consistency %d..%d did not verify" name m n
            | Error err, _ | _, Error err -> fail "%s: %s" name err
          end)
        (Fleet.entries fleet);
      Logs.app (fun m -> m "rebuilding with 4 worker domains...");
      let _, fleet4 =
        build_fleet ~jobs:4 ~n_logs common.seed sessions leaves key_bits
      in
      Array.iteri
        (fun j (e1 : Fleet.entry) ->
          let e4 = (Fleet.entries fleet4).(j) in
          let h1 = Ct_log.head_hex e1.Fleet.log
          and h4 = Ct_log.head_hex e4.Fleet.log in
          if h1 <> h4 then
            fail "%s: head differs between jobs 1 and jobs 4 (%s vs %s)"
              (Ct_log.name e1.Fleet.log) h1 h4)
        (Fleet.entries fleet);
      Logs.app (fun m ->
          m "smoke: %d log(s), proofs verified, jobs-1-vs-4 heads identical"
            (Array.length (Fleet.entries fleet)))
    end;
    (match out with
    | None -> ()
    | Some path ->
        let doc =
          J.Obj
            [
              ("seed", J.Int common.seed);
              ("logs", J.Int n_logs);
              ( "heads",
                J.Obj
                  (Array.to_list
                     (Array.map
                        (fun (e : Fleet.entry) ->
                          ( Ct_log.name e.Fleet.log,
                            J.Obj
                              [
                                ("tree_size", J.Int (Ct_log.size e.Fleet.log));
                                ("head", J.String (Ct_log.head_hex e.Fleet.log));
                              ] ))
                        (Fleet.entries fleet))) );
              ( "visibility",
                J.List
                  (List.map
                     (fun (r : Fleet.store_row) ->
                       J.Obj
                         [
                           ("store", J.String r.Fleet.store_name);
                           ("roots", J.Int r.Fleet.roots);
                           ("accepted", J.Int r.Fleet.accepted);
                           ("logged", J.Int r.Fleet.logged);
                           ("dark", J.Int r.Fleet.dark);
                         ])
                     vis) );
            ]
        in
        Tangled_core.Export.write_text path (J.to_string doc ^ "\n");
        Logs.app (fun m -> m "wrote %s" path));
    write_trace ~jobs:world.Pipeline.jobs common;
    match !failures with
    | [] -> ()
    | ms ->
        List.iter (fun m -> Printf.eprintf "ct: %s\n%!" m) (List.rev ms);
        exit 1
  in
  Cmd.v
    (Cmd.info "ct"
       ~doc:
         "Build the CT log fleet over the Notary corpus, print the visibility \
          table, emit/verify RFC 6962 proofs, and smoke-check determinism")
    Term.(const run $ logs_term $ common_term $ sessions_arg $ leaves_arg
          $ key_bits_arg $ n_logs_arg $ prove_arg $ consistency_arg $ smoke_arg
          $ out_arg)

(* --- intercept --------------------------------------------------------- *)

let intercept_cmd =
  let run () seed sessions leaves key_bits =
    let world = build_world seed sessions leaves key_bits in
    print_endline (Report.render_one world "table6")
  in
  Cmd.v
    (Cmd.info "intercept" ~doc:"Run the TLS-interception case study (§7)")
    Term.(const run $ logs_term $ seed_arg $ sessions_arg $ leaves_arg $ key_bits_arg)

let main_cmd =
  let doc = "Reproduction of 'A Tangled Mass: The Android Root Certificate Stores'" in
  Cmd.group
    (Cmd.info "tangled-mass" ~version:"1.0.0" ~doc)
    [ tables_cmd; figures_cmd; report_cmd; analyze_cmd; audit_cmd; export_cmd;
      ingest_cmd; chaos_cmd; serve_cmd; sensitivity_cmd; scale_cmd; ct_cmd;
      stores_cmd; intercept_cmd; selfcheck_cmd ]

let () = exit (Cmd.eval main_cmd)
