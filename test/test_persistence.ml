(* Tests for the new infrastructure: cacerts directory persistence,
   JSON emission, dataset export, the blocklist, and sensitivity. *)

module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Rs = Tangled_store.Root_store
module Cacerts = Tangled_store.Cacerts_dir
module C = Tangled_x509.Certificate
module Dn = Tangled_x509.Dn
module Authority = Tangled_x509.Authority
module Blocklist = Tangled_validation.Blocklist
module Chain = Tangled_validation.Chain
module J = Tangled_util.Json
module Prng = Tangled_util.Prng
module Ts = Tangled_util.Timestamp
module Pipeline = Tangled_core.Pipeline
module Export = Tangled_core.Export
module Sensitivity = Tangled_core.Sensitivity

let check = Alcotest.check

let world = lazy (Lazy.force Pipeline.quick)

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tangled-test-%d-%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* --- cacerts dir ------------------------------------------------------- *)

let test_cacerts_roundtrip () =
  let u = (Lazy.force world).Pipeline.universe in
  let store = u.BP.aosp PD.V4_1 in
  with_tmpdir (fun dir ->
      (match Cacerts.write store dir with
      | Ok n -> check Alcotest.int "files written" (Rs.cardinal store) n
      | Error m -> Alcotest.fail m);
      match Cacerts.read ~name:"loaded" dir with
      | Error m -> Alcotest.fail m
      | Ok loaded ->
          check Alcotest.int "all loaded" (Rs.cardinal store) (Rs.cardinal loaded);
          (* same certificates by byte identity *)
          let ids s = Rs.certs s |> List.map C.byte_identity |> List.sort compare in
          Alcotest.(check bool) "byte-identical" true (ids store = ids loaded))

let test_cacerts_filenames () =
  let u = (Lazy.force world).Pipeline.universe in
  let cert = List.hd (Rs.certs (u.BP.aosp PD.V4_4)) in
  let name = Cacerts.filename_of cert 0 in
  check Alcotest.string "hash naming" (C.subject_hash32 cert ^ ".0") name;
  with_tmpdir (fun dir ->
      (match Cacerts.write (u.BP.aosp PD.V4_4) dir with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m);
      Array.iter
        (fun file ->
          Alcotest.(check bool) (file ^ " shaped") true
            (String.length file = 10 && file.[8] = '.'))
        (Sys.readdir dir))

let test_cacerts_overwrite () =
  let u = (Lazy.force world).Pipeline.universe in
  with_tmpdir (fun dir ->
      (match Cacerts.write (u.BP.aosp PD.V4_4) dir with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m);
      (* re-writing a smaller store must not leave stale files *)
      (match Cacerts.write (u.BP.aosp PD.V4_1) dir with
      | Ok n -> check Alcotest.int "second write" 139 n
      | Error m -> Alcotest.fail m);
      match Cacerts.read ~name:"x" dir with
      | Ok loaded -> check Alcotest.int "no stale entries" 139 (Rs.cardinal loaded)
      | Error m -> Alcotest.fail m)

let test_cacerts_bad_dir () =
  match Cacerts.read ~name:"x" "/nonexistent/path/here" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

(* --- json ---------------------------------------------------------------- *)

let test_json_basics () =
  check Alcotest.string "null" "null" (J.to_string J.Null);
  check Alcotest.string "bool" "true" (J.to_string (J.Bool true));
  check Alcotest.string "int" "-42" (J.to_string (J.Int (-42)));
  check Alcotest.string "float int" "2.0" (J.to_string (J.Float 2.0));
  check Alcotest.string "string" "\"a\\\"b\"" (J.to_string (J.String "a\"b"));
  check Alcotest.string "escape newline" "\"a\\nb\"" (J.to_string (J.String "a\nb"));
  check Alcotest.string "control" "\"\\u0001\"" (J.to_string (J.String "\x01"));
  check Alcotest.string "empty list" "[]" (J.to_string (J.List []));
  check Alcotest.string "empty obj" "{}" (J.to_string (J.Obj []));
  check Alcotest.string "nested" "{\"a\":[1,2]}"
    (J.to_string (J.Obj [ ("a", J.List [ J.Int 1; J.Int 2 ]) ]))

let test_json_pretty () =
  let doc = J.Obj [ ("k", J.List [ J.Int 1 ]) ] in
  let s = J.to_string ~pretty:true doc in
  Alcotest.(check bool) "has newlines" true (String.contains s '\n');
  (* compact and pretty agree after whitespace removal *)
  let strip s =
    String.to_seq s
    |> Seq.filter (fun c -> c <> ' ' && c <> '\n')
    |> String.of_seq
  in
  check Alcotest.string "same content" (J.to_string doc) (strip s)

(* --- export --------------------------------------------------------------- *)

let test_export_sessions () =
  let w = Lazy.force world in
  match Export.sessions_json ~limit:5 w with
  | J.Obj fields ->
      Alcotest.(check bool) "has sessions" true (List.mem_assoc "sessions" fields);
      (match List.assoc "sessions" fields with
      | J.List l -> check Alcotest.int "limited" 5 (List.length l)
      | _ -> Alcotest.fail "sessions not a list");
      (match List.assoc "total_sessions" fields with
      | J.Int n ->
          check Alcotest.int "totals"
            (Tangled_netalyzr.Netalyzr.total_sessions w.Pipeline.dataset) n
      | _ -> Alcotest.fail "total not int")
  | _ -> Alcotest.fail "not an object"

let test_export_notary () =
  let w = Lazy.force world in
  match Export.notary_json ~limit:3 w with
  | J.Obj fields ->
      (match List.assoc "unexpired" fields with
      | J.Int n -> check Alcotest.int "unexpired" 2000 n
      | _ -> Alcotest.fail "unexpired");
      (match List.assoc "validated_by_store" fields with
      | J.Obj stores -> check Alcotest.int "six stores" 6 (List.length stores)
      | _ -> Alcotest.fail "stores")
  | _ -> Alcotest.fail "not an object"

let test_export_stores_parseable_sizes () =
  let w = Lazy.force world in
  match Export.stores_json w with
  | J.Obj fields when List.mem_assoc "stores" fields -> (
      match List.assoc "stores" fields with
      | J.List stores ->
          check Alcotest.int "six stores" 6 (List.length stores);
          List.iter
            (function
              | J.Obj fields -> (
                  match (List.assoc "size" fields, List.assoc "certificates" fields) with
                  | J.Int size, J.List certs ->
                      check Alcotest.int "size matches list" size (List.length certs)
                  | _ -> Alcotest.fail "bad store shape")
              | _ -> Alcotest.fail "store not an object")
            stores
      | _ -> Alcotest.fail "stores is not a list")
  | _ -> Alcotest.fail "unexpected shape"

let test_export_write_file () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "out.json" in
      Export.write_file path (J.Obj [ ("x", J.Int 1) ]);
      let ic = open_in path in
      let line = input_line ic in
      close_in ic;
      check Alcotest.string "written" "{" line)

(* --- blocklist -------------------------------------------------------------- *)

let fixture =
  lazy
    (let rng = Prng.create 808 in
     let root = Authority.self_signed ~bits:512 rng (Dn.make "Block Root") in
     let good_root = Authority.self_signed ~bits:512 rng (Dn.make "Good Root") in
     let leaf =
       Authority.issue_leaf ~bits:512 rng ~parent:root ~dns_names:[ "mail.example" ]
         (Dn.make "mail.example")
     in
     let good_leaf =
       Authority.issue_leaf ~bits:512 rng ~parent:good_root
         ~dns_names:[ "mail.example" ] (Dn.make "mail.example")
     in
     (root, good_root, leaf, good_leaf))

let store_of roots = Rs.of_certs "bl" Rs.Aosp (List.map (fun (a : Authority.t) -> a.Authority.certificate) roots)

let test_blocklist_key () =
  let root, good_root, leaf, _ = Lazy.force fixture in
  let store = store_of [ root; good_root ] in
  let now = Ts.paper_epoch in
  (match Blocklist.validate Blocklist.empty ~now ~store [ leaf ] with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "clean blocklist should pass");
  let bl = Blocklist.block_key Blocklist.empty root.Authority.certificate in
  check Alcotest.int "one key" 1 (Blocklist.blocked_keys bl);
  match Blocklist.validate bl ~now ~store [ leaf ] with
  | Error (`Screen (Blocklist.Blocked_key _)) -> ()
  | _ -> Alcotest.fail "expected Blocked_key"

let test_blocklist_survives_renewal () =
  let root, good_root, leaf, _ = Lazy.force fixture in
  let renewed = Authority.renew root in
  let store = store_of [ renewed; good_root ] in
  let bl = Blocklist.block_key Blocklist.empty root.Authority.certificate in
  match Blocklist.validate bl ~now:Ts.paper_epoch ~store [ leaf ] with
  | Error (`Screen (Blocklist.Blocked_key _)) -> ()
  | _ -> Alcotest.fail "renewed CA must stay blocked"

let test_issuer_pin () =
  let root, good_root, leaf, good_leaf = Lazy.force fixture in
  let store = store_of [ root; good_root ] in
  let now = Ts.paper_epoch in
  let bl =
    Blocklist.pin_issuer Blocklist.empty ~subject_cn:"mail.example"
      good_root.Authority.certificate
  in
  check Alcotest.int "one pin" 1 (Blocklist.pinned_subjects bl);
  (match Blocklist.validate bl ~now ~store [ leaf ] with
  | Error (`Screen (Blocklist.Issuer_pin_violation _)) -> ()
  | _ -> Alcotest.fail "wrong issuer must violate the pin");
  (match Blocklist.validate bl ~now ~store [ good_leaf ] with
  | Ok _ -> ()
  | _ -> Alcotest.fail "pinned issuer must pass");
  (* subdomains inherit the pin; unrelated names do not *)
  let rng = Prng.create 809 in
  let sub =
    Authority.issue_leaf ~bits:512 rng ~parent:root ~dns_names:[ "a.mail.example" ]
      (Dn.make "a.mail.example")
  in
  (match Blocklist.validate bl ~now ~store [ sub ] with
  | Error (`Screen (Blocklist.Issuer_pin_violation _)) -> ()
  | _ -> Alcotest.fail "subdomain must inherit the pin");
  let other =
    Authority.issue_leaf ~bits:512 rng ~parent:root ~dns_names:[ "other.example" ]
      (Dn.make "other.example")
  in
  match Blocklist.validate bl ~now ~store [ other ] with
  | Ok _ -> ()
  | _ -> Alcotest.fail "unpinned subject unaffected"

let test_blocklist_chain_failures_pass_through () =
  let root, _, leaf, _ = Lazy.force fixture in
  ignore root;
  let empty_store = Rs.empty "none" in
  match Blocklist.validate Blocklist.empty ~now:Ts.paper_epoch ~store:empty_store [ leaf ] with
  | Error (`Chain Chain.No_trusted_root) -> ()
  | _ -> Alcotest.fail "chain failure must surface"

(* --- sensitivity --------------------------------------------------------------- *)

let test_sensitivity () =
  let base = Lazy.force world in
  (* two tiny extra worlds keep this fast *)
  let config =
    { base.Pipeline.config with Pipeline.sessions = 400; notary_leaves = 400 }
  in
  let stats = Sensitivity.compute ~seeds:[ 21; 22 ] ~config base in
  check Alcotest.int "six statistics" 6 (List.length stats);
  List.iter
    (fun (s : Sensitivity.stat) ->
      check Alcotest.int "three runs" 3 (List.length s.Sensitivity.values);
      Alcotest.(check bool) (s.Sensitivity.name ^ " spread sane") true
        (s.Sensitivity.stddev < 0.10);
      Alcotest.(check bool) (s.Sensitivity.name ^ " near paper") true
        (abs_float (s.Sensitivity.mean -. s.Sensitivity.paper) < 0.12))
    stats

let suite =
  [
    ("cacerts roundtrip", `Quick, test_cacerts_roundtrip);
    ("cacerts filenames", `Quick, test_cacerts_filenames);
    ("cacerts overwrite", `Quick, test_cacerts_overwrite);
    ("cacerts bad dir", `Quick, test_cacerts_bad_dir);
    ("json basics", `Quick, test_json_basics);
    ("json pretty", `Quick, test_json_pretty);
    ("export sessions", `Quick, test_export_sessions);
    ("export notary", `Quick, test_export_notary);
    ("export stores", `Quick, test_export_stores_parseable_sizes);
    ("export write file", `Quick, test_export_write_file);
    ("blocklist key", `Quick, test_blocklist_key);
    ("blocklist survives renewal", `Quick, test_blocklist_survives_renewal);
    ("issuer pin", `Quick, test_issuer_pin);
    ("chain failures pass through", `Quick, test_blocklist_chain_failures_pass_through);
    ("sensitivity", `Slow, test_sensitivity);
  ]
