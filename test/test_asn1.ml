(* Tests for the ASN.1 DER codec and OID machinery. *)

module Der = Tangled_asn1.Der
module Oid = Tangled_asn1.Oid
module B = Tangled_numeric.Bigint
module Ts = Tangled_util.Timestamp
module Hex = Tangled_util.Hex

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let der_result =
  Alcotest.testable
    (fun fmt -> function
      | Ok v -> Der.pp fmt v
      | Error e -> Der.pp_error fmt e)
    ( = )

(* --- oid ---------------------------------------------------------------- *)

let test_oid_string () =
  let oid = Oid.of_string "1.2.840.113549.1.1.11" in
  check Alcotest.string "roundtrip" "1.2.840.113549.1.1.11" (Oid.to_string oid);
  check (Alcotest.list Alcotest.int) "arcs" [ 1; 2; 840; 113549; 1; 1; 11 ] (Oid.arcs oid);
  Alcotest.(check bool) "equal to named" true (Oid.equal oid Oid.sha256_with_rsa)

let test_oid_validation () =
  let bad s = try ignore (Oid.of_string s); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "first arc 3" true (bad "3.1");
  Alcotest.(check bool) "second arc 40" true (bad "1.40");
  Alcotest.(check bool) "single arc" true (bad "1");
  Alcotest.(check bool) "garbage" true (bad "1.x.3");
  Alcotest.(check bool) "2.999 ok" false (bad "2.999")

let test_oid_der_content () =
  (* 1.2.840.113549 encodes as 2a 86 48 86 f7 0d *)
  check Alcotest.string "rsadsi" "2a864886f70d"
    (Hex.encode (Oid.to_der_content (Oid.of_string "1.2.840.113549")));
  check Alcotest.string "2.5.4.3" "550403"
    (Hex.encode (Oid.to_der_content Oid.at_common_name));
  (match Oid.of_der_content (Hex.decode "2a864886f70d") with
  | Some oid -> check Alcotest.string "decode" "1.2.840.113549" (Oid.to_string oid)
  | None -> Alcotest.fail "decode failed");
  check
    (Alcotest.option (Alcotest.testable Oid.pp Oid.equal))
    "truncated multi-byte arc" None
    (Oid.of_der_content "\x2a\x86");
  (* non-minimal base-128: a leading 0x80 septet re-encodes shorter, so
     it must be rejected (decode acceptance implies canonical bytes) *)
  check
    (Alcotest.option (Alcotest.testable Oid.pp Oid.equal))
    "leading zero septet" None
    (Oid.of_der_content "\x55\x1d\x80\x0e");
  check
    (Alcotest.option (Alcotest.testable Oid.pp Oid.equal))
    "arc overflowing int" None
    (Oid.of_der_content "\x2a\xff\xff\xff\xff\xff\xff\xff\xff\xff\x7f")

(* --- known encodings ------------------------------------------------------ *)

let test_encode_primitives () =
  check Alcotest.string "bool true" "0101ff" (Hex.encode (Der.encode (Der.Boolean true)));
  check Alcotest.string "bool false" "010100" (Hex.encode (Der.encode (Der.Boolean false)));
  check Alcotest.string "int 0" "020100" (Hex.encode (Der.encode (Der.Integer B.zero)));
  check Alcotest.string "int 127" "02017f"
    (Hex.encode (Der.encode (Der.Integer (B.of_int 127))));
  (* 128 needs a leading zero to stay positive *)
  check Alcotest.string "int 128" "02020080"
    (Hex.encode (Der.encode (Der.Integer (B.of_int 128))));
  check Alcotest.string "int -128" "020180"
    (Hex.encode (Der.encode (Der.Integer (B.of_int (-128)))));
  check Alcotest.string "int 256" "02020100"
    (Hex.encode (Der.encode (Der.Integer (B.of_int 256))));
  check Alcotest.string "null" "0500" (Hex.encode (Der.encode Der.Null));
  check Alcotest.string "octets" "0403616263"
    (Hex.encode (Der.encode (Der.Octet_string "abc")));
  check Alcotest.string "empty seq" "3000" (Hex.encode (Der.encode (Der.Sequence [])))

let test_encode_long_length () =
  (* content over 127 bytes forces the long length form *)
  let s = String.make 200 'x' in
  let enc = Der.encode (Der.Octet_string s) in
  check Alcotest.string "long form header" "0481c8" (Hex.encode (String.sub enc 0 3));
  check der_result "roundtrip" (Ok (Der.Octet_string s)) (Der.decode enc)

let test_encode_times () =
  let t = Ts.of_date ~hour:12 2014 4 1 in
  let enc = Der.encode (Der.Utc_time t) in
  check der_result "utc roundtrip" (Ok (Der.Utc_time t)) (Der.decode enc);
  let enc = Der.encode (Der.Generalized_time t) in
  check der_result "gen roundtrip" (Ok (Der.Generalized_time t)) (Der.decode enc)

let test_context_tags () =
  let v = Der.Context (0, Der.Integer (B.of_int 2)) in
  check Alcotest.string "explicit [0]" "a003020102" (Hex.encode (Der.encode v));
  check der_result "roundtrip" (Ok v) (Der.decode (Der.encode v));
  let p = Der.Context_primitive (2, "abc") in
  check Alcotest.string "implicit [2]" "8203616263" (Hex.encode (Der.encode p));
  check der_result "roundtrip" (Ok p) (Der.decode (Der.encode p))

(* --- strictness ------------------------------------------------------------ *)

let expect_error name input =
  match Der.decode (Hex.decode input) with
  | Ok _ -> Alcotest.fail (name ^ ": expected a decode error")
  | Error _ -> ()

let test_der_strictness () =
  expect_error "indefinite length" "30800000";
  expect_error "non-minimal length" "04810161";
  expect_error "truncated" "0405616263";
  expect_error "trailing garbage" "050000";
  expect_error "boolean 0x01 not DER" "010101";
  expect_error "boolean length 2" "01020000";
  expect_error "non-minimal positive int" "0202007f";
  expect_error "non-minimal negative int" "0202ff80";
  expect_error "empty integer" "0200";
  expect_error "bit string missing prefix" "0300";
  expect_error "bit string unused > 7" "030209ff";
  expect_error "null with content" "050100";
  expect_error "bad utctime" "170d3134303430315a5a5a5a5a5a5a";
  expect_error "oid with leading zero septet" "0604551d800e";
  (* a PrintableString containing '@' must be rejected *)
  (match Der.decode (Hex.decode ("1301" ^ Hex.encode "@")) with
  | Ok _ -> Alcotest.fail "printable @ accepted"
  | Error _ -> ())

(* the cursor decoder's length-form hardening: truncated, overlong and
   non-minimal definite lengths each draw the precise error *)
let test_length_forms () =
  let expect_exact name input err =
    match Der.decode (Hex.decode input) with
    | Ok _ -> Alcotest.fail (name ^ ": expected a decode error")
    | Error e -> check (Alcotest.testable Der.pp_error ( = )) name err e
  in
  expect_exact "length bytes cut off" "0482ff" Der.Truncated;
  expect_exact "length byte missing entirely" "04" Der.Truncated;
  expect_exact "overlong 5-byte length form" "04850000000001" Der.Bad_length;
  expect_exact "indefinite length" "0480" Der.Bad_length;
  expect_exact "non-minimal 2-byte length" "0482007f" Der.Bad_length;
  expect_exact "long form below 0x80" "048101" Der.Bad_length;
  (* a valid 2-byte long form still decodes *)
  let s = String.make 300 'y' in
  check der_result "300-byte octet string" (Ok (Der.Octet_string s))
    (Der.decode (Der.encode (Der.Octet_string s)))

let test_child_spans () =
  let children = [ Der.Integer B.one; Der.Null; Der.Octet_string "abc" ] in
  let raw = Der.encode (Der.Sequence children) in
  (match Der.child_spans raw with
  | Error e -> Alcotest.failf "child_spans: %s" (Der.error_to_string e)
  | Ok spans ->
      check Alcotest.int "three children" 3 (List.length spans);
      (* spans tile the sequence body contiguously to the end *)
      let stop =
        List.fold_left
          (fun expect (off, len) ->
            check Alcotest.int "contiguous" expect off;
            off + len)
          2 spans
      in
      check Alcotest.int "covers body" (String.length raw) stop;
      (* each span is exactly the child's own encoding *)
      List.iter2
        (fun (off, len) child ->
          check der_result "span decodes to child" (Ok child)
            (Der.decode (String.sub raw off len)))
        spans children);
  let fails input =
    match Der.child_spans input with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "primitive rejected" true (fails (Hex.decode "0500"));
  Alcotest.(check bool) "empty rejected" true (fails "");
  Alcotest.(check bool) "truncated body rejected" true (fails (Hex.decode "30050201"));
  Alcotest.(check bool) "trailing garbage rejected" true (fails (raw ^ "\x00"));
  (* an empty SEQUENCE has no children *)
  check
    (Alcotest.result
       (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
       (Alcotest.testable Der.pp_error ( = )))
    "empty sequence" (Ok [])
    (Der.child_spans (Der.encode (Der.Sequence [])))

let test_negative_integers () =
  List.iter
    (fun n ->
      let v = Der.Integer (B.of_int n) in
      check der_result (Printf.sprintf "int %d" n) (Ok v) (Der.decode (Der.encode v)))
    [ -1; -127; -128; -129; -255; -256; -257; -65536; 65535; 1 lsl 40; -(1 lsl 40) ]

let test_accessors () =
  check (Alcotest.option (Alcotest.list der_result)) "as_sequence" None
    (Option.map (List.map Result.ok) (Der.as_sequence Der.Null));
  Alcotest.(check bool) "as_integer" true
    (Der.as_integer (Der.Integer B.one) = Some B.one);
  Alcotest.(check bool) "as_string utf8" true
    (Der.as_string (Der.Utf8_string "x") = Some "x");
  Alcotest.(check bool) "as_string printable" true
    (Der.as_string (Der.Printable_string "x") = Some "x");
  Alcotest.(check bool) "as_time" true
    (Der.as_time (Der.Utc_time 0) = Some 0);
  Alcotest.(check bool) "as_boolean" true (Der.as_boolean (Der.Boolean true) = Some true)

(* --- qcheck roundtrip -------------------------------------------------------- *)

let gen_der =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun b -> Der.Boolean b) bool;
        map (fun n -> Der.Integer (B.of_int n)) int;
        map (fun s -> Der.Octet_string s) (string_size (int_range 0 40));
        return Der.Null;
        map (fun s -> Der.Utf8_string s) (string_size (int_range 0 20));
        map (fun s -> Der.Ia5_string s)
          (string_size ~gen:(map Char.chr (int_range 0 127)) (int_range 0 20));
        map
          (fun n -> Der.Utc_time (Ts.of_date 2000 1 1 + (abs n mod 1_000_000_000)))
          int;
      ]
  in
  let rec tree depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          (1, map (fun l -> Der.Sequence l) (list_size (int_range 0 4) (tree (depth - 1))));
          (1, map (fun l -> Der.Set l) (list_size (int_range 0 4) (tree (depth - 1))));
          (1, map2 (fun n v -> Der.Context (n mod 31, v)) (int_range 0 30) (tree (depth - 1)));
        ]
  in
  tree 3

let prop_der_roundtrip =
  QCheck.Test.make ~name:"DER encode/decode roundtrip" ~count:300
    (QCheck.make gen_der) (fun v -> Der.decode (Der.encode v) = Ok v)

let prop_der_canonical =
  QCheck.Test.make ~name:"DER is canonical (re-encode identical)" ~count:200
    (QCheck.make gen_der) (fun v ->
      match Der.decode (Der.encode v) with
      | Ok v' -> Der.encode v' = Der.encode v
      | Error _ -> false)

let suite =
  [
    ("oid strings", `Quick, test_oid_string);
    ("oid validation", `Quick, test_oid_validation);
    ("oid DER content", `Quick, test_oid_der_content);
    ("primitive encodings", `Quick, test_encode_primitives);
    ("long-form lengths", `Quick, test_encode_long_length);
    ("time encodings", `Quick, test_encode_times);
    ("context tags", `Quick, test_context_tags);
    ("DER strictness", `Quick, test_der_strictness);
    ("length-form hardening", `Quick, test_length_forms);
    ("child spans", `Quick, test_child_spans);
    ("negative integers", `Quick, test_negative_integers);
    ("accessors", `Quick, test_accessors);
    qtest prop_der_roundtrip;
    qtest prop_der_canonical;
  ]
