(* Tests for the Notary observatory over the shared quick world. *)

module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Rs = Tangled_store.Root_store
module C = Tangled_x509.Certificate
module Authority = Tangled_x509.Authority
module Notary = Tangled_notary.Notary
module Pipeline = Tangled_core.Pipeline

let check = Alcotest.check

let world = lazy (Lazy.force Pipeline.quick)
let notary () = (Lazy.force world).Pipeline.notary
let universe () = (Lazy.force world).Pipeline.universe

let test_volumes () =
  let n = notary () in
  check Alcotest.int "unexpired" 2_000 (Notary.unexpired n);
  check Alcotest.int "total includes expired" 2_200 (Notary.total n);
  Alcotest.(check bool) "scale" true (abs_float (n.Notary.scale -. 0.002) < 1e-9)

let test_every_chain_verifies () =
  let n = notary () in
  for i = 0 to Notary.total n - 1 do
    Alcotest.(check bool) "anchor present" true (Notary.anchor_id n i >= 0)
  done

let test_per_root_counts_sum () =
  let n = notary () in
  let counts = Notary.per_root_counts n in
  let sum = Hashtbl.fold (fun _ v acc -> acc + v) counts 0 in
  check Alcotest.int "counts cover all unexpired" (Notary.unexpired n) sum

let test_active_roots_validate_something () =
  let n = notary () in
  let counts = Notary.per_root_counts n in
  Array.iter
    (fun (r : BP.root) ->
      let key = C.equivalence_key r.BP.authority.Authority.certificate in
      let c = Option.value ~default:0 (Hashtbl.find_opt counts key) in
      if r.BP.traffic_weight > 0.0 then
        Alcotest.(check bool) ("active validates: " ^ r.BP.display_name) true (c > 0)
      else
        check Alcotest.int ("inactive validates nothing: " ^ r.BP.display_name) 0 c)
    (universe ()).BP.roots

let test_validated_by_store_ordering () =
  let n = notary () in
  let u = universe () in
  let v store = Notary.validated_by_store n store in
  let mozilla = v u.BP.mozilla in
  let ios = v u.BP.ios7 in
  let a41 = v (u.BP.aosp PD.V4_1) in
  let a44 = v (u.BP.aosp PD.V4_4) in
  (* Table 3's qualitative shape: all stores validate ~74% and iOS
     validates the most *)
  List.iter
    (fun (name, count) ->
      let f = float_of_int count /. float_of_int (Notary.unexpired n) in
      Alcotest.(check bool) (name ^ " near 74%") true (f > 0.70 && f < 0.80))
    [ ("mozilla", mozilla); ("ios", ios); ("aosp41", a41); ("aosp44", a44) ];
  Alcotest.(check bool) "iOS validates most" true (ios >= a44 && ios >= mozilla);
  Alcotest.(check bool) "4.4 >= 4.1" true (a44 >= a41)

let test_crosscheck_against_full_validator () =
  let n = notary () in
  let u = universe () in
  (* the anchor-membership shortcut must agree with real path building *)
  Alcotest.(check bool) "agrees on AOSP 4.4" true
    (Notary.crosscheck n (u.BP.aosp PD.V4_4) ~sample:150 ~seed:5);
  Alcotest.(check bool) "agrees on Mozilla" true
    (Notary.crosscheck n u.BP.mozilla ~sample:150 ~seed:6)

let test_has_record () =
  let n = notary () in
  let u = universe () in
  (* official-store members are always on record *)
  Alcotest.(check bool) "mozilla member recorded" true
    (Notary.has_record n (List.hd (Rs.certs u.BP.mozilla)));
  (* an unrecorded extra is not *)
  let fota = Hashtbl.find u.BP.extra_by_id "bae1df7c" in
  Alcotest.(check bool) "FOTA root unrecorded" false
    (Notary.has_record n fota.BP.authority.Authority.certificate);
  (* the interceptor root is unknown to the Notary (§7) *)
  Alcotest.(check bool) "interceptor unknown" false
    (Notary.has_record n u.BP.interceptor.Authority.certificate)

let test_classification () =
  let n = notary () in
  let u = universe () in
  let classify id = Notary.classify n (Hashtbl.find u.BP.extra_by_id id).BP.authority.Authority.certificate in
  Alcotest.(check bool) "AddTrust -> Mozilla+iOS" true
    (classify "9696d421" = PD.Mozilla_and_ios);
  Alcotest.(check bool) "DoD -> iOS only" true (classify "b530fe64" = PD.Ios_only);
  Alcotest.(check bool) "FOTA -> unrecorded" true (classify "bae1df7c" = PD.Unrecorded);
  (* an active Android-only extra is recorded but in no other store *)
  Alcotest.(check bool) "VeriSign TN -> Android only" true
    (classify "aad0babe" = PD.Android_only)

let test_counts_for_certs () =
  let n = notary () in
  let u = universe () in
  let certs = BP.store_of_category u "AOSP 4.4 certs" in
  let counts = Notary.counts_for_certs n certs in
  check Alcotest.int "one count per cert" (List.length certs) (Array.length counts);
  Alcotest.(check bool) "some zeros" true (Array.exists (fun c -> c = 0.0) counts);
  Alcotest.(check bool) "some positive" true (Array.exists (fun c -> c > 0.0) counts)

let test_zero_fraction_targets () =
  let n = notary () in
  let u = universe () in
  (* Table 4's zero-validation fractions, within tolerance *)
  List.iter
    (fun (label, _, paper_zero) ->
      let counts = Notary.counts_for_certs n (BP.store_of_category u label) in
      let zero = Tangled_util.Stats.fraction (fun c -> c = 0.0) counts in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %.2f vs paper %.2f" label zero paper_zero)
        true
        (abs_float (zero -. paper_zero) < 0.08))
    PD.table4_rows

let test_expired_excluded () =
  let n = notary () in
  let u = universe () in
  (* validated_by_store only counts unexpired chains *)
  let v = Notary.validated_by_store n (u.BP.aosp PD.V4_4) in
  Alcotest.(check bool) "bounded by unexpired" true (v <= Notary.unexpired n)

(* lean generation (sampled chain audit, trusted assembly) must be a
   pure speedup: the arena — DER blob, columns, anchors — is
   byte-identical to the verify-everything path *)
let test_lean_full_arena_identity () =
  let u = universe () in
  let gen () =
    let n = Notary.generate ~leaves:2_000 ~jobs:2 ~seed:77 u in
    Tangled_x509.Arena.digest (Notary.arena n)
  in
  Fun.protect
    ~finally:(fun () ->
      Notary.set_lean true;
      Tangled_x509.Authority.set_lean true)
    (fun () ->
      Notary.set_lean true;
      Tangled_x509.Authority.set_lean true;
      let lean = gen () in
      Notary.set_lean false;
      Tangled_x509.Authority.set_lean false;
      let full = gen () in
      check Alcotest.string "arena digest identical" full lean)

let suite =
  [
    ("volumes", `Quick, test_volumes);
    ("every chain verifies", `Quick, test_every_chain_verifies);
    ("per-root counts sum", `Quick, test_per_root_counts_sum);
    ("activity matches counts", `Quick, test_active_roots_validate_something);
    ("store validation shape (Table 3)", `Quick, test_validated_by_store_ordering);
    ("crosscheck vs full validator", `Slow, test_crosscheck_against_full_validator);
    ("has_record", `Quick, test_has_record);
    ("classification (Figure 2 legend)", `Quick, test_classification);
    ("counts_for_certs", `Quick, test_counts_for_certs);
    ("Table 4 zero fractions", `Quick, test_zero_fraction_targets);
    ("expired excluded", `Quick, test_expired_excluded);
    ("lean vs full arena identity", `Slow, test_lean_full_arena_identity);
  ]
