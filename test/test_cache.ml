(* The bounded decision cache (lib/cache): the CLOCK ring never holds
   more than [capacity] live entries, a hit always returns the value
   the most recent add installed for that key in the current epoch,
   epoch bumps invalidate in O(1) without counting evictions, and the
   eviction counter moves only under genuine capacity pressure. *)

module Cache = Tangled_cache.Cache

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* each test gets its own counter name so the process-global obs
   counters never couple two tests *)
let fresh_name =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "test.%s.%d" prefix !n

(* --- QCheck: model-checked CLOCK behaviour ----------------------------- *)

(* A random program over a small key space against a reference model
   (a Hashtbl mirroring "what was last added this epoch").  The two
   properties the users lean on:
   - bounded: [length] never exceeds [capacity], whatever the program;
   - coherent: a hit is exactly the model's value — the cache may
     forget (evict) but never invent or resurrect across epochs. *)
type op = Add of int * int | Find of int | Bump | Clear

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun k v -> Add (k, v)) (int_bound 15) (int_bound 1000));
        (6, map (fun k -> Find k) (int_bound 15));
        (1, return Bump);
        (1, return Clear);
      ])

let op_print = function
  | Add (k, v) -> Printf.sprintf "add k%d %d" k v
  | Find k -> Printf.sprintf "find k%d" k
  | Bump -> "bump"
  | Clear -> "clear"

let arb_program =
  QCheck.make
    ~print:(fun (cap, ops) ->
      Printf.sprintf "capacity=%d [%s]" cap
        (String.concat "; " (List.map op_print ops)))
    QCheck.Gen.(pair (int_range 1 8) (list_size (int_bound 200) op_gen))

let prop_clock_bounded_and_coherent =
  QCheck.Test.make ~name:"CLOCK stays bounded and hits return the last add"
    ~count:300 arb_program
    (fun (cap, ops) ->
      let t = Cache.create ~name:(fresh_name "model") ~capacity:cap () in
      let model = Hashtbl.create 16 in
      let key k = Printf.sprintf "k%d" k in
      List.for_all
        (fun op ->
          (match op with
          | Add (k, v) ->
              Cache.add t (key k) v;
              Hashtbl.replace model (key k) v;
              (* an add is immediately visible: its own key may not be
                 the eviction victim *)
              if Cache.find t (key k) <> Some v then
                QCheck.Test.fail_reportf "add k%d %d not visible" k v
          | Find k -> (
              match Cache.find t (key k) with
              | None -> () (* misses are always allowed: eviction *)
              | Some v ->
                  let want = Hashtbl.find_opt model (key k) in
                  if want <> Some v then
                    QCheck.Test.fail_reportf
                      "hit on k%d returned %d, model says %s" k v
                      (match want with
                      | Some w -> string_of_int w
                      | None -> "dead"))
          | Bump ->
              Cache.bump_epoch t;
              Hashtbl.reset model
          | Clear ->
              Cache.clear t;
              Hashtbl.reset model);
          Cache.length t <= cap)
        ops)

(* --- unit: eviction accounting ----------------------------------------- *)

let test_eviction_only_under_pressure () =
  let t = Cache.create ~name:(fresh_name "evict") ~capacity:4 () in
  let ev () = (Cache.stats t).Cache.evictions in
  let e0 = ev () in
  for i = 1 to 4 do
    Cache.add t (string_of_int i) i
  done;
  check Alcotest.int "filling to capacity evicts nothing" e0 (ev ());
  check Alcotest.int "full" 4 (Cache.length t);
  Cache.add t "5" 5;
  check Alcotest.int "one past capacity evicts exactly one" (e0 + 1) (ev ());
  check Alcotest.int "still full" 4 (Cache.length t);
  (* overwriting a live key is not an eviction *)
  Cache.add t "5" 50;
  check Alcotest.int "overwrite in place" (e0 + 1) (ev ());
  check (Alcotest.option Alcotest.int) "overwrite visible" (Some 50)
    (Cache.find t "5")

let test_epoch_invalidates_without_evictions () =
  let t = Cache.create ~name:(fresh_name "epoch") ~capacity:4 () in
  for i = 1 to 4 do
    Cache.add t (string_of_int i) i
  done;
  let e0 = (Cache.stats t).Cache.evictions in
  Cache.bump_epoch t;
  check Alcotest.int "bump empties logically" 0 (Cache.length t);
  check (Alcotest.option Alcotest.int) "prior entries dead" None
    (Cache.find t "1");
  (* refilling reclaims the stale slots silently: they are not live
     entries being displaced, so the eviction counter must not move *)
  for i = 5 to 8 do
    Cache.add t (string_of_int i) i
  done;
  check Alcotest.int "stale-slot reclaim is not eviction" e0
    ((Cache.stats t).Cache.evictions);
  check Alcotest.int "refilled" 4 (Cache.length t)

let test_set_epoch_sync () =
  let t = Cache.create ~name:(fresh_name "sync") ~capacity:4 () in
  Cache.add t "a" 1;
  Cache.set_epoch t (Cache.epoch t);
  check (Alcotest.option Alcotest.int) "same epoch is a no-op" (Some 1)
    (Cache.find t "a");
  Cache.set_epoch t 42;
  check Alcotest.int "epoch jumped" 42 (Cache.epoch t);
  check (Alcotest.option Alcotest.int) "jump invalidates" None (Cache.find t "a")

let test_find_or_add_computes_once () =
  let t = Cache.create ~name:(fresh_name "foa") ~capacity:4 () in
  let runs = ref 0 in
  let compute () = incr runs; 7 in
  check Alcotest.int "miss computes" 7 (Cache.find_or_add t "k" compute);
  check Alcotest.int "hit does not" 7 (Cache.find_or_add t "k" compute);
  check Alcotest.int "computed exactly once" 1 !runs

let test_clear_keeps_epoch () =
  let t = Cache.create ~name:(fresh_name "clear") ~capacity:4 () in
  Cache.bump_epoch t;
  let e = Cache.epoch t in
  Cache.add t "a" 1;
  Cache.clear t;
  check Alcotest.int "empty" 0 (Cache.length t);
  check Alcotest.int "epoch unchanged" e (Cache.epoch t)

let test_capacity_one () =
  let t = Cache.create ~name:(fresh_name "one") ~capacity:1 () in
  Cache.add t "a" 1;
  Cache.add t "b" 2;
  check Alcotest.int "bounded at one" 1 (Cache.length t);
  check (Alcotest.option Alcotest.int) "latest survives" (Some 2)
    (Cache.find t "b");
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Cache.create: capacity must be >= 1") (fun () ->
      ignore (Cache.create ~name:(fresh_name "zero") ~capacity:0 ()))

let suite =
  [
    qtest prop_clock_bounded_and_coherent;
    Alcotest.test_case "evictions only under capacity pressure" `Quick
      test_eviction_only_under_pressure;
    Alcotest.test_case "epoch bump invalidates without evictions" `Quick
      test_epoch_invalidates_without_evictions;
    Alcotest.test_case "set_epoch syncs and invalidates" `Quick
      test_set_epoch_sync;
    Alcotest.test_case "find_or_add computes once" `Quick
      test_find_or_add_computes_once;
    Alcotest.test_case "clear keeps the epoch" `Quick test_clear_keeps_epoch;
    Alcotest.test_case "capacity one and zero" `Quick test_capacity_one;
  ]
