(* Robustness fuzzing: the parsers must return errors, never crash, on
   arbitrary and on mutated-valid input. *)

module Der = Tangled_asn1.Der
module C = Tangled_x509.Certificate
module Pem = Tangled_x509.Pem
module Dn = Tangled_x509.Dn
module Authority = Tangled_x509.Authority
module Chain = Tangled_validation.Chain
module Rs = Tangled_store.Root_store
module Prng = Tangled_util.Prng
module Ts = Tangled_util.Timestamp

let qtest = QCheck_alcotest.to_alcotest

let prop_der_decode_total =
  QCheck.Test.make ~name:"Der.decode never raises" ~count:2000 QCheck.string (fun s ->
      match Der.decode s with Ok _ | Error _ -> true)

let prop_cert_decode_total =
  QCheck.Test.make ~name:"Certificate.decode never raises" ~count:1000 QCheck.string
    (fun s -> match C.decode s with Ok _ | Error _ -> true)

let prop_pem_decode_total =
  QCheck.Test.make ~name:"Pem.decode_all never raises" ~count:1000 QCheck.string
    (fun s -> match Pem.decode_all s with Ok _ | Error _ -> true)

let prop_base64_decode_total =
  QCheck.Test.make ~name:"base64 decode never raises" ~count:1000 QCheck.string
    (fun s -> match Pem.base64_decode s with Ok _ | Error _ -> true)

(* Mutation fuzzing: flip one byte of a valid certificate; the decoder
   must either reject it or produce a certificate whose signature no
   longer verifies (the bytes matter). *)

let fixture =
  lazy
    (let rng = Prng.create 4242 in
     let root = Authority.self_signed ~bits:512 rng (Dn.make "Fuzz Root") in
     let leaf =
       Authority.issue_leaf ~bits:512 rng ~parent:root ~dns_names:[ "f.example" ]
         (Dn.make "f.example")
     in
     (root, leaf))

let prop_mutated_cert_rejected_or_unverifiable =
  QCheck.Test.make ~name:"bit-flipped certificates never verify" ~count:300
    QCheck.(pair small_nat small_nat)
    (fun (pos_seed, bit) ->
      let root, leaf = Lazy.force fixture in
      let raw = Bytes.of_string (C.encode leaf) in
      let pos = pos_seed mod Bytes.length raw in
      Bytes.set raw pos
        (Char.chr (Char.code (Bytes.get raw pos) lxor (1 lsl (bit mod 8))));
      let mutated = Bytes.to_string raw in
      QCheck.assume (mutated <> C.encode leaf);
      match C.decode mutated with
      | Error _ -> true
      | Ok cert ->
          (* parsed despite the flip: the signature must now fail, or the
             flip landed outside the signed region entirely and produced
             an identical TBS + signature (impossible since bytes differ
             somewhere inside the TLV tree) *)
          not
            (C.verify_signature cert
               ~issuer_key:root.Authority.key.Tangled_crypto.Rsa.pub)
          || String.equal (C.byte_identity cert) (C.byte_identity leaf))

(* Random chains never validate against an empty or unrelated store,
   and Chain.validate is total. *)
let prop_validate_total =
  QCheck.Test.make ~name:"Chain.validate total on junk pools" ~count:200
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Prng.create seed in
      let root, leaf = Lazy.force fixture in
      let pool =
        List.init (Prng.int rng 3) (fun _ ->
            if Prng.bool rng then leaf else root.Authority.certificate)
      in
      let store = Rs.empty "empty" in
      match (Chain.validate ~now:Ts.paper_epoch ~store (leaf :: pool)).Chain.verdict with
      | Ok _ -> false (* empty store can never anchor *)
      | Error _ -> true)

(* The ingestion stack is total: arbitrary bytes through the JSON
   parser and every ingest entry point yield a value, never an
   exception. *)

module J = Tangled_util.Json
module B = Tangled_numeric.Bigint
module Ingest = Tangled_ingest.Ingest

let prop_json_parse_total =
  QCheck.Test.make ~name:"Json.parse never raises" ~count:2000 QCheck.string
    (fun s -> match J.parse s with Ok _ | Error _ -> true)

(* Structured JSON round-trips exactly (floats excluded: rendering is
   %.12g, not shortest-roundtrip). *)
let gen_json =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun i -> J.Int i) int;
        map (fun s -> J.String s) (string_size ~gen:printable (0 -- 12));
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'z') (1 -- 8) in
  sized @@ fix (fun self n ->
      if n <= 0 then scalar
      else
        frequency
          [
            (2, scalar);
            (1, map (fun l -> J.List l) (list_size (0 -- 4) (self (n / 2))));
            ( 1,
              map
                (fun kvs ->
                  (* duplicate keys would not round-trip through assoc *)
                  let seen = Hashtbl.create 8 in
                  J.Obj
                    (List.filter
                       (fun (k, _) ->
                         if Hashtbl.mem seen k then false
                         else (Hashtbl.add seen k (); true))
                       kvs))
                (list_size (0 -- 4) (pair key (self (n / 2)))) );
          ])

let prop_json_roundtrip =
  QCheck.Test.make ~name:"Json print/parse roundtrip" ~count:500
    (QCheck.make ~print:J.to_string gen_json)
    (fun j ->
      match J.parse (J.to_string j) with
      | Ok j' -> j = j'
      | Error _ -> false)

let prop_json_pretty_roundtrip =
  QCheck.Test.make ~name:"Json pretty-print/parse roundtrip" ~count:500
    (QCheck.make ~print:J.to_string gen_json)
    (fun j ->
      match J.parse (J.to_string ~pretty:true j) with
      | Ok j' -> j = j'
      | Error _ -> false)

let prop_ingest_total =
  QCheck.Test.make ~name:"Ingest entry points never raise" ~count:600
    QCheck.string (fun s ->
      let ok : 'a. 'a Ingest.ingest -> bool =
       fun r ->
        r.Ingest.stats.Ingest.accepted >= 0
        && r.Ingest.stats.Ingest.quarantined_total
           = List.length r.Ingest.quarantine
      in
      ok (Ingest.sessions_of_string s)
      && ok (Ingest.notary_of_string s)
      && ok (Ingest.stores_of_string s))

(* A harsher corpus than uniform junk: take a valid export and smash it
   with the fault operators at high rates — ingestion must stay total
   and every quarantined record must carry a taxonomy label. *)
let export_fixture =
  lazy
    (let w = Lazy.force Tangled_core.Pipeline.quick in
     Tangled_core.Export.sessions_jsonl ~limit:60 w)

let prop_ingest_total_on_faulted_exports =
  QCheck.Test.make ~name:"Ingest total on fault-injected exports" ~count:100
    QCheck.(pair (int_range 0 100_000) (int_range 1 10))
    (fun (seed, rate_i) ->
      let doc = Lazy.force export_fixture in
      let damaged, _ledger =
        Tangled_fault.Fault.inject ~seed ~rate:(0.1 *. float_of_int rate_i) doc
      in
      let r = Ingest.sessions_of_string damaged in
      List.for_all
        (fun (q : Ingest.quarantined) ->
          String.length (Ingest.reason_label q.Ingest.reason) > 0)
        r.Ingest.quarantine)

let prop_bigint_parse_total =
  QCheck.Test.make ~name:"Bigint.of_string/of_hex never raise" ~count:1000
    QCheck.string (fun s ->
      (match B.of_string s with Ok _ | Error _ -> true)
      && match B.of_hex s with Ok _ | Error _ -> true)

let suite =
  [
    qtest prop_der_decode_total;
    qtest prop_cert_decode_total;
    qtest prop_pem_decode_total;
    qtest prop_base64_decode_total;
    qtest prop_mutated_cert_rejected_or_unverifiable;
    qtest prop_validate_total;
    qtest prop_json_parse_total;
    qtest prop_json_roundtrip;
    qtest prop_json_pretty_roundtrip;
    qtest prop_ingest_total;
    qtest prop_ingest_total_on_faulted_exports;
    qtest prop_bigint_parse_total;
  ]
