(* Tests for the chain builder and verifier. *)

module Chain = Tangled_validation.Chain
module Rs = Tangled_store.Root_store
module Dn = Tangled_x509.Dn
module C = Tangled_x509.Certificate
module Authority = Tangled_x509.Authority
module B = Tangled_numeric.Bigint
module Prng = Tangled_util.Prng
module Ts = Tangled_util.Timestamp

let check = Alcotest.check

let rng = Prng.create 600
let now = Ts.paper_epoch

(* Shared hierarchy: root -> inter -> leaf, plus an unrelated root. *)
let root = lazy (Authority.self_signed rng (Dn.make ~o:"V" "Val Root"))
let inter = lazy (Authority.issue_intermediate rng ~parent:(Lazy.force root) (Dn.make ~o:"V" "Val Inter"))
let leaf = lazy (Authority.issue_leaf rng ~parent:(Lazy.force inter) ~dns_names:[ "v.example" ] (Dn.make "v.example"))
let other_root = lazy (Authority.self_signed rng (Dn.make ~o:"O" "Other Root"))

let store_with certs = Rs.of_certs "test" Rs.Aosp certs

let trusted = lazy (store_with [ (Lazy.force root).Authority.certificate ])

let verdict chain store =
  (Chain.validate ~now ~store chain).Chain.verdict

let expect_ok chain store =
  match verdict chain store with
  | Ok anchor -> anchor
  | Error f -> Alcotest.fail ("expected success, got " ^ Chain.failure_to_string f)

let expect_fail chain store =
  match verdict chain store with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error f -> f

let test_valid_chain () =
  let anchor =
    expect_ok [ Lazy.force leaf; (Lazy.force inter).Authority.certificate ] (Lazy.force trusted)
  in
  Alcotest.(check bool) "anchored at root" true
    (Dn.equal anchor.C.subject (Lazy.force root).Authority.certificate.C.subject)

let test_direct_chain () =
  (* leaf issued directly by a trusted root, no intermediate *)
  let direct =
    Authority.issue_leaf rng ~parent:(Lazy.force root) ~dns_names:[ "d.example" ]
      (Dn.make "d.example")
  in
  ignore (expect_ok [ direct ] (Lazy.force trusted))

let test_out_of_order_pool () =
  (* junk and duplicates in the presented pool are tolerated *)
  let chain =
    [ Lazy.force leaf;
      (Lazy.force other_root).Authority.certificate;
      (Lazy.force inter).Authority.certificate;
      (Lazy.force inter).Authority.certificate ]
  in
  ignore (expect_ok chain (Lazy.force trusted))

let test_untrusted_root () =
  let f =
    expect_fail
      [ Lazy.force leaf; (Lazy.force inter).Authority.certificate ]
      (store_with [ (Lazy.force other_root).Authority.certificate ])
  in
  Alcotest.(check bool) "no trusted root" true (f = Chain.No_trusted_root)

let test_missing_intermediate () =
  let f = expect_fail [ Lazy.force leaf ] (Lazy.force trusted) in
  Alcotest.(check bool) "no path" true (f = Chain.No_trusted_root)

let test_expired_leaf () =
  let expired =
    Authority.issue_leaf rng ~parent:(Lazy.force inter)
      ~not_before:(Ts.of_date 2010 1 1) ~not_after:(Ts.of_date 2012 1 1)
      ~dns_names:[ "e.example" ] (Dn.make "e.example")
  in
  match expect_fail [ expired; (Lazy.force inter).Authority.certificate ] (Lazy.force trusted) with
  | Chain.Expired _ -> ()
  | f -> Alcotest.fail ("wrong failure: " ^ Chain.failure_to_string f)

let test_not_yet_valid_leaf () =
  let future =
    Authority.issue_leaf rng ~parent:(Lazy.force inter)
      ~not_before:(Ts.of_date 2020 1 1) ~not_after:(Ts.of_date 2025 1 1)
      ~dns_names:[ "f.example" ] (Dn.make "f.example")
  in
  match expect_fail [ future ] (Lazy.force trusted) with
  | Chain.Not_yet_valid _ -> ()
  | f -> Alcotest.fail ("wrong failure: " ^ Chain.failure_to_string f)

let test_expired_intermediate () =
  let old_inter =
    Authority.issue_intermediate rng ~parent:(Lazy.force root)
      ~not_before:(Ts.of_date 2008 1 1) ~not_after:(Ts.of_date 2010 1 1)
      (Dn.make ~o:"V" "Old Inter")
  in
  let leaf =
    Authority.issue_leaf rng ~parent:old_inter ~dns_names:[ "g.example" ]
      (Dn.make "g.example")
  in
  match expect_fail [ leaf; old_inter.Authority.certificate ] (Lazy.force trusted) with
  | Chain.Expired _ -> ()
  | f -> Alcotest.fail ("wrong failure: " ^ Chain.failure_to_string f)

let test_expired_root () =
  let dead_root =
    Authority.self_signed rng
      ~not_before:(Ts.of_date 2001 1 1) ~not_after:(Ts.of_date 2013 10 24)
      (Dn.make "Dead Root")
  in
  let leaf =
    Authority.issue_leaf rng ~parent:dead_root ~dns_names:[ "h.example" ]
      (Dn.make "h.example")
  in
  match expect_fail [ leaf ] (store_with [ dead_root.Authority.certificate ]) with
  | Chain.Expired _ -> ()
  | f -> Alcotest.fail ("wrong failure: " ^ Chain.failure_to_string f)

let test_non_ca_intermediate () =
  (* an end-entity certificate cannot act as an issuer *)
  let fake_inter_cert = Lazy.force leaf in
  let fake_authority =
    (* reuse the intermediate's key but present the leaf as issuer *)
    { Authority.certificate = fake_inter_cert; key = (Lazy.force inter).Authority.key }
  in
  let victim =
    Authority.issue_leaf rng ~parent:fake_authority ~dns_names:[ "x.example" ]
      (Dn.make "x.example")
  in
  (* chain: victim <- leaf(non-CA) <- inter <- root *)
  match
    expect_fail
      [ victim; fake_inter_cert; (Lazy.force inter).Authority.certificate ]
      (Lazy.force trusted)
  with
  | Chain.Not_a_ca _ | Chain.No_trusted_root -> ()
  | f -> Alcotest.fail ("wrong failure: " ^ Chain.failure_to_string f)

let test_path_len_constraint () =
  let constrained_root =
    Authority.self_signed ~path_len:0 rng (Dn.make "Constrained Root")
  in
  let inter1 =
    Authority.issue_intermediate ~path_len:0 rng ~parent:constrained_root
      (Dn.make "Constrained Inter 1")
  in
  let inter2 =
    Authority.issue_intermediate rng ~parent:inter1 (Dn.make "Constrained Inter 2")
  in
  let leaf =
    Authority.issue_leaf rng ~parent:inter2 ~dns_names:[ "p.example" ]
      (Dn.make "p.example")
  in
  (* two non-self-issued intermediates under a pathlen-0 root *)
  match
    expect_fail
      [ leaf; inter2.Authority.certificate; inter1.Authority.certificate ]
      (store_with [ constrained_root.Authority.certificate ])
  with
  | Chain.Path_len_exceeded _ | Chain.No_trusted_root -> ()
  | f -> Alcotest.fail ("wrong failure: " ^ Chain.failure_to_string f)

let test_eku_enforcement () =
  let signer =
    Authority.issue_leaf rng ~parent:(Lazy.force inter) ~ekus:[ C.Code_signing ]
      ~dns_names:[] (Dn.make "code-signer")
  in
  (match
     expect_fail [ signer; (Lazy.force inter).Authority.certificate ] (Lazy.force trusted)
   with
  | Chain.Wrong_key_usage _ -> ()
  | f -> Alcotest.fail ("wrong failure: " ^ Chain.failure_to_string f));
  (* the check can be disabled, as for non-TLS validations *)
  Alcotest.(check bool) "without EKU check" true
    (Chain.validate_ok ~check_server_auth:false ~now ~store:(Lazy.force trusted)
       [ signer; (Lazy.force inter).Authority.certificate ])

let test_tampered_signature () =
  (* re-assemble the leaf with a corrupted signature *)
  let l = Lazy.force leaf in
  let bad_sig = Bytes.of_string l.C.signature in
  Bytes.set bad_sig 5 (Char.chr (Char.code (Bytes.get bad_sig 5) lxor 1));
  match
    C.assemble ~tbs_der:l.C.tbs_der ~signature_alg:l.C.signature_alg
      ~signature:(Bytes.to_string bad_sig)
  with
  | Error m -> Alcotest.fail m
  | Ok tampered -> (
      match
        expect_fail
          [ tampered; (Lazy.force inter).Authority.certificate ]
          (Lazy.force trusted)
      with
      | Chain.Bad_signature _ | Chain.No_trusted_root -> ()
      | f -> Alcotest.fail ("wrong failure: " ^ Chain.failure_to_string f))

let test_max_depth () =
  (* a chain longer than max_depth is rejected *)
  let rec build parent acc n =
    if n = 0 then acc
    else begin
      let i =
        Authority.issue_intermediate rng ~parent
          (Dn.make (Printf.sprintf "Deep Inter %d" n))
      in
      build i (i :: acc) (n - 1)
    end
  in
  let inters = build (Lazy.force root) [] 5 in
  let deepest = List.hd inters in
  let leaf =
    Authority.issue_leaf rng ~parent:deepest ~dns_names:[ "deep.example" ]
      (Dn.make "deep.example")
  in
  let chain = leaf :: List.map (fun (a : Authority.t) -> a.Authority.certificate) inters in
  Alcotest.(check bool) "fits depth 8" true
    (Chain.validate_ok ~now ~store:(Lazy.force trusted) chain);
  Alcotest.(check bool) "depth 3 too short" false
    (Chain.validate_ok ~max_depth:3 ~now ~store:(Lazy.force trusted) chain)

let test_disabled_root () =
  let store = Lazy.force trusted in
  let disabled =
    match Rs.disable store Rs.Settings_ui (Lazy.force root).Authority.certificate with
    | Ok s -> s
    | Error e -> Alcotest.fail (Rs.error_to_string e)
  in
  Alcotest.(check bool) "disabled root rejects" false
    (Chain.validate_ok ~now ~store:disabled
       [ Lazy.force leaf; (Lazy.force inter).Authority.certificate ])

let test_empty_chain () =
  Alcotest.check_raises "empty" (Invalid_argument "Chain.validate: empty chain")
    (fun () -> ignore (Chain.validate ~now ~store:(Lazy.force trusted) []))

let test_anchor_key () =
  let key =
    Chain.anchor_key ~now ~store:(Lazy.force trusted)
      [ Lazy.force leaf; (Lazy.force inter).Authority.certificate ]
  in
  check (Alcotest.option Alcotest.string) "anchor key"
    (Some (C.equivalence_key (Lazy.force root).Authority.certificate)) key;
  check (Alcotest.option Alcotest.string) "no anchor" None
    (Chain.anchor_key ~now ~store:(Lazy.force trusted) [ Lazy.force leaf ])

let test_equivalent_root_validates () =
  (* a renewed (byte-distinct, equivalent) root still anchors chains,
     the §4.2 equivalence property *)
  let renewed = Authority.renew ~serial:(B.of_int 4242) (Lazy.force root) in
  let store = store_with [ renewed.Authority.certificate ] in
  Alcotest.(check bool) "renewed root anchors" true
    (Chain.validate_ok ~now ~store
       [ Lazy.force leaf; (Lazy.force inter).Authority.certificate ])

(* --- decision cache transparency ---------------------------------------- *)

(* The bounded verification cache must be invisible to results: any
   chain drawn from a pool of related and unrelated certificates
   validates to the same verdict and path with the cache enabled or
   bypassed.  The pool deliberately mixes chains that share issuers so
   cached verdicts from one draw are hit by the next. *)
let cache_pool =
  lazy
    (let direct =
       Authority.issue_leaf rng ~parent:(Lazy.force other_root)
         ~dns_names:[ "c.example" ] (Dn.make "c.example")
     in
     let expired =
       Authority.issue_leaf rng ~parent:(Lazy.force inter)
         ~not_before:(Ts.of_date 2010 1 1) ~not_after:(Ts.of_date 2012 1 1)
         ~dns_names:[ "x.example" ] (Dn.make "x.example")
     in
     [|
       Lazy.force leaf;
       (Lazy.force inter).Authority.certificate;
       (Lazy.force root).Authority.certificate;
       (Lazy.force other_root).Authority.certificate;
       direct;
       expired;
     |])

let verdict_repr (r : Chain.result) =
  ( (match r.Chain.verdict with
    | Ok anchor -> "ok:" ^ C.equivalence_key anchor
    | Error f -> "err:" ^ Chain.failure_to_string f),
    List.map C.byte_identity r.Chain.path )

let prop_cached_equals_uncached =
  QCheck.Test.make ~name:"validation identical with cache on, off or cleared"
    ~count:100
    QCheck.(
      make
        ~print:(fun (idxs, other) ->
          Printf.sprintf "chain=[%s] store=%s"
            (String.concat ";" (List.map string_of_int idxs))
            (if other then "other" else "trusted"))
        Gen.(pair (list_size (int_range 1 6) (int_bound 5)) bool))
    (fun (idxs, other_store) ->
      let pool = Lazy.force cache_pool in
      let chain = List.map (fun i -> pool.(i)) idxs in
      let store =
        if other_store then
          store_with [ (Lazy.force other_root).Authority.certificate ]
        else Lazy.force trusted
      in
      let cached = verdict_repr (Chain.validate ~now ~store chain) in
      Chain.set_verify_cache_enabled false;
      let uncached =
        Fun.protect
          ~finally:(fun () -> Chain.set_verify_cache_enabled true)
          (fun () -> verdict_repr (Chain.validate ~now ~store chain))
      in
      (* an epoch bump must only forget, never change answers *)
      Chain.clear_verify_cache ();
      let after_bump = verdict_repr (Chain.validate ~now ~store chain) in
      cached = uncached && cached = after_bump)

let test_cache_stays_bounded () =
  (* hammer many distinct verifications through a tiny cache: the live
     entry count must never exceed the configured capacity *)
  Chain.set_verify_cache_capacity 16;
  Fun.protect
    ~finally:(fun () -> Chain.set_verify_cache_capacity 8192)
    (fun () ->
      let pool = Lazy.force cache_pool in
      for round = 0 to 40 do
        let chain = [ pool.(round mod 6); pool.((round + 1) mod 6) ] in
        ignore (Chain.validate ~now ~store:(Lazy.force trusted) chain);
        let s = Chain.verify_cache_info () in
        if s.Tangled_cache.Cache.entries > 16 then
          Alcotest.failf "cache grew to %d entries (capacity 16)"
            s.Tangled_cache.Cache.entries
      done)

let suite =
  [
    ("valid three-cert chain", `Quick, test_valid_chain);
    ("direct root-signed leaf", `Quick, test_direct_chain);
    ("unordered pool with junk", `Quick, test_out_of_order_pool);
    ("untrusted root", `Quick, test_untrusted_root);
    ("missing intermediate", `Quick, test_missing_intermediate);
    ("expired leaf", `Quick, test_expired_leaf);
    ("not-yet-valid leaf", `Quick, test_not_yet_valid_leaf);
    ("expired intermediate", `Quick, test_expired_intermediate);
    ("expired root", `Quick, test_expired_root);
    ("non-CA intermediate", `Quick, test_non_ca_intermediate);
    ("pathLenConstraint", `Quick, test_path_len_constraint);
    ("EKU enforcement", `Quick, test_eku_enforcement);
    ("tampered signature", `Quick, test_tampered_signature);
    ("max depth", `Quick, test_max_depth);
    ("disabled root", `Quick, test_disabled_root);
    ("empty chain", `Quick, test_empty_chain);
    ("anchor key", `Quick, test_anchor_key);
    ("equivalent renewed root", `Quick, test_equivalent_root_validates);
    QCheck_alcotest.to_alcotest prop_cached_equals_uncached;
    ("verify cache stays bounded", `Quick, test_cache_stays_bounded);
  ]
