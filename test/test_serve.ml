(* The trust-decision server: total decoding under fuzzed frames, and
   each robustness mechanism — admission control, deadlines,
   retry/backoff, snapshot degradation, drain — pinned by a unit test.
   The full chaos composition runs in the drill ([serve --drill] and
   the @check gate); here a pinned-seed drill run doubles as the
   end-to-end regression. *)

module Pipeline = Tangled_core.Pipeline
module Export = Tangled_core.Export
module Serve = Tangled_serve.Serve
module Drill = Tangled_serve.Drill
module Ingest = Tangled_ingest.Ingest
module Fault = Tangled_fault.Fault
module J = Tangled_util.Json

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let world () = Lazy.force Pipeline.quick

let server ?config () = Serve.create ?config (world ())

let frame fields = J.to_string (J.Obj fields)
let health id = frame [ ("id", J.Int id); ("op", J.String "health") ]

let known_statuses = [ "ok"; "error"; "timeout"; "overloaded"; "draining" ]

let status_of line =
  match J.parse line with
  | Ok json -> (
      match J.member "status" json with
      | Some (J.String s) -> Some s
      | _ -> None)
  | Error _ -> None

let error_label line =
  match J.parse line with
  | Ok json -> (
      match J.member "error" json with
      | Some e -> (
          match J.member "label" e with
          | Some (J.String l) -> Some l
          | _ -> None)
      | None -> None)
  | Error _ -> None

(* a clock the tests advance by hand, for deterministic deadlines *)
let fake_clock () =
  let now = ref 0.0 in
  ((fun () -> now := !now +. 1.0; !now), now)

(* --- decoder totality (fuzz) ------------------------------------------- *)

(* One long-lived server eats arbitrary byte sequences: every frame —
   valid, malformed, binary junk — must yield exactly one well-formed
   response, and the control totals must stay reconciled.  The server
   is shared across iterations, so the property also covers state
   carried between hostile bursts. *)
let prop_serve_total =
  let shared = lazy (server ()) in
  QCheck.Test.make ~name:"serve_burst total on arbitrary bytes" ~count:400
    QCheck.(small_list string)
    (fun lines ->
      let t = Lazy.force shared in
      let responses = Serve.serve_burst t lines in
      List.length responses = List.length lines
      && List.for_all
           (fun r ->
             match status_of r with
             | Some s -> List.mem s known_statuses
             | None -> false)
           responses
      && Serve.reconciled (Serve.summary t))

(* every quarantined frame carries a label from the shared ingest
   taxonomy, and quarantine records line up with error responses *)
let prop_malformed_quarantined =
  QCheck.Test.make ~name:"malformed frames land in the ingest taxonomy"
    ~count:200 QCheck.string
    (fun s ->
      QCheck.assume (match J.parse s with Ok (J.Obj _) -> false | _ -> true);
      let t = server () in
      match Serve.serve_burst t [ s ] with
      | [ r ] ->
          status_of r = Some "error"
          && (match Serve.quarantine t with
             | [ q ] -> String.length (Ingest.reason_label q.Ingest.reason) > 0
             | _ -> false)
      | _ -> false)

(* --- unit: protocol basics --------------------------------------------- *)

let test_basic_ops () =
  let t = server () in
  (match Serve.serve_burst t [ health 1 ] with
  | [ r ] ->
      check (Alcotest.option Alcotest.string) "health ok" (Some "ok")
        (status_of r)
  | _ -> Alcotest.fail "expected one response");
  (match
     Serve.serve_burst t
       [ frame [ ("id", J.String "d1"); ("op", J.String "diff");
                 ("store", J.String "mozilla") ] ]
   with
  | [ r ] ->
      check (Alcotest.option Alcotest.string) "diff ok" (Some "ok") (status_of r);
      (* the id round-trips verbatim, string-typed ids included *)
      check Alcotest.bool "id echoed" true
        (match J.parse r with
        | Ok j -> J.member "id" j = Some (J.String "d1")
        | Error _ -> false)
  | _ -> Alcotest.fail "expected one response");
  match
    Serve.serve_burst t
      [ frame [ ("id", J.Int 3); ("op", J.String "diff");
                ("store", J.String "waterfox") ] ]
  with
  | [ r ] ->
      check (Alcotest.option Alcotest.string) "unknown store is typed"
        (Some "unknown-store") (error_label r)
  | _ -> Alcotest.fail "expected one response"

let test_schema_violations_quarantined () =
  let t = server () in
  let bad =
    [
      "";                                          (* empty line *)
      "\x00{\"id\":1,\"op\":\"health\"}";          (* control bytes *)
      "[1,2,3]";                                   (* not an object *)
      "{\"op\":\"health\"}";                       (* missing id *)
      "{\"id\":1}";                                (* missing op *)
      "{\"id\":true,\"op\":\"health\"}";           (* id of the wrong type *)
      "{\"id\":1,\"op\":\"warp\"}";                (* unknown op *)
      "{\"id\":1,\"op\":\"health\",\"deadline_ms\":-5}";
      "{\"id\":1,\"op\":\"validate\",\"store\":\"aosp44\"}"; (* no chain *)
    ]
  in
  let responses = Serve.serve_burst t bad in
  check Alcotest.int "one response per frame" (List.length bad)
    (List.length responses);
  List.iter
    (fun r ->
      check (Alcotest.option Alcotest.string) "typed error" (Some "error")
        (status_of r))
    responses;
  let s = Serve.summary t in
  check Alcotest.int "all quarantined" (List.length bad) s.Serve.quarantined;
  check Alcotest.bool "reconciled" true (Serve.reconciled s);
  let labels =
    List.map (fun (q : Ingest.quarantined) -> Ingest.reason_label q.Ingest.reason)
      (Serve.quarantine t)
  in
  check Alcotest.bool "control-bytes label present" true
    (List.mem "control-bytes" labels);
  check Alcotest.bool "missing-field label present" true
    (List.mem "missing-field" labels)

(* --- unit: admission control ------------------------------------------- *)

let test_overload_sheds_explicitly () =
  let config = { Serve.default_config with Serve.queue_capacity = 4 } in
  let t = server ~config () in
  let burst = List.init 10 health in
  let responses = Serve.serve_burst t burst in
  check Alcotest.int "one response per frame" 10 (List.length responses);
  let statuses = List.filter_map status_of responses in
  check Alcotest.int "admitted answered" 4
    (List.length (List.filter (( = ) "ok") statuses));
  check Alcotest.int "surplus shed" 6
    (List.length (List.filter (( = ) "overloaded") statuses));
  let s = Serve.summary t in
  check Alcotest.int "shed counted" 6 s.Serve.shed;
  check Alcotest.bool "reconciled" true (Serve.reconciled s)

(* --- unit: deadlines ---------------------------------------------------- *)

let test_deadline_times_out () =
  (* the fake clock advances 1s per reading: any op with a checkpoint
     blows a sub-second deadline deterministically *)
  let clock, _ = fake_clock () in
  let config = { Serve.default_config with Serve.clock } in
  let t = server ~config () in
  match
    Serve.serve_burst t
      [
        frame
          [ ("id", J.Int 1); ("op", J.String "diff");
            ("store", J.String "mozilla"); ("deadline_ms", J.Int 100) ];
        health 2;
      ]
  with
  | [ r1; r2 ] ->
      check (Alcotest.option Alcotest.string) "deadline exceeded"
        (Some "timeout") (status_of r1);
      (* health has no checkpoint: it answers even under the fake clock *)
      check (Alcotest.option Alcotest.string) "next request unaffected"
        (Some "ok") (status_of r2);
      let s = Serve.summary t in
      check Alcotest.int "timeout counted" 1 s.Serve.timed_out;
      check Alcotest.bool "reconciled" true (Serve.reconciled s)
  | _ -> Alcotest.fail "expected two responses"

(* --- unit: retry / backoff --------------------------------------------- *)

let test_transient_fault_retries_then_succeeds () =
  let waits = ref [] in
  let config =
    {
      Serve.default_config with
      Serve.fault_hook =
        (fun ~seq:_ ~attempt -> if attempt < 2 then Some Fault.Truncate else None);
      sleep = (fun s -> waits := s :: !waits);
    }
  in
  let t = server ~config () in
  (match Serve.serve_burst t [ health 1 ] with
  | [ r ] ->
      check (Alcotest.option Alcotest.string) "recovers to ok" (Some "ok")
        (status_of r)
  | _ -> Alcotest.fail "expected one response");
  let s = Serve.summary t in
  check Alcotest.int "two retries" 2 s.Serve.retries;
  (* exponential: base, then double *)
  check (Alcotest.list (Alcotest.float 1e-9)) "backoff doubles"
    [ Serve.default_config.Serve.backoff_s;
      2.0 *. Serve.default_config.Serve.backoff_s ]
    (List.rev !waits)

let test_transient_fault_exhausts_budget () =
  let config =
    {
      Serve.default_config with
      Serve.fault_hook = (fun ~seq:_ ~attempt:_ -> Some Fault.Bit_flip);
    }
  in
  let t = server ~config () in
  (match Serve.serve_burst t [ health 1 ] with
  | [ r ] ->
      check (Alcotest.option Alcotest.string) "typed transient error"
        (Some "fault-transient") (error_label r)
  | _ -> Alcotest.fail "expected one response");
  let s = Serve.summary t in
  check Alcotest.int "budget spent" Serve.default_config.Serve.max_retries
    s.Serve.retries;
  check Alcotest.int "typed error counted" 1 s.Serve.typed_errors

let test_permanent_fault_quarantines () =
  let config =
    {
      Serve.default_config with
      Serve.fault_hook = (fun ~seq:_ ~attempt:_ -> Some Fault.Missing_field);
    }
  in
  let t = server ~config () in
  (match Serve.serve_burst t [ health 1 ] with
  | [ r ] ->
      check (Alcotest.option Alcotest.string) "typed poison error"
        (Some "poisoned-request") (error_label r)
  | _ -> Alcotest.fail "expected one response");
  let s = Serve.summary t in
  check Alcotest.int "no retries for poison" 0 s.Serve.retries;
  check Alcotest.int "request quarantined" 1 s.Serve.quarantined;
  check Alcotest.bool "reconciled" true (Serve.reconciled s)

(* --- unit: snapshot degradation ---------------------------------------- *)

let test_reload_good_and_poisoned () =
  let t = server () in
  let doc = Export.stores_jsonl (world ()) in
  let reload id payload =
    frame [ ("id", J.Int id); ("op", J.String "reload");
            ("payload", J.String payload) ]
  in
  let config = { Serve.default_config with Serve.max_frame_bytes = 1 lsl 23 } in
  let t = if String.length doc > 1 lsl 19 then server ~config () else t in
  (* clean payload: the epoch advances *)
  (match Serve.serve_burst t [ reload 1 doc ] with
  | [ r ] ->
      check (Alcotest.option Alcotest.string) "clean reload ok" (Some "ok")
        (status_of r)
  | _ -> Alcotest.fail "expected one response");
  check Alcotest.int "epoch advanced" 2 (Serve.summary t).Serve.epoch;
  (* a truncated payload is rejected; the last good snapshot survives *)
  let poisoned = String.sub doc 0 (String.length doc - 40) in
  (match Serve.serve_burst t [ reload 2 poisoned ] with
  | [ r ] ->
      check (Alcotest.option Alcotest.string) "poisoned reload rejected"
        (Some "update-rejected") (error_label r)
  | _ -> Alcotest.fail "expected one response");
  let s = Serve.summary t in
  check Alcotest.int "epoch unchanged" 2 s.Serve.epoch;
  check Alcotest.int "one accepted" 1 s.Serve.reloads_accepted;
  check Alcotest.int "one rejected" 1 s.Serve.reloads_rejected;
  (* reads still answer from the surviving snapshot, and the rejected
     reload's half-built corpus was truncated out of the epoch arena:
     the corpus accounting matches the surviving epoch exactly *)
  let corpus_stats () =
    match
      Serve.serve_burst t [ frame [ ("id", J.Int 3); ("op", J.String "stores") ] ]
    with
    | [ r ] -> (
        check (Alcotest.option Alcotest.string) "reads keep answering" (Some "ok")
          (status_of r);
        match J.parse r with
        | Ok json -> (
            match J.member "result" json with
            | Some result -> (
                match
                  ( J.member "corpus_certs" result,
                    J.member "corpus_bytes" result )
                with
                | Some (J.Int c), Some (J.Int b) -> (c, b)
                | _ -> Alcotest.fail "stores response lacks corpus accounting")
            | None -> Alcotest.fail "stores response lacks a result")
        | Error e -> Alcotest.fail e)
    | _ -> Alcotest.fail "expected one response"
  in
  let certs, bytes = corpus_stats () in
  check Alcotest.bool "epoch corpus non-empty" true (certs > 0 && bytes > 0);
  (* another poisoned attempt must leave the accounting byte-identical *)
  (match Serve.serve_burst t [ reload 4 poisoned ] with
  | [ r ] ->
      check (Alcotest.option Alcotest.string) "second poison rejected"
        (Some "update-rejected") (error_label r)
  | _ -> Alcotest.fail "expected one response");
  check
    Alcotest.(pair int int)
    "rejected reload retains nothing" (certs, bytes) (corpus_stats ())

(* --- unit: the request-level decision cache ---------------------------- *)

(* the cache member of a [stores] response, as raw JSON text *)
let stores_response t =
  match
    Serve.serve_burst t [ frame [ ("id", J.Int 0); ("op", J.String "stores") ] ]
  with
  | [ r ] -> r
  | _ -> Alcotest.fail "expected one stores response"

let cache_member line =
  match J.parse line with
  | Ok json -> (
      match J.member "result" json with
      | Some result -> (
          match J.member "cache" result with
          | Some c -> c
          | None -> Alcotest.fail "stores response lacks cache stats")
      | None -> Alcotest.fail "stores response lacks a result")
  | Error e -> Alcotest.fail e

let cache_int line field =
  match J.member field (cache_member line) with
  | Some (J.Int v) -> v
  | _ -> Alcotest.failf "cache stats lack %s" field

(* 50k requests through a deliberately small cache: live entries never
   exceed capacity, every frame still answers ok, eviction pressure is
   real (more distinct keys than slots), and the heap high-water mark
   stays flat once warm — the regression the unbounded memo this cache
   replaced would fail *)
let test_warm_serve_cache_bounded () =
  let module BP = Tangled_pki.Blueprint in
  let u = (world ()).Pipeline.universe in
  let distinct = min (Array.length u.BP.roots) 600 in
  let capacity = max 4 (distinct / 2) in
  let config =
    {
      Serve.default_config with
      Serve.queue_capacity = 256;
      cache_capacity = capacity;
    }
  in
  let t = server ~config () in
  let rng = Tangled_util.Prng.create 5050 in
  let coverage i =
    let r = u.BP.roots.(Tangled_util.Prng.int rng distinct) in
    frame
      [ ("id", J.Int i); ("op", J.String "coverage");
        ("root", J.String r.BP.display_name) ]
  in
  let total = 50_000 and burst_size = 250 in
  let warm_top = ref 0 in
  for bi = 0 to (total / burst_size) - 1 do
    let burst = List.init burst_size (fun j -> coverage ((bi * burst_size) + j)) in
    List.iter
      (fun r ->
        if status_of r <> Some "ok" then Alcotest.failf "non-ok response: %s" r)
      (Serve.serve_burst t burst);
    if bi mod 20 = 0 then begin
      let line = stores_response t in
      let entries = cache_int line "entries" in
      if entries > capacity then
        Alcotest.failf "cache grew to %d entries (capacity %d)" entries capacity
    end;
    (* high-water after the cache is full and the arena has settled *)
    if bi = 19 then warm_top := (Gc.quick_stat ()).Gc.top_heap_words
  done;
  let line = stores_response t in
  check Alcotest.bool "entries bounded at the end" true
    (cache_int line "entries" <= capacity);
  check Alcotest.bool "hits accumulated" true (cache_int line "hits" > 0);
  check Alcotest.bool "eviction pressure was real" true
    (cache_int line "evictions" > 0);
  let top = (Gc.quick_stat ()).Gc.top_heap_words in
  (* 45k further requests may not move the high-water mark by more
     than transient-allocation noise (4M words = 32 MB on 64-bit) *)
  if top - !warm_top > 4_000_000 then
    Alcotest.failf "heap high-water grew %d words across the warm phase"
      (top - !warm_top);
  let s = Serve.summary t in
  check Alcotest.bool "reconciled" true (Serve.reconciled s)

(* a rejected reload must leave every observable — snapshot epoch,
   corpus accounting, cached decisions and their counters — exactly as
   it found them: the cache epoch rolls on accepted reloads only *)
let test_rejected_reload_preserves_cache () =
  let doc = Export.stores_jsonl (world ()) in
  let config = { Serve.default_config with Serve.max_frame_bytes = 1 lsl 23 } in
  let t = server ~config () in
  (* warm the decision cache: a miss then a hit on the same diff *)
  let diff id =
    frame [ ("id", J.Int id); ("op", J.String "diff");
            ("store", J.String "mozilla") ]
  in
  List.iter
    (fun f ->
      match Serve.serve_burst t [ f ] with
      | [ r ] ->
          check (Alcotest.option Alcotest.string) "warmup ok" (Some "ok")
            (status_of r)
      | _ -> Alcotest.fail "expected one response")
    [ diff 1; diff 2 ];
  let before = stores_response t in
  check Alcotest.bool "cache warm before the reload" true
    (cache_int before "hits" > 0 && cache_int before "entries" > 0);
  (* a truncated payload is rejected *)
  let poisoned = String.sub doc 0 (String.length doc - 40) in
  (match
     Serve.serve_burst t
       [ frame [ ("id", J.Int 3); ("op", J.String "reload");
                 ("payload", J.String poisoned) ] ]
   with
  | [ r ] ->
      check (Alcotest.option Alcotest.string) "reload rejected"
        (Some "update-rejected") (error_label r)
  | _ -> Alcotest.fail "expected one response");
  (* the whole stores response — epoch, sizes, corpus accounting and
     cache statistics — is byte-identical to before the attempt *)
  check Alcotest.string "stores response byte-identical" before
    (stores_response t);
  (* and an accepted reload does roll the cache epoch *)
  (match
     Serve.serve_burst t
       [ frame [ ("id", J.Int 4); ("op", J.String "reload");
                 ("payload", J.String doc) ] ]
   with
  | [ r ] ->
      check (Alcotest.option Alcotest.string) "clean reload ok" (Some "ok")
        (status_of r)
  | _ -> Alcotest.fail "expected one response");
  let after = stores_response t in
  check Alcotest.int "cache epoch rolled" 2 (cache_int after "epoch");
  check Alcotest.int "cached decisions invalidated" 0 (cache_int after "entries")

(* --- unit: graceful shutdown ------------------------------------------- *)

let test_drain_completes_in_flight () =
  let t = server () in
  let responses =
    Serve.serve_burst t
      [ frame [ ("id", J.Int 1); ("op", J.String "drain") ]; health 2 ]
  in
  (match List.map status_of responses with
  | [ Some "ok"; Some "ok" ] -> ()
  | sts ->
      Alcotest.failf "in-flight frame not completed: %s"
        (String.concat ","
           (List.map (function Some s -> s | None -> "?") sts)));
  check Alcotest.bool "now draining" true (Serve.draining t);
  (* late arrivals are refused with a typed response, never dropped *)
  match Serve.serve_burst t [ health 3; health 4 ] with
  | [ r1; r2 ] ->
      check (Alcotest.option Alcotest.string) "late refused" (Some "draining")
        (status_of r1);
      check (Alcotest.option Alcotest.string) "late refused" (Some "draining")
        (status_of r2);
      let s = Serve.summary t in
      check Alcotest.int "refused counted" 2 s.Serve.refused;
      check Alcotest.bool "reconciled" true (Serve.reconciled s)
  | _ -> Alcotest.fail "expected two responses"

let test_serve_channel_eof_drains () =
  let path = Filename.temp_file "serve_test" ".jsonl" in
  Export.write_text path (String.concat "\n" [ health 1; health 2 ] ^ "\n");
  let ic = open_in path in
  let out_path = Filename.temp_file "serve_test" ".out" in
  let oc = open_out out_path in
  let t = server () in
  let s = Serve.serve_channel t ic oc in
  close_in ic;
  close_out oc;
  check Alcotest.int "both served" 2 s.Serve.seen;
  check Alcotest.int "both answered" 2 s.Serve.answered;
  check Alcotest.bool "EOF drained" true s.Serve.drained;
  check Alcotest.bool "reconciled" true (Serve.reconciled s);
  (* the stream ends with the summary frame *)
  let lines = ref [] in
  let ic = open_in out_path in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  check Alcotest.int "two responses + summary" 3 (List.length !lines);
  check (Alcotest.option Alcotest.string) "summary frame last"
    (Some "summary") (status_of (List.hd !lines));
  Sys.remove path;
  Sys.remove out_path

(* --- unit: fault severity ---------------------------------------------- *)

let test_fault_classification () =
  let expect =
    [
      (Fault.Bit_flip, Fault.Transient);
      (Fault.Truncate, Fault.Transient);
      (Fault.Drop, Fault.Transient);
      (Fault.Duplicate, Fault.Transient);
      (Fault.Missing_field, Fault.Permanent);
      (Fault.Type_confusion, Fault.Permanent);
      (Fault.Clock_skew, Fault.Permanent);
      (Fault.Identity_conflict, Fault.Permanent);
    ]
  in
  check Alcotest.int "total over all kinds" (List.length Fault.all_kinds)
    (List.length expect);
  List.iter
    (fun (kind, severity) ->
      check Alcotest.string
        ("classify " ^ Fault.kind_to_string kind)
        (Fault.severity_to_string severity)
        (Fault.severity_to_string (Fault.classify kind)))
    expect

(* --- unit: protocol v2 (the ct-* ops) ----------------------------------- *)

let result_member line =
  match J.parse line with
  | Ok json -> (
      match J.member "result" json with
      | Some r -> r
      | None -> Alcotest.fail "response lacks a result")
  | Error e -> Alcotest.fail e

let result_int result field =
  match J.member field result with
  | Some (J.Int v) -> v
  | _ -> Alcotest.failf "result lacks int %s" field

let result_str result field =
  match J.member field result with
  | Some (J.String s) -> s
  | _ -> Alcotest.failf "result lacks string %s" field

let result_hex_list result field =
  match J.member field result with
  | Some (J.List items) ->
      List.map
        (function
          | J.String s -> (
              match Tangled_util.Hex.decode_opt s with
              | Some raw -> raw
              | None -> Alcotest.failf "%s element is not hex" field)
          | _ -> Alcotest.failf "%s element is not a string" field)
        items
  | _ -> Alcotest.failf "result lacks list %s" field

let test_ct_inclusion_roundtrip () =
  (* a served proof must verify through the pure Proof API against the
     leaf bytes re-read from the server's own fleet *)
  let module Ct = Tangled_ct.Log in
  let module Proof = Tangled_ct.Proof in
  let module Fleet = Tangled_ct.Fleet in
  let t = server () in
  let fleet =
    match Serve.ct_fleet t with
    | Some f -> f
    | None -> Alcotest.fail "default server has no fleet"
  in
  Array.iter
    (fun (e : Fleet.entry) ->
      let log_name = Ct.name e.Fleet.log in
      let n = Ct.size e.Fleet.log in
      let i = n / 2 in
      match
        Serve.serve_burst t
          [
            frame
              [ ("id", J.String ("p-" ^ log_name));
                ("op", J.String "ct-inclusion"); ("log", J.String log_name);
                ("index", J.Int i) ];
          ]
      with
      | [ r ] ->
          check (Alcotest.option Alcotest.string) "inclusion ok" (Some "ok")
            (status_of r);
          let result = result_member r in
          check Alcotest.int "tree_size is the log size" n
            (result_int result "tree_size");
          let proof = result_hex_list result "proof" in
          let root =
            match Tangled_util.Hex.decode_opt (result_str result "root") with
            | Some raw -> raw
            | None -> Alcotest.fail "root is not hex"
          in
          let leaf =
            match Fleet.leaf_der fleet e i with
            | Some d -> d
            | None -> Alcotest.fail "leaf_der out of range"
          in
          check Alcotest.bool
            (Printf.sprintf "%s proof verifies" log_name)
            true
            (Proof.verify_inclusion ~leaf ~index:i ~tree_size:n ~proof ~root)
      | _ -> Alcotest.fail "expected one response")
    (Fleet.entries fleet)

let test_ct_consistency_roundtrip () =
  let module Ct = Tangled_ct.Log in
  let module Proof = Tangled_ct.Proof in
  let module Fleet = Tangled_ct.Fleet in
  let t = server () in
  let fleet =
    match Serve.ct_fleet t with Some f -> f | None -> Alcotest.fail "no fleet"
  in
  let e = (Fleet.entries fleet).(0) in
  let n = Ct.size e.Fleet.log in
  let m = max 1 (n / 2) in
  match
    Serve.serve_burst t
      [
        frame
          [ ("id", J.Int 1); ("op", J.String "ct-consistency");
            ("log", J.String "ct0"); ("first", J.Int m); ("second", J.Int n) ];
      ]
  with
  | [ r ] ->
      check (Alcotest.option Alcotest.string) "consistency ok" (Some "ok")
        (status_of r);
      let result = result_member r in
      let proof = result_hex_list result "proof" in
      let root_of field =
        match Tangled_util.Hex.decode_opt (result_str result field) with
        | Some raw -> raw
        | None -> Alcotest.failf "%s is not hex" field
      in
      check Alcotest.bool "served consistency verifies" true
        (Proof.verify_consistency ~first:m ~second:n
           ~first_root:(root_of "first_root") ~second_root:(root_of "second_root")
           ~proof)
  | _ -> Alcotest.fail "expected one response"

let test_ct_typed_errors () =
  let t = server () in
  let expect_label label fields =
    match Serve.serve_burst t [ frame fields ] with
    | [ r ] ->
        check (Alcotest.option Alcotest.string) label (Some label) (error_label r)
    | _ -> Alcotest.fail "expected one response"
  in
  expect_label "unknown-log"
    [ ("id", J.Int 1); ("op", J.String "ct-inclusion");
      ("log", J.String "ct99"); ("index", J.Int 0) ];
  expect_label "out-of-range"
    [ ("id", J.Int 2); ("op", J.String "ct-inclusion");
      ("log", J.String "ct0"); ("index", J.Int (-1)) ];
  expect_label "out-of-range"
    [ ("id", J.Int 3); ("op", J.String "ct-inclusion");
      ("log", J.String "ct0"); ("index", J.Int 0);
      ("tree_size", J.Int 100_000_000) ];
  expect_label "out-of-range"
    [ ("id", J.Int 4); ("op", J.String "ct-consistency");
      ("log", J.String "ct0"); ("first", J.Int 0); ("second", J.Int 1) ];
  expect_label "unknown-store"
    [ ("id", J.Int 5); ("op", J.String "ct-visibility");
      ("store", J.String "waterfox") ];
  (* a malformed ct frame lands in the ingest taxonomy like any other *)
  (match
     Serve.serve_burst t
       [ frame [ ("id", J.Int 6); ("op", J.String "ct-inclusion");
                 ("log", J.String "ct0"); ("index", J.String "zero") ] ]
   with
  | [ r ] ->
      check (Alcotest.option Alcotest.string) "type mismatch quarantined"
        (Some "type-mismatch") (error_label r)
  | _ -> Alcotest.fail "expected one response");
  (* with the fleet disabled every ct op is a typed unknown-log *)
  let t0 = server ~config:{ Serve.default_config with Serve.ct_logs = 0 } () in
  (match
     Serve.serve_burst t0
       [ frame [ ("id", J.Int 7); ("op", J.String "ct-visibility");
                 ("store", J.String "mozilla") ] ]
   with
  | [ r ] ->
      check (Alcotest.option Alcotest.string) "disabled fleet is typed"
        (Some "unknown-log") (error_label r)
  | _ -> Alcotest.fail "expected one response");
  let s = Serve.summary t in
  check Alcotest.bool "reconciled" true (Serve.reconciled s)

let test_ct_visibility_and_health () =
  let t = server () in
  (* ct-visibility answers the report's row for a store *)
  (match
     Serve.serve_burst t
       [ frame [ ("id", J.Int 1); ("op", J.String "ct-visibility");
                 ("store", J.String "aosp44") ] ]
   with
  | [ r ] ->
      check (Alcotest.option Alcotest.string) "visibility ok" (Some "ok")
        (status_of r);
      let result = result_member r in
      let roots = result_int result "roots" in
      let logged = result_int result "logged" in
      let dark = result_int result "dark" in
      check Alcotest.int "logged + dark = roots" roots (logged + dark);
      check Alcotest.bool "store non-empty" true (roots > 0)
  | _ -> Alcotest.fail "expected one response");
  (* health and stores carry per-log tree size and head hash *)
  List.iter
    (fun op ->
      match
        Serve.serve_burst t [ frame [ ("id", J.Int 2); ("op", J.String op) ] ]
      with
      | [ r ] -> (
          let result = result_member r in
          match J.member "ct" result with
          | Some ct -> (
              match J.member "logs" ct with
              | Some (J.List logs) ->
                  check Alcotest.int (op ^ " lists every log") 3
                    (List.length logs);
                  List.iter
                    (fun l ->
                      let size =
                        match J.member "tree_size" l with
                        | Some (J.Int n) -> n
                        | _ -> Alcotest.fail "log entry lacks tree_size"
                      in
                      let head =
                        match J.member "head" l with
                        | Some (J.String h) -> h
                        | _ -> Alcotest.fail "log entry lacks head"
                      in
                      check Alcotest.bool "tree non-empty" true (size > 0);
                      check Alcotest.int "head is hex sha256" 64
                        (String.length head))
                    logs
              | _ -> Alcotest.failf "%s ct member lacks logs" op)
          | None -> Alcotest.failf "%s response lacks ct member" op)
      | _ -> Alcotest.fail "expected one response")
    [ "health"; "stores" ]

let test_ct_proofs_cached () =
  (* the second identical ct-inclusion answers from the decision cache *)
  let t = server () in
  let req id =
    frame
      [ ("id", J.Int id); ("op", J.String "ct-inclusion");
        ("log", J.String "ct0"); ("index", J.Int 1) ]
  in
  let before = cache_int (stores_response t) "hits" in
  (match Serve.serve_burst t [ req 1; req 2 ] with
  | [ r1; r2 ] ->
      check (Alcotest.option Alcotest.string) "first ok" (Some "ok")
        (status_of r1);
      check (Alcotest.option Alcotest.string) "second ok" (Some "ok")
        (status_of r2)
  | _ -> Alcotest.fail "expected two responses");
  let after = cache_int (stores_response t) "hits" in
  check Alcotest.bool "proof served from cache" true (after > before)

(* --- the composed drill at a pinned seed ------------------------------- *)

let test_drill_pinned_seed () =
  let o = Drill.run ~seed:12 ~rate:0.08 ~requests:200 (world ()) in
  List.iter
    (fun (name, passed) ->
      check Alcotest.bool ("drill check: " ^ name) true passed)
    o.Drill.checks;
  check Alcotest.bool "drill verdict" true o.Drill.ok;
  check Alcotest.int "no malformed responses" 0 o.Drill.malformed_responses

let suite =
  [
    Alcotest.test_case "basic ops answer and echo ids" `Quick test_basic_ops;
    Alcotest.test_case "schema violations quarantined under the taxonomy"
      `Quick test_schema_violations_quarantined;
    Alcotest.test_case "overload sheds explicitly" `Quick
      test_overload_sheds_explicitly;
    Alcotest.test_case "deadlines yield typed timeouts" `Quick
      test_deadline_times_out;
    Alcotest.test_case "transient faults retry with backoff" `Quick
      test_transient_fault_retries_then_succeeds;
    Alcotest.test_case "retry budget exhaustion is a typed error" `Quick
      test_transient_fault_exhausts_budget;
    Alcotest.test_case "permanent faults poison the request" `Quick
      test_permanent_fault_quarantines;
    Alcotest.test_case "reload degrades gracefully" `Quick
      test_reload_good_and_poisoned;
    Alcotest.test_case "50k-request warm serve stays bounded" `Slow
      test_warm_serve_cache_bounded;
    Alcotest.test_case "rejected reload preserves cache and corpus" `Quick
      test_rejected_reload_preserves_cache;
    Alcotest.test_case "drain completes in-flight work" `Quick
      test_drain_completes_in_flight;
    Alcotest.test_case "serve_channel drains on EOF" `Quick
      test_serve_channel_eof_drains;
    Alcotest.test_case "fault severity classification" `Quick
      test_fault_classification;
    Alcotest.test_case "chaos drill at pinned seed" `Slow
      test_drill_pinned_seed;
    Alcotest.test_case "v2: served inclusion proofs verify" `Quick
      test_ct_inclusion_roundtrip;
    Alcotest.test_case "v2: served consistency proofs verify" `Quick
      test_ct_consistency_roundtrip;
    Alcotest.test_case "v2: ct ops answer typed errors" `Quick
      test_ct_typed_errors;
    Alcotest.test_case "v2: visibility rows and per-log health" `Quick
      test_ct_visibility_and_health;
    Alcotest.test_case "v2: proofs ride the decision cache" `Quick
      test_ct_proofs_cached;
    qtest prop_serve_total;
    qtest prop_malformed_quarantined;
  ]
