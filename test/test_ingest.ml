(* The export→ingest loop: clean round trips are lossless, damaged
   round trips quarantine precisely, and the chaos harness passes at
   its pinned seed. *)

module Pipeline = Tangled_core.Pipeline
module Export = Tangled_core.Export
module Chaos = Tangled_core.Chaos
module Ingest = Tangled_ingest.Ingest
module Fault = Tangled_fault.Fault
module Net = Tangled_netalyzr.Netalyzr
module Notary = Tangled_notary.Notary
module Rs = Tangled_store.Root_store
module J = Tangled_util.Json

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let world () = Lazy.force Pipeline.quick

(* The chaos harness wants enough sessions that its 1% relative
   tolerance sits well above the sampling noise of record-destroying
   faults; reuse the quick PKI so only the field data is regenerated. *)
let chaos_world =
  lazy
    (let q = world () in
     Pipeline.run
       ~config:{ Pipeline.quick_config with Pipeline.sessions = 20_000 }
       ~universe:q.Pipeline.universe ())

let clean_stats (r : 'a Ingest.ingest) name expected =
  check Alcotest.int (name ^ " accepted") expected r.Ingest.stats.Ingest.accepted;
  check Alcotest.int (name ^ " quarantined") 0
    r.Ingest.stats.Ingest.quarantined_total;
  check Alcotest.int (name ^ " missing") 0 r.Ingest.stats.Ingest.missing;
  check (Alcotest.option Alcotest.int) (name ^ " declared") (Some expected)
    r.Ingest.stats.Ingest.declared

let test_sessions_roundtrip () =
  let w = world () in
  let r = Ingest.sessions_of_string (Export.sessions_jsonl w) in
  let d = w.Pipeline.dataset in
  clean_stats r "sessions" (Net.total_sessions d);
  check Alcotest.int "total" (Net.total_sessions d) (Ingest.total_sessions r);
  check (Alcotest.float 1e-9) "extended fraction" (Net.extended_fraction d)
    (Ingest.extended_fraction r);
  check (Alcotest.float 1e-9) "rooted fraction" (Net.rooted_fraction d)
    (Ingest.rooted_fraction r);
  check Alcotest.int "handsets" (Net.estimated_handsets d)
    (Ingest.estimated_handsets r);
  check Alcotest.int "intercepted"
    (List.length (Net.intercepted_sessions d))
    (Ingest.intercepted_sessions r)

let test_sessions_roundtrip_doc () =
  (* the pretty single-document form ingests identically *)
  let w = world () in
  let doc = J.to_string ~pretty:true (Export.sessions_json w) in
  let r = Ingest.sessions_of_string doc in
  clean_stats r "sessions(doc)" (Net.total_sessions w.Pipeline.dataset);
  check (Alcotest.float 1e-9) "extended fraction"
    (Net.extended_fraction w.Pipeline.dataset)
    (Ingest.extended_fraction r)

let test_notary_roundtrip () =
  let w = world () in
  let r = Ingest.notary_of_string (Export.notary_jsonl w) in
  let n = w.Pipeline.notary in
  clean_stats r "notary" (Notary.total n);
  check Alcotest.int "unexpired" (Notary.unexpired n) (Ingest.unexpired r);
  let doc = J.to_string ~pretty:true (Export.notary_json w) in
  let r2 = Ingest.notary_of_string doc in
  clean_stats r2 "notary(doc)" (Notary.total n);
  check Alcotest.int "unexpired(doc)" (Notary.unexpired n) (Ingest.unexpired r2)

let test_stores_roundtrip () =
  let w = world () in
  let expected =
    List.map (fun s -> (Rs.name s, Rs.cardinal s)) (Export.official_stores w)
  in
  let total = List.fold_left (fun a (_, n) -> a + n) 0 expected in
  let r = Ingest.stores_of_string (Export.stores_jsonl w) in
  clean_stats r "stores" total;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "store sizes" expected (Ingest.store_sizes r);
  let doc = J.to_string ~pretty:true (Export.stores_json w) in
  let r2 = Ingest.stores_of_string doc in
  clean_stats r2 "stores(doc)" total;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "store sizes(doc)" expected (Ingest.store_sizes r2)

let test_garbage_is_quarantined_not_fatal () =
  let r = Ingest.sessions_of_string "" in
  check Alcotest.int "empty accepted" 0 r.Ingest.stats.Ingest.accepted;
  let r = Ingest.sessions_of_string "\xffnot json at all" in
  check Alcotest.int "junk accepted" 0 r.Ingest.stats.Ingest.accepted;
  let r =
    Ingest.notary_of_string "{\"kind\":\"notary\",\"exported_chains\":2}\n[1,2]\n{\"subject\":3}\n"
  in
  check Alcotest.int "bad records accepted" 0 r.Ingest.stats.Ingest.accepted;
  check Alcotest.int "bad records quarantined" 2
    r.Ingest.stats.Ingest.quarantined_total

(* Raw NUL/control bytes are caught before the JSON parser ever runs
   and get their own taxonomy label; the whitespace controls a normal
   serializer emits (tab, CR) stay exempt. *)
let test_control_bytes_quarantined () =
  check Alcotest.bool "NUL detected" true (Ingest.has_control_bytes "a\x00b");
  check Alcotest.bool "DEL detected" true (Ingest.has_control_bytes "a\x7fb");
  check Alcotest.bool "ESC detected" true (Ingest.has_control_bytes "\x1b[1m");
  check Alcotest.bool "tab exempt" false (Ingest.has_control_bytes "a\tb");
  check Alcotest.bool "CR exempt" false (Ingest.has_control_bytes "a\rb");
  check Alcotest.bool "plain text clean" false (Ingest.has_control_bytes "{}");
  let w = world () in
  let doc = Export.sessions_jsonl ~limit:3 w in
  let lines = String.split_on_char '\n' (String.trim doc) in
  let header, records =
    match lines with h :: t -> (h, t) | [] -> assert false
  in
  let poisoned =
    List.mapi (fun i r -> if i = 1 then "\x00" ^ r else r) records
  in
  let r =
    Ingest.sessions_of_string (String.concat "\n" (header :: poisoned) ^ "\n")
  in
  check Alcotest.int "clean records accepted" 2 r.Ingest.stats.Ingest.accepted;
  check Alcotest.int "poisoned record quarantined" 1
    r.Ingest.stats.Ingest.quarantined_total;
  match r.Ingest.quarantine with
  | [ q ] ->
      check Alcotest.string "typed label" "control-bytes"
        (Ingest.reason_label q.Ingest.reason)
  | qs ->
      Alcotest.failf "expected one quarantine record, got %d" (List.length qs)

let test_duplicate_vs_conflict () =
  let w = world () in
  let doc = Export.sessions_jsonl ~limit:5 w in
  let lines = String.split_on_char '\n' (String.trim doc) in
  let header, records =
    match lines with h :: t -> (h, t) | [] -> assert false
  in
  let record = List.nth records 2 in
  (* an exact replay is a duplicate; a same-identity edit is a conflict *)
  let replayed = String.concat "\n" ((header :: records) @ [ record ]) ^ "\n" in
  let r = Ingest.sessions_of_string replayed in
  check Alcotest.int "replay accepted" 5 r.Ingest.stats.Ingest.accepted;
  check Alcotest.int "replay replays" 1 r.Ingest.stats.Ingest.replays;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "replay label"
    [ ("duplicate-record", 1) ]
    r.Ingest.stats.Ingest.by_label;
  let replace_once ~sub ~by s =
    let n = String.length s and m = String.length sub in
    let rec find i =
      if i + m > n then None
      else if String.sub s i m = sub then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some i ->
        Some (String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m))
  in
  let conflicting =
    (* same session_id, different payload *)
    let edited =
      match replace_once ~sub:"\"rooted\":false" ~by:"\"rooted\":true" record with
      | Some e -> e
      | None -> (
          match
            replace_once ~sub:"\"rooted\":true" ~by:"\"rooted\":false" record
          with
          | Some e -> e
          | None -> Alcotest.fail "no rooted field in exported session")
    in
    String.concat "\n" ((header :: records) @ [ edited ]) ^ "\n"
  in
  let r = Ingest.sessions_of_string conflicting in
  check Alcotest.int "conflict accepted" 5 r.Ingest.stats.Ingest.accepted;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "conflict label"
    [ ("conflicting-record", 1) ]
    r.Ingest.stats.Ingest.by_label

let test_drop_reconciliation () =
  let w = world () in
  let doc = Export.sessions_jsonl ~limit:8 w in
  let lines = String.split_on_char '\n' (String.trim doc) in
  let kept = List.filteri (fun i _ -> i <> 3 && i <> 6) lines in
  let r = Ingest.sessions_of_string (String.concat "\n" kept ^ "\n") in
  check Alcotest.int "accepted" 6 r.Ingest.stats.Ingest.accepted;
  check Alcotest.int "missing" 2 r.Ingest.stats.Ingest.missing;
  check Alcotest.int "quarantined" 0 r.Ingest.stats.Ingest.quarantined_total

(* DER payload validation surfaces through the quarantine taxonomy:
   a truncated certificate body is a truncated record, any other
   malformation a bad value, a non-string a type mismatch. *)
let test_der_field_quarantine () =
  let ts = Tangled_util.Timestamp.to_utc_string (Tangled_util.Timestamp.of_date 2020 1 1) in
  let record fp der =
    Printf.sprintf
      "{\"store\":\"s\",\"subject\":\"cn\",\"hash_id\":\"h\",\"fingerprint_sha256\":%S,\"not_after\":%S,\"der\":%s}"
      fp ts der
  in
  let input =
    String.concat "\n"
      [
        "{\"kind\":\"stores\",\"total_certificates\":5}";
        record "f1" "\"0500\"" (* well-formed DER: accepted *);
        record "f2" "\"0405616263\"" (* body cut short *);
        record "f3" "\"04810161\"" (* non-minimal length *);
        record "f4" "\"zz\"" (* not hexadecimal *);
        record "f5" "5" (* wrong JSON type *);
      ]
    ^ "\n"
  in
  let r = Ingest.stores_of_string input in
  check Alcotest.int "accepted" 1 r.Ingest.stats.Ingest.accepted;
  check Alcotest.int "quarantined" 4 r.Ingest.stats.Ingest.quarantined_total;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "taxonomy labels"
    [ ("bad-value", 2); ("truncated-record", 1); ("type-mismatch", 1) ]
    (List.sort compare r.Ingest.stats.Ingest.by_label);
  check Alcotest.string "truncated mapping" "truncated-record"
    (Ingest.reason_label (Ingest.reason_of_der_error Tangled_asn1.Der.Truncated));
  check Alcotest.string "bad-length mapping" "bad-value"
    (Ingest.reason_label (Ingest.reason_of_der_error Tangled_asn1.Der.Bad_length))

(* the control-total digest is the SHA-256 of exactly the caller's
   bytes, in every accepted input form *)
let test_input_digest () =
  let w = world () in
  let jsonl = Export.sessions_jsonl ~limit:3 w in
  let r = Ingest.sessions_of_string jsonl in
  check Alcotest.string "jsonl digest" (Tangled_hash.Sha256.hex jsonl)
    r.Ingest.stats.Ingest.input_sha256;
  let doc = J.to_string ~pretty:true (Export.sessions_json w) in
  let r2 = Ingest.sessions_of_string doc in
  check Alcotest.string "doc digest" (Tangled_hash.Sha256.hex doc)
    r2.Ingest.stats.Ingest.input_sha256;
  (* the stores doc is flattened internally; the digest still covers
     the caller's bytes, not the intermediate form *)
  let stores_doc = J.to_string ~pretty:true (Export.stores_json w) in
  let r3 = Ingest.stores_of_string stores_doc in
  check Alcotest.string "stores doc digest" (Tangled_hash.Sha256.hex stores_doc)
    r3.Ingest.stats.Ingest.input_sha256;
  let r4 = Ingest.sessions_of_string "" in
  check Alcotest.string "empty input digest" (Tangled_hash.Sha256.hex "")
    r4.Ingest.stats.Ingest.input_sha256

let test_chaos_fixed_seed () =
  let w = Lazy.force chaos_world in
  let o = Chaos.run ~seed:12 ~rate:0.05 w in
  check Alcotest.bool "all faults accounted" true o.Chaos.accounted_all;
  check Alcotest.bool "within tolerance" true o.Chaos.within_tolerance;
  check Alcotest.bool "table 1 exact" true o.Chaos.table1_exact;
  check Alcotest.bool "verdict ok" true o.Chaos.ok;
  (* the run must actually have injected and quarantined something *)
  Alcotest.(check bool)
    "faults injected" true
    (List.length o.Chaos.accounting > 50);
  Alcotest.(check bool)
    "sessions quarantined" true
    (o.Chaos.sessions.Ingest.stats.Ingest.quarantined_total > 0);
  Alcotest.(check bool)
    "notary quarantined" true
    (o.Chaos.notary.Ingest.stats.Ingest.quarantined_total > 0);
  (* every fault kind fired at least once at this scale *)
  let kinds =
    List.sort_uniq compare
      (List.map
         (fun r -> Fault.kind_to_string r.Chaos.injection.Fault.kind)
         o.Chaos.accounting)
  in
  check Alcotest.int "all fault kinds exercised"
    (List.length Fault.all_kinds) (List.length kinds);
  (* the rendered report must carry the verdict *)
  let rendered = Chaos.render o in
  Alcotest.(check bool)
    "report has verdict" true
    (let needle = "Verdict: OK" in
     let n = String.length rendered and m = String.length needle in
     let rec find i =
       i + m <= n && (String.sub rendered i m = needle || find (i + 1))
     in
     find 0)

(* Export with any [limit] then ingest: lossless, no quarantine. *)
let prop_limit_roundtrip =
  QCheck.Test.make ~name:"export ~limit / ingest is lossless" ~count:20
    (QCheck.int_range 1 60)
    (fun n ->
      let w = world () in
      let r = Ingest.sessions_of_string (Export.sessions_jsonl ~limit:n w) in
      r.Ingest.stats.Ingest.accepted = n
      && r.Ingest.stats.Ingest.quarantined_total = 0
      && r.Ingest.stats.Ingest.missing = 0
      && Ingest.total_sessions r = n)

(* Fault injection at any seed/rate leaves ingestion total, and every
   non-drop fault lands in quarantine (accounting never leaks). *)
let prop_chaos_always_accounted =
  QCheck.Test.make ~name:"every injected fault is accounted, any seed"
    ~count:15
    QCheck.(pair (int_range 0 10_000) (int_range 1 3))
    (fun (seed, rate_i) ->
      let w = world () in
      let o = Chaos.run ~seed ~rate:(0.03 *. float_of_int rate_i) w in
      o.Chaos.accounted_all && o.Chaos.table1_exact)

let suite =
  [
    Alcotest.test_case "sessions jsonl roundtrip" `Quick test_sessions_roundtrip;
    Alcotest.test_case "sessions document roundtrip" `Quick
      test_sessions_roundtrip_doc;
    Alcotest.test_case "notary roundtrip" `Quick test_notary_roundtrip;
    Alcotest.test_case "stores roundtrip (Table 1)" `Quick test_stores_roundtrip;
    Alcotest.test_case "garbage quarantined, never fatal" `Quick
      test_garbage_is_quarantined_not_fatal;
    Alcotest.test_case "control bytes get a typed label" `Quick
      test_control_bytes_quarantined;
    Alcotest.test_case "duplicate vs conflicting records" `Quick
      test_duplicate_vs_conflict;
    Alcotest.test_case "dropped records reconciled via manifest" `Quick
      test_drop_reconciliation;
    Alcotest.test_case "der payloads land in the taxonomy" `Quick
      test_der_field_quarantine;
    Alcotest.test_case "input digest covers the caller's bytes" `Quick
      test_input_digest;
    Alcotest.test_case "chaos run at pinned seed" `Slow test_chaos_fixed_seed;
    qtest prop_limit_roundtrip;
    qtest prop_chaos_always_accounted;
  ]
