(* The Montgomery layer's contract: bit-exact agreement with the
   legacy division-based Bigint.modpow (the reference oracle), context
   precondition enforcement, and end-to-end CRT sign/verify at every
   key size the simulation uses.  Also covers the direct limb-packing
   byte conversions the same PR introduced. *)

module B = Tangled_numeric.Bigint
module Mont = Tangled_numeric.Montgomery
module Rsa = Tangled_crypto.Rsa
module Chain = Tangled_validation.Chain
module Dk = Tangled_hash.Digest_kind
module Prng = Tangled_util.Prng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let big = Alcotest.testable B.pp B.equal

(* arbitrary non-negative bigint from raw bytes *)
let gen_big =
  QCheck.Gen.(map B.of_bytes_be (string_size ~gen:char (int_range 0 96)))

(* odd modulus > 1: 2v + 3 *)
let gen_odd_modulus =
  QCheck.Gen.map (fun v -> B.add (B.shift_left v 1) (B.of_int 3)) gen_big

let arb_triple =
  QCheck.make
    ~print:(fun (b, e, m) ->
      Printf.sprintf "base=%s exp=%s m=%s" (B.to_string b) (B.to_string e)
        (B.to_string m))
    QCheck.Gen.(triple gen_big gen_big gen_odd_modulus)

let prop_mont_matches_oracle =
  QCheck.Test.make ~name:"modpow_mont equals legacy modpow" ~count:300 arb_triple
    (fun (b, e, m) ->
      let ctx = Mont.create m in
      B.equal (B.modpow b e m) (Mont.modpow ctx b e))

(* the generator rarely makes base < m, so force the b >= m corner
   explicitly as well as via random draws *)
let test_base_exceeds_modulus () =
  let m = B.of_int 1_000_003 in
  let ctx = Mont.create m in
  let b = B.mul m (B.of_int 12345) |> B.add (B.of_int 678) in
  check big "b >= m reduced first" (B.modpow b (B.of_int 65537) m)
    (Mont.modpow ctx b (B.of_int 65537));
  check big "negative base" (B.modpow (B.neg b) (B.of_int 3) m)
    (Mont.modpow ctx (B.neg b) (B.of_int 3))

let test_exponent_zero () =
  let m = B.of_int 97 in
  let ctx = Mont.create m in
  check big "e = 0 is 1" B.one (Mont.modpow ctx (B.of_int 42) B.zero);
  check big "0^0 contract matches oracle" (B.modpow B.zero B.zero m)
    (Mont.modpow ctx B.zero B.zero);
  check big "base 0" B.zero (Mont.modpow ctx B.zero (B.of_int 5))

let test_rejections () =
  Alcotest.check_raises "m = 1 rejected"
    (Invalid_argument "Montgomery.create: modulus must exceed 1") (fun () ->
      ignore (Mont.create B.one));
  Alcotest.check_raises "even modulus rejected"
    (Invalid_argument "Montgomery.create: modulus must be odd") (fun () ->
      ignore (Mont.create (B.of_int 100)));
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Montgomery.create: modulus must be positive") (fun () ->
      ignore (Mont.create B.zero));
  let ctx = Mont.create (B.of_int 15) in
  Alcotest.check_raises "negative exponent rejected"
    (Invalid_argument "Montgomery.modpow: negative exponent") (fun () ->
      ignore (Mont.modpow ctx B.two (B.of_int (-1))))

(* dense deterministic sweep: every (base, exp) in a small window over
   several odd moduli, including Carmichael and prime-power cases *)
let test_small_exhaustive () =
  List.iter
    (fun mv ->
      let m = B.of_int mv in
      let ctx = Mont.create m in
      for b = 0 to 20 do
        for e = 0 to 20 do
          let want = B.modpow (B.of_int b) (B.of_int e) m in
          let got = Mont.modpow ctx (B.of_int b) (B.of_int e) in
          if not (B.equal want got) then
            Alcotest.failf "mismatch: %d^%d mod %d — want %s got %s" b e mv
              (B.to_string want) (B.to_string got)
        done
      done)
    [ 3; 9; 15; 35; 121; 561; 32761; 1073741827 ]

(* CRT-signed / Montgomery-verified round trips at the simulation's
   key sizes *)
let test_sign_verify_roundtrip () =
  let rng = Prng.create 424242 in
  List.iter
    (fun bits ->
      let key = Rsa.generate ~mr_rounds:6 rng ~bits in
      (* SHA-256 DigestInfo needs a >= 62-byte modulus; 384-bit keys
         sign with SHA-1, exactly as the simulation's CAs do *)
      let digest = if bits < 512 then Dk.SHA1 else Dk.SHA256 in
      let msg = Printf.sprintf "montgomery roundtrip at %d bits" bits in
      let signature = Rsa.sign key ~digest msg in
      Alcotest.(check bool)
        (Printf.sprintf "verify ok at %d bits" bits)
        true
        (Rsa.verify key.Rsa.pub ~digest ~msg ~signature);
      Alcotest.(check bool)
        (Printf.sprintf "tampered msg rejected at %d bits" bits)
        false
        (Rsa.verify key.Rsa.pub ~digest ~msg:(msg ^ "!") ~signature);
      let tampered =
        let b = Bytes.of_string signature in
        Bytes.set b (Bytes.length b - 1)
          (Char.chr (Char.code (Bytes.get b (Bytes.length b - 1)) lxor 1));
        Bytes.to_string b
      in
      Alcotest.(check bool)
        (Printf.sprintf "tampered signature rejected at %d bits" bits)
        false
        (Rsa.verify key.Rsa.pub ~digest ~msg ~signature:tampered))
    [ 384; 512; 768; 1024 ]

(* the CRT path must agree with the plain d-exponent and survive the
   raw encrypt/decrypt cross-check through the Montgomery public op *)
let test_crt_agrees_with_plain () =
  let rng = Prng.create 99 in
  let key = Rsa.generate ~mr_rounds:6 rng ~bits:384 in
  let m = B.random_below rng key.Rsa.pub.Rsa.n in
  let data = B.to_bytes_be m in
  check Alcotest.string "decrypt (CRT) inverts encrypt (Montgomery)" data
    (Rsa.decrypt_raw key (Rsa.encrypt_raw key.Rsa.pub data))

(* even modulus publics (hostile DER) must fall back to the oracle
   path rather than raise *)
let test_even_modulus_verify_fallback () =
  let pub = Rsa.make_public ~n:(B.of_int 3233 |> B.mul B.two) ~e:(B.of_int 17) in
  Alcotest.(check bool) "even-n verify is total" false
    (Rsa.verify pub ~digest:Dk.SHA256 ~msg:"x" ~signature:(String.make 2 '\x01'))

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"of_bytes_be/to_bytes_be round-trip" ~count:300
    QCheck.(make Gen.(string_size ~gen:char (int_range 0 80)))
    (fun s ->
      let v = B.of_bytes_be s in
      (* to_bytes_be is minimal: strip s's leading zeros to compare *)
      let stripped =
        let i = ref 0 in
        while !i < String.length s && s.[!i] = '\x00' do
          incr i
        done;
        String.sub s !i (String.length s - !i)
      in
      String.equal stripped (B.to_bytes_be v))

let prop_bytes_matches_hex =
  QCheck.Test.make ~name:"of_bytes_be agrees with of_hex" ~count:200
    QCheck.(make Gen.(string_size ~gen:char (int_range 1 64)))
    (fun s ->
      match B.of_hex (Tangled_util.Hex.encode s) with
      | Ok v -> B.equal v (B.of_bytes_be s)
      | Error _ -> false)

(* --- the precompute layer against the oracle ---------------------------- *)

(* every fast path — windowed with preallocated scratch, sparse
   square-and-multiply, and the auto dispatcher — must be bit-exact
   with the legacy oracle on arbitrary inputs *)
let prop_powm_variants_match_oracle =
  QCheck.Test.make ~name:"powm/powm_sparse/powm_auto equal modpow" ~count:200
    arb_triple
    (fun (b, e, m) ->
      let ctx = Mont.create m in
      let sched = Mont.schedule e in
      let sc = Mont.scratch ctx in
      let want = B.modpow b e m in
      B.equal want (Mont.powm ctx sc sched b)
      && B.equal want (Mont.powm_sparse ctx sc sched b)
      && B.equal want (Mont.powm_auto ctx sc sched b))

(* fixed-base comb vs Montgomery.modpow across the simulation's key
   sizes: random ~384..1024-bit odd moduli, random bases and exponents *)
let arb_fixed_base =
  let gen =
    QCheck.Gen.(
      oneofl [ 384; 512; 768; 1024 ] >>= fun bits ->
      string_size ~gen:char (return (bits / 8)) >>= fun mraw ->
      string_size ~gen:char (int_range 0 (bits / 8)) >>= fun eraw ->
      gen_big >>= fun b ->
      let m = B.add (B.shift_left (B.of_bytes_be mraw) 1) (B.of_int 3) in
      return (b, B.of_bytes_be eraw, m))
  in
  QCheck.make
    ~print:(fun (b, e, m) ->
      Printf.sprintf "base=%s exp=%s m=%s" (B.to_string b) (B.to_string e)
        (B.to_string m))
    gen

let prop_fixed_base_matches_oracle =
  QCheck.Test.make ~name:"Fixed_base.powm equals Montgomery.modpow (384-1024 bit)"
    ~count:60 arb_fixed_base
    (fun (b, e, m) ->
      let ctx = Mont.create m in
      let sched = Mont.schedule e in
      let fb =
        Mont.Fixed_base.precompute ctx b ~bits:(max 1 (Mont.schedule_bits sched))
      in
      B.equal (Mont.modpow ctx b e) (Mont.Fixed_base.powm fb sched))

let test_fixed_base_edges () =
  let m = B.of_int 1_000_003 in
  let ctx = Mont.create m in
  let fb = Mont.Fixed_base.precompute ctx (B.of_int 42) ~bits:8 in
  check big "e = 0 is 1" B.one (Mont.Fixed_base.powm fb (Mont.schedule B.zero));
  check big "8-bit exponent"
    (B.modpow (B.of_int 42) (B.of_int 255) m)
    (Mont.Fixed_base.powm fb (Mont.schedule (B.of_int 255)));
  Alcotest.check_raises "wider exponent rejected"
    (Invalid_argument "Fixed_base.powm: exponent wider than the precomputed table")
    (fun () -> ignore (Mont.Fixed_base.powm fb (Mont.schedule (B.of_int 256))))

(* the per-key sign/verify precompute is a pure speedup: signatures
   and verdicts are byte-identical with it on or off *)
let test_rsa_precompute_byte_identity () =
  let rng = Prng.create 2026 in
  Fun.protect
    ~finally:(fun () -> Rsa.set_precompute true)
    (fun () ->
      List.iter
        (fun bits ->
          let key = Rsa.generate ~mr_rounds:6 rng ~bits in
          let digest = if bits < 512 then Dk.SHA1 else Dk.SHA256 in
          let msg = Printf.sprintf "precompute identity at %d bits" bits in
          Rsa.set_precompute true;
          let s_on = Rsa.sign key ~digest msg in
          let v_on = Rsa.verify key.Rsa.pub ~digest ~msg ~signature:s_on in
          Rsa.set_precompute false;
          let s_off = Rsa.sign key ~digest msg in
          let v_off = Rsa.verify key.Rsa.pub ~digest ~msg ~signature:s_on in
          check Alcotest.string
            (Printf.sprintf "signature identical at %d bits" bits)
            s_off s_on;
          check Alcotest.bool "verdict identical" v_off v_on;
          check Alcotest.bool "and correct" true v_on)
        [ 384; 512; 768 ])

(* verification memo: verdicts are stable across repeats and hits
   accumulate *)
let test_verify_cache_stable () =
  let rng = Prng.create 7 in
  let module Authority = Tangled_x509.Authority in
  let module C = Tangled_x509.Certificate in
  let root =
    Authority.self_signed ~bits:384 ~digest:Dk.SHA1 rng (Tangled_x509.Dn.make "Memo Root")
  in
  let inter =
    Authority.issue_intermediate ~bits:384 ~digest:Dk.SHA1 rng ~parent:root
      (Tangled_x509.Dn.make "Memo Inter")
  in
  let cert = inter.Authority.certificate in
  let issuer = root.Authority.certificate in
  Chain.clear_verify_cache ();
  let first = Chain.verify_cert ~issuer cert in
  let h0, m0 = Chain.verify_cache_stats () in
  let second = Chain.verify_cert ~issuer cert in
  let h1, m1 = Chain.verify_cache_stats () in
  Alcotest.(check bool) "verdict ok" true first;
  Alcotest.(check bool) "verdict stable" first second;
  Alcotest.(check bool) "repeat was a hit" true (h1 = h0 + 1 && m1 = m0);
  Alcotest.(check bool) "memo agrees with direct verification" second
    (C.verify_signature cert ~issuer_key:issuer.C.public_key)

(* --- the 28-bit wide plane -------------------------------------------- *)

module Wide = Mont.Wide

(* every wide walk must agree with the legacy oracle on arbitrary
   inputs (bases reduced first: the wide plane packs k-limb values) *)
let prop_wide_powm_matches_oracle =
  QCheck.Test.make ~name:"Wide.powm variants equal legacy modpow" ~count:200
    arb_triple
    (fun (b, e, m) ->
      let b = B.erem b m in
      let wt = Wide.create m in
      let sc = Wide.scratch wt in
      let sched = Mont.schedule e in
      let want = B.modpow b e m in
      B.equal want (Wide.powm wt sc sched b)
      && B.equal want (Wide.powm_sparse wt sc sched b)
      && B.equal want (Wide.powm_auto wt sc sched b))

(* deterministic width sweep straddling the integrated-REDC bound
   (31 limbs = 868 bits): above it the kernel switches from the
   single-accumulator product scan to separate product + row REDC *)
let test_wide_width_sweep () =
  let rng = Random.State.make [| 0xC0FFEE |] in
  let rand_big bits =
    let nbytes = (bits + 7) / 8 in
    B.of_bytes_be
      (String.init nbytes (fun _ -> Char.chr (Random.State.int rng 256)))
  in
  let rand_odd bits =
    let v = B.add (B.shift_left B.one (bits - 1)) (rand_big (bits - 1)) in
    if B.is_odd v then v else B.add v B.one
  in
  List.iter
    (fun bits ->
      for trial = 1 to 5 do
        let m = rand_odd bits in
        let b = B.erem (rand_big (bits + 40)) m in
        let e = rand_big (min bits 80) in
        let want = B.modpow b e m in
        let wt = Wide.create m in
        let sc = Wide.scratch wt in
        let sched = Mont.schedule e in
        List.iter
          (fun (name, f) ->
            let got = f wt sc sched b in
            if not (B.equal want got) then
              Alcotest.failf "Wide.%s mismatch at %d bits (trial %d)" name bits
                trial)
          [
            ("powm", Wide.powm);
            ("powm_sparse", Wide.powm_sparse);
            ("powm_auto", Wide.powm_auto);
          ]
      done)
    [ 64; 192; 384; 512; 868; 869; 1024; 2048 ]

(* Karatsuba against schoolbook on random, deliberately asymmetric
   operand lengths with random cutovers: a huge threshold forces pure
   schoolbook (the oracle), a small one exercises the recursion *)
let arb_kara =
  let gen =
    QCheck.Gen.(
      int_range 1 80 >>= fun la ->
      int_range 1 80 >>= fun lb ->
      int_range 1 40 >>= fun th ->
      string_size ~gen:char (return (la * 3)) >>= fun ra ->
      string_size ~gen:char (return (lb * 3)) >>= fun rb ->
      return (B.of_bytes_be ra, B.of_bytes_be rb, th))
  in
  QCheck.make
    ~print:(fun (a, b, th) ->
      Printf.sprintf "a=%s b=%s threshold=%d" (B.to_string a) (B.to_string b) th)
    gen

let prop_karatsuba_matches_schoolbook =
  QCheck.Test.make ~name:"Karatsuba multiply/square equal schoolbook" ~count:300
    arb_kara
    (fun (a, b, th) ->
      let pa = Wide.Internal.pack a and pb = Wide.Internal.pack b in
      let sb = Wide.Internal.mul_limbs ~threshold:max_int pa pb in
      let ka = Wide.Internal.mul_limbs ~threshold:th pa pb in
      let sb2 = Wide.Internal.sqr_limbs ~threshold:max_int pa in
      let ka2 = Wide.Internal.sqr_limbs ~threshold:th pa in
      sb = ka && sb2 = ka2
      && B.equal (Wide.Internal.unpack sb) (B.mul a b)
      && B.equal (Wide.Internal.unpack sb2) (B.mul a a))

(* the production cutover itself: operands exactly at threshold-1,
   threshold, and threshold+1 limbs take different code paths and must
   agree with the bigint product *)
let test_karatsuba_threshold_edges () =
  let th = Wide.Internal.karatsuba_threshold in
  let rng = Random.State.make [| 0xBEEF |] in
  let rand_limbs n =
    B.of_bytes_be
      (String.init
         ((n * 28 + 7) / 8)
         (fun i -> Char.chr (if i = 0 then 1 else Random.State.int rng 256)))
  in
  List.iter
    (fun (la, lb) ->
      let a = rand_limbs la and b = rand_limbs lb in
      let pa = Wide.Internal.pack a and pb = Wide.Internal.pack b in
      let prod = Wide.Internal.unpack (Wide.Internal.mul_limbs ~threshold:th pa pb) in
      if not (B.equal prod (B.mul a b)) then
        Alcotest.failf "mul mismatch at %dx%d limbs (threshold %d)" la lb th;
      let sq = Wide.Internal.unpack (Wide.Internal.sqr_limbs ~threshold:th pa) in
      if not (B.equal sq (B.mul a a)) then
        Alcotest.failf "sqr mismatch at %d limbs (threshold %d)" la th)
    [
      (th - 1, th - 1);
      (th, th);
      (th + 1, th + 1);
      (th - 1, th + 1);
      (th + 1, th - 1);
      (1, th + 1);
    ]

(* the wide kernel and the per-key precompute are pure speedups: all
   four toggle combinations sign and verify byte-identically *)
let test_wide_kernel_byte_identity () =
  let rng = Prng.create 31337 in
  Fun.protect
    ~finally:(fun () ->
      Rsa.set_precompute true;
      Rsa.set_wide_kernel true)
    (fun () ->
      List.iter
        (fun bits ->
          let key = Rsa.generate ~mr_rounds:6 rng ~bits in
          let digest = if bits < 512 then Dk.SHA1 else Dk.SHA256 in
          let msg = Printf.sprintf "wide kernel identity at %d bits" bits in
          let runs =
            List.map
              (fun (pre, wide) ->
                Rsa.set_precompute pre;
                Rsa.set_wide_kernel wide;
                let s = Rsa.sign key ~digest msg in
                let v = Rsa.verify key.Rsa.pub ~digest ~msg ~signature:s in
                ((pre, wide), s, v))
              [ (true, true); (true, false); (false, true); (false, false) ]
          in
          let (_, s0, v0) = List.hd runs in
          Alcotest.(check bool) "reference verdict ok" true v0;
          List.iter
            (fun ((pre, wide), s, v) ->
              check Alcotest.string
                (Printf.sprintf "signature identical at %d bits (pre=%b wide=%b)"
                   bits pre wide)
                s0 s;
              check Alcotest.bool "verdict identical" v0 v)
            runs)
        [ 384; 512; 768 ])

let suite =
  [
    qtest prop_mont_matches_oracle;
    Alcotest.test_case "base >= modulus" `Quick test_base_exceeds_modulus;
    Alcotest.test_case "exponent zero" `Quick test_exponent_zero;
    Alcotest.test_case "bad moduli rejected" `Quick test_rejections;
    Alcotest.test_case "small exhaustive sweep" `Quick test_small_exhaustive;
    Alcotest.test_case "CRT sign/verify 384-1024 bits" `Slow test_sign_verify_roundtrip;
    Alcotest.test_case "CRT agrees with raw ops" `Quick test_crt_agrees_with_plain;
    Alcotest.test_case "even-modulus fallback" `Quick test_even_modulus_verify_fallback;
    qtest prop_bytes_roundtrip;
    qtest prop_bytes_matches_hex;
    qtest prop_powm_variants_match_oracle;
    qtest prop_fixed_base_matches_oracle;
    Alcotest.test_case "fixed-base edge cases" `Quick test_fixed_base_edges;
    Alcotest.test_case "sign/verify precompute byte-identity" `Slow
      test_rsa_precompute_byte_identity;
    Alcotest.test_case "verify cache stable" `Quick test_verify_cache_stable;
    qtest prop_wide_powm_matches_oracle;
    Alcotest.test_case "wide width sweep (64-2048 bits)" `Quick
      test_wide_width_sweep;
    qtest prop_karatsuba_matches_schoolbook;
    Alcotest.test_case "karatsuba threshold edges" `Quick
      test_karatsuba_threshold_edges;
    Alcotest.test_case "wide kernel sign/verify byte-identity" `Slow
      test_wide_kernel_byte_identity;
  ]
