(* Unit and property tests for the unified observability layer: span
   nesting and failure recording, histogram bucketing and quantiles
   against a naive sorted-list oracle, the bounded event log,
   reset_all, and the JSONL trace exporter's stable/volatile split. *)

module Obs = Tangled_obs.Obs
module Pipeline = Tangled_core.Pipeline

let qtest = QCheck_alcotest.to_alcotest

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- spans --------------------------------------------------------------- *)

let test_span_nesting () =
  Obs.reset_all ();
  let v =
    Obs.span "outer" (fun () ->
        Obs.span "inner-a" (fun () -> ());
        Obs.span "inner-b" (fun () -> 7))
  in
  Alcotest.(check int) "value returned through nesting" 7 v;
  match Obs.spans () with
  | [ outer; a; b ] ->
      Alcotest.(check (list string)) "creation (preorder) order"
        [ "outer"; "inner-a"; "inner-b" ]
        [ outer.Obs.name; a.Obs.name; b.Obs.name ];
      Alcotest.(check int) "outer is a root" 0 outer.Obs.parent;
      Alcotest.(check int) "outer depth" 0 outer.Obs.depth;
      Alcotest.(check int) "inner-a parent" outer.Obs.id a.Obs.parent;
      Alcotest.(check int) "inner-b parent" outer.Obs.id b.Obs.parent;
      Alcotest.(check int) "inner depth" 1 a.Obs.depth;
      Alcotest.(check bool) "all done" true
        (List.for_all (fun s -> s.Obs.status = Obs.Done) [ outer; a; b ]);
      Alcotest.(check bool) "outer spans its children" true
        (outer.Obs.dur_s >= a.Obs.dur_s && outer.Obs.dur_s >= b.Obs.dur_s)
  | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l)

let test_span_failure_recorded () =
  Obs.reset_all ();
  (try Obs.span "boom" (fun () -> failwith "kaput") with Failure _ -> ());
  (match Obs.spans () with
  | [ s ] -> (
      match s.Obs.status with
      | Obs.Failed msg ->
          Alcotest.(check bool) "failure message kept" true (contains msg "kaput")
      | Obs.Done -> Alcotest.fail "raising span recorded as Done")
  | l -> Alcotest.failf "expected the failed span, got %d spans" (List.length l));
  (* the stack must be unwound: the next span is a root again *)
  Obs.span "after" (fun () -> ());
  match Obs.spans () with
  | [ _; after ] ->
      Alcotest.(check int) "stack unwound after raise" 0 after.Obs.depth
  | _ -> Alcotest.fail "expected exactly two spans"

let test_disabled_records_nothing () =
  Obs.reset_all ();
  Obs.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled true)
    (fun () ->
      let v, s = Obs.spanned "ghost" (fun () -> 3) in
      Alcotest.(check int) "value still returned" 3 v;
      Alcotest.(check int) "synthetic span id" 0 s.Obs.id;
      Alcotest.(check bool) "duration still measured" true (s.Obs.dur_s >= 0.0);
      Obs.incr (Obs.counter "obs.test.ghost");
      Obs.event "obs.test.ghost_event";
      Obs.observe (Obs.histogram ~buckets:[| 1.0 |] "obs.test.ghost_hist") 0.5;
      Alcotest.(check int) "no spans retained" 0 (List.length (Obs.spans ()));
      Alcotest.(check int) "counter untouched" 0
        (Obs.value (Obs.counter "obs.test.ghost"));
      Alcotest.(check int) "no events retained" 0 (List.length (Obs.events ()));
      Alcotest.(check int) "histogram untouched" 0
        (Obs.histogram_snapshot
           (Obs.histogram ~buckets:[| 1.0 |] "obs.test.ghost_hist"))
          .Obs.total)

(* --- histograms ---------------------------------------------------------- *)

let test_histogram_bucket_edges () =
  Obs.reset_all ();
  let h = Obs.histogram ~buckets:[| 1.0; 2.0; 4.0 |] "obs.test.edges" in
  List.iter (Obs.observe h) [ 1.0; 1.5; 2.0; 4.0; 5.0; 0.0 ];
  let s = Obs.histogram_snapshot h in
  Alcotest.(check (array (float 0.0))) "edges kept" [| 1.0; 2.0; 4.0 |] s.Obs.edges;
  (* v <= edge owns the bucket: {0.0, 1.0} {1.5, 2.0} {4.0} overflow {5.0} *)
  Alcotest.(check (array int)) "bucket ownership incl. edge values"
    [| 2; 2; 1; 1 |] s.Obs.counts;
  Alcotest.(check int) "total" 6 s.Obs.total;
  Alcotest.(check (float 1e-9)) "sum" 13.5 s.Obs.sum;
  (* a quantile landing in the overflow bucket reports the last edge *)
  Alcotest.(check (float 1e-9)) "overflow quantile = last edge" 4.0
    (Obs.quantile s 1.0);
  let empty = Obs.histogram_snapshot (Obs.histogram "obs.test.empty") in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Obs.quantile empty 0.5))

let test_time_histogram_observes_on_raise () =
  Obs.reset_all ();
  let h = Obs.histogram ~buckets:[| 1.0 |] "obs.test.raise_hist" in
  (try Obs.time_histogram h (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "raising thunk still observed" 1
    (Obs.histogram_snapshot h).Obs.total

(* quantile estimates must stay inside the bucket that holds the
   empirical (sorted-list) quantile — the exact value interpolates, but
   it can never leave that bucket's edges *)
let prop_quantile_brackets_oracle =
  QCheck.Test.make ~name:"quantile stays in the empirical quantile's bucket"
    ~count:60
    QCheck.(pair (list_of_size Gen.(1 -- 60) small_nat) (int_bound 98))
    (fun (ns, qi) ->
      let values = List.map (fun n -> float_of_int n /. 7.0) ns in
      let q = float_of_int (qi + 1) /. 100.0 in
      Obs.reset_all ();
      let h =
        Obs.histogram ~buckets:[| 0.5; 1.0; 2.0; 4.0; 8.0 |]
          "obs.test.quantile_hist"
      in
      List.iter (Obs.observe h) values;
      let s = Obs.histogram_snapshot h in
      let est = Obs.quantile s q in
      let sorted = List.sort compare values in
      let n = List.length sorted in
      let rank = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let v = List.nth sorted (rank - 1) in
      let edges = s.Obs.edges in
      let ne = Array.length edges in
      let rec bucket i = if i >= ne || v <= edges.(i) then i else bucket (i + 1) in
      let bi = bucket 0 in
      if bi = ne then est = edges.(ne - 1)
      else
        let lo = if bi = 0 then 0.0 else edges.(bi - 1) in
        est >= lo -. 1e-9 && est <= edges.(bi) +. 1e-9)

(* --- events and reset ----------------------------------------------------- *)

let test_event_log_bounded () =
  Obs.reset_all ();
  for i = 1 to Obs.event_capacity + 50 do
    Obs.event ~fields:[ ("i", string_of_int i) ] "obs.test.flood"
  done;
  let all = Obs.events () in
  Alcotest.(check int) "capacity enforced" Obs.event_capacity (List.length all);
  (* oldest dropped: the first retained event is number 51 *)
  Alcotest.(check (list (pair string string))) "oldest dropped"
    [ ("i", "51") ]
    (List.hd all).Obs.fields;
  Alcotest.(check int) "seq keeps global order" 51 (List.hd all).Obs.seq

let test_reset_all_clears_everything () =
  Obs.reset_all ();
  let c = Obs.counter "obs.test.reset_c" in
  let g = Obs.gauge "obs.test.reset_g" in
  let h = Obs.histogram ~buckets:[| 1.0 |] "obs.test.reset_h" in
  Obs.incr c;
  Obs.set_gauge g 9;
  Obs.observe h 0.5;
  Obs.observe h 2.0;
  Obs.event ~fields:[ ("k", "v") ] "obs.test.reset_e";
  Obs.span "obs.test.reset_s" (fun () -> ());
  Obs.reset_all ();
  Alcotest.(check int) "counter zeroed" 0 (Obs.value c);
  Alcotest.(check int) "gauge zeroed" 0 (Obs.gauge_value g);
  let s = Obs.histogram_snapshot h in
  Alcotest.(check int) "histogram emptied" 0 s.Obs.total;
  Alcotest.(check (array int)) "buckets zeroed" [| 0; 0 |] s.Obs.counts;
  Alcotest.(check (float 0.0)) "sum zeroed" 0.0 s.Obs.sum;
  Alcotest.(check int) "events dropped" 0 (List.length (Obs.events ()));
  Alcotest.(check int) "spans dropped" 0 (List.length (Obs.spans ()));
  Obs.span "fresh" (fun () -> ());
  Alcotest.(check int) "span ids restart at 1" 1
    (List.hd (Obs.spans ())).Obs.id

(* --- trace export ---------------------------------------------------------- *)

let test_trace_schema_valid () =
  Obs.reset_all ();
  Obs.incr (Obs.counter "obs.test.trace_c");
  Obs.set_gauge (Obs.gauge "obs.test.trace_g") 3;
  Obs.observe (Obs.histogram ~buckets:[| 1.0 |] "obs.test.trace_h") 0.5;
  Obs.event ~fields:[ ("why", "test") ] "obs.test.trace_e";
  Obs.span "obs.test.trace_s" (fun () -> ());
  let trace = Obs.trace_jsonl ~jobs:4 () in
  (match Obs.validate_trace trace with
  | Ok () -> ()
  | Error e -> Alcotest.failf "own trace rejected: %s" e);
  match Obs.stable_view trace with
  | Error e -> Alcotest.failf "stable_view failed: %s" e
  | Ok stable ->
      Alcotest.(check bool) "volatile members stripped" false
        (contains stable "volatile");
      Alcotest.(check bool) "stable names survive" true
        (contains stable "obs.test.trace_c" && contains stable "obs.test.trace_s")

let header_line =
  Printf.sprintf "{\"schema\":%S,\"kind\":\"header\",\"volatile\":{}}\n"
    Obs.schema_version

let test_trace_validation_rejects () =
  let reject what t =
    match Obs.validate_trace t with
    | Ok () -> Alcotest.failf "%s accepted" what
    | Error _ -> ()
  in
  reject "empty trace" "";
  reject "garbage line" "not json\n";
  reject "missing header"
    "{\"kind\":\"counter\",\"name\":\"x\",\"volatile\":{\"value\":1}}\n";
  reject "wrong schema" "{\"schema\":\"bogus/9\",\"kind\":\"header\",\"volatile\":{}}\n";
  reject "duplicate header" (header_line ^ header_line);
  reject "unknown kind" (header_line ^ "{\"kind\":\"mystery\",\"volatile\":{}}\n");
  reject "counter value outside volatile"
    (header_line ^ "{\"kind\":\"counter\",\"name\":\"x\",\"value\":1,\"volatile\":{}}\n");
  reject "histogram counts/edges mismatch"
    (header_line
   ^ "{\"kind\":\"histogram\",\"name\":\"h\",\"edges\":[1.0],\"volatile\":\
      {\"counts\":[1],\"total\":1,\"sum\":0.5}}\n");
  match Obs.validate_trace header_line with
  | Ok () -> ()
  | Error e -> Alcotest.failf "bare header rejected: %s" e

(* volatile values (counter totals, histogram counts, durations) must
   not leak into the stable view: two runs recording different amounts
   through the same instruments produce identical stable bytes *)
let prop_stable_view_ignores_volatile =
  QCheck.Test.make ~name:"stable view independent of recorded volumes" ~count:25
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (xs, ys) ->
      let capture ns =
        Obs.reset_all ();
        let c = Obs.counter "obs.test.vol_c" in
        let h = Obs.histogram ~buckets:[| 1.0; 2.0; 4.0 |] "obs.test.vol_h" in
        List.iter
          (fun n ->
            Obs.incr c;
            Obs.observe h (float_of_int n /. 3.0))
          ns;
        Obs.span "obs.test.vol_s" (fun () -> ());
        match Obs.stable_view (Obs.trace_jsonl ~jobs:1 ()) with
        | Ok s -> s
        | Error e -> QCheck.Test.fail_report e
      in
      String.equal (capture xs) (capture ys))

(* the end-to-end determinism contract: a full pipeline run's stable
   trace is byte-identical whether the notary build used 1 worker
   domain or 4 *)
let test_stable_trace_jobs_independent () =
  let capture jobs =
    Obs.reset_all ();
    let w =
      Pipeline.run
        ~config:{ Pipeline.quick_config with Pipeline.jobs }
        ~universe:(Lazy.force Tangled_pki.Blueprint.default) ()
    in
    ignore w.Pipeline.jobs;
    match Obs.stable_view (Obs.trace_jsonl ~jobs ()) with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let at1 = capture 1 in
  let at4 = capture 4 in
  Alcotest.(check bool) "stable trace non-trivial" true (String.length at1 > 0);
  Alcotest.(check string) "stable trace bytes: jobs 1 = jobs 4" at1 at4

let suite =
  [
    Alcotest.test_case "span nesting and order" `Quick test_span_nesting;
    Alcotest.test_case "raising span recorded as failed" `Quick
      test_span_failure_recorded;
    Alcotest.test_case "disabled records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "histogram bucket edges" `Quick test_histogram_bucket_edges;
    Alcotest.test_case "time_histogram observes on raise" `Quick
      test_time_histogram_observes_on_raise;
    qtest prop_quantile_brackets_oracle;
    Alcotest.test_case "event log bounded" `Quick test_event_log_bounded;
    Alcotest.test_case "reset_all clears everything" `Quick
      test_reset_all_clears_everything;
    Alcotest.test_case "trace passes its own schema" `Quick test_trace_schema_valid;
    Alcotest.test_case "trace validation rejects malformed" `Quick
      test_trace_validation_rejects;
    qtest prop_stable_view_ignores_volatile;
    Alcotest.test_case "stable trace: jobs 1 vs 4" `Slow
      test_stable_trace_jobs_independent;
  ]
