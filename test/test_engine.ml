(* Unit tests for the measurement-engine substrate: the interned
   identity table, the id bitset, the one-pass coverage index, the
   deterministic domain fan-out, and the stage-timing collector. *)

module Interner = Tangled_engine.Interner
module Id_set = Tangled_engine.Id_set
module Coverage = Tangled_engine.Coverage
module Parallel = Tangled_engine.Parallel
module Timing = Tangled_engine.Timing

let test_interner_dense_ids () =
  let t = Interner.create ~capacity:2 () in
  Alcotest.(check int) "first id" 0 (Interner.intern t "alpha");
  Alcotest.(check int) "second id" 1 (Interner.intern t "beta");
  Alcotest.(check int) "re-intern is stable" 0 (Interner.intern t "alpha");
  Alcotest.(check int) "cardinal" 2 (Interner.cardinal t);
  Alcotest.(check (option int)) "find known" (Some 1) (Interner.find t "beta");
  Alcotest.(check (option int)) "find unknown" None (Interner.find t "gamma");
  Alcotest.(check string) "key roundtrip" "beta" (Interner.key t 1);
  Alcotest.check_raises "key out of range"
    (Invalid_argument "Interner.key: id 9 not minted (have 2)") (fun () ->
      ignore (Interner.key t 9))

let test_interner_growth () =
  let t = Interner.create ~capacity:1 () in
  for i = 0 to 999 do
    Alcotest.(check int) "sequential ids" i (Interner.intern t (string_of_int i))
  done;
  Alcotest.(check int) "cardinal after growth" 1000 (Interner.cardinal t);
  Alcotest.(check string) "key survives growth" "512" (Interner.key t 512)

let test_id_set_basics () =
  let s = Id_set.create 8 in
  Alcotest.(check int) "empty" 0 (Id_set.cardinal s);
  Id_set.add s 3;
  Id_set.add s 3;
  Id_set.add s 0;
  Alcotest.(check bool) "mem 3" true (Id_set.mem s 3);
  Alcotest.(check bool) "mem 1" false (Id_set.mem s 1);
  Alcotest.(check int) "cardinal dedups" 2 (Id_set.cardinal s);
  Id_set.add s (-5);
  Alcotest.(check int) "negative ignored" 2 (Id_set.cardinal s);
  Alcotest.(check bool) "out of range mem" false (Id_set.mem s 1000);
  Id_set.add s 1000;
  Alcotest.(check bool) "auto-grows" true (Id_set.mem s 1000);
  let seen = ref [] in
  Id_set.iter (fun i -> seen := i :: !seen) s;
  Alcotest.(check (list int)) "iter ascending" [ 0; 3; 1000 ] (List.rev !seen)

let test_coverage_counts () =
  (* chains: anchor ids [0;1;1;-1;2;1], chain 4 expired *)
  let anchors = [| 0; 1; 1; -1; 2; 1 |] in
  let expired = [| false; false; false; false; true; false |] in
  let cov =
    Coverage.build ~n_ids:3 ~total:6
      ~anchor:(fun i -> anchors.(i))
      ~expired:(fun i -> expired.(i))
  in
  Alcotest.(check int) "total" 6 (Coverage.total cov);
  Alcotest.(check int) "unexpired" 5 (Coverage.unexpired cov);
  Alcotest.(check int) "count id 0" 1 (Coverage.count cov 0);
  Alcotest.(check int) "count id 1" 3 (Coverage.count cov 1);
  Alcotest.(check int) "count id 2" 0 (Coverage.count cov 2);
  Alcotest.(check int) "count out of range" 0 (Coverage.count cov 99);
  Alcotest.(check int) "anchor passthrough" (-1) (Coverage.anchor cov 3);
  Alcotest.(check bool) "expired passthrough" true (Coverage.chain_expired cov 4);
  let set = Id_set.of_list [ 0; 1 ] in
  Alcotest.(check int) "validated_by sums member counts" 4
    (Coverage.validated_by cov set);
  let empty = Id_set.create 3 in
  Alcotest.(check int) "validated_by empty" 0 (Coverage.validated_by cov empty)

let test_parallel_matches_sequential () =
  let f i = (i * 37) mod 101 in
  let reference = Array.init 1000 f in
  List.iter
    (fun jobs ->
      let got = Parallel.tabulate ~jobs 1000 f in
      Alcotest.(check (array int))
        (Printf.sprintf "tabulate jobs=%d" jobs)
        reference got)
    [ 1; 2; 3; 4; 7; 8 ];
  (* sizes around the slice boundaries *)
  List.iter
    (fun n ->
      let reference = Array.init n f in
      Alcotest.(check (array int))
        (Printf.sprintf "tabulate n=%d" n)
        reference
        (Parallel.tabulate ~jobs:4 n f))
    [ 0; 1; 31; 32; 33; 129 ]

let test_parallel_map () =
  let input = Array.init 257 string_of_int in
  let got = Parallel.map ~jobs:3 String.length input in
  Alcotest.(check (array int)) "map" (Array.map String.length input) got

let test_parallel_resolve () =
  Alcotest.(check int) "explicit survives" 3 (Parallel.resolve 3);
  Alcotest.(check int) "capped" Parallel.max_jobs (Parallel.resolve 99);
  let auto = Parallel.resolve 0 in
  Alcotest.(check bool) "auto in range" true (auto >= 1 && auto <= Parallel.max_jobs)

let test_timing_spans () =
  let tm = Timing.create () in
  let x = Timing.time tm "first" (fun () -> 41 + 1) in
  Alcotest.(check int) "value returned" 42 x;
  ignore (Timing.time tm "second" (fun () -> ()));
  let spans = Timing.spans tm in
  Alcotest.(check (list string)) "ordered stages" [ "first"; "second" ]
    (List.map (fun (s : Timing.span) -> s.Timing.stage) spans);
  Alcotest.(check bool) "non-negative" true
    (List.for_all (fun (s : Timing.span) -> s.Timing.seconds >= 0.0) spans);
  Alcotest.(check bool) "total sums" true (Timing.total spans >= 0.0);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let rendered = Timing.render ~title:"T" spans in
  Alcotest.(check bool) "render mentions stage" true (contains rendered "first")

let suite =
  [
    Alcotest.test_case "interner dense ids" `Quick test_interner_dense_ids;
    Alcotest.test_case "interner growth" `Quick test_interner_growth;
    Alcotest.test_case "id_set basics" `Quick test_id_set_basics;
    Alcotest.test_case "coverage counts" `Quick test_coverage_counts;
    Alcotest.test_case "parallel tabulate deterministic" `Quick
      test_parallel_matches_sequential;
    Alcotest.test_case "parallel map" `Quick test_parallel_map;
    Alcotest.test_case "parallel resolve" `Quick test_parallel_resolve;
    Alcotest.test_case "timing spans" `Quick test_timing_spans;
  ]
