(* Unit tests for the measurement-engine substrate: the interned
   identity table, the id bitset, the incremental coverage index (with
   a QCheck oracle holding it to the one-shot rebuild), and the
   deterministic domain fan-out. *)

module Interner = Tangled_engine.Interner
module Id_set = Tangled_engine.Id_set
module Coverage = Tangled_engine.Coverage
module Parallel = Tangled_engine.Parallel

let qtest = QCheck_alcotest.to_alcotest

let test_interner_dense_ids () =
  let t = Interner.create ~capacity:2 () in
  Alcotest.(check int) "first id" 0 (Interner.intern t "alpha");
  Alcotest.(check int) "second id" 1 (Interner.intern t "beta");
  Alcotest.(check int) "re-intern is stable" 0 (Interner.intern t "alpha");
  Alcotest.(check int) "cardinal" 2 (Interner.cardinal t);
  Alcotest.(check (option int)) "find known" (Some 1) (Interner.find t "beta");
  Alcotest.(check (option int)) "find unknown" None (Interner.find t "gamma");
  Alcotest.(check string) "key roundtrip" "beta" (Interner.key t 1);
  Alcotest.check_raises "key out of range"
    (Invalid_argument "Interner.key: id 9 not minted (have 2)") (fun () ->
      ignore (Interner.key t 9))

let test_interner_growth () =
  let t = Interner.create ~capacity:1 () in
  for i = 0 to 999 do
    Alcotest.(check int) "sequential ids" i (Interner.intern t (string_of_int i))
  done;
  Alcotest.(check int) "cardinal after growth" 1000 (Interner.cardinal t);
  Alcotest.(check string) "key survives growth" "512" (Interner.key t 512)

let test_id_set_basics () =
  let s = Id_set.create 8 in
  Alcotest.(check int) "empty" 0 (Id_set.cardinal s);
  Id_set.add s 3;
  Id_set.add s 3;
  Id_set.add s 0;
  Alcotest.(check bool) "mem 3" true (Id_set.mem s 3);
  Alcotest.(check bool) "mem 1" false (Id_set.mem s 1);
  Alcotest.(check int) "cardinal dedups" 2 (Id_set.cardinal s);
  Id_set.add s (-5);
  Alcotest.(check int) "negative ignored" 2 (Id_set.cardinal s);
  Alcotest.(check bool) "out of range mem" false (Id_set.mem s 1000);
  Id_set.add s 1000;
  Alcotest.(check bool) "auto-grows" true (Id_set.mem s 1000);
  let seen = ref [] in
  Id_set.iter (fun i -> seen := i :: !seen) s;
  Alcotest.(check (list int)) "iter ascending" [ 0; 3; 1000 ] (List.rev !seen)

let test_coverage_counts () =
  (* chains: anchor ids [0;1;1;-1;2;1], chain 4 expired *)
  let anchors = [| 0; 1; 1; -1; 2; 1 |] in
  let expired = [| false; false; false; false; true; false |] in
  let cov =
    Coverage.build ~n_ids:3 ~total:6
      ~anchor:(fun i -> anchors.(i))
      ~expired:(fun i -> expired.(i))
  in
  Alcotest.(check int) "total" 6 (Coverage.total cov);
  Alcotest.(check int) "unexpired" 5 (Coverage.unexpired cov);
  Alcotest.(check int) "count id 0" 1 (Coverage.count cov 0);
  Alcotest.(check int) "count id 1" 3 (Coverage.count cov 1);
  Alcotest.(check int) "count id 2" 0 (Coverage.count cov 2);
  Alcotest.(check int) "count out of range" 0 (Coverage.count cov 99);
  let set = Id_set.of_list [ 0; 1 ] in
  Alcotest.(check int) "validated_by sums member counts" 4
    (Coverage.validated_by cov set);
  let empty = Id_set.create 3 in
  Alcotest.(check int) "validated_by empty" 0 (Coverage.validated_by cov empty)

let test_coverage_incremental_basics () =
  let cov = Coverage.create () in
  Alcotest.(check int) "empty total" 0 (Coverage.total cov);
  Alcotest.(check int) "empty n_ids" 0 (Coverage.n_ids cov);
  Coverage.append cov ~anchor:2 ~expired:false;
  Coverage.append cov ~anchor:(-1) ~expired:false;
  Coverage.append cov ~anchor:2 ~expired:true;
  Coverage.append cov ~anchor:0 ~expired:false;
  Alcotest.(check int) "total" 4 (Coverage.total cov);
  Alcotest.(check int) "unexpired" 3 (Coverage.unexpired cov);
  Alcotest.(check int) "n_ids grows to max anchor + 1" 3 (Coverage.n_ids cov);
  Alcotest.(check (array int)) "counts" [| 1; 0; 1 |] (Coverage.counts cov);
  (* a pre-sized index with trailing zero counters still compares equal *)
  let wide = Coverage.create ~n_ids:64 () in
  Coverage.append wide ~anchor:2 ~expired:false;
  Coverage.append wide ~anchor:(-1) ~expired:false;
  Coverage.append wide ~anchor:2 ~expired:true;
  Coverage.append wide ~anchor:0 ~expired:false;
  Alcotest.(check bool) "equal ignores trailing zeros" true
    (Coverage.equal cov wide)

(* The tentpole's central oracle: folding any append sequence into the
   incremental index must equal a rebuild-from-scratch over the same
   chains — [build] is an independent one-shot implementation, not a
   loop over [append]. *)
let prop_incremental_equals_rebuild =
  QCheck.Test.make ~name:"incremental coverage equals rebuild-from-scratch"
    ~count:200
    QCheck.(
      pair (0 -- 8)
        (small_list (pair (-1 -- 12) bool)))
    (fun (pre_ids, chains) ->
      let inc = Coverage.create ~n_ids:pre_ids () in
      List.iter (fun (anchor, expired) -> Coverage.append inc ~anchor ~expired) chains;
      let arr = Array.of_list chains in
      let rebuilt =
        Coverage.build ~n_ids:pre_ids ~total:(Array.length arr)
          ~anchor:(fun i -> fst arr.(i))
          ~expired:(fun i -> snd arr.(i))
      in
      Coverage.equal inc rebuilt
      && Coverage.total inc = Coverage.total rebuilt
      && Coverage.unexpired inc = Coverage.unexpired rebuilt)

let test_parallel_matches_sequential () =
  let f i = (i * 37) mod 101 in
  let reference = Array.init 1000 f in
  List.iter
    (fun jobs ->
      let got = Parallel.tabulate ~jobs 1000 f in
      Alcotest.(check (array int))
        (Printf.sprintf "tabulate jobs=%d" jobs)
        reference got)
    [ 1; 2; 3; 4; 7; 8 ];
  (* sizes around the slice boundaries *)
  List.iter
    (fun n ->
      let reference = Array.init n f in
      Alcotest.(check (array int))
        (Printf.sprintf "tabulate n=%d" n)
        reference
        (Parallel.tabulate ~jobs:4 n f))
    [ 0; 1; 31; 32; 33; 129 ]

let test_parallel_map () =
  let input = Array.init 257 string_of_int in
  let got = Parallel.map ~jobs:3 String.length input in
  Alcotest.(check (array int)) "map" (Array.map String.length input) got

let test_parallel_resolve () =
  Alcotest.(check int) "explicit survives" 3 (Parallel.resolve 3);
  Alcotest.(check int) "capped" Parallel.max_jobs (Parallel.resolve 99);
  let auto = Parallel.resolve 0 in
  Alcotest.(check bool) "auto in range" true (auto >= 1 && auto <= Parallel.max_jobs)

let suite =
  [
    Alcotest.test_case "interner dense ids" `Quick test_interner_dense_ids;
    Alcotest.test_case "interner growth" `Quick test_interner_growth;
    Alcotest.test_case "id_set basics" `Quick test_id_set_basics;
    Alcotest.test_case "coverage counts" `Quick test_coverage_counts;
    Alcotest.test_case "coverage incremental basics" `Quick
      test_coverage_incremental_basics;
    qtest prop_incremental_equals_rebuild;
    Alcotest.test_case "parallel tabulate deterministic" `Quick
      test_parallel_matches_sequential;
    Alcotest.test_case "parallel map" `Quick test_parallel_map;
    Alcotest.test_case "parallel resolve" `Quick test_parallel_resolve;
  ]
