(* Tests for the digest substrate: published test vectors plus
   structural properties. *)

open Tangled_hash

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* FIPS 180-4 / RFC 1321 reference vectors. *)

let test_sha256_vectors () =
  check Alcotest.string "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex "");
  check Alcotest.string "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex "abc");
  check Alcotest.string "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check Alcotest.string "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (String.make 1_000_000 'a'))

let test_sha1_vectors () =
  check Alcotest.string "empty" "da39a3ee5e6b4b0d3255bfef95601890afd80709" (Sha1.hex "");
  check Alcotest.string "abc" "a9993e364706816aba3e25717850c26c9cd0d89d" (Sha1.hex "abc");
  check Alcotest.string "two blocks" "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (Sha1.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check Alcotest.string "million a" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Sha1.hex (String.make 1_000_000 'a'))

let test_md5_vectors () =
  check Alcotest.string "empty" "d41d8cd98f00b204e9800998ecf8427e" (Md5.hex "");
  check Alcotest.string "a" "0cc175b9c0f1b6a831c399e269772661" (Md5.hex "a");
  check Alcotest.string "abc" "900150983cd24fb0d6963f7d28e17f72" (Md5.hex "abc");
  check Alcotest.string "message digest" "f96b697d7cb7938d525a2f31aaf161d0"
    (Md5.hex "message digest");
  check Alcotest.string "alphabet" "c3fcd3d76192e4007dfb496cca67e13b"
    (Md5.hex "abcdefghijklmnopqrstuvwxyz");
  check Alcotest.string "digits"
    "57edf4a22be3c955ac49da2e2107b67a"
    (Md5.hex "12345678901234567890123456789012345678901234567890123456789012345678901234567890")

(* boundary lengths around the padding break at 55/56/64 bytes *)
let test_padding_boundaries () =
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      check Alcotest.int "sha256 size" 32 (String.length (Sha256.digest s));
      check Alcotest.int "sha1 size" 20 (String.length (Sha1.digest s));
      check Alcotest.int "md5 size" 16 (String.length (Md5.digest s)))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]

(* exact digests at the padding-boundary lengths (a^n, coreutils-derived) *)
let test_boundary_vectors () =
  List.iter
    (fun (n, md5, sha1, sha256) ->
      let s = String.make n 'a' in
      check Alcotest.string (Printf.sprintf "md5 a*%d" n) md5 (Md5.hex s);
      check Alcotest.string (Printf.sprintf "sha1 a*%d" n) sha1 (Sha1.hex s);
      check Alcotest.string (Printf.sprintf "sha256 a*%d" n) sha256 (Sha256.hex s))
    [
      ( 55,
        "ef1772b6dff9a122358552954ad0df65",
        "c1c8bbdc22796e28c0e15163d20899b65621d65a",
        "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318" );
      ( 56,
        "3b0c8ac703f828b04c6c197006d17218",
        "c2db330f6083854c99d4b5bfb6e8f29f201be699",
        "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a" );
      ( 64,
        "014842d480b571495a4a0363793f7367",
        "0098ba824b5c16427bd7a1122a5a442a25ec644d",
        "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb" );
      ( 119,
        "8a7bd0732ed6a28ce75f6dabc90e1613",
        "ee971065aaa017e0632a8ca6c77bb3bf8b1dfc56",
        "31eba51c313a5c08226adf18d4a359cfdfd8d2e816b13f4af952f7ea6584dcfb" );
    ]

(* streaming context API: feed/feed_sub/finalize *)
let test_streaming_ctx () =
  let msg = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq" in
  let ctx = Sha256.init () in
  Sha256.feed ctx (String.sub msg 0 10);
  Sha256.feed ctx (String.sub msg 10 (String.length msg - 10));
  check Alcotest.string "sha256 split feed" (Sha256.digest msg) (Sha256.finalize ctx);
  let ctx = Sha1.init () in
  Sha1.feed_sub ctx msg ~off:0 ~len:33;
  Sha1.feed_sub ctx msg ~off:33 ~len:(String.length msg - 33);
  check Alcotest.string "sha1 feed_sub" (Sha1.digest msg) (Sha1.finalize ctx);
  let ctx = Md5.init () in
  Md5.feed ctx "";
  Md5.feed ctx msg;
  Md5.feed ctx "";
  check Alcotest.string "md5 empty feeds" (Md5.digest msg) (Md5.finalize ctx);
  (* feed_sub rejects out-of-range views *)
  List.iter
    (fun (off, len) ->
      Alcotest.check_raises
        (Printf.sprintf "bad range off=%d len=%d" off len)
        (Invalid_argument "Sha256.feed_sub: range out of bounds")
        (fun () -> Sha256.feed_sub (Sha256.init ()) "abc" ~off ~len))
    [ (-1, 1); (0, 4); (2, 2); (0, -1) ];
  (* Digest_kind ctx dispatch agrees with the one-shots *)
  List.iter
    (fun dk ->
      let ctx = Digest_kind.init dk in
      Digest_kind.feed ctx "abc";
      Digest_kind.feed_sub ctx "xdefx" ~off:1 ~len:3;
      check Alcotest.string
        ("digest_kind ctx " ^ Digest_kind.name dk)
        (Digest_kind.digest dk "abcdef")
        (Digest_kind.finalize ctx))
    Digest_kind.all

(* the boxed pre-optimisation cores are the oracle for the unboxed ones *)
let prop_matches_reference =
  QCheck.Test.make ~name:"unboxed cores match boxed reference" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_range 0 300))
    (fun s ->
      Sha256.digest s = Reference.Sha256.digest s
      && Sha1.digest s = Reference.Sha1.digest s
      && Md5.digest s = Reference.Md5.digest s)

(* feeding at arbitrary split points must equal the one-shot digest *)
let prop_split_feed_equivalent =
  let gen =
    QCheck.make
      ~print:(fun (s, cuts) ->
        Printf.sprintf "len=%d cuts=[%s]" (String.length s)
          (String.concat ";" (List.map string_of_int cuts)))
      QCheck.Gen.(
        string_size (int_range 0 400) >>= fun s ->
        list_size (int_range 0 8) (int_range 0 (max 1 (String.length s))) >>= fun cuts ->
        return (s, cuts))
  in
  QCheck.Test.make ~name:"random-split feeding equals one-shot" ~count:200 gen
    (fun (s, cuts) ->
      let n = String.length s in
      let cuts = List.sort_uniq Stdlib.compare (List.filter (fun c -> c <= n) (0 :: cuts @ [ n ])) in
      let feed_pieces init feed_sub finalize =
        let ctx = init () in
        let rec go = function
          | a :: (b :: _ as rest) ->
              feed_sub ctx s ~off:a ~len:(b - a);
              go rest
          | _ -> ()
        in
        go cuts;
        finalize ctx
      in
      feed_pieces Sha256.init Sha256.feed_sub Sha256.finalize = Sha256.digest s
      && feed_pieces Sha1.init Sha1.feed_sub Sha1.finalize = Sha1.digest s
      && feed_pieces Md5.init Md5.feed_sub Md5.finalize = Md5.digest s)

let test_digest_kind () =
  check Alcotest.int "md5 size" 16 (Digest_kind.size Digest_kind.MD5);
  check Alcotest.int "sha1 size" 20 (Digest_kind.size Digest_kind.SHA1);
  check Alcotest.int "sha256 size" 32 (Digest_kind.size Digest_kind.SHA256);
  List.iter
    (fun dk ->
      check (Alcotest.option (Alcotest.testable Digest_kind.pp ( = )))
        "name roundtrip" (Some dk)
        (Digest_kind.of_name (Digest_kind.name dk)))
    Digest_kind.all;
  check (Alcotest.option (Alcotest.testable Digest_kind.pp ( = ))) "unknown" None
    (Digest_kind.of_name "sha512")

let prop_deterministic =
  QCheck.Test.make ~name:"digests deterministic" ~count:100 QCheck.string (fun s ->
      Sha256.digest s = Sha256.digest s
      && Sha1.digest s = Sha1.digest s
      && Md5.digest s = Md5.digest s)

let prop_sizes =
  QCheck.Test.make ~name:"digest sizes fixed" ~count:100 QCheck.string (fun s ->
      String.length (Sha256.digest s) = 32
      && String.length (Sha1.digest s) = 20
      && String.length (Md5.digest s) = 16)

let prop_sensitivity =
  QCheck.Test.make ~name:"one byte flips the digest" ~count:100
    QCheck.(string_of_size (QCheck.Gen.int_range 1 100))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
      let s' = Bytes.to_string b in
      Sha256.digest s <> Sha256.digest s')

let suite =
  [
    ("sha256 vectors", `Quick, test_sha256_vectors);
    ("sha1 vectors", `Quick, test_sha1_vectors);
    ("md5 vectors", `Quick, test_md5_vectors);
    ("padding boundaries", `Quick, test_padding_boundaries);
    ("boundary vectors", `Quick, test_boundary_vectors);
    ("streaming contexts", `Quick, test_streaming_ctx);
    ("digest kind dispatch", `Quick, test_digest_kind);
    qtest prop_deterministic;
    qtest prop_sizes;
    qtest prop_sensitivity;
    qtest prop_matches_reference;
    qtest prop_split_feed_equivalent;
  ]
