(* Aggregated test runner.  Suites that need the synthetic universe
   share one lazily-built instance (Blueprint.default / Pipeline.quick),
   so the expensive key generation happens once per process. *)

let () =
  Alcotest.run "tangled_mass"
    [
      ("util", Test_util.suite);
      ("cache", Test_cache.suite);
      ("bigint", Test_bigint.suite);
      ("montgomery", Test_montgomery.suite);
      ("hash", Test_hash.suite);
      ("rsa", Test_rsa.suite);
      ("asn1", Test_asn1.suite);
      ("x509", Test_x509.suite);
      ("arena", Test_arena.suite);
      ("store", Test_store.suite);
      ("validation", Test_validation.suite);
      ("pki", Test_pki.suite);
      ("device", Test_device.suite);
      ("netalyzr", Test_netalyzr.suite);
      ("notary", Test_notary.suite);
      ("tls", Test_tls.suite);
      ("core", Test_core.suite);
      ("extensions", Test_extensions.suite);
      ("fuzz", Test_fuzz.suite);
      ("persistence", Test_persistence.suite);
      ("ingest", Test_ingest.suite);
      ("plotting", Test_plotting.suite);
      ("properties", Test_properties.suite);
      ("engine", Test_engine.suite);
      ("determinism", Test_determinism.suite);
      ("serve", Test_serve.suite);
      ("ct", Test_ct.suite);
      (* last: obs tests reset the process-wide instrumentation state *)
      ("obs", Test_obs.suite);
    ]
