(* Tests for the arbitrary-precision integer substrate. *)

module B = Tangled_numeric.Bigint
module Prime = Tangled_numeric.Prime
module Prng = Tangled_util.Prng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let big = Alcotest.testable B.pp B.equal

let b s =
  match B.of_string s with
  | Ok v -> v
  | Error e -> Alcotest.failf "of_string %S: %s" s e

let h s =
  match B.of_hex s with
  | Ok v -> v
  | Error e -> Alcotest.failf "of_hex %S: %s" s e

let test_of_to_string () =
  check Alcotest.string "zero" "0" (B.to_string B.zero);
  check Alcotest.string "small" "42" (B.to_string (B.of_int 42));
  check Alcotest.string "negative" "-42" (B.to_string (B.of_int (-42)));
  let huge = "123456789012345678901234567890123456789" in
  check Alcotest.string "huge roundtrip" huge (B.to_string (b huge));
  check big "plus sign" (B.of_int 5) (b "+5");
  (match B.of_string "12x3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error on malformed decimal");
  (match B.of_string "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error on empty string")

let test_of_int_extremes () =
  check Alcotest.string "max_int" (string_of_int max_int) (B.to_string (B.of_int max_int));
  check Alcotest.string "min_int" (string_of_int min_int) (B.to_string (B.of_int min_int))

let test_arith () =
  check big "add" (b "1000000000000000000000") (B.add (b "999999999999999999999") B.one);
  check big "sub" (b "999999999999999999999") (B.sub (b "1000000000000000000000") B.one);
  check big "sub to negative" (B.of_int (-5)) (B.sub (B.of_int 5) (B.of_int 10));
  check big "mul" (b "121932631137021795226185032733622923332237463801111263526900")
    (B.mul (b "123456789012345678901234567890") (b "987654321098765432109876543210"));
  check big "mul neg" (B.of_int (-12)) (B.mul (B.of_int 3) (B.of_int (-4)));
  check big "mul zero" B.zero (B.mul B.zero (b "999999999999999"))

let test_divmod () =
  let dividend = b "1000000000000000000007" and divisor = b "1000000007" in
  let q, r = B.divmod dividend divisor in
  check big "identity" dividend (B.add (B.mul q divisor) r);
  Alcotest.(check bool) "remainder bound" true
    (B.sign r >= 0 && B.compare r divisor < 0);
  check big "small case" (B.of_int 3) (B.div (B.of_int 7) B.two);
  (* truncation semantics: remainder carries the dividend's sign *)
  let q, r = B.divmod (B.of_int (-7)) (B.of_int 2) in
  check big "neg quotient" (B.of_int (-3)) q;
  check big "neg remainder" (B.of_int (-1)) r;
  check big "erem positive" B.one (B.erem (B.of_int (-7)) (B.of_int 2));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_shifts_bits () =
  check big "shl" (B.of_int 1024) (B.shift_left B.one 10);
  check big "shr" B.one (B.shift_right (B.of_int 1024) 10);
  check big "shr to zero" B.zero (B.shift_right (B.of_int 3) 10);
  check Alcotest.int "bit_length 0" 0 (B.bit_length B.zero);
  check Alcotest.int "bit_length 1" 1 (B.bit_length B.one);
  check Alcotest.int "bit_length 255" 8 (B.bit_length (B.of_int 255));
  check Alcotest.int "bit_length 256" 9 (B.bit_length (B.of_int 256));
  Alcotest.(check bool) "testbit" true (B.testbit (B.of_int 5) 2);
  Alcotest.(check bool) "testbit clear" false (B.testbit (B.of_int 5) 1)

let test_bytes () =
  check Alcotest.string "to_bytes" "\x01\x00" (B.to_bytes_be (B.of_int 256));
  check big "of_bytes" (B.of_int 256) (B.of_bytes_be "\x01\x00");
  check big "empty bytes" B.zero (B.of_bytes_be "");
  check Alcotest.string "zero bytes" "" (B.to_bytes_be B.zero)

let test_hex () =
  check Alcotest.string "to_hex" "ff" (B.to_hex (B.of_int 255));
  check big "of_hex" (B.of_int 255) (h "ff");
  check big "of_hex upper" (B.of_int 255) (h "FF");
  check Alcotest.string "hex zero" "0" (B.to_hex B.zero);
  (match B.of_hex "fg" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error on malformed hex")

let test_pow_modpow () =
  check big "pow" (b "1267650600228229401496703205376") (B.pow B.two 100);
  check big "pow zero" B.one (B.pow (B.of_int 7) 0);
  (* Fermat: 2^(p-1) = 1 mod p for prime p *)
  let p = b "1000000007" in
  check big "fermat" B.one (B.modpow B.two (B.sub p B.one) p);
  (* Carmichael number 561 is a Fermat pseudoprime base 7 *)
  check big "carmichael" B.one (B.modpow (B.of_int 7) (B.of_int 560) (B.of_int 561));
  check big "mod one" B.zero (B.modpow (B.of_int 5) (B.of_int 3) B.one)

let test_gcd_inverse () =
  check big "gcd" (B.of_int 6) (B.gcd (B.of_int 48) (B.of_int 18));
  check big "gcd with zero" (B.of_int 5) (B.gcd (B.of_int 5) B.zero);
  let g, x, y = B.extended_gcd (B.of_int 240) (B.of_int 46) in
  check big "egcd g" (B.of_int 2) g;
  check big "egcd identity" g
    (B.add (B.mul (B.of_int 240) x) (B.mul (B.of_int 46) y));
  (match B.mod_inverse (B.of_int 3) (B.of_int 11) with
  | Some inv -> check big "inverse" (B.of_int 4) inv
  | None -> Alcotest.fail "inverse exists");
  check (Alcotest.option big) "no inverse" None (B.mod_inverse (B.of_int 4) (B.of_int 8))

let test_compare () =
  Alcotest.(check bool) "lt" true (B.compare (B.of_int (-5)) (B.of_int 3) < 0);
  Alcotest.(check bool) "neg ordering" true
    (B.compare (B.of_int (-5)) (B.of_int (-3)) < 0);
  check Alcotest.int "sign neg" (-1) (B.sign (B.of_int (-9)));
  check Alcotest.int "sign zero" 0 (B.sign B.zero);
  Alcotest.(check bool) "is_odd" true (B.is_odd (B.of_int 7));
  Alcotest.(check bool) "is_odd even" false (B.is_odd (B.of_int 8))

let test_random () =
  let rng = Prng.create 99 in
  for _ = 1 to 50 do
    let v = B.random_bits rng 100 in
    Alcotest.(check bool) "bit bound" true (B.bit_length v <= 100)
  done;
  let bound = b "1000000000000" in
  for _ = 1 to 50 do
    let v = B.random_below rng bound in
    Alcotest.(check bool) "below bound" true (B.compare v bound < 0 && B.sign v >= 0)
  done

(* --- qcheck properties ------------------------------------------------ *)

let gen_big =
  QCheck.map
    (fun (s, neg) ->
      let v = B.of_bytes_be s in
      if neg then B.neg v else v)
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 40)) bool)

let prop_add_commutative =
  QCheck.Test.make ~name:"add commutative" ~count:300 (QCheck.pair gen_big gen_big)
    (fun (a, b) -> B.equal (B.add a b) (B.add b a))

let prop_add_sub_inverse =
  QCheck.Test.make ~name:"sub inverts add" ~count:300 (QCheck.pair gen_big gen_big)
    (fun (a, b) -> B.equal (B.sub (B.add a b) b) a)

let prop_mul_distributes =
  QCheck.Test.make ~name:"mul distributes over add" ~count:200
    (QCheck.triple gen_big gen_big gen_big)
    (fun (a, b, c) ->
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_divmod_identity =
  QCheck.Test.make ~name:"a = q*b + r, |r| < |b|" ~count:500
    (QCheck.pair gen_big gen_big)
    (fun (a, b) ->
      QCheck.assume (not (B.is_zero b));
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r) && B.compare (B.abs r) (B.abs b) < 0)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"decimal roundtrip" ~count:200 gen_big (fun a ->
      match B.of_string (B.to_string a) with
      | Ok b -> B.equal a b
      | Error _ -> false)

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 gen_big (fun a ->
      match B.of_hex (B.to_hex a) with
      | Ok b -> B.equal a b
      | Error _ -> false)

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes roundtrip" ~count:200 gen_big (fun a ->
      let a = B.abs a in
      B.equal a (B.of_bytes_be (B.to_bytes_be a)))

let prop_shift_mul =
  QCheck.Test.make ~name:"shift_left = mul by 2^k" ~count:200
    (QCheck.pair gen_big (QCheck.int_range 0 64))
    (fun (a, k) -> B.equal (B.shift_left a k) (B.mul a (B.pow B.two k)))

let prop_modpow_matches_naive =
  QCheck.Test.make ~name:"modpow matches naive power" ~count:100
    (QCheck.triple (QCheck.int_range 0 50) (QCheck.int_range 0 20)
       (QCheck.int_range 2 1000))
    (fun (base, e, m) ->
      let expected = B.erem (B.pow (B.of_int base) e) (B.of_int m) in
      B.equal expected (B.modpow (B.of_int base) (B.of_int e) (B.of_int m)))

(* --- primes ------------------------------------------------------------ *)

let test_small_primes () =
  Alcotest.(check bool) "2 listed" true (Array.exists (( = ) 2) Prime.small_primes);
  Alcotest.(check bool) "997 listed" true (Array.exists (( = ) 997) Prime.small_primes);
  Alcotest.(check bool) "998 not" false (Array.exists (( = ) 998) Prime.small_primes);
  check Alcotest.int "count below 1000" 168 (Array.length Prime.small_primes)

let test_primality_known () =
  let rng = Prng.create 1 in
  let prime s = Prime.is_probably_prime rng (b s) in
  Alcotest.(check bool) "2" true (prime "2");
  Alcotest.(check bool) "97" true (prime "97");
  Alcotest.(check bool) "561 carmichael" false (prime "561");
  Alcotest.(check bool) "1 not prime" false (prime "1");
  Alcotest.(check bool) "0 not prime" false (prime "0");
  Alcotest.(check bool) "M31 prime" true (prime "2147483647");
  Alcotest.(check bool) "big prime" true (prime "170141183460469231731687303715884105727");
  Alcotest.(check bool) "big composite" false
    (prime "170141183460469231731687303715884105725")

let test_prime_generation () =
  let rng = Prng.create 2 in
  let p = Prime.generate ~rounds:10 rng ~bits:96 in
  check Alcotest.int "exact bits" 96 (B.bit_length p);
  Alcotest.(check bool) "is prime" true (Prime.is_probably_prime rng p);
  Alcotest.check_raises "tiny" (Invalid_argument "Prime.generate: need at least 2 bits")
    (fun () -> ignore (Prime.generate rng ~bits:1))

let suite =
  [
    ("string conversion", `Quick, test_of_to_string);
    ("int extremes", `Quick, test_of_int_extremes);
    ("arithmetic", `Quick, test_arith);
    ("division", `Quick, test_divmod);
    ("shifts and bits", `Quick, test_shifts_bits);
    ("byte conversion", `Quick, test_bytes);
    ("hex conversion", `Quick, test_hex);
    ("pow and modpow", `Quick, test_pow_modpow);
    ("gcd and inverse", `Quick, test_gcd_inverse);
    ("comparison", `Quick, test_compare);
    ("random generation", `Quick, test_random);
    ("small primes", `Quick, test_small_primes);
    ("known primality", `Quick, test_primality_known);
    ("prime generation", `Quick, test_prime_generation);
    qtest prop_add_commutative;
    qtest prop_add_sub_inverse;
    qtest prop_mul_distributes;
    qtest prop_divmod_identity;
    qtest prop_string_roundtrip;
    qtest prop_hex_roundtrip;
    qtest prop_bytes_roundtrip;
    qtest prop_shift_mul;
    qtest prop_modpow_matches_naive;
  ]
