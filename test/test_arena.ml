(* Tests for the columnar off-heap certificate arena: append/read
   round-trips (bytes and decoded views), column integrity under
   growth, mark/truncate epoch semantics, memory accounting, and the
   determinism digest. *)

module Arena = Tangled_x509.Arena
module C = Tangled_x509.Certificate
module Dn = Tangled_x509.Dn
module Authority = Tangled_x509.Authority
module Prng = Tangled_util.Prng
module Ts = Tangled_util.Timestamp

let qtest = QCheck_alcotest.to_alcotest

(* a small pool of real self-signed certificates to append (512-bit
   keys: the smallest modulus with PKCS#1 v1.5 SHA-256 headroom) *)
let certs =
  lazy
    (let rng = Prng.create 4242 in
     Array.init 6 (fun i ->
         (Authority.self_signed ~bits:512
            ~serial:(Tangled_numeric.Bigint.of_int (100 + i))
            rng
            (Dn.make (Printf.sprintf "Arena Test CA %d" i)))
           .Authority.certificate))

let append_cert a ?(anchor_id = -1) ?(flags = 0) (c : C.t) =
  Arena.append a ~der:c.C.raw ~subject_id:(-1) ~issuer_id:(-1) ~anchor_id
    ~not_before:c.C.not_before ~not_after:c.C.not_after ~flags
    ~key_fp:(String.get_int64_be (C.fingerprint c) 0)

let test_round_trip () =
  let pool = Lazy.force certs in
  let a = Arena.create () in
  Array.iteri
    (fun i c ->
      Alcotest.(check int) "dense handles" i (append_cert a c))
    pool;
  Alcotest.(check int) "length" (Array.length pool) (Arena.length a);
  Array.iteri
    (fun i (c : C.t) ->
      Alcotest.(check string) "der bytes identical" c.C.raw (Arena.der a i);
      (match Arena.decode a i with
      | Ok view ->
          Alcotest.(check string) "decoded view re-encodes to the same DER"
            c.C.raw view.C.raw;
          Alcotest.(check bool) "identity preserved" true
            (C.equivalence_key view = C.equivalence_key c)
      | Error e -> Alcotest.failf "decode %d failed: %s" i e);
      Alcotest.(check int) "not_before column" c.C.not_before
        (Arena.not_before a i);
      Alcotest.(check int) "not_after column" c.C.not_after (Arena.not_after a i);
      Alcotest.(check bool) "key_fp column" true
        (Arena.key_fp a i = String.get_int64_be (C.fingerprint c) 0))
    pool

let test_columns_and_flags () =
  let pool = Lazy.force certs in
  let a = Arena.create () in
  let h0 = append_cert a ~anchor_id:7 ~flags:Arena.flag_expired pool.(0) in
  let h1 =
    append_cert a ~anchor_id:(-1) ~flags:Arena.flag_via_intermediate pool.(1)
  in
  Alcotest.(check int) "anchor id stored" 7 (Arena.anchor_id a h0);
  Alcotest.(check int) "absent anchor is -1" (-1) (Arena.anchor_id a h1);
  Alcotest.(check bool) "expired flag" true (Arena.expired a h0);
  Alcotest.(check bool) "not via intermediate" false (Arena.via_intermediate a h0);
  Alcotest.(check bool) "via intermediate" true (Arena.via_intermediate a h1);
  Alcotest.(check bool) "not expired" false (Arena.expired a h1);
  let c = pool.(0) in
  Alcotest.(check bool) "valid inside window" true
    (Arena.valid_at a h0 (c.C.not_before + 1));
  Alcotest.(check bool) "invalid after window" false
    (Arena.valid_at a h0 (c.C.not_after + 1));
  Alcotest.check_raises "handle out of range"
    (Invalid_argument "Arena: handle 2 out of range (have 2)") (fun () ->
      ignore (Arena.anchor_id a 2))

let test_growth_from_minimal_capacity () =
  let pool = Lazy.force certs in
  (* tiny initial capacities force repeated doubling of both stores *)
  let a = Arena.create ~blob_capacity:1 ~capacity:1 () in
  let n = 200 in
  for i = 0 to n - 1 do
    ignore (append_cert a ~anchor_id:i pool.(i mod Array.length pool))
  done;
  Alcotest.(check int) "all appended" n (Arena.length a);
  let ok = ref true in
  for i = 0 to n - 1 do
    if Arena.der a i <> pool.(i mod Array.length pool).C.raw then ok := false;
    if Arena.anchor_id a i <> i then ok := false
  done;
  Alcotest.(check bool) "bytes and columns survive growth" true !ok

let test_mark_truncate_epochs () =
  let pool = Lazy.force certs in
  let a = Arena.create () in
  for i = 0 to 2 do
    ignore (append_cert a pool.(i))
  done;
  let committed = Arena.mark a in
  let digest_before = Arena.digest a in
  (* speculative epoch: appended, then rejected *)
  ignore (append_cert a pool.(3));
  ignore (append_cert a pool.(4));
  Alcotest.(check int) "speculative appends visible" 5 (Arena.length a);
  Arena.truncate a committed;
  Alcotest.(check int) "truncate restores count" 3 (Arena.length a);
  Alcotest.(check string) "truncate restores the exact bytes" digest_before
    (Arena.digest a);
  (* the committed prefix still reads correctly and new appends reuse
     the truncated space *)
  Alcotest.(check string) "prefix intact" pool.(2).C.raw (Arena.der a 2);
  let h = append_cert a pool.(5) in
  Alcotest.(check int) "append after truncate" 3 h;
  Alcotest.(check string) "new epoch bytes" pool.(5).C.raw (Arena.der a 3);
  (* a stale mark beyond the extent is refused *)
  let stale = Arena.mark a in
  Arena.truncate a committed;
  Alcotest.check_raises "mark beyond extent"
    (Invalid_argument "Arena.truncate: mark beyond current extent") (fun () ->
      Arena.truncate a stale)

let test_memory_accounting () =
  let pool = Lazy.force certs in
  let a = Arena.create () in
  let der_total = ref 0 in
  for i = 0 to 49 do
    let c = pool.(i mod Array.length pool) in
    der_total := !der_total + String.length c.C.raw;
    ignore (append_cert a c)
  done;
  let m = Arena.memory a in
  Alcotest.(check int) "blob accounts every DER byte" !der_total m.Arena.blob_bytes;
  Alcotest.(check int) "columns are 72 bytes per cert" (50 * 9 * 8)
    m.Arena.column_bytes;
  Alcotest.(check bool) "capacity covers use" true
    (m.Arena.blob_capacity >= m.Arena.blob_bytes
    && m.Arena.column_capacity >= m.Arena.column_bytes);
  (* the acceptance bound: committed bytes/cert stay under 2× raw DER *)
  let avg_der = float_of_int !der_total /. 50.0 in
  Alcotest.(check bool) "bytes/cert <= 2x raw DER" true
    (Arena.bytes_per_cert a <= 2.0 *. avg_der);
  Alcotest.(check (float 1e-9)) "empty arena" 0.0
    (Arena.bytes_per_cert (Arena.create ()))

(* Append/read as a pure store: arbitrary byte strings round-trip
   through the blob regardless of append order, sizes, or growth. *)
let prop_blob_round_trip =
  QCheck.Test.make ~name:"arena blob round-trips arbitrary byte strings"
    ~count:100
    QCheck.(small_list (string_of_size QCheck.Gen.(0 -- 64)))
    (fun payloads ->
      let a = Arena.create ~blob_capacity:8 ~capacity:1 () in
      List.iteri
        (fun i der ->
          ignore
            (Arena.append a ~der ~subject_id:i ~issuer_id:(2 * i) ~anchor_id:(-1)
               ~not_before:0 ~not_after:1 ~flags:0 ~key_fp:(Int64.of_int i)))
        payloads;
      List.for_all
        (fun (i, der) ->
          Arena.der a i = der
          && Arena.der_length a i = String.length der
          && Arena.subject_id a i = i
          && Arena.issuer_id a i = 2 * i)
        (List.mapi (fun i d -> (i, d)) payloads))

let test_digest_covers_columns () =
  let pool = Lazy.force certs in
  let mk flags =
    let a = Arena.create () in
    ignore (append_cert a ~flags pool.(0));
    Arena.digest a
  in
  Alcotest.(check bool) "flag difference changes the digest" true
    (mk 0 <> mk Arena.flag_expired);
  Alcotest.(check string) "same content, same digest" (mk 0) (mk 0)

let suite =
  [
    Alcotest.test_case "append/decode round-trip" `Quick test_round_trip;
    Alcotest.test_case "columns and flags" `Quick test_columns_and_flags;
    Alcotest.test_case "growth from minimal capacity" `Quick
      test_growth_from_minimal_capacity;
    Alcotest.test_case "mark/truncate epochs" `Quick test_mark_truncate_epochs;
    Alcotest.test_case "memory accounting" `Quick test_memory_accounting;
    qtest prop_blob_round_trip;
    Alcotest.test_case "digest covers columns" `Quick test_digest_covers_columns;
  ]
