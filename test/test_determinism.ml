(* The refactor's central contract: the domain-parallel build phase
   must be invisible in the output.  Every artefact the study produces
   has to be byte-identical whatever the worker count, and the coverage
   index has to agree with a direct fold over the raw chain array for
   arbitrary sub-stores. *)

module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Rs = Tangled_store.Root_store
module C = Tangled_x509.Certificate
module Authority = Tangled_x509.Authority
module Notary = Tangled_notary.Notary
module Pipeline = Tangled_core.Pipeline
module Report = Tangled_core.Report

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let world = lazy (Lazy.force Pipeline.quick)

let world_with_jobs jobs =
  Pipeline.run
    ~config:{ Pipeline.quick_config with Pipeline.jobs }
    ~universe:(Lazy.force BP.default) ()

(* the reference implementation the index replaced: one pass over the
   corpus per query, materialising each chain's anchor key *)
let scan_validated_by (n : Notary.t) store =
  let acc = ref 0 in
  for i = 0 to Notary.total n - 1 do
    match Notary.anchor_key n i with
    | Some key when (not (Notary.chain_expired n i)) && Rs.mem_key store key ->
        incr acc
    | _ -> ()
  done;
  !acc

let test_report_identical_across_jobs () =
  (* the full study, rendered twice: --jobs 1 vs --jobs 4 *)
  let w1 = world_with_jobs 1 in
  let w4 = world_with_jobs 4 in
  check Alcotest.int "resolved jobs differ" 4 w4.Pipeline.jobs;
  check Alcotest.string "report bytes" (Report.run_all w1) (Report.run_all w4)

let test_chains_identical_across_jobs () =
  let w1 = world_with_jobs 1 in
  let w4 = world_with_jobs 4 in
  (* the arena digest covers every DER byte and every column row, so
     one comparison pins the whole corpus — including interned anchor
     ids, whose assignment order must not depend on the worker count *)
  let d1 = Tangled_x509.Arena.digest (Notary.arena w1.Pipeline.notary) in
  let d4 = Tangled_x509.Arena.digest (Notary.arena w4.Pipeline.notary) in
  Alcotest.(check bool) "arena digests byte-identical" true (d1 = d4);
  (* and the materialised views agree too *)
  let fingerprint (n : Notary.t) =
    Array.init (Notary.total n) (fun i ->
        let c = Notary.chain n i in
        ( C.byte_identity c.Notary.leaf,
          List.map C.byte_identity c.Notary.intermediates,
          c.Notary.expired,
          c.Notary.anchor ))
  in
  Alcotest.(check bool) "chain views byte-identical" true
    (fingerprint w1.Pipeline.notary = fingerprint w4.Pipeline.notary)

let test_index_agrees_with_scan_on_official_stores () =
  let w = Lazy.force world in
  let n = w.Pipeline.notary in
  let u = w.Pipeline.universe in
  let stores =
    List.map (fun v -> u.BP.aosp v) PD.android_versions
    @ [ u.BP.mozilla; u.BP.ios7 ]
  in
  List.iter
    (fun store ->
      check Alcotest.int
        ("index vs scan: " ^ Rs.name store)
        (scan_validated_by n store)
        (Notary.validated_by_store n store))
    stores

(* Random sub-stores of the full root population: the index-backed
   count must equal the raw fold whatever subset of roots is enabled. *)
let prop_index_matches_scan =
  QCheck.Test.make ~name:"coverage index equals chain-array fold" ~count:60
    QCheck.(make Gen.(pair (int_bound 1_000_000) (map (fun p -> float_of_int p /. 100.0) (int_bound 100))))
    (fun (salt, keep) ->
      let w = Lazy.force world in
      let n = w.Pipeline.notary in
      let u = w.Pipeline.universe in
      (* deterministic pseudo-random subset driven by the generated salt *)
      let pick i = float_of_int ((((i + salt) * 2654435761) land 0xFFFF)) /. 65536.0 < keep in
      let certs =
        Array.to_list u.BP.roots
        |> List.filteri (fun i _ -> pick i)
        |> List.map (fun (r : BP.root) -> r.BP.authority.Authority.certificate)
      in
      let store = Rs.of_certs "random-sub-store" Rs.Aosp certs in
      scan_validated_by n store = Notary.validated_by_store n store)

let test_crosscheck_fast_path () =
  let w = Lazy.force world in
  let n = w.Pipeline.notary in
  let u = w.Pipeline.universe in
  Alcotest.(check bool) "index membership agrees with full validator" true
    (Notary.crosscheck n (u.BP.aosp PD.V4_4) ~sample:200 ~seed:9)

let test_timings_cover_stages () =
  let w = Lazy.force world in
  let stages =
    List.map (fun (s : Tangled_obs.Obs.span) -> s.Tangled_obs.Obs.name) w.Pipeline.timings
  in
  check
    Alcotest.(list string)
    "pipeline stage order"
    [ "universe"; "population"; "netalyzr"; "notary" ]
    stages

let suite =
  [
    Alcotest.test_case "report byte-identical: jobs 1 vs 4" `Slow
      test_report_identical_across_jobs;
    Alcotest.test_case "chains byte-identical: jobs 1 vs 4" `Slow
      test_chains_identical_across_jobs;
    Alcotest.test_case "index vs scan on official stores" `Quick
      test_index_agrees_with_scan_on_official_stores;
    qtest prop_index_matches_scan;
    Alcotest.test_case "crosscheck fast path" `Quick test_crosscheck_fast_path;
    Alcotest.test_case "timings cover stages" `Quick test_timings_cover_stages;
  ]
