(* The CT subsystem (lib/ct): the frontier-incremental Merkle log must
   agree with a naive from-scratch RFC 6962 MTH oracle at every size,
   every generated proof must verify through the independent pure
   verifier, and any mutation of a proof, leaf, or index must be
   rejected. *)

module Log = Tangled_ct.Log
module Proof = Tangled_ct.Proof
module Fleet = Tangled_ct.Fleet
module Sha256 = Tangled_hash.Sha256

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let leaf i = Printf.sprintf "leaf-%06d-%s" i (String.make (i mod 17) 'x')

let log_of_size n =
  let t = Log.create () in
  for i = 0 to n - 1 do
    ignore (Log.append t (leaf i))
  done;
  t

(* Naive from-scratch MTH(D[0:n]) — the RFC 6962 recurrence, written
   directly over the leaf list with no sharing with lib/ct internals. *)
let oracle_head n =
  let leaf_hash s = Sha256.digest ("\x00" ^ s) in
  let node l r = Sha256.digest ("\x01" ^ l ^ r) in
  let rec mth lo n =
    if n = 0 then Sha256.digest ""
    else if n = 1 then leaf_hash (leaf lo)
    else begin
      let k = ref 1 in
      while !k * 2 < n do
        k := !k * 2
      done;
      node (mth lo !k) (mth (lo + !k) (n - !k))
    end
  in
  mth 0 n

(* --- head agreement ---------------------------------------------------- *)

let test_empty_head () =
  let t = Log.create () in
  check Alcotest.string "empty = SHA-256(\"\")" (Sha256.hex "") (Log.head_hex t)

let test_heads_vs_oracle () =
  for n = 0 to 64 do
    let t = log_of_size n in
    check Alcotest.string
      (Printf.sprintf "head at size %d" n)
      (Tangled_util.Hex.encode (oracle_head n))
      (Log.head_hex t)
  done

let test_head_at_prefixes () =
  (* One incremental log must reproduce every historical head. *)
  let t = log_of_size 64 in
  for n = 0 to 64 do
    match Log.head_at t n with
    | Error e -> Alcotest.failf "head_at %d: %s" n e
    | Ok h ->
      check Alcotest.string
        (Printf.sprintf "head_at %d" n)
        (Tangled_util.Hex.encode (oracle_head n))
        (Tangled_util.Hex.encode h)
  done

let prop_incremental_matches_oracle =
  QCheck.Test.make ~name:"incremental head = from-scratch oracle" ~count:40
    QCheck.(int_range 0 300)
    (fun n -> String.equal (Log.head (log_of_size n)) (oracle_head n))

(* --- inclusion proofs -------------------------------------------------- *)

let test_inclusion_all_small () =
  for n = 1 to 64 do
    let t = log_of_size n in
    let root = Log.head t in
    for i = 0 to n - 1 do
      match Log.inclusion_proof t ~index:i ~tree_size:n with
      | Error e -> Alcotest.failf "proof %d/%d: %s" i n e
      | Ok proof ->
        if
          not
            (Proof.verify_inclusion ~leaf:(leaf i) ~index:i ~tree_size:n
               ~proof ~root)
        then Alcotest.failf "inclusion %d/%d did not verify" i n
    done
  done

let test_inclusion_historical () =
  (* Proofs against an earlier tree size from a log that kept growing. *)
  let t = log_of_size 64 in
  for n = 1 to 64 do
    let root =
      match Log.head_at t n with Ok h -> h | Error e -> Alcotest.fail e
    in
    let i = n / 2 in
    match Log.inclusion_proof t ~index:i ~tree_size:n with
    | Error e -> Alcotest.failf "historical proof %d/%d: %s" i n e
    | Ok proof ->
      if
        not
          (Proof.verify_inclusion ~leaf:(leaf i) ~index:i ~tree_size:n ~proof
             ~root)
      then Alcotest.failf "historical inclusion %d/%d did not verify" i n
  done

let prop_inclusion_random =
  QCheck.Test.make ~name:"random inclusion proof verifies" ~count:100
    QCheck.(pair (int_range 1 200) (int_range 0 10_000))
    (fun (n, seed) ->
      let i = seed mod n in
      let t = log_of_size n in
      match Log.inclusion_proof t ~index:i ~tree_size:n with
      | Error _ -> false
      | Ok proof ->
        Proof.verify_inclusion ~leaf:(leaf i) ~index:i ~tree_size:n ~proof
          ~root:(Log.head t))

(* --- consistency proofs ------------------------------------------------ *)

let test_consistency_all_pairs () =
  let t = log_of_size 64 in
  for m = 1 to 64 do
    for n = m to 64 do
      let root_at k =
        match Log.head_at t k with Ok h -> h | Error e -> Alcotest.fail e
      in
      match Log.consistency_proof t ~first:m ~second:n with
      | Error e -> Alcotest.failf "consistency %d..%d: %s" m n e
      | Ok proof ->
        if
          not
            (Proof.verify_consistency ~first:m ~second:n
               ~first_root:(root_at m) ~second_root:(root_at n) ~proof)
        then Alcotest.failf "consistency %d..%d did not verify" m n
    done
  done

let prop_consistency_random =
  QCheck.Test.make ~name:"random consistency proof verifies" ~count:80
    QCheck.(pair (int_range 1 250) (int_range 1 250))
    (fun (a, b) ->
      let m = min a b and n = max a b in
      let t = log_of_size n in
      let root_at k =
        match Log.head_at t k with Ok h -> h | Error _ -> assert false
      in
      match Log.consistency_proof t ~first:m ~second:n with
      | Error _ -> false
      | Ok proof ->
        Proof.verify_consistency ~first:m ~second:n ~first_root:(root_at m)
          ~second_root:(root_at n) ~proof)

(* --- rejection --------------------------------------------------------- *)

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  Bytes.to_string b

let prop_mutated_inclusion_rejected =
  QCheck.Test.make ~name:"mutated inclusion proof/leaf/index rejected"
    ~count:100
    QCheck.(triple (int_range 2 120) (int_range 0 10_000) (int_range 0 3))
    (fun (n, seed, mutation) ->
      let i = seed mod n in
      let t = log_of_size n in
      let root = Log.head t in
      match Log.inclusion_proof t ~index:i ~tree_size:n with
      | Error _ -> false
      | Ok proof -> (
        match mutation with
        | 0 ->
          (* flip a byte in one proof element (proof is non-empty: n >= 2) *)
          let k = seed mod List.length proof in
          let proof =
            List.mapi (fun j p -> if j = k then flip_byte p (seed mod 32) else p) proof
          in
          not
            (Proof.verify_inclusion ~leaf:(leaf i) ~index:i ~tree_size:n
               ~proof ~root)
        | 1 ->
          not
            (Proof.verify_inclusion ~leaf:(leaf i ^ "!") ~index:i ~tree_size:n
               ~proof ~root)
        | 2 ->
          let i' = (i + 1) mod n in
          not
            (Proof.verify_inclusion ~leaf:(leaf i) ~index:i' ~tree_size:n
               ~proof ~root)
        | _ ->
          not
            (Proof.verify_inclusion ~leaf:(leaf i) ~index:i ~tree_size:n
               ~proof ~root:(flip_byte root (seed mod 32)))))

let prop_mutated_consistency_rejected =
  QCheck.Test.make ~name:"mutated consistency proof rejected" ~count:80
    QCheck.(triple (int_range 1 120) (int_range 2 120) (int_range 0 10_000))
    (fun (a, b, seed) ->
      let m = min a b and n = max a b in
      QCheck.assume (m < n);
      let t = log_of_size n in
      let root_at k =
        match Log.head_at t k with Ok h -> h | Error _ -> assert false
      in
      match Log.consistency_proof t ~first:m ~second:n with
      | Error _ -> false
      | Ok proof ->
        let bad =
          if proof = [] then
            (* power-of-two prefixes can have empty proofs; corrupt a root *)
            Proof.verify_consistency ~first:m ~second:n
              ~first_root:(flip_byte (root_at m) (seed mod 32))
              ~second_root:(root_at n) ~proof
          else begin
            let k = seed mod List.length proof in
            let proof =
              List.mapi
                (fun j p -> if j = k then flip_byte p (seed mod 32) else p)
                proof
            in
            Proof.verify_consistency ~first:m ~second:n ~first_root:(root_at m)
              ~second_root:(root_at n) ~proof
          end
        in
        not bad)

let test_error_cases () =
  let t = log_of_size 4 in
  (match Log.inclusion_proof t ~index:4 ~tree_size:4 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "index out of range accepted");
  (match Log.inclusion_proof t ~index:0 ~tree_size:5 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tree_size beyond log accepted");
  (match Log.consistency_proof t ~first:0 ~second:3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "first=0 accepted");
  (match Log.consistency_proof t ~first:3 ~second:5 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "second beyond log accepted");
  check Alcotest.bool "empty proof wrong roots rejected" false
    (Proof.verify_consistency ~first:2 ~second:2 ~first_root:"a"
       ~second_root:"b" ~proof:[])

(* --- fleet over the shared quick world --------------------------------- *)

let quick_fleet =
  lazy
    (let w = Lazy.force Tangled_core.Pipeline.quick in
     Fleet.build ~seed:w.Tangled_core.Pipeline.config.Tangled_core.Pipeline.seed
       w.Tangled_core.Pipeline.universe w.Tangled_core.Pipeline.notary)

let test_fleet_submission () =
  let f = Lazy.force quick_fleet in
  check Alcotest.int "three logs" 3 (Array.length (Fleet.entries f));
  Array.iter
    (fun (e : Fleet.entry) ->
      check Alcotest.int "size = submitted" e.Fleet.submitted
        (Log.size e.Fleet.log);
      if e.Fleet.submitted = 0 then
        Alcotest.failf "log %s received no submissions" (Log.name e.Fleet.log))
    (Fleet.entries f)

let test_fleet_proof_roundtrip () =
  (* Notary-scale logs: a middle-leaf inclusion proof and a half-to-full
     consistency proof must verify via the pure API, with the leaf bytes
     re-read through Fleet.leaf_der. *)
  let f = Lazy.force quick_fleet in
  Array.iter
    (fun (e : Fleet.entry) ->
      let n = Log.size e.Fleet.log in
      let i = n / 2 in
      let der =
        match Fleet.leaf_der f e i with
        | Some d -> d
        | None -> Alcotest.fail "leaf_der out of range"
      in
      (match Log.inclusion_proof e.Fleet.log ~index:i ~tree_size:n with
      | Error err -> Alcotest.fail err
      | Ok proof ->
        check Alcotest.bool
          (Printf.sprintf "%s inclusion" (Log.name e.Fleet.log))
          true
          (Proof.verify_inclusion ~leaf:der ~index:i ~tree_size:n ~proof
             ~root:(Log.head e.Fleet.log)));
      let m = max 1 (n / 2) in
      let first_root =
        match Log.head_at e.Fleet.log m with
        | Ok h -> h
        | Error err -> Alcotest.fail err
      in
      match Log.consistency_proof e.Fleet.log ~first:m ~second:n with
      | Error err -> Alcotest.fail err
      | Ok proof ->
        check Alcotest.bool
          (Printf.sprintf "%s consistency" (Log.name e.Fleet.log))
          true
          (Proof.verify_consistency ~first:m ~second:n ~first_root
             ~second_root:(Log.head e.Fleet.log) ~proof))
    (Fleet.entries f)

let test_fleet_determinism () =
  (* Same seed, same corpus: rebuilt fleet has byte-identical heads. *)
  let w = Lazy.force Tangled_core.Pipeline.quick in
  let f1 = Lazy.force quick_fleet in
  let f2 =
    Fleet.build ~seed:w.Tangled_core.Pipeline.config.Tangled_core.Pipeline.seed
      w.Tangled_core.Pipeline.universe w.Tangled_core.Pipeline.notary
  in
  Array.iteri
    (fun j (e1 : Fleet.entry) ->
      let e2 = (Fleet.entries f2).(j) in
      check Alcotest.string "head" (Log.head_hex e1.Fleet.log)
        (Log.head_hex e2.Fleet.log))
    (Fleet.entries f1)

let test_fleet_visibility () =
  let f = Lazy.force quick_fleet in
  let rows = Fleet.official_visibility f in
  check Alcotest.int "six stores" 6 (List.length rows);
  List.iter
    (fun (r : Fleet.store_row) ->
      if r.Fleet.logged + r.Fleet.dark <> r.Fleet.roots then
        Alcotest.failf "%s: logged %d + dark %d <> roots %d" r.Fleet.store_name
          r.Fleet.logged r.Fleet.dark r.Fleet.roots;
      if r.Fleet.logged > r.Fleet.accepted then
        Alcotest.failf "%s: logged %d > accepted %d" r.Fleet.store_name
          r.Fleet.logged r.Fleet.accepted)
    rows

let suite =
  [
    Alcotest.test_case "empty head" `Quick test_empty_head;
    Alcotest.test_case "heads 0..64 vs oracle" `Quick test_heads_vs_oracle;
    Alcotest.test_case "head_at prefixes" `Quick test_head_at_prefixes;
    Alcotest.test_case "inclusion all leaves 1..64" `Quick
      test_inclusion_all_small;
    Alcotest.test_case "historical inclusion" `Quick test_inclusion_historical;
    Alcotest.test_case "consistency all pairs <= 64" `Quick
      test_consistency_all_pairs;
    Alcotest.test_case "error cases" `Quick test_error_cases;
    Alcotest.test_case "fleet submission" `Slow test_fleet_submission;
    Alcotest.test_case "fleet proof roundtrip" `Slow test_fleet_proof_roundtrip;
    Alcotest.test_case "fleet determinism" `Slow test_fleet_determinism;
    Alcotest.test_case "fleet visibility" `Slow test_fleet_visibility;
  ]
  @ List.map qtest
      [
        prop_incremental_matches_oracle;
        prop_inclusion_random;
        prop_consistency_random;
        prop_mutated_inclusion_rejected;
        prop_mutated_consistency_rejected;
      ]
