(* TLS interception study (§7): a participant device tunnels through a
   marketing company's HTTPS proxy.  The proxy re-signs certificates
   on the fly for most domains but whitelists pinning-protected ones.
   Netalyzr-style probes detect the substitution per domain.

   Run with: dune exec examples/interception_study.exe *)

module BP = Tangled_pki.Blueprint
module PD = Tangled_pki.Paper_data
module C = Tangled_x509.Certificate
module Endpoint = Tangled_tls.Endpoint
module Proxy = Tangled_tls.Proxy
module Handshake = Tangled_tls.Handshake
module Chain = Tangled_validation.Chain
module Ts = Tangled_util.Timestamp

let () =
  Format.printf "building the PKI universe (one-time, ~10s)...@.";
  let universe = Lazy.force BP.default in
  let world = Endpoint.build_world ~seed:5 universe in
  let proxy = Proxy.create ~seed:5 ~interceptor:universe.BP.interceptor universe in
  let store = universe.BP.aosp PD.V4_4 in
  let now = Ts.paper_epoch in
  Format.printf "device tunnels through %s@.@." (Proxy.proxy_host proxy);
  let direct = Handshake.Direct world in
  let proxied = Handshake.Proxied (world, proxy) in
  Format.printf "%-30s %-12s %-12s %s@." "domain" "direct" "proxied" "intercepted?";
  List.iter
    (fun (host, port) ->
      let show t =
        match Handshake.connect t ~store ~now ~host ~port with
        | Some o ->
            ( (match o.Handshake.verdict with
              | Ok _ -> "trusted"
              | Error _ -> "UNTRUSTED"),
              o.Handshake.intercepted )
        | None -> ("unreachable", false)
      in
      let d, _ = show direct in
      let p, intercepted = show proxied in
      Format.printf "%-30s %-12s %-12s %s@."
        (Printf.sprintf "%s:%d" host port)
        d p
        (if intercepted then "YES" else "-"))
    (Endpoint.probe_targets world);
  (* what the forged chains look like *)
  match Endpoint.lookup world ~host:"gmail.com" ~port:443 with
  | Some e -> (
      match Proxy.terminate proxy e with
      | forged :: _ ->
          Format.printf "@.forged gmail.com leaf:@.%a@." C.pp_details forged
      | [] -> ())
  | None -> ()
