(* Quickstart: build a tiny PKI, assemble a root store, issue a server
   chain, and validate it — the library's core loop in ~40 lines.

   Run with: dune exec examples/quickstart.exe *)

module Dn = Tangled_x509.Dn
module Authority = Tangled_x509.Authority
module C = Tangled_x509.Certificate
module Rs = Tangled_store.Root_store
module Chain = Tangled_validation.Chain
module Ts = Tangled_util.Timestamp

let () =
  let rng = Tangled_util.Prng.create 2024 in
  (* 1. a certificate authority hierarchy *)
  let root =
    Authority.self_signed rng (Dn.make ~o:"Example Trust" ~c:"US" "Example Root CA")
  in
  let intermediate =
    Authority.issue_intermediate rng ~parent:root
      (Dn.make ~o:"Example Trust" "Example Issuing CA")
  in
  let leaf =
    Authority.issue_leaf rng ~parent:intermediate ~dns_names:[ "shop.example.com" ]
      (Dn.make "shop.example.com")
  in
  Format.printf "Issued chain:@.%a@." C.pp_details leaf;

  (* 2. an Android-style system root store trusting that root *)
  let store = Rs.of_certs "device" Rs.Aosp [ root.Authority.certificate ] in
  let now = Ts.paper_epoch in

  (* 3. validation: server presents leaf + intermediate *)
  let chain = [ leaf; intermediate.Authority.certificate ] in
  (match (Chain.validate ~now ~store chain).Chain.verdict with
  | Ok anchor ->
      Format.printf "validated, anchored at: %a@." Dn.pp anchor.C.subject
  | Error f -> Format.printf "validation failed: %s@." (Chain.failure_to_string f));

  (* 4. remove the root (privileged actor) and watch validation fail *)
  let store' =
    match Rs.remove store (Rs.Privileged_app "cleaner") root.Authority.certificate with
    | Ok s -> s
    | Error e -> failwith (Rs.error_to_string e)
  in
  (match (Chain.validate ~now ~store:store' chain).Chain.verdict with
  | Ok _ -> Format.printf "unexpectedly validated@."
  | Error f -> Format.printf "after root removal: %s@." (Chain.failure_to_string f));

  (* 5. an unprivileged app cannot touch the store at all *)
  match Rs.add store (Rs.Unprivileged_app "game") Rs.User leaf with
  | Ok _ -> Format.printf "unexpectedly allowed@."
  | Error e -> Format.printf "store protection: %s@." (Rs.error_to_string e)
