(* Store audit: build the full synthetic universe, assemble one
   vendor-customised handset firmware, diff it against its AOSP
   baseline, and classify every addition the way §5.1 does.

   Run with: dune exec examples/store_audit.exe *)

module BP = Tangled_pki.Blueprint
module PD = Tangled_pki.Paper_data
module Rs = Tangled_store.Root_store
module C = Tangled_x509.Certificate
module Firmware = Tangled_device.Firmware

let () =
  Format.printf "building the PKI universe (one-time, ~10s)...@.";
  let universe = Lazy.force BP.default in
  let generic = Firmware.generic_assignment universe in
  let rng = Tangled_util.Prng.create 77 in
  (* a Samsung 4.4 handset on Vodafone DE — a heavy-extender profile *)
  let profile =
    { Firmware.manufacturer = "SAMSUNG"; os_version = PD.V4_4; operator = "VODAFONE(DE)" }
  in
  let store = Firmware.assemble rng universe generic profile in
  let baseline = universe.BP.aosp PD.V4_4 in
  let additions, missing = Rs.diff store baseline in
  Format.printf "firmware store: %d certificates (%d AOSP baseline, %d additional, %d missing)@.@."
    (Rs.cardinal store) (Rs.cardinal baseline) (List.length additions)
    (List.length missing);
  Format.printf "additions by provenance:@.";
  List.iter
    (fun (p, n) -> Format.printf "  %-28s %d@." (Rs.provenance_to_string p) n)
    (Rs.provenance_counts store);
  Format.printf "@.additional certificates:@.";
  List.iter
    (fun cert ->
      let id = C.subject_hash32 cert in
      let cls =
        match Hashtbl.find_opt universe.BP.extra_by_id id with
        | Some root -> (
            match root.BP.extra with
            | Some x -> PD.notary_class_to_string x.PD.xc_class
            | None -> "?")
        | None -> "?"
      in
      Format.printf "  %s  %-50s [%s]@." id
        (Tangled_x509.Dn.to_string cert.C.subject)
        cls)
    additions
