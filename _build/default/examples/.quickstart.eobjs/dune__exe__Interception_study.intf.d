examples/interception_study.mli:
