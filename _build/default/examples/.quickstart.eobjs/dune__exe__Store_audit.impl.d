examples/store_audit.ml: Format Hashtbl Lazy List Tangled_device Tangled_pki Tangled_store Tangled_util Tangled_x509
