examples/ca_compromise.ml: Array Format Lazy Seq Tangled_hash Tangled_pki Tangled_store Tangled_util Tangled_validation Tangled_x509
