examples/quickstart.mli:
