examples/ca_compromise.mli:
