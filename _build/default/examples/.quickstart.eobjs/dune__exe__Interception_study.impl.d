examples/interception_study.ml: Format Lazy List Printf Tangled_pki Tangled_tls Tangled_util Tangled_validation Tangled_x509
