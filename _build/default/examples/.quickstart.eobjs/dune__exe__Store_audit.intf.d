examples/store_audit.mli:
