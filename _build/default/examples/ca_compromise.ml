(* CA compromise scenario (§2): the paper recalls that root-store CAs
   such as Comodo and Turktrust have been compromised, and that
   Android 4.4 added detection of fraudulently issued Google
   certificates.  This example plays out both platform responses on the
   synthetic world: an attacker holding a trusted CA's key mints a
   gmail certificate; the key blocklist and the issuer pin each stop it.

   Run with: dune exec examples/ca_compromise.exe *)

module BP = Tangled_pki.Blueprint
module PD = Tangled_pki.Paper_data
module Rs = Tangled_store.Root_store
module C = Tangled_x509.Certificate
module Dn = Tangled_x509.Dn
module Authority = Tangled_x509.Authority
module Chain = Tangled_validation.Chain
module Blocklist = Tangled_validation.Blocklist
module Ts = Tangled_util.Timestamp

let show label = function
  | Ok anchor -> Format.printf "%-34s trusted (anchor %a)@." label Dn.pp anchor.C.subject
  | Error (`Chain f) -> Format.printf "%-34s rejected: %s@." label (Chain.failure_to_string f)
  | Error (`Screen r) ->
      Format.printf "%-34s rejected: %s@." label (Blocklist.rejection_to_string r)

let () =
  Format.printf "building the PKI universe (one-time, ~10s)...@.";
  let universe = Lazy.force BP.default in
  let store = universe.BP.aosp PD.V4_4 in
  let now = Ts.paper_epoch in
  let rng = Tangled_util.Prng.create 31337 in

  (* the attacker controls one of the 150 trusted AOSP roots *)
  let victim_root = universe.BP.roots.(3) in
  Format.printf "compromised CA: %s@.@." victim_root.BP.display_name;
  let fraudulent =
    Authority.issue_leaf ~bits:universe.BP.key_bits
      ~digest:Tangled_hash.Digest_kind.SHA1 rng
      ~parent:victim_root.BP.authority ~dns_names:[ "gmail.com" ]
      (Dn.make "gmail.com")
  in

  (* 1. a pre-4.4 Android accepts it without question *)
  let plain = Blocklist.empty in
  show "stock platform:" (Blocklist.validate plain ~now ~store [ fraudulent ]);

  (* 2. the DigiNotar treatment: blocklist the CA's key.  Equivalent
     renewed certificates of the same CA stay blocked. *)
  let blocked =
    Blocklist.block_key Blocklist.empty victim_root.BP.authority.Authority.certificate
  in
  show "after key blocklist:" (Blocklist.validate blocked ~now ~store [ fraudulent ]);
  let renewed = Authority.renew victim_root.BP.authority in
  let store_with_renewed =
    Rs.merge store (Rs.of_certs "renewed" Rs.Aosp [ renewed.Authority.certificate ])
  in
  show "renewed CA, still blocked:"
    (Blocklist.validate blocked ~now ~store:store_with_renewed [ fraudulent ]);

  (* 3. the Android 4.4 rule: pin google properties to their real CA,
     leave everything else untouched *)
  let genuine_issuer =
    (* whichever root actually serves gmail.com in this world *)
    match
      Array.to_seq universe.BP.roots
      |> Seq.find (fun (r : BP.root) ->
             r.BP.traffic_weight > 0.0 && r.BP.in_mozilla && r.BP.in_aosp <> [])
    with
    | Some r -> r
    | None -> failwith "no core root"
  in
  let pinned =
    Blocklist.pin_issuer Blocklist.empty ~subject_cn:"gmail.com"
      genuine_issuer.BP.authority.Authority.certificate
  in
  show "after 4.4-style issuer pin:" (Blocklist.validate pinned ~now ~store [ fraudulent ]);
  let genuine =
    Authority.issue_leaf ~bits:universe.BP.key_bits
      ~digest:Tangled_hash.Digest_kind.SHA1 rng
      ~parent:genuine_issuer.BP.authority ~dns_names:[ "gmail.com" ]
      (Dn.make "gmail.com")
  in
  show "genuine chain, same pin:" (Blocklist.validate pinned ~now ~store [ genuine ]);

  (* 4. unrelated domains are unaffected by the pin *)
  let other =
    Authority.issue_leaf ~bits:universe.BP.key_bits
      ~digest:Tangled_hash.Digest_kind.SHA1 rng
      ~parent:victim_root.BP.authority ~dns_names:[ "example.org" ]
      (Dn.make "example.org")
  in
  show "unpinned domain, any CA:" (Blocklist.validate pinned ~now ~store [ other ])
