(* Benchmark harness.

   One Bechamel test per paper artefact (the analysis that regenerates
   each table/figure over the shared quick world), one per substrate
   hot path, and the DESIGN.md ablation benches.  After timing, the
   harness prints every artefact itself so bench output doubles as a
   compact reproduction report. *)

open Bechamel
open Toolkit

module Pipeline = Tangled_core.Pipeline
module Report = Tangled_core.Report
module BP = Tangled_pki.Blueprint
module PD = Tangled_pki.Paper_data
module Rs = Tangled_store.Root_store
module C = Tangled_x509.Certificate
module Authority = Tangled_x509.Authority
module Chain = Tangled_validation.Chain
module Notary = Tangled_notary.Notary
module Rsa = Tangled_crypto.Rsa
module Dk = Tangled_hash.Digest_kind
module Prng = Tangled_util.Prng
module Ts = Tangled_util.Timestamp

let world = lazy (Lazy.force Pipeline.quick)

(* --- artefact benches: one per table and figure ---------------------- *)

let artefact_tests () =
  let w = Lazy.force world in
  List.map
    (fun name ->
      Test.make ~name (Staged.stage (fun () -> ignore (Report.render_one w name))))
    (Report.artefact_names @ Report.extension_names)

(* --- substrate micro-benches ------------------------------------------ *)

let substrate_tests () =
  let w = Lazy.force world in
  let u = w.Pipeline.universe in
  let rng = Prng.create 77 in
  let key = Rsa.generate ~mr_rounds:6 rng ~bits:384 in
  let root =
    Authority.self_signed ~bits:384 ~digest:Dk.SHA1 rng (Tangled_x509.Dn.make "Bench Root")
  in
  let inter =
    Authority.issue_intermediate ~bits:384 ~digest:Dk.SHA1 rng ~parent:root
      (Tangled_x509.Dn.make "Bench Inter")
  in
  let leaf =
    Authority.issue_leaf ~bits:384 ~digest:Dk.SHA1 rng ~parent:inter
      ~dns_names:[ "bench.example" ] (Tangled_x509.Dn.make "bench.example")
  in
  let chain = [ leaf; inter.Authority.certificate ] in
  let store = Rs.of_certs "bench" Rs.Aosp [ root.Authority.certificate ] in
  let der = C.encode leaf in
  let msg = String.make 512 'm' in
  let signature = Rsa.sign key ~digest:Dk.SHA1 msg in
  let device_store =
    w.Pipeline.population.Tangled_device.Population.handsets.(0)
      .Tangled_device.Population.store
  in
  let now = Ts.paper_epoch in
  [
    Test.make ~name:"sha256_512B"
      (Staged.stage (fun () -> ignore (Tangled_hash.Sha256.digest msg)));
    Test.make ~name:"sha1_512B"
      (Staged.stage (fun () -> ignore (Tangled_hash.Sha1.digest msg)));
    Test.make ~name:"md5_512B"
      (Staged.stage (fun () -> ignore (Tangled_hash.Md5.digest msg)));
    Test.make ~name:"rsa384_sign"
      (Staged.stage (fun () -> ignore (Rsa.sign key ~digest:Dk.SHA1 msg)));
    Test.make ~name:"rsa384_verify"
      (Staged.stage (fun () ->
           ignore (Rsa.verify key.Rsa.pub ~digest:Dk.SHA1 ~msg ~signature)));
    Test.make ~name:"x509_decode" (Staged.stage (fun () -> ignore (C.decode der)));
    Test.make ~name:"chain_validate"
      (Staged.stage (fun () -> ignore (Chain.validate ~now ~store chain)));
    Test.make ~name:"store_diff"
      (Staged.stage (fun () -> ignore (Rs.diff device_store (u.BP.aosp PD.V4_4))));
    Test.make ~name:"notary_validated_by_store"
      (Staged.stage (fun () ->
           ignore (Notary.validated_by_store w.Pipeline.notary (u.BP.aosp PD.V4_4))));
  ]

(* --- scaling benches: substrate cost vs input size ----------------------- *)

let scaling_tests () =
  let rng = Prng.create 177 in
  let keys =
    List.map (fun bits -> (bits, Rsa.generate ~mr_rounds:6 rng ~bits)) [ 384; 512; 768 ]
  in
  let msg = "scaling" in
  let sign_tests =
    List.map
      (fun (bits, key) ->
        Test.make ~name:(Printf.sprintf "rsa%d_sign" bits)
          (Staged.stage (fun () -> ignore (Rsa.sign key ~digest:Dk.SHA1 msg))))
      keys
  in
  let hash_tests =
    List.map
      (fun size ->
        let payload = String.make size 'h' in
        Test.make ~name:(Printf.sprintf "sha256_%dB" size)
          (Staged.stage (fun () -> ignore (Tangled_hash.Sha256.digest payload))))
      [ 64; 1024; 16384 ]
  in
  let modpow_tests =
    List.map
      (fun bits ->
        let module B = Tangled_numeric.Bigint in
        let m = Tangled_numeric.Prime.generate ~rounds:6 rng ~bits in
        let base = B.random_below rng m in
        let e = B.random_below rng m in
        Test.make ~name:(Printf.sprintf "modpow_%dbit" bits)
          (Staged.stage (fun () -> ignore (B.modpow base e m))))
      [ 256; 512; 1024 ]
  in
  sign_tests @ hash_tests @ modpow_tests

(* --- ablation benches (DESIGN.md §5) ------------------------------------ *)

let ablation_tests () =
  let w = Lazy.force world in
  let u = w.Pipeline.universe in
  let now = Ts.paper_epoch in
  let certs44 = Rs.certs (u.BP.aosp PD.V4_4) in
  let some_chain =
    let c = w.Pipeline.notary.Notary.chains.(0) in
    c.Notary.leaf :: c.Notary.intermediates
  in
  let anchor = w.Pipeline.notary.Notary.chains.(0).Notary.anchor in
  let store = u.BP.aosp PD.V4_4 in
  (* identity definition: (subject, modulus) equivalence vs full-DER *)
  let dedup keyf certs =
    let tbl = Hashtbl.create 256 in
    List.iter (fun c -> Hashtbl.replace tbl (keyf c) ()) certs;
    Hashtbl.length tbl
  in
  let mixed = certs44 @ Rs.certs u.BP.mozilla in
  (* store lookup: hash-keyed map vs linear scan *)
  let target = List.nth certs44 (List.length certs44 - 1) in
  let linear_mem cert =
    List.exists (fun c -> C.equivalence_key c = C.equivalence_key cert) certs44
  in
  [
    Test.make ~name:"ablation_identity_equivalence"
      (Staged.stage (fun () -> ignore (dedup C.equivalence_key mixed)));
    Test.make ~name:"ablation_identity_bytes"
      (Staged.stage (fun () -> ignore (dedup C.byte_identity mixed)));
    Test.make ~name:"ablation_store_lookup_hash"
      (Staged.stage (fun () -> ignore (Rs.mem store target)));
    Test.make ~name:"ablation_store_lookup_linear"
      (Staged.stage (fun () -> ignore (linear_mem target)));
    Test.make ~name:"ablation_sig_check_full"
      (Staged.stage (fun () -> ignore (Chain.validate ~now ~store some_chain)));
    Test.make ~name:"ablation_sig_check_membership"
      (Staged.stage (fun () ->
           ignore (match anchor with Some k -> Rs.mem_key store k | None -> false)));
  ]

(* --- harness -------------------------------------------------------------- *)

let run_group label tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  Printf.printf "--- %s %s\n%!" label
    (String.make (Stdlib.max 1 (60 - String.length label)) '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] ->
              let pretty =
                if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
                else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
                else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
                else Printf.sprintf "%8.2f ns" ns
              in
              Printf.printf "  %-38s %s/run\n%!" name pretty
          | _ -> Printf.printf "  %-38s (no estimate)\n%!" name)
        results)
    tests

let () =
  let t0 = Unix.gettimeofday () in
  Printf.printf "building the shared world (quick config)...\n%!";
  ignore (Lazy.force world);
  Printf.printf "world ready in %.1fs\n\n%!" (Unix.gettimeofday () -. t0);
  run_group "paper artefacts (Tables 1-6, Figures 1-3) + extensions" (artefact_tests ());
  run_group "substrates" (substrate_tests ());
  run_group "substrate scaling" (scaling_tests ());
  run_group "ablations" (ablation_tests ());
  (* the artefacts themselves, so bench output records the reproduction *)
  print_newline ();
  print_string (Report.run_all (Lazy.force world))
