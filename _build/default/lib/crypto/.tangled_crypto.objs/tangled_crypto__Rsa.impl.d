lib/crypto/rsa.ml: Option String Tangled_hash Tangled_numeric Tangled_util
