lib/crypto/rsa.mli: Tangled_hash Tangled_numeric Tangled_util
