(** SHA-256 (FIPS 180-4).  The default certificate-signature digest of
    the simulation. *)

val digest : string -> string
(** [digest msg] is the 32-byte SHA-256 of [msg]. *)

val hex : string -> string
(** [hex msg] is the digest rendered in lowercase hexadecimal. *)
