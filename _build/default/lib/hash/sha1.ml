(* FIPS 180-4 SHA-1 over Int32 words. *)

let rotl x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))
let ( ^^ ) = Int32.logxor
let ( &&& ) = Int32.logand
let ( ||| ) = Int32.logor
let ( +% ) = Int32.add
let lnot32 = Int32.lognot

let pad msg =
  let len = String.length msg in
  let bitlen = Int64.of_int (len * 8) in
  let padlen =
    let r = (len + 1) mod 64 in
    if r <= 56 then 56 - r else 120 - r
  in
  let b = Buffer.create (len + padlen + 9) in
  Buffer.add_string b msg;
  Buffer.add_char b '\x80';
  Buffer.add_string b (String.make padlen '\x00');
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bitlen (8 * i)) 0xFFL)))
  done;
  Buffer.contents b

let word data off =
  let byte i = Int32.of_int (Char.code data.[off + i]) in
  Int32.logor
    (Int32.shift_left (byte 0) 24)
    (Int32.logor (Int32.shift_left (byte 1) 16)
       (Int32.logor (Int32.shift_left (byte 2) 8) (byte 3)))

let digest msg =
  let data = pad msg in
  let h0 = ref 0x67452301l and h1 = ref 0xEFCDAB89l and h2 = ref 0x98BADCFEl in
  let h3 = ref 0x10325476l and h4 = ref 0xC3D2E1F0l in
  let w = Array.make 80 0l in
  let nblocks = String.length data / 64 in
  for block = 0 to nblocks - 1 do
    let off = block * 64 in
    for t = 0 to 15 do
      w.(t) <- word data (off + (4 * t))
    done;
    for t = 16 to 79 do
      w.(t) <- rotl (w.(t - 3) ^^ w.(t - 8) ^^ w.(t - 14) ^^ w.(t - 16)) 1
    done;
    let a = ref !h0 and b = ref !h1 and c = ref !h2 and d = ref !h3 and e = ref !h4 in
    for t = 0 to 79 do
      let f, kk =
        if t < 20 then ((!b &&& !c) ||| (lnot32 !b &&& !d), 0x5A827999l)
        else if t < 40 then (!b ^^ !c ^^ !d, 0x6ED9EBA1l)
        else if t < 60 then ((!b &&& !c) ||| (!b &&& !d) ||| (!c &&& !d), 0x8F1BBCDCl)
        else (!b ^^ !c ^^ !d, 0xCA62C1D6l)
      in
      let temp = rotl !a 5 +% f +% !e +% kk +% w.(t) in
      e := !d;
      d := !c;
      c := rotl !b 30;
      b := !a;
      a := temp
    done;
    h0 := !h0 +% !a;
    h1 := !h1 +% !b;
    h2 := !h2 +% !c;
    h3 := !h3 +% !d;
    h4 := !h4 +% !e
  done;
  let out = Bytes.create 20 in
  List.iteri
    (fun i hi ->
      for j = 0 to 3 do
        Bytes.set out ((4 * i) + j)
          (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical hi (8 * (3 - j))) 0xFFl)))
      done)
    [ !h0; !h1; !h2; !h3; !h4 ];
  Bytes.unsafe_to_string out

let hex msg = Tangled_util.Hex.encode (digest msg)
