(** MD5 (RFC 1321).  Present because pre-4.x Android root stores and
    legacy certificates still carry MD5-based identifiers; used only for
    fingerprint variety, never for signatures. *)

val digest : string -> string
(** [digest msg] is the 16-byte MD5 of [msg]. *)

val hex : string -> string
(** [hex msg] is the digest rendered in lowercase hexadecimal. *)
