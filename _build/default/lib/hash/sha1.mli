(** SHA-1 (FIPS 180-4).  Used for the legacy certificate fingerprints
    the paper reports (the bracketed 32-bit subject hashes of Figure 2
    are truncations of such digests). *)

val digest : string -> string
(** [digest msg] is the 20-byte SHA-1 of [msg]. *)

val hex : string -> string
(** [hex msg] is the digest rendered in lowercase hexadecimal. *)
