lib/hash/digest_kind.ml: Format Md5 Sha1 Sha256
