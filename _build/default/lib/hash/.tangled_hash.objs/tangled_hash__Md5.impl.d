lib/hash/md5.ml: Array Buffer Bytes Char Float Int32 Int64 List String Tangled_util
