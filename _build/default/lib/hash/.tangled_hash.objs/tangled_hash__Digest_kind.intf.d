lib/hash/digest_kind.mli: Format
