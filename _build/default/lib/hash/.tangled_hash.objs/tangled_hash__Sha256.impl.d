lib/hash/sha256.ml: Array Buffer Bytes Char Int32 Int64 String Tangled_util
