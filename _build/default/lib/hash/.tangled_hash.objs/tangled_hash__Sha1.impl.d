lib/hash/sha1.ml: Array Buffer Bytes Char Int32 Int64 List String Tangled_util
