(** Uniform access to the available digest algorithms. *)

type t = MD5 | SHA1 | SHA256

val all : t list

val name : t -> string
(** ["md5"], ["sha1"], ["sha256"]. *)

val of_name : string -> t option

val size : t -> int
(** Output size in bytes. *)

val digest : t -> string -> string
val hex : t -> string -> string

val pp : Format.formatter -> t -> unit
