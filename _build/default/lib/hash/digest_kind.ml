type t = MD5 | SHA1 | SHA256

let all = [ MD5; SHA1; SHA256 ]

let name = function MD5 -> "md5" | SHA1 -> "sha1" | SHA256 -> "sha256"

let of_name = function
  | "md5" -> Some MD5
  | "sha1" -> Some SHA1
  | "sha256" -> Some SHA256
  | _ -> None

let size = function MD5 -> 16 | SHA1 -> 20 | SHA256 -> 32

let digest = function MD5 -> Md5.digest | SHA1 -> Sha1.digest | SHA256 -> Sha256.digest
let hex = function MD5 -> Md5.hex | SHA1 -> Sha1.hex | SHA256 -> Sha256.hex

let pp fmt t = Format.pp_print_string fmt (name t)
