(* RFC 1321 MD5 over Int32 words (little-endian message layout).
   The sine-derived constant table is computed at load time from the
   spec's defining formula rather than transcribed. *)

let k =
  Array.init 64 (fun i ->
      let v = Float.floor (abs_float (sin (float_of_int (i + 1))) *. 4294967296.0) in
      Int64.to_int32 (Int64.of_float v))

let s =
  [| 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
     5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20;
     4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
     6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21 |]

let rotl x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))
let ( ^^ ) = Int32.logxor
let ( &&& ) = Int32.logand
let ( ||| ) = Int32.logor
let ( +% ) = Int32.add
let lnot32 = Int32.lognot

let pad msg =
  let len = String.length msg in
  let bitlen = Int64.of_int (len * 8) in
  let padlen =
    let r = (len + 1) mod 64 in
    if r <= 56 then 56 - r else 120 - r
  in
  let b = Buffer.create (len + padlen + 9) in
  Buffer.add_string b msg;
  Buffer.add_char b '\x80';
  Buffer.add_string b (String.make padlen '\x00');
  (* MD5 appends the length little-endian, unlike the SHA family *)
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bitlen (8 * i)) 0xFFL)))
  done;
  Buffer.contents b

let word_le data off =
  let byte i = Int32.of_int (Char.code data.[off + i]) in
  Int32.logor (byte 0)
    (Int32.logor (Int32.shift_left (byte 1) 8)
       (Int32.logor (Int32.shift_left (byte 2) 16) (Int32.shift_left (byte 3) 24)))

let digest msg =
  let data = pad msg in
  let a0 = ref 0x67452301l and b0 = ref 0xefcdab89l in
  let c0 = ref 0x98badcfel and d0 = ref 0x10325476l in
  let m = Array.make 16 0l in
  let nblocks = String.length data / 64 in
  for block = 0 to nblocks - 1 do
    let off = block * 64 in
    for i = 0 to 15 do
      m.(i) <- word_le data (off + (4 * i))
    done;
    let a = ref !a0 and b = ref !b0 and c = ref !c0 and d = ref !d0 in
    for i = 0 to 63 do
      let f, g =
        if i < 16 then ((!b &&& !c) ||| (lnot32 !b &&& !d), i)
        else if i < 32 then ((!d &&& !b) ||| (lnot32 !d &&& !c), ((5 * i) + 1) mod 16)
        else if i < 48 then (!b ^^ !c ^^ !d, ((3 * i) + 5) mod 16)
        else (!c ^^ (!b ||| lnot32 !d), (7 * i) mod 16)
      in
      let f = f +% !a +% k.(i) +% m.(g) in
      a := !d;
      d := !c;
      c := !b;
      b := !b +% rotl f s.(i)
    done;
    a0 := !a0 +% !a;
    b0 := !b0 +% !b;
    c0 := !c0 +% !c;
    d0 := !d0 +% !d
  done;
  let out = Bytes.create 16 in
  List.iteri
    (fun i hi ->
      for j = 0 to 3 do
        Bytes.set out ((4 * i) + j)
          (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical hi (8 * j)) 0xFFl)))
      done)
    [ !a0; !b0; !c0; !d0 ];
  Bytes.unsafe_to_string out

let hex msg = Tangled_util.Hex.encode (digest msg)
