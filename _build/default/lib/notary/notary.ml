module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Prng = Tangled_util.Prng
module Ts = Tangled_util.Timestamp
module C = Tangled_x509.Certificate
module Dn = Tangled_x509.Dn
module Authority = Tangled_x509.Authority
module Rsa = Tangled_crypto.Rsa
module Rs = Tangled_store.Root_store
module Chain = Tangled_validation.Chain

type chain = {
  leaf : C.t;
  intermediates : C.t list;
  expired : bool;
  anchor : string option;
}

type t = {
  universe : BP.t;
  chains : chain array;
  scale : float;
  root_index : (string, BP.root) Hashtbl.t;
}

let key_pool_size = 32

(* Largest-remainder apportionment of [total] items over [weights]. *)
let apportion weights total =
  let n = Array.length weights in
  let sum = Array.fold_left ( +. ) 0.0 weights in
  if sum <= 0.0 || n = 0 then Array.make n 0
  else begin
    let ideal = Array.map (fun w -> w /. sum *. float_of_int total) weights in
    let counts = Array.map (fun x -> int_of_float (floor x)) ideal in
    (* every positive-weight issuer gets at least one leaf: "active"
       roots must validate something, per the Table 4 derivation *)
    Array.iteri (fun i w -> if w > 0.0 && counts.(i) = 0 then counts.(i) <- 1) weights;
    let assigned = Array.fold_left ( + ) 0 counts in
    let remainder = total - assigned in
    if remainder > 0 then begin
      let order =
        Array.init n (fun i -> i)
        |> Array.to_list
        |> List.sort (fun a b ->
               Stdlib.compare
                 (ideal.(b) -. floor ideal.(b))
                 (ideal.(a) -. floor ideal.(a)))
        |> Array.of_list
      in
      for k = 0 to remainder - 1 do
        let i = order.(k mod n) in
        counts.(i) <- counts.(i) + 1
      done
    end;
    counts
  end

let verify_chain ~now ~issuer_root chain_certs leaf =
  (* one full cryptographic walk per chain; store counting afterwards is
     pure anchor-set membership *)
  let rec walk cert rest =
    match rest with
    | [] ->
        let root = issuer_root in
        if C.verify_signature cert ~issuer_key:root.C.public_key then
          Some (C.equivalence_key root)
        else None
    | inter :: tail ->
        if C.verify_signature cert ~issuer_key:inter.C.public_key then walk inter tail
        else None
  in
  ignore now;
  walk leaf chain_certs

let generate ?(leaves = 10_000) ?(expired_fraction = 0.10) ~seed universe =
  let master = Prng.create seed in
  let rng_keys = Prng.split master "notary-keys" in
  let rng_issue = Prng.split master "notary-issue" in
  let now = Ts.paper_epoch in
  let digest = Tangled_hash.Digest_kind.SHA1 in
  let bits = universe.BP.key_bits in
  (* reusable subject-key pools (see Authority.issue_leaf docs) *)
  let leaf_keys =
    Array.init key_pool_size (fun _ -> Rsa.generate ~mr_rounds:6 rng_keys ~bits)
  in
  let inter_keys =
    Array.init key_pool_size (fun _ -> Rsa.generate ~mr_rounds:6 rng_keys ~bits)
  in
  (* issuers: every traffic-active public root and private CA *)
  let public_issuers =
    Array.to_list universe.BP.roots
    |> List.filter (fun (r : BP.root) -> r.BP.traffic_weight > 0.0)
    |> List.map (fun r -> (r.BP.authority, r.BP.traffic_weight))
  in
  let issuers = Array.of_list (public_issuers @ Array.to_list universe.BP.private_cas) in
  let weights = Array.map snd issuers in
  let counts = apportion weights leaves in
  (* one intermediate per issuer, shared by ~half its leaves *)
  let intermediates =
    Array.mapi
      (fun i (authority, _) ->
        let key = inter_keys.(i mod key_pool_size) in
        let parent_cn =
          Option.value ~default:"CA"
            (Dn.common_name authority.Authority.certificate.C.subject)
        in
        Authority.issue_intermediate ~bits ~digest ~key
          ~serial:(Tangled_numeric.Bigint.of_int (50_000 + i))
          rng_issue ~parent:authority
          (Dn.make ~o:parent_cn (parent_cn ^ " Issuing CA")))
      issuers
  in
  let chains = ref [] in
  let serial = ref 1_000_000 in
  let leaf_no = ref 0 in
  let issue_one ~expired issuer_i =
    let authority, _ = issuers.(issuer_i) in
    let via_intermediate = Prng.bool rng_issue in
    let parent = if via_intermediate then intermediates.(issuer_i) else authority in
    incr serial;
    incr leaf_no;
    let domain = Printf.sprintf "www.site%06d.example" !leaf_no in
    let not_before, not_after =
      if expired then (Ts.of_date 2010 1 1, Ts.add_days Ts.notary_start (-30))
      else (Ts.of_date 2012 6 1, Ts.add_years now 2)
    in
    let leaf =
      Authority.issue_leaf ~bits ~digest
        ~key:leaf_keys.(!leaf_no mod key_pool_size)
        ~serial:(Tangled_numeric.Bigint.of_int !serial)
        ~not_before ~not_after rng_issue ~parent ~dns_names:[ domain ]
        (Dn.make domain)
    in
    let inters = if via_intermediate then [ parent.Authority.certificate ] else [] in
    let anchor =
      verify_chain ~now ~issuer_root:authority.Authority.certificate inters leaf
    in
    chains := { leaf; intermediates = inters; expired; anchor } :: !chains
  in
  Array.iteri
    (fun i n ->
      for _ = 1 to n do
        issue_one ~expired:false i
      done)
    counts;
  let n_expired = int_of_float (float_of_int leaves *. expired_fraction) in
  for _ = 1 to n_expired do
    issue_one ~expired:true (Prng.int rng_issue (Array.length issuers))
  done;
  let root_index = Hashtbl.create 512 in
  Array.iter
    (fun (r : BP.root) ->
      Hashtbl.replace root_index
        (C.equivalence_key r.BP.authority.Authority.certificate)
        r)
    universe.BP.roots;
  {
    universe;
    chains = Array.of_list (List.rev !chains);
    scale = float_of_int leaves /. float_of_int PD.notary_unexpired_certs;
    root_index;
  }

let unexpired t =
  Array.fold_left (fun acc c -> if c.expired then acc else acc + 1) 0 t.chains

let total t = Array.length t.chains

let validated_by_store t store =
  Array.fold_left
    (fun acc c ->
      match c.anchor with
      | Some key when (not c.expired) && Rs.mem_key store key -> acc + 1
      | _ -> acc)
    0 t.chains

let per_root_counts t =
  let tbl = Hashtbl.create 512 in
  Array.iter
    (fun c ->
      match c.anchor with
      | Some key when not c.expired ->
          Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      | _ -> ())
    t.chains;
  tbl

let counts_for_certs t certs =
  let counts = per_root_counts t in
  certs
  |> List.map (fun cert ->
         float_of_int
           (Option.value ~default:0 (Hashtbl.find_opt counts (C.equivalence_key cert))))
  |> Array.of_list

let has_record t cert =
  let key = C.equivalence_key cert in
  (* mirrored official stores *)
  Rs.mem_key t.universe.BP.mozilla key
  || Rs.mem_key t.universe.BP.ios7 key
  || List.exists
       (fun v -> Rs.mem_key (t.universe.BP.aosp v) key)
       PD.android_versions
  ||
  (* or seen anchoring live traffic *)
  match Hashtbl.find_opt t.root_index key with
  | Some r -> r.BP.traffic_weight > 0.0
  | None -> false

let classify t cert =
  let key = C.equivalence_key cert in
  let in_mozilla = Rs.mem_key t.universe.BP.mozilla key in
  let in_ios = Rs.mem_key t.universe.BP.ios7 key in
  if in_mozilla && in_ios then PD.Mozilla_and_ios
  else if in_ios then PD.Ios_only
  else if has_record t cert then PD.Android_only
  else PD.Unrecorded

let crosscheck t store ~sample ~seed =
  let rng = Prng.create seed in
  let now = Ts.paper_epoch in
  let ok = ref true in
  for _ = 1 to sample do
    let c = t.chains.(Prng.int rng (Array.length t.chains)) in
    let fast =
      (not c.expired)
      && match c.anchor with Some k -> Rs.mem_key store k | None -> false
    in
    let slow =
      Chain.validate_ok ~now ~store (c.leaf :: c.intermediates)
    in
    if fast <> slow then ok := false
  done;
  !ok
