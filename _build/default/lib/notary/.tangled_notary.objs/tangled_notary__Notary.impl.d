lib/notary/notary.ml: Array Hashtbl List Option Printf Stdlib Tangled_crypto Tangled_hash Tangled_numeric Tangled_pki Tangled_store Tangled_util Tangled_validation Tangled_x509
