lib/notary/notary.mli: Hashtbl Tangled_pki Tangled_store Tangled_x509
