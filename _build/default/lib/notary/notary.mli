(** The passive certificate observatory (§4.2).

    The real ICSI Notary watches TLS handshakes on eight networks and
    stores ~1.9 M unique certificates (~1 M unexpired).  This simulator
    issues a scaled-down leaf population from the universe's active
    roots, with per-root volumes proportional to the traffic weights
    the blueprint derived from Table 3, then {e measures} everything
    the paper measures — cryptographically verifying every chain once
    and aggregating per-root and per-store validation counts. *)

type chain = {
  leaf : Tangled_x509.Certificate.t;
  intermediates : Tangled_x509.Certificate.t list;
  expired : bool;  (** outside its validity window at the paper epoch *)
  anchor : string option;
      (** equivalence key of the verified issuing root; [None] when the
          signature chain does not verify *)
}

type t = {
  universe : Tangled_pki.Blueprint.t;
  chains : chain array;
  scale : float;  (** leaves here per paper leaf (~1 M) *)
  root_index : (string, Tangled_pki.Blueprint.root) Hashtbl.t;
      (** every public root by equivalence key *)
}

val generate :
  ?leaves:int -> ?expired_fraction:float -> seed:int -> Tangled_pki.Blueprint.t -> t
(** [generate ~seed universe] issues [leaves] (default 10,000) unexpired
    chains plus an [expired_fraction] (default 0.10; the paper's
    population is 47% expired — the default trades that for speed and
    the fraction only affects totals, never the analysis shape).
    Per-root leaf counts use largest-remainder apportionment of the
    traffic weights so every active root validates at least one
    certificate.  About half the chains go through an intermediate CA.
    Deterministic in [seed]. *)

val unexpired : t -> int
val total : t -> int

val validated_by_store : t -> Tangled_store.Root_store.t -> int
(** Unexpired chains whose verified anchor is an enabled member of the
    store — Table 3's per-store count. *)

val per_root_counts : t -> (string, int) Hashtbl.t
(** Unexpired validated-chain count per root equivalence key — the raw
    series behind Figure 3. *)

val counts_for_certs : t -> Tangled_x509.Certificate.t list -> float array
(** Per-certificate validation counts for a root population (0 for
    roots the Notary never saw validate), ready for an ECDF. *)

val has_record : t -> Tangled_x509.Certificate.t -> bool
(** Whether the Notary knows this certificate: it anchored or appeared
    in observed traffic, or belongs to one of the official stores it
    mirrors — the Figure 2 classification primitive. *)

val classify :
  t -> Tangled_x509.Certificate.t -> Tangled_pki.Paper_data.notary_class
(** The Figure 2 legend class of a device-store extra, computed from
    the Notary's perspective (store membership + traffic records). *)

val crosscheck : t -> Tangled_store.Root_store.t -> sample:int -> seed:int -> bool
(** Validate [sample] random chains with the full path-building
    validator and compare with the anchor-membership shortcut; [true]
    when they agree everywhere.  Used by the test suite to justify the
    fast counting path. *)
