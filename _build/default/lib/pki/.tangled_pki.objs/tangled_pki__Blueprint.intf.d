lib/pki/blueprint.mli: Hashtbl Lazy Paper_data Tangled_store Tangled_x509
