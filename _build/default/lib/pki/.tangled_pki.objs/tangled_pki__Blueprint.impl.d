lib/pki/blueprint.ml: Array Ca_names Float Hashtbl List Paper_data Seq Stdlib Tangled_hash Tangled_numeric Tangled_store Tangled_util Tangled_x509
