lib/pki/ca_names.mli: Tangled_util
