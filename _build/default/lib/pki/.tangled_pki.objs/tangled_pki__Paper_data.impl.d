lib/pki/paper_data.ml: List
