lib/pki/paper_data.mli:
