lib/pki/ca_names.ml: Array Printf Tangled_util
