(** The published facts of the paper, transcribed as data.

    Everything the synthetic world must match — store sizes, the
    Figure 2 certificate universe, manufacturer/operator populations,
    the rooted-device CA list and the interception domain lists — lives
    here, so the generator code contains no magic numbers. *)

(** {1 Table 1 — root store sizes} *)

type android_version = V4_1 | V4_2 | V4_3 | V4_4

val android_versions : android_version list
val version_to_string : android_version -> string
val aosp_store_size : android_version -> int
val ios7_store_size : int
val mozilla_store_size : int

(** {1 Store overlap structure (§2, Table 4)}

    Derived decomposition; the derivation is documented in DESIGN.md.
    "Shared" means present in both AOSP and Mozilla by equivalence. *)

val aosp44_mozilla_shared : int
(** 130 *)

val aosp44_only : int
(** 20 *)

val mozilla_exclusive : int
(** 7: Mozilla = 130 shared + 16 extras + 7 exclusive *)

val extras_on_mozilla : int
(** 16 *)

val ios_exclusive : int
(** 69 *)

(** Per-version composition: (shared-with-Mozilla, AOSP-only) counts of
    certificates added by that version relative to its predecessor;
    V4_1 gives the base composition. *)
val aosp_version_delta : android_version -> int * int

(** {1 Figure 2 — the additional-certificate universe} *)

type notary_class =
  | Unrecorded     (** the Notary has no record of the certificate *)
  | Android_only   (** recorded, present in no other official store *)
  | Mozilla_and_ios
  | Ios_only

val notary_class_to_string : notary_class -> string

type placement =
  | Vendor of string list * android_version list
      (** shipped by these manufacturers on these OS versions *)
  | Carrier of string list * string list
      (** shipped for these operators, optionally restricted to these
          manufacturers (empty list = any) *)
  | Generic
      (** spread across rows by the generator *)

type extra_cert = {
  xc_name : string;
  xc_id : string;  (** the paper's bracketed subject-hash id *)
  xc_class : notary_class;
  xc_active : bool;
      (** whether the certificate validates any Notary traffic *)
  xc_placement : placement;
  xc_frequency : float;
      (** ratio of that row's modified-store sessions carrying it *)
}

val extras : extra_cert array
(** The named additional certificates of Figure 2 (104 transcribed). *)

(** {1 Table 2 — devices and manufacturers} *)

val total_sessions : int
(** 15,970 *)

val total_handsets : int
(** >= 3,835 *)

val total_models : int
(** 435 *)

val top_models : (string * string * int) list
(** [(model, manufacturer, sessions)] for the five named models. *)

val manufacturer_sessions : (string * int) list
(** The five named manufacturers with session counts; the rest of the
    population is labelled by {!other_manufacturers}. *)

val other_manufacturers : string list
val operators : (string * string) list
(** [(name, country)] — the Figure 2 operator rows. *)

(** {1 Figure 1 — extension behaviour} *)

val fraction_sessions_extended : float
(** 0.39 *)

val handsets_missing_certs : int
(** 5 *)

(** Manufacturers whose 4.1/4.2 devices gain > 40 certificates, and the
    conservative ones with < 10 additions. *)
val heavy_extenders : (string * android_version list) list
val light_extenders : string list

(** {1 §6 — rooted handsets} *)

val fraction_sessions_rooted : float
(** 0.24 *)

val fraction_rooted_with_exclusive : float
(** 0.06 *)

val rooted_cas : (string * int) list
(** Table 5: CA name and number of affected devices. *)

val freedom_app_ca : string
(** "CRAZY HOUSE" *)

val freedom_app_devices : int
(** 70 *)

(** {1 §7 / Table 6 — TLS interception} *)

val interceptor_name : string
(** "Reality Mine" *)

val interceptor_proxy_host : string
val intercepted_domains : (string * int) list
val whitelisted_domains : (string * int) list

(** {1 §4.2 / Table 3 — the Notary} *)

val notary_unique_certs : int
(** 1.9 M *)

val notary_unexpired_certs : int
(** ~1 M *)

val table3_validated : (string * int) list
(** Store name to validated-certificate count, of ~1M unexpired. *)

val table4_rows : (string * int * float) list
(** [(category, total roots, fraction validating nothing)]. *)

(** Traffic mass carried by disjoint root buckets, as fractions of all
    unexpired Notary certificates (derived from Table 3; see
    DESIGN.md). *)
val traffic_core : float
(** all stores *)

val traffic_mozilla_extras : float
(** Mozilla+iOS, not AOSP *)

val traffic_aosp_only : float
(** AOSP(any)+iOS, not Mozilla *)

val traffic_aosp43_added : float
val traffic_aosp44_added : float
val traffic_ios_exclusive : float

val traffic_android_device_only : float
(** validated only by device-store extras (no official store) *)

val netalyzr_probe_domains : string list
(** The popular domains whose trust chains Netalyzr checks (§7). *)
