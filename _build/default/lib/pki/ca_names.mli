(** Subject-name material for the synthetic PKI.

    The base-store population (AOSP/Mozilla/iOS members that Figure 2
    does not name individually) gets plausible public-CA style names;
    once the curated list runs out, clearly-synthetic regional names
    are generated deterministically. *)

val well_known : (string * string option * string option) array
(** [(common name, organization, country)] for widely-deployed root
    CAs, most-used first. *)

val synthetic : Tangled_util.Prng.t -> int -> string * string option * string option
(** [synthetic rng i] is the [i]-th filler CA name; the PRNG only picks
    flavour (region, class number), so names stay unique per index. *)

val private_ca : Tangled_util.Prng.t -> int -> string
(** Names for CAs that appear in traffic but in no store (corporate
    proxies, appliances, self-signed infrastructure). *)

val user_vpn_ca : Tangled_util.Prng.t -> int -> string
(** Self-signed single-device VPN certificate names (§5.2). *)
