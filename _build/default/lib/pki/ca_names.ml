(* Names of real, widely-deployed root authorities circa 2014 — the
   non-controversial backbone any root store of the era contained. *)
let well_known =
  [|
    ("VeriSign Class 3 Public Primary Certification Authority - G5", Some "VeriSign, Inc.", Some "US");
    ("GeoTrust Global CA", Some "GeoTrust Inc.", Some "US");
    ("DigiCert High Assurance EV Root CA", Some "DigiCert Inc", Some "US");
    ("DigiCert Global Root CA", Some "DigiCert Inc", Some "US");
    ("GlobalSign Root CA - R2", Some "GlobalSign", Some "BE");
    ("Go Daddy Class 2 Certification Authority", Some "The Go Daddy Group, Inc.", Some "US");
    ("Baltimore CyberTrust Root", Some "Baltimore", Some "IE");
    ("thawte Primary Root CA", Some "thawte, Inc.", Some "US");
    ("AddTrust External CA Root", Some "AddTrust AB", Some "SE");
    ("Equifax Secure Certificate Authority", Some "Equifax", Some "US");
    ("Entrust Root Certification Authority", Some "Entrust, Inc.", Some "US");
    ("Entrust.net Certification Authority (2048)", Some "Entrust.net", Some "US");
    ("Comodo AAA Certificate Services", Some "Comodo CA Limited", Some "GB");
    ("StartCom Certification Authority", Some "StartCom Ltd.", Some "IL");
    ("UTN-USERFirst-Hardware", Some "The USERTRUST Network", Some "US");
    ("GTE CyberTrust Global Root", Some "GTE Corporation", Some "US");
    ("VeriSign Class 3 Public Primary Certification Authority - G3", Some "VeriSign, Inc.", Some "US");
    ("GeoTrust Primary Certification Authority", Some "GeoTrust Inc.", Some "US");
    ("Starfield Class 2 Certification Authority", Some "Starfield Technologies, Inc.", Some "US");
    ("DST Root CA X3", Some "Digital Signature Trust Co.", Some "US");
    ("SwissSign Gold CA - G2", Some "SwissSign AG", Some "CH");
    ("QuoVadis Root CA 2", Some "QuoVadis Limited", Some "BM");
    ("Network Solutions Certificate Authority", Some "Network Solutions L.L.C.", Some "US");
    ("Cybertrust Global Root", Some "Cybertrust, Inc", Some "US");
    ("XRamp Global Certification Authority", Some "XRamp Security Services Inc", Some "US");
    ("Thawte Premium Server CA G2", Some "Thawte Consulting cc", Some "ZA");
    ("VeriSign Universal Root Certification Authority", Some "VeriSign, Inc.", Some "US");
    ("GlobalSign Root CA - R3", Some "GlobalSign", Some "BE");
    ("Certum Trusted Network CA", Some "Unizeto Technologies S.A.", Some "PL");
    ("Buypass Class 2 Root CA", Some "Buypass AS-983163327", Some "NO");
    ("Buypass Class 3 Root CA", Some "Buypass AS-983163327", Some "NO");
    ("TeliaSonera Root CA v1", Some "TeliaSonera", Some "FI");
    ("T-TeleSec GlobalRoot Class 2", Some "T-Systems Enterprise Services GmbH", Some "DE");
    ("T-TeleSec GlobalRoot Class 3", Some "T-Systems Enterprise Services GmbH", Some "DE");
    ("Deutsche Telekom Root CA 2", Some "Deutsche Telekom AG", Some "DE");
    ("AffirmTrust Commercial", Some "AffirmTrust", Some "US");
    ("AffirmTrust Networking", Some "AffirmTrust", Some "US");
    ("AffirmTrust Premium", Some "AffirmTrust", Some "US");
    ("America Online Root Certification Authority 1", Some "America Online Inc.", Some "US");
    ("Chambers of Commerce Root - 2008", Some "AC Camerfirma S.A.", Some "ES");
    ("Global Chambersign Root - 2008", Some "AC Camerfirma S.A.", Some "ES");
    ("Izenpe.com", Some "IZENPE S.A.", Some "ES");
    ("NetLock Arany (Class Gold) Fotanusitvany", Some "NetLock Kft.", Some "HU");
    ("Hongkong Post Root CA 1", Some "Hongkong Post", Some "HK");
    ("SecureTrust CA", Some "SecureTrust Corporation", Some "US");
    ("Secure Global CA", Some "SecureTrust Corporation", Some "US");
    ("Sonera Class2 CA", Some "Sonera", Some "FI");
    ("RSA Security 2048 V3", Some "RSA Security Inc", Some "US");
    ("ValiCert Class 1 Policy Validation Authority", Some "ValiCert, Inc.", Some "US");
    ("ValiCert Class 2 Policy Validation Authority", Some "ValiCert, Inc.", Some "US");
    ("Visa eCommerce Root", Some "VISA", Some "US");
    ("Wells Fargo Root Certificate Authority", Some "Wells Fargo", Some "US");
    ("Microsec e-Szigno Root CA 2009", Some "Microsec Ltd.", Some "HU");
    ("ACCVRAIZ1", Some "ACCV", Some "ES");
    ("Actalis Authentication Root CA", Some "Actalis S.p.A.", Some "IT");
    ("Autoridad de Certificacion Firmaprofesional CIF A62634068", None, Some "ES");
    ("TURKTRUST Elektronik Sertifika Hizmet Saglayicisi", Some "TURKTRUST", Some "TR");
    ("E-Tugra Certification Authority", Some "E-Tugra EBG", Some "TR");
    ("KEYNECTIS ROOT CA", Some "KEYNECTIS", Some "FR");
    ("Certigna", Some "Dhimyotis", Some "FR");
    ("Staat der Nederlanden Root CA - G2", Some "Staat der Nederlanden", Some "NL");
    ("EC-ACC", Some "Agencia Catalana de Certificacio", Some "ES");
    ("Swisscom Root CA 1", Some "Swisscom", Some "CH");
    ("Taiwan GRCA", Some "Government Root Certification Authority", Some "TW");
    ("ePKI Root Certification Authority", Some "Chunghwa Telecom Co., Ltd.", Some "TW");
    ("SecureSign RootCA11", Some "Japan Certification Services, Inc.", Some "JP");
    ("Security Communication RootCA1", Some "SECOM Trust.net", Some "JP");
    ("Security Communication RootCA2", Some "SECOM Trust Systems CO.,LTD.", Some "JP");
    ("GeoTrust Primary Certification Authority - G3", Some "GeoTrust Inc.", Some "US");
    ("thawte Primary Root CA - G3", Some "thawte, Inc.", Some "US");
    ("VeriSign Class 3 Public Primary Certification Authority - G4", Some "VeriSign, Inc.", Some "US");
    ("GlobalSign ECC Root CA - R4", Some "GlobalSign", Some "BE");
    ("Atos TrustedRoot 2011", Some "Atos", Some "DE");
    ("CA Disig Root R2", Some "Disig a.s.", Some "SK");
    ("ANF Server CA", Some "ANF Autoridad de Certificacion", Some "ES");
    ("Camerfirma Chambers of Commerce Root", Some "AC Camerfirma SA", Some "EU");
    ("Camerfirma Global Chambersign Root", Some "AC Camerfirma SA", Some "EU");
    ("COMODO Certification Authority", Some "COMODO CA Limited", Some "GB");
    ("COMODO ECC Certification Authority", Some "COMODO CA Limited", Some "GB");
    ("TWCA Root Certification Authority", Some "TAIWAN-CA", Some "TW");
    ("UCA Root", Some "UniTrust", Some "CN");
    ("UCA Global Root", Some "UniTrust", Some "CN");
  |]

let regions =
  [|
    ("Andino", "CO"); ("Baltica", "LT"); ("Carpathia", "RO"); ("Drava", "SI");
    ("Ebro", "ES"); ("Fjord", "NO"); ("Gobi", "MN"); ("Hanseatic", "DE");
    ("Iberia", "PT"); ("Jutland", "DK"); ("Karoo", "ZA"); ("Levant", "JO");
    ("Mekong", "VN"); ("Nordica", "SE"); ("Oceania", "NZ"); ("Pampa", "AR");
    ("Quivira", "MX"); ("Rhona", "FR"); ("Sahel", "SN"); ("Tyrrhenia", "IT");
  |]

let flavours = [| "Root CA"; "Primary CA"; "Trust Anchor"; "Certification Authority"; "Global Root" |]

let synthetic rng i =
  let region, country = regions.(Tangled_util.Prng.int rng (Array.length regions)) in
  let flavour = flavours.(Tangled_util.Prng.int rng (Array.length flavours)) in
  let cls = 1 + Tangled_util.Prng.int rng 4 in
  ( Printf.sprintf "%s Class %d %s S%03d" region cls flavour i,
    Some (region ^ " Trust Services"),
    Some country )

let private_flavours =
  [| "Corporate Proxy CA"; "Appliance Root"; "Internal Services CA"; "Gateway CA"; "Staging Root" |]

let private_ca rng i =
  let flavour = private_flavours.(Tangled_util.Prng.int rng (Array.length private_flavours)) in
  Printf.sprintf "Private %s P%03d" flavour i

let user_vpn_ca rng i =
  let hosts = [| "home"; "office"; "lab"; "nas"; "router"; "gateway" |] in
  let host = hosts.(Tangled_util.Prng.int rng (Array.length hosts)) in
  Printf.sprintf "vpn.%s.user%04d.example" host i
