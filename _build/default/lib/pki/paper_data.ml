type android_version = V4_1 | V4_2 | V4_3 | V4_4

let android_versions = [ V4_1; V4_2; V4_3; V4_4 ]

let version_to_string = function
  | V4_1 -> "4.1"
  | V4_2 -> "4.2"
  | V4_3 -> "4.3"
  | V4_4 -> "4.4"

let aosp_store_size = function V4_1 -> 139 | V4_2 -> 140 | V4_3 -> 146 | V4_4 -> 150
let ios7_store_size = 227
let mozilla_store_size = 153

let aosp44_mozilla_shared = 130
let aosp44_only = 20
let mozilla_exclusive = 7
let extras_on_mozilla = 16
let ios_exclusive = 69

(* Base 4.1 = 124 shared + 15 AOSP-only = 139; deltas keep the running
   sums consistent with Table 1 and with shared(4.4) = 130. *)
let aosp_version_delta = function
  | V4_1 -> (124, 15)
  | V4_2 -> (1, 0)
  | V4_3 -> (4, 2)
  | V4_4 -> (1, 3)

type notary_class = Unrecorded | Android_only | Mozilla_and_ios | Ios_only

let notary_class_to_string = function
  | Unrecorded -> "not recorded by ICSI Notary"
  | Android_only -> "only Android"
  | Mozilla_and_ios -> "Mozilla and iOS7"
  | Ios_only -> "iOS7"

type placement =
  | Vendor of string list * android_version list
  | Carrier of string list * string list
  | Generic

type extra_cert = {
  xc_name : string;
  xc_id : string;
  xc_class : notary_class;
  xc_active : bool;
  xc_placement : placement;
  xc_frequency : float;
}

let all_versions = android_versions

(* The X axis of Figure 2: every named additional certificate, with the
   paper's 32-bit subject-hash id.  Class and placement follow §5.1's
   prose where it is specific; the remaining entries carry the class
   quota worked out in DESIGN.md (16 Mozilla+iOS, 17 iOS-only,
   32 Android-only, 39 unrecorded) and Generic placement.  [xc_active]
   marks the roots that validate live Notary traffic; the per-category
   active counts implement Table 4's zero-validation fractions. *)
let extras =
  let vendor ms vs = Vendor (ms, vs) in
  let carrier ops ms = Carrier (ops, ms) in
  [|
    { xc_name = "Sprint Nextel Root Authority"; xc_id = "979eb027"; xc_class = Android_only;
      xc_active = false; xc_placement = carrier [ "SPRINT(US)" ] []; xc_frequency = 0.8 };
    { xc_name = "ABA.ECOM Root CA"; xc_id = "b1d311e0"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.3 };
    { xc_name = "AddTrust Class 1 CA Root"; xc_id = "9696d421"; xc_class = Mozilla_and_ios;
      xc_active = true; xc_placement = vendor [ "HTC"; "SAMSUNG" ] all_versions; xc_frequency = 0.9 };
    { xc_name = "AddTrust Public CA Root"; xc_id = "e91a308f"; xc_class = Mozilla_and_ios;
      xc_active = true; xc_placement = vendor [ "HTC"; "SAMSUNG" ] all_versions; xc_frequency = 0.9 };
    { xc_name = "AddTrust Qualified CA Root"; xc_id = "e41e9afe"; xc_class = Mozilla_and_ios;
      xc_active = false; xc_placement = vendor [ "HTC"; "SAMSUNG" ] all_versions; xc_frequency = 0.9 };
    { xc_name = "AOL Time Warner Root CA 1"; xc_id = "99de8fc3"; xc_class = Android_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.4 };
    { xc_name = "AOL Time Warner Root CA 2"; xc_id = "b4375a08"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.4 };
    { xc_name = "Baltimore EZ by DST"; xc_id = "bcccb33d"; xc_class = Ios_only;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "Certisign AC1S"; xc_id = "b0c095eb"; xc_class = Android_only;
      xc_active = false; xc_placement = carrier [ "VERIZON(US)" ] [ "MOTOROLA" ]; xc_frequency = 0.65 };
    { xc_name = "Certisign AC2"; xc_id = "b930cca5"; xc_class = Android_only;
      xc_active = false; xc_placement = carrier [ "VERIZON(US)" ] [ "MOTOROLA" ]; xc_frequency = 0.65 };
    { xc_name = "Certisign AC3S"; xc_id = "ce644ed6"; xc_class = Android_only;
      xc_active = false; xc_placement = carrier [ "VERIZON(US)" ] [ "MOTOROLA" ]; xc_frequency = 0.65 };
    { xc_name = "Certisign AC4"; xc_id = "ec83d4cc"; xc_class = Android_only;
      xc_active = false; xc_placement = carrier [ "VERIZON(US)" ] [ "MOTOROLA" ]; xc_frequency = 0.65 };
    { xc_name = "Certplus Class 1 Primary CA"; xc_id = "c36b29c8"; xc_class = Unrecorded;
      xc_active = false; xc_placement = carrier [ "ORANGE(FR)"; "SFR(FR)" ] []; xc_frequency = 0.5 };
    { xc_name = "Certplus Class 3 Primary CA"; xc_id = "b794306e"; xc_class = Unrecorded;
      xc_active = false; xc_placement = carrier [ "ORANGE(FR)"; "SFR(FR)" ] []; xc_frequency = 0.5 };
    { xc_name = "Certplus Class 3P Primary CA"; xc_id = "ab37ffeb"; xc_class = Unrecorded;
      xc_active = false; xc_placement = carrier [ "ORANGE(FR)" ] []; xc_frequency = 0.45 };
    { xc_name = "Certplus. Class 3TS Primary CA"; xc_id = "bd659a23"; xc_class = Unrecorded;
      xc_active = false; xc_placement = carrier [ "ORANGE(FR)" ] []; xc_frequency = 0.45 };
    { xc_name = "CFCA Root CA"; xc_id = "c107f487"; xc_class = Android_only;
      xc_active = false; xc_placement = vendor [ "HTC"; "MOTOROLA"; "LENOVO" ] all_versions; xc_frequency = 0.2 };
    { xc_name = "Cingular Preferred Root CA"; xc_id = "db7f0a90"; xc_class = Android_only;
      xc_active = false; xc_placement = carrier [ "AT&T(US)" ] []; xc_frequency = 0.7 };
    { xc_name = "Cingular Trusted Root CA"; xc_id = "eaaa66b1"; xc_class = Android_only;
      xc_active = false; xc_placement = carrier [ "AT&T(US)" ] []; xc_frequency = 0.7 };
    { xc_name = "COMODO RSA CA"; xc_id = "91e85492"; xc_class = Mozilla_and_ios;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.6 };
    { xc_name = "COMODO Secure Certificate Services"; xc_id = "c0713382"; xc_class = Mozilla_and_ios;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "COMODO. Trusted Certificate Services"; xc_id = "df716f36"; xc_class = Mozilla_and_ios;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "Deutsche Telekom Root CA 1"; xc_id = "d0dd9b0c"; xc_class = Mozilla_and_ios;
      xc_active = true; xc_placement = vendor [ "HTC"; "SAMSUNG" ] all_versions; xc_frequency = 0.85 };
    { xc_name = "DoD CLASS 3 Root CA"; xc_id = "b530fe64"; xc_class = Ios_only;
      xc_active = true; xc_placement = vendor [ "HTC"; "SAMSUNG" ] all_versions; xc_frequency = 0.85 };
    { xc_name = "DST (ANX Network) CA"; xc_id = "b4481180"; xc_class = Android_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.4 };
    { xc_name = "DST (NRF) RootCA"; xc_id = "d9ac9b77"; xc_class = Android_only;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.4 };
    { xc_name = "DST (UPS) RootCA"; xc_id = "ef17ecaf"; xc_class = Android_only;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.4 };
    { xc_name = "DST Root CA X1"; xc_id = "d2c626b6"; xc_class = Mozilla_and_ios;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "DST RootCA X2"; xc_id = "dc75f08c"; xc_class = Android_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "DST-Entrust GTI CA"; xc_id = "b61df74b"; xc_class = Android_only;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.4 };
    { xc_name = "Entrust CA - L1B"; xc_id = "dc21f568"; xc_class = Mozilla_and_ios;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.4 };
    { xc_name = "Entrust.net CA"; xc_id = "ad4d4ba9"; xc_class = Ios_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "Entrust.net Client CA"; xc_id = "9374b4b6"; xc_class = Ios_only;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.4 };
    { xc_name = "Entrust.net Client CA"; xc_id = "c83a995e"; xc_class = Android_only;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.4 };
    { xc_name = "Entrust.net Secure Server CA"; xc_id = "c7c15f4e"; xc_class = Ios_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "eSign Imperito Primary Root CA"; xc_id = "b6d352ea"; xc_class = Unrecorded;
      xc_active = false; xc_placement = carrier [ "TELSTRA(AU)" ] []; xc_frequency = 0.6 };
    { xc_name = "eSign. Gatekeeper Root CA"; xc_id = "bdfaf7c6"; xc_class = Unrecorded;
      xc_active = false; xc_placement = carrier [ "TELSTRA(AU)" ] []; xc_frequency = 0.6 };
    { xc_name = "eSign. Primary Utility Root CA"; xc_id = "a46daef2"; xc_class = Unrecorded;
      xc_active = false; xc_placement = carrier [ "TELSTRA(AU)" ] []; xc_frequency = 0.6 };
    { xc_name = "EUnet International Root CA"; xc_id = "9e413bd9"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.3 };
    { xc_name = "FESTE Public Notary Certs"; xc_id = "e183f39b"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.3 };
    { xc_name = "FESTE Verified Certs"; xc_id = "ea639f1f"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.3 };
    { xc_name = "First Data Digital CA"; xc_id = "df1c141e"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.3 };
    { xc_name = "Free SSL CA"; xc_id = "ed846000"; xc_class = Unrecorded;
      xc_active = false; xc_placement = carrier [ "FREE(FR)" ] []; xc_frequency = 0.5 };
    { xc_name = "GeoTrust CA for Adobe"; xc_id = "a7e577e0"; xc_class = Android_only;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.4 };
    { xc_name = "GeoTrust CA for UTI"; xc_id = "b94b8f0a"; xc_class = Unrecorded;
      xc_active = false; xc_placement = vendor [ "SAMSUNG" ] [ V4_2; V4_3 ]; xc_frequency = 0.8 };
    { xc_name = "GeoTrust Mobile Device Root - Privileged"; xc_id = "bbec6559"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.35 };
    { xc_name = "GeoTrust Mobile Device Root"; xc_id = "8fb1a7ee"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.35 };
    { xc_name = "GeoTrust True Credentials CA 2"; xc_id = "b2972ca5"; xc_class = Android_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.35 };
    { xc_name = "GlobalSign Root CA"; xc_id = "da0ee699"; xc_class = Mozilla_and_ios;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.6 };
    { xc_name = "GoDaddy Inc"; xc_id = "c42dd515"; xc_class = Mozilla_and_ios;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.55 };
    { xc_name = "IPS CA CLASE1"; xc_id = "e05127a7"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.3 };
    { xc_name = "IPS CA CLASE3 CA"; xc_id = "ab17fe0e"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.3 };
    { xc_name = "IPS CA CLASEA1 CA"; xc_id = "bb30d7dc"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.3 };
    { xc_name = "IPS CA CLASEA3"; xc_id = "ee8000f6"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.3 };
    { xc_name = "IPS CA Timestamping CA"; xc_id = "bcb8ee56"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.3 };
    { xc_name = "IPS Chained CAs"; xc_id = "dc569249"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.3 };
    { xc_name = "Microsoft Secure Server Authority"; xc_id = "ea9f5f91"; xc_class = Android_only;
      xc_active = false; xc_placement = carrier [ "AT&T(US)" ] [ "MOTOROLA" ]; xc_frequency = 0.6 };
    { xc_name = "Motorola FOTA Root CA"; xc_id = "bae1df7c"; xc_class = Unrecorded;
      xc_active = false; xc_placement = vendor [ "MOTOROLA" ] all_versions; xc_frequency = 0.9 };
    { xc_name = "Motorola SUPL Server Root CA"; xc_id = "caf7a0d5"; xc_class = Unrecorded;
      xc_active = false; xc_placement = vendor [ "MOTOROLA" ] all_versions; xc_frequency = 0.9 };
    { xc_name = "PTT Post Root CA. KeyMail"; xc_id = "b07ee23a"; xc_class = Android_only;
      xc_active = false; xc_placement = carrier [ "VERIZON(US)" ] [ "MOTOROLA" ]; xc_frequency = 0.65 };
    { xc_name = "RSA Data Security CA"; xc_id = "92ce7ac1"; xc_class = Android_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.4 };
    { xc_name = "SecureSign Root CA2. Japan"; xc_id = "967b9223"; xc_class = Ios_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.4 };
    { xc_name = "SecureSign Root CA3. Japan"; xc_id = "995e1e80"; xc_class = Ios_only;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.4 };
    { xc_name = "SEVEN Open Channel Primary CA"; xc_id = "cc2479ed"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.3 };
    { xc_name = "SIA Secure Client CA"; xc_id = "d2fcb040"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.3 };
    { xc_name = "SIA Secure Server CA"; xc_id = "dbc10bcc"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.3 };
    { xc_name = "Sonera Class1 CA"; xc_id = "b5891f2b"; xc_class = Mozilla_and_ios;
      xc_active = false; xc_placement = vendor [ "HTC"; "SAMSUNG" ] all_versions; xc_frequency = 0.85 };
    { xc_name = "Sony Computer DNAS Root 05"; xc_id = "d98f7b36"; xc_class = Unrecorded;
      xc_active = false; xc_placement = vendor [ "SONY" ] [ V4_3 ]; xc_frequency = 0.8 };
    { xc_name = "Sony Ericsson Secure E2E"; xc_id = "ed849d0f"; xc_class = Unrecorded;
      xc_active = false; xc_placement = vendor [ "SONY" ] [ V4_3 ]; xc_frequency = 0.8 };
    { xc_name = "Sprint XCA01"; xc_id = "c65c80d1"; xc_class = Android_only;
      xc_active = false; xc_placement = carrier [ "SPRINT(US)" ] []; xc_frequency = 0.8 };
    { xc_name = "Starfield Services Root CA"; xc_id = "f2cc562a"; xc_class = Mozilla_and_ios;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "TC TrustCenter Class 1 CA"; xc_id = "b029ebb4"; xc_class = Unrecorded;
      xc_active = false; xc_placement = carrier [ "VODAFONE(DE)" ] []; xc_frequency = 0.5 };
    { xc_name = "Thawte Personal Basic CA"; xc_id = "bcbc9353"; xc_class = Ios_only;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.45 };
    { xc_name = "Thawte Personal Freemail CA"; xc_id = "d469d7d4"; xc_class = Ios_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.45 };
    { xc_name = "Thawte Personal Premium CA"; xc_id = "c966d9f8"; xc_class = Ios_only;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.45 };
    { xc_name = "Thawte Premium Server CA"; xc_id = "d236366a"; xc_class = Ios_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.55 };
    { xc_name = "Thawte Server CA"; xc_id = "d3a4506e"; xc_class = Ios_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.55 };
    { xc_name = "Thawte Timestamping CA"; xc_id = "d62b5878"; xc_class = Android_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.4 };
    { xc_name = "TrustCenter Class 2 CA"; xc_id = "da38e8ed"; xc_class = Unrecorded;
      xc_active = false; xc_placement = carrier [ "VODAFONE(DE)" ] []; xc_frequency = 0.5 };
    { xc_name = "TrustCenter Class 3 CA"; xc_id = "b6b4c135"; xc_class = Unrecorded;
      xc_active = false; xc_placement = carrier [ "VODAFONE(DE)" ] []; xc_frequency = 0.5 };
    { xc_name = "UserTrust Client Auth. and Email"; xc_id = "b23985a4"; xc_class = Android_only;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.4 };
    { xc_name = "UserTrust RSA Extended Val. Sec. Server CA"; xc_id = "949c238c"; xc_class = Android_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.4 };
    { xc_name = "UserTrust UTN-USERFirst"; xc_id = "ceaa813f"; xc_class = Mozilla_and_ios;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.45 };
    { xc_name = "VeriSign"; xc_id = "d32e20f0"; xc_class = Android_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "VeriSign Class 1 Public Primary CA"; xc_id = "dd84d4b9"; xc_class = Ios_only;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "VeriSign Class 1 Public Primary CA"; xc_id = "e519bf6d"; xc_class = Ios_only;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "VeriSign Class 2 Public Primary CA"; xc_id = "af0a0dc2"; xc_class = Ios_only;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "VeriSign Class 2 Public Primary CA"; xc_id = "b65a8ba3"; xc_class = Ios_only;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "VeriSign Class 3 Extended Validation SSL SGC CA"; xc_id = "bd5688ba"; xc_class = Android_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "VeriSign Class 3 International Server CA - G3"; xc_id = "99d69c62"; xc_class = Android_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "VeriSign Class 3 Public Primary CA"; xc_id = "c95c599e"; xc_class = Mozilla_and_ios;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.6 };
    { xc_name = "VeriSign Class 3 Secure Server CA - G3"; xc_id = "b187841f"; xc_class = Android_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "VeriSign Class 3 Secure Server CA"; xc_id = "95c32112"; xc_class = Android_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "VeriSign Commercial Software Publishers CA"; xc_id = "c3d36965"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.35 };
    { xc_name = "VeriSign CPS"; xc_id = "d88280e8"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.35 };
    { xc_name = "VeriSign Individual Software Publishers CA"; xc_id = "c17aca65"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.35 };
    { xc_name = "VeriSign Trust Network"; xc_id = "a7880121"; xc_class = Mozilla_and_ios;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "VeriSign Trust Network"; xc_id = "aad0babe"; xc_class = Android_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "VeriSign Trust Network"; xc_id = "cc5ed111"; xc_class = Android_only;
      xc_active = true; xc_placement = Generic; xc_frequency = 0.5 };
    { xc_name = "Visa Information Delivery Root CA"; xc_id = "c91100e1"; xc_class = Unrecorded;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.35 };
    { xc_name = "Vodafone (Operator Domain)"; xc_id = "c148b339"; xc_class = Unrecorded;
      xc_active = false; xc_placement = carrier [ "VODAFONE(DE)" ] []; xc_frequency = 0.85 };
    { xc_name = "Vodafone (Widget Operator Domain)"; xc_id = "941c5d68"; xc_class = Unrecorded;
      xc_active = false; xc_placement = carrier [ "VODAFONE(DE)" ] []; xc_frequency = 0.85 };
    { xc_name = "Wells Fargo CA 01"; xc_id = "9d29d5b9"; xc_class = Android_only;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.35 };
    { xc_name = "Xcert EZ by DST"; xc_id = "ad5418de"; xc_class = Ios_only;
      xc_active = false; xc_placement = Generic; xc_frequency = 0.35 };
  |]

(* --- Table 2 -------------------------------------------------------- *)

let total_sessions = 15_970
let total_handsets = 3_835
let total_models = 435

let top_models =
  [
    ("Galaxy SIV", "SAMSUNG", 2762);
    ("Galaxy SIII", "SAMSUNG", 2108);
    ("Nexus 4", "LG", 1331);
    ("Nexus 5", "LG", 1010);
    ("Nexus 7", "ASUS", 832);
  ]

let manufacturer_sessions =
  [ ("SAMSUNG", 7709); ("LG", 2908); ("ASUS", 1876); ("HTC", 963); ("MOTOROLA", 837) ]

let other_manufacturers =
  [ "SONY"; "HUAWEI"; "LENOVO"; "ZTE"; "COMPAL"; "PANTECH"; "ACER"; "XIAOMI" ]

let operators =
  [
    ("3(UK)", "GB"); ("AT&T(US)", "US"); ("BOUYGUES(FR)", "FR"); ("EE(UK)", "GB");
    ("FREE(FR)", "FR"); ("ORANGE(FR)", "FR"); ("SFR(FR)", "FR"); ("SPRINT(US)", "US");
    ("T-MOBILE(US)", "US"); ("TELSTRA(AU)", "AU"); ("VERIZON(US)", "US");
    ("VODAFONE(DE)", "DE");
  ]

(* --- Figure 1 -------------------------------------------------------- *)

let fraction_sessions_extended = 0.39
let handsets_missing_certs = 5

let heavy_extenders =
  [
    ("HTC", [ V4_1; V4_2 ]);
    ("MOTOROLA", [ V4_1; V4_2 ]);
    ("LG", [ V4_1; V4_2 ]);
    ("SAMSUNG", [ V4_4 ]);
  ]

let light_extenders = [ "HUAWEI"; "SONY"; "ASUS" ]

(* --- §6 --------------------------------------------------------------- *)

let fraction_sessions_rooted = 0.24
let fraction_rooted_with_exclusive = 0.06

let rooted_cas =
  [
    ("CRAZY HOUSE", 70);
    ("MIND OVERFLOW", 1);
    ("USER_X", 1);
    ("CDA/EMAILADDRESS", 1);
    ("CIRRUS, PRIVATE", 1);
  ]

let freedom_app_ca = "CRAZY HOUSE"
let freedom_app_devices = 70

(* --- §7 / Table 6 ------------------------------------------------------ *)

let interceptor_name = "Reality Mine"
let interceptor_proxy_host = "v-us-49.analyzeme.me.uk"

let intercepted_domains =
  [
    ("gmail.com", 443); ("mail.google.com", 443); ("mail.yahoo.com", 443);
    ("orcart.facebook.com", 443); ("www.bankofamerica.com", 443);
    ("www.chase.com", 443); ("www.hsbc.com", 443); ("www.icsi.berkeley.edu", 443);
    ("www.outlook.com", 443); ("www.skype.com", 443); ("www.viber.com", 443);
    ("www.yahoo.com", 443);
  ]

let whitelisted_domains =
  [
    ("google-analytics.com", 443); ("maps.google.com", 443);
    ("orcart.facebook.com", 8883); ("play.google.com", 443);
    ("supl.google.com", 7275); ("www.facebook.com", 443);
    ("www.google.com", 443); ("www.google.co.uk", 443);
    ("www.twitter.com", 443);
  ]

(* --- §4.2 / Table 3 ----------------------------------------------------- *)

let notary_unique_certs = 1_900_000
let notary_unexpired_certs = 1_000_000

let table3_validated =
  [
    ("Mozilla", 744_069);
    ("iOS 7", 745_736);
    ("AOSP 4.1", 744_350);
    ("AOSP 4.2", 744_350);
    ("AOSP 4.3", 744_384);
    ("AOSP 4.4", 744_398);
  ]

let table4_rows =
  [
    ("Non AOSP and Non Mozilla root certs", 85, 0.72);
    ("Non AOSP root certs found on Mozilla's", 16, 0.38);
    ("AOSP 4.4 and Mozilla root certs", 130, 0.15);
    ("AOSP 4.1 certs", 139, 0.22);
    ("AOSP 4.4 certs", 150, 0.23);
    ("Aggregated Android root certs", 235, 0.40);
    ("Mozilla root store certs", 153, 0.22);
    ("iOS 7 root store certs", 227, 0.41);
  ]

(* Disjoint traffic buckets, fractions of unexpired Notary leaves;
   solved from Table 3 (DESIGN.md §4, experiment T3). *)
let traffic_core = 0.74350
let traffic_mozilla_extras = 0.000569
(* Inflated relative to the exact Table 3 solution (0.00085) so the
   paper's store ordering — Mozilla validating the least — survives the
   min-one-leaf apportionment floor at simulation scales of >= 10k
   leaves; see EXPERIMENTS.md. *)
let traffic_aosp_only = 0.002000
let traffic_aosp43_added = 0.000034
let traffic_aosp44_added = 0.000014
let traffic_ios_exclusive = 0.000769
let traffic_android_device_only = 0.010000

let netalyzr_probe_domains =
  List.map fst intercepted_domains @ List.map fst whitelisted_domains
