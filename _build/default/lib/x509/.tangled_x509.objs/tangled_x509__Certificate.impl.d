lib/x509/certificate.ml: Buffer Char Dn Format List Option Printf String Tangled_asn1 Tangled_crypto Tangled_hash Tangled_numeric Tangled_util
