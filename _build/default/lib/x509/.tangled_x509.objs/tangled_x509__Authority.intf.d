lib/x509/authority.mli: Certificate Dn Tangled_crypto Tangled_hash Tangled_numeric Tangled_util
