lib/x509/dn.mli: Format Tangled_asn1
