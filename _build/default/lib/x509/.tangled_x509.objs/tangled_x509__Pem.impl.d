lib/x509/pem.ml: Buffer Certificate Char List Printf String
