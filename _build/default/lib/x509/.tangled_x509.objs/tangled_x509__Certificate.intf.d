lib/x509/certificate.mli: Dn Format Tangled_crypto Tangled_hash Tangled_numeric Tangled_util
