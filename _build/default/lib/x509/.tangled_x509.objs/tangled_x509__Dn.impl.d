lib/x509/dn.ml: Format List Option Stdlib String Tangled_asn1
