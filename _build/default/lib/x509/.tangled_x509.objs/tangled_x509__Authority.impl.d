lib/x509/authority.ml: Certificate String Tangled_crypto Tangled_hash Tangled_numeric Tangled_util
