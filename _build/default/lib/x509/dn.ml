module Der = Tangled_asn1.Der
module Oid = Tangled_asn1.Oid

type attr =
  | CN of string
  | C of string
  | O of string
  | OU of string
  | L of string
  | ST of string
  | Email of string

type t = attr list

let make ?c ?o ?ou ?l ?st ?email cn =
  let opt f = function Some v -> [ f v ] | None -> [] in
  opt (fun v -> C v) c
  @ opt (fun v -> ST v) st
  @ opt (fun v -> L v) l
  @ opt (fun v -> O v) o
  @ opt (fun v -> OU v) ou
  @ opt (fun v -> Email v) email
  @ [ CN cn ]

let rec find f = function
  | [] -> None
  | a :: rest -> ( match f a with Some _ as r -> r | None -> find f rest)

let common_name t = find (function CN v -> Some v | _ -> None) t
let organization t = find (function O v -> Some v | _ -> None) t
let country t = find (function C v -> Some v | _ -> None) t

let attr_label = function
  | CN _ -> "CN"
  | C _ -> "C"
  | O _ -> "O"
  | OU _ -> "OU"
  | L _ -> "L"
  | ST _ -> "ST"
  | Email _ -> "emailAddress"

let attr_value = function
  | CN v | C v | O v | OU v | L v | ST v | Email v -> v

let to_string t =
  (* RFC 4514 renders most-specific (CN) first *)
  List.rev t
  |> List.map (fun a -> attr_label a ^ "=" ^ attr_value a)
  |> String.concat ","

let equal a b = a = b
let compare = Stdlib.compare

let attr_oid = function
  | CN _ -> Oid.at_common_name
  | C _ -> Oid.at_country
  | O _ -> Oid.at_organization
  | OU _ -> Oid.at_organizational_unit
  | L _ -> Oid.at_locality
  | ST _ -> Oid.at_state
  | Email _ -> Oid.at_email

let attr_der_value a =
  match a with
  | C v -> Der.Printable_string v
  | Email v -> Der.Ia5_string v
  | _ ->
      let v = attr_value a in
      if Der.is_printable v then Der.Printable_string v else Der.Utf8_string v

let to_der t =
  let rdn a =
    Der.Set [ Der.Sequence [ Der.Oid (attr_oid a); attr_der_value a ] ]
  in
  Der.Sequence (List.map rdn t)

let attr_of_pair oid value =
  let mk f = Option.map f (Der.as_string value) in
  if Oid.equal oid Oid.at_common_name then mk (fun v -> CN v)
  else if Oid.equal oid Oid.at_country then mk (fun v -> C v)
  else if Oid.equal oid Oid.at_organization then mk (fun v -> O v)
  else if Oid.equal oid Oid.at_organizational_unit then mk (fun v -> OU v)
  else if Oid.equal oid Oid.at_locality then mk (fun v -> L v)
  else if Oid.equal oid Oid.at_state then mk (fun v -> ST v)
  else if Oid.equal oid Oid.at_email then mk (fun v -> Email v)
  else None

let of_der v =
  match Der.as_sequence v with
  | None -> None
  | Some rdns ->
      let parse_rdn rdn =
        match Der.as_set rdn with
        | Some [ Der.Sequence [ Der.Oid oid; value ] ] -> attr_of_pair oid value
        | _ -> None
      in
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | rdn :: rest -> (
            match parse_rdn rdn with
            | Some a -> go (a :: acc) rest
            | None -> None)
      in
      go [] rdns

let pp fmt t = Format.pp_print_string fmt (to_string t)
