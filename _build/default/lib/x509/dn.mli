(** X.501 distinguished names, restricted to single-valued RDNs — every
    certificate the paper discusses uses that form. *)

type attr =
  | CN of string  (** commonName *)
  | C of string   (** countryName *)
  | O of string   (** organizationName *)
  | OU of string  (** organizationalUnitName *)
  | L of string   (** localityName *)
  | ST of string  (** stateOrProvinceName *)
  | Email of string

type t = attr list
(** Ordered most-general first, as encoded ([C] ... [CN]). *)

val make : ?c:string -> ?o:string -> ?ou:string -> ?l:string -> ?st:string -> ?email:string -> string -> t
(** [make cn] builds a DN with the given commonName and optional other
    attributes, ordered conventionally. *)

val common_name : t -> string option
val organization : t -> string option
val country : t -> string option

val to_string : t -> string
(** RFC 4514-style rendering, e.g. ["CN=DoD CLASS 3 Root CA,OU=PKI,OU=DoD,O=U.S. Government,C=US"]
    (most-specific first). *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_der : t -> Tangled_asn1.Der.t
(** The [Name] production: SEQUENCE OF SET OF AttributeTypeAndValue. *)

val of_der : Tangled_asn1.Der.t -> t option

val pp : Format.formatter -> t -> unit
