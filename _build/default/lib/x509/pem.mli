(** PEM armouring (RFC 7468) with a from-scratch Base64 codec —
    Android's root store directory stores one PEM file per trusted
    certificate, and the CLI can dump stores in that format. *)

val base64_encode : string -> string
val base64_decode : string -> (string, string) result

val encode : label:string -> string -> string
(** [encode ~label der] wraps [der] in
    [-----BEGIN label-----] / [-----END label-----] armour with
    64-column body lines. *)

val decode : string -> (string * string, string) result
(** [decode pem] is [(label, der)] for the first PEM block found. *)

val decode_all : string -> ((string * string) list, string) result
(** Every PEM block in the input, in order. *)

val encode_certificate : Certificate.t -> string
val decode_certificate : string -> (Certificate.t, string) result
